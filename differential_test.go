package repro_test

import (
	"context"
	"testing"

	"repro"
	"repro/internal/grammar"
	"repro/internal/ir"
)

// The cross-engine differential suite: every registered engine kind must
// produce identical labelings, selection costs and emitted code on the
// same inputs. The dp engine is the oracle (it computes the cost tables
// directly, per grammar definition); the automaton engines must agree
// with it on hundreds of seeded random forests per machine description —
// trees and DAGs, small and large immediates, with and without dynamic
// rules in the grammar.
//
// Two arenas per machine: the full grammar (dynamic costs active; every
// kind that can host them) and the stripped fixed-cost grammar (every
// registered kind — including the static automaton and the
// ahead-of-time-compiled offline engine, neither of which can host
// dynamic rules at all).

// diffSeeds is the number of seeded forests per machine description per
// arena (the acceptance bar is >= 200 across all kinds x machines).
const diffSeeds = 200

// opSplit classifies the grammar's operators for derivable generation:
// roots are operators with a rule deriving the start nonterminal;
// inner/leaf are operators with a rule deriving anything else (expression
// position). Biasing random forests this way makes most of them
// derivable end to end, so the cost/emit comparisons run on real
// derivations instead of agreeing about errors.
func opSplit(g *grammar.Grammar) (roots, inner, leaf []grammar.OpID) {
	for op := 0; op < g.NumOps(); op++ {
		isRoot, isExpr := false, false
		for _, ri := range g.BaseRules(grammar.OpID(op)) {
			if g.Rules[ri].LHS == g.Start {
				isRoot = true
			} else {
				isExpr = true
			}
		}
		if isRoot {
			roots = append(roots, grammar.OpID(op))
		}
		if isExpr {
			if g.Arity(grammar.OpID(op)) == 0 {
				leaf = append(leaf, grammar.OpID(op))
			} else {
				inner = append(inner, grammar.OpID(op))
			}
		}
	}
	return roots, inner, leaf
}

func diffConfig(seed int, roots, inner, leaf []grammar.OpID) ir.RandomConfig {
	cfg := ir.RandomConfig{
		Seed:  int64(seed),
		Trees: 2 + seed%5,
		// Vary depth and immediate magnitude so dense rows, hash paths and
		// immediate-range dynamic rules all get hit.
		MaxDepth:   4 + seed%4,
		MaxLeafVal: 1 << uint(seed%16),
	}
	if seed%3 == 0 {
		// DAG arena: small leaf values force real sharing.
		cfg.Share = true
		cfg.MaxLeafVal = 3
	}
	if seed%2 == 1 {
		// Derivable arena: statement roots over expression subtrees.
		cfg.RootOps = roots
		cfg.InnerOps = inner
		cfg.LeafOps = leaf
	}
	return cfg
}

// arena is one grammar with one selector per engine kind.
type arena struct {
	name  string
	g     *grammar.Grammar
	kinds []repro.Kind
	sels  map[repro.Kind]*repro.Selector
}

// compare checks one forest across every engine of the arena: identical
// per-(node, nonterminal) rule tables, identical selection cost (or the
// same no-derivation failure), identical emitted output. It reports
// whether the forest was derivable (so callers can assert coverage).
func (a *arena) compare(t *testing.T, f *ir.Forest, seed int) bool {
	t.Helper()
	ref := a.kinds[0]
	refLab, err := a.sels[ref].Label(f)
	if err != nil {
		t.Fatalf("%s seed %d: %s label: %v", a.name, seed, ref, err)
	}
	numNT := a.g.NumNonterms()
	for _, kind := range a.kinds[1:] {
		lab, err := a.sels[kind].Label(f)
		if err != nil {
			t.Fatalf("%s seed %d: %s label: %v", a.name, seed, kind, err)
		}
		for _, n := range f.Nodes {
			for nt := 0; nt < numNT; nt++ {
				want := refLab.RuleAt(n, grammar.NT(nt))
				got := lab.RuleAt(n, grammar.NT(nt))
				if want != got {
					t.Fatalf("%s seed %d node %d (%s) nt %s: %s rule %s != %s rule %s",
						a.name, seed, n.Index, a.g.OpName(n.Op), a.g.NTName(grammar.NT(nt)),
						kind, a.g.RuleName(int(got)), ref, a.g.RuleName(int(want)))
				}
			}
		}
	}

	refCost, refErr := a.sels[ref].SelectCost(f)
	var refOut *repro.Output
	if refErr == nil {
		var err error
		refOut, err = a.sels[ref].Compile(context.Background(), f)
		if err != nil {
			t.Fatalf("%s seed %d: %s compile after successful SelectCost: %v", a.name, seed, ref, err)
		}
	}
	for _, kind := range a.kinds[1:] {
		cost, err := a.sels[kind].SelectCost(f)
		if (err == nil) != (refErr == nil) {
			t.Fatalf("%s seed %d: %s SelectCost err=%v but %s err=%v", a.name, seed, kind, err, ref, refErr)
		}
		if refErr != nil {
			continue
		}
		if cost != refCost {
			t.Fatalf("%s seed %d: %s cost %d != %s cost %d", a.name, seed, kind, cost, ref, refCost)
		}
		out, err := a.sels[kind].Compile(context.Background(), f)
		if err != nil {
			t.Fatalf("%s seed %d: %s compile: %v", a.name, seed, kind, err)
		}
		if out.Asm != refOut.Asm || out.Instructions != refOut.Instructions || out.Cost != refOut.Cost {
			t.Fatalf("%s seed %d: %s emitted output differs from %s:\n%s\n--- vs ---\n%s",
				a.name, seed, kind, ref, out.Asm, refOut.Asm)
		}
	}
	return refErr == nil
}

// TestDifferentialEngines drives diffSeeds random forests per machine
// description through every registered engine kind and requires identical
// results everywhere.
func TestDifferentialEngines(t *testing.T) {
	kinds := repro.Kinds()
	if len(kinds) < 3 {
		t.Fatalf("registered kinds = %v, want at least the three built-ins", kinds)
	}
	for _, name := range repro.Machines() {
		t.Run(name, func(t *testing.T) {
			m, err := repro.LoadMachine(name)
			if err != nil {
				t.Fatal(err)
			}
			fixed, err := m.FixedMachine()
			if err != nil {
				t.Fatal(err)
			}

			// Full-grammar arena: every kind that can host the dynamic
			// rules (the offline automaton by design cannot).
			full := &arena{name: name, g: m.Grammar, sels: map[repro.Kind]*repro.Selector{}}
			for _, kind := range kinds {
				sel, err := m.NewSelector(kind, repro.Options{})
				if err != nil {
					continue
				}
				full.kinds = append(full.kinds, kind)
				full.sels[kind] = sel
			}
			if full.kinds[0] != repro.KindDP {
				t.Fatalf("dp must construct everywhere and act as the oracle, got %v", full.kinds)
			}
			if len(full.kinds) < 2 {
				t.Fatalf("only %v construct on the full grammar", full.kinds)
			}
			// The hybrid engine must actually be in the full arena — for
			// every built-in machine, including every dynamic-rule grammar.
			// Without this assertion a constructor regression would silently
			// drop it from the comparison (the loop tolerates ctor errors
			// because offline legitimately rejects dynamic grammars).
			if _, ok := full.sels[repro.KindHybrid]; !ok {
				t.Fatalf("hybrid kind missing from the full arena (dynamic rules: %v): %v",
					m.Grammar.HasAnyDynRules(), full.kinds)
			}

			// Fixed-grammar arena: every registered kind, no exceptions —
			// in particular the offline engine's ahead-of-time tables must
			// agree with every other kind here.
			fx := &arena{name: name + ".fixed", g: fixed.Grammar, sels: map[repro.Kind]*repro.Selector{}}
			for _, kind := range kinds {
				sel, err := fixed.NewSelector(kind, repro.Options{})
				if err != nil {
					t.Fatalf("%s on stripped grammar: %v", kind, err)
				}
				fx.kinds = append(fx.kinds, kind)
				fx.sels[kind] = sel
			}
			if _, ok := fx.sels[repro.KindOffline]; !ok {
				t.Fatalf("offline kind missing from the fixed arena: %v", fx.kinds)
			}

			fullRoots, fullInner, fullLeaf := opSplit(m.Grammar)
			fixedRoots, fixedInner, fixedLeaf := opSplit(fixed.Grammar)
			derivable := 0
			for seed := 0; seed < diffSeeds; seed++ {
				if full.compare(t, ir.RandomForest(m.Grammar, diffConfig(seed, fullRoots, fullInner, fullLeaf)), seed) {
					derivable++
				}
				fx.compare(t, ir.RandomForest(fixed.Grammar, diffConfig(seed, fixedRoots, fixedInner, fixedLeaf)), seed)
			}
			if derivable < diffSeeds/4 {
				t.Errorf("only %d of %d forests derivable: the cost/emit comparison barely ran", derivable, diffSeeds)
			}
			t.Logf("%s: %d kinds full / %d kinds fixed, %d/%d derivable forests",
				name, len(full.kinds), len(fx.kinds), derivable, diffSeeds)
		})
	}
}
