package repro_test

import (
	"context"
	"strings"
	"testing"

	"repro"
	"repro/internal/metrics"
)

func TestLoadMachine(t *testing.T) {
	for _, name := range repro.Machines() {
		m, err := repro.LoadMachine(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Grammar == nil || m.Name != name {
			t.Errorf("%s: bad machine", name)
		}
	}
	if _, err := repro.LoadMachine("vax"); err == nil {
		t.Error("expected error for unknown machine")
	}
}

func TestNewMachineFromSource(t *testing.T) {
	src := `
%name tiny
%start r
%term K(0) P(2)
k: K (0) "=%c"
r: P(k, k) (1) "add %0, %1 -> %d"
r: k (1) "mov %0 -> %d"
`
	m, err := repro.NewMachine("tiny", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := m.NewSelector(repro.KindStatic, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := m.ParseTree("P(K[1], K[2])")
	if err != nil {
		t.Fatal(err)
	}
	out, err := sel.Compile(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cost != 1 || out.Instructions != 1 {
		t.Errorf("cost=%d instrs=%d, want 1/1", out.Cost, out.Instructions)
	}
	if !strings.Contains(out.Asm, "add 1, 2 -> r0") {
		t.Errorf("asm: %q", out.Asm)
	}
	// Dynamic names must be validated eagerly.
	if _, err := repro.NewMachine("bad", "%term K(0)\nr: K (dyn nope)", nil); err == nil {
		t.Error("expected unbound dynamic-cost error")
	}
	if _, err := repro.NewMachine("bad", "%%%", nil); err == nil {
		t.Error("expected parse error")
	}
}

func TestSelectorKindsAgree(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	unit, err := m.CompileMinC(`
int a[16];
int f(int n) {
	int i;
	int s = 0;
	for (i = 0; i < n; i += 1) {
		a[i] = i * 4;
		s += a[i];
	}
	return s;
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := unit.Funcs[0].Forest

	dpSel, err := m.NewSelector(repro.KindDP, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	odSel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := dpSel.Compile(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := odSel.Compile(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if a.Asm != b.Asm || a.Cost != b.Cost || a.Instructions != b.Instructions {
		t.Errorf("engines disagree: dp(%d,%d) vs od(%d,%d)",
			a.Cost, a.Instructions, b.Cost, b.Instructions)
	}
	if got, err := odSel.Compile(context.Background(), f, repro.CostOnly()); err != nil || got.Cost != a.Cost {
		t.Errorf("CostOnly compile = %v, %v; want cost %d", got, err, a.Cost)
	}
}

func TestStaticRefusesDynamicGrammar(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewSelector(repro.KindStatic, repro.Options{}); err == nil {
		t.Fatal("static selector must refuse grammars with dynamic rules")
	}
	fixed, err := m.FixedMachine()
	if err != nil {
		t.Fatal(err)
	}
	sel, err := fixed.NewSelector(repro.KindStatic, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.States() == 0 || sel.Transitions() == 0 || sel.MemoryBytes() == 0 {
		t.Error("static selector reports empty automaton")
	}
}

func TestSelectorAccounting(t *testing.T) {
	m, err := repro.LoadMachine("jit64")
	if err != nil {
		t.Fatal(err)
	}
	c := &metrics.Counters{}
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{Metrics: c})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Kind() != repro.KindOnDemand || sel.Machine() != m {
		t.Error("accessors wrong")
	}
	f, err := m.ParseTree("RET(ADD(REG[1], CNST[2]))")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Compile(context.Background(), f); err != nil {
		t.Fatal(err)
	}
	if c.NodesLabeled != int64(f.NumNodes()) {
		t.Errorf("nodes labeled = %d, want %d", c.NodesLabeled, f.NumNodes())
	}
	if sel.States() == 0 {
		t.Error("no states materialized")
	}
}

func TestBadSelectorKind(t *testing.T) {
	m, err := repro.LoadMachine("demo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewSelector(repro.Kind("quantum"), repro.Options{}); err == nil {
		t.Error("expected unknown-kind error")
	}
}

func TestDAGBuilderThroughAPI(t *testing.T) {
	m, err := repro.LoadMachine("demo")
	if err != nil {
		t.Fatal(err)
	}
	b := m.NewDAGBuilder()
	a1 := b.Leaf("Reg", 1)
	a2 := b.Leaf("Reg", 1)
	if a1 != a2 {
		t.Fatal("DAG builder must share identical leaves")
	}
	root := b.Node("Store", a1, b.Node("Plus", b.Node("Load", a2), b.Leaf("Reg", 2)))
	b.Root(root)
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sel.Compile(context.Background(), b.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if out.Cost != 1 {
		t.Errorf("RMW through public API: cost %d, want 1", out.Cost)
	}
}

func TestCompileMinCErrors(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CompileMinC("int f( {"); err == nil {
		t.Error("expected syntax error")
	}
	if _, err := m.CompileMinC("int f() { return ghost; }"); err == nil {
		t.Error("expected lowering error")
	}
}

func TestKinds(t *testing.T) {
	kinds := repro.Kinds()
	if len(kinds) != 5 {
		t.Errorf("kinds = %v, want the three paper engines plus hybrid and offline", kinds)
	}
	want := []repro.Kind{repro.KindDP, repro.KindStatic, repro.KindOnDemand, repro.KindHybrid, repro.KindOffline}
	for i, k := range want {
		if i >= len(kinds) || kinds[i] != k {
			t.Fatalf("kinds = %v, want %v (registration order)", kinds, want)
		}
	}
}

// TestWarmStartThroughAPI: persist a warmed automaton and restore it into
// a new selector; the restored selector must label without misses.
func TestWarmStartThroughAPI(t *testing.T) {
	m, err := repro.LoadMachine("jit64")
	if err != nil {
		t.Fatal(err)
	}
	unit, err := m.CompileMinC(`int f(int n) { int s = 0; int i; for (i = 0; i < n; i += 1) { s += i; } return s; }`)
	if err != nil {
		t.Fatal(err)
	}
	f := unit.Funcs[0].Forest

	warm, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := warm.Compile(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := warm.SaveAutomaton(&buf); err != nil {
		t.Fatal(err)
	}

	c := &metrics.Counters{}
	restored, err := m.NewSelector(repro.KindOnDemand, repro.Options{Metrics: c})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadAutomaton(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	got, err := restored.Compile(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if got.Asm != want.Asm || got.Cost != want.Cost {
		t.Error("restored selector emits different code")
	}
	if c.TableMisses != 0 {
		t.Errorf("restored selector had %d misses", c.TableMisses)
	}

	// DP selectors have no automaton to persist.
	dpSel, _ := m.NewSelector(repro.KindDP, repro.Options{})
	if err := dpSel.SaveAutomaton(&buf); err == nil {
		t.Error("SaveAutomaton must fail for DP selectors")
	}
	if err := dpSel.LoadAutomaton(strings.NewReader("")); err == nil {
		t.Error("LoadAutomaton must fail for DP selectors")
	}
}
