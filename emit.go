package repro

import (
	"repro/internal/emit"
	"repro/internal/grammar"
)

// emitterFor isolates the emit dependency so api.go stays focused on
// selector plumbing. All emitters of one selector share the selector's
// interner, so repeated compiles of the same functions return the same
// Asm string without a per-call copy.
func emitterFor(g *grammar.Grammar, in *emit.Interner) *emit.Emitter {
	e := emit.New(g)
	e.SetInterner(in)
	return e
}

// newInterner isolates the constructor the selector uses for its shared
// assembly-text store.
func newInterner() *emit.Interner { return emit.NewInterner(0) }
