package repro

import (
	"repro/internal/emit"
	"repro/internal/grammar"
)

// emitterFor isolates the emit dependency so api.go stays focused on
// selector plumbing.
func emitterFor(g *grammar.Grammar) *emit.Emitter { return emit.New(g) }
