// Command benchdiff gates the performance trajectory: it compares two
// BENCH_PR<N>.json reports (see `iselbench -experiment PF -perf-out`) and
// exits non-zero if any warm-path metric — warm label/select ns per node,
// or allocations per corpus pass — regressed beyond the tolerance.
//
// Usage:
//
//	benchdiff BENCH_PR3.json BENCH_PR4.json               # default 10%
//	benchdiff -max-regress 5 BENCH_PR3.json BENCH_PR4.json
//	benchdiff -markdown BENCH_PR5.json BENCH_PR6.json     # GFM before/after table
//
// Allocation baselines of zero are a hard contract: any growth fails
// regardless of tolerance. CI runs this over the committed trajectory
// files so a hot-path PR cannot land a silent regression.
//
// -markdown prints a per-grammar before/after table of the warm metrics
// (GitHub-flavored markdown) before the verdict — what the CI perf-gate
// step surfaces in the build log so reviewers see the deltas without
// opening the JSON. It changes only the output, never the gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	tol := flag.Float64("max-regress", 10, "maximum tolerated regression, in percent")
	allocsOnly := flag.Bool("allocs-only", false, "compare only the deterministic allocation metrics (for CI runners whose wall-clock numbers are not comparable to the committed baseline)")
	markdown := flag.Bool("markdown", false, "print a per-grammar before/after markdown table of the warm metrics before the verdict")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress pct] [-markdown] BASELINE.json CURRENT.json")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *tol, *allocsOnly, *markdown); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(basePath, curPath string, tol float64, allocsOnly, markdown bool) error {
	base, err := bench.LoadPerfReport(basePath)
	if err != nil {
		return err
	}
	cur, err := bench.LoadPerfReport(curPath)
	if err != nil {
		return err
	}
	if markdown {
		fmt.Print(bench.MarkdownDiff(base, cur))
		fmt.Println()
	}
	regressions := bench.ComparePerf(base, cur, tol, allocsOnly)
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		return fmt.Errorf("%d warm-path regression(s) vs %s", len(regressions), basePath)
	}
	scope := "warm paths"
	if allocsOnly {
		scope = "warm allocation contract"
	}
	fmt.Printf("benchdiff: %s vs %s: %s within %.0f%% (%d grammars)\n",
		basePath, curPath, scope, tol, len(cur.Rows))
	return nil
}
