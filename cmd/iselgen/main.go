// Command iselgen is the ahead-of-time table compiler: it computes the
// full tree-parsing automaton of a grammar offline (internal/gen) and
// writes it as a versioned `.isel` blob — loadable by the `offline`
// engine kind and by `iselserver -preload` for machines that are fully
// warm before their first request — or as generated Go source that embeds
// the blob and registers it at init time.
//
// Usage:
//
//	iselgen -machine x86 -fixed -out x86.isel
//	iselgen -machine x86 -hybrid -out x86.hybrid.isel
//	iselgen -machine demo -fixed -go -pkg precompiled -out demo_fixed_gen.go
//	iselgen -grammar mydesc.gr -out mydesc.isel
//	iselgen -machine jit64 -fixed -stats
//	iselgen -machine demo -fixed -go -pkg precompiled -out demo_fixed_gen.go -check
//
// Grammars with dynamic-cost rules cannot be tabulated offline (the
// limitation the paper's on-demand engine lifts): pass -fixed to strip
// them and compile the fixed-cost subset, exactly what a burg user would
// feed the offline generator. Or pass -hybrid to compile the
// fixed-operator-subset closure of the FULL grammar (rule numbering and
// fingerprint preserved) for the `hybrid` engine kind, which serves the
// fixed operators from those tables and falls through to the on-demand
// path for the dynamic ones.
//
// -stats prints the closure report: states, representer classes,
// transition entries, table and blob bytes, and generation time. When the
// closure is pruned by -max-states the report carries the truncation
// diagnostics instead and iselgen exits nonzero — a pruned table set is
// never written.
//
// -check verifies that -out is byte-for-byte up to date instead of
// writing it (exit status 2 when stale): the CI hook that keeps committed
// generated tables honest. Output is deterministic for a given grammar,
// so -check is meaningful.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/automaton"
	"repro/internal/gen"
	"repro/internal/grammar"
	"repro/internal/md"
)

func main() {
	machine := flag.String("machine", "", "built-in machine description to compile (x86, mips, sparc, alpha, jit64, demo)")
	grammarFile := flag.String("grammar", "", "burg-style grammar source file to compile (alternative to -machine)")
	fixed := flag.Bool("fixed", false, "strip dynamic-cost rules first (required for grammars that have any)")
	hybrid := flag.Bool("hybrid", false, "compile the fixed-operator subset of the full grammar for the hybrid engine (mutually exclusive with -fixed)")
	out := flag.String("out", "", "output path (.isel blob, or Go source with -go)")
	goSrc := flag.Bool("go", false, "emit generated Go source embedding the blob instead of the raw blob")
	pkg := flag.String("pkg", "precompiled", "package name for -go output")
	varName := flag.String("var", "", "variable name for -go output (derived from the grammar name when empty)")
	stats := flag.Bool("stats", false, "print the closure report (states, transitions, table bytes, generation time)")
	check := flag.Bool("check", false, "verify -out is up to date instead of writing it (exit 2 when stale)")
	maxStates := flag.Int("max-states", 0, "closure state bound (0 = generator default); a pruned closure fails with diagnostics")
	deltaCap := flag.Int("delta-cap", 0, "relative-cost cap in states (0 = default)")
	flag.Parse()

	if err := run(*machine, *grammarFile, *out, *pkg, *varName, *fixed, *hybrid, *goSrc, *stats, *check, *maxStates, *deltaCap); err != nil {
		fmt.Fprintln(os.Stderr, "iselgen:", err)
		var trunc *automaton.TruncatedError
		if errors.As(err, &trunc) {
			fmt.Fprintf(os.Stderr, "iselgen: closure truncation report for %s:\n", trunc.Grammar)
			fmt.Fprintf(os.Stderr, "  state bound        %d\n", trunc.MaxStates)
			fmt.Fprintf(os.Stderr, "  states at the cut  %d\n", trunc.States)
			fmt.Fprintf(os.Stderr, "  transitions done   %d\n", trunc.Transitions)
			fmt.Fprintf(os.Stderr, "  work items pending %d\n", trunc.PendingWork)
			fmt.Fprintln(os.Stderr, "  a pruned table set is never written; raise -max-states or fix the grammar's chain-rule structure")
		}
		if errors.Is(err, errStale) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

var errStale = errors.New("stale")

func run(machine, grammarFile, out, pkg, varName string, fixed, hybrid, goSrc, stats, check bool, maxStates, deltaCap int) error {
	if fixed && hybrid {
		return fmt.Errorf("set at most one of -fixed/-hybrid: -fixed strips dynamic rules (new grammar), -hybrid keeps the full grammar and tabulates its fixed-operator subset")
	}
	g, err := loadGrammar(machine, grammarFile, fixed)
	if err != nil {
		return err
	}
	cfg := gen.Config{MaxStates: maxStates, DeltaCap: grammar.Cost(deltaCap)}
	var res *gen.Result
	if hybrid {
		res, err = gen.CompileHybrid(g, cfg)
	} else {
		res, err = gen.Compile(g, cfg)
	}
	if err != nil {
		if !hybrid && g.HasAnyDynRules() {
			return fmt.Errorf("%w (hint: pass -fixed to compile the fixed-cost subset, or -hybrid to tabulate the fixed operators of the full grammar)", err)
		}
		return err
	}
	if stats {
		printStats(res.Stats)
	}
	if out == "" {
		if stats {
			return nil
		}
		return fmt.Errorf("no -out path (and no -stats): nothing to do; refusing to write a binary blob to stdout")
	}

	payload := res.Blob
	if goSrc {
		if varName == "" {
			varName = defaultVarName(g.Name)
		}
		if payload, err = gen.GoSource(pkg, varName, res); err != nil {
			return err
		}
	}
	if check {
		prev, err := os.ReadFile(out)
		if err != nil {
			return fmt.Errorf("%w: %s: %v", errStale, out, err)
		}
		if !bytes.Equal(prev, payload) {
			return fmt.Errorf("%w: %s is out of date for grammar %s; rerun iselgen to regenerate", errStale, out, g.Name)
		}
		fmt.Printf("iselgen: %s is up to date (%d bytes)\n", out, len(payload))
		return nil
	}
	if err := os.WriteFile(out, payload, 0o644); err != nil {
		return err
	}
	fmt.Printf("iselgen: wrote %s (%d bytes) for grammar %s\n", out, len(payload), g.Name)
	return nil
}

func loadGrammar(machine, grammarFile string, fixed bool) (*grammar.Grammar, error) {
	var g *grammar.Grammar
	switch {
	case machine != "" && grammarFile != "":
		return nil, fmt.Errorf("set exactly one of -machine/-grammar, not both")
	case machine != "":
		d, err := md.Load(machine)
		if err != nil {
			return nil, err
		}
		g = d.Grammar
	case grammarFile != "":
		src, err := os.ReadFile(grammarFile)
		if err != nil {
			return nil, err
		}
		g, err = grammar.Parse(string(src))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", grammarFile, err)
		}
	default:
		return nil, fmt.Errorf("set one of -machine/-grammar")
	}
	if fixed {
		return g.StripDynamic()
	}
	return g, nil
}

func printStats(s gen.Stats) {
	fmt.Printf("iselgen: grammar %s (fingerprint %016x)\n", s.Grammar, s.Fingerprint)
	fmt.Printf("  operators %d, nonterminals %d, rules %d\n", s.Ops, s.Nonterms, s.Rules)
	fmt.Printf("  states %d, representer classes %d, transition entries %d\n", s.States, s.Representers, s.TransitionEntries)
	fmt.Printf("  table bytes %d (compact), %d expanded at serve time\n",
		s.TableBytes, s.ExpandedTableBytes)
	ratio := 0.0
	if s.BlobBytes > 0 {
		ratio = float64(s.BlobBytesFixed) / float64(s.BlobBytes)
	}
	fmt.Printf("  blob bytes %d varint/delta-encoded vs %d fixed-width (%.2fx smaller on the wire)\n",
		s.BlobBytes, s.BlobBytesFixed, ratio)
	fmt.Printf("  generation time %s\n", s.GenTime)
}

// defaultVarName turns a grammar name into a Go identifier:
// "demo.fixed" -> "demoFixedTables".
func defaultVarName(name string) string {
	var b strings.Builder
	up := false
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9' && b.Len() > 0:
			if up {
				b.WriteString(strings.ToUpper(string(r)))
				up = false
			} else {
				b.WriteRune(r)
			}
		default:
			up = true
		}
	}
	b.WriteString("Tables")
	return b.String()
}
