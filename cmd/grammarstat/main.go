// Command grammarstat prints grammar and automaton statistics for the
// built-in machine descriptions (experiment E1), or for a grammar file.
//
// Usage:
//
//	grammarstat                 # all built-in machine descriptions
//	grammarstat -machine x86    # one description, with the full dump
//	grammarstat -file my.brg    # a burg-style grammar file
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/automaton"
	"repro/internal/bench"
	"repro/internal/grammar"
	"repro/internal/md"
)

func main() {
	machine := flag.String("machine", "", "print one machine description in detail")
	file := flag.String("file", "", "analyze a burg-style grammar file")
	dump := flag.Bool("dump", false, "dump the normal-form grammar")
	flag.Parse()

	if err := run(*machine, *file, *dump); err != nil {
		fmt.Fprintln(os.Stderr, "grammarstat:", err)
		os.Exit(1)
	}
}

func run(machine, file string, dump bool) error {
	switch {
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		g, err := grammar.Parse(string(data))
		if err != nil {
			return err
		}
		return describe(g, dump)
	case machine != "":
		d, err := md.Load(machine)
		if err != nil {
			return err
		}
		return describe(d.Grammar, dump)
	default:
		_, t, err := bench.RunE1()
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	}
}

func describe(g *grammar.Grammar, dump bool) error {
	fmt.Println(g.ComputeStats())
	if dump {
		fmt.Print(g.Dump())
	}
	if !g.HasAnyDynRules() {
		a, err := automaton.Generate(g, automaton.StaticConfig{})
		if err != nil {
			return err
		}
		fmt.Printf("offline automaton: %d states, %d transition entries, %d representers, ~%d bytes\n",
			a.NumStates(), a.NumTransitions(), a.Gen.Representers, a.MemoryBytes())
		return nil
	}
	fixed, err := g.StripDynamic()
	if err != nil {
		return err
	}
	a, err := automaton.Generate(fixed, automaton.StaticConfig{})
	if err != nil {
		return err
	}
	fmt.Printf("offline automaton (dynamic rules stripped): %d states, %d transition entries, ~%d bytes\n",
		a.NumStates(), a.NumTransitions(), a.MemoryBytes())
	return nil
}
