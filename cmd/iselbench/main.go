// Command iselbench regenerates the evaluation tables and figures of the
// reproduction (see DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	iselbench                  # run every experiment
//	iselbench -experiment E4   # one experiment
//	iselbench -grammar mips    # grammar for the per-grammar experiments
//	iselbench -ablations       # also run the design-choice ablations
//	iselbench -experiment EP -workers 1,2,4,8
//	                           # parallel labeling scaling (one warm
//	                           # engine shared by a worker pool)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("experiment", "all", "experiment to run: E1..E8, EP or all")
	gname := flag.String("grammar", "x86", "grammar for per-grammar experiments (E3, E4, E5, E7, EP)")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations")
	workers := flag.String("workers", "1,2,4,8", "worker counts for the EP parallel-scaling experiment")
	passes := flag.Int("passes", 20, "corpus passes per EP configuration")
	flag.Parse()

	ws, err := parseWorkers(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iselbench:", err)
		os.Exit(1)
	}
	if err := run(*exp, *gname, *ablations, ws, *passes); err != nil {
		fmt.Fprintln(os.Stderr, "iselbench:", err)
		os.Exit(1)
	}
}

func parseWorkers(s string) ([]int, error) {
	var ws []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -workers entry %q (want positive integers)", part)
		}
		ws = append(ws, n)
	}
	return ws, nil
}

func run(exp, gname string, ablations bool, workers []int, passes int) error {
	type step struct {
		id string
		fn func() error
	}
	steps := []step{
		{"E1", func() error { _, t, err := bench.RunE1(); show(t, err); return err }},
		{"E2", func() error { _, t, err := bench.RunE2(); show(t, err); return err }},
		{"E3", func() error {
			for _, g := range []string{gname, "jit64"} {
				_, t, err := bench.RunE3(g)
				show(t, err)
				if err != nil {
					return err
				}
				if g == gname && gname == "jit64" {
					break
				}
			}
			return nil
		}},
		{"E4", func() error { _, t, err := bench.RunE4(gname); show(t, err); return err }},
		{"E5", func() error {
			_, fig, err := bench.RunE5(gname)
			if err == nil {
				fmt.Println(fig)
			}
			return err
		}},
		{"E6", func() error { _, t, err := bench.RunE6(); show(t, err); return err }},
		{"E7", func() error { _, t, err := bench.RunE7(gname); show(t, err); return err }},
		{"E8", func() error { _, t, err := bench.RunE8(); show(t, err); return err }},
		{"EP", func() error { _, t, err := bench.RunParallel(gname, workers, passes); show(t, err); return err }},
	}
	ran := false
	for _, s := range steps {
		if exp != "all" && exp != s.id {
			continue
		}
		ran = true
		if err := s.fn(); err != nil {
			return fmt.Errorf("%s: %w", s.id, err)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want E1..E8, EP or all)", exp)
	}
	if ablations {
		t, err := bench.RunAblationDeltaCap()
		show(t, err)
		if err != nil {
			return err
		}
		t2, err := bench.RunAblationHash(gname)
		show(t2, err)
		if err != nil {
			return err
		}
	}
	return nil
}

func show(t *bench.Table, err error) {
	if err == nil && t != nil {
		fmt.Println(t)
	}
}
