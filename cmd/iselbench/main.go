// Command iselbench regenerates the evaluation tables and figures of the
// reproduction (see DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	iselbench                  # run every experiment
//	iselbench -experiment E4   # one experiment
//	iselbench -grammar mips    # grammar for the per-grammar experiments
//	iselbench -ablations       # also run the design-choice ablations
//	iselbench -experiment EP -workers 1,2,4,8
//	                           # parallel labeling scaling (one warm
//	                           # engine shared by a worker pool)
//	iselbench -experiment SV -clients 1,2,4,8
//	                           # compilation-server replay: N concurrent
//	                           # clients multiplexed onto one warm engine
//	                           # through internal/server (the Server that
//	                           # cmd/iselserver fronts)
//	iselbench -experiment SV -swap-at 100
//	                           # mid-traffic hot-swap scenario: swap the
//	                           # served table set after 100 jobs, under
//	                           # injected faults (corrupt blob, panicking
//	                           # cost fn, cancellation racing cutover,
//	                           # saturated queue), asserting zero failed
//	                           # requests, exact accounting and warmth
//	                           # continuity
//	iselbench -experiment PF -perf-out BENCH_PR3.json
//	                           # machine-readable warm-path trajectory:
//	                           # cold/warm ns/node, allocs per corpus pass,
//	                           # table bytes — committed per PR so hot-path
//	                           # changes have a history to diff against
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("experiment", "all", "experiment to run: E1..E8, EP, SV, PF or all")
	gname := flag.String("grammar", "x86", "grammar for per-grammar experiments (E3, E4, E5, E7, EP, SV)")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations")
	workers := flag.String("workers", "1,2,4,8", "worker counts for the EP parallel-scaling experiment")
	passes := flag.Int("passes", 20, "corpus passes per EP configuration")
	clients := flag.String("clients", "1,2,4,8", "client counts for the SV compilation-server experiment")
	svMachines := flag.String("machines", "", "comma-separated machines for the SV mixed-machine replay (defaults to -grammar; several names interleave clients across machines)")
	svWorkers := flag.Int("sv-workers", 0, "server worker-pool size for SV (0 = GOMAXPROCS)")
	svPasses := flag.Int("sv-passes", 10, "corpus passes per client per SV configuration")
	swapAt := flag.Int("swap-at", 0, "run the SV mid-traffic-swap scenario instead of the throughput replay, hot-swapping after N resolved jobs (0 = off; negative = swap at the halfway point)")
	replicas := flag.Int("replicas", 0, "run the SV replay through a fleet of N cluster replicas behind the consistent-hash router instead of one in-process server (0 = off)")
	replication := flag.Int("replication", 2, "ring owners per machine for the -replicas fleet")
	killReplica := flag.Int("kill-replica", -1, "halfway through the -replicas replay, hard-kill the primary ring owner of the Nth served machine (asserting zero failed client requests and real failovers; -1 = off)")
	perfOut := flag.String("perf-out", "", "write the PF experiment's report to this JSON file (e.g. BENCH_PR3.json)")
	perfPasses := flag.Int("perf-passes", 30, "timed corpus passes per grammar for PF")
	traceOut := flag.String("trace-out", "", "after the SV replay, dump the serving tier's slowlog (slowest requests with per-stage spans; hop chains in -replicas mode) as JSON to this file")
	flag.Parse()
	bench.SVTraceDump = *traceOut

	ws, err := parseCounts("-workers", *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iselbench:", err)
		os.Exit(1)
	}
	cs, err := parseCounts("-clients", *clients)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iselbench:", err)
		os.Exit(1)
	}
	if err := run(*exp, *gname, *svMachines, *ablations, ws, *passes, cs, *svWorkers, *svPasses, *swapAt, *replicas, *replication, *killReplica, *perfOut, *perfPasses); err != nil {
		fmt.Fprintln(os.Stderr, "iselbench:", err)
		os.Exit(1)
	}
}

func parseCounts(flagName, s string) ([]int, error) {
	var ws []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad %s entry %q (want positive integers)", flagName, part)
		}
		ws = append(ws, n)
	}
	return ws, nil
}

func run(exp, gname, svMachines string, ablations bool, workers []int, passes int, clients []int, svWorkers, svPasses, swapAt, replicas, replication, killReplica int, perfOut string, perfPasses int) error {
	gnames := []string{gname}
	if svMachines != "" {
		gnames = nil
		for _, part := range strings.Split(svMachines, ",") {
			if part = strings.TrimSpace(part); part != "" {
				gnames = append(gnames, part)
			}
		}
	}
	type step struct {
		id string
		fn func() error
	}
	steps := []step{
		{"E1", func() error { _, t, err := bench.RunE1(); show(t, err); return err }},
		{"E2", func() error { _, t, err := bench.RunE2(); show(t, err); return err }},
		{"E3", func() error {
			for _, g := range []string{gname, "jit64"} {
				_, t, err := bench.RunE3(g)
				show(t, err)
				if err != nil {
					return err
				}
				if g == gname && gname == "jit64" {
					break
				}
			}
			return nil
		}},
		{"E4", func() error { _, t, err := bench.RunE4(gname); show(t, err); return err }},
		{"E5", func() error {
			_, fig, err := bench.RunE5(gname)
			if err == nil {
				fmt.Println(fig)
			}
			return err
		}},
		{"E6", func() error { _, t, err := bench.RunE6(); show(t, err); return err }},
		{"E7", func() error { _, t, err := bench.RunE7(gname); show(t, err); return err }},
		{"E8", func() error { _, t, err := bench.RunE8(); show(t, err); return err }},
		{"EP", func() error { _, t, err := bench.RunParallel(gname, workers, passes); show(t, err); return err }},
		{"SV", func() error {
			if replicas > 0 {
				// Distributed replay: N replicas behind the router, warm
				// via the blob exchange, zero-failed-request + exact fleet
				// accounting asserted (see internal/bench/cluster.go).
				nClients := 0
				for _, c := range clients {
					if c > nClients {
						nClients = c
					}
				}
				_, t, err := bench.RunClusterSV(gnames, replicas, replication, nClients, svPasses, svWorkers, killReplica)
				show(t, err)
				return err
			}
			if swapAt != 0 {
				// Mid-traffic-swap robustness scenario: hot-swap the served
				// table set after swapAt resolved jobs, under each injected
				// fault, asserting zero failed requests, exact accounting and
				// warmth continuity (see internal/bench/swap.go).
				nClients := 0
				for _, c := range clients {
					if c > nClients {
						nClients = c
					}
				}
				t, err := bench.RunServerSwap(gnames[0], nClients, svWorkers, svPasses, swapAt)
				show(t, err)
				return err
			}
			_, t, warmth, err := bench.RunServer(gnames, clients, svWorkers, svPasses)
			show(warmth, err)
			show(t, err)
			return err
		}},
		{"PF", func() error {
			rep, t, err := bench.RunPerf(perfPasses)
			show(t, err)
			if err != nil {
				return err
			}
			if perfOut != "" {
				if err := rep.WriteJSON(perfOut); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", perfOut)
			}
			return nil
		}},
	}
	ran := false
	for _, s := range steps {
		if exp != "all" && exp != s.id {
			continue
		}
		ran = true
		if err := s.fn(); err != nil {
			return fmt.Errorf("%s: %w", s.id, err)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want E1..E8, EP, SV, PF or all)", exp)
	}
	if ablations {
		t, err := bench.RunAblationDeltaCap()
		show(t, err)
		if err != nil {
			return err
		}
		t2, err := bench.RunAblationHash(gname)
		show(t2, err)
		if err != nil {
			return err
		}
	}
	return nil
}

func show(t *bench.Table, err error) {
	if err == nil && t != nil {
		fmt.Println(t)
	}
}
