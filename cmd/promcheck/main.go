// Command promcheck validates a Prometheus text exposition read from
// stdin (or the files named as arguments): every line must be a
// well-formed comment, HELP/TYPE header, or sample. It prints the
// sample count and exits nonzero on the first malformed line — the CI
// smoke gate for the serving tier's /metrics endpoints, with no
// external prometheus dependency.
//
// Usage:
//
//	curl -s localhost:8931/metrics | promcheck
//	promcheck scrape1.txt scrape2.txt
package main

import (
	"fmt"
	"os"

	"repro/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		n, err := telemetry.ParseProm(os.Stdin)
		report("stdin", n, err)
		return
	}
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "promcheck:", err)
			os.Exit(1)
		}
		n, err := telemetry.ParseProm(f)
		f.Close()
		report(path, n, err)
	}
}

func report(src string, n int, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", src, err)
		os.Exit(1)
	}
	fmt.Printf("promcheck: %s: %d samples ok\n", src, n)
}
