// Command mincc compiles MinC programs (see internal/frontend) to
// assembly through a selectable instruction-selection engine — the
// reproduction's miniature lcc.
//
// Usage:
//
//	mincc -machine x86 prog.minc
//	mincc -machine mips -engine dp -workload fact     # built-in corpus program
//	mincc -list                                       # list corpus programs
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	machine := flag.String("machine", "x86", "machine description: "+strings.Join(repro.Machines(), ", "))
	engine := flag.String("engine", "ondemand", "engine: dp, static, ondemand")
	wl := flag.String("workload", "", "compile a built-in corpus program instead of a file")
	list := flag.Bool("list", false, "list built-in corpus programs")
	stats := flag.Bool("stats", false, "print selector statistics after compiling")
	flag.Parse()

	if *list {
		for _, p := range workload.All() {
			fmt.Printf("%-14s %s\n", p.Name, p.Note)
		}
		return
	}
	if err := run(*machine, *engine, *wl, *stats, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "mincc:", err)
		os.Exit(1)
	}
}

func run(machine, engine, wl string, stats bool, args []string) error {
	var src, name string
	switch {
	case wl != "":
		p, err := workload.Get(wl)
		if err != nil {
			return err
		}
		src, name = p.Src, p.Name
	case len(args) == 1:
		data, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		src, name = string(data), args[0]
	default:
		return fmt.Errorf("pass exactly one source file, or -workload name (-list shows the corpus)")
	}

	m, err := repro.LoadMachine(machine)
	if err != nil {
		return err
	}
	unit, err := m.CompileMinC(src)
	if err != nil {
		return err
	}
	counters := &metrics.Counters{}
	sel, err := m.NewSelector(repro.Kind(engine), repro.Options{Metrics: counters})
	if err != nil {
		return err
	}
	fmt.Printf("; %s: %s, engine=%s\n", name, machine, engine)
	totalInstrs := 0
	var totalCost repro.Cost
	for _, fn := range unit.Funcs {
		out, err := sel.Compile(context.Background(), fn.Forest)
		if err != nil {
			return fmt.Errorf("%s: %w", fn.Name, err)
		}
		fmt.Printf("%s:  ; frame %d bytes, %d IR nodes, cost %d\n",
			fn.Name, fn.FrameSize, fn.Forest.NumNodes(), out.Cost)
		fmt.Print(out.Asm)
		totalInstrs += out.Instructions
		totalCost = totalCost.Add(out.Cost)
	}
	fmt.Printf("; total: %d instructions, cost %d\n", totalInstrs, totalCost)
	if stats {
		fmt.Printf("; counters: %s\n", counters)
		if sel.Kind() != repro.KindDP {
			fmt.Printf("; automaton: %d states, %d transitions, ~%d bytes\n",
				sel.States(), sel.Transitions(), sel.MemoryBytes())
		}
	}
	return nil
}
