// Command treeparse selects instructions for textual IR trees: the
// smallest way to watch the three engines work.
//
// Usage:
//
//	treeparse -machine x86 -engine ondemand 'ASGN(ADDRL[-8], ADD(INDIR(ADDRL[-8]), CNST[1]))'
//	echo 'RET(ADD(REG[1], CNST[2]))' | treeparse -machine mips
//
// Multiple trees may be separated by newlines or semicolons. With -stats,
// engine counters and automaton sizes are printed after the assembly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/metrics"
)

func main() {
	machine := flag.String("machine", "x86", "machine description: "+strings.Join(repro.Machines(), ", "))
	engine := flag.String("engine", "ondemand", "engine: dp, static, ondemand")
	stats := flag.Bool("stats", false, "print engine counters and automaton size")
	flag.Parse()

	if err := run(*machine, *engine, *stats, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "treeparse:", err)
		os.Exit(1)
	}
}

func run(machine, engine string, stats bool, args []string) error {
	src := strings.Join(args, " ")
	if strings.TrimSpace(src) == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		src = string(data)
	}
	if strings.TrimSpace(src) == "" {
		return fmt.Errorf("no input tree (pass as argument or on stdin)")
	}
	m, err := repro.LoadMachine(machine)
	if err != nil {
		return err
	}
	f, err := m.ParseTree(src)
	if err != nil {
		return err
	}
	counters := &metrics.Counters{}
	sel, err := m.NewSelector(repro.Kind(engine), repro.Options{Metrics: counters})
	if err != nil {
		return err
	}
	out, err := sel.Compile(context.Background(), f)
	if err != nil {
		return err
	}
	fmt.Printf("; %s, engine=%s, cost=%d, instructions=%d\n", machine, engine, out.Cost, out.Instructions)
	fmt.Print(out.Asm)
	if stats {
		fmt.Printf("; counters: %s\n", counters)
		if sel.Kind() != repro.KindDP {
			fmt.Printf("; automaton: %d states, %d transitions, ~%d bytes\n",
				sel.States(), sel.Transitions(), sel.MemoryBytes())
		}
	}
	return nil
}
