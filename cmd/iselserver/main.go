// Command iselserver runs the compilation server: one process hosting a
// registry of warm labeling engines — one per served machine description —
// shared by every client that connects. This is the deployment shape the
// paper's on-demand automata amortize best in (see internal/server).
//
// Usage:
//
//	iselserver -machines x86 -addr :8931
//	iselserver -machines x86,jit64,mips -kind ondemand -workers 8 -queue 64
//	iselserver -machines x86,jit64 -automaton-dir /var/lib/isel -timeout 2s
//
// Protocol (HTTP/JSON; see internal/server for the request schemas):
//
//	POST /compile?machine=x86  {"client":"ci-1","trees":"ADD(REG[1], CNST[2])"}
//	POST /compile              {"client":"ci-2","minc":"int main() { return 42; }"}
//	GET  /stats                every registered machine's warmth
//	GET  /healthz
//
// The machine query parameter picks the machine description; without it,
// requests land on the first -machines entry. -timeout bounds each job
// (queue wait + compile; exceeded jobs answer 504); -max-states bounds
// each on-demand automaton's state table (exhausted budgets answer 503).
//
// With -automaton-dir, each machine's saved on-demand tables are loaded
// at boot (warm start: zero misses on traffic the previous run saw) and
// saved back on graceful drain, one <machine>.automaton file each.
//
// SIGINT/SIGTERM shut down gracefully: in-flight compilations drain, the
// automata persist (when -automaton-dir is set), and the final
// warmth/throughput stats are printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/server"
)

func main() {
	machines := flag.String("machines", "x86", "comma-separated machine descriptions to serve (first is the default)")
	kind := flag.String("kind", string(repro.KindOnDemand), "labeling engine kind (dp, static, ondemand)")
	addr := flag.String("addr", ":8931", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "work-queue depth (0 = 4*workers)")
	timeout := flag.Duration("timeout", 0, "per-request deadline for each compile job (0 = none)")
	maxStates := flag.Int("max-states", 0, "state budget per on-demand automaton (0 = unlimited; exhausted budgets answer 503)")
	autoDir := flag.String("automaton-dir", "", "directory of persisted automata: loaded per machine at boot, saved on graceful drain")
	flag.Parse()

	if err := run(*machines, *kind, *addr, *autoDir, *workers, *queue, *maxStates, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "iselserver:", err)
		os.Exit(1)
	}
}

func run(machines, kind, addr, autoDir string, workers, queue, maxStates int, timeout time.Duration) error {
	reg := repro.NewRegistry()
	if autoDir != "" {
		reg.SetAutomatonDir(autoDir)
	}
	var names []string
	for _, name := range strings.Split(machines, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if err := reg.Add(name, repro.Kind(kind), repro.Options{MaxStates: maxStates}); err != nil {
			return err
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return fmt.Errorf("no machines to serve (-machines %q)", machines)
	}
	// Construct every engine at boot: it surfaces bad machine names and
	// corrupt automaton files before the listener opens, and it is the
	// moment persisted tables restore so first traffic is already warm.
	for _, name := range names {
		if err := reg.Warm(name); err != nil {
			return err
		}
	}
	if autoDir != "" {
		for name, snap := range reg.Snapshots() {
			if snap.States > 0 {
				fmt.Printf("iselserver: %s restored with %d states, %d transitions\n", name, snap.States, snap.Transitions)
			}
		}
	}

	srv := server.New(reg, server.Config{Workers: workers, QueueDepth: queue, RequestTimeout: timeout})
	hs := &http.Server{Addr: addr, Handler: server.NewHandler(srv)}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("iselserver: serving %s (%s engines, %d workers) on %s\n",
		strings.Join(names, ","), kind, srv.Workers(), addr)

	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Printf("iselserver: %v, draining...\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Even if the HTTP drain deadline is exceeded, the compilation server
	// itself must still drain (every accepted future resolves), the
	// automata must persist, and the final stats must print.
	httpErr := hs.Shutdown(ctx)
	srv.Shutdown()
	if autoDir != "" {
		if err := reg.SaveAll(); err != nil {
			fmt.Fprintln(os.Stderr, "iselserver: saving automata:", err)
			if httpErr == nil {
				httpErr = err
			}
		} else {
			fmt.Printf("iselserver: automata saved to %s\n", autoDir)
		}
	}
	st := srv.Stats()
	fmt.Printf("iselserver: served %d jobs (%d IR nodes, %d cancelled) for %d clients\n",
		st.Jobs, st.Nodes, st.Cancelled, st.Clients)
	for _, ms := range st.Machines {
		if !ms.Constructed {
			continue
		}
		fmt.Printf("iselserver: %s automaton ended at %d states, %d transitions, %d table bytes\n",
			ms.Machine, ms.Warmth.States, ms.Warmth.Transitions, ms.Warmth.MemoryBytes)
	}
	return httpErr
}
