// Command iselserver runs the compilation server: one process hosting a
// registry of warm labeling engines — one per served machine description —
// shared by every client that connects. This is the deployment shape the
// paper's on-demand automata amortize best in (see internal/server).
//
// Usage:
//
//	iselserver -machines x86 -addr :8931
//	iselserver -machines x86,jit64,mips -kind ondemand -workers 8 -queue 64
//	iselserver -machines x86,jit64 -automaton-dir /var/lib/isel -timeout 2s
//	iselserver -machines x86,jit64 -preload ./tables -max-table-bytes 8388608
//
// Protocol (HTTP/JSON; see internal/server for the request schemas):
//
//	POST /compile?machine=x86  {"client":"ci-1","trees":"ADD(REG[1], CNST[2])"}
//	POST /compile              {"client":"ci-2","minc":"int main() { return 42; }"}
//	POST /swap?machine=x86     rebuild the machine's table set and cut over with zero downtime
//	POST /evict?machine=x86    drop the machine's engine; next job rebuilds it
//	GET  /stats                every registered machine's warmth, version and drain state
//	GET  /readyz               200 once every boot machine is warm and no swap is mid-cutover
//	GET  /healthz              200 while the process accepts work at all
//	GET  /metrics              Prometheus text exposition: counters, gauges, stage histograms
//	GET  /version              build identity, uptime, per-machine grammar fingerprints
//	GET  /debug/slowlog        the N slowest requests with per-stage timings (and, on the
//	                           router, the failover hop chain naming every owner tried)
//
// Every compile response carries an X-Isel-Trace header summarizing the
// batch's slowest job stage by stage; ?trace=1 adds the full per-output
// timelines to the body. -pprof mounts net/http/pprof under
// /debug/pprof/ (all roles); -log-level sets the leveled logger's
// threshold.
//
// The machine query parameter picks the machine description; without it,
// requests land on the first -machines entry. -timeout bounds each job
// (queue wait + compile; exceeded jobs answer 504); -max-states bounds
// each on-demand automaton's state table (exhausted budgets answer 503);
// -shed turns a saturated queue from backpressure into load shedding
// (jobs that would block answer 429 with Retry-After). POST /evict resets
// a machine (a capped automaton starts over without a restart).
// -max-machines keeps at most N engines live, evicting the least recently
// used; -max-table-bytes bounds the summed resident table bytes the same
// way (live versions draining through a swap count toward the budget but
// are never its victims — cold machines are).
//
// With -automaton-dir, each machine's saved on-demand tables are loaded
// at boot (warm start: zero misses on traffic the previous run saw) and
// saved back on graceful drain, one <machine>.automaton file each. A
// corrupt file is quarantined to <machine>.automaton.bad and the machine
// constructs cold instead of failing.
//
// With -preload, each machine whose <machine>.isel blob exists in the
// given directory (written by cmd/iselgen) is served from those
// ahead-of-time tables. The blob's grammar fingerprint decides the
// engine: a full-grammar blob for a grammar with dynamic-cost rules
// (written by `iselgen -hybrid`) is served by the `hybrid` engine — fixed
// operators warm before the first request, dynamic operators on-demand; a
// full-grammar blob for a fixed-only grammar is served fully `offline`;
// and a blob matching only the machine's fixed-cost subset (written by
// `iselgen -fixed`) serves that stripped subset offline, as before.
// Machines without a blob fall back to -kind; mismatched tables are
// rejected at boot, corrupt blobs are quarantined to <machine>.isel.bad
// and the machine falls back to in-process tables.
//
// SIGHUP re-scans -preload and -automaton-dir and hot-swaps every served
// machine to its freshly resolved recipe (POST /swap does the same for
// one machine): a newly deployed or regenerated blob is picked up — even
// electing a different engine kind — with zero downtime, live warmth
// carried over, and the old tables serving until their last in-flight job
// resolves. A machine whose new recipe fails to build keeps serving its
// old version.
//
// SIGINT/SIGTERM shut down gracefully: in-flight compilations drain, the
// automata persist (when -automaton-dir is set), and the final
// warmth/throughput stats are printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	machines := flag.String("machines", "x86", "comma-separated machine descriptions to serve (first is the default)")
	kind := flag.String("kind", string(repro.KindOnDemand), "labeling engine kind (dp, static, ondemand)")
	addr := flag.String("addr", ":8931", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "work-queue depth (0 = 4*workers)")
	timeout := flag.Duration("timeout", 0, "per-request deadline for each compile job (0 = none)")
	maxStates := flag.Int("max-states", 0, "state budget per on-demand automaton (0 = unlimited; exhausted budgets answer 503)")
	autoDir := flag.String("automaton-dir", "", "directory of persisted automata: loaded per machine at boot, saved on graceful drain")
	preload := flag.String("preload", "", "directory of iselgen .isel blobs: machines with a <machine>.isel file are served offline from those tables")
	maxMachines := flag.Int("max-machines", 0, "keep at most N engines constructed, evicting the least recently used (0 = unlimited)")
	maxTableBytes := flag.Int("max-table-bytes", 0, "byte budget for summed resident table bytes, evicting the least recently used machine when exceeded (0 = unlimited)")
	shed := flag.Bool("shed", false, "shed load when the work queue is full (429 + Retry-After) instead of blocking the submitter")
	role := flag.String("role", "standalone", "serving role: standalone, replica (fleet member with blob exchange), or router (fleet front end)")
	peers := flag.String("peers", "", "comma-separated replica base URLs (the fleet's static membership; required for -role replica|router)")
	self := flag.String("self", "", "this replica's base URL, exactly as it appears in -peers (required for -role replica)")
	replication := flag.Int("replication", 2, "ring owners per machine (clamped to the fleet size)")
	blobCache := flag.String("blob-cache", "", "replica blob-store directory for exchanged .isel artifacts (required for -role replica)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (off by default: profiling is opt-in)")
	logLevel := flag.String("log-level", "info", "log threshold: debug, info, warn, error")
	flag.Parse()

	lv, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "iselserver:", err)
		os.Exit(2)
	}
	cfg := serveConfig{
		machines: *machines, kind: *kind, addr: *addr,
		autoDir: *autoDir, preload: *preload,
		workers: *workers, queue: *queue,
		maxStates: *maxStates, maxMachines: *maxMachines, maxTableBytes: *maxTableBytes,
		timeout: *timeout, shed: *shed,
		role: *role, peers: splitList(*peers), self: *self,
		replication: *replication, blobCache: *blobCache,
		pprof: *pprofOn,
		log:   telemetry.NewLogger(os.Stdout, lv),
	}
	switch cfg.role {
	case "standalone":
		err = run(cfg)
	case "replica":
		err = runReplica(cfg)
	case "router":
		err = runRouter(cfg)
	default:
		err = fmt.Errorf("unknown -role %q (standalone, replica, router)", cfg.role)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "iselserver:", err)
		os.Exit(1)
	}
}

type serveConfig struct {
	machines, kind, addr, autoDir, preload string
	workers, queue, maxStates, maxMachines int
	maxTableBytes                          int
	timeout                                time.Duration
	shed                                   bool

	role, self, blobCache string
	peers                 []string
	replication           int

	pprof bool
	log   *telemetry.Logger
}

// mount wraps a role's handler with the process-wide debug surface:
// net/http/pprof under /debug/pprof/ when -pprof is set (opt-in — an
// open profiler is not a default any fleet wants). Everything else
// passes through to the role handler.
func (cfg serveConfig) mount(h http.Handler) http.Handler {
	if !cfg.pprof {
		return h
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func (cfg serveConfig) machineList() []string { return splitList(cfg.machines) }

// runReplica boots one fleet member: the full standalone serving stack
// plus the cluster's blob exchange — owned machines are made warm (local
// or peer blob, else compiled here and published) before the listener
// opens; see internal/cluster.
func runReplica(cfg serveConfig) error {
	if cfg.blobCache == "" {
		return fmt.Errorf("-role replica requires -blob-cache")
	}
	rep, err := cluster.NewReplica(cluster.ReplicaConfig{
		Self:         cfg.self,
		Peers:        cfg.peers,
		Machines:     cfg.machineList(),
		Replication:  cfg.replication,
		StoreDir:     cfg.blobCache,
		PreloadDir:   cfg.preload,
		FallbackKind: repro.Kind(cfg.kind),
		MaxStates:    cfg.maxStates,
		Server: server.Config{
			Workers: cfg.workers, QueueDepth: cfg.queue,
			RequestTimeout: cfg.timeout, ShedOnFull: cfg.shed,
		},
		Logf: cfg.log.Printf(telemetry.LevelInfo, "cluster"),
	})
	if err != nil {
		return err
	}
	rep.StartProbing(2 * time.Second)
	cfg.log.Infof("boot", "replica %s owns %s (fleet %s) on %s",
		cfg.self, strings.Join(rep.Owned(), ","), strings.Join(cfg.peers, ","), cfg.addr)
	return serveUntilSignal(cfg.addr, cfg.mount(rep.Handler()), rep.Shutdown)
}

// runRouter boots the fleet front end: consistent-hash proxying with
// failover, aggregated /stats, shard-aware /readyz.
func runRouter(cfg serveConfig) error {
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Peers:         cfg.peers,
		Machines:      cfg.machineList(),
		Replication:   cfg.replication,
		PerTryTimeout: cfg.timeout,
		Logf:          cfg.log.Printf(telemetry.LevelInfo, "router"),
	})
	if err != nil {
		return err
	}
	rt.StartProbing(2 * time.Second)
	cfg.log.Infof("boot", "router over %s (replication %d) on %s",
		strings.Join(cfg.peers, ","), cfg.replication, cfg.addr)
	return serveUntilSignal(cfg.addr, cfg.mount(rt.Handler()), rt.Stop)
}

// serveUntilSignal runs handler on addr until SIGINT/SIGTERM, then drains
// the HTTP listener and calls shutdown.
func serveUntilSignal(addr string, handler http.Handler, shutdown func()) error {
	hs := &http.Server{Addr: addr, Handler: handler}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Printf("iselserver: %v, draining...\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := hs.Shutdown(ctx)
	shutdown()
	return err
}

func run(cfg serveConfig) error {
	reg := repro.NewRegistry()
	// Quarantines and swap fallbacks are operator-actionable: warn level.
	reg.SetLogger(cfg.log.Printf(telemetry.LevelWarn, "registry"))
	if cfg.autoDir != "" {
		reg.SetAutomatonDir(cfg.autoDir)
	}
	if cfg.maxMachines > 0 {
		reg.SetMaxMachines(cfg.maxMachines)
	}
	if cfg.maxTableBytes > 0 {
		reg.SetMaxTableBytes(cfg.maxTableBytes)
	}
	var names []string
	for _, name := range strings.Split(cfg.machines, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		rc, err := cluster.ResolveRecipe(name, cfg.preload, cfg.kind, cfg.maxStates)
		if err != nil {
			return err
		}
		if err := reg.AddMachine(rc.M, rc.Kind, rc.Opt); err != nil {
			return err
		}
		if rc.Detail != "" {
			fmt.Printf("iselserver: %s preloaded from %s (%s)\n", name, rc.Opt.PreloadPath, rc.Detail)
		} else if cfg.preload != "" {
			fmt.Printf("iselserver: no %s.isel in %s; serving %s with the %s engine\n", name, cfg.preload, name, cfg.kind)
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return fmt.Errorf("no machines to serve (-machines %q)", cfg.machines)
	}
	// Construct engines at boot: it surfaces bad machine names before the
	// listener opens, and it is the moment persisted/preloaded tables
	// restore so first traffic is already warm. With -max-machines below
	// the machine count, warming everything would just construct-and-evict
	// in registration order, so only the first N (the default machine
	// first) warm eagerly; the rest construct on their first request. The
	// eagerly warmed set is what /readyz vouches for.
	warmN := len(names)
	if cfg.maxMachines > 0 && cfg.maxMachines < warmN {
		warmN = cfg.maxMachines
		fmt.Printf("iselserver: -max-machines %d < %d machines; warming %s eagerly, the rest construct on first request\n",
			cfg.maxMachines, len(names), strings.Join(names[:warmN], ","))
	}
	for _, name := range names[:warmN] {
		if err := reg.Warm(name); err != nil {
			return err
		}
		if err := reg.ExpectWarm(name); err != nil {
			return err
		}
	}
	if cfg.autoDir != "" {
		for name, snap := range reg.Snapshots() {
			if snap.States > 0 {
				fmt.Printf("iselserver: %s restored with %d states, %d transitions\n", name, snap.States, snap.Transitions)
			}
		}
	}

	srv := server.New(reg, server.Config{
		Workers: cfg.workers, QueueDepth: cfg.queue,
		RequestTimeout: cfg.timeout, ShedOnFull: cfg.shed,
	})
	hs := &http.Server{Addr: cfg.addr, Handler: cfg.mount(server.NewHandler(srv))}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	// Engines may differ per machine (preloaded ones serve offline), so
	// the banner reports each machine's actual kind.
	var served []string
	for _, st := range reg.Status() {
		served = append(served, fmt.Sprintf("%s[%s]", st.Machine, st.Kind))
	}
	fmt.Printf("iselserver: serving %s (%d workers) on %s\n",
		strings.Join(served, ","), srv.Workers(), cfg.addr)

	var sig os.Signal
loop:
	for {
		select {
		case err := <-errc:
			return err
		case sig = <-stop:
			if sig != syscall.SIGHUP {
				break loop
			}
			rescan(reg, names, cfg)
		}
	}
	fmt.Printf("iselserver: %v, draining...\n", sig)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Even if the HTTP drain deadline is exceeded, the compilation server
	// itself must still drain (every accepted future resolves), the
	// automata must persist, and the final stats must print.
	httpErr := hs.Shutdown(ctx)
	srv.Shutdown()
	if cfg.autoDir != "" {
		if err := reg.SaveAll(); err != nil {
			fmt.Fprintln(os.Stderr, "iselserver: saving automata:", err)
			if httpErr == nil {
				httpErr = err
			}
		} else {
			fmt.Printf("iselserver: automata saved to %s\n", cfg.autoDir)
		}
	}
	st := srv.Stats()
	fmt.Printf("iselserver: served %d jobs (%d IR nodes, %d cancelled) for %d clients\n",
		st.Jobs, st.Nodes, st.Cancelled, st.Clients)
	for _, ms := range st.Machines {
		if !ms.Constructed {
			continue
		}
		fmt.Printf("iselserver: %s automaton ended at %d states, %d transitions, %d table bytes\n",
			ms.Machine, ms.Warmth.States, ms.Warmth.Transitions, ms.Warmth.MemoryBytes)
	}
	return httpErr
}

// rescan re-resolves every served machine's recipe against the artifact
// directories and hot-swaps each to it. Per-machine failures (a corrupt
// new blob, a fingerprint mismatch, a racing swap) are logged and leave
// that machine's old version serving — a bad re-deploy never takes
// traffic down.
func rescan(reg *repro.Registry, names []string, cfg serveConfig) {
	fmt.Printf("iselserver: SIGHUP, re-scanning artifacts and hot-swapping %s\n", strings.Join(names, ","))
	for _, name := range names {
		rc, err := cluster.ResolveRecipe(name, cfg.preload, cfg.kind, cfg.maxStates)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iselserver: %s: %v; the old version keeps serving\n", name, err)
			continue
		}
		if err := reg.SwapMachine(rc.M, rc.Kind, rc.Opt); err != nil {
			fmt.Fprintf(os.Stderr, "iselserver: %s: %v\n", name, err)
			continue
		}
		for _, st := range reg.Status() {
			if st.Machine == name {
				detail := rc.Detail
				if detail == "" {
					detail = fmt.Sprintf("%s engine", rc.Kind)
				}
				fmt.Printf("iselserver: %s now v%d (%s)\n", name, st.Version, detail)
				break
			}
		}
	}
}
