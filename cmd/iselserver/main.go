// Command iselserver runs the compilation server: one warm labeling
// engine shared by every client that connects — the deployment shape the
// paper's on-demand automata amortize best in (see internal/server).
//
// Usage:
//
//	iselserver -machine x86 -addr :8931
//	iselserver -machine jit64 -kind ondemand -workers 8 -queue 64
//
// Protocol (HTTP/JSON; see internal/server for the request schemas):
//
//	POST /compile  {"client":"ci-1","trees":"ADD(REG[1], CNST[2])"}
//	POST /compile  {"client":"ci-2","minc":"int main() { return 42; }"}
//	GET  /stats
//	GET  /healthz
//
// SIGINT/SIGTERM shut down gracefully: in-flight compilations drain and
// the final warmth/throughput stats are printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/server"
)

func main() {
	machine := flag.String("machine", "x86", "machine description to serve")
	kind := flag.String("kind", string(repro.KindOnDemand), "labeling engine kind (dp, static, ondemand)")
	addr := flag.String("addr", ":8931", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "work-queue depth (0 = 4*workers)")
	flag.Parse()

	if err := run(*machine, *kind, *addr, *workers, *queue); err != nil {
		fmt.Fprintln(os.Stderr, "iselserver:", err)
		os.Exit(1)
	}
}

func run(machine, kind, addr string, workers, queue int) error {
	m, err := repro.LoadMachine(machine)
	if err != nil {
		return err
	}
	sel, err := m.NewSelector(repro.Kind(kind), repro.Options{})
	if err != nil {
		return err
	}
	srv := server.New(sel, server.Config{Workers: workers, QueueDepth: queue})
	hs := &http.Server{Addr: addr, Handler: server.NewHandler(srv, m)}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("iselserver: serving %s (%s engine, %d workers) on %s\n",
		machine, sel.Kind(), srv.Workers(), addr)

	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Printf("iselserver: %v, draining...\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Even if the HTTP drain deadline is exceeded, the compilation server
	// itself must still drain (every accepted future resolves) and the
	// final stats must print.
	httpErr := hs.Shutdown(ctx)
	srv.Shutdown()
	st := srv.Stats()
	fmt.Printf("iselserver: served %d jobs (%d IR nodes) for %d clients; automaton ended at %d states, %d transitions, %d table bytes\n",
		st.Jobs, st.Nodes, st.Clients, st.Warmth.States, st.Warmth.Transitions, st.Warmth.MemoryBytes)
	return httpErr
}
