// Command iselserver runs the compilation server: one process hosting a
// registry of warm labeling engines — one per served machine description —
// shared by every client that connects. This is the deployment shape the
// paper's on-demand automata amortize best in (see internal/server).
//
// Usage:
//
//	iselserver -machines x86 -addr :8931
//	iselserver -machines x86,jit64,mips -kind ondemand -workers 8 -queue 64
//	iselserver -machines x86,jit64 -automaton-dir /var/lib/isel -timeout 2s
//	iselserver -machines x86,jit64 -preload ./tables
//
// Protocol (HTTP/JSON; see internal/server for the request schemas):
//
//	POST /compile?machine=x86  {"client":"ci-1","trees":"ADD(REG[1], CNST[2])"}
//	POST /compile              {"client":"ci-2","minc":"int main() { return 42; }"}
//	POST /evict?machine=x86    drop the machine's engine; next job rebuilds it
//	GET  /stats                every registered machine's warmth
//	GET  /healthz
//
// The machine query parameter picks the machine description; without it,
// requests land on the first -machines entry. -timeout bounds each job
// (queue wait + compile; exceeded jobs answer 504); -max-states bounds
// each on-demand automaton's state table (exhausted budgets answer 503);
// POST /evict resets a machine (a capped automaton starts over without a
// restart). -max-machines keeps at most N engines live, evicting the
// least recently used — cold machines are dropped, their next request
// reconstructs them.
//
// With -automaton-dir, each machine's saved on-demand tables are loaded
// at boot (warm start: zero misses on traffic the previous run saw) and
// saved back on graceful drain, one <machine>.automaton file each.
//
// With -preload, each machine whose <machine>.isel blob exists in the
// given directory (written by cmd/iselgen) is served from those
// ahead-of-time tables. The blob's grammar fingerprint decides the
// engine: a full-grammar blob for a grammar with dynamic-cost rules
// (written by `iselgen -hybrid`) is served by the `hybrid` engine — fixed
// operators warm before the first request, dynamic operators on-demand; a
// full-grammar blob for a fixed-only grammar is served fully `offline`;
// and a blob matching only the machine's fixed-cost subset (written by
// `iselgen -fixed`) serves that stripped subset offline, as before.
// Machines without a blob fall back to -kind; mismatched tables are
// rejected at boot.
//
// SIGINT/SIGTERM shut down gracefully: in-flight compilations drain, the
// automata persist (when -automaton-dir is set), and the final
// warmth/throughput stats are printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/gen"
	"repro/internal/server"
)

func main() {
	machines := flag.String("machines", "x86", "comma-separated machine descriptions to serve (first is the default)")
	kind := flag.String("kind", string(repro.KindOnDemand), "labeling engine kind (dp, static, ondemand)")
	addr := flag.String("addr", ":8931", "listen address")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "work-queue depth (0 = 4*workers)")
	timeout := flag.Duration("timeout", 0, "per-request deadline for each compile job (0 = none)")
	maxStates := flag.Int("max-states", 0, "state budget per on-demand automaton (0 = unlimited; exhausted budgets answer 503)")
	autoDir := flag.String("automaton-dir", "", "directory of persisted automata: loaded per machine at boot, saved on graceful drain")
	preload := flag.String("preload", "", "directory of iselgen .isel blobs: machines with a <machine>.isel file are served offline from those tables")
	maxMachines := flag.Int("max-machines", 0, "keep at most N engines constructed, evicting the least recently used (0 = unlimited)")
	flag.Parse()

	if err := run(*machines, *kind, *addr, *autoDir, *preload, *workers, *queue, *maxStates, *maxMachines, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "iselserver:", err)
		os.Exit(1)
	}
}

// addPreloaded registers name to be served from the iselgen blob at path,
// if it exists, and reports the engine kind it chose ("" when no blob).
// A blob carrying the machine's full-grammar fingerprint serves the whole
// grammar: hybrid when the grammar has dynamic-cost rules (the blob is
// its fixed-operator subset; dynamic operators fall through on-demand),
// offline when it has none. A blob carrying only the fixed-subset
// fingerprint serves the stripped machine offline under the requested
// name, as earlier PRs' -fixed blobs did.
func addPreloaded(reg *repro.Registry, name, path string) (detail string, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	hdr, err := gen.ReadHeader(f)
	f.Close()
	if err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	m, err := repro.LoadMachine(name)
	if err != nil {
		return "", err
	}
	kind := repro.KindOffline
	detail = "offline engine: full grammar, fully warm"
	if gen.Fingerprint(m.Grammar) != hdr.Fingerprint {
		fixed, err := m.FixedMachine()
		if err != nil {
			return "", err
		}
		if gen.Fingerprint(fixed.Grammar) != hdr.Fingerprint {
			return "", fmt.Errorf("%s: tables were generated for grammar %q, which matches neither machine %s nor its fixed subset (regenerate with iselgen)",
				path, hdr.Grammar, name)
		}
		m = fixed
		detail = "offline engine: fixed-cost subset, fully warm"
	} else if m.Grammar.HasAnyDynRules() {
		kind = repro.KindHybrid
		detail = "hybrid engine: fixed operators warm, dynamic on-demand"
	}
	m.Name = name // serve under the requested name
	if err := reg.AddMachine(m, kind, repro.Options{PreloadPath: path}); err != nil {
		return "", err
	}
	return detail, nil
}

func run(machines, kind, addr, autoDir, preload string, workers, queue, maxStates, maxMachines int, timeout time.Duration) error {
	reg := repro.NewRegistry()
	if autoDir != "" {
		reg.SetAutomatonDir(autoDir)
	}
	if maxMachines > 0 {
		reg.SetMaxMachines(maxMachines)
	}
	var names []string
	for _, name := range strings.Split(machines, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if preload != "" {
			detail, err := addPreloaded(reg, name, filepath.Join(preload, name+".isel"))
			if err != nil {
				return err
			}
			if detail != "" {
				fmt.Printf("iselserver: %s preloaded from %s (%s)\n",
					name, filepath.Join(preload, name+".isel"), detail)
				names = append(names, name)
				continue
			}
			fmt.Printf("iselserver: no %s.isel in %s; serving %s with the %s engine\n", name, preload, name, kind)
		}
		// Validate the name now even though construction is lazy: with
		// -max-machines below the machine count not every engine warms at
		// boot, and a typo must not become a sticky 500 at request time.
		if _, err := repro.LoadMachine(name); err != nil {
			return err
		}
		if err := reg.Add(name, repro.Kind(kind), repro.Options{MaxStates: maxStates}); err != nil {
			return err
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return fmt.Errorf("no machines to serve (-machines %q)", machines)
	}
	// Construct engines at boot: it surfaces bad machine names and corrupt
	// automaton files before the listener opens, and it is the moment
	// persisted/preloaded tables restore so first traffic is already warm.
	// With -max-machines below the machine count, warming everything would
	// just construct-and-evict in registration order, so only the first N
	// (the default machine first) warm eagerly; the rest construct on
	// their first request.
	warmN := len(names)
	if maxMachines > 0 && maxMachines < warmN {
		warmN = maxMachines
		fmt.Printf("iselserver: -max-machines %d < %d machines; warming %s eagerly, the rest construct on first request\n",
			maxMachines, len(names), strings.Join(names[:warmN], ","))
	}
	for _, name := range names[:warmN] {
		if err := reg.Warm(name); err != nil {
			return err
		}
	}
	if autoDir != "" {
		for name, snap := range reg.Snapshots() {
			if snap.States > 0 {
				fmt.Printf("iselserver: %s restored with %d states, %d transitions\n", name, snap.States, snap.Transitions)
			}
		}
	}

	srv := server.New(reg, server.Config{Workers: workers, QueueDepth: queue, RequestTimeout: timeout})
	hs := &http.Server{Addr: addr, Handler: server.NewHandler(srv)}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	// Engines may differ per machine (preloaded ones serve offline), so
	// the banner reports each machine's actual kind.
	var served []string
	for _, st := range reg.Status() {
		served = append(served, fmt.Sprintf("%s[%s]", st.Machine, st.Kind))
	}
	fmt.Printf("iselserver: serving %s (%d workers) on %s\n",
		strings.Join(served, ","), srv.Workers(), addr)

	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Printf("iselserver: %v, draining...\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Even if the HTTP drain deadline is exceeded, the compilation server
	// itself must still drain (every accepted future resolves), the
	// automata must persist, and the final stats must print.
	httpErr := hs.Shutdown(ctx)
	srv.Shutdown()
	if autoDir != "" {
		if err := reg.SaveAll(); err != nil {
			fmt.Fprintln(os.Stderr, "iselserver: saving automata:", err)
			if httpErr == nil {
				httpErr = err
			}
		} else {
			fmt.Printf("iselserver: automata saved to %s\n", autoDir)
		}
	}
	st := srv.Stats()
	fmt.Printf("iselserver: served %d jobs (%d IR nodes, %d cancelled) for %d clients\n",
		st.Jobs, st.Nodes, st.Cancelled, st.Clients)
	for _, ms := range st.Machines {
		if !ms.Constructed {
			continue
		}
		fmt.Printf("iselserver: %s automaton ended at %d states, %d transitions, %d table bytes\n",
			ms.Machine, ms.Warmth.States, ms.Warmth.Transitions, ms.Warmth.MemoryBytes)
	}
	return httpErr
}
