// Allocation-regression guards for the warm path. The paper's pitch is
// that a warm on-demand automaton labels a node for "the cost of one table
// lookup"; these tests pin down the Go-side corollary — a warm label +
// reduce performs zero heap allocations, because labelings, reducer
// scratch and dynamic-cost buffers are all pooled and the transition
// tables are flat id arrays.
//
// The guards run in the -race CI job too (exercising the pooled paths
// under the detector), but the strict counts are only asserted in normal
// builds: under -race, sync.Pool randomly drops Put items by design.
package repro_test

import (
	"context"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// warmSelector builds a selector for gname (stripped of dynamic rules if
// fixed) and warms it over the whole workload corpus.
func warmSelector(t *testing.T, gname string, fixed bool) (*repro.Selector, []*ir.Forest) {
	t.Helper()
	m, err := repro.LoadMachine(gname)
	if err != nil {
		t.Fatal(err)
	}
	if fixed {
		if m, err = m.FixedMachine(); err != nil {
			t.Fatal(err)
		}
	}
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var fs []*ir.Forest
	for _, c := range workload.MustCompileAll(m.Grammar) {
		fs = append(fs, c.Forests()...)
	}
	for i := 0; i < 3; i++ { // warm: all states and transitions constructed
		for _, f := range fs {
			if _, err := sel.SelectCost(f); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sel, fs
}

func assertZeroAllocs(t *testing.T, what string, allocs float64) {
	t.Helper()
	t.Logf("%s: %.2f allocs/op", what, allocs)
	if raceEnabled {
		t.Log("race detector enabled: sync.Pool drops items by design; count not asserted")
		return
	}
	if allocs != 0 {
		t.Errorf("%s allocated %.2f times per op, want 0", what, allocs)
	}
}

// TestWarmSelectCostAllocFree: a warm label+reduce over a fixed-cost
// grammar must not allocate at all — the dense fast path plus the pooled
// reducer.
func TestWarmSelectCostAllocFree(t *testing.T) {
	sel, fs := warmSelector(t, "x86", true)
	allocs := testing.AllocsPerRun(100, func() {
		for _, f := range fs {
			sel.SelectCost(f)
		}
	})
	assertZeroAllocs(t, "warm SelectCost (fixed x86, whole corpus)", allocs)
}

// TestWarmDynSelectCostAllocFree: the same guarantee with dynamic rules
// active — the hit path probes the per-op hash with a no-copy view of the
// pooled signature bytes, so even dynamic-op nodes stay allocation-free
// once their transitions exist.
func TestWarmDynSelectCostAllocFree(t *testing.T) {
	sel, fs := warmSelector(t, "x86", false)
	allocs := testing.AllocsPerRun(100, func() {
		for _, f := range fs {
			sel.SelectCost(f)
		}
	})
	assertZeroAllocs(t, "warm SelectCost (dynamic x86, whole corpus)", allocs)
}

// TestWarmOfflineSelectCostAllocFree: the ahead-of-time engine makes the
// same warm-path promise as the on-demand one — and for it "warm" is the
// only state there is: tables are complete before the first request, so
// label + reduce must allocate nothing from call one (after one pass to
// fill the labeling/reducer pools).
func TestWarmOfflineSelectCostAllocFree(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := m.FixedMachine()
	if err != nil {
		t.Fatal(err)
	}
	sel, err := fixed.NewSelector(repro.KindOffline, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var fs []*ir.Forest
	for _, c := range workload.MustCompileAll(fixed.Grammar) {
		fs = append(fs, c.Forests()...)
	}
	for _, f := range fs { // fill the pools; no states are constructed here
		if _, err := sel.SelectCost(f); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, f := range fs {
			sel.SelectCost(f)
		}
	})
	assertZeroAllocs(t, "warm SelectCost (offline x86.fixed, whole corpus)", allocs)
}

// TestWarmCostOnlyCompileAllocs: the v2 spelling of the same path —
// Compile(ctx, f, CostOnly()) — may allocate only its *Output result (the
// option closure is static and the variadic slice stays on the stack):
// nothing per node, nothing proportional to forest size.
func TestWarmCostOnlyCompileAllocs(t *testing.T) {
	sel, fs := warmSelector(t, "x86", true)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		for _, f := range fs {
			sel.Compile(ctx, f, repro.CostOnly())
		}
	})
	perCall := allocs / float64(len(fs))
	t.Logf("warm CostOnly Compile: %.2f allocs/op over %d forests (%.2f per call)", allocs, len(fs), perCall)
	if raceEnabled {
		return
	}
	if perCall > 2 {
		t.Errorf("warm CostOnly Compile allocates %.2f per call, want <= 2 (the Output result only)", perCall)
	}
}

// TestWarmLabelReleaseAllocFree pins the engine-level contract: a warm
// LabelStates whose labeling is handed back with ReleaseLabeling reuses
// every buffer.
func TestWarmLabelReleaseAllocFree(t *testing.T) {
	d := md.MustLoad("x86")
	e, err := core.New(d.Grammar, d.Env, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var fs []*ir.Forest
	for _, c := range workload.MustCompileAll(d.Grammar) {
		fs = append(fs, c.Forests()...)
	}
	for _, f := range fs {
		e.ReleaseLabeling(e.LabelStates(f))
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, f := range fs {
			e.ReleaseLabeling(e.LabelStates(f))
		}
	})
	assertZeroAllocs(t, "warm LabelStates+Release (dynamic x86, whole corpus)", allocs)
}

// TestWarmHybridSelectCostAllocFree: the hybrid engine inherits both
// halves' warm contracts at once — overlay hits are plain loads on
// immutable arrays, fallthrough hits are the on-demand engine's pooled
// hash path — so a warm label+reduce on the FULL dynamic x86 grammar must
// allocate nothing.
func TestWarmHybridSelectCostAllocFree(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := m.NewSelector(repro.KindHybrid, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var fs []*ir.Forest
	for _, c := range workload.MustCompileAll(m.Grammar) {
		fs = append(fs, c.Forests()...)
	}
	for i := 0; i < 3; i++ { // warm the dynamic fallthrough transitions
		for _, f := range fs {
			if _, err := sel.SelectCost(f); err != nil {
				t.Fatal(err)
			}
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, f := range fs {
			sel.SelectCost(f)
		}
	})
	assertZeroAllocs(t, "warm SelectCost (hybrid x86 full grammar, whole corpus)", allocs)
}

// TestWarmHybridCompileAllocsAreResultOnly: a warm full hybrid Compile —
// label across the fixed/dynamic boundary, reduce, emit — allocates
// exactly one *Output per forest, matching the on-demand engine's
// contract from PR 6.
func TestWarmHybridCompileAllocsAreResultOnly(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := m.NewSelector(repro.KindHybrid, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var fs []*ir.Forest
	for _, c := range workload.MustCompileAll(m.Grammar) {
		fs = append(fs, c.Forests()...)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ { // warm transitions, emitter pool and interner
		for _, f := range fs {
			if _, err := sel.Compile(ctx, f); err != nil {
				t.Fatal(err)
			}
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, f := range fs {
			sel.Compile(ctx, f)
		}
	})
	t.Logf("warm hybrid Compile: %.1f allocs per corpus pass over %d forests", allocs, len(fs))
	if raceEnabled {
		return
	}
	if allocs != float64(len(fs)) {
		t.Errorf("warm hybrid Compile allocates %.1f per corpus pass, want exactly %d (one *Output per call)",
			allocs, len(fs))
	}
}

// TestWarmCompileObservedAllocsAreResultOnly: the telemetry plane must
// be paid for — a warm CompileObserved carrying live counters AND a
// pooled trace allocates exactly what plain Compile does: one *Output
// per call. Stage marks are monotonic clock reads into a fixed struct;
// histogram records (done by the server, not here) are atomic adds.
// This is the "zero-overhead" in the telemetry plane's contract.
func TestWarmCompileObservedAllocsAreResultOnly(t *testing.T) {
	sel, fs := warmSelector(t, "x86", true)
	ctx := context.Background()
	var jm repro.Counters
	var pool telemetry.TracePool
	for _, f := range fs { // warm the emitter pool and intern the asm texts
		tr := pool.Get("x86", "ondemand", "alloc-test")
		if _, err := sel.CompileObserved(ctx, f, &jm, tr); err != nil {
			t.Fatal(err)
		}
		pool.Put(tr)
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, f := range fs {
			tr := pool.Get("x86", "ondemand", "alloc-test")
			sel.CompileObserved(ctx, f, &jm, tr)
			pool.Put(tr)
		}
	})
	t.Logf("warm CompileObserved: %.1f allocs per corpus pass over %d forests", allocs, len(fs))
	if raceEnabled {
		return
	}
	if allocs != float64(len(fs)) {
		t.Errorf("warm CompileObserved allocates %.1f per corpus pass, want exactly %d (telemetry must be free)",
			allocs, len(fs))
	}
}

// TestWarmCompileAllocsAreResultOnly: a full warm Compile allocates
// exactly its *Output result and nothing else — zero allocations per
// node. The emit layer's operand text lives in per-emitter arenas, the
// virtual-register names and bookkeeping slices are reused across Reset,
// and the assembly string of previously compiled code comes from the
// selector's interner instead of a fresh copy. One warm-up pass through
// Compile (SelectCost warming in warmSelector never touches the
// emitters) fills the emitter pool and the interner before counting.
func TestWarmCompileAllocsAreResultOnly(t *testing.T) {
	sel, fs := warmSelector(t, "x86", true)
	nodes := 0
	for _, f := range fs {
		nodes += f.NumNodes()
	}
	ctx := context.Background()
	for _, f := range fs { // warm the emitter pool and intern the asm texts
		if _, err := sel.Compile(ctx, f); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, f := range fs {
			sel.Compile(ctx, f)
		}
	})
	perNode := (allocs - float64(len(fs))) / float64(nodes)
	t.Logf("warm Compile: %.1f allocs per corpus pass over %d forests, %.3f/node over %d nodes",
		allocs, len(fs), perNode, nodes)
	if raceEnabled {
		return
	}
	if allocs != float64(len(fs)) {
		t.Errorf("warm Compile allocates %.1f per corpus pass, want exactly %d (one *Output per call, 0/node)",
			allocs, len(fs))
	}
}
