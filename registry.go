package repro

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// ErrUnknownMachine is the typed error Registry.Get fails with for names
// that were never registered — distinct from a registered machine whose
// construction failed, so front ends can answer "not found" vs "server
// fault" correctly. Match with errors.Is.
var ErrUnknownMachine = errors.New("repro: machine not registered")

// ErrNotEvictable is the typed error Registry.Evict fails with for
// entries registered via AddSelector: the registry did not construct
// their selector and cannot reconstruct it after dropping it. Match with
// errors.Is.
var ErrNotEvictable = errors.New("repro: machine registered via AddSelector cannot be evicted")

// ErrNotSwappable is the typed error Registry.Swap fails with for entries
// registered via AddSelector: the registry holds no recipe to rebuild
// them from. SwapMachine, which brings its own machine, still works for
// such names. Match with errors.Is.
var ErrNotSwappable = errors.New("repro: machine registered via AddSelector cannot be re-built by Swap")

// ErrSwapInProgress is the typed error Swap and Evict fail with while
// another swap of the same machine is mid-cutover: the machine's entry is
// about to be replaced, so a second swap (or an eviction) would race the
// cutover. Match with errors.Is; cmd/iselserver surfaces it as HTTP 409.
var ErrSwapInProgress = errors.New("repro: swap already in progress for this machine")

// Registry holds named, lazily-constructed, individually-warmed selectors
// for several machine descriptions — the multi-machine serving substrate
// behind internal/server and cmd/iselserver's /compile?machine=x
// dispatch. Each entry is registered cheaply (no grammar loading, no
// engine construction) and materialized exactly once, on first Get; from
// then on every caller shares the one warm selector, so each machine's
// automaton amortizes over all of its traffic independently.
//
// With an automaton directory configured (SetAutomatonDir), entries of
// persistence-capable kinds restore their saved tables when they are
// constructed and SaveAll writes the current tables back — warm starts
// across process restarts, one file per machine.
//
// Entries can also be dropped again: Evict resets one machine to
// unconstructed (its next Get rebuilds the selector from scratch — the
// way a MaxStates-capped automaton is reset without a restart), and
// SetMaxMachines / SetMaxTableBytes arm caps so cold machines are evicted
// automatically as hot ones construct.
//
// Table sets are versioned: every construction of a machine's selector is
// a new version (MachineStatus.Version), and Swap/SwapMachine replace a
// serving version with a freshly built one with zero downtime — the new
// version is constructed warm-ready beside the old, new Acquires route to
// it the instant it is published, and the old version is retired only
// when its last lease is released (in-flight and queued jobs drain on the
// tables they resolved). A failed swap leaves the old version serving.
//
// Add/AddMachine/SetAutomatonDir configure the registry and must complete
// before it is shared; Get, Acquire, Warm, Names, DefaultName, Status,
// Evict, Swap, SwapMachine, Ready and SaveAll are safe for concurrent
// use.
type Registry struct {
	mu       sync.Mutex
	entries  map[string]*regEntry
	order    []string // registration order; order[0] is the default
	dir      string   // automaton persistence directory ("" = disabled)
	maxLive  int      // LRU cap on constructed entries (0 = unlimited)
	maxBytes int64    // byte budget on resident tables (0 = unlimited)
	clock    atomic.Int64
	// draining holds replaced or evicted versions that still have live
	// leases: their tables stay resident (and counted against the byte
	// budget) until the last lease releases, but they are never eviction
	// victims — evicting the version that in-flight jobs are draining on
	// would defeat the swap's zero-downtime promise.
	draining map[string][]*regEntry
	// swapping marks machines with a swap mid-cutover; Evict and a second
	// Swap of the same machine refuse with ErrSwapInProgress while set.
	swapping map[string]bool
	logf     func(format string, args ...any)
}

// regEntry is one registered machine: a lazy constructor plus its
// materialized result. once guards construction so concurrent Gets of a
// cold entry build one selector. Eviction and swap never mutate an entry
// — they replace it with a fresh one — so a Get that raced the
// replacement simply finishes against the old version.
type regEntry struct {
	name string
	kind Kind
	opt  Options
	load func() (*Machine, error)
	// version is the table-set generation under this name: 1 for the
	// entry registered first, +1 for every replacement (swap, eviction,
	// or LRU/byte-budget reset). MachineStatus and /stats report it so
	// operators can watch a cutover land.
	version int
	// expectWarm marks machines a front end promised would be serving
	// warm (boot-preloaded machines): Ready reports not-ready until they
	// are constructed without error. Carried across replacements.
	expectWarm bool

	once sync.Once
	done atomic.Bool // set after construct completes; gates racy reads in Status
	m    *Machine
	sel  *Selector
	err  error
	// fp is the grammar fingerprint, cached at construction (0 while
	// cold); read behind done like m/sel/err.
	fp uint64
	// lastUse orders entries for LRU eviction: the registry clock value of
	// the entry's most recent Get.
	lastUse atomic.Int64
	// refs counts live leases (Acquire minus Release); retired is set when
	// the entry has been replaced (swap or eviction). A retired entry
	// whose refs reach zero is fully retired: removed from the draining
	// set, its tables no longer counted as resident.
	refs    atomic.Int64
	retired atomic.Bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		entries:  map[string]*regEntry{},
		draining: map[string][]*regEntry{},
		swapping: map[string]bool{},
		logf:     log.Printf,
	}
}

// SetLogger routes the registry's operational messages (file quarantines,
// swap fallbacks) to logf instead of the standard logger. Set it before
// the registry is shared; nil silences the messages.
func (r *Registry) SetLogger(logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	r.logf = logf
}

// SetAutomatonDir enables automaton persistence: on first construction an
// entry whose selector supports persistence loads dir/<name>.automaton if
// it exists, and SaveAll writes every constructed, persistence-capable
// selector back there. Set it before the first Get.
func (r *Registry) SetAutomatonDir(dir string) { r.dir = dir }

// Add registers the built-in machine description name (see Machines) to
// be served with the given engine kind and options. Construction —
// loading the grammar, building the engine, restoring saved tables — is
// deferred until the first Get. The first machine added is the registry's
// default.
func (r *Registry) Add(name string, kind Kind, opt Options) error {
	return r.add(&regEntry{
		name: name, kind: kind, opt: opt,
		load: func() (*Machine, error) { return LoadMachine(name) },
	})
}

// AddMachine registers an already-built machine (NewMachine grammars,
// FixedMachine variants) under m.Name. The selector is still constructed
// lazily on first Get.
func (r *Registry) AddMachine(m *Machine, kind Kind, opt Options) error {
	return r.add(&regEntry{
		name: m.Name, kind: kind, opt: opt,
		load: func() (*Machine, error) { return m, nil },
	})
}

// AddSelector registers an already-constructed selector under its
// machine's name — the adapter for harnesses that build a selector by
// hand (warmed, custom-configured) and then serve it. The entry is born
// constructed; the automaton directory does not apply to it on load
// (SaveAll still persists it when capable).
func (r *Registry) AddSelector(sel *Selector) error {
	e := &regEntry{
		name: sel.Machine().Name, kind: sel.Kind(), m: sel.Machine(), sel: sel,
		fp: core.Fingerprint(sel.Machine().Grammar),
	}
	e.once.Do(func() {}) // consume: Get must never re-construct this entry
	e.done.Store(true)
	return r.add(e)
}

func (r *Registry) add(e *regEntry) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.name]; dup {
		return fmt.Errorf("repro: machine %q registered twice", e.name)
	}
	e.version = 1
	r.entries[e.name] = e
	r.order = append(r.order, e.name)
	return nil
}

// ExpectWarm marks name as a machine the deployment promised would serve
// warm (a boot-preloaded machine): Ready reports not-ready until it is
// constructed without a sticky error. The mark survives swaps and
// evictions of the machine.
func (r *Registry) ExpectWarm(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return fmt.Errorf("%w: %q (have %v)", ErrUnknownMachine, name, r.names())
	}
	e.expectWarm = true
	return nil
}

// lookup resolves name (the default machine when empty) to its current
// entry, under the registry lock.
func (r *Registry) lookup(name string) (*regEntry, string, error) {
	r.mu.Lock()
	if name == "" && len(r.order) > 0 {
		name = r.order[0]
	}
	e, ok := r.entries[name]
	dir := r.dir
	r.mu.Unlock()
	if !ok {
		return nil, dir, fmt.Errorf("%w: %q (have %v)", ErrUnknownMachine, name, r.names())
	}
	return e, dir, nil
}

// materialize constructs e if it is still cold and applies the resource
// caps after a fresh construction.
func (r *Registry) materialize(e *regEntry, dir string) {
	e.lastUse.Store(r.clock.Add(1))
	constructed := false
	e.once.Do(func() {
		e.construct(dir, r.logf)
		e.done.Store(true)
		constructed = true
	})
	if constructed && e.err == nil {
		r.enforceBudget(e)
	}
}

// Get returns the machine and shared selector registered under name,
// constructing them on first use (and restoring the saved automaton when
// an automaton directory is configured). name == "" resolves to the
// default (first-registered) machine. Construction failures are sticky:
// every Get of a broken entry returns the same error.
//
// Get does not track the caller: a selector obtained this way stays valid
// for as long as the caller holds it (eviction and swap never break
// in-flight holders), but the registry cannot tell when the caller is
// done with it. Servers that drain versions across swaps use Acquire.
func (r *Registry) Get(name string) (*Machine, *Selector, error) {
	e, dir, err := r.lookup(name)
	if err != nil {
		return nil, nil, err
	}
	r.materialize(e, dir)
	return e.m, e.sel, e.err
}

// Lease is one tracked acquisition of a machine's current table-set
// version: the selector plus the version it belongs to. Release it when
// the work that resolved it completes — a version replaced by Swap stays
// resident exactly until its last lease is released.
type Lease struct {
	Machine  *Machine
	Selector *Selector
	// Version is the table-set generation this lease resolved.
	Version int

	r        *Registry
	e        *regEntry
	released atomic.Bool
}

// Release returns the lease. It is idempotent and safe to call
// concurrently; a nil lease is a no-op.
func (l *Lease) Release() {
	if l == nil || !l.released.CompareAndSwap(false, true) {
		return
	}
	if l.e.refs.Add(-1) == 0 && l.e.retired.Load() {
		l.r.fullyRetire(l.e)
	}
}

// Acquire is Get with version tracking: it resolves name's current
// version, counts the caller as in-flight on it, and returns a Lease the
// caller must Release when done. internal/server holds one lease per job,
// which is what lets Swap retire an old version the moment its last
// queued or in-flight job resolves.
func (r *Registry) Acquire(name string) (*Lease, error) {
	r.mu.Lock()
	if name == "" && len(r.order) > 0 {
		name = r.order[0]
	}
	e, ok := r.entries[name]
	dir := r.dir
	if ok {
		// Count the ref inside the lock so a concurrent Swap publishing a
		// replacement sees this caller and drains the version instead of
		// retiring it instantly.
		e.refs.Add(1)
	}
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownMachine, name, r.names())
	}
	l := &Lease{r: r, e: e}
	r.materialize(e, dir)
	if e.err != nil {
		l.Release()
		return nil, e.err
	}
	l.Machine, l.Selector, l.Version = e.m, e.sel, e.version
	return l, nil
}

// fullyRetire removes a retired, lease-free entry from the draining set,
// dropping its tables from the resident-byte accounting.
func (r *Registry) fullyRetire(e *regEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.refs.Load() != 0 {
		return // a racing Acquire revived it; its Release will come back
	}
	ds := r.draining[e.name]
	for i, d := range ds {
		if d == e {
			r.draining[e.name] = append(ds[:i], ds[i+1:]...)
			break
		}
	}
	if len(r.draining[e.name]) == 0 {
		delete(r.draining, e.name)
	}
}

// Swap rebuilds name's table set from its registered recipe and cuts
// traffic over to it with zero downtime: the new version is constructed
// fully warm-ready beside the old one (re-reading any preload blob or
// persisted automaton from disk, so a re-deployed grammar artifact is
// picked up), then published atomically — Acquire and Get return the new
// version from that instant — while the old version keeps serving every
// job that already resolved it and is retired when its last lease
// releases.
//
// For persistence-capable engines serving the same grammar, the live
// automaton is snapshotted and restored into the new version before the
// cutover, so post-swap traffic misses only on states the old version had
// never seen (warmth continuity). A snapshot that does not fit the new
// version's grammar (a real grammar change) is discarded and the new
// version starts from its own artifacts.
//
// A failed construction leaves the old version serving and returns the
// error: a bad deployment never takes the machine down. Concurrent swaps
// of one machine conflict: the second fails with ErrSwapInProgress.
func (r *Registry) Swap(name string) error {
	return r.swap(name, nil)
}

// SwapMachine is Swap with a replacement recipe: the machine m (served
// under m.Name), engine kind and options replace the entry's registered
// ones — the lever for cutovers that change the grammar, the engine kind
// (a re-scanned preload blob electing hybrid over offline), or the
// options. The cutover semantics are exactly Swap's.
func (r *Registry) SwapMachine(m *Machine, kind Kind, opt Options) error {
	return r.swap(m.Name, &regEntry{
		name: m.Name, kind: kind, opt: opt,
		load: func() (*Machine, error) { return m, nil },
	})
}

func (r *Registry) swap(name string, ne *regEntry) error {
	r.mu.Lock()
	if name == "" && len(r.order) > 0 {
		name = r.order[0]
	}
	old, ok := r.entries[name]
	if !ok {
		err := fmt.Errorf("%w: %q (have %v)", ErrUnknownMachine, name, r.names())
		r.mu.Unlock()
		return err
	}
	if old.load == nil && ne == nil {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotSwappable, name)
	}
	if r.swapping[name] {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrSwapInProgress, name)
	}
	r.swapping[name] = true
	dir := r.dir
	if ne == nil {
		ne = &regEntry{name: name, kind: old.kind, opt: old.opt, load: old.load}
	}
	ne.version = old.version + 1
	ne.expectWarm = old.expectWarm
	ne.lastUse.Store(old.lastUse.Load())
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.swapping, name)
		r.mu.Unlock()
	}()

	// Snapshot the old version's live automaton for warmth continuity.
	// The snapshot is taken while the old version still serves — its
	// Save locks only the construct slow path, warm traffic is unharmed.
	var warm []byte
	if old.done.Load() && old.sel != nil && old.sel.SupportsPersistence() {
		var buf bytes.Buffer
		if err := old.sel.SaveAutomaton(&buf); err == nil {
			warm = buf.Bytes()
		}
	}

	// Build the new version fully before touching the serving entry: a
	// construction failure must leave the old version serving untouched.
	ne.construct(dir, r.logf)
	if ne.err == nil && len(warm) > 0 && ne.sel.SupportsPersistence() {
		if err := ne.warmFrom(warm); err != nil {
			r.logf("repro: swap of machine %q: old version's warmth does not fit the new grammar (%v); the new version starts from its own tables", name, err)
		}
	}
	ne.once.Do(func() {}) // consume: the entry is already constructed
	ne.done.Store(true)
	if ne.err != nil {
		return fmt.Errorf("repro: swap of machine %q failed; the old version (v%d) keeps serving: %w", name, old.version, ne.err)
	}

	// Atomic cutover: from here every Acquire and Get resolves the new
	// version. The old version drains — it stays resident for its live
	// leases and retires when the last one releases.
	r.mu.Lock()
	r.entries[name] = ne
	r.retireLocked(old)
	r.mu.Unlock()
	r.enforceBudget(ne)
	return nil
}

// warmFrom restores a live-automaton snapshot into the entry's freshly
// constructed selector. A selector that already restored tables (from the
// automaton dir) cannot load again — the snapshot, taken from the live
// old version, supersedes the file, so the selector is rebuilt fresh and
// loaded from the snapshot alone. Any failure rebuilds the selector cold:
// a bad snapshot must not poison the new version.
func (e *regEntry) warmFrom(warm []byte) error {
	fresh, err := e.m.NewSelector(e.kind, e.opt)
	if err != nil {
		return err
	}
	if err := fresh.LoadAutomaton(bytes.NewReader(warm)); err != nil {
		return err
	}
	e.sel = fresh
	return nil
}

// retireLocked marks a replaced entry retired and, when leases are still
// out on it, parks it in the draining set. Caller holds r.mu.
func (r *Registry) retireLocked(old *regEntry) {
	if !old.done.Load() || old.sel == nil {
		return // never constructed: nothing resident to drain
	}
	old.retired.Store(true)
	if old.refs.Load() > 0 {
		r.draining[old.name] = append(r.draining[old.name], old)
	}
}

// SetMaxMachines arms the count cap: whenever a Get constructs a selector
// and more than n reconstructible selectors are live, the least recently
// used others are evicted (reset to unconstructed) until n remain. Zero
// disables the cap. Entries registered via AddSelector count toward n but
// are never chosen as victims (they cannot be reconstructed).
//
// SetMaxTableBytes is the finer policy — it bounds what the cap actually
// protects (resident table memory) instead of a proxy count. Both caps
// may be armed; eviction runs until both are satisfied.
func (r *Registry) SetMaxMachines(n int) {
	r.mu.Lock()
	r.maxLive = n
	r.mu.Unlock()
	r.enforceBudget(nil)
}

// SetMaxTableBytes arms the byte budget: whenever a construction or swap
// raises the total resident table bytes — every constructed machine's
// MemoryBytes plus every still-draining replaced version's — above n, the
// least recently used reconstructible machines are evicted until the
// total fits. Zero disables the budget.
//
// Versions draining after a swap are counted (their tables are resident)
// but never evicted: the budget squeezes cold machines out instead, so a
// swap that temporarily holds two versions of a hot machine stays within
// budget without breaking the jobs draining on the old one. If nothing
// evictable remains, the total may exceed n until drains complete —
// the budget sheds what it safely can, it never corrupts serving state.
func (r *Registry) SetMaxTableBytes(n int) {
	r.mu.Lock()
	r.maxBytes = int64(n)
	r.mu.Unlock()
	r.enforceBudget(nil)
}

// MaxTableBytes reports the armed byte budget (0 = unlimited).
func (r *Registry) MaxTableBytes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.maxBytes)
}

// ResidentBytes reports the total table bytes currently resident: every
// constructed machine plus every replaced version still draining. This is
// the figure SetMaxTableBytes bounds.
func (r *Registry) ResidentBytes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.residentBytesLocked()
}

func (r *Registry) residentBytesLocked() int {
	total := 0
	for _, name := range r.order {
		if e := r.entries[name]; e.done.Load() && e.sel != nil {
			total += e.sel.MemoryBytes()
		}
	}
	for _, ds := range r.draining {
		for _, e := range ds {
			total += e.sel.MemoryBytes()
		}
	}
	return total
}

// Evict resets name's entry to unconstructed, dropping its selector: the
// next Get reconstructs from scratch (reloading any persisted automaton).
// This is the reset lever for a MaxStates-capped automaton and the manual
// form of the automatic caps. Entries registered via AddSelector fail
// with ErrNotEvictable; a machine mid-swap fails with ErrSwapInProgress
// (the swap is already replacing it); evicting a never-constructed (or
// sticky-failed) entry simply clears it.
//
// Evict deliberately discards state rather than preserving it — that is
// its purpose; call SaveAll beforehand to keep warmth. With an automaton
// directory configured it also removes the machine's persisted file, so
// reconstruction truly starts from scratch instead of restoring the very
// (possibly capped) tables the eviction meant to shed. (Automatic cap
// eviction is the opposite: it persists capable automata before dropping
// them, because there the goal is bounding memory, not resetting.)
//
// In-flight compilations that already resolved the old selector finish on
// it unharmed; they just no longer share tables with future traffic.
func (r *Registry) Evict(name string) error {
	r.mu.Lock()
	if name == "" && len(r.order) > 0 {
		name = r.order[0]
	}
	e, ok := r.entries[name]
	if !ok {
		err := fmt.Errorf("%w: %q (have %v)", ErrUnknownMachine, name, r.names())
		r.mu.Unlock()
		return err
	}
	if e.load == nil {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotEvictable, name)
	}
	if r.swapping[name] {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q (evict refused mid-cutover)", ErrSwapInProgress, name)
	}
	r.entries[name] = r.resetEntry(e)
	r.retireLocked(e)
	dir := r.dir
	r.mu.Unlock()
	if dir != "" {
		if err := os.Remove(automatonPath(dir, name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("repro: machine %q evicted, but removing its persisted automaton failed: %w", name, err)
		}
	}
	return nil
}

// resetEntry returns a fresh unconstructed replacement for e (the next
// version under e's name). Caller holds r.mu.
func (r *Registry) resetEntry(e *regEntry) *regEntry {
	ne := &regEntry{
		name: e.name, kind: e.kind, opt: e.opt, load: e.load,
		version: e.version + 1, expectWarm: e.expectWarm,
	}
	ne.lastUse.Store(e.lastUse.Load())
	return ne
}

// enforceBudget evicts least-recently-used constructed entries until both
// armed caps are satisfied: at most maxLive constructed machines, and at
// most maxBytes resident table bytes. keep (the entry just constructed or
// swapped in) is never chosen; neither are draining versions, machines
// mid-swap, or AddSelector entries. With an automaton directory
// configured, a persistence-capable victim's tables are saved (best
// effort), so cap pressure never silently discards warmth the next
// construction could restore — but the disk writes happen after the
// registry lock is released: a save of a large automaton must not stall
// every machine's job dispatch and /stats behind r.mu.
func (r *Registry) enforceBudget(keep *regEntry) {
	var evicted []*regEntry
	r.mu.Lock()
	dir := r.dir
	for r.maxLive > 0 || r.maxBytes > 0 {
		live := 0
		var victim *regEntry
		for _, name := range r.order {
			e := r.entries[name]
			if !e.done.Load() || e.sel == nil {
				continue
			}
			live++
			if e == keep || e.load == nil || r.swapping[name] {
				continue // protected newcomer, not reconstructible, or mid-swap
			}
			if victim == nil || e.lastUse.Load() < victim.lastUse.Load() {
				victim = e
			}
		}
		over := (r.maxLive > 0 && live > r.maxLive) ||
			(r.maxBytes > 0 && int64(r.residentBytesLocked()) > r.maxBytes)
		if !over || victim == nil {
			break
		}
		r.entries[victim.name] = r.resetEntry(victim)
		r.retireLocked(victim)
		evicted = append(evicted, victim)
	}
	r.mu.Unlock()
	if dir == "" {
		return
	}
	for _, e := range evicted {
		if !e.sel.SupportsPersistence() {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err == nil {
			// Best effort: an eviction that cannot save still evicts — the
			// cap is a resource bound, not a durability promise. The old
			// selector is exclusively ours to snapshot here; racing jobs
			// that still hold it only read warm tables.
			saveAutomatonFile(e.sel, automatonPath(dir, e.name))
		}
	}
}

// construct materializes one entry: machine, selector, and — when dir is
// set and a saved automaton exists — the restored tables. LoadAutomaton
// runs here, before the selector is ever shared, which is exactly the
// serialization its contract requires.
//
// Corrupt or mismatched artifacts do not fail the machine: a preload blob
// the selector cannot load (Options.PreloadPath) and a persisted
// automaton file that fails to restore are quarantined — renamed to
// <file>.bad and logged — and construction falls back to cold in-process
// tables. A machine is only sticky-broken by faults cold construction
// cannot route around (an unknown grammar, an invalid option set).
func (e *regEntry) construct(dir string, logf func(string, ...any)) {
	m, err := e.load()
	if err != nil {
		e.err = fmt.Errorf("repro: machine %q: %w", e.name, err)
		return
	}
	sel, err := e.buildSelector(m, logf)
	if err != nil {
		e.err = fmt.Errorf("repro: machine %q: %w", e.name, err)
		return
	}
	if dir != "" && sel.SupportsPersistence() {
		path := automatonPath(dir, e.name)
		f, err := os.Open(path)
		switch {
		case err == nil:
			loadErr := sel.LoadAutomaton(f)
			f.Close()
			if loadErr != nil {
				// The persisted file is corrupt or belongs to another
				// grammar revision: quarantine it and serve cold rather
				// than sticky-failing the machine. The selector is rebuilt
				// because a partial load may have poisoned it.
				quarantine(path, loadErr, logf)
				sel, err = e.buildSelector(m, logf)
				if err != nil {
					e.err = fmt.Errorf("repro: machine %q: %w", e.name, err)
					return
				}
			}
		case !os.IsNotExist(err):
			e.err = fmt.Errorf("repro: machine %q: %w", e.name, err)
			return
		}
	}
	e.m, e.sel = m, sel
	// Cached once per construction: /version reports it on every scrape
	// and the grammar hash is not free.
	e.fp = core.Fingerprint(m.Grammar)
}

// buildSelector constructs the entry's selector, recovering from a bad
// preload blob: if construction with Options.PreloadPath fails but the
// same options succeed without it (in-process table compilation), the
// blob was the problem — it is quarantined and the cold selector serves.
func (e *regEntry) buildSelector(m *Machine, logf func(string, ...any)) (*Selector, error) {
	sel, err := m.NewSelector(e.kind, e.opt)
	if err == nil || e.opt.PreloadPath == "" {
		return sel, err
	}
	opt := e.opt
	opt.PreloadPath = ""
	cold, coldErr := m.NewSelector(e.kind, opt)
	if coldErr != nil {
		// The blob was not (only) the problem; report the original fault.
		return nil, err
	}
	quarantine(e.opt.PreloadPath, err, logf)
	return cold, nil
}

// quarantine renames a bad artifact to <path>.bad so the next
// construction does not trip over it again, and logs what happened. A
// failed rename is logged too — quarantine is best effort.
func quarantine(path string, cause error, logf func(string, ...any)) {
	if err := os.Rename(path, path+".bad"); err != nil {
		logf("repro: quarantining %s failed (%v) after load error: %v", path, err, cause)
		return
	}
	logf("repro: quarantined %s -> %s.bad (cold construction takes over): %v", path, path, cause)
}

// Warm forces construction of name now (first traffic would otherwise pay
// for it): boot-time warm-up for servers that load persisted automata.
func (r *Registry) Warm(name string) error {
	_, _, err := r.Get(name)
	return err
}

// Names lists the registered machine names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.names()
}

func (r *Registry) names() []string {
	return append([]string(nil), r.order...)
}

// DefaultName returns the first-registered machine name ("" if empty):
// the machine requests without an explicit ?machine= land on.
func (r *Registry) DefaultName() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.order) == 0 {
		return ""
	}
	return r.order[0]
}

// Ready reports whether the registry is fit to receive routed traffic:
// no machine is mid-swap, and every machine marked ExpectWarm (the
// boot-preloaded set) is constructed without a sticky error. A non-nil
// error names the first condition that fails — the body of a load
// balancer's 503. Machines that merely have not seen traffic yet do not
// block readiness unless marked.
func (r *Registry) Ready() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		if r.swapping[name] {
			return fmt.Errorf("repro: machine %q is mid-swap", name)
		}
	}
	for _, name := range r.order {
		e := r.entries[name]
		if !e.expectWarm {
			continue
		}
		if !e.done.Load() {
			return fmt.Errorf("repro: machine %q expected warm but not constructed", name)
		}
		if e.err != nil {
			return fmt.Errorf("repro: machine %q expected warm but broken: %v", name, e.err)
		}
	}
	return nil
}

// MachineStatus is one registered machine's serving state: whether its
// selector has been constructed yet and, if so, its automaton warmth.
type MachineStatus struct {
	Machine     string
	Kind        Kind
	Constructed bool
	Err         string // sticky construction error, if any
	Warmth      Snapshot
	// Version is the table-set generation serving this machine (1-based;
	// bumped by every swap and eviction-reconstruction).
	Version int
	// Swapping reports a swap mid-cutover: the next version is being
	// constructed beside this one.
	Swapping bool
	// Draining counts replaced versions still resident because jobs that
	// resolved them have not finished.
	Draining int
	// Fingerprint is the machine's grammar fingerprint (the identity
	// .isel blobs and the blob exchange are content-addressed by), once
	// the machine description has been resolved; 0 while cold with a
	// lazy-load recipe. GET /version reports it as the "what exactly is
	// deployed here" answer.
	Fingerprint uint64
}

// Status reports every registered machine in registration order,
// constructed or not — the registry half of the server's GET /stats.
func (r *Registry) Status() []MachineStatus {
	r.mu.Lock()
	entries := make([]*regEntry, 0, len(r.order))
	swapping := make([]bool, 0, len(r.order))
	draining := make([]int, 0, len(r.order))
	for _, name := range r.order {
		entries = append(entries, r.entries[name])
		swapping = append(swapping, r.swapping[name])
		draining = append(draining, len(r.draining[name]))
	}
	r.mu.Unlock()
	sts := make([]MachineStatus, 0, len(entries))
	for i, e := range entries {
		st := MachineStatus{
			Machine: e.name, Kind: e.kind,
			Version: e.version, Swapping: swapping[i], Draining: draining[i],
		}
		// done is stored after construct completes, so sel/err reads behind
		// it are race-free; an entry mid-construction just reads as cold.
		if e.done.Load() {
			st.Constructed = e.sel != nil
			st.Fingerprint = e.fp
			if e.err != nil {
				st.Err = e.err.Error()
			}
			if e.sel != nil {
				st.Warmth = e.sel.Snapshot()
			}
		}
		sts = append(sts, st)
	}
	return sts
}

// SaveAll persists every constructed, persistence-capable selector to the
// configured automaton directory (one file per machine, written via a
// temp file + rename so a crash mid-save never corrupts a good table).
// It is a no-op when no automaton directory is set. The first error is
// returned, but every entry is attempted.
func (r *Registry) SaveAll() error {
	r.mu.Lock()
	dir := r.dir
	entries := make([]*regEntry, 0, len(r.order))
	for _, name := range r.order {
		entries = append(entries, r.entries[name])
	}
	r.mu.Unlock()
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var firstErr error
	for _, e := range entries {
		if !e.done.Load() || e.sel == nil || !e.sel.SupportsPersistence() {
			continue
		}
		if err := saveAutomatonFile(e.sel, automatonPath(dir, e.name)); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("repro: machine %q: %w", e.name, err)
		}
	}
	return firstErr
}

func saveAutomatonFile(sel *Selector, path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := sel.SaveAutomaton(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// automatonPath is the per-machine persistence file: dir/<name>.automaton.
func automatonPath(dir, name string) string {
	return filepath.Join(dir, name+".automaton")
}

// Snapshots returns the warmth of every constructed machine, keyed by
// name — the sorted, compact form of Status for logs and tests.
func (r *Registry) Snapshots() map[string]Snapshot {
	out := map[string]Snapshot{}
	for _, st := range r.Status() {
		if st.Constructed {
			out[st.Machine] = st.Warmth
		}
	}
	return out
}
