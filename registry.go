package repro

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// ErrUnknownMachine is the typed error Registry.Get fails with for names
// that were never registered — distinct from a registered machine whose
// construction failed, so front ends can answer "not found" vs "server
// fault" correctly. Match with errors.Is.
var ErrUnknownMachine = errors.New("repro: machine not registered")

// ErrNotEvictable is the typed error Registry.Evict fails with for
// entries registered via AddSelector: the registry did not construct
// their selector and cannot reconstruct it after dropping it. Match with
// errors.Is.
var ErrNotEvictable = errors.New("repro: machine registered via AddSelector cannot be evicted")

// Registry holds named, lazily-constructed, individually-warmed selectors
// for several machine descriptions — the multi-machine serving substrate
// behind internal/server and cmd/iselserver's /compile?machine=x
// dispatch. Each entry is registered cheaply (no grammar loading, no
// engine construction) and materialized exactly once, on first Get; from
// then on every caller shares the one warm selector, so each machine's
// automaton amortizes over all of its traffic independently.
//
// With an automaton directory configured (SetAutomatonDir), entries of
// persistence-capable kinds restore their saved tables when they are
// constructed and SaveAll writes the current tables back — warm starts
// across process restarts, one file per machine.
//
// Entries can also be dropped again: Evict resets one machine to
// unconstructed (its next Get rebuilds the selector from scratch — the
// way a MaxStates-capped automaton is reset without a restart), and
// SetMaxMachines arms a least-recently-used cap so cold machines are
// evicted automatically as hot ones construct.
//
// Add/AddMachine/SetAutomatonDir configure the registry and must complete
// before it is shared; Get, Warm, Names, DefaultName, Status, Evict and
// SaveAll are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*regEntry
	order   []string // registration order; order[0] is the default
	dir     string   // automaton persistence directory ("" = disabled)
	maxLive int      // LRU cap on constructed entries (0 = unlimited)
	clock   atomic.Int64
}

// regEntry is one registered machine: a lazy constructor plus its
// materialized result. once guards construction so concurrent Gets of a
// cold entry build one selector. Eviction never mutates an entry — it
// replaces it with a fresh unconstructed one — so a Get that raced the
// eviction simply finishes against the old selector.
type regEntry struct {
	name string
	kind Kind
	opt  Options
	load func() (*Machine, error)

	once sync.Once
	done atomic.Bool // set after construct completes; gates racy reads in Status
	m    *Machine
	sel  *Selector
	err  error
	// lastUse orders entries for LRU eviction: the registry clock value of
	// the entry's most recent Get.
	lastUse atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*regEntry{}}
}

// SetAutomatonDir enables automaton persistence: on first construction an
// entry whose selector supports persistence loads dir/<name>.automaton if
// it exists, and SaveAll writes every constructed, persistence-capable
// selector back there. Set it before the first Get.
func (r *Registry) SetAutomatonDir(dir string) { r.dir = dir }

// Add registers the built-in machine description name (see Machines) to
// be served with the given engine kind and options. Construction —
// loading the grammar, building the engine, restoring saved tables — is
// deferred until the first Get. The first machine added is the registry's
// default.
func (r *Registry) Add(name string, kind Kind, opt Options) error {
	return r.add(&regEntry{
		name: name, kind: kind, opt: opt,
		load: func() (*Machine, error) { return LoadMachine(name) },
	})
}

// AddMachine registers an already-built machine (NewMachine grammars,
// FixedMachine variants) under m.Name. The selector is still constructed
// lazily on first Get.
func (r *Registry) AddMachine(m *Machine, kind Kind, opt Options) error {
	return r.add(&regEntry{
		name: m.Name, kind: kind, opt: opt,
		load: func() (*Machine, error) { return m, nil },
	})
}

// AddSelector registers an already-constructed selector under its
// machine's name — the adapter for harnesses that build a selector by
// hand (warmed, custom-configured) and then serve it. The entry is born
// constructed; the automaton directory does not apply to it on load
// (SaveAll still persists it when capable).
func (r *Registry) AddSelector(sel *Selector) error {
	e := &regEntry{name: sel.Machine().Name, kind: sel.Kind(), m: sel.Machine(), sel: sel}
	e.once.Do(func() {}) // consume: Get must never re-construct this entry
	e.done.Store(true)
	return r.add(e)
}

func (r *Registry) add(e *regEntry) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.name]; dup {
		return fmt.Errorf("repro: machine %q registered twice", e.name)
	}
	r.entries[e.name] = e
	r.order = append(r.order, e.name)
	return nil
}

// Get returns the machine and shared selector registered under name,
// constructing them on first use (and restoring the saved automaton when
// an automaton directory is configured). name == "" resolves to the
// default (first-registered) machine. Construction failures are sticky:
// every Get of a broken entry returns the same error.
func (r *Registry) Get(name string) (*Machine, *Selector, error) {
	r.mu.Lock()
	if name == "" && len(r.order) > 0 {
		name = r.order[0]
	}
	e, ok := r.entries[name]
	dir := r.dir
	r.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownMachine, name, r.names())
	}
	e.lastUse.Store(r.clock.Add(1))
	constructed := false
	e.once.Do(func() {
		e.construct(dir)
		e.done.Store(true)
		constructed = true
	})
	if constructed && e.err == nil {
		r.enforceMaxLive(e)
	}
	return e.m, e.sel, e.err
}

// SetMaxMachines arms the LRU cap: whenever a Get constructs a selector
// and more than n reconstructible selectors are live, the least recently
// used others are evicted (reset to unconstructed) until n remain. Zero
// disables the cap. Entries registered via AddSelector count toward n but
// are never chosen as victims (they cannot be reconstructed).
//
// Eviction frees the dropped selector's tables as soon as in-flight work
// referencing it completes; the machine's next Get rebuilds it — cold
// machines cost a reconstruction, not correctness.
func (r *Registry) SetMaxMachines(n int) {
	r.mu.Lock()
	r.maxLive = n
	r.mu.Unlock()
}

// Evict resets name's entry to unconstructed, dropping its selector: the
// next Get reconstructs from scratch (reloading any persisted automaton).
// This is the reset lever for a MaxStates-capped automaton and the manual
// form of the SetMaxMachines LRU. Entries registered via AddSelector fail
// with ErrNotEvictable; evicting a never-constructed (or sticky-failed)
// entry simply clears it.
//
// Evict deliberately discards state rather than preserving it — that is
// its purpose; call SaveAll beforehand to keep warmth. With an automaton
// directory configured it also removes the machine's persisted file, so
// reconstruction truly starts from scratch instead of restoring the very
// (possibly capped) tables the eviction meant to shed. (Automatic LRU
// eviction is the opposite: it persists capable automata before dropping
// them, because there the goal is bounding memory, not resetting.)
//
// In-flight compilations that already resolved the old selector finish on
// it unharmed; they just no longer share tables with future traffic.
func (r *Registry) Evict(name string) error {
	r.mu.Lock()
	if name == "" && len(r.order) > 0 {
		name = r.order[0]
	}
	e, ok := r.entries[name]
	if !ok {
		err := fmt.Errorf("%w: %q (have %v)", ErrUnknownMachine, name, r.names())
		r.mu.Unlock()
		return err
	}
	if e.load == nil {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotEvictable, name)
	}
	r.entries[name] = r.resetEntry(e)
	dir := r.dir
	r.mu.Unlock()
	if dir != "" {
		if err := os.Remove(automatonPath(dir, name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("repro: machine %q evicted, but removing its persisted automaton failed: %w", name, err)
		}
	}
	return nil
}

// resetEntry returns a fresh unconstructed clone of e. Caller holds r.mu.
func (r *Registry) resetEntry(e *regEntry) *regEntry {
	ne := &regEntry{name: e.name, kind: e.kind, opt: e.opt, load: e.load}
	ne.lastUse.Store(e.lastUse.Load())
	return ne
}

// enforceMaxLive evicts least-recently-used constructed entries until at
// most maxLive remain. keep (the entry just constructed) is never chosen.
// With an automaton directory configured, a persistence-capable victim's
// tables are saved (best effort), so LRU pressure never silently discards
// warmth the next construction could restore — but the disk writes happen
// after the registry lock is released: a save of a large automaton must
// not stall every machine's job dispatch and /stats behind r.mu.
func (r *Registry) enforceMaxLive(keep *regEntry) {
	var evicted []*regEntry
	r.mu.Lock()
	dir := r.dir
	for r.maxLive > 0 {
		live := 0
		var victim *regEntry
		for _, name := range r.order {
			e := r.entries[name]
			if !e.done.Load() || e.sel == nil {
				continue
			}
			live++
			if e == keep || e.load == nil {
				continue // the protected newcomer, or not reconstructible
			}
			if victim == nil || e.lastUse.Load() < victim.lastUse.Load() {
				victim = e
			}
		}
		if live <= r.maxLive || victim == nil {
			break
		}
		r.entries[victim.name] = r.resetEntry(victim)
		evicted = append(evicted, victim)
	}
	r.mu.Unlock()
	if dir == "" {
		return
	}
	for _, e := range evicted {
		if !e.sel.SupportsPersistence() {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err == nil {
			// Best effort: an eviction that cannot save still evicts — the
			// cap is a resource bound, not a durability promise. The old
			// selector is exclusively ours to snapshot here; racing jobs
			// that still hold it only read warm tables.
			saveAutomatonFile(e.sel, automatonPath(dir, e.name))
		}
	}
}

// construct materializes one entry: machine, selector, and — when dir is
// set and a saved automaton exists — the restored tables. LoadAutomaton
// runs here, before the selector is ever shared, which is exactly the
// serialization its contract requires.
func (e *regEntry) construct(dir string) {
	m, err := e.load()
	if err != nil {
		e.err = fmt.Errorf("repro: machine %q: %w", e.name, err)
		return
	}
	sel, err := m.NewSelector(e.kind, e.opt)
	if err != nil {
		e.err = fmt.Errorf("repro: machine %q: %w", e.name, err)
		return
	}
	if dir != "" && sel.SupportsPersistence() {
		path := automatonPath(dir, e.name)
		f, err := os.Open(path)
		switch {
		case err == nil:
			loadErr := sel.LoadAutomaton(f)
			f.Close()
			if loadErr != nil {
				e.err = fmt.Errorf("repro: machine %q: restoring %s: %w", e.name, path, loadErr)
				return
			}
		case !os.IsNotExist(err):
			e.err = fmt.Errorf("repro: machine %q: %w", e.name, err)
			return
		}
	}
	e.m, e.sel = m, sel
}

// Warm forces construction of name now (first traffic would otherwise pay
// for it): boot-time warm-up for servers that load persisted automata.
func (r *Registry) Warm(name string) error {
	_, _, err := r.Get(name)
	return err
}

// Names lists the registered machine names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.names()
}

func (r *Registry) names() []string {
	return append([]string(nil), r.order...)
}

// DefaultName returns the first-registered machine name ("" if empty):
// the machine requests without an explicit ?machine= land on.
func (r *Registry) DefaultName() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.order) == 0 {
		return ""
	}
	return r.order[0]
}

// MachineStatus is one registered machine's serving state: whether its
// selector has been constructed yet and, if so, its automaton warmth.
type MachineStatus struct {
	Machine     string
	Kind        Kind
	Constructed bool
	Err         string // sticky construction error, if any
	Warmth      Snapshot
}

// Status reports every registered machine in registration order,
// constructed or not — the registry half of the server's GET /stats.
func (r *Registry) Status() []MachineStatus {
	r.mu.Lock()
	entries := make([]*regEntry, 0, len(r.order))
	for _, name := range r.order {
		entries = append(entries, r.entries[name])
	}
	r.mu.Unlock()
	sts := make([]MachineStatus, 0, len(entries))
	for _, e := range entries {
		st := MachineStatus{Machine: e.name, Kind: e.kind}
		// done is stored after construct completes, so sel/err reads behind
		// it are race-free; an entry mid-construction just reads as cold.
		if e.done.Load() {
			st.Constructed = e.sel != nil
			if e.err != nil {
				st.Err = e.err.Error()
			}
			if e.sel != nil {
				st.Warmth = e.sel.Snapshot()
			}
		}
		sts = append(sts, st)
	}
	return sts
}

// SaveAll persists every constructed, persistence-capable selector to the
// configured automaton directory (one file per machine, written via a
// temp file + rename so a crash mid-save never corrupts a good table).
// It is a no-op when no automaton directory is set. The first error is
// returned, but every entry is attempted.
func (r *Registry) SaveAll() error {
	r.mu.Lock()
	dir := r.dir
	entries := make([]*regEntry, 0, len(r.order))
	for _, name := range r.order {
		entries = append(entries, r.entries[name])
	}
	r.mu.Unlock()
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var firstErr error
	for _, e := range entries {
		if !e.done.Load() || e.sel == nil || !e.sel.SupportsPersistence() {
			continue
		}
		if err := saveAutomatonFile(e.sel, automatonPath(dir, e.name)); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("repro: machine %q: %w", e.name, err)
		}
	}
	return firstErr
}

func saveAutomatonFile(sel *Selector, path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := sel.SaveAutomaton(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// automatonPath is the per-machine persistence file: dir/<name>.automaton.
func automatonPath(dir, name string) string {
	return filepath.Join(dir, name+".automaton")
}

// Snapshots returns the warmth of every constructed machine, keyed by
// name — the sorted, compact form of Status for logs and tests.
func (r *Registry) Snapshots() map[string]Snapshot {
	out := map[string]Snapshot{}
	for _, st := range r.Status() {
		if st.Constructed {
			out[st.Machine] = st.Warmth
		}
	}
	return out
}
