// Package metrics provides deterministic work counters for the instruction
// selection engines.
//
// The PLDI'06 evaluation used hardware performance counters (instructions,
// cycles). A reproduction on a different substrate cannot match those
// absolute numbers, so the engines count the abstract events that dominate
// the instruction counts instead: rules examined, chain-rule relaxation
// attempts, dynamic-cost evaluations, transition-table probes and misses,
// and states constructed. Counts are exactly reproducible run to run,
// which the experiment tables rely on; wall-clock numbers come from
// testing.B benchmarks separately.
//
// Counters are race-safe: every Count* method performs an atomic add, so a
// single Counters value can sit behind an engine that labels from many
// goroutines (see core.Engine). Totals of a parallel session remain
// deterministic because atomic adds commute; only the interleaving varies.
// For fully independent accounting, give each worker its own Counters and
// combine them with Add after the workers join.
package metrics

import (
	"fmt"
	"sync/atomic"
)

// Counters accumulates engine events. The zero value is ready to use.
// A nil *Counters is also accepted by all methods, so engines can be run
// uninstrumented at full speed.
//
// The fields may be read directly once the writers have stopped (or been
// joined); while labeling is in flight from other goroutines, use Clone to
// take an atomically consistent-per-field snapshot.
type Counters struct {
	// NodesLabeled counts IR nodes processed by a labeler.
	NodesLabeled int64
	// RulesExamined counts base-rule cost computations (the DP inner loop).
	RulesExamined int64
	// ChainRelaxations counts chain-rule relaxation attempts during
	// closure.
	ChainRelaxations int64
	// DynEvals counts dynamic-cost function evaluations.
	DynEvals int64
	// TableProbes counts automaton transition-table lookups.
	TableProbes int64
	// TableMisses counts probes that did not find a transition and had to
	// construct one (on-demand engine only).
	TableMisses int64
	// StatesBuilt counts distinct states constructed (interned).
	StatesBuilt int64
	// TransitionsAdded counts transition-table entries written.
	TransitionsAdded int64
	// NodesReduced counts (node, nonterminal) visits during reduction.
	NodesReduced int64
}

// CountNode records a labeled node.
func (c *Counters) CountNode() {
	if c != nil {
		atomic.AddInt64(&c.NodesLabeled, 1)
	}
}

// CountRules records n base-rule cost computations.
func (c *Counters) CountRules(n int) {
	if c != nil {
		atomic.AddInt64(&c.RulesExamined, int64(n))
	}
}

// CountChain records n chain-rule relaxation attempts.
func (c *Counters) CountChain(n int) {
	if c != nil {
		atomic.AddInt64(&c.ChainRelaxations, int64(n))
	}
}

// CountDyn records n dynamic-cost evaluations.
func (c *Counters) CountDyn(n int) {
	if c != nil {
		atomic.AddInt64(&c.DynEvals, int64(n))
	}
}

// CountProbe records a transition-table lookup; miss reports whether the
// transition had to be constructed.
func (c *Counters) CountProbe(miss bool) {
	if c != nil {
		atomic.AddInt64(&c.TableProbes, 1)
		if miss {
			atomic.AddInt64(&c.TableMisses, 1)
		}
	}
}

// CountState records an interned state.
func (c *Counters) CountState() {
	if c != nil {
		atomic.AddInt64(&c.StatesBuilt, 1)
	}
}

// CountTransition records a transition-table entry write.
func (c *Counters) CountTransition() {
	if c != nil {
		atomic.AddInt64(&c.TransitionsAdded, 1)
	}
}

// CountReduce records a (node, nonterminal) reduction visit.
func (c *Counters) CountReduce() {
	if c != nil {
		atomic.AddInt64(&c.NodesReduced, 1)
	}
}

// Reset zeroes all counters. It must not race with in-flight Count* calls
// if an exact zero point matters.
func (c *Counters) Reset() {
	if c == nil {
		return
	}
	for _, p := range c.fields() {
		atomic.StoreInt64(p, 0)
	}
}

// Clone returns a copy (nil-safe). Each field is loaded atomically, so
// Clone may run concurrently with counting — a plain struct copy
// (`*c`) would be a data race under live writers, which is what the
// seed's Clone was before this.
//
// The snapshot is consistent-enough, not cross-field consistent: each
// field is the value at its own load instant, so invariants that span
// fields (TableMisses <= TableProbes, say) can be transiently off by
// in-flight events. Exact cross-field accounting holds on quiescent
// counters — after workers join, which is when the server and the
// fleet aggregation read them.
func (c *Counters) Clone() Counters {
	var out Counters
	if c == nil {
		return out
	}
	src := c.fields()
	dst := out.fields()
	for i := range src {
		*dst[i] = atomic.LoadInt64(src[i])
	}
	return out
}

// Add accumulates other into c (nil-safe on both sides): the merge step
// for per-worker counters after a parallel labeling session.
func (c *Counters) Add(other *Counters) {
	if c == nil || other == nil {
		return
	}
	src := other.fields()
	dst := c.fields()
	for i := range src {
		atomic.AddInt64(dst[i], atomic.LoadInt64(src[i]))
	}
}

// fields enumerates the counter slots in declaration order.
func (c *Counters) fields() []*int64 {
	return []*int64{
		&c.NodesLabeled, &c.RulesExamined, &c.ChainRelaxations, &c.DynEvals,
		&c.TableProbes, &c.TableMisses, &c.StatesBuilt, &c.TransitionsAdded,
		&c.NodesReduced,
	}
}

// WorkUnits collapses the counters into a single figure comparable across
// engines: the number of inner-loop events a labeler executed. Each event
// is a handful of machine instructions, so ratios of WorkUnits track the
// "instructions executed during labeling" ratios the paper family reports.
func (c *Counters) WorkUnits() int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.RulesExamined) +
		atomic.LoadInt64(&c.ChainRelaxations) +
		atomic.LoadInt64(&c.DynEvals) +
		atomic.LoadInt64(&c.TableProbes) +
		4*atomic.LoadInt64(&c.TableMisses)
}

// PerNode returns work units per labeled node.
func (c *Counters) PerNode() float64 {
	if c == nil {
		return 0
	}
	nodes := atomic.LoadInt64(&c.NodesLabeled)
	if nodes == 0 {
		return 0
	}
	return float64(c.WorkUnits()) / float64(nodes)
}

// String renders the counters compactly.
func (c *Counters) String() string {
	if c == nil {
		return "<nil counters>"
	}
	s := c.Clone()
	return fmt.Sprintf("nodes=%d rules=%d chain=%d dyn=%d probes=%d misses=%d states=%d trans=%d work=%d",
		s.NodesLabeled, s.RulesExamined, s.ChainRelaxations, s.DynEvals,
		s.TableProbes, s.TableMisses, s.StatesBuilt, s.TransitionsAdded,
		s.WorkUnits())
}
