// Package metrics provides deterministic work counters for the instruction
// selection engines.
//
// The PLDI'06 evaluation used hardware performance counters (instructions,
// cycles). A reproduction on a different substrate cannot match those
// absolute numbers, so the engines count the abstract events that dominate
// the instruction counts instead: rules examined, chain-rule relaxation
// attempts, dynamic-cost evaluations, transition-table probes and misses,
// and states constructed. Counts are exactly reproducible run to run,
// which the experiment tables rely on; wall-clock numbers come from
// testing.B benchmarks separately.
package metrics

import "fmt"

// Counters accumulates engine events. The zero value is ready to use.
// A nil *Counters is also accepted by all methods, so engines can be run
// uninstrumented at full speed.
type Counters struct {
	// NodesLabeled counts IR nodes processed by a labeler.
	NodesLabeled int64
	// RulesExamined counts base-rule cost computations (the DP inner loop).
	RulesExamined int64
	// ChainRelaxations counts chain-rule relaxation attempts during
	// closure.
	ChainRelaxations int64
	// DynEvals counts dynamic-cost function evaluations.
	DynEvals int64
	// TableProbes counts automaton transition-table lookups.
	TableProbes int64
	// TableMisses counts probes that did not find a transition and had to
	// construct one (on-demand engine only).
	TableMisses int64
	// StatesBuilt counts distinct states constructed (interned).
	StatesBuilt int64
	// TransitionsAdded counts transition-table entries written.
	TransitionsAdded int64
	// NodesReduced counts (node, nonterminal) visits during reduction.
	NodesReduced int64
}

// CountNode records a labeled node.
func (c *Counters) CountNode() {
	if c != nil {
		c.NodesLabeled++
	}
}

// CountRules records n base-rule cost computations.
func (c *Counters) CountRules(n int) {
	if c != nil {
		c.RulesExamined += int64(n)
	}
}

// CountChain records n chain-rule relaxation attempts.
func (c *Counters) CountChain(n int) {
	if c != nil {
		c.ChainRelaxations += int64(n)
	}
}

// CountDyn records n dynamic-cost evaluations.
func (c *Counters) CountDyn(n int) {
	if c != nil {
		c.DynEvals += int64(n)
	}
}

// CountProbe records a transition-table lookup; miss reports whether the
// transition had to be constructed.
func (c *Counters) CountProbe(miss bool) {
	if c != nil {
		c.TableProbes++
		if miss {
			c.TableMisses++
		}
	}
}

// CountState records an interned state.
func (c *Counters) CountState() {
	if c != nil {
		c.StatesBuilt++
	}
}

// CountTransition records a transition-table entry write.
func (c *Counters) CountTransition() {
	if c != nil {
		c.TransitionsAdded++
	}
}

// CountReduce records a (node, nonterminal) reduction visit.
func (c *Counters) CountReduce() {
	if c != nil {
		c.NodesReduced++
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	if c != nil {
		*c = Counters{}
	}
}

// Clone returns a copy (nil-safe).
func (c *Counters) Clone() Counters {
	if c == nil {
		return Counters{}
	}
	return *c
}

// WorkUnits collapses the counters into a single figure comparable across
// engines: the number of inner-loop events a labeler executed. Each event
// is a handful of machine instructions, so ratios of WorkUnits track the
// "instructions executed during labeling" ratios the paper family reports.
func (c *Counters) WorkUnits() int64 {
	if c == nil {
		return 0
	}
	return c.RulesExamined + c.ChainRelaxations + c.DynEvals +
		c.TableProbes + 4*c.TableMisses
}

// PerNode returns work units per labeled node.
func (c *Counters) PerNode() float64 {
	if c == nil || c.NodesLabeled == 0 {
		return 0
	}
	return float64(c.WorkUnits()) / float64(c.NodesLabeled)
}

// String renders the counters compactly.
func (c *Counters) String() string {
	if c == nil {
		return "<nil counters>"
	}
	return fmt.Sprintf("nodes=%d rules=%d chain=%d dyn=%d probes=%d misses=%d states=%d trans=%d work=%d",
		c.NodesLabeled, c.RulesExamined, c.ChainRelaxations, c.DynEvals,
		c.TableProbes, c.TableMisses, c.StatesBuilt, c.TransitionsAdded,
		c.WorkUnits())
}
