package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCountersAccumulate(t *testing.T) {
	c := &Counters{}
	c.CountNode()
	c.CountNode()
	c.CountRules(5)
	c.CountChain(3)
	c.CountDyn(2)
	c.CountProbe(false)
	c.CountProbe(true)
	c.CountState()
	c.CountTransition()
	c.CountReduce()
	if c.NodesLabeled != 2 || c.RulesExamined != 5 || c.ChainRelaxations != 3 ||
		c.DynEvals != 2 || c.TableProbes != 2 || c.TableMisses != 1 ||
		c.StatesBuilt != 1 || c.TransitionsAdded != 1 || c.NodesReduced != 1 {
		t.Errorf("counters wrong: %+v", c)
	}
	// Work units: 5 + 3 + 2 + 2 + 4*1 = 16; per node = 8.
	if c.WorkUnits() != 16 {
		t.Errorf("work units = %d, want 16", c.WorkUnits())
	}
	if c.PerNode() != 8 {
		t.Errorf("per node = %f, want 8", c.PerNode())
	}
}

func TestCloneIsIndependent(t *testing.T) {
	c := &Counters{}
	c.CountRules(7)
	snap := c.Clone()
	c.CountRules(1)
	if snap.RulesExamined != 7 || c.RulesExamined != 8 {
		t.Error("clone is not a snapshot")
	}
}

func TestStringMentionsEverything(t *testing.T) {
	c := &Counters{}
	c.CountProbe(true)
	s := c.String()
	for _, want := range []string{"probes=1", "misses=1", "work="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

// Property: work units are additive over event sequences and nonnegative.
func TestWorkUnitsProperties(t *testing.T) {
	additive := func(r1, r2, ch, dy uint8) bool {
		a := &Counters{}
		a.CountRules(int(r1))
		a.CountChain(int(ch))
		b := &Counters{}
		b.CountRules(int(r2))
		b.CountDyn(int(dy))
		both := &Counters{}
		both.CountRules(int(r1) + int(r2))
		both.CountChain(int(ch))
		both.CountDyn(int(dy))
		return a.WorkUnits()+b.WorkUnits() == both.WorkUnits() && both.WorkUnits() >= 0
	}
	if err := quick.Check(additive, nil); err != nil {
		t.Error(err)
	}
}

func TestMissWeightedHigher(t *testing.T) {
	hit := &Counters{}
	hit.CountProbe(false)
	miss := &Counters{}
	miss.CountProbe(true)
	if miss.WorkUnits() <= hit.WorkUnits() {
		t.Error("a miss must cost more work than a hit")
	}
}

// TestCloneConcurrentWithWriters hammers CountNode (and friends) from
// several goroutines while Clone, String and Add run against the same
// Counters. Under -race this pins Clone's atomic-load contract: a plain
// struct copy here is a data race the race CI job must catch. The final
// quiescent Clone must also be exact — no torn or lost counts.
func TestCloneConcurrentWithWriters(t *testing.T) {
	c := &Counters{}
	const writers = 4
	const perWriter = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers: Clone snapshots plus the derived views.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sink Counters
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := c.Clone()
				if snap.NodesLabeled < 0 || snap.TableMisses > snap.TableProbes+int64(writers) {
					t.Errorf("implausible snapshot: %+v", snap)
					return
				}
				sink.Add(&snap)
				_ = c.String()
				_ = c.PerNode()
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func() {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				c.CountNode()
				c.CountProbe(i%3 == 0)
				c.CountReduce()
			}
		}()
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	snap := c.Clone()
	if snap.NodesLabeled != writers*perWriter {
		t.Fatalf("quiescent NodesLabeled = %d, want %d", snap.NodesLabeled, writers*perWriter)
	}
	if snap.TableProbes != writers*perWriter {
		t.Fatalf("quiescent TableProbes = %d, want %d", snap.TableProbes, writers*perWriter)
	}
}
