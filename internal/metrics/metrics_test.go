package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCountersAccumulate(t *testing.T) {
	c := &Counters{}
	c.CountNode()
	c.CountNode()
	c.CountRules(5)
	c.CountChain(3)
	c.CountDyn(2)
	c.CountProbe(false)
	c.CountProbe(true)
	c.CountState()
	c.CountTransition()
	c.CountReduce()
	if c.NodesLabeled != 2 || c.RulesExamined != 5 || c.ChainRelaxations != 3 ||
		c.DynEvals != 2 || c.TableProbes != 2 || c.TableMisses != 1 ||
		c.StatesBuilt != 1 || c.TransitionsAdded != 1 || c.NodesReduced != 1 {
		t.Errorf("counters wrong: %+v", c)
	}
	// Work units: 5 + 3 + 2 + 2 + 4*1 = 16; per node = 8.
	if c.WorkUnits() != 16 {
		t.Errorf("work units = %d, want 16", c.WorkUnits())
	}
	if c.PerNode() != 8 {
		t.Errorf("per node = %f, want 8", c.PerNode())
	}
}

func TestCloneIsIndependent(t *testing.T) {
	c := &Counters{}
	c.CountRules(7)
	snap := c.Clone()
	c.CountRules(1)
	if snap.RulesExamined != 7 || c.RulesExamined != 8 {
		t.Error("clone is not a snapshot")
	}
}

func TestStringMentionsEverything(t *testing.T) {
	c := &Counters{}
	c.CountProbe(true)
	s := c.String()
	for _, want := range []string{"probes=1", "misses=1", "work="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

// Property: work units are additive over event sequences and nonnegative.
func TestWorkUnitsProperties(t *testing.T) {
	additive := func(r1, r2, ch, dy uint8) bool {
		a := &Counters{}
		a.CountRules(int(r1))
		a.CountChain(int(ch))
		b := &Counters{}
		b.CountRules(int(r2))
		b.CountDyn(int(dy))
		both := &Counters{}
		both.CountRules(int(r1) + int(r2))
		both.CountChain(int(ch))
		both.CountDyn(int(dy))
		return a.WorkUnits()+b.WorkUnits() == both.WorkUnits() && both.WorkUnits() >= 0
	}
	if err := quick.Check(additive, nil); err != nil {
		t.Error(err)
	}
}

func TestMissWeightedHigher(t *testing.T) {
	hit := &Counters{}
	hit.CountProbe(false)
	miss := &Counters{}
	miss.CountProbe(true)
	if miss.WorkUnits() <= hit.WorkUnits() {
		t.Error("a miss must cost more work than a hit")
	}
}
