//go:build !amd64

package telemetry

// stampNow is the stage-boundary clock: monotonic stamp units — here,
// without a TSC fast path, plain runtime nanotime nanoseconds. The
// epoch is arbitrary; only differences are used, converted by
// stampToNs.
func stampNow() int64 { return nanotime() }

// stampToNs converts a difference of stampNow readings to nanoseconds:
// the identity, stamps already being nanoseconds on this architecture.
func stampToNs(d int64) int64 { return d }

// stampFromNs is the inverse, for tests that construct traces with
// known nanosecond spans.
func stampFromNs(ns int64) int64 { return ns }
