package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	}
	return "?"
}

// ParseLevel maps a -log-level flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// Logger is the one leveled, event-tagged logger the serving tier's
// operational messages flow through — registry swap/evict/quarantine,
// cluster warm-up and mark-down — replacing the ad-hoc SetLogger
// printf sinks. Lines render as
//
//	2026-08-08T12:00:00.000Z INFO  [registry] swapped x86 to v2
//
// A nil *Logger drops everything, so call sites never guard.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
}

// NewLogger writes lines at or above lv to w.
func NewLogger(w io.Writer, lv Level) *Logger {
	l := &Logger{w: w}
	l.level.Store(int32(lv))
	return l
}

// SetLevel changes the threshold at runtime.
func (l *Logger) SetLevel(lv Level) {
	if l != nil {
		l.level.Store(int32(lv))
	}
}

// Enabled reports whether lv would be written.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= Level(l.level.Load())
}

func (l *Logger) log(lv Level, event, format string, args ...any) {
	if !l.Enabled(lv) {
		return
	}
	ts := time.Now().UTC().Format("2006-01-02T15:04:05.000Z")
	msg := fmt.Sprintf(format, args...)
	l.mu.Lock()
	fmt.Fprintf(l.w, "%s %-5s [%s] %s\n", ts, lv, event, msg)
	l.mu.Unlock()
}

// Debugf/Infof/Warnf/Errorf log one event-tagged line at their level.
func (l *Logger) Debugf(event, format string, args ...any) { l.log(LevelDebug, event, format, args...) }
func (l *Logger) Infof(event, format string, args ...any)  { l.log(LevelInfo, event, format, args...) }
func (l *Logger) Warnf(event, format string, args ...any)  { l.log(LevelWarn, event, format, args...) }
func (l *Logger) Errorf(event, format string, args ...any) { l.log(LevelError, event, format, args...) }

// Printf adapts the logger to the printf-shaped sinks the registry
// (SetLogger) and cluster (Logf) accept: every line from that sink is
// tagged with event and logged at lv. A nil logger yields a no-op sink.
func (l *Logger) Printf(lv Level, event string) func(format string, args ...any) {
	if l == nil {
		return func(string, ...any) {}
	}
	return func(format string, args ...any) { l.log(lv, event, format, args...) }
}
