package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) writer and checker. The
// writer is what /metrics renders; the checker is the in-repo
// well-formedness gate CI's curl smoke pipes a scrape through — no
// external prometheus dependency, which the build constraints forbid.

// PromWriter renders metrics in Prometheus text format. Not
// concurrency-safe; build one per scrape.
type PromWriter struct {
	w     *bufio.Writer
	typed map[string]bool
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: bufio.NewWriter(w), typed: map[string]bool{}}
}

// header emits # HELP / # TYPE once per metric name.
func (p *PromWriter) header(name, typ, help string) {
	if p.typed[name] {
		return
	}
	p.typed[name] = true
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Label is one name="value" pair.
type Label struct{ Name, Value string }

func writeLabels(w *bufio.Writer, labels []Label) {
	if len(labels) == 0 {
		return
	}
	w.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			w.WriteByte(',')
		}
		fmt.Fprintf(w, "%s=%q", l.Name, l.Value)
	}
	w.WriteByte('}')
}

func (p *PromWriter) sample(name string, labels []Label, v float64) {
	p.w.WriteString(name)
	writeLabels(p.w, labels)
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		fmt.Fprintf(p.w, " %d\n", int64(v))
	} else {
		fmt.Fprintf(p.w, " %g\n", v)
	}
}

// Counter emits one counter sample.
func (p *PromWriter) Counter(name, help string, labels []Label, v float64) {
	p.header(name, "counter", help)
	p.sample(name, labels, v)
}

// Gauge emits one gauge sample.
func (p *PromWriter) Gauge(name, help string, labels []Label, v float64) {
	p.header(name, "gauge", help)
	p.sample(name, labels, v)
}

// Histogram emits a snapshot as a cumulative prometheus histogram in
// seconds: one {le="..."} bucket per populated power-of-two boundary
// (empty leading/trailing runs are collapsed to keep scrapes small),
// plus the +Inf bucket, _sum (approximated from bucket upper bounds —
// the histogram does not retain an exact sum) and _count.
func (p *PromWriter) Histogram(name, help string, labels []Label, s Snapshot) {
	p.header(name, "histogram", help)
	bname := name + "_bucket"
	var cum uint64
	var sumNs float64
	for i := 0; i < NumBuckets-1; i++ {
		if s.Buckets[i] == 0 && cum == 0 {
			continue // skip the empty prefix
		}
		cum += s.Buckets[i]
		sumNs += float64(s.Buckets[i]) * float64(BucketUpper(i))
		le := strconv.FormatFloat(float64(BucketUpper(i))/1e9, 'g', -1, 64)
		p.sample(bname, append(labels, Label{"le", le}), float64(cum))
		if cum == s.Count {
			break // the suffix is empty; +Inf below closes the series
		}
	}
	over := s.Buckets[NumBuckets-1]
	if over > 0 && s.MaxNs > 0 {
		sumNs += float64(over) * float64(s.MaxNs)
	}
	p.sample(bname, append(labels, Label{"le", "+Inf"}), float64(s.Count))
	p.sample(name+"_sum", labels, sumNs/1e9)
	p.sample(name+"_count", labels, float64(s.Count))
}

// Flush flushes the underlying writer.
func (p *PromWriter) Flush() error { return p.w.Flush() }

var (
	promName  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabel = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ParseProm validates a Prometheus text exposition: every line is a
// comment, a well-formed # HELP/# TYPE (known type, name matching the
// metric name charset), or a sample whose name, labels and value
// parse. It returns the number of samples. This is a well-formedness
// check, not a full client library — exactly what a CI smoke needs.
func ParseProm(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	samples, lineno := 0, 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkPromComment(line); err != nil {
				return samples, fmt.Errorf("line %d: %w", lineno, err)
			}
			continue
		}
		if err := checkPromSample(line); err != nil {
			return samples, fmt.Errorf("line %d: %w", lineno, err)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	if samples == 0 {
		return 0, fmt.Errorf("no samples in exposition")
	}
	return samples, nil
}

func checkPromComment(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // free-form comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !promName.MatchString(fields[2]) {
			return fmt.Errorf("malformed HELP: %q", line)
		}
	case "TYPE":
		if len(fields) != 4 || !promName.MatchString(fields[2]) {
			return fmt.Errorf("malformed TYPE: %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

func checkPromSample(line string) error {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return fmt.Errorf("no value: %q", line)
	}
	name := rest[:i]
	if !promName.MatchString(name) {
		return fmt.Errorf("bad metric name %q", name)
	}
	if rest[i] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return fmt.Errorf("unterminated labels: %q", line)
		}
		if err := checkPromLabels(rest[i+1 : end]); err != nil {
			return fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	} else {
		rest = rest[i:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("want 'value [timestamp]' after name: %q", line)
	}
	if _, err := parsePromValue(fields[0]); err != nil {
		return fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func checkPromLabels(s string) error {
	// Labels are name="value" pairs; values are Go-quoted by the writer,
	// so strconv.Unquote validates the escaping.
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return fmt.Errorf("label without '='")
		}
		name := s[:eq]
		if !promLabel.MatchString(name) {
			return fmt.Errorf("bad label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("unquoted label value")
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			return fmt.Errorf("unterminated label value")
		}
		if _, err := strconv.Unquote(s[:end+1]); err != nil {
			return fmt.Errorf("bad label value %s", s[:end+1])
		}
		s = s[end+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return fmt.Errorf("expected ',' between labels")
			}
			s = s[1:]
		}
	}
	return nil
}
