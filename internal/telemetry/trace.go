package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one request's stage timeline: a fixed-size struct of
// monotonic span durations, stamped only at stage boundaries. All
// methods are nil-safe — an untraced call path passes a nil *Trace and
// pays a pointer test per boundary, nothing more. Traces are pooled
// (TracePool); the warm serving path never allocates one.
//
// Because the stages of a job are strictly sequential, a single running
// mark suffices: Mark(s) charges the time since the previous boundary
// to stage s and moves the mark. Spans accumulate, so a stage entered
// twice (a batch job labeling several forests) sums its visits.
type Trace struct {
	// ID is the request id. Router-originated requests propagate theirs
	// (X-Isel-Request-Id) so a failover's replica-side traces correlate
	// with the router's hop spans.
	ID uint64
	// Machine, Kind and Client identify the histogram series the trace
	// feeds. They are references to already-interned registry strings —
	// setting them allocates nothing.
	Machine string
	Kind    string
	Client  string
	// Err records how the request resolved ("" = success). Set from
	// err.Error() only on the failure path.
	Err string

	// The monotonic fields hold raw stamp units (TSC cycles where
	// available, ns otherwise — see stampNow): a boundary Mark is one
	// counter read and one add, and the cycles→ns conversion happens
	// once per request at the export edges (Span/Spans/Total, the
	// histogram fold, the slowlog entry).
	start   time.Time // wall clock, for slowlog display only
	startNs int64     // stamp units; where Begin stamped
	mark    int64     // stamp units; the previous stage boundary
	spans   [NumStages]int64
	total   int64
}

// Begin stamps the trace's start; the first Mark spans from here. The
// one wall-clock read of a trace's life happens here (slowlog display);
// every later boundary is a bare monotonic stamp (TSC where available,
// nanotime otherwise — see stampNow).
func (t *Trace) Begin() {
	if t == nil {
		return
	}
	t.start = time.Now()
	t.startNs = stampNow()
	t.mark = t.startNs
}

// Mark charges the time since the previous boundary to stage s and
// advances the mark. One monotonic clock read per call; a negative
// interval (a TSC stepping backwards across a core migration) charges
// zero rather than corrupting the span.
func (t *Trace) Mark(s Stage) {
	if t == nil {
		return
	}
	now := stampNow()
	if d := now - t.mark; d > 0 {
		t.spans[s] += d
	}
	t.mark = now
}

// Skip advances the mark without charging anybody — for time between
// stages that belongs to no stage (e.g. future-resolution bookkeeping).
func (t *Trace) Skip() {
	if t == nil {
		return
	}
	t.mark = stampNow()
}

// Finish totals the trace: everything since Begin.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	if d := stampNow() - t.startNs; d > 0 {
		t.total = d
	}
}

// Span returns stage s's accumulated nanoseconds.
func (t *Trace) Span(s Stage) int64 {
	if t == nil {
		return 0
	}
	return stampToNs(t.spans[s])
}

// Spans returns the full span array in nanoseconds (zero for a nil
// trace).
func (t *Trace) Spans() [NumStages]int64 {
	if t == nil {
		return [NumStages]int64{}
	}
	var ns [NumStages]int64
	for i, d := range t.spans {
		ns[i] = stampToNs(d)
	}
	return ns
}

// Total returns the request's end-to-end nanoseconds (valid after
// Finish).
func (t *Trace) Total() int64 {
	if t == nil {
		return 0
	}
	return stampToNs(t.total)
}

// Start returns the wall-clock begin time, for display.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Summary renders the one-line header form:
//
//	id=42 machine=x86 kind=ondemand total=1.23ms lease=0s queue=80µs label=500µs reduce=600µs emit=50µs
//
// It allocates; it runs only when a caller asked to see the trace.
func (t *Trace) Summary() string {
	if t == nil {
		return ""
	}
	s := fmt.Sprintf("id=%d machine=%s kind=%s total=%s",
		t.ID, t.Machine, t.Kind, time.Duration(t.Total()))
	for _, st := range Stages() {
		s += fmt.Sprintf(" %s=%s", st, time.Duration(t.Span(st)))
	}
	return s
}

// reset clears a trace for reuse. The zero mark is fine: Begin stamps
// it.
func (t *Trace) reset() {
	*t = Trace{}
}

// TracePool recycles traces and issues request ids. The zero value is
// ready to use; one pool per server.
type TracePool struct {
	pool sync.Pool
	ids  atomic.Uint64
}

// NextID returns a fresh process-local request id (never 0).
func (p *TracePool) NextID() uint64 { return p.ids.Add(1) }

// Get returns a zeroed trace with a fresh id, Begin already stamped.
func (p *TracePool) Get(machine, kind, client string) *Trace {
	return p.GetWithID(p.NextID(), machine, kind, client)
}

// GetWithID is Get under a caller-supplied id — the router-propagated
// request id, so fleet-side traces correlate across hops.
func (p *TracePool) GetWithID(id uint64, machine, kind, client string) *Trace {
	t, ok := p.pool.Get().(*Trace)
	if !ok {
		t = new(Trace)
	}
	t.reset()
	t.ID = id
	t.Machine, t.Kind, t.Client = machine, kind, client
	t.Begin()
	return t
}

// Put recycles a trace. The caller must not touch it afterwards.
func (p *TracePool) Put(t *Trace) {
	if t == nil {
		return
	}
	p.pool.Put(t)
}
