package telemetry

import (
	"sort"
	"sync"
)

// StageSet is the histogram bundle of one machine × engine-kind series:
// one histogram per stage plus one for end-to-end request latency.
type StageSet struct {
	stages [NumStages]Histogram
	total  Histogram
}

// Record adds one stage observation.
func (s *StageSet) Record(st Stage, ns int64) { s.stages[st].Record(ns) }

// RecordTrace folds a finished trace in: every stage span plus the
// total. NumStages+1 atomic adds per request; the once-per-request
// cycles→ns conversions of the trace's raw spans happen here.
func (s *StageSet) RecordTrace(t *Trace) {
	if s == nil || t == nil {
		return
	}
	for i := range s.stages {
		s.stages[i].Record(stampToNs(t.spans[i]))
	}
	s.total.Record(stampToNs(t.total))
}

// SeriesSnapshot is one series' mergeable latency snapshot — the unit
// /stats carries and the router aggregates fleet-wide.
type SeriesSnapshot struct {
	Machine string              `json:"machine"`
	Kind    string              `json:"kind"`
	Stages  [NumStages]Snapshot `json:"stages"`
	Total   Snapshot            `json:"total"`
}

// StageSummaries renders the snapshot's per-stage percentile map for
// /stats ("lease", "queue", ... plus "total").
func (ss SeriesSnapshot) StageSummaries() map[string]LatencySummary {
	m := make(map[string]LatencySummary, NumStages+1)
	for _, st := range Stages() {
		m[st.String()] = ss.Stages[st].Summary()
	}
	m["total"] = ss.Total.Summary()
	return m
}

// Collector owns the machine × kind histogram series of one process.
// The warm path does one read-locked map lookup per request (no
// interface boxing, no allocation); series are created on first use.
type Collector struct {
	mu     sync.RWMutex
	series map[seriesKey]*StageSet
}

type seriesKey struct{ machine, kind string }

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{series: make(map[seriesKey]*StageSet)}
}

// Set returns the series for machine × kind, creating it on first use.
func (c *Collector) Set(machine, kind string) *StageSet {
	k := seriesKey{machine, kind}
	c.mu.RLock()
	s := c.series[k]
	c.mu.RUnlock()
	if s != nil {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s = c.series[k]; s == nil {
		s = &StageSet{}
		c.series[k] = s
	}
	return s
}

// Snapshot copies every series, sorted by machine then kind.
func (c *Collector) Snapshot() []SeriesSnapshot {
	c.mu.RLock()
	keys := make([]seriesKey, 0, len(c.series))
	for k := range c.series {
		keys = append(keys, k)
	}
	sets := make([]*StageSet, len(keys))
	for i, k := range keys {
		sets[i] = c.series[k]
	}
	c.mu.RUnlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].machine != keys[j].machine {
			return keys[i].machine < keys[j].machine
		}
		return keys[i].kind < keys[j].kind
	})
	// Re-fetch in sorted order (keys and sets were captured together,
	// but sorting keys alone would desync them — rebuild by lookup).
	out := make([]SeriesSnapshot, 0, len(keys))
	c.mu.RLock()
	for _, k := range keys {
		set := c.series[k]
		ss := SeriesSnapshot{Machine: k.machine, Kind: k.kind, Total: set.total.Snapshot()}
		for i := range set.stages {
			ss.Stages[i] = set.stages[i].Snapshot()
		}
		out = append(out, ss)
	}
	c.mu.RUnlock()
	return out
}

// MergeSeries folds src into dst by machine × kind — the router's fleet
// aggregation, snapshot-merge exactly like its counter merge. Returns
// dst (possibly grown), sorted.
func MergeSeries(dst, src []SeriesSnapshot) []SeriesSnapshot {
	idx := make(map[seriesKey]int, len(dst))
	for i, ss := range dst {
		idx[seriesKey{ss.Machine, ss.Kind}] = i
	}
	for _, ss := range src {
		k := seriesKey{ss.Machine, ss.Kind}
		i, ok := idx[k]
		if !ok {
			idx[k] = len(dst)
			dst = append(dst, ss)
			continue
		}
		for st := range dst[i].Stages {
			dst[i].Stages[st].Merge(ss.Stages[st])
		}
		dst[i].Total.Merge(ss.Total)
	}
	sort.Slice(dst, func(i, j int) bool {
		if dst[i].Machine != dst[j].Machine {
			return dst[i].Machine < dst[j].Machine
		}
		return dst[i].Kind < dst[j].Kind
	})
	return dst
}
