package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Hop is one router attempt against one replica during a proxied
// request — the span that makes a failover visible: a slowlog entry
// with two hops names the dead owner and the one that answered.
type Hop struct {
	Peer     string `json:"peer"`
	Status   int    `json:"status,omitempty"`
	Err      string `json:"err,omitempty"`
	Ns       int64  `json:"ns"`
	Failover bool   `json:"failover,omitempty"` // true on every hop after the first
}

// Entry is one slowlog record: a value copy of a finished trace (plus
// router hops, when the entry was recorded by a router).
type Entry struct {
	ID      uint64           `json:"id"`
	Machine string           `json:"machine"`
	Kind    string           `json:"kind,omitempty"`
	Client  string           `json:"client,omitempty"`
	Start   time.Time        `json:"start"`
	TotalNs int64            `json:"totalNs"`
	SpanNs  [NumStages]int64 `json:"spanNs"`
	Err     string           `json:"err,omitempty"`
	Hops    []Hop            `json:"hops,omitempty"`
}

// EntryOf copies a finished trace into an Entry, converting the raw
// stamp-unit spans to nanoseconds.
func EntryOf(t *Trace) Entry {
	return Entry{
		ID: t.ID, Machine: t.Machine, Kind: t.Kind, Client: t.Client,
		Start: t.start, TotalNs: stampToNs(t.total), SpanNs: t.Spans(), Err: t.Err,
	}
}

// Summary renders the entry in the one-line X-Isel-Trace header form,
// matching Trace.Summary:
//
//	id=42 machine=x86 kind=ondemand total=1.23ms lease=0s queue=80µs ...
func (e Entry) Summary() string {
	s := fmt.Sprintf("id=%d machine=%s kind=%s total=%s",
		e.ID, e.Machine, e.Kind, time.Duration(e.TotalNs))
	for _, st := range Stages() {
		s += fmt.Sprintf(" %s=%s", st, time.Duration(e.SpanNs[st]))
	}
	return s
}

// Slowlog keeps the N slowest requests seen so far: a fixed-capacity
// ring that evicts its current fastest entry when a slower one arrives.
// The warm path consults a cached threshold first — once the log is
// full, a request faster than the slowest retained minimum returns
// without touching the lock, so steady fast traffic costs one atomic
// load per request.
type Slowlog struct {
	capacity int
	floor    atomic.Int64 // min TotalNs retained once full; gate for fast requests
	mu       sync.Mutex
	entries  []Entry
}

// NewSlowlog returns a slowlog retaining the n slowest requests
// (n <= 0 defaults to 32).
func NewSlowlog(n int) *Slowlog {
	if n <= 0 {
		n = 32
	}
	return &Slowlog{capacity: n, entries: make([]Entry, 0, n)}
}

// Record offers an entry. It is kept if the log has room or the entry
// is slower than the current fastest retained one (which it evicts).
func (l *Slowlog) Record(e Entry) {
	if e.TotalNs < l.floor.Load() {
		return // full, and faster than everything retained
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) < l.capacity {
		l.entries = append(l.entries, e)
		if len(l.entries) == l.capacity {
			l.floor.Store(l.min())
		}
		return
	}
	// Full: replace the fastest entry iff the newcomer is slower.
	mi := 0
	for i := 1; i < len(l.entries); i++ {
		if l.entries[i].TotalNs < l.entries[mi].TotalNs {
			mi = i
		}
	}
	if e.TotalNs <= l.entries[mi].TotalNs {
		return
	}
	l.entries[mi] = e
	l.floor.Store(l.min())
}

// min returns the smallest retained TotalNs (caller holds mu).
func (l *Slowlog) min() int64 {
	m := l.entries[0].TotalNs
	for _, e := range l.entries[1:] {
		if e.TotalNs < m {
			m = e.TotalNs
		}
	}
	return m
}

// Entries snapshots the log, slowest first.
func (l *Slowlog) Entries() []Entry {
	l.mu.Lock()
	out := append([]Entry(nil), l.entries...)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].TotalNs > out[j].TotalNs })
	return out
}

// Len reports how many entries are retained.
func (l *Slowlog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}
