package telemetry

// The stage-boundary clock. A trace stamps the clock once per stage
// boundary on the warm serving path, so its cost is the telemetry
// plane's floor: the vDSO monotonic read behind nanotime costs ~25-65ns
// depending on the host, which alone can bust the ≤2% overhead budget
// against a sub-microsecond label stage. On amd64 the TSC is read
// directly (~10-20ns) and stamps stay in raw cycle units; the cycles→ns
// conversion (stampToNs) is deferred to the once-per-request edges —
// histogram fold, slowlog entry, span accessors — so a boundary stamp
// is one RDTSC and one integer add, nothing else.
//
// The ns-per-cycle ratio is calibrated against nanotime at package
// init. Spans only ever subtract two stamps, so the epoch is arbitrary
// and a small calibration error (the init window is ~0.2ms) scales both
// sides of every ratio the trajectory gates — the unit stays honest.
// The conversion goes through float64: the 53-bit mantissa keeps the
// rounding error under a cycle for any span under three months, and it
// cannot overflow like fixed-point can. Hosts whose TSC is unusable
// (calibration reads a non-advancing or absurdly scaled counter) keep
// the nanotime fallback end to end; traces additionally clamp negative
// spans, so even a TSC that steps backwards across a core migration
// cannot corrupt a histogram.

func rdtsc() int64 // stamp_amd64.s

// tscScale is ns per cycle; 0 = TSC rejected, stamps are nanotime ns.
// Written once in init, which runs before any importer touches the
// package, so the plain (non-atomic) variable is safely published.
var tscScale float64

func init() {
	c0, n0 := rdtsc(), nanotime()
	// Spin out a ~0.2ms window. Busy-wait, not sleep: a descheduled
	// window only lengthens both deltas, so the ratio survives.
	for nanotime()-n0 < 200_000 {
	}
	c1, n1 := rdtsc(), nanotime()
	dc, dn := c1-c0, n1-n0
	if dc <= 0 || dn <= 0 {
		return // TSC not advancing: keep the nanotime fallback
	}
	scale := float64(dn) / float64(dc)
	if scale < 0.01 || scale > 100 {
		return // absurd frequency reading: keep the nanotime fallback
	}
	tscScale = scale
}

// stampNow is the stage-boundary clock: a monotonic reading in stamp
// units (TSC cycles, or nanoseconds on the fallback). The epoch is
// arbitrary; only differences are used, converted by stampToNs.
func stampNow() int64 {
	if tscScale != 0 {
		return rdtsc()
	}
	return nanotime()
}

// stampToNs converts a difference of stampNow readings to nanoseconds.
func stampToNs(d int64) int64 {
	if tscScale != 0 {
		return int64(float64(d) * tscScale)
	}
	return d
}

// stampFromNs is the inverse (to rounding), for tests that construct
// traces with known nanosecond spans.
func stampFromNs(ns int64) int64 {
	if tscScale != 0 {
		return int64(float64(ns) / tscScale)
	}
	return ns
}
