package telemetry

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo is the "what exactly is deployed here" identity block every
// /version endpoint answers with.
type BuildInfo struct {
	GoVersion string `json:"goVersion"`
	Module    string `json:"module,omitempty"`
	VCSRev    string `json:"vcsRevision,omitempty"`
	VCSTime   string `json:"vcsTime,omitempty"`
	Modified  bool   `json:"vcsModified,omitempty"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
}

// Build reads the binary's embedded build metadata (best-effort: a
// non-module build still reports go version and platform).
func Build() BuildInfo {
	bi := BuildInfo{
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
	}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.Module = info.Main.Path
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.VCSRev = s.Value
		case "vcs.time":
			bi.VCSTime = s.Value
		case "vcs.modified":
			bi.Modified = s.Value == "true"
		}
	}
	return bi
}
