// Package telemetry is the serving tier's observability plane: pooled
// per-request trace spans, lock-free log-bucketed latency histograms
// with mergeable snapshots, a ring buffer of the slowest requests, a
// Prometheus-text exposition writer (plus an in-repo well-formedness
// parser, so CI can assert /metrics without external deps), and one
// leveled logger for the registry's and cluster's operational events.
//
// The plane is built to be paid for: recording a latency is one atomic
// add into a power-of-two bucket, a trace is a pooled fixed-size struct
// stamped with monotonic time.Since deltas only at stage boundaries,
// and nothing on the warm compile path allocates. The alloc guards in
// the repo root and the PF trajectory's telemetry column hold it to
// that.
package telemetry

// Stage names one segment of a request's life inside the compilation
// server. The stages are strictly sequential per job — lease acquire,
// queue wait, label, reduce (which interleaves emission callbacks),
// emit finalization — so a Trace needs only one running mark to span
// all of them.
type Stage uint8

const (
	// StageLease is registry Acquire: version pin + lazy construction
	// (zero when the machine is warm).
	StageLease Stage = iota
	// StageQueue is the bounded-queue wait between submit and a worker
	// picking the job up.
	StageQueue
	// StageLabel is the labeling pass (automaton walk or DP).
	StageLabel
	// StageReduce is reduction over the labeling — including the
	// emission visitor callbacks it interleaves, which cannot be timed
	// separately without a per-node stamp the warm path can't afford.
	StageReduce
	// StageEmit is emission finalization: assembly interning and
	// instruction accounting after the reducer returns.
	StageEmit

	// NumStages is the span-array size.
	NumStages = int(StageEmit) + 1
)

var stageNames = [NumStages]string{"lease", "queue", "label", "reduce", "emit"}

// String returns the stage's label value ("lease", "queue", ...).
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// Stages lists every stage in order, for iteration by exporters.
func Stages() [NumStages]Stage {
	return [NumStages]Stage{StageLease, StageQueue, StageLabel, StageReduce, StageEmit}
}
