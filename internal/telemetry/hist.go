package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the histogram's bucket count. Bucket 0 holds zero (and
// sub-nanosecond) values; bucket i holds [2^(i-1), 2^i) ns; the last
// bucket absorbs everything from 2^(NumBuckets-2) ns (~2.3 min) up —
// requests that slow are all equally "investigate now".
const NumBuckets = 38

// Histogram is an HDR-style log-bucketed latency histogram: fixed
// power-of-two buckets of atomic cells. Record is lock-free — one
// atomic add into the value's bucket (plus a rarely-taken CAS to track
// the true max) — so it sits on the serving warm path without a lock
// or an allocation. Relative bucket error is <= 2x, which is what
// log-scale latency percentiles need and no more.
//
// The zero value is ready to use. Histograms are write-only at runtime;
// readers take Snapshot()s and merge those (à la Counters.Add) — the
// router aggregates fleet latency exactly as it aggregates counters.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	max     atomic.Int64
}

// bucketIndex maps nanoseconds to a bucket.
func bucketIndex(ns int64) int {
	if ns <= 0 {
		return 0
	}
	i := bits.Len64(uint64(ns))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketUpper is bucket i's inclusive upper bound in nanoseconds
// (math.MaxInt64 for the overflow bucket).
func BucketUpper(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= NumBuckets-1:
		return math.MaxInt64
	default:
		return int64(1)<<i - 1
	}
}

// Record adds one observation of ns nanoseconds.
func (h *Histogram) Record(ns int64) {
	h.buckets[bucketIndex(ns)].Add(1)
	// Track the true max beside the bucketed counts. The load-then-CAS
	// almost never takes the CAS once the max stabilizes.
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot is a point-in-time copy of a histogram, mergeable and
// JSON-serializable — the unit the router ships and aggregates.
type Snapshot struct {
	Count   uint64             `json:"count"`
	MaxNs   int64              `json:"maxNs"`
	Buckets [NumBuckets]uint64 `json:"buckets"`
}

// Snapshot copies the histogram. Cells are read individually (each
// atomically), so a snapshot taken under live writers is
// consistent-enough per cell, like Counters.Clone.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.MaxNs = h.max.Load()
	return s
}

// Merge folds o into s. Merging is associative and commutative —
// bucket-wise addition plus max-of-max — so fleet aggregation order
// does not matter.
func (s *Snapshot) Merge(o Snapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	if o.MaxNs > s.MaxNs {
		s.MaxNs = o.MaxNs
	}
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) in
// nanoseconds: the upper edge of the bucket the q-th observation falls
// in, tightened by the true max. Zero observations → 0.
func (s Snapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum >= target {
			up := BucketUpper(i)
			if s.MaxNs > 0 && up > s.MaxNs {
				return s.MaxNs
			}
			return up
		}
	}
	return s.MaxNs
}

// LatencySummary is the /stats rendering of one histogram: the
// percentiles the ISSUE's tradeoff story is told in.
type LatencySummary struct {
	Count uint64 `json:"count"`
	P50Ns int64  `json:"p50Ns"`
	P90Ns int64  `json:"p90Ns"`
	P99Ns int64  `json:"p99Ns"`
	MaxNs int64  `json:"maxNs"`
}

// Summary computes the snapshot's percentile summary.
func (s Snapshot) Summary() LatencySummary {
	return LatencySummary{
		Count: s.Count,
		P50Ns: s.Quantile(0.50),
		P90Ns: s.Quantile(0.90),
		P99Ns: s.Quantile(0.99),
		MaxNs: s.MaxNs,
	}
}
