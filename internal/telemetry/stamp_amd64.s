#include "textflag.h"

// func rdtsc() int64
//
// Plain RDTSC, no serializing fence: stage spans are tens of
// microseconds, so the few-cycle reorder window is measurement noise,
// and a fence would cost more than the read.
TEXT ·rdtsc(SB), NOSPLIT, $0-8
	RDTSC
	SHLQ $32, DX
	ORQ  DX, AX
	MOVQ AX, ret+0(FP)
	RET
