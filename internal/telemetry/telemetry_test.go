package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- histogram buckets ---

// TestBucketBoundaries pins the bucket map on the values the ISSUE
// names: 0, 1ns, exact powers of two, and the >max clamp.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{-5, 0}, // clock skew safety: negatives clamp to the zero bucket
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{1024, 11},                       // 2^10 opens bucket 11
		{1023, 10},                       // 2^10-1 closes bucket 10
		{int64(1) << 36, NumBuckets - 1}, // over the top: clamp
		{math.MaxInt64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every non-overflow bucket's upper bound must map back into it.
	for i := 1; i < NumBuckets-1; i++ {
		up := BucketUpper(i)
		if got := bucketIndex(up); got != i {
			t.Errorf("BucketUpper(%d) = %d maps to bucket %d", i, up, got)
		}
		if got := bucketIndex(up + 1); got != i+1 {
			t.Errorf("BucketUpper(%d)+1 maps to bucket %d, want %d", i, got, i+1)
		}
	}
	if BucketUpper(0) != 0 {
		t.Errorf("BucketUpper(0) = %d", BucketUpper(0))
	}
	if BucketUpper(NumBuckets-1) != math.MaxInt64 {
		t.Errorf("overflow BucketUpper = %d", BucketUpper(NumBuckets-1))
	}
}

func TestHistogramRecordSnapshot(t *testing.T) {
	var h Histogram
	vals := []int64{0, 1, 1, 100, 1000, 1 << 20, math.MaxInt64}
	for _, v := range vals {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(vals)) {
		t.Fatalf("count = %d, want %d", s.Count, len(vals))
	}
	if s.MaxNs != math.MaxInt64 {
		t.Fatalf("max = %d", s.MaxNs)
	}
	if s.Buckets[0] != 1 || s.Buckets[1] != 2 {
		t.Fatalf("low buckets: %v", s.Buckets[:3])
	}
	if s.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Buckets[NumBuckets-1])
	}
}

// TestMergeAssociativity: (a+b)+c == a+(b+c) == c+(a+b), on random
// snapshots — the property that makes fleet aggregation order-free.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func() *Histogram {
		var h Histogram
		for i := 0; i < 200; i++ {
			h.Record(rng.Int63n(1 << 30))
		}
		return &h
	}
	a, b, c := mk().Snapshot(), mk().Snapshot(), mk().Snapshot()

	left := a // (a+b)+c
	left.Merge(b)
	left.Merge(c)

	bc := b // a+(b+c)
	bc.Merge(c)
	right := a
	right.Merge(bc)

	if left != right {
		t.Fatalf("merge is not associative:\n  (a+b)+c = %+v\n  a+(b+c) = %+v", left, right)
	}

	comm := c // commutativity too: c+(a+b)
	ab := a
	ab.Merge(b)
	comm.Merge(ab)
	if comm != left {
		t.Fatalf("merge is not commutative")
	}
}

func TestQuantile(t *testing.T) {
	var h Histogram
	if q := h.Snapshot().Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
	// 90 fast (≈1µs) + 10 slow (≈1ms) observations: p50 must sit in the
	// fast band, p99 in the slow band, and everything clamps to max.
	for i := 0; i < 90; i++ {
		h.Record(1000)
	}
	for i := 0; i < 10; i++ {
		h.Record(1_000_000)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 >= 10_000 {
		t.Errorf("p50 = %dns, want in the fast band", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 500_000 {
		t.Errorf("p99 = %dns, want in the slow band", p99)
	}
	if max := s.Quantile(1.0); max != 1_000_000 {
		t.Errorf("p100 = %dns, want the true max", max)
	}
	sum := s.Summary()
	if sum.Count != 100 || sum.MaxNs != 1_000_000 || sum.P99Ns < sum.P50Ns {
		t.Errorf("summary: %+v", sum)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("lost records: %d, want %d", s.Count, workers*per)
	}
}

// --- collector ---

func TestCollectorSeriesAndMerge(t *testing.T) {
	c := NewCollector()
	set := c.Set("x86", "ondemand")
	if c.Set("x86", "ondemand") != set {
		t.Fatal("Set must return the same series for the same key")
	}
	var tr Trace
	tr.Begin()
	// Spans live in raw stamp units inside a trace; construct them from
	// ns and allow the round trip a little float rounding below.
	for i := range tr.spans {
		tr.spans[i] = stampFromNs(int64(10 * (i + 1)))
	}
	tr.total = stampFromNs(150)
	set.RecordTrace(&tr)
	c.Set("jit64", "offline").Record(StageLabel, 99)

	snap := c.Snapshot()
	if len(snap) != 2 || snap[0].Machine != "jit64" || snap[1].Machine != "x86" {
		t.Fatalf("snapshot order: %+v", snap)
	}
	if snap[1].Stages[StageQueue].Count != 1 || snap[1].Total.MaxNs < 145 || snap[1].Total.MaxNs > 150 {
		t.Fatalf("x86 series: %+v", snap[1])
	}

	// Fleet merge: two replicas' snapshots fold by machine × kind.
	other := NewCollector()
	other.Set("x86", "ondemand").Record(StageQueue, 20)
	other.Set("mips", "dp").Record(StageLease, 1)
	merged := MergeSeries(c.Snapshot(), other.Snapshot())
	if len(merged) != 3 {
		t.Fatalf("merged series count = %d, want 3", len(merged))
	}
	for _, ss := range merged {
		if ss.Machine == "x86" && ss.Stages[StageQueue].Count != 2 {
			t.Fatalf("x86 queue count after merge = %d, want 2", ss.Stages[StageQueue].Count)
		}
	}
	sums := merged[0].StageSummaries()
	if _, ok := sums["total"]; !ok || len(sums) != NumStages+1 {
		t.Fatalf("stage summaries: %v", sums)
	}
}

// --- slowlog ---

// TestSlowlogEvictionOrder pins the ring's eviction rule: the log keeps
// the N slowest, evicting its fastest retained entry when a slower
// request arrives, and never evicting for a faster one.
func TestSlowlogEvictionOrder(t *testing.T) {
	l := NewSlowlog(3)
	for i, total := range []int64{50, 10, 30} {
		l.Record(Entry{ID: uint64(i + 1), TotalNs: total})
	}
	// Full with {50,10,30}. A 5ns request must bounce off the floor.
	l.Record(Entry{ID: 99, TotalNs: 5})
	if got := l.Entries(); len(got) != 3 || got[0].TotalNs != 50 || got[2].TotalNs != 10 {
		t.Fatalf("fast request displaced the log: %+v", got)
	}
	// A 40ns request evicts the 10ns one — the fastest — and nothing else.
	l.Record(Entry{ID: 4, TotalNs: 40})
	got := l.Entries()
	want := []int64{50, 40, 30}
	for i, e := range got {
		if e.TotalNs != want[i] {
			t.Fatalf("after eviction: %+v, want totals %v", got, want)
		}
	}
	// Ties do not evict (<=): a second 30ns entry bounces.
	l.Record(Entry{ID: 5, TotalNs: 30})
	if got := l.Entries(); got[2].ID != 3 {
		t.Fatalf("tie evicted the incumbent: %+v", got)
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestSlowlogConcurrent(t *testing.T) {
	l := NewSlowlog(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Record(Entry{ID: uint64(w*1000 + i), TotalNs: int64(i)})
			}
		}(w)
	}
	wg.Wait()
	got := l.Entries()
	if len(got) != 8 {
		t.Fatalf("len = %d", len(got))
	}
	for _, e := range got { // the 8 slowest of 0..999 × 4 are all 998+
		if e.TotalNs < 998 {
			t.Fatalf("kept a fast entry: %+v", got)
		}
	}
}

// --- trace ---

func TestTraceSpansAndPool(t *testing.T) {
	var p TracePool
	tr := p.Get("x86", "ondemand", "alice")
	if tr.ID == 0 {
		t.Fatal("pool must issue nonzero ids")
	}
	tr.Mark(StageLease)
	time.Sleep(2 * time.Millisecond)
	tr.Mark(StageLabel)
	tr.Finish()
	if tr.Span(StageLabel) < int64(time.Millisecond) {
		t.Fatalf("label span = %d, want >= 1ms", tr.Span(StageLabel))
	}
	if tr.Total() < tr.Span(StageLabel) {
		t.Fatalf("total %d < label span %d", tr.Total(), tr.Span(StageLabel))
	}
	sum := tr.Summary()
	for _, want := range []string{"machine=x86", "kind=ondemand", "label="} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary %q missing %q", sum, want)
		}
	}
	e := EntryOf(tr)
	if e.ID != tr.ID || e.SpanNs != tr.Spans() {
		t.Fatalf("EntryOf mismatch: %+v", e)
	}
	id := tr.ID
	p.Put(tr)
	tr2 := p.GetWithID(7, "mips", "dp", "bob")
	if tr2.ID != 7 || tr2.Span(StageLabel) != 0 || tr2.Err != "" {
		t.Fatalf("recycled trace not reset: %+v (old id %d)", tr2, id)
	}

	// Nil traces are inert everywhere.
	var nt *Trace
	nt.Begin()
	nt.Mark(StageReduce)
	nt.Skip()
	nt.Finish()
	if nt.Total() != 0 || nt.Span(StageReduce) != 0 || nt.Summary() != "" {
		t.Fatal("nil trace must be a no-op")
	}
}

// --- prom ---

func TestPromWriteParseRoundTrip(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(int64(i) * 1000)
	}
	var buf bytes.Buffer
	w := NewPromWriter(&buf)
	w.Counter("isel_jobs_total", "jobs", []Label{{"machine", "x86"}}, 42)
	w.Counter("isel_jobs_total", "jobs", []Label{{"machine", `we"ird\m`}}, 1)
	w.Gauge("isel_resident_bytes", "resident table bytes", nil, 1.5e6)
	w.Histogram("isel_stage_duration_seconds", "per-stage latency",
		[]Label{{"machine", "x86"}, {"kind", "ondemand"}, {"stage", "label"}}, h.Snapshot())
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	n, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("writer output does not parse: %v\n%s", err, text)
	}
	if n < 6 {
		t.Fatalf("parsed %d samples, want >= 6\n%s", n, text)
	}
	for _, want := range []string{
		"# TYPE isel_jobs_total counter",
		"# TYPE isel_stage_duration_seconds histogram",
		`le="+Inf"`,
		"isel_stage_duration_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// The cumulative +Inf bucket must equal _count's value.
	if !strings.Contains(text, `le="+Inf"} 100`) {
		t.Fatalf("+Inf bucket must carry the full count:\n%s", text)
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	bad := []string{
		"",                            // no samples
		"1metric 5",                   // bad name
		"ok{le=\"unterminated} 5",     // unterminated label
		"ok{x=bare} 5",                // unquoted value
		"ok 5 6 7",                    // trailing garbage
		"ok notanumber",               // bad value
		"# TYPE ok notatype\nok 5",    // unknown type
		"ok{br%ken=\"v\"} 5",          // bad label name
		"ok{x=\"v\"} 5 notatimestamp", // bad timestamp
	}
	for _, src := range bad {
		if _, err := ParseProm(strings.NewReader(src)); err == nil {
			t.Errorf("ParseProm accepted %q", src)
		}
	}
	good := "# random comment\n\nok{x=\"v\",y=\"w\"} 5 1700000000\nplain 3.5\ninf +Inf"
	if n, err := ParseProm(strings.NewReader(good)); err != nil || n != 3 {
		t.Errorf("ParseProm(good) = %d, %v", n, err)
	}
}

// --- logger ---

func TestLoggerLevelsAndAdapter(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Debugf("x", "dropped")
	l.Infof("registry", "swapped %s to v%d", "x86", 2)
	l.Warnf("cluster", "peer down")
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Fatal("debug line leaked through info level")
	}
	for _, want := range []string{"INFO", "[registry] swapped x86 to v2", "WARN", "[cluster] peer down"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log output missing %q:\n%s", want, out)
		}
	}
	// Printf adapter: the shape SetLogger/Logf consume.
	buf.Reset()
	sink := l.Printf(LevelInfo, "swap")
	sink("machine %s", "jit64")
	if !strings.Contains(buf.String(), "[swap] machine jit64") {
		t.Fatalf("adapter output: %q", buf.String())
	}
	l.SetLevel(LevelError)
	buf.Reset()
	sink("now dropped")
	l.Warnf("x", "also dropped")
	if buf.Len() != 0 {
		t.Fatalf("level raise did not silence: %q", buf.String())
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelWarn) {
		t.Fatal("Enabled disagrees with level")
	}

	var nl *Logger
	nl.Infof("x", "nil logger is silent")
	nl.SetLevel(LevelDebug)
	nl.Printf(LevelInfo, "x")("still silent")
	if nl.Enabled(LevelError) {
		t.Fatal("nil logger must be disabled")
	}

	if _, err := ParseLevel("nope"); err == nil {
		t.Fatal("ParseLevel must reject unknown levels")
	}
	for s, want := range map[string]Level{"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn, "error": LevelError, "": LevelInfo} {
		if got, err := ParseLevel(s); err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
}

func TestBuildInfo(t *testing.T) {
	bi := Build()
	if bi.GoVersion == "" || bi.OS == "" || bi.Arch == "" {
		t.Fatalf("build info incomplete: %+v", bi)
	}
	if s := fmt.Sprintf("%+v", bi); s == "" {
		t.Fatal("unreachable")
	}
}
