package telemetry

import (
	_ "unsafe" // for go:linkname
)

// nanotime is the runtime's monotonic clock: the raw reading time.Now
// composes with a second (wall) clock read. Stage stamps happen several
// times per request on the warm path, where the wall-clock half — and
// the time.Time packing — is pure overhead: a span is a difference of
// monotonic readings, so int64 nanotime is the whole requirement. The
// linkname pull is the standard one (the runtime keeps it stable for
// exactly this use); the empty nanotime.s beside this file marks the
// package as containing assembly so the body-less declaration links.
//
//go:linkname nanotime runtime.nanotime
func nanotime() int64
