package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestDisarmedIsInert: with nothing armed, Fire injects nothing (and the
// fast path never consults the fault table).
func TestDisarmedIsInert(t *testing.T) {
	if err := Fire(GenLoad); err != nil {
		t.Fatalf("disarmed Fire = %v, want nil", err)
	}
	if got := Fired(GenLoad); got != 0 {
		t.Fatalf("Fired = %d, want 0", got)
	}
}

// TestErrorFaultScheduling: After skips hits, Count bounds fires, disarm
// restores inertness, and accounting matches.
func TestErrorFaultScheduling(t *testing.T) {
	boom := errors.New("boom")
	disarm := Arm(GenLoad, Fault{Err: boom, After: 2, Count: 2})
	defer disarm()

	var fired int
	for i := 0; i < 6; i++ {
		if err := Fire(GenLoad); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("hit %d: err = %v", i, err)
			}
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2 (After=2 Count=2 over 6 hits)", fired)
	}
	if got := Fired(GenLoad); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
	disarm()
	disarm() // idempotent
	if err := Fire(GenLoad); err != nil {
		t.Fatalf("after disarm Fire = %v, want nil", err)
	}
}

// TestPanicFault: a panic fault panics out of Fire with the armed value.
func TestPanicFault(t *testing.T) {
	defer Arm(DynCost, Fault{Panic: "injected", Count: 1})()
	defer func() {
		if r := recover(); r != "injected" {
			t.Fatalf("recover = %v, want injected", r)
		}
	}()
	Fire(DynCost)
	t.Fatal("Fire must panic")
}

// TestHangFault: a hang fault blocks Fire until the gate closes — the
// deterministic hold-a-job-mid-compile lever.
func TestHangFault(t *testing.T) {
	gate := make(chan struct{})
	defer Arm(DynCost, Fault{Hang: gate, Count: 1})()
	done := make(chan struct{})
	go func() {
		Fire(DynCost)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Fire returned before the gate opened")
	case <-time.After(20 * time.Millisecond):
	}
	close(gate)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Fire did not return after the gate opened")
	}
}

// TestConcurrentFire: concurrent hits race safely and exactly Count fire
// — the harness must not itself be racy while provoking races.
func TestConcurrentFire(t *testing.T) {
	boom := errors.New("boom")
	defer Arm(GenLoad, Fault{Err: boom, Count: 5})()
	var wg sync.WaitGroup
	var fired sync.Map
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				if Fire(GenLoad) != nil {
					fired.Store([2]int{i, k}, true)
				}
			}
		}(i)
	}
	wg.Wait()
	n := 0
	fired.Range(func(any, any) bool { n++; return true })
	if n != 5 {
		t.Fatalf("fired %d times, want exactly 5", n)
	}
	if got := Fired(GenLoad); got != 5 {
		t.Fatalf("Fired = %d, want 5", got)
	}
}

// TestReset: Reset disarms every point at once.
func TestReset(t *testing.T) {
	Arm(GenLoad, Fault{Err: errors.New("a")})
	Arm(DynCost, Fault{Err: errors.New("b")})
	Reset()
	if err := Fire(GenLoad); err != nil {
		t.Fatalf("after Reset, GenLoad Fire = %v", err)
	}
	if err := Fire(DynCost); err != nil {
		t.Fatalf("after Reset, DynCost Fire = %v", err)
	}
}
