// Package faultinject is the fault-injection harness behind the serving
// tier's robustness tests: named injection points compiled permanently
// into a few load-bearing seams (blob deserialization, dynamic cost
// evaluation wrappers) that are inert until a test arms them.
//
// The design constraints, in order:
//
//  1. Disarmed cost must be unmeasurable. Fire's fast path is a single
//     atomic load of a package counter — no map lookup, no lock, no
//     allocation — so the hooks can live on paths adjacent to the warm
//     ones without showing up in the benchmark trajectory.
//  2. Faults are data, not code. A test arms a Point with a Fault value
//     describing what to inject (an error, a panic, a delay, a hang) and
//     when (skip the first After hits, fire at most Count times), then
//     disarms it. Production binaries contain the points but can never
//     trip them: only a test or harness that imports this package and
//     calls Arm can.
//  3. Concurrency-safe by construction: Arm/disarm take a lock, Fire
//     reads under RLock only after the atomic says something is armed,
//     and hit accounting is atomic — the races the harness is used to
//     provoke (cancellation vs cutover, panic mid-drain) must not be
//     races in the harness itself.
//
// Typical use:
//
//	defer faultinject.Arm(faultinject.GenLoad, faultinject.Fault{
//		Err:   errors.New("injected: truncated blob"),
//		Count: 1,
//	})()
//
// Points fire wherever the production code calls Fire (or a harness
// calls it from a wrapper, as the SV swap scenario does for dynamic cost
// functions). New points are one constant plus one Fire call.
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection site.
type Point string

// The wired-in points. GenLoad fires inside internal/gen.Load, before
// any blob bytes are decoded — arming it makes every table-blob load
// (preload, swap re-read, in-process round trip) fail, truncate-style.
// DynCost is fired by harness-side wrappers around grammar dynamic cost
// functions (see internal/bench's swap scenario): arming it injects
// panics or stalls into the middle of a labeling pass.
// ReplicaDeath fires at a replica's compile intake (the HTTP front
// end's submit path): arming it makes the replica fail jobs the way a
// dying process does — the cluster failover tests assert the router
// retries each such failure on the next replica with zero
// client-visible errors. PeerSlow fires in the cluster's peer client
// before every outbound peer call (proxied compile, blob fetch, health
// probe): a Delay fault simulates a slow peer, an Err a partitioned one.
const (
	GenLoad      Point = "gen.load"
	DynCost      Point = "dyn.cost"
	ReplicaDeath Point = "replica.death"
	PeerSlow     Point = "peer.slow"
)

// Fault describes one injected behavior. Exactly the set fields happen,
// in order: Delay (sleep), Hang (block until the channel closes), Panic
// (panic with the value), Err (returned from Fire). A Fault with only
// scheduling fields set is a no-op probe: it counts hits.
type Fault struct {
	// Err is returned by Fire to the hook site (which treats it as the
	// operation's own failure, e.g. a corrupt blob).
	Err error
	// Panic, when non-nil, makes Fire panic with this value — the
	// "grammar-supplied code went wrong" fault.
	Panic any
	// Delay, when > 0, makes Fire sleep first — the slow-cost-fn fault.
	Delay time.Duration
	// Hang, when non-nil, makes Fire block until the channel is closed —
	// the deterministic form of Delay for tests that need to hold a job
	// mid-compile while they do something (cancel it, swap under it).
	Hang <-chan struct{}
	// After skips the first After hits of the point before firing.
	After int
	// Count bounds how many hits fire (0 = every hit once armed).
	Count int
}

type armedFault struct {
	f     Fault
	hits  atomic.Int64
	fired atomic.Int64
}

var (
	// armedCount gates Fire's fast path: zero means nothing is armed
	// anywhere and Fire is one atomic load.
	armedCount atomic.Int64

	mu    sync.RWMutex
	armed = map[Point][]*armedFault{}
)

// Arm installs f at point p and returns its disarm function. Multiple
// faults may be armed at one point; they are consulted in arming order.
// Disarm is idempotent. Tests should defer it immediately.
func Arm(p Point, f Fault) (disarm func()) {
	af := &armedFault{f: f}
	mu.Lock()
	armed[p] = append(armed[p], af)
	mu.Unlock()
	armedCount.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			mu.Lock()
			fs := armed[p]
			for i, x := range fs {
				if x == af {
					armed[p] = append(fs[:i], fs[i+1:]...)
					break
				}
			}
			if len(armed[p]) == 0 {
				delete(armed, p)
			}
			mu.Unlock()
			armedCount.Add(-1)
		})
	}
}

// Reset disarms everything — a test-cleanup backstop.
func Reset() {
	mu.Lock()
	n := 0
	for _, fs := range armed {
		n += len(fs)
	}
	armed = map[Point][]*armedFault{}
	mu.Unlock()
	armedCount.Add(int64(-n))
}

// Fired reports how many times point p actually injected (summed over
// its armed faults) — the assertion lever for "exactly one job failed,
// and it was ours".
func Fired(p Point) int64 {
	mu.RLock()
	defer mu.RUnlock()
	var n int64
	for _, af := range armed[p] {
		n += af.fired.Load()
	}
	return n
}

// Fire is the injection site: production (or wrapper) code calls it and
// applies the returned error as the operation's own failure. With
// nothing armed it is a single atomic load. An armed fault may sleep,
// hang, panic, or return its error, per its Fault.
func Fire(p Point) error {
	if armedCount.Load() == 0 {
		return nil
	}
	return fire(p)
}

func fire(p Point) error {
	mu.RLock()
	fs := armed[p]
	var chosen *armedFault
	for _, af := range fs {
		n := int(af.hits.Add(1))
		if n <= af.f.After {
			continue
		}
		if af.f.Count > 0 && n > af.f.After+af.f.Count {
			continue
		}
		chosen = af
		break
	}
	mu.RUnlock()
	if chosen == nil {
		return nil
	}
	chosen.fired.Add(1)
	f := chosen.f
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Hang != nil {
		<-f.Hang
	}
	if f.Panic != nil {
		panic(f.Panic)
	}
	return f.Err
}
