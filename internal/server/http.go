package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"

	"repro"
	"repro/internal/metrics"
)

// The HTTP/JSON protocol of cmd/iselserver. One handler fronts one
// Server (and therefore one machine description and one warm engine):
//
//	POST /compile   CompileRequest -> CompileResponse
//	GET  /stats     -> StatsResponse
//	GET  /healthz   -> 200 "ok"
//
// A compile request carries either textual IR trees (the ir.ParseTrees
// syntax, e.g. "ADD(REG[1], CNST[2])") or a MinC source file; MinC units
// lower to one forest per function. Each forest becomes one server job,
// so a single request from one client is the unit-sized batch the paper's
// amortization argument is about.

// CompileRequest is the body of POST /compile.
type CompileRequest struct {
	// Client identifies the submitting client for per-client work
	// accounting; the remote address is used when empty.
	Client string `json:"client,omitempty"`
	// Trees is textual IR (one tree per line or semicolon-separated).
	Trees string `json:"trees,omitempty"`
	// MinC is a MinC source unit. Exactly one of Trees/MinC must be set.
	MinC string `json:"minc,omitempty"`
}

// CompileOutput is one compiled forest (per tree batch or per function).
type CompileOutput struct {
	Name         string `json:"name,omitempty"` // function name for MinC units
	Asm          string `json:"asm"`
	Instructions int    `json:"instructions"`
	Cost         int64  `json:"cost"`
}

// CompileResponse is the body of a successful POST /compile.
type CompileResponse struct {
	Outputs []CompileOutput `json:"outputs"`
	// States/Transitions snapshot the shared automaton after this request:
	// successive responses show the warmth curve flattening.
	States      int `json:"states"`
	Transitions int `json:"transitions"`
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	Machine     string                      `json:"machine"`
	Kind        string                      `json:"kind"`
	Workers     int                         `json:"workers"`
	QueueDepth  int                         `json:"queueDepth"`
	Jobs        int64                       `json:"jobs"`
	Nodes       int64                       `json:"nodes"`
	Queued      int                         `json:"queued"`
	States      int                         `json:"states"`
	Transitions int                         `json:"transitions"`
	MemoryBytes int                         `json:"memoryBytes"`
	Global      metrics.Counters            `json:"global"`
	Clients     map[string]metrics.Counters `json:"clients"`
}

// Handler is the HTTP front end over one Server.
type Handler struct {
	srv *Server
	m   *repro.Machine
	mux *http.ServeMux
}

// NewHandler builds the HTTP front end. m must be the machine the
// server's selector was built for (it parses request trees and lowers
// MinC against the same operator vocabulary).
func NewHandler(srv *Server, m *repro.Machine) *Handler {
	h := &Handler{srv: srv, m: m, mux: http.NewServeMux()}
	h.mux.HandleFunc("POST /compile", h.compile)
	h.mux.HandleFunc("GET /stats", h.stats)
	h.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (h *Handler) compile(w http.ResponseWriter, r *http.Request) {
	var req CompileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	client := req.Client
	if client == "" {
		// Fall back to the peer host, so unnamed clients still aggregate.
		if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
			client = host
		} else {
			client = r.RemoteAddr
		}
	}

	var names []string
	var forests []*repro.Forest
	switch {
	case req.Trees != "" && req.MinC != "":
		httpError(w, http.StatusBadRequest, "set exactly one of trees/minc, not both")
		return
	case req.Trees != "":
		f, err := h.m.ParseTree(req.Trees)
		if err != nil {
			httpError(w, http.StatusBadRequest, "parsing trees: %v", err)
			return
		}
		names = []string{""}
		forests = []*repro.Forest{f}
	case req.MinC != "":
		u, err := h.m.CompileMinC(req.MinC)
		if err != nil {
			httpError(w, http.StatusBadRequest, "compiling minc: %v", err)
			return
		}
		for _, fn := range u.Funcs {
			names = append(names, fn.Name)
			forests = append(forests, fn.Forest)
		}
	default:
		httpError(w, http.StatusBadRequest, "set one of trees/minc")
		return
	}

	futs, err := h.srv.SubmitBatch(client, forests)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	resp := CompileResponse{Outputs: make([]CompileOutput, len(futs))}
	for i, fut := range futs {
		out, err := fut.Wait()
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, "%s: %v", names[i], err)
			return
		}
		resp.Outputs[i] = CompileOutput{
			Name: names[i], Asm: out.Asm,
			Instructions: out.Instructions, Cost: int64(out.Cost),
		}
	}
	snap := h.srv.sel.Snapshot()
	resp.States, resp.Transitions = snap.States, snap.Transitions
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (h *Handler) stats(w http.ResponseWriter, r *http.Request) {
	st := h.srv.Stats()
	resp := StatsResponse{
		Machine:     h.m.Name,
		Kind:        string(h.srv.sel.Kind()),
		Workers:     st.Workers,
		QueueDepth:  st.QueueDepth,
		Jobs:        st.Jobs,
		Nodes:       st.Nodes,
		Queued:      st.Queued,
		States:      st.Warmth.States,
		Transitions: st.Warmth.Transitions,
		MemoryBytes: st.Warmth.MemoryBytes,
		Global:      st.Global,
		Clients:     map[string]metrics.Counters{},
	}
	for _, c := range h.srv.Clients() {
		resp.Clients[c] = h.srv.ClientCounters(c)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
