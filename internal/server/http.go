package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"

	"repro"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// Trace propagation headers.
const (
	// RequestIDHeader carries a request's trace identity across tiers:
	// the router stamps it on proxied requests so replica-side traces
	// (and failover retries) correlate under one id.
	RequestIDHeader = "X-Isel-Request-Id"
	// TraceHeader is the response summary of the batch's slowest job.
	TraceHeader = "X-Isel-Trace"
)

// The HTTP/JSON protocol of cmd/iselserver. One handler fronts one
// Server, which since the v2 API serves every machine of a
// repro.Registry (one warm engine each) from one process:
//
//	POST /compile?machine=x86   CompileRequest -> CompileResponse
//	POST /evict?machine=x86     drop the machine's engine (next job rebuilds)
//	POST /swap?machine=x86      hot-swap the machine's table set (zero downtime)
//	GET  /stats                 -> StatsResponse (every machine's warmth + version)
//	GET  /healthz               -> 200 "ok" (liveness)
//	GET  /readyz                -> 200 "ready" | 503 (routability)
//
// The machine query parameter selects the machine description; absent, it
// defaults to the registry's first-registered machine. A compile request
// carries either textual IR trees (the ir.ParseTrees syntax, e.g.
// "ADD(REG[1], CNST[2])") or a MinC source file; MinC units lower to one
// forest per function. Each forest becomes one server job, so a single
// request from one client is the unit-sized batch the paper's
// amortization argument is about.
//
// Requests are cancellable end to end: each job runs under the request's
// context (plus Config.RequestTimeout), so a client that disconnects — or
// times out — stops paying for queued and in-flight work. Status codes:
// 400 for malformed requests, 404 for unregistered machines, 500 for a
// registered machine whose engine failed to construct, 422 for forests
// with no derivation, 429 (+ Retry-After) when Config.ShedOnFull sheds a
// saturated queue, 503 for shutdown or an exhausted state budget
// (Options.MaxStates), 504 for jobs that exceeded the request timeout.
// POST /swap answers 409 while another swap of the same machine is
// mid-cutover (and for AddSelector machines, which have no rebuild
// recipe), 500 when the new version failed to construct — the old version
// keeps serving in every failure case.

// CompileRequest is the body of POST /compile.
type CompileRequest struct {
	// Client identifies the submitting client for per-client work
	// accounting; the remote address is used when empty.
	Client string `json:"client,omitempty"`
	// Trees is textual IR (one tree per line or semicolon-separated).
	Trees string `json:"trees,omitempty"`
	// MinC is a MinC source unit. Exactly one of Trees/MinC must be set.
	MinC string `json:"minc,omitempty"`
}

// CompileOutput is one compiled forest (per tree batch or per function).
type CompileOutput struct {
	Name         string `json:"name,omitempty"` // function name for MinC units
	Asm          string `json:"asm"`
	Instructions int    `json:"instructions"`
	Cost         int64  `json:"cost"`
	// Trace is the job's stage timeline, present only under ?trace=1.
	Trace *telemetry.Entry `json:"trace,omitempty"`
}

// CompileResponse is the body of a successful POST /compile.
type CompileResponse struct {
	// Machine echoes the machine description that served the request.
	Machine string          `json:"machine"`
	Outputs []CompileOutput `json:"outputs"`
	// States/Transitions snapshot the machine's automaton after this
	// request: successive responses show the warmth curve flattening.
	States      int `json:"states"`
	Transitions int `json:"transitions"`
	// RequestID is the request's trace identity — the X-Isel-Request-Id
	// it arrived with, or one drawn here. All jobs of the batch share
	// it, and a router's failover hops carry it across replicas.
	RequestID uint64 `json:"requestId,omitempty"`
}

// MachineStats is one registered machine's entry in GET /stats.
type MachineStats struct {
	Machine     string `json:"machine"`
	Kind        string `json:"kind"`
	Constructed bool   `json:"constructed"`
	Error       string `json:"error,omitempty"`
	States      int    `json:"states"`
	Transitions int    `json:"transitions"`
	MemoryBytes int    `json:"memoryBytes"`
	// Version is the serving table-set generation (bumped by every swap
	// and eviction); Swapping marks a cutover in progress and Draining
	// counts replaced versions still finishing their jobs.
	Version  int  `json:"version"`
	Swapping bool `json:"swapping,omitempty"`
	Draining int  `json:"draining,omitempty"`
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	Machines   []MachineStats `json:"machines"`
	Workers    int            `json:"workers"`
	QueueDepth int            `json:"queueDepth"`
	Jobs       int64          `json:"jobs"`
	Nodes      int64          `json:"nodes"`
	Cancelled  int64          `json:"cancelled"`
	Queued     int            `json:"queued"`
	// ResidentBytes totals the registry's resident table memory (serving
	// + draining versions); MaxTableBytes echoes the armed budget.
	ResidentBytes int                         `json:"residentBytes"`
	MaxTableBytes int                         `json:"maxTableBytes,omitempty"`
	Global        metrics.Counters            `json:"global"`
	Clients       map[string]metrics.Counters `json:"clients"`
	// Latency carries the raw mergeable machine × kind stage histograms
	// (the fleet-aggregation plane: a router folds replicas' series
	// together with telemetry.MergeSeries, exactly as it Adds counters);
	// LatencySummaries renders the same series as percentiles, keyed
	// "machine/kind" then stage name (plus "total").
	Latency          []telemetry.SeriesSnapshot                     `json:"latency,omitempty"`
	LatencySummaries map[string]map[string]telemetry.LatencySummary `json:"latencySummaries,omitempty"`
}

// SummarizeLatency renders a series list as the LatencySummaries map.
func SummarizeLatency(series []telemetry.SeriesSnapshot) map[string]map[string]telemetry.LatencySummary {
	if len(series) == 0 {
		return nil
	}
	out := make(map[string]map[string]telemetry.LatencySummary, len(series))
	for _, ss := range series {
		out[ss.Machine+"/"+ss.Kind] = ss.StageSummaries()
	}
	return out
}

// SwapResponse is the body of a successful POST /swap.
type SwapResponse struct {
	Machine string `json:"machine"`
	// Version is the generation now serving (the swapped-in table set).
	Version int    `json:"version"`
	Kind    string `json:"kind"`
}

// Handler is the HTTP front end over one Server.
type Handler struct {
	srv *Server
	mux *http.ServeMux
}

// NewHandler builds the HTTP front end over srv; machines resolve through
// srv's registry.
func NewHandler(srv *Server) *Handler {
	h := &Handler{srv: srv, mux: http.NewServeMux()}
	h.mux.HandleFunc("POST /compile", h.compile)
	h.mux.HandleFunc("POST /evict", h.evict)
	h.mux.HandleFunc("POST /swap", h.swap)
	h.mux.HandleFunc("GET /stats", h.stats)
	h.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	h.mux.HandleFunc("GET /readyz", h.readyz)
	h.mux.HandleFunc("GET /metrics", h.metrics)
	h.mux.HandleFunc("GET /version", h.version)
	h.mux.HandleFunc("GET /debug/slowlog", h.slowlog)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// compileErrorCode maps a failed job's error to its HTTP status.
func compileErrorCode(err error) int {
	switch {
	case errors.Is(err, repro.ErrStateBudget):
		return http.StatusServiceUnavailable // bounded tables: shed, don't grow
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

func (h *Handler) compile(w http.ResponseWriter, r *http.Request) {
	// Fault-injection seam: inert (one atomic load) in production. Arming
	// ReplicaDeath makes this replica refuse compile intake the way a
	// dying process does (503, the router's failover trigger), which is
	// how the cluster tests kill a replica mid-traffic deterministically.
	if err := faultinject.Fire(faultinject.ReplicaDeath); err != nil {
		httpError(w, http.StatusServiceUnavailable, "replica failing: %v", err)
		return
	}
	var req CompileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	client := req.Client
	if client == "" {
		// Fall back to the peer host, so unnamed clients still aggregate.
		if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
			client = host
		} else {
			client = r.RemoteAddr
		}
	}
	machine := r.URL.Query().Get("machine")
	m, sel, err := h.srv.Registry().Get(machine)
	if err != nil {
		// Unregistered names are the client's mistake (404); a registered
		// machine that failed to construct is a server fault (500).
		code := http.StatusInternalServerError
		if errors.Is(err, repro.ErrUnknownMachine) {
			code = http.StatusNotFound
		}
		httpError(w, code, "%v", err)
		return
	}

	var names []string
	var forests []*repro.Forest
	switch {
	case req.Trees != "" && req.MinC != "":
		httpError(w, http.StatusBadRequest, "set exactly one of trees/minc, not both")
		return
	case req.Trees != "":
		f, err := m.ParseTree(req.Trees)
		if err != nil {
			httpError(w, http.StatusBadRequest, "parsing trees: %v", err)
			return
		}
		names = []string{""}
		forests = []*repro.Forest{f}
	case req.MinC != "":
		u, err := m.CompileMinC(req.MinC)
		if err != nil {
			httpError(w, http.StatusBadRequest, "compiling minc: %v", err)
			return
		}
		for _, fn := range u.Funcs {
			names = append(names, fn.Name)
			forests = append(forests, fn.Forest)
		}
	default:
		httpError(w, http.StatusBadRequest, "set one of trees/minc")
		return
	}

	// Trace identity: adopt the router-propagated request id when the
	// request carries one, so replica-side traces correlate with the
	// router's hop spans; draw a fresh one otherwise. HTTP requests
	// always ask for detail — the response allocates regardless, and the
	// detail copy is what feeds the X-Isel-Trace header (?trace=1 adds
	// the full per-output timelines to the body).
	reqID, _ := strconv.ParseUint(r.Header.Get(RequestIDHeader), 10, 64)
	if reqID == 0 {
		reqID = h.srv.NextRequestID()
	}
	wantTrace := r.URL.Query().Get("trace") == "1"

	// The request context covers every job of the batch: a disconnecting
	// client cancels its queued and in-flight work (plus whatever
	// RequestTimeout the server config arms per job).
	futs, err := h.srv.SubmitBatchTraced(r.Context(), client, m.Name, forests,
		TraceOptions{RequestID: reqID, Detail: true})
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			// Shed load is retryable load: tell the client when to come back.
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	resp := CompileResponse{Machine: m.Name, Outputs: make([]CompileOutput, len(futs)), RequestID: reqID}
	var slowest *telemetry.Entry
	for i, fut := range futs {
		out, err := fut.Wait()
		if err != nil {
			httpError(w, compileErrorCode(err), "%s: %v", names[i], err)
			return
		}
		resp.Outputs[i] = CompileOutput{
			Name: names[i], Asm: out.Asm,
			Instructions: out.Instructions, Cost: int64(out.Cost),
		}
		if e := fut.TraceEntry(); e != nil {
			if wantTrace {
				resp.Outputs[i].Trace = e
			}
			if slowest == nil || e.TotalNs > slowest.TotalNs {
				slowest = e
			}
		}
	}
	snap := sel.Snapshot()
	resp.States, resp.Transitions = snap.States, snap.Transitions
	if slowest != nil {
		// The summary of the batch's slowest job: enough to spot where a
		// slow request spent its time without re-asking with ?trace=1.
		w.Header().Set(TraceHeader, slowest.Summary())
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// evict resets one machine's engine (POST /evict?machine=x): 404 for
// unregistered names, 409 for machines whose selector the registry cannot
// reconstruct (AddSelector entries).
func (h *Handler) evict(w http.ResponseWriter, r *http.Request) {
	machine := r.URL.Query().Get("machine")
	if err := h.srv.Evict(machine); err != nil {
		code := http.StatusConflict
		if errors.Is(err, repro.ErrUnknownMachine) {
			code = http.StatusNotFound
		}
		httpError(w, code, "%v", err)
		return
	}
	if machine == "" {
		machine = h.srv.Registry().DefaultName()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"machine": machine, "evicted": true})
}

// swap hot-swaps one machine's table set (POST /swap?machine=x): the new
// version is built warm beside the old and traffic cuts over atomically;
// in-flight jobs drain on the old version. 404 for unregistered names,
// 409 for a swap already in progress (or an AddSelector machine with no
// rebuild recipe), 500 when the new version failed to construct — in
// which case the old version keeps serving untouched.
func (h *Handler) swap(w http.ResponseWriter, r *http.Request) {
	machine := r.URL.Query().Get("machine")
	if err := h.srv.Swap(machine); err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, repro.ErrUnknownMachine):
			code = http.StatusNotFound
		case errors.Is(err, repro.ErrSwapInProgress), errors.Is(err, repro.ErrNotSwappable):
			code = http.StatusConflict
		}
		httpError(w, code, "%v", err)
		return
	}
	if machine == "" {
		machine = h.srv.Registry().DefaultName()
	}
	resp := SwapResponse{Machine: machine}
	for _, st := range h.srv.Registry().Status() {
		if st.Machine == machine {
			resp.Version, resp.Kind = st.Version, string(st.Kind)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// readyz is the routability probe: 200 only when the server is accepting
// jobs, no machine is mid-swap, and every ExpectWarm machine serves warm.
// Liveness stays on /healthz — an alive replica mid-cutover answers 503
// here so load balancers route around the transient.
func (h *Handler) readyz(w http.ResponseWriter, r *http.Request) {
	if err := h.srv.Ready(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	fmt.Fprintln(w, "ready")
}

func (h *Handler) stats(w http.ResponseWriter, r *http.Request) {
	st := h.srv.Stats()
	resp := StatsResponse{
		Workers:          st.Workers,
		QueueDepth:       st.QueueDepth,
		Jobs:             st.Jobs,
		Nodes:            st.Nodes,
		Cancelled:        st.Cancelled,
		Queued:           st.Queued,
		ResidentBytes:    st.ResidentBytes,
		MaxTableBytes:    st.MaxTableBytes,
		Global:           st.Global,
		Clients:          map[string]metrics.Counters{},
		Latency:          st.Latency,
		LatencySummaries: SummarizeLatency(st.Latency),
	}
	for _, ms := range st.Machines {
		resp.Machines = append(resp.Machines, MachineStats{
			Machine:     ms.Machine,
			Kind:        string(ms.Kind),
			Constructed: ms.Constructed,
			Error:       ms.Err,
			States:      ms.Warmth.States,
			Transitions: ms.Warmth.Transitions,
			MemoryBytes: ms.Warmth.MemoryBytes,
			Version:     ms.Version,
			Swapping:    ms.Swapping,
			Draining:    ms.Draining,
		})
	}
	for _, c := range h.srv.Clients() {
		resp.Clients[c] = h.srv.ClientCounters(c)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
