package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// The observability surface of the HTTP front end:
//
//	GET /metrics        Prometheus text exposition (version 0.0.4)
//	GET /version        build identity + uptime + per-machine fingerprints
//	GET /debug/slowlog  the N slowest requests, slowest first
//
// /metrics renders the same numbers /stats carries — counters, gauges
// and the machine × kind × stage latency histograms — in the scrape
// format a fleet dashboard wants. The router exposes the same metric
// names over its merged fleet view, so one scrape config covers both
// tiers.

// VersionResponse is the body of GET /version.
type VersionResponse struct {
	Build         telemetry.BuildInfo `json:"build"`
	Started       time.Time           `json:"started"`
	UptimeSeconds float64             `json:"uptimeSeconds"`
	Machines      []MachineVersion    `json:"machines"`
}

// MachineVersion is one machine's identity block in GET /version.
type MachineVersion struct {
	Machine     string `json:"machine"`
	Kind        string `json:"kind"`
	Constructed bool   `json:"constructed"`
	// Version is the serving table-set generation (bumped by swaps and
	// evictions); Fingerprint is the grammar's content hash in hex —
	// the same identity that names .isel blobs — empty while the
	// machine is cold (hashing is done at construction, not per scrape).
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint,omitempty"`
}

// SlowlogResponse is the body of GET /debug/slowlog.
type SlowlogResponse struct {
	Entries []telemetry.Entry `json:"entries"`
}

func (h *Handler) version(w http.ResponseWriter, r *http.Request) {
	resp := VersionResponse{
		Build:         telemetry.Build(),
		Started:       h.srv.Started(),
		UptimeSeconds: time.Since(h.srv.Started()).Seconds(),
	}
	for _, ms := range h.srv.Registry().Status() {
		mv := MachineVersion{
			Machine:     ms.Machine,
			Kind:        string(ms.Kind),
			Constructed: ms.Constructed,
			Version:     ms.Version,
		}
		if ms.Fingerprint != 0 {
			mv.Fingerprint = fmt.Sprintf("%016x", ms.Fingerprint)
		}
		resp.Machines = append(resp.Machines, mv)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (h *Handler) slowlog(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(SlowlogResponse{Entries: h.srv.SlowlogEntries()})
}

// PromContentType is the Content-Type of a /metrics response.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", PromContentType)
	p := telemetry.NewPromWriter(w)
	WritePromStats(p, h.srv.Stats())
	p.Flush()
}

// WritePromStats renders a Stats snapshot as Prometheus metrics — the
// body of GET /metrics on a standalone server or a replica. The router
// reuses WritePromLatency and WritePromCounters over its merged fleet
// snapshot, so both tiers expose the same metric names.
func WritePromStats(p *telemetry.PromWriter, st Stats) {
	p.Counter("isel_jobs_total", "Jobs a worker ran to completion.", nil, float64(st.Jobs))
	p.Counter("isel_nodes_total", "IR nodes compiled.", nil, float64(st.Nodes))
	p.Counter("isel_jobs_cancelled_total", "Jobs cancelled before or during compilation.", nil, float64(st.Cancelled))
	p.Gauge("isel_workers", "Worker-pool size.", nil, float64(st.Workers))
	p.Gauge("isel_queue_depth", "Current work-queue occupancy.", nil, float64(st.Queued))
	p.Gauge("isel_queue_capacity", "Work-queue bound.", nil, float64(st.QueueDepth))
	p.Gauge("isel_resident_table_bytes", "Table memory resident across all machines and draining versions.", nil, float64(st.ResidentBytes))
	p.Gauge("isel_max_table_bytes", "Armed table-memory budget (0 = unlimited).", nil, float64(st.MaxTableBytes))
	for _, ms := range st.Machines {
		lab := []telemetry.Label{{Name: "machine", Value: ms.Machine}, {Name: "kind", Value: string(ms.Kind)}}
		var constructed float64
		if ms.Constructed {
			constructed = 1
		}
		p.Gauge("isel_machine_constructed", "1 once the machine's engine is built.", lab, constructed)
		p.Gauge("isel_machine_states", "Automaton states constructed (warmth).", lab, float64(ms.Warmth.States))
		p.Gauge("isel_machine_transitions", "Automaton transitions constructed (warmth).", lab, float64(ms.Warmth.Transitions))
		p.Gauge("isel_machine_table_bytes", "Machine table memory.", lab, float64(ms.Warmth.MemoryBytes))
		p.Gauge("isel_machine_version", "Serving table-set generation.", lab, float64(ms.Version))
	}
	WritePromCounters(p, st.Global)
	WritePromLatency(p, st.Latency)
}

// WritePromCounters renders engine work counters as one labeled counter
// family.
func WritePromCounters(p *telemetry.PromWriter, c metrics.Counters) {
	events := []struct {
		name string
		v    int64
	}{
		{"nodes_labeled", c.NodesLabeled},
		{"rules_examined", c.RulesExamined},
		{"chain_relaxations", c.ChainRelaxations},
		{"dyn_evals", c.DynEvals},
		{"table_probes", c.TableProbes},
		{"table_misses", c.TableMisses},
		{"states_built", c.StatesBuilt},
		{"transitions_added", c.TransitionsAdded},
		{"nodes_reduced", c.NodesReduced},
	}
	for _, ev := range events {
		p.Counter("isel_engine_events_total", "Engine work events by type (see internal/metrics).",
			[]telemetry.Label{{Name: "event", Value: ev.name}}, float64(ev.v))
	}
}

// WritePromLatency renders latency series as per-stage and end-to-end
// histogram families.
func WritePromLatency(p *telemetry.PromWriter, series []telemetry.SeriesSnapshot) {
	for _, ss := range series {
		for _, stg := range telemetry.Stages() {
			lab := []telemetry.Label{
				{Name: "machine", Value: ss.Machine},
				{Name: "kind", Value: ss.Kind},
				{Name: "stage", Value: stg.String()},
			}
			p.Histogram("isel_stage_duration_seconds", "Request time in one pipeline stage.", lab, ss.Stages[stg])
		}
		lab := []telemetry.Label{{Name: "machine", Value: ss.Machine}, {Name: "kind", Value: ss.Kind}}
		p.Histogram("isel_request_duration_seconds", "End-to-end request latency.", lab, ss.Total)
	}
}
