package server_test

import (
	"bytes"

	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
	"repro/internal/server"
)

// gateMachine builds a machine whose dynamic cost function blocks on the
// returned release channel (signalling entered, non-blockingly, each time
// a worker reaches it) — the lever for holding a job mid-compile.
func gateMachine(t *testing.T) (m *repro.Machine, entered chan struct{}, release chan struct{}) {
	t.Helper()
	entered = make(chan struct{}, 64)
	release = make(chan struct{})
	env := repro.DynEnv{"gate": func(n repro.DynNode) repro.Cost {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		return 1
	}}
	m, err := repro.NewMachine("gate", `%name gate
%start stmt
%term Asgn(2) Reg(0) Cnst(0)
reg: Reg (0)
reg: Cnst (dyn gate)
stmt: Asgn(reg, reg) (1) "mov %1, (%0)"
`, env)
	if err != nil {
		t.Fatal(err)
	}
	return m, entered, release
}

// TestShedOnFull: with Config.ShedOnFull, a job that would block on a
// saturated queue is refused with ErrQueueFull — surfaced over HTTP as
// 429 with Retry-After — while every job already accepted (in flight and
// queued) still completes.
func TestShedOnFull(t *testing.T) {
	m, entered, release := gateMachine(t)
	reg := repro.NewRegistry()
	if err := reg.AddMachine(m, repro.KindOnDemand, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg, server.Config{Workers: 1, QueueDepth: 1, ShedOnFull: true})
	defer srv.Shutdown()
	ts := httptest.NewServer(server.NewHandler(srv))
	defer ts.Close()

	f, err := m.ParseTree("Asgn(Reg[1], Cnst[7])")
	if err != nil {
		t.Fatal(err)
	}
	// Fill the server: one job held mid-compile in the single worker, one
	// job filling the depth-1 queue.
	held, err := srv.Submit(bg, "c", "gate", f)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never reached the gated cost fn")
	}
	queued, err := srv.Submit(bg, "c", "gate", f)
	if err != nil {
		t.Fatal(err)
	}

	// Saturated: direct submits shed with the typed error, HTTP submits
	// answer 429 with a Retry-After hint.
	if _, err := srv.Submit(bg, "c", "gate", f); !errors.Is(err, server.ErrQueueFull) {
		t.Fatalf("submit on full queue = %v, want ErrQueueFull", err)
	}
	b, _ := json.Marshal(server.CompileRequest{Client: "c", Trees: "Asgn(Reg[1], Cnst[9])"})
	resp, err := http.Post(ts.URL+"/compile?machine=gate", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("compile on full queue: %d %s, want 429", resp.StatusCode, buf.Bytes())
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Fatal("429 must carry a Retry-After header")
	}
	if !bytes.Contains(buf.Bytes(), []byte("queue")) {
		t.Fatalf("429 body does not name the queue: %s", buf.Bytes())
	}

	// Accepted work is a promise shedding must not break: both the held
	// and the queued job complete once the gate opens.
	close(release)
	if out, err := held.Wait(); err != nil || out.Asm == "" {
		t.Fatalf("held job: out=%v err=%v", out, err)
	}
	if out, err := queued.Wait(); err != nil || out.Asm == "" {
		t.Fatalf("queued job: out=%v err=%v", out, err)
	}
	if st := srv.Stats(); st.Jobs != 2 {
		t.Fatalf("stats jobs = %d, want 2 (shed submissions never became jobs)", st.Jobs)
	}
}

// TestReadyzHTTP: /readyz is the scheduling gate, distinct from /healthz
// (process liveness): 503 until every boot-warmed machine is constructed,
// 200 while serving, 503 again once shutdown begins.
func TestReadyzHTTP(t *testing.T) {
	reg := repro.NewRegistry()
	if err := reg.Add("x86", repro.KindOnDemand, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.ExpectWarm("x86"); err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg, server.Config{Workers: 1})
	defer srv.Shutdown()
	ts := httptest.NewServer(server.NewHandler(srv))
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	if code, body := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before warm: %d %s, want 503", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz must be live while unready: %d", code)
	}
	if err := reg.Warm("x86"); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after warm: %d %s, want 200", code, body)
	}
	srv.Shutdown()
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after shutdown: %d, want 503", code)
	}
}

// TestShutdownDuringSwap: Shutdown while the previous table-set version
// is still draining a held job. The shutdown must drain both versions —
// the held job completes on the old tables — and the registry ends with
// nothing left draining.
func TestShutdownDuringSwap(t *testing.T) {
	m, entered, release := gateMachine(t)
	reg := repro.NewRegistry()
	reg.SetLogger(func(string, ...any) {})
	if err := reg.AddMachine(m, repro.KindOnDemand, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg, server.Config{Workers: 1})

	f, err := m.ParseTree("Asgn(Reg[1], Cnst[7])")
	if err != nil {
		t.Fatal(err)
	}
	held, err := srv.Submit(bg, "c", "gate", f)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never reached the gated cost fn")
	}

	// Cut over while the held job is mid-compile on v1: v2 serves, v1
	// drains with the held job's lease pinned.
	if err := srv.Swap("gate"); err != nil {
		t.Fatal(err)
	}
	var st repro.MachineStatus
	for _, s := range reg.Status() {
		if s.Machine == "gate" {
			st = s
		}
	}
	if st.Version != 2 || st.Draining != 1 {
		t.Fatalf("mid-drain status = v%d draining=%d, want v2 draining=1", st.Version, st.Draining)
	}
	if err := srv.Ready(); err != nil {
		t.Fatalf("Ready mid-drain = %v (a completed cutover must not block readiness)", err)
	}

	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		srv.Shutdown()
	}()
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned with a job still held mid-compile")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	select {
	case <-shutdownDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not finish after the held job released")
	}
	if out, err := held.Wait(); err != nil || out.Asm == "" {
		t.Fatalf("held job across shutdown: out=%v err=%v", out, err)
	}
	for _, s := range reg.Status() {
		if s.Machine == "gate" && s.Draining != 0 {
			t.Fatalf("draining = %d after shutdown drained every job, want 0", s.Draining)
		}
	}
	if _, err := srv.Submit(bg, "c", "gate", f); !errors.Is(err, server.ErrShutdown) {
		t.Fatalf("submit after shutdown = %v, want ErrShutdown", err)
	}
	if err := srv.Ready(); !errors.Is(err, server.ErrShutdown) {
		t.Fatalf("Ready after shutdown = %v, want ErrShutdown", err)
	}
}
