// Package server implements the compilation server the paper's on-demand
// automata are built for: long-lived warm engines multiplexed across many
// concurrent clients.
//
// The economics of on-demand tree-parsing automata (Ertl, Casey, Gregg;
// PLDI 2006) are amortization: every state and transition constructed
// while labeling one compilation unit makes every later unit cheaper, so
// the engine pays off most when many units flow through a single
// long-lived instance. Server is that instance's front end — since the v2
// API, for several instances at once: jobs are dispatched against a
// repro.Registry of named, lazily-constructed, individually-warmed
// selectors, so one process serves several machine descriptions and each
// machine's automaton warms over exactly its own traffic. Clients submit
// forests (or whole lowered units) for a machine and get futures back; a
// bounded work queue feeds one worker pool shared by every machine.
//
// The contract is context-first: Submit takes a context.Context that
// covers the job's whole lifetime. Cancelling it while the job is queued
// resolves the future with ctx.Err() (a context.AfterFunc hook races the
// worker; futures resolve exactly once, first writer wins). Cancelling it
// mid-compile stops the compile at the reducer's cooperative checkpoints
// within a bounded number of nodes. Config.RequestTimeout arms a
// per-request deadline on top of whatever deadline the caller brought.
//
// Work accounting is per client: each job's labeling and reduction events
// are counted into a per-job metrics.Counters via
// Selector.Compile(ctx, f, WithCounters(jm)), then merged into the
// submitting client's counters and the server-global counters with
// Counters.Add. The per-client totals therefore sum exactly to the global
// totals, which the race tests assert. Jobs cancelled before any work are
// counted separately (Stats.Cancelled) and contribute nothing.
//
// Per-job state is recycled throughout: each worker reuses one counter
// sink, and the selector pools labelings, reducer scratch and emitters
// internally (see reduce.LabelingRecycler), so a warm job's only
// allocations are its output — steady-state traffic puts no per-node
// pressure on the GC.
//
// Shutdown is graceful: new submissions are refused, queued and in-flight
// jobs drain, and every future still resolves.
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// ErrShutdown is returned by Submit variants after Shutdown has begun.
var ErrShutdown = errors.New("server: shut down")

// ErrQueueFull is returned by Submit variants when Config.ShedOnFull is
// set and the work queue is saturated: the job was shed, not queued. The
// HTTP front end maps it to 429 with a Retry-After hint. Match with
// errors.Is.
var ErrQueueFull = errors.New("server: work queue full")

// Config tunes a Server.
type Config struct {
	// Workers is the worker-pool size (GOMAXPROCS if <= 0). Each worker
	// pulls jobs off the shared queue and compiles on the job's machine's
	// shared selector.
	Workers int
	// QueueDepth bounds the work queue (4*Workers if <= 0). Submit blocks
	// while the queue is full — backpressure, not unbounded buffering —
	// but respects its context: a cancelled submitter stops waiting.
	QueueDepth int
	// RequestTimeout, when > 0, bounds each job's total lifetime (queue
	// wait + compile): Submit derives a per-request deadline from it, and
	// a job that exceeds it resolves its future with
	// context.DeadlineExceeded.
	RequestTimeout time.Duration
	// ShedOnFull turns a saturated queue from backpressure into load
	// shedding: Submit fails fast with ErrQueueFull instead of blocking
	// until a slot frees. The right setting for front ends whose clients
	// can retry (HTTP answers 429 + Retry-After); leave it off for
	// harnesses that want every submission to land eventually.
	ShedOnFull bool
	// SlowlogSize bounds the ring buffer of slowest requests served by
	// GET /debug/slowlog (32 if <= 0).
	SlowlogSize int
}

// Future is the pending result of one submitted forest. It resolves
// exactly once — by the worker that compiles it, or by the job's context
// being cancelled or timing out first, whichever happens first.
type Future struct {
	out      *repro.Output
	err      error
	resolved atomic.Bool
	done     chan struct{}
	// traceEntry is a copy of the job's finished trace, attached before
	// resolve when the submission asked for detail (TraceOptions.Detail:
	// the HTTP ?trace=1 path). The pooled trace itself is recycled.
	traceEntry *telemetry.Entry
}

// Wait blocks until the job completes (or is cancelled) and returns its
// output. For a job whose context was cancelled while queued, err is that
// context's ctx.Err().
func (f *Future) Wait() (*repro.Output, error) {
	<-f.done
	return f.out, f.err
}

// Done returns a channel closed when the future resolves, for select
// loops.
func (f *Future) Done() <-chan struct{} { return f.done }

// TraceEntry returns the job's stage timeline, valid after Wait and
// only for submissions that asked for detail (TraceOptions.Detail);
// nil otherwise. Cancelled-while-queued jobs may resolve before a
// worker sees them, in which case the entry is nil too.
func (f *Future) TraceEntry() *telemetry.Entry {
	<-f.done
	return f.traceEntry
}

// resolve publishes the result exactly once and reports whether this call
// won. The worker and the cancellation watcher race here by design; the
// loser's result is dropped.
func (f *Future) resolve(out *repro.Output, err error) bool {
	if !f.resolved.CompareAndSwap(false, true) {
		return false
	}
	f.out, f.err = out, err
	close(f.done)
	return true
}

// isResolved reports whether the future has already resolved (cheap
// check workers use to skip compiling cancelled queued jobs).
func (f *Future) isResolved() bool { return f.resolved.Load() }

type job struct {
	ctx    context.Context
	client string
	sel    *repro.Selector
	forest *repro.Forest
	fut    *Future
	// lease pins the table-set version the job resolved at submission:
	// released after the future settles, which is what lets Registry.Swap
	// retire an old version exactly when its last queued or in-flight job
	// finishes. Jobs queued before a cutover compile on the version they
	// resolved; jobs submitted after it ride the new one.
	lease *repro.Lease
	// cleanup detaches the cancellation hook and releases the
	// request-timeout timer; the worker runs it after the future settles
	// (nil for plain Background submissions).
	cleanup func()
	// trace is the job's pooled stage timeline: lease stamped at submit,
	// queue at worker pickup, label/reduce/emit inside CompileObserved.
	// Recorded into the latency collector and slowlog, then recycled.
	trace *telemetry.Trace
	// detail asks the worker to copy the finished trace onto the future.
	detail bool
}

// Server multiplexes compilation jobs from many concurrent clients onto
// the shared warm engines of a repro.Registry. All methods are safe for
// concurrent use.
type Server struct {
	reg *repro.Registry
	cfg Config

	jobs chan job
	wg   sync.WaitGroup

	// mu guards the closed flag against racing submits; submitters hold
	// the read side so they can block on a full queue concurrently.
	mu     sync.RWMutex
	closed bool

	// cmu guards the per-client counter map (a separate lock from mu so
	// workers recording results never contend with a pending Shutdown).
	cmu     sync.Mutex
	clients map[string]*metrics.Counters

	global        metrics.Counters
	jobsDone      atomic.Int64
	jobsCancelled atomic.Int64
	nodesDone     atomic.Int64

	// The telemetry plane: pooled traces, machine × kind × stage latency
	// histograms, and the slowest-requests ring. Always on — its warm
	// cost is a handful of monotonic stamps and atomic adds per job,
	// which the PF trajectory's telemetry column gates.
	traces  telemetry.TracePool
	lat     *telemetry.Collector
	slow    *telemetry.Slowlog
	started time.Time
}

// New starts a server over reg. Every registered machine is servable;
// selectors are constructed lazily by the registry on a machine's first
// job (or eagerly by a caller that warms the registry first). The caller
// keeps ownership of reg and may inspect warmth (Status) at any time, but
// must not call LoadAutomaton on a served selector while the server runs.
func New(reg *repro.Registry, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	s := &Server{
		reg:     reg,
		cfg:     cfg,
		jobs:    make(chan job, cfg.QueueDepth),
		clients: map[string]*metrics.Counters{},
		lat:     telemetry.NewCollector(),
		slow:    telemetry.NewSlowlog(cfg.SlowlogSize),
		started: time.Now(),
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// NewSingle starts a server over one prebuilt selector — the
// single-machine shape of PR 2, kept for harnesses that construct their
// selector by hand. The selector is registered under its machine's name
// and also serves requests that name no machine.
func NewSingle(sel *repro.Selector, cfg Config) *Server {
	reg := repro.NewRegistry()
	if err := reg.AddSelector(sel); err != nil {
		panic(err) // fresh registry, one entry: cannot collide
	}
	return New(reg, cfg)
}

// Registry returns the served registry (for warmth inspection).
func (s *Server) Registry() *repro.Registry { return s.reg }

// Evict drops machine's constructed engine from the served registry (the
// registry default when empty): its next job reconstructs a fresh one.
// The operational reset for a MaxStates-capped automaton, exposed over
// HTTP as POST /evict. Jobs already holding the old selector finish on it
// unharmed.
func (s *Server) Evict(machine string) error { return s.reg.Evict(machine) }

// Swap rebuilds machine's table set (the registry default when empty) and
// cuts traffic over with zero downtime — see Registry.Swap. Jobs queued
// or in flight when the cutover lands finish on the version they
// resolved; the old version retires when the last of them does. Exposed
// over HTTP as POST /swap.
func (s *Server) Swap(machine string) error { return s.reg.Swap(machine) }

// Ready reports whether this server should receive routed traffic: it is
// not shut down, no machine is mid-swap, and every machine the deployment
// marked ExpectWarm is serving warm — the body of GET /readyz. Distinct
// from liveness (/healthz): a re-colding or mid-cutover replica is alive
// but not ready.
func (s *Server) Ready() error {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return ErrShutdown
	}
	return s.reg.Ready()
}

// Workers returns the worker-pool size.
func (s *Server) Workers() int { return s.cfg.Workers }

func (s *Server) worker() {
	defer s.wg.Done()
	var jm metrics.Counters // reused per job; deltas merge after each
	for j := range s.jobs {
		jm.Reset()
		s.runJob(j, &jm)
	}
}

// runJob compiles one job and resolves its future, containing panics:
// dynamic-cost functions are arbitrary grammar-supplied Go code, and one
// poisoned tree must fail its own future with an error rather than kill
// the worker, strand later futures and wedge Shutdown.
func (s *Server) runJob(j job, jm *metrics.Counters) {
	if j.cleanup != nil {
		// Deferred first so it runs last, after the future has resolved on
		// every path below.
		defer j.cleanup()
	}
	// The version lease is held until the future settles: a swapped-out
	// table set drains on exactly its own jobs. Release is nil-safe.
	defer j.lease.Release()
	// The queue span ends the moment a worker picks the job up.
	j.trace.Mark(telemetry.StageQueue)
	// A queued job whose context already ended resolves (or has resolved,
	// via its cancellation hook) with ctx.Err() and is never compiled.
	if j.fut.isResolved() {
		s.jobsCancelled.Add(1)
		s.finishTrace(&j, nil, context.Cause(j.ctx))
		return
	}
	if err := j.ctx.Err(); err != nil {
		j.fut.resolve(nil, err)
		s.jobsCancelled.Add(1)
		s.finishTrace(&j, nil, err)
		return
	}
	var out *repro.Output
	var err error
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("server: compile panicked: %v", r)
		}
		s.clientCounters(j.client).Add(jm)
		s.global.Add(jm)
		s.finishTrace(&j, j.fut, err)
		won := j.fut.resolve(out, err)
		switch {
		case !won:
			// The cancellation hook resolved first: the context ended while
			// the compile ran (no checkpoint fired, e.g. a stalled
			// dynamic-cost function) and the client already has ctx.Err().
			// The computed result is dropped; the job counts as cancelled,
			// though its work is merged above where it actually happened.
			s.jobsCancelled.Add(1)
		case err != nil && j.ctx.Err() != nil && errors.Is(err, j.ctx.Err()):
			// Cancelled mid-compile at a reducer checkpoint.
			s.jobsCancelled.Add(1)
		default:
			s.jobsDone.Add(1)
			s.nodesDone.Add(int64(j.forest.NumNodes()))
		}
	}()
	out, err = j.sel.CompileObserved(j.ctx, j.forest, jm, j.trace)
}

// finishTrace closes a job's trace and feeds the telemetry plane:
// the series histograms (a handful of atomic adds), the slowlog (an
// atomic floor test for fast requests), and — on the detail path only —
// a heap copy onto the future. The pooled trace is recycled here; fut
// must still be unresolved when non-nil so the entry is published
// before resolve's CAS.
func (s *Server) finishTrace(j *job, fut *Future, err error) {
	tr := j.trace
	if tr == nil {
		return
	}
	if err != nil {
		tr.Err = err.Error()
	}
	tr.Finish()
	s.lat.Set(tr.Machine, tr.Kind).RecordTrace(tr)
	s.slow.Record(telemetry.EntryOf(tr))
	if j.detail && fut != nil {
		e := telemetry.EntryOf(tr)
		fut.traceEntry = &e
	}
	s.traces.Put(tr)
}

// Submit enqueues one forest for client against machine (the registry's
// default when empty) and returns its future. It blocks while the queue
// is full (backpressure) unless ctx ends first, and fails with
// ErrShutdown once Shutdown has begun.
//
// ctx covers the job's whole lifetime: cancelling it while the job is
// queued resolves the future with ctx.Err(); cancelling it mid-compile
// stops the compile at a cooperative checkpoint. Config.RequestTimeout,
// when set, arms an additional per-request deadline starting now.
func (s *Server) Submit(ctx context.Context, client, machine string, f *repro.Forest) (*Future, error) {
	return s.SubmitTraced(ctx, client, machine, f, TraceOptions{})
}

// TraceOptions controls the telemetry attached to a submission. The zero
// value is the hot path: the job is still traced into the histograms and
// slowlog (pooled, no allocation), but no per-request copy is retained.
type TraceOptions struct {
	// RequestID, when nonzero, names the request in traces and the
	// slowlog instead of a freshly drawn ID — how a router's ID follows
	// a request across a failover hop (X-Isel-Request-Id). A batch
	// shares one ID across its jobs: one wire request, one identity.
	RequestID uint64
	// Detail asks for a heap copy of the finished stage timeline on the
	// future (Future.TraceEntry) — the ?trace=1 path. Costs one Entry
	// allocation per job; leave it off on the steady-state path.
	Detail bool
}

// SubmitTraced is Submit with explicit trace options. The trace begins
// before the version lease is acquired, so StageLease covers exactly the
// acquire (including a cold machine's lazy construction).
func (s *Server) SubmitTraced(ctx context.Context, client, machine string, f *repro.Forest, topt TraceOptions) (*Future, error) {
	id := topt.RequestID
	if id == 0 {
		id = s.traces.NextID()
	}
	tr := s.traces.GetWithID(id, machine, "", client)
	lease, err := s.reg.Acquire(machine)
	tr.Mark(telemetry.StageLease)
	if err != nil {
		s.traces.Put(tr)
		return nil, err
	}
	// Backfill the resolved identity: an empty machine name resolves to
	// the registry default, and the engine kind is only known post-lease.
	tr.Machine = lease.Selector.Machine().Name
	tr.Kind = string(lease.Selector.Kind())
	return s.submit(ctx, client, lease, f, tr, topt.Detail)
}

// submit enqueues one job against an acquired version lease. On every
// refusal path the lease is released and the trace recycled here; once
// the job is enqueued the worker owns both.
func (s *Server) submit(ctx context.Context, client string, lease *repro.Lease, f *repro.Forest, tr *telemetry.Trace, detail bool) (*Future, error) {
	if f == nil {
		lease.Release()
		s.traces.Put(tr)
		return nil, fmt.Errorf("server: nil forest")
	}
	if err := ctx.Err(); err != nil {
		lease.Release()
		s.traces.Put(tr)
		return nil, err
	}
	ctx, cancel := s.jobContext(ctx)
	fut := &Future{done: make(chan struct{})}
	j := job{ctx: ctx, client: client, sel: lease.Selector, forest: f, fut: fut, lease: lease,
		trace: tr, detail: detail}
	if ctx.Done() != nil {
		// Cancellable jobs arm a context hook that resolves the future
		// with ctx.Err() the moment the context ends — no parked watcher
		// goroutine per queued job. Background submissions — the
		// steady-state hot path — arm nothing.
		stop := context.AfterFunc(ctx, func() { fut.resolve(nil, ctx.Err()) })
		j.cleanup = func() {
			stop()
			if cancel != nil {
				cancel()
			}
		}
	}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		if j.cleanup != nil {
			j.cleanup()
		}
		lease.Release()
		s.traces.Put(tr)
		return nil, ErrShutdown
	}
	if s.cfg.ShedOnFull {
		// Shedding: take a free slot or refuse now — never park the
		// submitter behind a saturated queue.
		select {
		case s.jobs <- j:
			s.mu.RUnlock()
			return fut, nil
		default:
			s.mu.RUnlock()
			if j.cleanup != nil {
				j.cleanup()
			}
			lease.Release()
			s.traces.Put(tr)
			return nil, ErrQueueFull
		}
	}
	select {
	case s.jobs <- j:
		s.mu.RUnlock()
		return fut, nil
	case <-ctx.Done():
		s.mu.RUnlock()
		err := ctx.Err()
		if j.cleanup != nil {
			j.cleanup()
		}
		lease.Release()
		s.traces.Put(tr)
		return nil, err
	}
}

// jobContext arms the per-request deadline of Config.RequestTimeout, when
// configured. The returned cancel (nil without a timeout) is released by
// the future's watcher once the job settles.
func (s *Server) jobContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(ctx, s.cfg.RequestTimeout)
	}
	return ctx, nil
}

// SubmitBatch enqueues several forests for client, returning one future
// per forest (in order). A batch is not atomic: if the server shuts down
// (or ctx ends) mid-batch, the futures enqueued so far remain valid and
// the error reports how many were accepted.
func (s *Server) SubmitBatch(ctx context.Context, client, machine string, fs []*repro.Forest) ([]*Future, error) {
	return s.SubmitBatchTraced(ctx, client, machine, fs, TraceOptions{})
}

// SubmitBatchTraced is SubmitBatch with explicit trace options. All jobs
// of the batch share one request ID (topt.RequestID, or one drawn now):
// one wire request, one identity in traces and the slowlog.
func (s *Server) SubmitBatchTraced(ctx context.Context, client, machine string, fs []*repro.Forest, topt TraceOptions) ([]*Future, error) {
	if topt.RequestID == 0 {
		topt.RequestID = s.traces.NextID()
	}
	futs := make([]*Future, 0, len(fs))
	for _, f := range fs {
		// One lease per job, acquired at enqueue time (inside
		// SubmitTraced): a batch straddling a hot swap routes its
		// remaining forests to the new version the instant it is
		// published, like any other new submission.
		fut, err := s.SubmitTraced(ctx, client, machine, f, topt)
		if err != nil {
			if len(futs) == 0 {
				return nil, err
			}
			return futs, fmt.Errorf("server: batch accepted %d of %d: %w", len(futs), len(fs), err)
		}
		futs = append(futs, fut)
	}
	return futs, nil
}

// SubmitUnit enqueues every function of a lowered unit, one future per
// function in unit order — the server-side mirror of
// Selector.CompileUnit.
func (s *Server) SubmitUnit(ctx context.Context, client, machine string, u *repro.Unit) ([]*Future, error) {
	fs := make([]*repro.Forest, len(u.Funcs))
	for i, fn := range u.Funcs {
		fs[i] = fn.Forest
	}
	return s.SubmitBatch(ctx, client, machine, fs)
}

// CompileUnit submits a unit and waits for all of it: the synchronous
// client call. Outputs are indexed by function; the first error (by
// function order) is returned after all futures resolve.
func (s *Server) CompileUnit(ctx context.Context, client, machine string, u *repro.Unit) ([]*repro.Output, error) {
	futs, err := s.SubmitUnit(ctx, client, machine, u)
	if err != nil {
		return nil, err
	}
	outs := make([]*repro.Output, len(futs))
	var firstErr error
	for i, fut := range futs {
		out, err := fut.Wait()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", u.Funcs[i].Name, err)
		}
		outs[i] = out
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return outs, nil
}

// Shutdown refuses new submissions, drains every queued and in-flight
// job (all futures resolve), and stops the workers. It is idempotent and
// safe to call concurrently.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.jobs)
	s.mu.Unlock()
	s.wg.Wait()
}

// clientCounters returns the counter sink for client, creating it on
// first use.
func (s *Server) clientCounters(client string) *metrics.Counters {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	c, ok := s.clients[client]
	if !ok {
		c = &metrics.Counters{}
		s.clients[client] = c
	}
	return c
}

// Clients lists the clients that have completed at least one job, sorted.
func (s *Server) Clients() []string {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	names := make([]string, 0, len(s.clients))
	for n := range s.clients {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ClientCounters returns a snapshot of one client's merged work counters
// (zero counters for unknown clients).
func (s *Server) ClientCounters(client string) metrics.Counters {
	s.cmu.Lock()
	c := s.clients[client]
	s.cmu.Unlock()
	return c.Clone() // Clone is nil-safe
}

// GlobalCounters returns a snapshot of the server-wide work counters: the
// merge of every completed job's delta, and therefore exactly the sum of
// the per-client counters.
func (s *Server) GlobalCounters() metrics.Counters { return s.global.Clone() }

// Stats is a point-in-time view of the server and its engines' warmth.
type Stats struct {
	// Workers and QueueDepth echo the configuration.
	Workers    int
	QueueDepth int
	// Jobs and Nodes count jobs a worker ran to completion and their IR
	// nodes — including jobs that failed with a compile error (a panicked
	// dynamic cost, an exhausted state budget): they were served, their
	// failure is the answer. Cancelled counts jobs whose context ended
	// before or during compilation; their dropped work appears nowhere
	// else.
	Jobs      int64
	Nodes     int64
	Cancelled int64
	// Queued is the current queue occupancy (instantaneous).
	Queued int
	// Clients is the number of distinct clients served.
	Clients int
	// Machines is every registered machine's serving state and automaton
	// warmth — the amortization story per machine description: each curve
	// climbs while its traffic is cold and flattens as the mix is covered.
	Machines []repro.MachineStatus
	// ResidentBytes is the total table memory resident in the registry —
	// every constructed machine plus every swapped-out version still
	// draining; MaxTableBytes is the armed budget (0 = unlimited).
	ResidentBytes int
	MaxTableBytes int
	// Global is a snapshot of the server-wide work counters.
	Global metrics.Counters
	// Latency is the per-series (machine × engine kind) stage latency
	// histograms, mergeable across servers with telemetry.MergeSeries —
	// how a router aggregates a fleet's p99s, exactly as counters merge
	// with Counters.Add.
	Latency []telemetry.SeriesSnapshot
}

// Stats samples the server. Safe to call concurrently with compilation.
func (s *Server) Stats() Stats {
	s.cmu.Lock()
	nClients := len(s.clients)
	s.cmu.Unlock()
	return Stats{
		Workers:       s.cfg.Workers,
		QueueDepth:    s.cfg.QueueDepth,
		Jobs:          s.jobsDone.Load(),
		Nodes:         s.nodesDone.Load(),
		Cancelled:     s.jobsCancelled.Load(),
		Queued:        len(s.jobs),
		Clients:       nClients,
		Machines:      s.reg.Status(),
		ResidentBytes: s.reg.ResidentBytes(),
		MaxTableBytes: s.reg.MaxTableBytes(),
		Global:        s.global.Clone(),
		Latency:       s.lat.Snapshot(),
	}
}

// NextRequestID draws a fresh trace request id — what the HTTP front
// end uses when a request arrives without an X-Isel-Request-Id.
func (s *Server) NextRequestID() uint64 { return s.traces.NextID() }

// LatencySnapshots returns the per-series stage latency histograms
// (sorted by machine, then kind).
func (s *Server) LatencySnapshots() []telemetry.SeriesSnapshot { return s.lat.Snapshot() }

// SlowlogEntries returns the retained slowest requests, slowest first.
func (s *Server) SlowlogEntries() []telemetry.Entry { return s.slow.Entries() }

// Started returns when the server was constructed (uptime anchor for
// GET /version).
func (s *Server) Started() time.Time { return s.started }
