// Package server implements the compilation server the paper's on-demand
// automata are built for: one long-lived warm engine multiplexed across
// many concurrent clients.
//
// The economics of on-demand tree-parsing automata (Ertl, Casey, Gregg;
// PLDI 2006) are amortization: every state and transition constructed
// while labeling one compilation unit makes every later unit cheaper, so
// the engine pays off most when many units flow through a single
// long-lived instance. Server is that instance's front end. Clients
// submit forests (or whole lowered units) and get futures back; a bounded
// work queue feeds a worker pool that shares one Selector — and therefore
// one automaton, whose warm fast path is lock-free. Every client's misses
// warm the tables for all clients.
//
// Work accounting is per client: each job's labeling and reduction events
// are counted into a per-job metrics.Counters via Selector.CompileMetered,
// then merged into the submitting client's counters and the server-global
// counters with Counters.Add. The per-client totals therefore sum exactly
// to the global totals, which the race tests assert.
//
// Per-job state is recycled throughout: each worker reuses one counter
// sink, and Selector.CompileMetered pools labelings, reducer scratch and
// emitters internally (see reduce.LabelingRecycler), so a warm job's only
// allocations are its output — steady-state traffic puts no per-node
// pressure on the GC. GET /stats stays cheap for the same reason:
// Snapshot's MemoryBytes is maintained at intern time, not recomputed by
// walking the state table.
//
// Shutdown is graceful: new submissions are refused, queued and in-flight
// jobs drain, and every future still resolves.
package server

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro"
	"repro/internal/metrics"
)

// ErrShutdown is returned by Submit variants after Shutdown has begun.
var ErrShutdown = errors.New("server: shut down")

// Config tunes a Server.
type Config struct {
	// Workers is the worker-pool size (GOMAXPROCS if <= 0). Each worker
	// pulls jobs off the shared queue and compiles on the shared selector.
	Workers int
	// QueueDepth bounds the work queue (4*Workers if <= 0). Submit blocks
	// when the queue is full — backpressure, not unbounded buffering.
	QueueDepth int
}

// Future is the pending result of one submitted forest. It resolves
// exactly once, when a worker finishes the job (or when the job is
// rejected at submission, which returns an error instead of a future).
type Future struct {
	out  *repro.Output
	err  error
	done chan struct{}
}

// Wait blocks until the job completes and returns its output.
func (f *Future) Wait() (*repro.Output, error) {
	<-f.done
	return f.out, f.err
}

// Done returns a channel closed when the future resolves, for select
// loops.
func (f *Future) Done() <-chan struct{} { return f.done }

// resolve publishes the result. Resolving twice is a server bug; the
// panic keeps the exactly-once contract honest under the race tests.
func (f *Future) resolve(out *repro.Output, err error) {
	select {
	case <-f.done:
		panic("server: future resolved twice")
	default:
	}
	f.out, f.err = out, err
	close(f.done)
}

type job struct {
	client string
	forest *repro.Forest
	fut    *Future
}

// Server multiplexes compilation units from many concurrent clients onto
// one shared warm engine. All methods are safe for concurrent use.
type Server struct {
	sel *repro.Selector
	cfg Config

	jobs chan job
	wg   sync.WaitGroup

	// mu guards the closed flag against racing submits; submitters hold
	// the read side so they can block on a full queue concurrently.
	mu     sync.RWMutex
	closed bool

	// cmu guards the per-client counter map (a separate lock from mu so
	// workers recording results never contend with a pending Shutdown).
	cmu     sync.Mutex
	clients map[string]*metrics.Counters

	global    metrics.Counters
	jobsDone  atomic.Int64
	nodesDone atomic.Int64
}

// New starts a server over sel. The selector — and for KindOnDemand, its
// automaton — is shared by every worker and persists for the server's
// lifetime: the warm-engine scenario. The caller keeps ownership of sel
// and may inspect its warmth (Snapshot) at any time, but must not call
// LoadAutomaton while the server runs.
func New(sel *repro.Selector, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	s := &Server{
		sel:     sel,
		cfg:     cfg,
		jobs:    make(chan job, cfg.QueueDepth),
		clients: map[string]*metrics.Counters{},
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Selector returns the shared selector (for warmth inspection).
func (s *Server) Selector() *repro.Selector { return s.sel }

// Workers returns the worker-pool size.
func (s *Server) Workers() int { return s.cfg.Workers }

func (s *Server) worker() {
	defer s.wg.Done()
	var jm metrics.Counters // reused per job; deltas merge after each
	for j := range s.jobs {
		jm.Reset()
		s.runJob(j, &jm)
	}
}

// runJob compiles one job and resolves its future, containing panics:
// dynamic-cost functions are arbitrary grammar-supplied Go code, and one
// poisoned tree must fail its own future with an error rather than kill
// the worker, strand later futures and wedge Shutdown.
func (s *Server) runJob(j job, jm *metrics.Counters) {
	var out *repro.Output
	var err error
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("server: compile panicked: %v", r)
		}
		s.clientCounters(j.client).Add(jm)
		s.global.Add(jm)
		s.jobsDone.Add(1)
		s.nodesDone.Add(int64(j.forest.NumNodes()))
		j.fut.resolve(out, err)
	}()
	out, err = s.sel.CompileMetered(j.forest, jm)
}

// Submit enqueues one forest for client and returns its future. It blocks
// while the queue is full (backpressure) and fails with ErrShutdown once
// Shutdown has begun.
func (s *Server) Submit(client string, f *repro.Forest) (*Future, error) {
	if f == nil {
		return nil, fmt.Errorf("server: nil forest")
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrShutdown
	}
	fut := &Future{done: make(chan struct{})}
	s.jobs <- job{client: client, forest: f, fut: fut}
	return fut, nil
}

// SubmitBatch enqueues several forests for client, returning one future
// per forest (in order). A batch is not atomic: if the server shuts down
// mid-batch, the futures enqueued so far remain valid and the error
// reports how many were accepted.
func (s *Server) SubmitBatch(client string, fs []*repro.Forest) ([]*Future, error) {
	futs := make([]*Future, 0, len(fs))
	for _, f := range fs {
		fut, err := s.Submit(client, f)
		if err != nil {
			return futs, fmt.Errorf("server: batch accepted %d of %d: %w", len(futs), len(fs), err)
		}
		futs = append(futs, fut)
	}
	return futs, nil
}

// SubmitUnit enqueues every function of a lowered unit, one future per
// function in unit order — the server-side mirror of
// Selector.CompileUnit.
func (s *Server) SubmitUnit(client string, u *repro.Unit) ([]*Future, error) {
	fs := make([]*repro.Forest, len(u.Funcs))
	for i, fn := range u.Funcs {
		fs[i] = fn.Forest
	}
	return s.SubmitBatch(client, fs)
}

// CompileUnit submits a unit and waits for all of it: the synchronous
// client call. Outputs are indexed by function; the first error (by
// function order) is returned after all futures resolve.
func (s *Server) CompileUnit(client string, u *repro.Unit) ([]*repro.Output, error) {
	futs, err := s.SubmitUnit(client, u)
	if err != nil {
		return nil, err
	}
	outs := make([]*repro.Output, len(futs))
	var firstErr error
	for i, fut := range futs {
		out, err := fut.Wait()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", u.Funcs[i].Name, err)
		}
		outs[i] = out
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return outs, nil
}

// Shutdown refuses new submissions, drains every queued and in-flight
// job (all futures resolve), and stops the workers. It is idempotent and
// safe to call concurrently.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.jobs)
	s.mu.Unlock()
	s.wg.Wait()
}

// clientCounters returns the counter sink for client, creating it on
// first use.
func (s *Server) clientCounters(client string) *metrics.Counters {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	c, ok := s.clients[client]
	if !ok {
		c = &metrics.Counters{}
		s.clients[client] = c
	}
	return c
}

// Clients lists the clients that have completed at least one job, sorted.
func (s *Server) Clients() []string {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	names := make([]string, 0, len(s.clients))
	for n := range s.clients {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ClientCounters returns a snapshot of one client's merged work counters
// (zero counters for unknown clients).
func (s *Server) ClientCounters(client string) metrics.Counters {
	s.cmu.Lock()
	c := s.clients[client]
	s.cmu.Unlock()
	return c.Clone() // Clone is nil-safe
}

// GlobalCounters returns a snapshot of the server-wide work counters: the
// merge of every completed job's delta, and therefore exactly the sum of
// the per-client counters.
func (s *Server) GlobalCounters() metrics.Counters { return s.global.Clone() }

// Stats is a point-in-time view of the server and its engine's warmth.
type Stats struct {
	// Workers and QueueDepth echo the configuration.
	Workers    int
	QueueDepth int
	// Jobs and Nodes count completed jobs and their IR nodes.
	Jobs  int64
	Nodes int64
	// Queued is the current queue occupancy (instantaneous).
	Queued int
	// Clients is the number of distinct clients served.
	Clients int
	// Warmth is the shared automaton's size — the amortization story:
	// it climbs while cold and flattens once the traffic mix is covered.
	Warmth repro.Snapshot
	// Global is a snapshot of the server-wide work counters.
	Global metrics.Counters
}

// Stats samples the server. Safe to call concurrently with compilation.
func (s *Server) Stats() Stats {
	s.cmu.Lock()
	nClients := len(s.clients)
	s.cmu.Unlock()
	return Stats{
		Workers:    s.cfg.Workers,
		QueueDepth: s.cfg.QueueDepth,
		Jobs:       s.jobsDone.Load(),
		Nodes:      s.nodesDone.Load(),
		Queued:     len(s.jobs),
		Clients:    nClients,
		Warmth:     s.sel.Snapshot(),
		Global:     s.global.Clone(),
	}
}
