package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/workload"
)

var bg = context.Background()

// loadUnits lowers the whole MinC workload corpus against machine's
// grammar: the mixed-unit traffic the stress tests replay.
func loadUnits(t testing.TB, m *repro.Machine) []*repro.Unit {
	t.Helper()
	var units []*repro.Unit
	for _, p := range workload.All() {
		u, err := m.CompileMinC(p.Src)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		units = append(units, u)
	}
	return units
}

// oracle compiles every unit on a fresh single-threaded selector and
// returns the expected outputs plus the deterministic work counters of
// the whole session.
func oracle(t testing.TB, m *repro.Machine, kind repro.Kind, units []*repro.Unit, passes int) ([][]*repro.Output, metrics.Counters) {
	t.Helper()
	var om metrics.Counters
	sel, err := m.NewSelector(kind, repro.Options{Metrics: &om})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]*repro.Output
	for p := 0; p < passes; p++ {
		for _, u := range units {
			outs, err := sel.CompileUnit(bg, u)
			if err != nil {
				t.Fatal(err)
			}
			if p == 0 {
				want = append(want, outs)
			}
		}
	}
	return want, om.Clone()
}

// TestServerStress is the race/stress workhorse: N clients submit mixed
// units to one Server concurrently. Every future must resolve exactly
// once, every output must match the single-threaded oracle, and the
// merged per-client counters must equal the server-global counters —
// which in turn must equal the oracle's deterministic totals.
func TestServerStress(t *testing.T) {
	const (
		clients = 8
		passes  = 3
	)
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	units := loadUnits(t, m)
	// The oracle replays the traffic of every client: clients*passes
	// sequential passes over the corpus on one warm engine.
	want, wantCounters := oracle(t, m, repro.KindOnDemand, units, clients*passes)

	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately tight queue so submitters exercise backpressure.
	srv := server.NewSingle(sel, server.Config{Workers: 4, QueueDepth: 2})

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := fmt.Sprintf("client-%d", c)
			for p := 0; p < passes; p++ {
				for ui, u := range units {
					futs, err := srv.SubmitUnit(bg, name, "", u)
					if err != nil {
						errc <- err
						return
					}
					for fi, fut := range futs {
						out, err := fut.Wait()
						if err != nil {
							errc <- err
							return
						}
						w := want[ui][fi]
						if out.Asm != w.Asm || out.Cost != w.Cost || out.Instructions != w.Instructions {
							errc <- fmt.Errorf("client %d unit %d func %d: output differs from sequential", c, ui, fi)
							return
						}
						// A second Wait must return the same resolved value
						// (futures resolve exactly once and stay resolved).
						again, err2 := fut.Wait()
						if again != out || err2 != nil {
							errc <- fmt.Errorf("future re-wait returned a different result")
							return
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	srv.Shutdown()

	// Per-client counters must merge exactly to the global counters.
	var merged metrics.Counters
	names := srv.Clients()
	if len(names) != clients {
		t.Fatalf("served %d clients, want %d: %v", len(names), clients, names)
	}
	for _, name := range names {
		cc := srv.ClientCounters(name)
		if cc.NodesLabeled == 0 {
			t.Errorf("client %s labeled no nodes", name)
		}
		merged.Add(&cc)
	}
	global := srv.GlobalCounters()
	if merged != global {
		t.Errorf("per-client counters do not sum to global:\n  merged: %v\n  global: %v", &merged, &global)
	}
	// The parallel session's totals are deterministic: they must equal
	// the single-threaded oracle's (clients*passes oracle passes ran).
	if global != wantCounters {
		t.Errorf("global counters differ from sequential oracle:\n  global: %v\n  oracle: %v", &global, &wantCounters)
	}

	st := srv.Stats()
	wantJobs := int64(0)
	for _, u := range units {
		wantJobs += int64(len(u.Funcs))
	}
	wantJobs *= clients * passes
	if st.Jobs != wantJobs {
		t.Errorf("jobs = %d, want %d", st.Jobs, wantJobs)
	}
	if st.Cancelled != 0 {
		t.Errorf("cancelled = %d, want 0 (no contexts ended)", st.Cancelled)
	}
	if len(st.Machines) != 1 || st.Machines[0].Warmth.States == 0 || st.Machines[0].Warmth.Transitions == 0 {
		t.Errorf("warmth snapshot empty: %+v", st.Machines)
	}
}

// TestServerMultiMachine: one server process hosts several machine
// descriptions behind one worker pool; each machine's jobs compile
// against its own engine and only that engine warms.
func TestServerMultiMachine(t *testing.T) {
	reg := repro.NewRegistry()
	for _, name := range []string{"x86", "jit64"} {
		if err := reg.Add(name, repro.KindOnDemand, repro.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	srv := server.New(reg, server.Config{Workers: 2})
	defer srv.Shutdown()

	// Lazy construction: nothing is built until traffic arrives.
	for _, ms := range srv.Stats().Machines {
		if ms.Constructed {
			t.Fatalf("machine %s constructed before any traffic", ms.Machine)
		}
	}

	x86, _, err := reg.Get("x86")
	if err != nil {
		t.Fatal(err)
	}
	units := loadUnits(t, x86)
	want, _ := oracle(t, x86, repro.KindOnDemand, units, 1)
	outs, err := srv.CompileUnit(bg, "c", "x86", units[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range outs {
		if outs[i].Asm != want[0][i].Asm {
			t.Fatalf("func %d: served output differs from direct", i)
		}
	}

	jit, _, err := reg.Get("jit64")
	if err != nil {
		t.Fatal(err)
	}
	jitUnits := loadUnits(t, jit)
	if _, err := srv.CompileUnit(bg, "c", "jit64", jitUnits[0]); err != nil {
		t.Fatal(err)
	}

	st := srv.Stats()
	if len(st.Machines) != 2 {
		t.Fatalf("stats report %d machines, want 2", len(st.Machines))
	}
	for _, ms := range st.Machines {
		if !ms.Constructed || ms.Warmth.States == 0 {
			t.Errorf("machine %s cold after traffic: %+v", ms.Machine, ms)
		}
	}

	// Unknown machines are refused at submission.
	if _, err := srv.Submit(bg, "c", "vax", units[0].Funcs[0].Forest); err == nil {
		t.Error("submit for unregistered machine must fail")
	}
	// The empty machine name lands on the default (first registered).
	fut, err := srv.Submit(bg, "c", "", units[0].Funcs[0].Forest)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := fut.Wait(); err != nil || out.Asm != want[0][0].Asm {
		t.Fatalf("default-machine output: %v, %v", out, err)
	}
}

// TestServerShutdown: Shutdown drains in-flight work, rejects later
// submissions, and is idempotent.
func TestServerShutdown(t *testing.T) {
	m, err := repro.LoadMachine("jit64")
	if err != nil {
		t.Fatal(err)
	}
	units := loadUnits(t, m)
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewSingle(sel, server.Config{Workers: 2})
	futs, err := srv.SubmitUnit(bg, "c", "", units[0])
	if err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	srv.Shutdown() // idempotent
	for _, fut := range futs {
		if _, err := fut.Wait(); err != nil {
			t.Fatalf("in-flight job failed across shutdown: %v", err)
		}
	}
	if _, err := srv.Submit(bg, "c", "", units[0].Funcs[0].Forest); err != server.ErrShutdown {
		t.Fatalf("submit after shutdown = %v, want ErrShutdown", err)
	}
	if _, err := srv.SubmitBatch(bg, "c", "", []*repro.Forest{units[0].Funcs[0].Forest}); err == nil {
		t.Fatal("batch after shutdown must fail")
	}
}

// TestSubmitCancelledContext: a context that ends before submission is
// refused outright; one that ends while the job sits in the queue
// resolves the job's future with ctx.Err() — the queued-then-cancelled
// contract of the v2 API.
func TestSubmitCancelledContext(t *testing.T) {
	m, err := repro.LoadMachine("jit64")
	if err != nil {
		t.Fatal(err)
	}
	units := loadUnits(t, m)
	f := units[0].Funcs[0].Forest
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-cancelled: refused at the door.
	srv := server.NewSingle(sel, server.Config{Workers: 1, QueueDepth: 1})
	defer srv.Shutdown()
	cancelled, cancel := context.WithCancel(bg)
	cancel()
	if _, err := srv.Submit(cancelled, "c", "", f); !errors.Is(err, context.Canceled) {
		t.Fatalf("submit with cancelled ctx = %v, want context.Canceled", err)
	}

	// Queued-then-cancelled: stall the single worker with a slow job, let
	// a second job queue, cancel it, and require its future to resolve
	// with context.Canceled without being compiled.
	release := make(chan struct{})
	gateEnv := repro.DynEnv{"gate": func(n repro.DynNode) repro.Cost {
		<-release
		return 1
	}}
	gm, err := repro.NewMachine("gate", `%name gate
%start stmt
%term Asgn(2) Reg(0) Cnst(0)
reg: Reg (0)
reg: Cnst (dyn gate)
stmt: Asgn(reg, reg) (1) "mov %1, (%0)"
`, gateEnv)
	if err != nil {
		t.Fatal(err)
	}
	gsel, err := gm.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gsrv := server.NewSingle(gsel, server.Config{Workers: 1, QueueDepth: 4})
	slow, err := gm.ParseTree("Asgn(Reg[1], Cnst[7])")
	if err != nil {
		t.Fatal(err)
	}
	slowFut, err := gsrv.Submit(bg, "c", "", slow)
	if err != nil {
		t.Fatal(err)
	}
	qctx, qcancel := context.WithCancel(bg)
	queued, err := gsrv.Submit(qctx, "c", "", slow)
	if err != nil {
		t.Fatal(err)
	}
	qcancel()
	select {
	case <-queued.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled queued future did not resolve")
	}
	if _, err := queued.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued-then-cancelled future = %v, want context.Canceled", err)
	}
	close(release)
	if _, err := slowFut.Wait(); err != nil {
		t.Fatalf("unrelated in-flight job failed: %v", err)
	}
	gsrv.Shutdown()
	if st := gsrv.Stats(); st.Cancelled == 0 {
		t.Errorf("stats cancelled = %d, want > 0", st.Cancelled)
	}
}

// TestRequestTimeout: Config.RequestTimeout bounds a job's lifetime; a
// compile that outlives it resolves with context.DeadlineExceeded while
// later jobs still run.
func TestRequestTimeout(t *testing.T) {
	block := make(chan struct{})
	var gated atomic.Bool
	env := repro.DynEnv{"stall": func(n repro.DynNode) repro.Cost {
		if gated.Load() {
			<-block
		}
		return 1
	}}
	m, err := repro.NewMachine("stall", `%name stall
%start stmt
%term Asgn(2) Reg(0) Cnst(0)
reg: Reg (0)
reg: Cnst (dyn stall)
stmt: Asgn(reg, reg) (1) "mov %1, (%0)"
`, env)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewSingle(sel, server.Config{Workers: 1, RequestTimeout: 50 * time.Millisecond})
	defer srv.Shutdown()
	f, err := m.ParseTree("Asgn(Reg[1], Cnst[7])")
	if err != nil {
		t.Fatal(err)
	}
	gated.Store(true)
	fut, err := srv.Submit(bg, "c", "", f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled job = %v, want context.DeadlineExceeded", err)
	}
	gated.Store(false)
	close(block) // free the stuck worker
	fut2, err := srv.Submit(bg, "c", "", f)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := fut2.Wait(); err != nil || out.Asm == "" {
		t.Fatalf("job after timeout: out=%v err=%v", out, err)
	}
}

// TestServerCancelStress: mixed cancelled and completed clients under
// concurrency (this runs in the -race CI job). Every future must resolve
// — with the real output or with a context error — and the server must
// keep serving throughout.
func TestServerCancelStress(t *testing.T) {
	const clients = 8
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	units := loadUnits(t, m)
	want, _ := oracle(t, m, repro.KindOnDemand, units, 1)
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewSingle(sel, server.Config{Workers: 2, QueueDepth: 2})

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := fmt.Sprintf("client-%d", c)
			cancelling := c%2 == 1
			for ui, u := range units {
				ctx, cancel := context.WithCancel(bg)
				futs, err := srv.SubmitUnit(ctx, name, "", u)
				if err != nil && !errors.Is(err, context.Canceled) {
					cancel()
					errc <- err
					return
				}
				if cancelling {
					cancel() // races the workers: some jobs complete, some cancel
				}
				for fi, fut := range futs {
					out, err := fut.Wait()
					switch {
					case err == nil:
						w := want[ui][fi]
						if out.Asm != w.Asm || out.Cost != w.Cost {
							cancel()
							errc <- fmt.Errorf("client %d unit %d func %d: wrong output", c, ui, fi)
							return
						}
					case errors.Is(err, context.Canceled):
						if !cancelling {
							cancel()
							errc <- fmt.Errorf("client %d: spurious cancellation: %v", c, err)
							return
						}
					default:
						cancel()
						errc <- err
						return
					}
				}
				cancel()
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	srv.Shutdown()

	// Accounting still balances: per-client counters sum to the global,
	// cancelled or not (partial work merges where it happened).
	var merged metrics.Counters
	for _, name := range srv.Clients() {
		cc := srv.ClientCounters(name)
		merged.Add(&cc)
	}
	if global := srv.GlobalCounters(); merged != global {
		t.Errorf("per-client counters do not sum to global:\n  merged: %v\n  global: %v", &merged, &global)
	}
	st := srv.Stats()
	if st.Jobs == 0 {
		t.Error("no jobs completed despite half the clients never cancelling")
	}
	t.Logf("cancel stress: %d done, %d cancelled", st.Jobs, st.Cancelled)
}

// TestServerContainsPanics: a dynamic-cost function that panics on one
// tree must fail that tree's future with an error — not kill the worker,
// strand later futures, or wedge Shutdown.
func TestServerContainsPanics(t *testing.T) {
	const src = `%name boom
%start stmt
%term Asgn(2) Reg(0) Cnst(0)
reg: Reg (0)
reg: Cnst (dyn boom)
stmt: Asgn(reg, reg) (1) "mov %1, (%0)"
`
	env := repro.DynEnv{"boom": func(n repro.DynNode) repro.Cost {
		if n.Value() == 13 {
			panic("unlucky immediate")
		}
		return 1
	}}
	m, err := repro.NewMachine("boom", src, env)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewSingle(sel, server.Config{Workers: 2})
	bad, err := m.ParseTree("Asgn(Reg[1], Cnst[13])")
	if err != nil {
		t.Fatal(err)
	}
	good, err := m.ParseTree("Asgn(Reg[1], Cnst[7])")
	if err != nil {
		t.Fatal(err)
	}
	futBad, err := srv.Submit(bg, "c", "", bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := futBad.Wait(); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("poisoned tree future = %v, want contained panic error", err)
	}
	// The worker pool survived: later jobs still compile and Shutdown
	// still drains.
	futGood, err := srv.Submit(bg, "c", "", good)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := futGood.Wait(); err != nil || out.Asm == "" {
		t.Fatalf("job after contained panic: out=%v err=%v", out, err)
	}
	srv.Shutdown()
	if got := srv.Stats().Jobs; got != 2 {
		t.Errorf("jobs = %d, want 2 (the panicked job still counts as served)", got)
	}
}

// TestServerEngineKinds: the server front end works over every registered
// engine kind that constructs for the machine (dp has no tables, static
// needs the stripped grammar — the server does not care).
func TestServerEngineKinds(t *testing.T) {
	m, err := repro.LoadMachine("mips")
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := m.FixedMachine()
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range repro.Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			mk := m
			sel, err := m.NewSelector(kind, repro.Options{})
			if err != nil {
				// Offline automata cannot host dynamic rules; serve the
				// stripped grammar instead.
				mk = fixed
				sel, err = fixed.NewSelector(kind, repro.Options{})
				if err != nil {
					t.Fatal(err)
				}
			}
			units := loadUnits(t, mk)
			ref, err := sel.CompileUnit(bg, units[0])
			if err != nil {
				t.Fatal(err)
			}
			srv := server.NewSingle(sel, server.Config{Workers: 2})
			outs, err := srv.CompileUnit(bg, "k", "", units[0])
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if outs[i].Asm != ref[i].Asm || outs[i].Cost != ref[i].Cost {
					t.Fatalf("func %d: server output differs from direct CompileUnit", i)
				}
			}
			srv.Shutdown()
		})
	}
}

// TestHTTPHandler drives the HTTP/JSON protocol end to end: tree and MinC
// compiles against two machines from one process, per-machine stats, and
// error paths including the state-budget 503.
func TestHTTPHandler(t *testing.T) {
	reg := repro.NewRegistry()
	if err := reg.Add("x86", repro.KindOnDemand, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("jit64", repro.KindOnDemand, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	// A deliberately starved machine: its first compile exhausts the state
	// budget and must answer 503.
	if err := reg.Add("mips", repro.KindOnDemand, repro.Options{MaxStates: 1}); err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg, server.Config{Workers: 2})
	defer srv.Shutdown()
	ts := httptest.NewServer(server.NewHandler(srv))
	defer ts.Close()

	post := func(path string, body any) (*http.Response, []byte) {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	// Trees on the default machine (x86, first registered).
	resp, body := post("/compile", server.CompileRequest{Client: "t", Trees: "ASGN(ADDRL[-8], ADD(REG[1], CNST[2]))"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trees compile: %d %s", resp.StatusCode, body)
	}
	var cr server.CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Machine != "x86" || len(cr.Outputs) != 1 || cr.Outputs[0].Asm == "" || cr.States == 0 {
		t.Fatalf("unexpected compile response: %s", body)
	}

	// MinC on an explicitly selected second machine: one output per
	// function, served by jit64's own engine.
	resp, body = post("/compile?machine=jit64", server.CompileRequest{Client: "t", MinC: "int f(int x) { return x + 1; }\nint main() { return f(41); }"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("minc compile: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Machine != "jit64" || len(cr.Outputs) != 2 || cr.Outputs[0].Name != "f" || cr.Outputs[1].Name != "main" {
		t.Fatalf("unexpected minc response: %s", body)
	}

	// State budget exhausted: typed 503, not unbounded growth.
	resp, body = post("/compile?machine=mips", server.CompileRequest{Client: "t", MinC: "int main() { return 1 + 2; }"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("budget-capped machine: %d %s, want 503", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("state budget")) {
		t.Fatalf("503 body does not name the budget: %s", body)
	}

	// Errors: empty request, both inputs, bad tree, unknown machine.
	for _, req := range []server.CompileRequest{
		{},
		{Trees: "REG", MinC: "int main() { return 0; }"},
		{Trees: "NOSUCHOP(1)"},
	} {
		resp, _ := post("/compile", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400", req, resp.StatusCode)
		}
	}
	resp, _ = post("/compile?machine=vax", server.CompileRequest{Trees: "REG[1]"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown machine: status %d, want 404", resp.StatusCode)
	}

	// Stats reflect every registered machine and the named client.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Machines) != 3 {
		t.Fatalf("stats cover %d machines, want 3: %+v", len(st.Machines), st.Machines)
	}
	byName := map[string]server.MachineStats{}
	for _, ms := range st.Machines {
		byName[ms.Machine] = ms
	}
	if ms := byName["x86"]; !ms.Constructed || ms.States == 0 || ms.Kind != string(repro.KindOnDemand) {
		t.Errorf("x86 stats: %+v", ms)
	}
	if ms := byName["jit64"]; !ms.Constructed || ms.States == 0 {
		t.Errorf("jit64 stats: %+v", ms)
	}
	// 1 tree job + 2 jit64 minc jobs + 1 failed (budget) mips job, which
	// still counts as served.
	if st.Jobs != 4 || st.Clients["t"].NodesLabeled == 0 {
		t.Errorf("stats accounting: jobs=%d clients=%v", st.Jobs, st.Clients)
	}

	// Health.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
}
