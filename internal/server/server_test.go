package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/workload"
)

// loadUnits lowers the whole MinC workload corpus against machine's
// grammar: the mixed-unit traffic the stress tests replay.
func loadUnits(t testing.TB, m *repro.Machine) []*repro.Unit {
	t.Helper()
	var units []*repro.Unit
	for _, p := range workload.All() {
		u, err := m.CompileMinC(p.Src)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		units = append(units, u)
	}
	return units
}

// oracle compiles every unit on a fresh single-threaded selector and
// returns the expected outputs plus the deterministic work counters of
// the whole session.
func oracle(t testing.TB, m *repro.Machine, kind repro.Kind, units []*repro.Unit, passes int) ([][]*repro.Output, metrics.Counters) {
	t.Helper()
	var om metrics.Counters
	sel, err := m.NewSelector(kind, repro.Options{Metrics: &om})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]*repro.Output
	for p := 0; p < passes; p++ {
		for _, u := range units {
			outs, err := sel.CompileUnit(u)
			if err != nil {
				t.Fatal(err)
			}
			if p == 0 {
				want = append(want, outs)
			}
		}
	}
	return want, om.Clone()
}

// TestServerStress is the race/stress satellite: N clients submit mixed
// units to one Server concurrently. Every future must resolve exactly
// once, every output must match the single-threaded oracle, and the
// merged per-client counters must equal the server-global counters —
// which in turn must equal the oracle's deterministic totals.
func TestServerStress(t *testing.T) {
	const (
		clients = 8
		passes  = 3
	)
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	units := loadUnits(t, m)
	// The oracle replays the traffic of every client: clients*passes
	// sequential passes over the corpus on one warm engine.
	want, wantCounters := oracle(t, m, repro.KindOnDemand, units, clients*passes)

	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately tight queue so submitters exercise backpressure.
	srv := server.New(sel, server.Config{Workers: 4, QueueDepth: 2})

	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := fmt.Sprintf("client-%d", c)
			for p := 0; p < passes; p++ {
				for ui, u := range units {
					futs, err := srv.SubmitUnit(name, u)
					if err != nil {
						errc <- err
						return
					}
					for fi, fut := range futs {
						out, err := fut.Wait()
						if err != nil {
							errc <- err
							return
						}
						w := want[ui][fi]
						if out.Asm != w.Asm || out.Cost != w.Cost || out.Instructions != w.Instructions {
							errc <- fmt.Errorf("client %d unit %d func %d: output differs from sequential", c, ui, fi)
							return
						}
						// A second Wait must return the same resolved value
						// (futures resolve exactly once and stay resolved).
						again, err2 := fut.Wait()
						if again != out || err2 != nil {
							errc <- fmt.Errorf("future re-wait returned a different result")
							return
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	srv.Shutdown()

	// Per-client counters must merge exactly to the global counters.
	var merged metrics.Counters
	names := srv.Clients()
	if len(names) != clients {
		t.Fatalf("served %d clients, want %d: %v", len(names), clients, names)
	}
	for _, name := range names {
		cc := srv.ClientCounters(name)
		if cc.NodesLabeled == 0 {
			t.Errorf("client %s labeled no nodes", name)
		}
		merged.Add(&cc)
	}
	global := srv.GlobalCounters()
	if merged != global {
		t.Errorf("per-client counters do not sum to global:\n  merged: %v\n  global: %v", &merged, &global)
	}
	// The parallel session's totals are deterministic: they must equal
	// the single-threaded oracle's (clients*passes oracle passes ran).
	if global != wantCounters {
		t.Errorf("global counters differ from sequential oracle:\n  global: %v\n  oracle: %v", &global, &wantCounters)
	}

	st := srv.Stats()
	wantJobs := int64(0)
	for _, u := range units {
		wantJobs += int64(len(u.Funcs))
	}
	wantJobs *= clients * passes
	if st.Jobs != wantJobs {
		t.Errorf("jobs = %d, want %d", st.Jobs, wantJobs)
	}
	if st.Warmth.States == 0 || st.Warmth.Transitions == 0 {
		t.Errorf("warmth snapshot empty: %+v", st.Warmth)
	}
}

// TestServerShutdown: Shutdown drains in-flight work, rejects later
// submissions, and is idempotent.
func TestServerShutdown(t *testing.T) {
	m, err := repro.LoadMachine("jit64")
	if err != nil {
		t.Fatal(err)
	}
	units := loadUnits(t, m)
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(sel, server.Config{Workers: 2})
	futs, err := srv.SubmitUnit("c", units[0])
	if err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	srv.Shutdown() // idempotent
	for _, fut := range futs {
		if _, err := fut.Wait(); err != nil {
			t.Fatalf("in-flight job failed across shutdown: %v", err)
		}
	}
	if _, err := srv.Submit("c", units[0].Funcs[0].Forest); err != server.ErrShutdown {
		t.Fatalf("submit after shutdown = %v, want ErrShutdown", err)
	}
	if _, err := srv.SubmitBatch("c", []*repro.Forest{units[0].Funcs[0].Forest}); err == nil {
		t.Fatal("batch after shutdown must fail")
	}
}

// TestServerContainsPanics: a dynamic-cost function that panics on one
// tree must fail that tree's future with an error — not kill the worker,
// strand later futures, or wedge Shutdown.
func TestServerContainsPanics(t *testing.T) {
	const src = `%name boom
%start stmt
%term Asgn(2) Reg(0) Cnst(0)
reg: Reg (0)
reg: Cnst (dyn boom)
stmt: Asgn(reg, reg) (1) "mov %1, (%0)"
`
	env := repro.DynEnv{"boom": func(n repro.DynNode) repro.Cost {
		if n.Value() == 13 {
			panic("unlucky immediate")
		}
		return 1
	}}
	m, err := repro.NewMachine("boom", src, env)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(sel, server.Config{Workers: 2})
	bad, err := m.ParseTree("Asgn(Reg[1], Cnst[13])")
	if err != nil {
		t.Fatal(err)
	}
	good, err := m.ParseTree("Asgn(Reg[1], Cnst[7])")
	if err != nil {
		t.Fatal(err)
	}
	futBad, err := srv.Submit("c", bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := futBad.Wait(); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("poisoned tree future = %v, want contained panic error", err)
	}
	// The worker pool survived: later jobs still compile and Shutdown
	// still drains.
	futGood, err := srv.Submit("c", good)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := futGood.Wait(); err != nil || out.Asm == "" {
		t.Fatalf("job after contained panic: out=%v err=%v", out, err)
	}
	srv.Shutdown()
	if got := srv.Stats().Jobs; got != 2 {
		t.Errorf("jobs = %d, want 2 (the panicked job still counts as served)", got)
	}
}

// TestServerEngineKinds: the server front end works over every registered
// engine kind that constructs for the machine (dp has no tables, static
// needs the stripped grammar — the server does not care).
func TestServerEngineKinds(t *testing.T) {
	m, err := repro.LoadMachine("mips")
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := m.FixedMachine()
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range repro.Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			mk := m
			sel, err := m.NewSelector(kind, repro.Options{})
			if err != nil {
				// Offline automata cannot host dynamic rules; serve the
				// stripped grammar instead.
				mk = fixed
				sel, err = fixed.NewSelector(kind, repro.Options{})
				if err != nil {
					t.Fatal(err)
				}
			}
			units := loadUnits(t, mk)
			ref, err := sel.CompileUnit(units[0])
			if err != nil {
				t.Fatal(err)
			}
			srv := server.New(sel, server.Config{Workers: 2})
			outs, err := srv.CompileUnit("k", units[0])
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if outs[i].Asm != ref[i].Asm || outs[i].Cost != ref[i].Cost {
					t.Fatalf("func %d: server output differs from direct CompileUnit", i)
				}
			}
			srv.Shutdown()
		})
	}
}

// TestHTTPHandler drives the HTTP/JSON protocol end to end: tree and MinC
// compiles, per-client stats, and error paths.
func TestHTTPHandler(t *testing.T) {
	m, err := repro.LoadMachine("x86")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(sel, server.Config{Workers: 2})
	defer srv.Shutdown()
	ts := httptest.NewServer(server.NewHandler(srv, m))
	defer ts.Close()

	post := func(body any) (*http.Response, []byte) {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	// Trees.
	resp, body := post(server.CompileRequest{Client: "t", Trees: "ASGN(ADDRL[-8], ADD(REG[1], CNST[2]))"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trees compile: %d %s", resp.StatusCode, body)
	}
	var cr server.CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Outputs) != 1 || cr.Outputs[0].Asm == "" || cr.States == 0 {
		t.Fatalf("unexpected compile response: %s", body)
	}

	// MinC: one output per function.
	resp, body = post(server.CompileRequest{Client: "t", MinC: "int f(int x) { return x + 1; }\nint main() { return f(41); }"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("minc compile: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Outputs) != 2 || cr.Outputs[0].Name != "f" || cr.Outputs[1].Name != "main" {
		t.Fatalf("unexpected minc response: %s", body)
	}

	// Errors: empty request, both inputs, bad tree.
	for _, req := range []server.CompileRequest{
		{},
		{Trees: "REG", MinC: "int main() { return 0; }"},
		{Trees: "NOSUCHOP(1)"},
	} {
		resp, _ := post(req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400", req, resp.StatusCode)
		}
	}

	// Stats reflect the named client.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Machine != "x86" || st.Kind != string(repro.KindOnDemand) {
		t.Errorf("stats identity: %+v", st)
	}
	if st.Jobs != 3 || st.Clients["t"].NodesLabeled == 0 {
		t.Errorf("stats accounting: jobs=%d clients=%v", st.Jobs, st.Clients)
	}

	// Health.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
}
