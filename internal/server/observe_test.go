package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// TestObservabilitySurface drives the telemetry endpoints end to end
// over real traffic: /metrics must parse as well-formed Prometheus text
// and carry the job counters and latency histograms, /version must name
// every machine with its post-construction grammar fingerprint,
// /debug/slowlog must retain the served requests, and each compile
// response must carry the X-Isel-Trace summary header — with ?trace=1
// expanding to per-output stage timelines and a router-style
// X-Isel-Request-Id adopted verbatim.
func TestObservabilitySurface(t *testing.T) {
	reg := repro.NewRegistry()
	if err := reg.Add("x86", repro.KindOnDemand, repro.Options{}); err != nil {
		t.Fatal(err)
	}
	srv := server.New(reg, server.Config{Workers: 2})
	defer srv.Shutdown()
	ts := httptest.NewServer(server.NewHandler(srv))
	defer ts.Close()

	compile := func(path string, hdr map[string]string) (*http.Response, server.CompileResponse) {
		t.Helper()
		b, _ := json.Marshal(server.CompileRequest{Client: "obs", MinC: "int main() { return 1 + 2 * 3; }"})
		req, err := http.NewRequest("POST", ts.URL+path, bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var cr server.CompileResponse
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile %s: status %d", path, resp.StatusCode)
		}
		return resp, cr
	}

	// Plain compile: the trace summary header is always present and the
	// response carries a server-minted request id, but no trace bodies.
	resp, cr := compile("/compile", nil)
	if hdr := resp.Header.Get(server.TraceHeader); !strings.Contains(hdr, "machine=x86") {
		t.Errorf("%s header = %q, want a trace summary naming the machine", server.TraceHeader, hdr)
	}
	if cr.RequestID == 0 {
		t.Errorf("compile response carries no request id")
	}
	for _, out := range cr.Outputs {
		if out.Trace != nil {
			t.Errorf("trace body present without ?trace=1")
		}
	}

	// ?trace=1 with a router-propagated request id: the id is adopted
	// verbatim and every output carries its stage timeline.
	_, cr = compile("/compile?trace=1", map[string]string{server.RequestIDHeader: "424242"})
	if cr.RequestID != 424242 {
		t.Errorf("request id = %d, want the propagated 424242", cr.RequestID)
	}
	for i, out := range cr.Outputs {
		if out.Trace == nil {
			t.Fatalf("output %d: no trace under ?trace=1", i)
		}
		if out.Trace.ID != 424242 {
			t.Errorf("output %d: trace id = %d, want 424242", i, out.Trace.ID)
		}
		if out.Trace.TotalNs <= 0 || out.Trace.SpanNs[telemetry.StageLabel] <= 0 {
			t.Errorf("output %d: empty trace spans: %+v", i, out.Trace)
		}
	}

	// /metrics: well-formed Prometheus text carrying the request counters
	// and the stage-latency histogram families.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); ct != server.PromContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, server.PromContentType)
	}
	samples, err := telemetry.ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("/metrics is not well-formed prometheus text: %v\n%s", err, buf.Bytes())
	}
	if samples == 0 {
		t.Fatal("/metrics exposes no samples")
	}
	for _, want := range []string{
		"isel_jobs_total",
		`isel_engine_events_total{event="nodes_labeled"}`,
		`isel_stage_duration_seconds_bucket{machine="x86",kind="ondemand",stage="label",`,
		`isel_request_duration_seconds_count{machine="x86",kind="ondemand"}`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("/metrics lacks %q", want)
		}
	}

	// /version: build identity plus the machine's kind and — now that
	// traffic constructed the engine — its grammar fingerprint in hex.
	vresp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	var vr server.VersionResponse
	if err := json.NewDecoder(vresp.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	vresp.Body.Close()
	if vr.Build.GoVersion == "" || vr.UptimeSeconds < 0 {
		t.Errorf("version build block: %+v", vr.Build)
	}
	if len(vr.Machines) != 1 {
		t.Fatalf("version lists %d machines, want 1", len(vr.Machines))
	}
	mv := vr.Machines[0]
	if mv.Machine != "x86" || mv.Kind != string(repro.KindOnDemand) || !mv.Constructed {
		t.Errorf("machine version block: %+v", mv)
	}
	if len(mv.Fingerprint) != 16 {
		t.Errorf("constructed machine fingerprint = %q, want 16 hex digits", mv.Fingerprint)
	}

	// /debug/slowlog: the served jobs are retained, slowest first, each
	// naming its machine and carrying a positive total.
	sresp, err := http.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	var sl server.SlowlogResponse
	if err := json.NewDecoder(sresp.Body).Decode(&sl); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if len(sl.Entries) == 0 {
		t.Fatal("slowlog is empty after served traffic")
	}
	for i, e := range sl.Entries {
		if e.Machine != "x86" || e.TotalNs <= 0 {
			t.Errorf("slowlog entry %d: %+v", i, e)
		}
		if i > 0 && e.TotalNs > sl.Entries[i-1].TotalNs {
			t.Errorf("slowlog not sorted slowest-first at %d", i)
		}
	}

	// /stats: the raw mergeable latency series plus their percentile
	// rendering, keyed machine/kind, label stage populated.
	stresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st server.StatsResponse
	if err := json.NewDecoder(stresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	stresp.Body.Close()
	if len(st.Latency) == 0 {
		t.Fatal("stats carry no latency series")
	}
	sum, ok := st.LatencySummaries["x86/ondemand"]
	if !ok {
		t.Fatalf("latency summaries lack x86/ondemand: %v", st.LatencySummaries)
	}
	if sum["label"].Count == 0 || sum["label"].P99Ns <= 0 {
		t.Errorf("label-stage summary not populated: %+v", sum["label"])
	}
	if sum["total"].Count == 0 || sum["total"].MaxNs <= 0 {
		t.Errorf("total summary not populated: %+v", sum["total"])
	}
}
