package automaton

import (
	"repro/internal/dp"
	"repro/internal/grammar"
	"repro/internal/metrics"
)

// Compute constructs the state for a node with operator op whose children
// are in states kids. It runs the same dynamic-programming step as the
// iburg-style labeler — all base rules of op, then chain closure — but over
// the children's *relative* costs, and normalizes the result.
//
// dynVals supplies the evaluated costs of op's dynamic rules, aligned with
// g.DynRules(op); it must be non-nil exactly when the operator has dynamic
// rules. For the offline generator dynVals is always nil because grammars
// with dynamic rules cannot be tabulated offline (the reason the paper's
// on-demand construction exists).
//
// Using relative child costs is sound: within one child position all rules
// see cost vectors shifted by the same normalization offset, so the argmin
// rule per nonterminal — and therefore the normalized result — is the same
// as with absolute costs. This is the classical BURS state identity that
// both our engines and burg rely on.
func Compute(g *grammar.Grammar, op grammar.OpID, kids []*State, dynVals []grammar.Cost,
	deltaCap grammar.Cost, m *metrics.Counters) (delta []grammar.Cost, rule []int32) {

	numNT := g.NumNonterms()
	delta = make([]grammar.Cost, numNT)
	rule = make([]int32, numNT)
	for nt := range delta {
		delta[nt] = grammar.Inf
		rule[nt] = -1
	}
	base := g.BaseRules(op)
	m.CountRules(len(base))
	for _, ri := range base {
		r := &g.Rules[ri]
		var c grammar.Cost
		if pos := g.DynPos(int(ri)); pos >= 0 {
			c = dynVals[pos]
		} else {
			c = r.Cost
		}
		if c.IsInf() {
			continue
		}
		for ki := range r.Kids {
			c = c.Add(kids[ki].Delta[r.Kids[ki]])
			if c.IsInf() {
				break
			}
		}
		if c < delta[r.LHS] {
			delta[r.LHS] = c
			rule[r.LHS] = int32(ri)
		}
	}
	dp.CloseChains(g, delta, rule, m)
	Normalize(delta, rule, deltaCap)
	return delta, rule
}

// Normalize rebases a cost row to relative costs: the minimum becomes 0,
// and entries whose delta exceeds deltaCap are treated as underivable (the
// finite-state-space safety valve). Rules of underivable entries are
// cleared so hash-consing sees a canonical form.
func Normalize(delta []grammar.Cost, rule []int32, deltaCap grammar.Cost) {
	min := grammar.Inf
	for _, d := range delta {
		if d < min {
			min = d
		}
	}
	if min.IsInf() {
		// Underivable from every nonterminal: canonical all-Inf state.
		for i := range delta {
			delta[i] = grammar.Inf
			rule[i] = -1
		}
		return
	}
	for i := range delta {
		if delta[i].IsInf() {
			rule[i] = -1
			continue
		}
		delta[i] -= min
		if delta[i] > deltaCap {
			delta[i] = grammar.Inf
			rule[i] = -1
		}
	}
}
