package automaton

import (
	"fmt"
	"sync"

	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/reduce"
)

// Static is an offline-generated tree-parsing automaton, the burg
// equivalent and Baseline 2 of the reproduction: all states and transitions
// are computed ahead of time, labeling is pure table lookup, and dynamic
// costs are impossible.
//
// Table compression follows Chase/Proebsting index maps: child states are
// projected, per operator and child position, onto "representer" classes
// (only the costs of the nonterminals that the operator's rules actually
// use at that position matter), and transition tables are indexed by
// representer ids instead of state ids.
//
// Static implements reduce.Labeler. All tables are immutable after
// Generate, so one automaton may label from any number of goroutines
// concurrently; only SetMetrics must not race with labeling.
type Static struct {
	g        *grammar.Grammar
	table    *Table
	states   []*State // table snapshot, frozen at generation time
	m        *metrics.Counters
	deltaCap grammar.Cost
	labels   sync.Pool // *Labeling, recycled across LabelStates calls

	leaf []int32 // [op] -> state id for arity-0 ops; -1 otherwise

	// mu[op][p][stateID] -> representer id at child position p of op.
	mu [][2][]int32
	// nreps[op][p] is the number of representer classes at (op, p).
	nreps [][2]int32
	// t1[op][rep0] -> state id (unary ops).
	t1 [][]int32
	// t2[op][rep0*nreps[op][1]+rep1] -> state id (binary ops).
	t2 [][]int32

	// Expanded direct-lookup tables (see Expand): dir1[op][kidState] and
	// dir2[op][l*numStates+r] hold state ids indexed by child state ids
	// directly, removing the two projection loads per node that the
	// Chase-compressed form costs. nil until Expand; labeling uses them
	// when present.
	dir1 [][]int32
	dir2 [][]int32

	// Gen holds generation statistics.
	Gen GenStats
}

// Expand decompresses the transition tables into direct state-id-indexed
// arrays — the classic space-for-time move: a binary transition becomes
// one flat row-major load (like the on-demand engine's dense grids, minus
// the atomics) instead of two representer projections plus a compressed
// lookup. Memory grows from O(reps²) to O(states²) per binary operator,
// which MemoryBytes reports honestly.
//
// The offline serving path (tables loaded from an iselgen blob) expands
// at load time: a long-lived server trades kilobytes for the fastest
// possible per-node lookup. The generate-time static engine keeps the
// compressed form — it is the burg-style baseline the experiments
// describe. Call before the automaton is shared; not concurrency-safe.
//
// Expansion is bounded: past ExpandMaxStates the quadratic grids stop
// being a kilobyte trade (and an untrusted blob header must not be able
// to demand them), so huge automata keep labeling through the compressed
// tables.
func (a *Static) Expand() {
	if a.dir1 != nil || len(a.states) > ExpandMaxStates {
		return
	}
	n := len(a.states)
	a.dir1 = make([][]int32, len(a.t1))
	a.dir2 = make([][]int32, len(a.t2))
	for op := range a.mu {
		switch a.g.Ops[op].Arity {
		case 1:
			row := make([]int32, n)
			mu0 := a.mu[op][0]
			for kid := 0; kid < n; kid++ {
				row[kid] = a.t1[op][mu0[kid]]
			}
			a.dir1[op] = row
		case 2:
			grid := make([]int32, n*n)
			mu0, mu1 := a.mu[op][0], a.mu[op][1]
			n1 := a.nreps[op][1]
			for l := 0; l < n; l++ {
				r0 := mu0[l] * n1
				for r := 0; r < n; r++ {
					grid[l*n+r] = a.t2[op][r0+mu1[r]]
				}
			}
			a.dir2[op] = grid
		}
	}
	a.Gen.TableBytes = a.MemoryBytes()
}

// ExpandBytes reports the bytes the direct-lookup arrays of Expand cost
// on top of the compressed tables: 4·states per unary operator and
// 4·states² per binary one — exactly what MemoryBytes grows by after
// expansion. It returns 0 when the automaton is past ExpandMaxStates
// (Expand refuses the trade there), so compact-plus-ExpandBytes is
// always the true serving footprint of the preloaded offline engine,
// which expands at load time. Offline table accounting was previously
// reported pre-expansion only, understating served memory by the
// quadratic grids.
func (a *Static) ExpandBytes() int {
	if len(a.states) > ExpandMaxStates {
		return 0
	}
	n := len(a.states)
	b := 0
	for op := range a.mu {
		switch a.g.Ops[op].Arity {
		case 1:
			b += 4 * n
		case 2:
			b += 4 * n * n
		}
	}
	return b
}

// GenStats summarizes offline generation.
type GenStats struct {
	States              int
	Representers        int
	TransitionsComputed int
	TableBytes          int
}

// StaticConfig tunes offline generation.
type StaticConfig struct {
	// DeltaCap bounds relative costs (DefaultDeltaCap if zero).
	DeltaCap grammar.Cost
	// MaxStates aborts generation when exceeded (1<<20 if zero); a safety
	// valve against pathological grammars. An exceeded bound fails with a
	// *TruncatedError carrying the closure diagnostics.
	MaxStates int
	// Metrics receives generation-time event counts (may be nil).
	Metrics *metrics.Counters
}

// ExpandMaxStates bounds direct-table expansion: each binary operator's
// expanded grid is states² × 4 bytes, so 4096 states cost 64 MB per
// operator — the point past which the space-for-time trade stops paying
// and a crafted blob could otherwise demand terabytes. Larger automata
// label through the compressed representer tables instead.
const ExpandMaxStates = 4096

// TruncatedError reports a closure that was pruned by StaticConfig
// MaxStates before reaching its fixpoint: the grammar's state space (or
// the configured budget) is too small to tabulate offline. It carries the
// diagnostics the ahead-of-time generator's -stats report prints, so an
// operator can see how far generation got before the cap.
type TruncatedError struct {
	Grammar string
	// MaxStates is the configured bound; States is how many states had
	// been interned when it tripped (States > MaxStates by exactly the
	// state whose creation overflowed).
	MaxStates int
	States    int
	// Transitions counts transition computations completed before the cut;
	// PendingWork is the representer work-queue length at the cut — the
	// closure work that was abandoned.
	Transitions int
	PendingWork int
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("automaton: grammar %s exceeds %d states (closure pruned at %d states, %d transitions computed, %d work items pending); the grammar lacks the chain-rule structure that bounds relative costs",
		e.Grammar, e.MaxStates, e.States, e.Transitions, e.PendingWork)
}

// Generate builds the full automaton for g. It fails for grammars with
// dynamic-cost rules — precisely the limitation of offline tree-parsing
// automata that motivates on-demand construction; strip the rules first
// (grammar.StripDynamic) to tabulate the fixed-cost subset.
func Generate(g *grammar.Grammar, cfg StaticConfig) (*Static, error) {
	if g.HasAnyDynRules() {
		return nil, fmt.Errorf("automaton: grammar %s has dynamic-cost rules; offline generation is impossible (use the on-demand engine or StripDynamic)", g.Name)
	}
	if cfg.DeltaCap == 0 {
		cfg.DeltaCap = DefaultDeltaCap
	}
	if cfg.MaxStates == 0 {
		cfg.MaxStates = 1 << 20
	}
	gen := newGenerator(g, cfg, false)
	if err := gen.run(); err != nil {
		return nil, err
	}
	a := gen.finish()
	a.m = cfg.Metrics
	return a, nil
}

// ---------------------------------------------------------------------------
// Generation

type repSpace struct {
	// relevant lists the nonterminals whose child costs the operator's
	// rules read at this position, in ascending order.
	relevant []grammar.NT
	// index maps projection keys to representer ids.
	index map[string]int32
	// repOf[stateID] is the state's representer id.
	repOf []int32
	// sample[rep] is a state with that projection, used to compute
	// transitions for the whole class.
	sample []*State
}

type workItem struct {
	op  grammar.OpID
	pos int
	rep int32
}

type generator struct {
	g     *grammar.Grammar
	cfg   StaticConfig
	table *Table
	leaf  []int32
	reps  [][2]*repSpace // [op][pos]; nil where arity doesn't reach pos
	// trans[op] collects transitions during generation, keyed by
	// rep0<<32|rep1 (rep1=0 for unary ops).
	trans []map[uint64]int32
	queue []workItem
	nTr   int
	// fixedOnly restricts the closure to the fixed operators (operators
	// without dynamic rules): the hybrid engine's offline half. Dynamic
	// operators are seeded, projected and transitioned nowhere — their
	// states are constructed on demand at serve time.
	fixedOnly bool
}

func newGenerator(g *grammar.Grammar, cfg StaticConfig, fixedOnly bool) *generator {
	gen := &generator{
		g:         g,
		cfg:       cfg,
		table:     NewTable(g),
		leaf:      make([]int32, g.NumOps()),
		reps:      make([][2]*repSpace, g.NumOps()),
		trans:     make([]map[uint64]int32, g.NumOps()),
		fixedOnly: fixedOnly,
	}
	for op := 0; op < g.NumOps(); op++ {
		gen.leaf[op] = -1
		arity := g.Ops[op].Arity
		if arity == 0 || gen.skip(grammar.OpID(op)) {
			continue
		}
		gen.trans[op] = map[uint64]int32{}
		for p := 0; p < arity; p++ {
			gen.reps[op][p] = newRepSpace(g, grammar.OpID(op), p)
		}
	}
	return gen
}

// skip reports whether the closure excludes op: in fixed-subset mode,
// every operator with at least one dynamic-cost base rule goes entirely
// through the serve-time on-demand path (a dynamic operator's state
// depends on evaluated costs, so no single offline entry could be right).
func (gen *generator) skip(op grammar.OpID) bool {
	return gen.fixedOnly && gen.g.HasDynRules(op)
}

func newRepSpace(g *grammar.Grammar, op grammar.OpID, pos int) *repSpace {
	seen := map[grammar.NT]bool{}
	var rel []grammar.NT
	for _, ri := range g.BaseRules(op) {
		nt := g.Rules[ri].Kids[pos]
		if !seen[nt] {
			seen[nt] = true
			rel = append(rel, nt)
		}
	}
	// Ascending order makes projection keys canonical.
	for i := 1; i < len(rel); i++ {
		for j := i; j > 0 && rel[j] < rel[j-1]; j-- {
			rel[j], rel[j-1] = rel[j-1], rel[j]
		}
	}
	return &repSpace{relevant: rel, index: map[string]int32{}}
}

// project computes the representer id of s at (op, pos), creating a new
// class if the projection is new. It returns (rep, created).
func (rs *repSpace) project(s *State) (int32, bool) {
	key := projKey(s, rs.relevant)
	if rep, ok := rs.index[key]; ok {
		rs.repOf[s.ID] = rep
		return rep, false
	}
	rep := int32(len(rs.sample))
	rs.index[key] = rep
	rs.sample = append(rs.sample, s)
	rs.repOf[s.ID] = rep
	return rep, true
}

// projKey normalizes the relevant cost sub-vector: subtract its minimum so
// that states differing only by a uniform shift land in one class.
func projKey(s *State, relevant []grammar.NT) string {
	if len(relevant) == 0 {
		return ""
	}
	min := grammar.Inf
	for _, nt := range relevant {
		if s.Delta[nt] < min {
			min = s.Delta[nt]
		}
	}
	buf := make([]byte, 0, 5*len(relevant))
	for _, nt := range relevant {
		d := s.Delta[nt]
		if !d.IsInf() && !min.IsInf() {
			d -= min
		}
		buf = append(buf, byte(d), byte(d>>8), byte(d>>16), byte(d>>24), '|')
	}
	return string(buf)
}

func (gen *generator) run() error {
	// Seed with the leaf-operator states.
	for op := 0; op < gen.g.NumOps(); op++ {
		if gen.g.Ops[op].Arity != 0 || gen.skip(grammar.OpID(op)) {
			continue
		}
		delta, rule := Compute(gen.g, grammar.OpID(op), nil, nil, gen.cfg.DeltaCap, gen.cfg.Metrics)
		s, created := gen.table.Intern(delta, rule, gen.cfg.Metrics)
		gen.leaf[op] = s.ID
		if created {
			gen.addState(s)
		}
	}
	for len(gen.queue) > 0 {
		item := gen.queue[len(gen.queue)-1]
		gen.queue = gen.queue[:len(gen.queue)-1]
		if err := gen.expand(item); err != nil {
			return err
		}
	}
	return nil
}

// addState registers a newly interned state with every representer space
// and queues the transition computations its new classes require.
func (gen *generator) addState(s *State) {
	for op := 0; op < gen.g.NumOps(); op++ {
		arity := gen.g.Ops[op].Arity
		if arity > 0 && gen.reps[op][0] == nil {
			continue // excluded from the closure (fixed-subset mode)
		}
		for p := 0; p < arity; p++ {
			rs := gen.reps[op][p]
			rs.repOf = append(rs.repOf, -1)
			if rep, created := rs.project(s); created {
				gen.queue = append(gen.queue, workItem{grammar.OpID(op), p, rep})
			}
		}
	}
}

// expand computes all transitions that involve a new representer class.
func (gen *generator) expand(item workItem) error {
	g := gen.g
	op := item.op
	arity := g.Ops[op].Arity
	if arity == 1 {
		return gen.transition(op, item.rep, 0)
	}
	// Binary: pair the new class with every class at the other position.
	if item.pos == 0 {
		for r1 := int32(0); r1 < int32(len(gen.reps[op][1].sample)); r1++ {
			if err := gen.transition(op, item.rep, r1); err != nil {
				return err
			}
		}
	} else {
		for r0 := int32(0); r0 < int32(len(gen.reps[op][0].sample)); r0++ {
			if err := gen.transition(op, r0, item.rep); err != nil {
				return err
			}
		}
	}
	return nil
}

func (gen *generator) transition(op grammar.OpID, rep0, rep1 int32) error {
	key := uint64(rep0)<<32 | uint64(uint32(rep1))
	if _, done := gen.trans[op][key]; done {
		return nil
	}
	g := gen.g
	var kids []*State
	if g.Ops[op].Arity == 1 {
		kids = []*State{gen.reps[op][0].sample[rep0]}
	} else {
		kids = []*State{gen.reps[op][0].sample[rep0], gen.reps[op][1].sample[rep1]}
	}
	delta, rule := Compute(g, op, kids, nil, gen.cfg.DeltaCap, gen.cfg.Metrics)
	s, created := gen.table.Intern(delta, rule, gen.cfg.Metrics)
	gen.trans[op][key] = s.ID
	gen.nTr++
	gen.cfg.Metrics.CountTransition()
	if created {
		if gen.table.Len() > gen.cfg.MaxStates {
			return &TruncatedError{
				Grammar:     g.Name,
				MaxStates:   gen.cfg.MaxStates,
				States:      gen.table.Len(),
				Transitions: gen.nTr,
				PendingWork: len(gen.queue),
			}
		}
		gen.addState(s)
	}
	return nil
}

// finish flattens the generation structures into dense lookup tables.
func (gen *generator) finish() *Static {
	g := gen.g
	a := &Static{
		g:        g,
		table:    gen.table,
		states:   gen.table.States(),
		deltaCap: gen.cfg.DeltaCap,
		leaf:     gen.leaf,
		mu:       make([][2][]int32, g.NumOps()),
		nreps:    make([][2]int32, g.NumOps()),
		t1:       make([][]int32, g.NumOps()),
		t2:       make([][]int32, g.NumOps()),
	}
	a.labels.New = func() any { return &Labeling{} }
	totalReps := 0
	for op := 0; op < g.NumOps(); op++ {
		arity := g.Ops[op].Arity
		if arity == 0 {
			continue
		}
		for p := 0; p < arity; p++ {
			rs := gen.reps[op][p]
			a.mu[op][p] = rs.repOf
			a.nreps[op][p] = int32(len(rs.sample))
			totalReps += len(rs.sample)
		}
		if arity == 1 {
			t := make([]int32, a.nreps[op][0])
			for key, sid := range gen.trans[op] {
				t[int32(key>>32)] = sid
			}
			a.t1[op] = t
		} else {
			n1 := a.nreps[op][1]
			t := make([]int32, a.nreps[op][0]*n1)
			for key, sid := range gen.trans[op] {
				r0 := int32(key >> 32)
				r1 := int32(uint32(key))
				t[r0*n1+r1] = sid
			}
			a.t2[op] = t
		}
	}
	a.Gen = GenStats{
		States:              gen.table.Len(),
		Representers:        totalReps,
		TransitionsComputed: gen.nTr,
		TableBytes:          a.MemoryBytes(),
	}
	return a
}

// ---------------------------------------------------------------------------
// Labeling with the generated automaton

// Grammar returns the automaton's grammar.
func (a *Static) Grammar() *grammar.Grammar { return a.g }

// Table returns the automaton's state table.
func (a *Static) Table() *Table { return a.table }

// SetMetrics swaps the automaton's labeling counter sink (nil disables
// instrumenting). Not safe to call concurrently with labeling.
func (a *Static) SetMetrics(m *metrics.Counters) { a.m = m }

// NumStates returns the number of states.
func (a *Static) NumStates() int { return a.table.Len() }

// NumTransitions returns the number of (compressed) transition entries.
func (a *Static) NumTransitions() int {
	n := 0
	for op := range a.t1 {
		n += len(a.t1[op]) + len(a.t2[op])
	}
	return n
}

// MemoryBytes estimates the automaton's total table footprint: states,
// index maps, transition tables, and — when expanded — the direct-lookup
// arrays.
func (a *Static) MemoryBytes() int {
	b := a.table.MemoryBytes()
	for op := range a.mu {
		b += 4 * (len(a.mu[op][0]) + len(a.mu[op][1]))
		b += 4 * (len(a.t1[op]) + len(a.t2[op]))
	}
	for op := range a.dir1 {
		b += 4 * (len(a.dir1[op]) + len(a.dir2[op]))
	}
	return b
}

// LabelStates assigns a state to every node of f by pure table lookup: the
// offline automaton's fast path. Events are recorded against the counters
// configured at generation (StaticConfig.Metrics) or via SetMetrics.
// The labeling comes from an internal pool; callers that want its buffers
// recycled hand it back with ReleaseLabeling when done.
func (a *Static) LabelStates(f *ir.Forest) *Labeling {
	return a.LabelStatesMetered(f, nil)
}

// LabelStatesMetered is LabelStates with per-call counter attribution:
// events are counted into m instead of the automaton's configured sink
// (nil falls back to it). The whole pass works on dense state ids — the
// representer projections are already id-indexed, so no state pointer is
// touched until the reducer resolves one.
func (a *Static) LabelStatesMetered(f *ir.Forest, m *metrics.Counters) *Labeling {
	if m == nil {
		m = a.m
	}
	lab := a.labels.Get().(*Labeling)
	ids := lab.Reuse(len(f.Nodes))
	if a.dir1 != nil {
		// Expanded direct tables: one flat load per node, no projections.
		// Index arithmetic is int: an int32 product would wrap for state
		// counts past √2³¹ (Expand's bound keeps us far below, but the
		// index math must not be what relies on that).
		stride := len(a.states)
		for i, n := range f.Nodes {
			m.CountNode()
			m.CountProbe(false)
			op := n.Op
			switch len(n.Kids) {
			case 0:
				ids[i] = a.leaf[op]
			case 1:
				ids[i] = a.dir1[op][ids[n.Kids[0].Index]]
			default:
				ids[i] = a.dir2[op][int(ids[n.Kids[0].Index])*stride+int(ids[n.Kids[1].Index])]
			}
		}
		lab.BindStates(a.states)
		return lab
	}
	for i, n := range f.Nodes {
		m.CountNode()
		m.CountProbe(false)
		op := n.Op
		switch len(n.Kids) {
		case 0:
			ids[i] = a.leaf[op]
		case 1:
			rep := a.mu[op][0][ids[n.Kids[0].Index]]
			ids[i] = a.t1[op][rep]
		default:
			r0 := a.mu[op][0][ids[n.Kids[0].Index]]
			r1 := a.mu[op][1][ids[n.Kids[1].Index]]
			ids[i] = a.t2[op][r0*a.nreps[op][1]+r1]
		}
	}
	lab.BindStates(a.states)
	return lab
}

// ReleaseLabeling implements reduce.LabelingRecycler: it returns a
// labeling obtained from this automaton to the pool. The labeling must
// not be used afterwards.
func (a *Static) ReleaseLabeling(lab reduce.Labeling) {
	if l, ok := lab.(*Labeling); ok && l != nil {
		a.labels.Put(l)
	}
}

// Label implements reduce.Labeler.
func (a *Static) Label(f *ir.Forest) reduce.Labeling { return a.LabelStates(f) }

// LabelMetered implements reduce.MeteredLabeler.
func (a *Static) LabelMetered(f *ir.Forest, m *metrics.Counters) reduce.Labeling {
	return a.LabelStatesMetered(f, m)
}
