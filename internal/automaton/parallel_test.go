package automaton

import (
	"sync"
	"testing"

	"repro/internal/grammar"
	"repro/internal/ir"
)

// TestTableConcurrentIntern hammers the hash-consing table from many
// goroutines with overlapping vectors: equal vectors must intern to one
// pointer, ids must stay dense and unique, and Len/Get/States must stay
// readable throughout. Run under -race.
func TestTableConcurrentIntern(t *testing.T) {
	g := fixedDemo(t)
	tbl := NewTable(g)
	nt := g.NumNonterms()
	const workers = 8
	const vectors = 64

	results := make([][]*State, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = make([]*State, vectors)
			for v := 0; v < vectors; v++ {
				delta := make([]grammar.Cost, nt)
				rule := make([]int32, nt)
				for i := range delta {
					delta[i] = grammar.Cost(v % 16) // 16 distinct vectors, heavily contended
					rule[i] = int32(v % 16)
				}
				s, _ := tbl.Intern(delta, rule, nil)
				results[w][v] = s
				// Concurrent readers must always see a consistent prefix.
				if got := tbl.Get(s.ID); got != s {
					t.Errorf("Get(%d) returned a different state", s.ID)
					return
				}
				if tbl.Len() < int(s.ID)+1 {
					t.Errorf("Len %d < id %d", tbl.Len(), s.ID)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if tbl.Len() != 16 {
		t.Errorf("table has %d states, want 16", tbl.Len())
	}
	// All workers must agree on the interned pointer per vector class.
	for v := 0; v < vectors; v++ {
		for w := 1; w < workers; w++ {
			if results[w][v] != results[0][v] {
				t.Fatalf("vector %d: workers interned different states", v)
			}
		}
	}
	seen := map[int32]bool{}
	for _, s := range tbl.States() {
		if seen[s.ID] {
			t.Fatalf("duplicate state id %d", s.ID)
		}
		seen[s.ID] = true
	}
}

// TestStaticParallelLabel: the offline automaton is immutable after
// generation, so concurrent labeling must be trivially safe and must
// agree with sequential labeling.
func TestStaticParallelLabel(t *testing.T) {
	g := fixedDemo(t)
	a, err := Generate(g, StaticConfig{})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	forests := make([]*ir.Forest, workers)
	want := make([]*Labeling, workers)
	for i := range forests {
		forests[i] = ir.RandomForest(g, ir.RandomConfig{Seed: int64(50 + i), Trees: 100, MaxDepth: 7})
		want[i] = a.LabelStates(forests[i])
	}
	var wg sync.WaitGroup
	got := make([]*Labeling, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = a.LabelStates(forests[i])
		}(i)
	}
	wg.Wait()
	for i := range forests {
		for _, n := range forests[i].Nodes {
			if want[i].StateAt(n) != got[i].StateAt(n) {
				t.Fatalf("forest %d node %d: parallel label differs", i, n.Index)
			}
		}
	}
}

// TestStaticLevelParallel: intra-forest level-parallel labeling must
// reproduce sequential labeling exactly, through both table layouts —
// the Chase-compressed representer tables and the expanded direct
// arrays. Run under -race: the only writes are to disjoint ids slots.
func TestStaticLevelParallel(t *testing.T) {
	g := fixedDemo(t)
	for _, expand := range []bool{false, true} {
		a, err := Generate(g, StaticConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if expand {
			a.Expand()
		}
		for seed := int64(0); seed < 4; seed++ {
			f := ir.RandomForest(g, ir.RandomConfig{Seed: seed, Trees: 1500, MaxDepth: 8, Share: seed%2 == 0})
			want := a.LabelStates(f)
			for _, workers := range []int{2, 4, 8} {
				got := a.LabelStatesParallel(f, workers, nil)
				for _, n := range f.Nodes {
					if want.StateAt(n) != got.StateAt(n) {
						t.Fatalf("expand=%v seed=%d workers=%d node %d: level-parallel label differs",
							expand, seed, workers, n.Index)
					}
				}
				a.ReleaseLabeling(got)
			}
			a.ReleaseLabeling(want)
		}
	}
}
