// Package automaton provides the tree-parsing-automaton substrate shared
// by the offline (burg-style) generator and the on-demand engine of the
// paper: cost-normalized states, a hash-consing state table, and the state
// constructor ("work function") that turns an operator plus child states
// into a new state by running the dynamic-programming labeling step once.
//
// A state is the equivalence class of all subtrees that have, for every
// nonterminal, the same optimal first rule and the same cost relative to
// the cheapest nonterminal (Pelegrí-Llopart/Graham BURS theory;
// Proebsting, TOPLAS '95). Relative ("delta") costs are what make the
// state space finite.
package automaton

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/metrics"
)

// ErrStateBudget is the typed error behind Options.MaxStates: interning
// that would grow the state table past its configured budget fails with an
// error wrapping this sentinel instead of growing without bound. Callers
// match it with errors.Is; the compilation server surfaces it as HTTP 503.
var ErrStateBudget = errors.New("automaton: state budget exhausted")

// DefaultDeltaCap is the default bound on relative costs. Deltas above the
// cap are normalized to "not derivable". For realistic grammars (with the
// chain-rule structure Proebsting assumes) deltas stay tiny and the cap
// never triggers; it exists as the safety valve that guarantees a finite
// state space for arbitrary grammars, and as the knob for the delta-cap
// ablation experiment.
const DefaultDeltaCap grammar.Cost = 1 << 20

// State is a cost-normalized labeling result.
type State struct {
	// ID is the state's index in its Table.
	ID int32
	// Delta[nt] is the cost of deriving the represented subtrees from nt,
	// relative to the cheapest nonterminal (grammar.Inf if underivable).
	Delta []grammar.Cost
	// Rule[nt] is the rule index of the first derivation step (-1 if
	// underivable).
	Rule []int32
}

// RuleAt returns the optimal rule index for nt (-1 if underivable).
func (s *State) RuleAt(nt grammar.NT) int32 { return s.Rule[nt] }

// Derives reports whether the state derives nt.
func (s *State) Derives(nt grammar.NT) bool { return !s.Delta[nt].IsInf() }

// String renders the state for diagnostics.
func (s *State) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "state %d {", s.ID)
	first := true
	for nt, d := range s.Delta {
		if d.IsInf() {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "nt%d:+%d/r%d", nt, d, s.Rule[nt])
	}
	b.WriteString("}")
	return b.String()
}

// MemoryBytes estimates the state's memory footprint, for the table-size
// experiment.
func (s *State) MemoryBytes() int {
	return 16 + 4*len(s.Delta) + 4*len(s.Rule)
}

// Table hash-conses states: structurally identical (delta, rule) vectors
// map to one *State, so state identity is pointer identity and transition
// tables can be keyed by small dense ids.
//
// Table is safe for concurrent use: interning (the construct slow path of
// the on-demand engine) serializes on an internal mutex, while the read
// side — Len, Get, States, MemoryBytes — is lock-free. The state list is
// append-only and published through an atomic slice header, so readers
// always observe a consistent prefix and never block on a concurrent
// intern.
type Table struct {
	g *grammar.Grammar
	// max bounds the number of interned states when > 0 (see SetBudget);
	// InternBudget refuses growth past it with ErrStateBudget.
	max int
	mu  sync.Mutex // guards index and appends to the state list

	// index maps hash-consing keys to states; touched only under mu.
	index map[string]*State
	// states is the published (append-only) state list. Growth happens
	// under mu via append on a shared backing array: readers holding an
	// older header never index past their snapshot's length, and new
	// headers are released with an atomic store.
	states atomic.Pointer[[]*State]
	// bytes tracks the footprint of states plus index entries, accumulated
	// at intern time so MemoryBytes is O(1) and allocation-free — stats
	// polling (the server's GET /stats) hits it on every request.
	bytes atomic.Int64
}

// NewTable creates an empty state table for g.
func NewTable(g *grammar.Grammar) *Table {
	t := &Table{g: g, index: map[string]*State{}}
	empty := []*State(nil)
	t.states.Store(&empty)
	return t
}

// Grammar returns the grammar whose states the table holds.
func (t *Table) Grammar() *grammar.Grammar { return t.g }

// Len returns the number of distinct states.
func (t *Table) Len() int { return len(*t.states.Load()) }

// Get returns the state with the given id.
func (t *Table) Get(id int32) *State { return (*t.states.Load())[id] }

// States returns the interned states in creation order: a snapshot that
// concurrent interns may extend but never mutate. Callers must not modify
// it.
func (t *Table) States() []*State { return *t.states.Load() }

// SetBudget bounds the number of states InternBudget may create (0 means
// unlimited). Set it before the table is shared across goroutines; the
// on-demand engine wires Options.MaxStates through here at construction.
func (t *Table) SetBudget(max int) { t.max = max }

// Intern returns the unique state with the given vectors, creating it if
// needed; created reports whether a new state was added. Intern takes
// ownership of the slices when it creates a state.
func (t *Table) Intern(delta []grammar.Cost, rule []int32, m *metrics.Counters) (s *State, created bool) {
	s, created, _ = t.intern(delta, rule, m, 0)
	return s, created
}

// InternBudget is Intern honoring the table's configured state budget:
// a lookup that hits an existing state always succeeds (even at the cap),
// but creating a state past the budget fails with an error wrapping
// ErrStateBudget and leaves the table unchanged — growth is bounded by
// exactly the budget, not budget+misses.
func (t *Table) InternBudget(delta []grammar.Cost, rule []int32, m *metrics.Counters) (*State, bool, error) {
	return t.intern(delta, rule, m, t.max)
}

func (t *Table) intern(delta []grammar.Cost, rule []int32, m *metrics.Counters, max int) (*State, bool, error) {
	key := stateKey(delta, rule)
	t.mu.Lock()
	if s, ok := t.index[key]; ok {
		t.mu.Unlock()
		return s, false, nil
	}
	cur := *t.states.Load()
	if max > 0 && len(cur) >= max {
		t.mu.Unlock()
		return nil, false, fmt.Errorf("%w: %d states materialized, budget %d", ErrStateBudget, len(cur), max)
	}
	s := &State{ID: int32(len(cur)), Delta: delta, Rule: rule}
	next := append(cur, s)
	t.states.Store(&next)
	t.index[key] = s
	t.bytes.Add(int64(s.MemoryBytes() + len(key) + 16)) // state + index entry
	t.mu.Unlock()
	m.CountState()
	return s, true, nil
}

// MemoryBytes estimates the total footprint of all states plus the index.
// The figure is maintained at intern time, so the call is O(1) and safe to
// poll concurrently with interning.
func (t *Table) MemoryBytes() int { return int(t.bytes.Load()) }

// Labeling is the per-node state assignment an automaton labeler produces:
// a dense vector of state ids plus the state-table snapshot that resolves
// them. Keeping ids instead of pointers halves the per-node footprint and
// lets engines reuse one labeling's buffers across calls — labelers hand
// labelings out of internal pools (see reduce.LabelingRecycler).
//
// Ownership: a labeling returned by an engine belongs to the caller until
// it is released back via the engine's ReleaseLabeling, after which it
// must not be touched. Labelings that are never released are simply
// garbage collected.
type Labeling struct {
	// IDs[i] is the state id assigned to the node with index i.
	IDs []int32
	// states resolves ids: an append-only table snapshot taken after the
	// last id was assigned, so it covers every id in IDs.
	states []*State
}

// Reuse resizes the labeling to n nodes, reusing the id buffer when its
// capacity allows, and returns the id slice to fill.
func (l *Labeling) Reuse(n int) []int32 {
	if cap(l.IDs) < n {
		l.IDs = make([]int32, n)
	} else {
		l.IDs = l.IDs[:n]
	}
	return l.IDs
}

// Bind snapshots t's state list so RuleAt/StateAt can resolve ids. Call it
// after every id in the labeling has been assigned: the list is
// append-only, so the snapshot covers all of them.
func (l *Labeling) Bind(t *Table) { l.states = t.States() }

// BindStates binds an already-frozen snapshot (the static automaton's).
func (l *Labeling) BindStates(states []*State) { l.states = states }

// RuleAt returns the optimal rule for (n, nt), or -1: the lookup the
// reducer drives.
func (l *Labeling) RuleAt(n *ir.Node, nt grammar.NT) int32 {
	return l.states[l.IDs[n.Index]].Rule[nt]
}

// StateAt returns the state assigned to n.
func (l *Labeling) StateAt(n *ir.Node) *State { return l.states[l.IDs[n.Index]] }

// StateIDAt returns the state id assigned to n.
func (l *Labeling) StateIDAt(n *ir.Node) int32 { return l.IDs[n.Index] }

// stateKey builds the hash-consing key. Rules are part of the key: two
// labelings with equal costs but different optimal rules must be different
// states because the reducer reads rules out of states.
func stateKey(delta []grammar.Cost, rule []int32) string {
	buf := make([]byte, 0, 8*len(delta))
	var tmp [4]byte
	for i := range delta {
		binary.LittleEndian.PutUint32(tmp[:], uint32(delta[i]))
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint32(tmp[:], uint32(rule[i]))
		buf = append(buf, tmp[:]...)
	}
	return string(buf)
}
