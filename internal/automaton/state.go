// Package automaton provides the tree-parsing-automaton substrate shared
// by the offline (burg-style) generator and the on-demand engine of the
// paper: cost-normalized states, a hash-consing state table, and the state
// constructor ("work function") that turns an operator plus child states
// into a new state by running the dynamic-programming labeling step once.
//
// A state is the equivalence class of all subtrees that have, for every
// nonterminal, the same optimal first rule and the same cost relative to
// the cheapest nonterminal (Pelegrí-Llopart/Graham BURS theory;
// Proebsting, TOPLAS '95). Relative ("delta") costs are what make the
// state space finite.
package automaton

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/grammar"
	"repro/internal/metrics"
)

// DefaultDeltaCap is the default bound on relative costs. Deltas above the
// cap are normalized to "not derivable". For realistic grammars (with the
// chain-rule structure Proebsting assumes) deltas stay tiny and the cap
// never triggers; it exists as the safety valve that guarantees a finite
// state space for arbitrary grammars, and as the knob for the delta-cap
// ablation experiment.
const DefaultDeltaCap grammar.Cost = 1 << 20

// State is a cost-normalized labeling result.
type State struct {
	// ID is the state's index in its Table.
	ID int32
	// Delta[nt] is the cost of deriving the represented subtrees from nt,
	// relative to the cheapest nonterminal (grammar.Inf if underivable).
	Delta []grammar.Cost
	// Rule[nt] is the rule index of the first derivation step (-1 if
	// underivable).
	Rule []int32
}

// RuleAt returns the optimal rule index for nt (-1 if underivable).
func (s *State) RuleAt(nt grammar.NT) int32 { return s.Rule[nt] }

// Derives reports whether the state derives nt.
func (s *State) Derives(nt grammar.NT) bool { return !s.Delta[nt].IsInf() }

// String renders the state for diagnostics.
func (s *State) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "state %d {", s.ID)
	first := true
	for nt, d := range s.Delta {
		if d.IsInf() {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "nt%d:+%d/r%d", nt, d, s.Rule[nt])
	}
	b.WriteString("}")
	return b.String()
}

// MemoryBytes estimates the state's memory footprint, for the table-size
// experiment.
func (s *State) MemoryBytes() int {
	return 16 + 4*len(s.Delta) + 4*len(s.Rule)
}

// Table hash-conses states: structurally identical (delta, rule) vectors
// map to one *State, so state identity is pointer identity and transition
// tables can be keyed by small dense ids.
type Table struct {
	g      *grammar.Grammar
	states []*State
	index  map[string]*State
}

// NewTable creates an empty state table for g.
func NewTable(g *grammar.Grammar) *Table {
	return &Table{g: g, index: map[string]*State{}}
}

// Grammar returns the grammar whose states the table holds.
func (t *Table) Grammar() *grammar.Grammar { return t.g }

// Len returns the number of distinct states.
func (t *Table) Len() int { return len(t.states) }

// Get returns the state with the given id.
func (t *Table) Get(id int32) *State { return t.states[id] }

// States returns the interned states in creation order. The slice is the
// table's own; callers must not modify it.
func (t *Table) States() []*State { return t.states }

// Intern returns the unique state with the given vectors, creating it if
// needed; created reports whether a new state was added. Intern takes
// ownership of the slices when it creates a state.
func (t *Table) Intern(delta []grammar.Cost, rule []int32, m *metrics.Counters) (s *State, created bool) {
	key := stateKey(delta, rule)
	if s, ok := t.index[key]; ok {
		return s, false
	}
	s = &State{ID: int32(len(t.states)), Delta: delta, Rule: rule}
	t.states = append(t.states, s)
	t.index[key] = s
	m.CountState()
	return s, true
}

// MemoryBytes estimates the total footprint of all states plus the index.
func (t *Table) MemoryBytes() int {
	total := 0
	for _, s := range t.states {
		total += s.MemoryBytes()
		total += len(stateKey(s.Delta, s.Rule)) + 16 // index entry
	}
	return total
}

// stateKey builds the hash-consing key. Rules are part of the key: two
// labelings with equal costs but different optimal rules must be different
// states because the reducer reads rules out of states.
func stateKey(delta []grammar.Cost, rule []int32) string {
	buf := make([]byte, 0, 8*len(delta))
	var tmp [4]byte
	for i := range delta {
		binary.LittleEndian.PutUint32(tmp[:], uint32(delta[i]))
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint32(tmp[:], uint32(rule[i]))
		buf = append(buf, tmp[:]...)
	}
	return string(buf)
}
