package automaton

import (
	"testing"
	"testing/quick"

	"repro/internal/dp"
	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/metrics"
)

// fixedDemo is the running example without its dynamic rule: the grammar an
// offline generator can tabulate.
func fixedDemo(t testing.TB) *grammar.Grammar {
	t.Helper()
	d := md.MustLoad("demo")
	g, err := d.Grammar.StripDynamic()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGenerateRejectsDynamic(t *testing.T) {
	d := md.MustLoad("demo")
	if _, err := Generate(d.Grammar, StaticConfig{}); err == nil {
		t.Fatal("offline generation must fail for grammars with dynamic rules")
	}
}

func TestGenerateDemo(t *testing.T) {
	g := fixedDemo(t)
	a, err := Generate(g, StaticConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The running example's automaton has a handful of states (the
	// literature's figure shows 6 for the constraint-free grammar).
	if a.NumStates() < 4 || a.NumStates() > 16 {
		t.Errorf("states = %d, expected a small automaton", a.NumStates())
	}
	if a.NumTransitions() == 0 {
		t.Error("no transitions generated")
	}
	if a.Gen.States != a.NumStates() || a.Gen.TableBytes <= 0 {
		t.Errorf("generation stats inconsistent: %+v", a.Gen)
	}
	if a.MemoryBytes() <= 0 {
		t.Error("memory estimate must be positive")
	}
	if a.Table().Len() != a.NumStates() {
		t.Error("table length mismatch")
	}
}

// TestStaticMatchesDPDemo: on the fixed demo grammar, the static automaton
// must produce exactly the labeling the dynamic-programming oracle does:
// same optimal rule for every (node, nonterminal), and state deltas equal
// to DP costs minus the row minimum.
func TestStaticMatchesDPDemo(t *testing.T) {
	g := fixedDemo(t)
	checkStaticAgainstDP(t, g, ir.RandomForest(g, ir.RandomConfig{Seed: 11, Trees: 200, MaxDepth: 8}))
}

func checkStaticAgainstDP(t *testing.T, g *grammar.Grammar, f *ir.Forest) {
	t.Helper()
	a, err := Generate(g, StaticConfig{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := dp.New(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := l.LabelResult(f)
	got := a.LabelStates(f)
	for _, n := range f.Nodes {
		s := got.StateAt(n)
		row := want.Costs[n.Index]
		min := grammar.Inf
		for _, c := range row {
			if c < min {
				min = c
			}
		}
		for nt := range row {
			wantRule := want.Rules[n.Index][nt]
			gotRule := s.Rule[nt]
			if wantRule != gotRule {
				t.Fatalf("node %d (%s) nt %s: rule %s != DP rule %s",
					n.Index, g.OpName(n.Op), g.NTName(grammar.NT(nt)),
					g.RuleName(int(gotRule)), g.RuleName(int(wantRule)))
			}
			wantDelta := grammar.Inf
			if !row[nt].IsInf() {
				wantDelta = row[nt] - min
			}
			if s.Delta[nt] != wantDelta {
				t.Fatalf("node %d nt %s: delta %d != DP relative cost %d",
					n.Index, g.NTName(grammar.NT(nt)), s.Delta[nt], wantDelta)
			}
		}
	}
}

// TestStaticMatchesDPQuick drives the same oracle check from testing/quick
// seeds, so tree shapes are adversarial rather than hand-picked.
func TestStaticMatchesDPQuick(t *testing.T) {
	g := fixedDemo(t)
	a, err := Generate(g, StaticConfig{})
	if err != nil {
		t.Fatal(err)
	}
	l, _ := dp.New(g, nil, nil)
	prop := func(seed int64, trees uint8) bool {
		f := ir.RandomForest(g, ir.RandomConfig{Seed: seed, Trees: int(trees%16) + 1, MaxDepth: 7})
		want := l.LabelResult(f)
		got := a.LabelStates(f)
		for _, n := range f.Nodes {
			for nt := range want.Costs[n.Index] {
				if want.Rules[n.Index][nt] != got.StateAt(n).Rule[nt] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	delta := []grammar.Cost{5, 3, grammar.Inf, 7}
	rule := []int32{1, 2, -1, 3}
	Normalize(delta, rule, DefaultDeltaCap)
	want := []grammar.Cost{2, 0, grammar.Inf, 4}
	for i := range want {
		if delta[i] != want[i] {
			t.Errorf("delta[%d] = %d, want %d", i, delta[i], want[i])
		}
	}
	if rule[2] != -1 {
		t.Error("rule of underivable entry must stay -1")
	}
}

func TestNormalizeAllInf(t *testing.T) {
	delta := []grammar.Cost{grammar.Inf, grammar.Inf}
	rule := []int32{5, 6} // stale rules must be cleared
	Normalize(delta, rule, DefaultDeltaCap)
	if rule[0] != -1 || rule[1] != -1 {
		t.Error("all-Inf state must clear rules for canonical hashing")
	}
}

func TestNormalizeDeltaCap(t *testing.T) {
	delta := []grammar.Cost{0, 3, 100}
	rule := []int32{1, 2, 3}
	Normalize(delta, rule, 10)
	if !delta[2].IsInf() || rule[2] != -1 {
		t.Error("delta above cap must become underivable")
	}
	if delta[1] != 3 {
		t.Error("delta below cap must survive")
	}
}

func TestTableInterning(t *testing.T) {
	g := fixedDemo(t)
	tbl := NewTable(g)
	n := g.NumNonterms()
	mk := func(base grammar.Cost) ([]grammar.Cost, []int32) {
		d := make([]grammar.Cost, n)
		r := make([]int32, n)
		for i := range d {
			d[i] = base
			r[i] = int32(i)
		}
		return d, r
	}
	d1, r1 := mk(0)
	s1, created := tbl.Intern(d1, r1, nil)
	if !created {
		t.Error("first intern must create")
	}
	d2, r2 := mk(0)
	s2, created := tbl.Intern(d2, r2, nil)
	if created || s1 != s2 {
		t.Error("identical vectors must intern to the same state")
	}
	d3, r3 := mk(1)
	s3, created := tbl.Intern(d3, r3, nil)
	if !created || s3 == s1 {
		t.Error("different vectors must create a new state")
	}
	// Equal costs but different rules must be different states.
	d4, r4 := mk(0)
	r4[0] = 99
	s4, created := tbl.Intern(d4, r4, nil)
	if !created || s4 == s1 {
		t.Error("states with different rules must not merge")
	}
	if tbl.Len() != 3 {
		t.Errorf("table len = %d, want 3", tbl.Len())
	}
	if tbl.Get(s1.ID) != s1 {
		t.Error("Get by id failed")
	}
	if tbl.MemoryBytes() <= 0 {
		t.Error("memory estimate must be positive")
	}
	if s1.String() == "" {
		t.Error("state must render")
	}
}

func TestStateDerives(t *testing.T) {
	s := &State{Delta: []grammar.Cost{0, grammar.Inf}, Rule: []int32{1, -1}}
	if !s.Derives(0) || s.Derives(1) {
		t.Error("Derives wrong")
	}
	if s.RuleAt(0) != 1 || s.RuleAt(1) != -1 {
		t.Error("RuleAt wrong")
	}
}

func TestGenerateMaxStates(t *testing.T) {
	// A grammar whose costs keep diverging without a bounding chain rule:
	// x accumulates cost per level while y stays flat, so the relative
	// cost difference grows without bound and state generation must trip
	// the MaxStates (or delta-cap) safety valve rather than diverge.
	g := grammar.MustParse(`
%term A(0) B(1)
%start x
x: A (0)
y: A (0)
x: B(x) (5)
y: B(y) (0)
`)
	_, err := Generate(g, StaticConfig{MaxStates: 64})
	if err == nil {
		t.Fatal("expected MaxStates abort for diverging grammar")
	}
}

func TestGenerateDivergingGrammarWithCap(t *testing.T) {
	// Same diverging grammar, but a finite delta cap bounds the state
	// space: generation must terminate.
	g := grammar.MustParse(`
%term A(0) B(1)
%start x
x: A (0)
y: A (0)
x: B(x) (5)
y: B(y) (0)
`)
	a, err := Generate(g, StaticConfig{DeltaCap: 20, MaxStates: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumStates() == 0 || a.NumStates() > 1000 {
		t.Errorf("states = %d", a.NumStates())
	}
}

func TestGenerationMetrics(t *testing.T) {
	g := fixedDemo(t)
	m := &metrics.Counters{}
	a, err := Generate(g, StaticConfig{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if m.StatesBuilt != int64(a.NumStates()) {
		t.Errorf("states built %d != states %d", m.StatesBuilt, a.NumStates())
	}
	if m.RulesExamined == 0 || m.TransitionsAdded == 0 {
		t.Errorf("expected generation work: %s", m)
	}
}

// TestLabelingMetrics: static labeling is one probe per node, no rule work.
func TestLabelingMetrics(t *testing.T) {
	g := fixedDemo(t)
	a, err := Generate(g, StaticConfig{})
	if err != nil {
		t.Fatal(err)
	}
	f := ir.RandomForest(g, ir.RandomConfig{Seed: 3, Trees: 10, MaxDepth: 6})
	m := &metrics.Counters{}
	a.SetMetrics(m)
	a.LabelStates(f)
	if m.TableProbes != int64(f.NumNodes()) {
		t.Errorf("probes = %d, want %d (one per node)", m.TableProbes, f.NumNodes())
	}
	if m.RulesExamined != 0 || m.TableMisses != 0 {
		t.Errorf("static labeling must do no DP work: %s", m)
	}
}
