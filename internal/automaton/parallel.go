package automaton

import (
	"sync"

	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/reduce"
)

var staticLevels = sync.Pool{New: func() any { return new(reduce.Levels) }}

// LabelStatesParallel is LabelStatesMetered with intra-forest fan-out:
// topological levels labeled across up to workers goroutines with a
// barrier between levels (see reduce.Levels). The static automaton's
// tables are immutable after generation, so per-node labeling from many
// goroutines needs no synchronization at all — the only ordering
// requirement is child-before-parent, which the level barrier provides.
// workers <= 1 is the sequential path unchanged.
func (a *Static) LabelStatesParallel(f *ir.Forest, workers int, m *metrics.Counters) *Labeling {
	if workers <= 1 || len(f.Nodes) < reduce.MinParallelSpan {
		return a.LabelStatesMetered(f, m)
	}
	if m == nil {
		m = a.m
	}
	lab := a.labels.Get().(*Labeling)
	ids := lab.Reuse(len(f.Nodes))
	lv := staticLevels.Get().(*reduce.Levels)
	lv.Partition(f)
	if a.dir1 != nil {
		stride := len(a.states)
		lv.Run(workers, func(idx int32) {
			m.CountNode()
			m.CountProbe(false)
			n := f.Nodes[idx]
			op := n.Op
			switch len(n.Kids) {
			case 0:
				ids[idx] = a.leaf[op]
			case 1:
				ids[idx] = a.dir1[op][ids[n.Kids[0].Index]]
			default:
				ids[idx] = a.dir2[op][int(ids[n.Kids[0].Index])*stride+int(ids[n.Kids[1].Index])]
			}
		})
	} else {
		lv.Run(workers, func(idx int32) {
			m.CountNode()
			m.CountProbe(false)
			n := f.Nodes[idx]
			op := n.Op
			switch len(n.Kids) {
			case 0:
				ids[idx] = a.leaf[op]
			case 1:
				rep := a.mu[op][0][ids[n.Kids[0].Index]]
				ids[idx] = a.t1[op][rep]
			default:
				r0 := a.mu[op][0][ids[n.Kids[0].Index]]
				r1 := a.mu[op][1][ids[n.Kids[1].Index]]
				ids[idx] = a.t2[op][r0*a.nreps[op][1]+r1]
			}
		})
	}
	staticLevels.Put(lv)
	lab.BindStates(a.states)
	return lab
}

// LabelParallel implements reduce.ParallelLabeler.
func (a *Static) LabelParallel(f *ir.Forest, workers int, m *metrics.Counters) reduce.Labeling {
	return a.LabelStatesParallel(f, workers, m)
}
