package automaton

import (
	"errors"
	"fmt"

	"repro/internal/grammar"
)

// The hybrid engine's offline half: the fixed-operator-subset closure of a
// full grammar. Where the plain offline generator refuses grammars with
// dynamic-cost rules outright (and StripDynamic changes the grammar — rule
// ids are renumbered and orphaned helpers dropped, so stripped-grammar
// states are NOT states of the full grammar), the fixed-subset closure
// keeps the full grammar and simply excludes the dynamic operators from
// seeding and transition tabulation. Every state it interns is therefore a
// genuine full-grammar state: seeding those states into an on-demand
// engine's table (which hash-conses by content) gives both halves of the
// hybrid one id space, and labelings that mix offline and on-demand
// answers compose into a single consistent Labeling.
//
// Soundness of the per-position representer projection is unchanged:
// chain rules can never carry dynamic costs (the grammar normalizer
// rejects them), so Compute for a fixed operator over the full grammar
// reads exactly the kid deltas its base rules name — the same relevant
// sets the projection is keyed on.

// ErrNoFixedClosure is the typed failure of hybrid table generation and
// loading for a grammar whose every leaf operator carries dynamic rules:
// there is nothing to seed the fixed closure with, so the "offline half"
// would be empty and a hybrid engine would be the on-demand engine with
// extra steps. Match with errors.Is; callers should fall back to
// KindOnDemand.
var ErrNoFixedClosure = errors.New("automaton: no fixed-operator closure (every leaf operator has dynamic-cost rules); use the on-demand engine")

// GenerateHybridTables computes the fixed-operator-subset closure of g —
// a grammar that MAY have dynamic-cost rules — and returns it as a
// TableSet in the same wire shape full offline tables use: dynamic
// operators carry zero representer classes, all-zero projection rows (the
// encoder emits one row per child position unconditionally) and empty
// transition tables. Loading such a set through NewStaticFromTables fails
// (a projection onto zero classes is invalid there), which is exactly
// right: only NewHybridOverlay, which knows dynamic operators fall
// through, accepts it.
//
// For a grammar without dynamic rules the fixed subset is the whole
// grammar and the result is identical to Export of a full generation.
func GenerateHybridTables(g *grammar.Grammar, cfg StaticConfig) (*TableSet, GenStats, error) {
	seedable := false
	for op := 0; op < g.NumOps(); op++ {
		if g.Ops[op].Arity == 0 && !g.HasDynRules(grammar.OpID(op)) {
			seedable = true
			break
		}
	}
	if !seedable {
		return nil, GenStats{}, fmt.Errorf("grammar %s: %w", g.Name, ErrNoFixedClosure)
	}
	if cfg.DeltaCap == 0 {
		cfg.DeltaCap = DefaultDeltaCap
	}
	if cfg.MaxStates == 0 {
		cfg.MaxStates = 1 << 20
	}
	gen := newGenerator(g, cfg, true)
	if err := gen.run(); err != nil {
		return nil, GenStats{}, err
	}
	return gen.finishHybrid()
}

// finishHybrid flattens a fixed-subset generation into a TableSet (see
// GenerateHybridTables for the dynamic-operator placeholder convention).
func (gen *generator) finishHybrid() (*TableSet, GenStats, error) {
	g := gen.g
	states := gen.table.States()
	numNT := g.NumNonterms()
	ts := &TableSet{
		NumNT:  numNT,
		Deltas: make([]grammar.Cost, 0, len(states)*numNT),
		Rules:  make([]int32, 0, len(states)*numNT),
		Leaf:   gen.leaf,
		NReps:  make([][2]int32, g.NumOps()),
		Mu:     make([][2][]int32, g.NumOps()),
		T1:     make([][]int32, g.NumOps()),
		T2:     make([][]int32, g.NumOps()),
	}
	for _, s := range states {
		ts.Deltas = append(ts.Deltas, s.Delta...)
		ts.Rules = append(ts.Rules, s.Rule...)
	}
	totalReps := 0
	tableBytes := gen.table.MemoryBytes()
	for op := 0; op < g.NumOps(); op++ {
		arity := g.Ops[op].Arity
		if arity == 0 {
			continue
		}
		if gen.reps[op][0] == nil {
			// Dynamic operator: zero classes, placeholder projection rows
			// sized for the wire format's unconditional per-position row.
			for p := 0; p < arity; p++ {
				ts.Mu[op][p] = make([]int32, len(states))
			}
			continue
		}
		for p := 0; p < arity; p++ {
			rs := gen.reps[op][p]
			ts.Mu[op][p] = rs.repOf
			ts.NReps[op][p] = int32(len(rs.sample))
			totalReps += len(rs.sample)
			tableBytes += 4 * len(rs.repOf)
		}
		if arity == 1 {
			t := make([]int32, ts.NReps[op][0])
			for key, sid := range gen.trans[op] {
				t[int32(key>>32)] = sid
			}
			ts.T1[op] = t
			tableBytes += 4 * len(t)
		} else {
			n1 := ts.NReps[op][1]
			t := make([]int32, ts.NReps[op][0]*n1)
			for key, sid := range gen.trans[op] {
				t[int32(key>>32)*n1+int32(uint32(key))] = sid
			}
			ts.T2[op] = t
			tableBytes += 4 * len(t)
		}
	}
	st := GenStats{
		States:              len(states),
		Representers:        totalReps,
		TransitionsComputed: gen.nTr,
		TableBytes:          tableBytes,
	}
	return ts, st, nil
}

// HybridOverlay is the validated, expanded serving form of a hybrid table
// set: everything the hybrid engine needs to answer fixed-operator
// transitions by direct state-id-indexed loads and to seed its on-demand
// table with the offline states. Immutable after construction except for
// the seed vectors, whose ownership passes to the engine's state table.
type HybridOverlay struct {
	g *grammar.Grammar
	// Deltas/Rules are the blob's state vectors in id order. The hybrid
	// engine interns them into its (empty) on-demand table at
	// construction — ids are preserved because interning into an empty
	// table assigns ids in call order — after which the slices belong to
	// the table.
	Deltas [][]grammar.Cost
	Rules  [][]int32
	// Leaf[op] is the offline state id of fixed arity-0 operators; -1 for
	// dynamic (and non-leaf) operators.
	Leaf []int32
	// Dir1[op][kid] and Dir2[op][l*NumStates()+r] are the expanded direct
	// transition arrays of the fixed operators — plain non-atomic loads,
	// the offline engine's serving layout. nil per operator for dynamic
	// operators; nil for every operator when the closure exceeds
	// ExpandMaxStates (the quadratic grids stop being a kilobyte trade
	// there — the engine then seeds states only and lets its own dense
	// tables warm under traffic).
	Dir1 [][]int32
	Dir2 [][]int32
	// Entries counts the compressed transition cells the table set
	// carried (the offline share of NumTransitions).
	Entries int
}

// NumStates returns the number of offline states the overlay seeds.
func (ov *HybridOverlay) NumStates() int { return len(ov.Deltas) }

// Grammar returns the full grammar the overlay serves.
func (ov *HybridOverlay) Grammar() *grammar.Grammar { return ov.g }

// MemoryBytes estimates the overlay's own footprint: the expanded direct
// arrays plus the leaf row. The seeded state vectors are not counted here —
// after construction they live in (and are accounted by) the engine's
// state table.
func (ov *HybridOverlay) MemoryBytes() int {
	b := 4 * len(ov.Leaf)
	for op := range ov.Dir1 {
		b += 4 * len(ov.Dir1[op])
	}
	for op := range ov.Dir2 {
		b += 4 * len(ov.Dir2[op])
	}
	return b
}

// NewHybridOverlay validates a fixed-subset table set against the full
// grammar g and expands its fixed-operator tables into direct
// state-id-indexed arrays (bounded by ExpandMaxStates, like the offline
// serving path). Validation mirrors NewStaticFromTables — cost-normalized
// state vectors, complete projection rows, in-range ids — with the hybrid
// conventions enforced on top: dynamic operators must carry no classes, no
// transitions and no leaf state, so a full-table blob cannot be confused
// for a hybrid one or vice versa. A set with no states at all (a blob
// somehow produced for a grammar with no fixed leaf operators) fails with
// ErrNoFixedClosure.
//
// The overlay takes ownership of ts.
func NewHybridOverlay(g *grammar.Grammar, ts *TableSet) (*HybridOverlay, error) {
	numNT := g.NumNonterms()
	numOps := g.NumOps()
	if ts.NumNT != numNT {
		return nil, fmt.Errorf("automaton: hybrid table set has %d nonterminals, grammar %s has %d", ts.NumNT, g.Name, numNT)
	}
	if numNT == 0 || len(ts.Deltas)%numNT != 0 || len(ts.Rules) != len(ts.Deltas) {
		return nil, fmt.Errorf("automaton: malformed hybrid state vectors (%d deltas, %d rules, %d nonterminals)",
			len(ts.Deltas), len(ts.Rules), numNT)
	}
	if len(ts.Leaf) != numOps || len(ts.NReps) != numOps || len(ts.Mu) != numOps ||
		len(ts.T1) != numOps || len(ts.T2) != numOps {
		return nil, fmt.Errorf("automaton: hybrid table set sized for %d operators, grammar %s has %d", len(ts.Leaf), g.Name, numOps)
	}
	numStates := len(ts.Deltas) / numNT
	if numStates == 0 {
		return nil, fmt.Errorf("automaton: empty hybrid table set for grammar %s: %w", g.Name, ErrNoFixedClosure)
	}

	ov := &HybridOverlay{
		g:       g,
		Deltas:  make([][]grammar.Cost, numStates),
		Rules:   make([][]int32, numStates),
		Leaf:    ts.Leaf,
		Entries: ts.TransitionEntries(),
	}
	seen := map[string]bool{}
	// One contiguous backing block for all state vectors: the seeds are
	// interned into the engine's table as-is (Intern retains slices), so
	// laying them out densely means the reducer's per-node Delta/Rule reads
	// over the offline states walk packed cache lines — a locality the
	// on-demand engine, whose states are allocated one miss at a time all
	// over the heap, never gets.
	deltaBack := make([]grammar.Cost, numStates*numNT)
	ruleBack := make([]int32, numStates*numNT)
	for s := 0; s < numStates; s++ {
		delta := deltaBack[s*numNT : (s+1)*numNT : (s+1)*numNT]
		rule := ruleBack[s*numNT : (s+1)*numNT : (s+1)*numNT]
		copy(delta, ts.Deltas[s*numNT:(s+1)*numNT])
		copy(rule, ts.Rules[s*numNT:(s+1)*numNT])
		for nt := 0; nt < numNT; nt++ {
			if rule[nt] < -1 || rule[nt] >= int32(g.NumRules()) {
				return nil, fmt.Errorf("automaton: hybrid state %d references rule %d outside grammar %s", s, rule[nt], g.Name)
			}
			if delta[nt] < 0 {
				return nil, fmt.Errorf("automaton: hybrid state %d has negative cost %d for nonterminal %d", s, delta[nt], nt)
			}
			if delta[nt].IsInf() != (rule[nt] == -1) {
				return nil, fmt.Errorf("automaton: hybrid state %d is not cost-normalized at nonterminal %d (delta %d, rule %d)",
					s, nt, delta[nt], rule[nt])
			}
		}
		key := stateKey(delta, rule)
		if seen[key] {
			// Duplicate vectors would intern to one id and shift every later
			// seed off its blob id — the overlay's transition cells would
			// then point at the wrong states.
			return nil, fmt.Errorf("automaton: duplicate state %d in hybrid table set", s)
		}
		seen[key] = true
		ov.Deltas[s] = delta
		ov.Rules[s] = rule
	}

	checkState := func(what string, id int32) error {
		if id < 0 || int(id) >= numStates {
			return fmt.Errorf("automaton: hybrid %s references state %d of %d", what, id, numStates)
		}
		return nil
	}
	for op := 0; op < numOps; op++ {
		opName := g.OpName(grammar.OpID(op))
		arity := g.Ops[op].Arity
		if g.HasDynRules(grammar.OpID(op)) {
			// Dynamic operator: the blob must carry nothing for it beyond
			// the wire format's placeholder projection rows.
			if ts.Leaf[op] != -1 || ts.NReps[op][0] != 0 || ts.NReps[op][1] != 0 ||
				len(ts.T1[op]) != 0 || len(ts.T2[op]) != 0 {
				return nil, fmt.Errorf("automaton: dynamic operator %s carries offline tables in a hybrid set (not a fixed-subset blob?)", opName)
			}
			for p := 0; p < arity; p++ {
				if len(ts.Mu[op][p]) != numStates {
					return nil, fmt.Errorf("automaton: dynamic operator %s position %d: placeholder row has %d entries, want %d",
						opName, p, len(ts.Mu[op][p]), numStates)
				}
			}
			continue
		}
		if arity == 0 {
			if err := checkState(fmt.Sprintf("leaf operator %s", opName), ts.Leaf[op]); err != nil {
				return nil, err
			}
			continue
		}
		for p := 0; p < arity; p++ {
			nreps := ts.NReps[op][p]
			if len(ts.Mu[op][p]) != numStates {
				return nil, fmt.Errorf("automaton: operator %s position %d: projection row has %d entries, want %d states",
					opName, p, len(ts.Mu[op][p]), numStates)
			}
			for _, rep := range ts.Mu[op][p] {
				if rep < 0 || rep >= nreps {
					return nil, fmt.Errorf("automaton: operator %s position %d: representer %d of %d",
						opName, p, rep, nreps)
				}
			}
		}
		var cells []int32
		if arity == 1 {
			cells = ts.T1[op]
			if len(cells) != int(ts.NReps[op][0]) {
				return nil, fmt.Errorf("automaton: operator %s: %d unary transitions, want %d",
					opName, len(cells), ts.NReps[op][0])
			}
		} else {
			cells = ts.T2[op]
			want := int(ts.NReps[op][0]) * int(ts.NReps[op][1])
			if len(cells) != want {
				return nil, fmt.Errorf("automaton: operator %s: %d binary transitions, want %d",
					opName, len(cells), want)
			}
		}
		for _, id := range cells {
			if err := checkState(fmt.Sprintf("operator %s transition", opName), id); err != nil {
				return nil, err
			}
		}
	}

	// Expand the fixed operators into direct arrays — the overlay's whole
	// point is answering in plain loads. Past ExpandMaxStates the engine
	// serves seed-states-only (still correct: every fixed transition just
	// reconstructs on demand, landing on the same content-addressed ids).
	if numStates <= ExpandMaxStates {
		ov.Dir1 = make([][]int32, numOps)
		ov.Dir2 = make([][]int32, numOps)
		for op := 0; op < numOps; op++ {
			if g.HasDynRules(grammar.OpID(op)) {
				continue
			}
			switch g.Ops[op].Arity {
			case 1:
				row := make([]int32, numStates)
				mu0 := ts.Mu[op][0]
				for kid := 0; kid < numStates; kid++ {
					row[kid] = ts.T1[op][mu0[kid]]
				}
				ov.Dir1[op] = row
			case 2:
				grid := make([]int32, numStates*numStates)
				mu0, mu1 := ts.Mu[op][0], ts.Mu[op][1]
				n1 := ts.NReps[op][1]
				for l := 0; l < numStates; l++ {
					r0 := mu0[l] * n1
					for r := 0; r < numStates; r++ {
						grid[l*numStates+r] = ts.T2[op][r0+mu1[r]]
					}
				}
				ov.Dir2[op] = grid
			}
		}
	}
	return ov, nil
}
