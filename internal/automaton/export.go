package automaton

import (
	"fmt"

	"repro/internal/grammar"
)

// TableSet is the flat, exported form of a fully generated (offline)
// automaton: every state's cost-normalized vectors plus the complete
// leaf/unary/binary transition tables in Chase-compressed representer
// form. It is the unit of exchange between the generator (internal/gen
// compiles a grammar's closure into a TableSet and serializes it) and the
// serving side (NewStaticFromTables turns a decoded TableSet back into a
// labeling automaton without re-running any closure work).
//
// All slices are laid out exactly as Static stores them; a TableSet handed
// to NewStaticFromTables is owned by the automaton afterwards and must not
// be mutated.
type TableSet struct {
	// NumNT is the grammar's nonterminal count; state vectors are rows of
	// this width.
	NumNT int
	// Deltas/Rules hold the state vectors row-major: state s's entry for
	// nonterminal nt sits at s*NumNT+nt. len = NumStates*NumNT.
	Deltas []grammar.Cost
	Rules  []int32
	// Leaf[op] is the state id of arity-0 operator op (-1 for operators
	// with children).
	Leaf []int32
	// NReps[op][p] is the number of representer classes at child position p
	// of op; Mu[op][p][stateID] projects a state onto its class.
	NReps [][2]int32
	Mu    [][2][]int32
	// T1[op][rep0] (unary) and T2[op][rep0*NReps[op][1]+rep1] (binary) are
	// the transition tables, holding state ids.
	T1 [][]int32
	T2 [][]int32
}

// NumStates returns the number of states the set describes.
func (ts *TableSet) NumStates() int {
	if ts.NumNT == 0 {
		return 0
	}
	return len(ts.Deltas) / ts.NumNT
}

// TransitionEntries counts the tabulated transition cells (the figure
// NumTransitions reports after a load).
func (ts *TableSet) TransitionEntries() int {
	n := 0
	for op := range ts.T1 {
		n += len(ts.T1[op]) + len(ts.T2[op])
	}
	return n
}

// Export flattens the automaton into a TableSet. The returned set aliases
// the automaton's internal tables and must be treated as read-only.
func (a *Static) Export() *TableSet {
	numNT := a.g.NumNonterms()
	ts := &TableSet{
		NumNT:  numNT,
		Deltas: make([]grammar.Cost, 0, len(a.states)*numNT),
		Rules:  make([]int32, 0, len(a.states)*numNT),
		Leaf:   a.leaf,
		NReps:  a.nreps,
		Mu:     a.mu,
		T1:     a.t1,
		T2:     a.t2,
	}
	for _, s := range a.states {
		ts.Deltas = append(ts.Deltas, s.Delta...)
		ts.Rules = append(ts.Rules, s.Rule...)
	}
	return ts
}

// NewStaticFromTables reconstitutes a labeling automaton from a TableSet
// generated for exactly g (callers check the grammar fingerprint first;
// this function validates structure, not provenance). No closure work
// runs: states are re-interned for canonical identity and the transition
// tables are adopted as-is, so construction cost is linear in table size —
// the instant-warm start the offline generator exists for.
//
// The automaton takes ownership of ts.
func NewStaticFromTables(g *grammar.Grammar, ts *TableSet) (*Static, error) {
	numNT := g.NumNonterms()
	numOps := g.NumOps()
	if ts.NumNT != numNT {
		return nil, fmt.Errorf("automaton: table set has %d nonterminals, grammar %s has %d", ts.NumNT, g.Name, numNT)
	}
	if numNT == 0 || len(ts.Deltas)%numNT != 0 || len(ts.Rules) != len(ts.Deltas) {
		return nil, fmt.Errorf("automaton: malformed state vectors (%d deltas, %d rules, %d nonterminals)",
			len(ts.Deltas), len(ts.Rules), numNT)
	}
	if len(ts.Leaf) != numOps || len(ts.NReps) != numOps || len(ts.Mu) != numOps ||
		len(ts.T1) != numOps || len(ts.T2) != numOps {
		return nil, fmt.Errorf("automaton: table set sized for %d operators, grammar %s has %d", len(ts.Leaf), g.Name, numOps)
	}
	numStates := len(ts.Deltas) / numNT
	if numStates == 0 {
		return nil, fmt.Errorf("automaton: empty table set")
	}

	table := NewTable(g)
	for s := 0; s < numStates; s++ {
		delta := make([]grammar.Cost, numNT)
		rule := make([]int32, numNT)
		copy(delta, ts.Deltas[s*numNT:(s+1)*numNT])
		copy(rule, ts.Rules[s*numNT:(s+1)*numNT])
		for nt := 0; nt < numNT; nt++ {
			// Every legitimate state is cost-normalized: a finite,
			// non-negative delta pairs with a valid rule id, an infinite
			// delta with exactly -1. A vector violating that is body
			// corruption the framing checks cannot see; reject it here
			// rather than panic (or silently mislabel) at serve time.
			if rule[nt] < -1 || rule[nt] >= int32(g.NumRules()) {
				return nil, fmt.Errorf("automaton: state %d references rule %d outside grammar %s", s, rule[nt], g.Name)
			}
			if delta[nt] < 0 {
				return nil, fmt.Errorf("automaton: state %d has negative cost %d for nonterminal %d", s, delta[nt], nt)
			}
			if delta[nt].IsInf() != (rule[nt] == -1) {
				return nil, fmt.Errorf("automaton: state %d is not cost-normalized at nonterminal %d (delta %d, rule %d)",
					s, nt, delta[nt], rule[nt])
			}
		}
		st, created := table.Intern(delta, rule, nil)
		if !created || st.ID != int32(s) {
			return nil, fmt.Errorf("automaton: duplicate state %d in table set", s)
		}
	}

	checkState := func(what string, id int32) error {
		if id < 0 || int(id) >= numStates {
			return fmt.Errorf("automaton: %s references state %d of %d", what, id, numStates)
		}
		return nil
	}
	for op := 0; op < numOps; op++ {
		arity := g.Ops[op].Arity
		if arity == 0 {
			if err := checkState(fmt.Sprintf("leaf operator %s", g.OpName(grammar.OpID(op))), ts.Leaf[op]); err != nil {
				return nil, err
			}
			continue
		}
		for p := 0; p < arity; p++ {
			nreps := ts.NReps[op][p]
			if len(ts.Mu[op][p]) != numStates {
				return nil, fmt.Errorf("automaton: operator %s position %d: projection row has %d entries, want %d states",
					g.OpName(grammar.OpID(op)), p, len(ts.Mu[op][p]), numStates)
			}
			for _, rep := range ts.Mu[op][p] {
				if rep < 0 || rep >= nreps {
					return nil, fmt.Errorf("automaton: operator %s position %d: representer %d of %d",
						g.OpName(grammar.OpID(op)), p, rep, nreps)
				}
			}
		}
		var cells []int32
		if arity == 1 {
			cells = ts.T1[op]
			if len(cells) != int(ts.NReps[op][0]) {
				return nil, fmt.Errorf("automaton: operator %s: %d unary transitions, want %d",
					g.OpName(grammar.OpID(op)), len(cells), ts.NReps[op][0])
			}
		} else {
			cells = ts.T2[op]
			// The product is computed in int: an int32 multiply could wrap
			// for crafted rep counts and slip a short table past the check.
			want := int(ts.NReps[op][0]) * int(ts.NReps[op][1])
			if len(cells) != want {
				return nil, fmt.Errorf("automaton: operator %s: %d binary transitions, want %d",
					g.OpName(grammar.OpID(op)), len(cells), want)
			}
		}
		for _, id := range cells {
			if err := checkState(fmt.Sprintf("operator %s transition", g.OpName(grammar.OpID(op))), id); err != nil {
				return nil, err
			}
		}
	}

	a := &Static{
		g:        g,
		table:    table,
		states:   table.States(),
		deltaCap: DefaultDeltaCap,
		leaf:     ts.Leaf,
		mu:       ts.Mu,
		nreps:    ts.NReps,
		t1:       ts.T1,
		t2:       ts.T2,
	}
	a.labels.New = func() any { return &Labeling{} }
	totalReps := 0
	for op := 0; op < numOps; op++ {
		totalReps += int(ts.NReps[op][0] + ts.NReps[op][1])
	}
	a.Gen = GenStats{
		States:              numStates,
		Representers:        totalReps,
		TransitionsComputed: ts.TransitionEntries(),
		TableBytes:          a.MemoryBytes(),
	}
	// Serving automata trade memory for the fastest per-node lookup: the
	// blob ships compressed, the loaded tables label through direct
	// state-id-indexed arrays.
	a.Expand()
	return a, nil
}
