package frontend

import (
	"strings"
	"testing"

	"repro/internal/dp"
	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/reduce"
)

func TestLexBasics(t *testing.T) {
	l := NewLexer("int x = 42; // comment\nx <<= 3; /* block\ncomment */ y != z")
	var kinds []Kind
	var texts []string
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Kind == EOF {
			break
		}
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"int", "x", "=", "42", ";", "x", "<<=", "3", ";", "y", "!=", "z"}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v, want %v", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token[%d] = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[0] != KEYWORD || kinds[1] != IDENT || kinds[3] != NUMBER {
		t.Errorf("kinds wrong: %v", kinds)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	l := NewLexer("/* never ends")
	if _, err := l.Next(); err == nil {
		t.Error("expected error")
	}
}

func TestParseSimpleProgram(t *testing.T) {
	prog := MustParse(`
int g;
int arr[10];
int add(int a, int b) { return a + b; }
int main() {
	int x = add(1, 2);
	if (x > 2) { g = x; } else { g = 0; }
	while (x < 10) { x += 1; }
	for (x = 0; x < 5; x += 1) { arr[x] = x; }
	return g;
}
`)
	if len(prog.Globals) != 2 || len(prog.Funcs) != 2 {
		t.Fatalf("globals=%d funcs=%d", len(prog.Globals), len(prog.Funcs))
	}
	if prog.Globals[1].Size != 10 {
		t.Errorf("array size = %d", prog.Globals[1].Size)
	}
	if got := prog.Funcs[0].Params; len(got) != 2 || got[0] != "a" {
		t.Errorf("params = %v", got)
	}
	if len(prog.Funcs[1].Body) != 5 {
		t.Errorf("main body stmts = %d, want 5", len(prog.Funcs[1].Body))
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := MustParse(`int f() { return 1 + 2 * 3 << 1 & 7; }`)
	ret := prog.Funcs[0].Body[0].(*ReturnStmt)
	// & binds loosest: (((1 + (2*3)) << 1) & 7)
	and, ok := ret.Value.(*BinExpr)
	if !ok || and.Op != "&" {
		t.Fatalf("top = %#v, want &", ret.Value)
	}
	shl, ok := and.L.(*BinExpr)
	if !ok || shl.Op != "<<" {
		t.Fatalf("next = %#v, want <<", and.L)
	}
	add, ok := shl.L.(*BinExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("next = %#v, want +", shl.L)
	}
	mul, ok := add.R.(*BinExpr)
	if !ok || mul.Op != "*" {
		t.Fatalf("rhs = %#v, want *", add.R)
	}
}

func TestParseElseIf(t *testing.T) {
	prog := MustParse(`int f(int x) {
		if (x == 1) { return 1; } else if (x == 2) { return 2; } else { return 3; }
	}`)
	ifs := prog.Funcs[0].Body[0].(*IfStmt)
	if len(ifs.Else) != 1 {
		t.Fatal("else-if chain not nested")
	}
	if _, ok := ifs.Else[0].(*IfStmt); !ok {
		t.Fatal("else branch is not an if")
	}
}

func TestParseErrors(t *testing.T) {
	for name, src := range map[string]string{
		"missing semicolon": "int f() { return 1 }",
		"logical and":       "int f(int a, int b) { if (a && b) { return 1; } return 0; }",
		"bad assign target": "int f() { 1 = 2; return 0; }",
		"bad top level":     "float f() { }",
		"unterminated":      "int f() { ",
		"bad param":         "int f(float x) { return 0; }",
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse(src); err == nil {
				t.Errorf("expected parse error for %q", src)
			}
		})
	}
}

func TestLowerSharesRMWAddress(t *testing.T) {
	d := md.MustLoad("x86")
	g := d.Grammar
	prog := MustParse(`
int g;
int f(int i) {
	int x;
	x = 0;
	x = x + 1;
	g += i;
	return x;
}`)
	unit, err := Lower(prog, g)
	if err != nil {
		t.Fatal(err)
	}
	f := unit.Funcs[0].Forest
	// Find ASGN roots whose value is ADD(INDIR(addr), ...) and check the
	// address node is shared (same pointer).
	asgn := g.MustOp("ASGN")
	add := g.MustOp("ADD")
	indir := g.MustOp("INDIR")
	shared := 0
	for _, r := range f.Roots {
		if r.Op != asgn || len(r.Kids) != 2 {
			continue
		}
		v := r.Kids[1]
		if v.Op == add && v.Kids[0].Op == indir && v.Kids[0].Kids[0] == r.Kids[0] {
			shared++
		}
	}
	if shared != 2 { // x = x + 1 and g += i
		t.Errorf("shared-address RMW statements = %d, want 2", shared)
	}
}

func TestLowerSelectsRMWOnX86(t *testing.T) {
	d := md.MustLoad("x86")
	g := d.Grammar
	prog := MustParse(`int g; int f() { g += 5; return g; }`)
	unit := MustLower(prog, g)
	l, err := dp.New(g, d.Env, nil)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := reduce.New(g, d.Env, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := unit.Funcs[0].Forest
	deriv, err := rd.Trace(f, l.Label(f))
	if err != nil {
		t.Fatal(err)
	}
	// The g += 5 statement must be covered by an RMW rule (dyn x86.memop):
	found := false
	for _, s := range deriv.Steps {
		if g.Rules[s.RuleIndex].DynCost == "x86.memop" {
			found = true
		}
	}
	if !found {
		t.Errorf("no RMW rule in derivation: %s", deriv.String(g))
	}
}

func TestLowerArrayIndexing(t *testing.T) {
	d := md.MustLoad("x86")
	g := d.Grammar
	prog := MustParse(`
int a[16];
int f(int i) {
	a[3] = 7;
	return a[i];
}`)
	unit := MustLower(prog, g)
	f := unit.Funcs[0].Forest
	txt := f.String(g)
	// Constant index folds into a displacement (int elements are 4 bytes).
	if !strings.Contains(txt, "ADD(ADDRG[a], CNST[12])") {
		t.Errorf("constant index not folded:\n%s", txt)
	}
	// Accesses use the 4-byte operators.
	if !strings.Contains(txt, "ASGN4(") || !strings.Contains(txt, "INDIR4(") {
		t.Errorf("int arrays must use 4-byte memory operators:\n%s", txt)
	}
	// Variable index becomes a scaled address.
	if !strings.Contains(txt, "SHL(") {
		t.Errorf("variable index not scaled:\n%s", txt)
	}
}

func TestLowerControlFlow(t *testing.T) {
	d := md.MustLoad("jit64")
	g := d.Grammar
	prog := MustParse(`
int f(int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i += 1) {
		if (i % 2 == 0) { s += i; }
	}
	while (s > 100) { s -= 10; }
	return s;
}`)
	unit := MustLower(prog, g)
	f := unit.Funcs[0].Forest
	counts := map[string]int{}
	for _, n := range f.Nodes {
		counts[g.OpName(n.Op)]++
	}
	if counts["LABEL"] < 4 {
		t.Errorf("labels = %d, want >= 4 (for loop + while + if)", counts["LABEL"])
	}
	if counts["JUMP"] < 2 {
		t.Errorf("jumps = %d, want >= 2 (loop backedges)", counts["JUMP"])
	}
	// Every root must be derivable from stmt.
	l, err := dp.New(g, d.Env, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := l.LabelResult(f)
	for i, r := range f.Roots {
		if !res.Derivable(r) {
			t.Errorf("root %d (%s) not derivable", i, g.OpName(r.Op))
		}
	}
}

func TestLowerParamsSpilled(t *testing.T) {
	d := md.MustLoad("mips")
	g := d.Grammar
	prog := MustParse(`int f(int a, int b) { return a + b; }`)
	unit := MustLower(prog, g)
	f := unit.Funcs[0].Forest
	argregs := 0
	for _, n := range f.Nodes {
		if g.OpName(n.Op) == "ARGREG" {
			argregs++
		}
	}
	if argregs != 2 {
		t.Errorf("ARGREG nodes = %d, want 2", argregs)
	}
	if unit.Funcs[0].FrameSize != 16 {
		t.Errorf("frame = %d, want 16 (two spilled params)", unit.Funcs[0].FrameSize)
	}
}

func TestLowerErrors(t *testing.T) {
	g := md.MustLoad("demo").Grammar // lacks the generic IR operators
	prog := MustParse(`int f() { return 1; }`)
	if _, err := Lower(prog, g); err == nil {
		t.Error("expected vocabulary-mismatch error for the demo grammar")
	}
}

func TestLowerUndefinedVariable(t *testing.T) {
	g := md.MustLoad("x86").Grammar
	prog := MustParse(`int f() { return nope; }`)
	if _, err := Lower(prog, g); err == nil {
		t.Error("expected undefined-variable error")
	}
	prog2 := MustParse(`int f() { ghost = 1; return 0; }`)
	if _, err := Lower(prog2, g); err == nil {
		t.Error("expected undefined-target error")
	}
	prog3 := MustParse(`int a[4]; int f() { a = 1; return 0; }`)
	if _, err := Lower(prog3, g); err == nil {
		t.Error("expected cannot-assign-to-array error")
	}
	prog4 := MustParse(`int f() { int x; int x; return 0; }`)
	if _, err := Lower(prog4, g); err == nil {
		t.Error("expected duplicate-local error")
	}
	prog5 := MustParse(`int f(int x) { return (x < 1) + 2; }`)
	if _, err := Lower(prog5, g); err == nil {
		t.Error("expected comparison-in-value-context error")
	}
}

func TestForestsTopoValid(t *testing.T) {
	g := md.MustLoad("x86").Grammar
	prog := MustParse(`
int a[8];
int f(int n) {
	int i;
	for (i = 0; i < n; i += 1) { a[i] = f(i - 1) + a[i - 1]; }
	return a[n - 1];
}`)
	unit := MustLower(prog, g)
	for _, fn := range unit.Funcs {
		if err := ir.CheckTopo(fn.Forest); err != nil {
			t.Errorf("%s: %v", fn.Name, err)
		}
	}
}
