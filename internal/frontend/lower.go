package frontend

import (
	"fmt"

	"repro/internal/grammar"
	"repro/internal/ir"
)

// Function is a lowered MinC function: one IR forest whose roots are the
// function's statements in order, lcc-style.
type Function struct {
	Name      string
	Forest    *ir.Forest
	FrameSize int64
}

// Unit is a lowered compilation unit.
type Unit struct {
	Funcs []*Function
}

// TotalNodes sums IR nodes over all functions.
func (u *Unit) TotalNodes() int {
	n := 0
	for _, f := range u.Funcs {
		n += f.Forest.NumNodes()
	}
	return n
}

// Lower lowers a parsed program to IR forests over g's operator
// vocabulary.
//
// Lowering conventions (deliberately lcc-flavored):
//   - all variables live in memory: locals and arrays at negative frame
//     offsets (ADDRL), globals at symbols (ADDRG); incoming parameters are
//     stored from ARGREG into their frame slot at function entry;
//   - array elements are 8 bytes: a[i] addresses as
//     ADD(base, SHL(i, CNST[3])), folding constant indexes into
//     displacements — exactly the patterns the scaled-index and
//     displacement addressing rules match;
//   - read-modify-write statements (x += e, a[i] = a[i] + 1) share the
//     address node between load and store, producing the DAG edge that
//     the memop dynamic rules require;
//   - control flow lowers to LABEL/JUMP/compare-branch roots with branch
//     targets in the node payload.
func Lower(prog *Program, g *grammar.Grammar) (unit *Unit, err error) {
	// Vocabulary mismatches surface as MustOp panics deep inside the
	// builder; report them as errors — a grammar that lacks the generic IR
	// operators is an input problem, not a bug.
	defer func() {
		if r := recover(); r != nil {
			unit, err = nil, fmt.Errorf("minc: grammar %s cannot host MinC programs: %v", g.Name, r)
		}
	}()
	unit = &Unit{}
	globals := map[string]*GlobalDecl{}
	for _, gd := range prog.Globals {
		if _, dup := globals[gd.Name]; dup {
			return nil, fmt.Errorf("minc:%d: duplicate global %q", gd.Line, gd.Name)
		}
		globals[gd.Name] = gd
	}
	funcs := map[string]bool{}
	for _, fd := range prog.Funcs {
		funcs[fd.Name] = true
	}
	for _, fd := range prog.Funcs {
		lw := &lowerer{
			g:       g,
			b:       ir.NewBuilder(g),
			globals: globals,
			funcs:   funcs,
			locals:  map[string]*localSlot{},
		}
		if err := lw.function(fd); err != nil {
			return nil, err
		}
		unit.Funcs = append(unit.Funcs, &Function{
			Name:      fd.Name,
			Forest:    lw.b.Finish(),
			FrameSize: -lw.frame,
		})
	}
	return unit, nil
}

// MustLower panics on error; for statically known workload programs.
func MustLower(prog *Program, g *grammar.Grammar) *Unit {
	u, err := Lower(prog, g)
	if err != nil {
		panic(err)
	}
	return u
}

type localSlot struct {
	offset  int64
	isArray bool
	elem    string
}

// elemInfo describes an element type's width and memory operators.
type elemInfo struct {
	size            int64
	shift           int64 // log2(size); -1 for size 1
	indirOp, asgnOp string
}

// elems maps MinC element types to access widths, lcc-style: char/short/
// int/long are 1/2/4/8 bytes; scalars always live in full 8-byte slots.
var elems = map[string]elemInfo{
	"char":  {1, -1, "INDIR1", "ASGN1"},
	"short": {2, 1, "INDIR2", "ASGN2"},
	"int":   {4, 2, "INDIR4", "ASGN4"},
	"long":  {8, 3, "INDIR", "ASGN"},
}

type lowerer struct {
	g       *grammar.Grammar
	b       *ir.Builder
	globals map[string]*GlobalDecl
	funcs   map[string]bool
	locals  map[string]*localSlot
	frame   int64 // current (negative) frame offset
	labels  int64
}

func (lw *lowerer) errf(line int, format string, args ...any) error {
	return fmt.Errorf("minc:%d: %s", line, fmt.Sprintf(format, args...))
}

func (lw *lowerer) newLabel() int64 {
	lw.labels++
	return lw.labels
}

func (lw *lowerer) alloc(name string, bytes int64, isArray bool, elem string) *localSlot {
	bytes = (bytes + 7) &^ 7 // 8-byte frame alignment
	lw.frame -= bytes
	s := &localSlot{offset: lw.frame, isArray: isArray, elem: elem}
	lw.locals[name] = s
	return s
}

func (lw *lowerer) function(fd *FuncDecl) error {
	lw.locals = map[string]*localSlot{}
	lw.frame = 0
	// Spill incoming parameters to frame slots.
	for i, p := range fd.Params {
		s := lw.alloc(p, 8, false, "long")
		arg := lw.b.Leaf("ARGREG", int64(i))
		lw.b.Root(lw.b.OpNode(lw.g.MustOp("ASGN"), 0, "", lw.b.Leaf("ADDRL", s.offset), arg))
	}
	return lw.stmts(fd.Body)
}

func (lw *lowerer) stmts(list []Stmt) error {
	for _, s := range list {
		if err := lw.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) stmt(s Stmt) error {
	switch s := s.(type) {
	case *DeclStmt:
		if _, dup := lw.locals[s.Name]; dup {
			return lw.errf(s.Line, "duplicate local %q", s.Name)
		}
		bytes := int64(8)
		elem := s.Elem
		if s.Size > 0 {
			bytes = s.Size * elems[elem].size
		} else {
			elem = "long" // scalars always occupy a full slot
		}
		slot := lw.alloc(s.Name, bytes, s.Size > 0, elem)
		if s.Init != nil {
			val, err := lw.expr(s.Init, nil)
			if err != nil {
				return err
			}
			lw.b.Root(lw.b.Node("ASGN", lw.b.Leaf("ADDRL", slot.offset), val))
		}
		return nil

	case *AssignStmt:
		addr, info, err := lw.lvalueAddr(s.Target, s.Line)
		if err != nil {
			return err
		}
		hint := &addrHint{lv: s.Target, addr: addr, elem: info}
		var val *ir.Node
		if s.Op != "" {
			// x op= e  =>  ASGNk(addr, OP(INDIRk(addr), e)) with the
			// address node shared between load and store.
			load := lw.b.Node(info.indirOp, addr)
			rhs, err := lw.expr(s.Value, hint)
			if err != nil {
				return err
			}
			op, err := lw.binOp(s.Op, s.Line)
			if err != nil {
				return err
			}
			val = lw.b.OpNode(op, 0, "", load, rhs)
		} else {
			val, err = lw.expr(s.Value, hint)
			if err != nil {
				return err
			}
		}
		lw.b.Root(lw.b.Node(info.asgnOp, addr, val))
		return nil

	case *IfStmt:
		elseL := lw.newLabel()
		if err := lw.cond(s.Cond, elseL, false); err != nil {
			return err
		}
		if err := lw.stmts(s.Then); err != nil {
			return err
		}
		if len(s.Else) > 0 {
			endL := lw.newLabel()
			lw.b.Root(lw.b.Node("JUMP", lw.b.Leaf("CNST", endL)))
			lw.b.Root(lw.b.OpNode(lw.g.MustOp("LABEL"), elseL, ""))
			if err := lw.stmts(s.Else); err != nil {
				return err
			}
			lw.b.Root(lw.b.OpNode(lw.g.MustOp("LABEL"), endL, ""))
		} else {
			lw.b.Root(lw.b.OpNode(lw.g.MustOp("LABEL"), elseL, ""))
		}
		return nil

	case *WhileStmt:
		startL := lw.newLabel()
		endL := lw.newLabel()
		lw.b.Root(lw.b.OpNode(lw.g.MustOp("LABEL"), startL, ""))
		if err := lw.cond(s.Cond, endL, false); err != nil {
			return err
		}
		if err := lw.stmts(s.Body); err != nil {
			return err
		}
		lw.b.Root(lw.b.Node("JUMP", lw.b.Leaf("CNST", startL)))
		lw.b.Root(lw.b.OpNode(lw.g.MustOp("LABEL"), endL, ""))
		return nil

	case *ForStmt:
		if s.Init != nil {
			if err := lw.stmt(s.Init); err != nil {
				return err
			}
		}
		startL := lw.newLabel()
		endL := lw.newLabel()
		lw.b.Root(lw.b.OpNode(lw.g.MustOp("LABEL"), startL, ""))
		if s.Cond != nil {
			if err := lw.cond(s.Cond, endL, false); err != nil {
				return err
			}
		}
		if err := lw.stmts(s.Body); err != nil {
			return err
		}
		if s.Post != nil {
			if err := lw.stmt(s.Post); err != nil {
				return err
			}
		}
		lw.b.Root(lw.b.Node("JUMP", lw.b.Leaf("CNST", startL)))
		lw.b.Root(lw.b.OpNode(lw.g.MustOp("LABEL"), endL, ""))
		return nil

	case *ReturnStmt:
		var val *ir.Node
		if s.Value != nil {
			v, err := lw.expr(s.Value, nil)
			if err != nil {
				return err
			}
			val = v
		} else {
			val = lw.b.Leaf("CNST", 0)
		}
		lw.b.Root(lw.b.Node("RET", val))
		return nil

	case *ExprStmt:
		n, err := lw.expr(s.X, nil)
		if err != nil {
			return err
		}
		lw.b.Root(n)
		return nil
	}
	return fmt.Errorf("minc: unknown statement %T", s)
}

// cond lowers a condition as a branch to target taken when the condition's
// truth equals whenTrue.
func (lw *lowerer) cond(e Expr, target int64, whenTrue bool) error {
	// Peel '!'.
	for {
		u, ok := e.(*UnaryExpr)
		if !ok || u.Op != "!" {
			break
		}
		e = u.X
		whenTrue = !whenTrue
	}
	if b, ok := e.(*BinExpr); ok {
		if op, isRel := relOps[b.Op]; isRel {
			l, err := lw.expr(b.L, nil)
			if err != nil {
				return err
			}
			r, err := lw.expr(b.R, nil)
			if err != nil {
				return err
			}
			name := op
			if !whenTrue {
				name = relInverse[op]
			}
			lw.b.Root(lw.b.OpNode(lw.g.MustOp(name), target, "", l, r))
			return nil
		}
	}
	// Non-relational condition: compare against zero.
	v, err := lw.expr(e, nil)
	if err != nil {
		return err
	}
	name := "NE"
	if !whenTrue {
		name = "EQ"
	}
	lw.b.Root(lw.b.OpNode(lw.g.MustOp(name), target, "", v, lw.b.Leaf("CNST", 0)))
	return nil
}

var relOps = map[string]string{
	"==": "EQ", "!=": "NE", "<": "LT", "<=": "LE", ">": "GT", ">=": "GE",
}

var relInverse = map[string]string{
	"EQ": "NE", "NE": "EQ", "LT": "GE", "LE": "GT", "GT": "LE", "GE": "LT",
}

var binOps = map[string]string{
	"+": "ADD", "-": "SUB", "*": "MUL", "/": "DIV", "%": "MOD",
	"&": "AND", "|": "OR", "^": "XOR", "<<": "SHL", ">>": "SHR",
}

func (lw *lowerer) binOp(op string, line int) (grammar.OpID, error) {
	name, ok := binOps[op]
	if !ok {
		return grammar.NoOp, lw.errf(line, "operator %q not usable here", op)
	}
	return lw.g.MustOp(name), nil
}

// addrHint lets an expression reuse the address node of the assignment
// target it appears under, creating the RMW DAG edge.
type addrHint struct {
	lv   *LValue
	addr *ir.Node
	elem elemInfo
}

func (lw *lowerer) expr(e Expr, hint *addrHint) (*ir.Node, error) {
	switch e := e.(type) {
	case *NumExpr:
		return lw.b.Leaf("CNST", e.Val), nil

	case *VarExpr:
		if hint != nil && sameLValue(hint.lv, e) {
			return lw.b.Node(hint.elem.indirOp, hint.addr), nil
		}
		return lw.varRead(e.Name)

	case *IndexExpr:
		if hint != nil && sameLValue(hint.lv, e) {
			return lw.b.Node(hint.elem.indirOp, hint.addr), nil
		}
		addr, info, err := lw.elementAddr(e.Name, e.Index, hint)
		if err != nil {
			return nil, err
		}
		return lw.b.Node(info.indirOp, addr), nil

	case *UnaryExpr:
		switch e.Op {
		case "-":
			// Fold negation of literals so immediates stay immediates.
			if n, ok := e.X.(*NumExpr); ok {
				return lw.b.Leaf("CNST", -n.Val), nil
			}
			x, err := lw.expr(e.X, hint)
			if err != nil {
				return nil, err
			}
			return lw.b.Node("NEG", x), nil
		case "~":
			x, err := lw.expr(e.X, hint)
			if err != nil {
				return nil, err
			}
			return lw.b.Node("NOT", x), nil
		}
		return nil, fmt.Errorf("minc: %q is only supported in conditions", e.Op)

	case *BinExpr:
		if _, isRel := relOps[e.Op]; isRel {
			return nil, fmt.Errorf("minc: comparison %q is only supported in conditions", e.Op)
		}
		l, err := lw.expr(e.L, hint)
		if err != nil {
			return nil, err
		}
		r, err := lw.expr(e.R, hint)
		if err != nil {
			return nil, err
		}
		name, ok := binOps[e.Op]
		if !ok {
			return nil, fmt.Errorf("minc: unsupported operator %q", e.Op)
		}
		return lw.b.Node(name, l, r), nil

	case *CallExpr:
		if !lw.funcs[e.Name] {
			// Calls to undeclared functions are treated as external.
			lw.funcs[e.Name] = true
		}
		// lcc-style: evaluate arguments into ARG statement roots, then the
		// call itself.
		for _, a := range e.Args {
			v, err := lw.expr(a, nil)
			if err != nil {
				return nil, err
			}
			lw.b.Root(lw.b.Node("ARG", v))
		}
		return lw.b.Node("CALL", lw.b.SymLeaf("ADDRG", e.Name)), nil
	}
	return nil, fmt.Errorf("minc: unknown expression %T", e)
}

func (lw *lowerer) varRead(name string) (*ir.Node, error) {
	if s, ok := lw.locals[name]; ok {
		if s.isArray {
			return lw.b.Leaf("ADDRL", s.offset), nil // array decays to address
		}
		return lw.b.Node("INDIR", lw.b.Leaf("ADDRL", s.offset)), nil
	}
	if gd, ok := lw.globals[name]; ok {
		if gd.Size > 0 {
			return lw.b.SymLeaf("ADDRG", name), nil
		}
		return lw.b.Node("INDIR", lw.b.SymLeaf("ADDRG", name)), nil
	}
	return nil, fmt.Errorf("minc: undefined variable %q", name)
}

// elementAddr computes &name[index]: base + index*size, folding constant
// indexes into plain displacements and scaling variable indexes with a
// shift (the scaled-addressing pattern the CISC rules match).
func (lw *lowerer) elementAddr(name string, index Expr, hint *addrHint) (*ir.Node, elemInfo, error) {
	var base *ir.Node
	var elem string
	if s, ok := lw.locals[name]; ok {
		base = lw.b.Leaf("ADDRL", s.offset)
		elem = s.elem
	} else if gd, ok := lw.globals[name]; ok {
		base = lw.b.SymLeaf("ADDRG", name)
		elem = gd.Elem
	} else {
		return nil, elemInfo{}, fmt.Errorf("minc: undefined array %q", name)
	}
	info := elems[elem]
	if n, ok := index.(*NumExpr); ok {
		return lw.b.Node("ADD", base, lw.b.Leaf("CNST", n.Val*info.size)), info, nil
	}
	idx, err := lw.expr(index, hint)
	if err != nil {
		return nil, elemInfo{}, err
	}
	if info.shift < 0 {
		return lw.b.Node("ADD", base, idx), info, nil
	}
	scaled := lw.b.Node("SHL", idx, lw.b.Leaf("CNST", info.shift))
	return lw.b.Node("ADD", base, scaled), info, nil
}

// lvalueAddr lowers the address of an assignment target and reports the
// element width the store must use.
func (lw *lowerer) lvalueAddr(lv *LValue, line int) (*ir.Node, elemInfo, error) {
	long := elems["long"]
	if lv.Index == nil {
		if s, ok := lw.locals[lv.Name]; ok {
			if s.isArray {
				return nil, long, lw.errf(line, "cannot assign to array %q", lv.Name)
			}
			return lw.b.Leaf("ADDRL", s.offset), long, nil
		}
		if gd, ok := lw.globals[lv.Name]; ok {
			if gd.Size > 0 {
				return nil, long, lw.errf(line, "cannot assign to array %q", lv.Name)
			}
			return lw.b.SymLeaf("ADDRG", lv.Name), long, nil
		}
		return nil, long, lw.errf(line, "undefined variable %q", lv.Name)
	}
	return lw.elementAddr(lv.Name, lv.Index, nil)
}
