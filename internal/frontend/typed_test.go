package frontend

import (
	"strings"
	"testing"

	"repro/internal/dp"
	"repro/internal/emit"
	"repro/internal/md"
	"repro/internal/reduce"
)

// TestElementWidths: each element type must use its width's memory
// operators and scale factor.
func TestElementWidths(t *testing.T) {
	g := md.MustLoad("x86").Grammar
	prog := MustParse(`
char  c[16];
short s[16];
int   w[16];
long  l[16];
int f(int i) {
	c[i] = 1;
	s[i] = 2;
	w[i] = 3;
	l[i] = 4;
	return c[i] + s[i] + w[i] + l[i];
}`)
	unit := MustLower(prog, g)
	txt := unit.Funcs[0].Forest.String(g)
	cases := []struct{ op, why string }{
		{"ASGN1(ADD(ADDRG[c], INDIR(", "char store: unscaled index"},
		{"ASGN2(ADD(ADDRG[s], SHL(", "short store: scale 1"},
		{"ASGN4(ADD(ADDRG[w], SHL(", "int store: scale 2"},
		{"ASGN(ADD(ADDRG[l], SHL(", "long store: scale 3"},
		{"INDIR1(", "char load"},
		{"INDIR2(", "short load"},
		{"INDIR4(", "int load"},
	}
	for _, c := range cases {
		if !strings.Contains(txt, c.op) {
			t.Errorf("missing %s (%s):\n%s", c.op, c.why, txt)
		}
	}
	// Scale shift amounts: short=1, int=2, long=3.
	for _, want := range []string{"CNST[1])", "CNST[2])", "CNST[3])"} {
		if !strings.Contains(txt, "SHL(INDIR(ADDRL[-8]), "+want) {
			t.Errorf("missing scaled index by %s:\n%s", want, txt)
		}
	}
}

// TestConstIndexFoldsByWidth: a[3] folds to displacement 3*size.
func TestConstIndexFoldsByWidth(t *testing.T) {
	g := md.MustLoad("x86").Grammar
	prog := MustParse(`
char  c[16];
short s[16];
int   w[16];
long  l[16];
int f() { return c[3] + s[3] + w[3] + l[3]; }`)
	unit := MustLower(prog, g)
	txt := unit.Funcs[0].Forest.String(g)
	for _, want := range []string{
		"ADD(ADDRG[c], CNST[3])",
		"ADD(ADDRG[s], CNST[6])",
		"ADD(ADDRG[w], CNST[12])",
		"ADD(ADDRG[l], CNST[24])",
	} {
		if !strings.Contains(txt, want) {
			t.Errorf("missing folded displacement %s:\n%s", want, txt)
		}
	}
}

// TestTypedRMWSelectsNarrowMemoryOp: hist[i] += 1 on an int array must
// select the incl-to-memory rule on x86 (the typed RMW pattern).
func TestTypedRMWSelectsNarrowMemoryOp(t *testing.T) {
	d := md.MustLoad("x86")
	g := d.Grammar
	prog := MustParse(`
int hist[128];
int f(int i) {
	hist[i] += 1;
	return hist[0];
}`)
	unit := MustLower(prog, g)
	l, err := dp.New(g, d.Env, nil)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := reduce.New(g, d.Env, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := unit.Funcs[0].Forest
	asm, _, _, err := emit.Emit(rd, f, l.Label(f), g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(asm, "incl ") {
		t.Errorf("expected incl-to-memory for hist[i] += 1:\n%s", asm)
	}
}

// TestCharRMWByte: buf[i] += k on a char array selects the byte RMW.
func TestCharRMWByte(t *testing.T) {
	d := md.MustLoad("x86")
	g := d.Grammar
	prog := MustParse(`
char buf[64];
int f(int i, int k) {
	buf[i] += k;
	return buf[0];
}`)
	unit := MustLower(prog, g)
	l, _ := dp.New(g, d.Env, nil)
	rd, _ := reduce.New(g, d.Env, nil)
	f := unit.Funcs[0].Forest
	asm, _, _, err := emit.Emit(rd, f, l.Label(f), g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(asm, "addb ") {
		t.Errorf("expected addb-to-memory for char RMW:\n%s", asm)
	}
}

// TestScalarsStayFullWidth: scalar locals use 8-byte slots regardless of
// the declared type keyword.
func TestScalarsStayFullWidth(t *testing.T) {
	g := md.MustLoad("x86").Grammar
	prog := MustParse(`int f() { char x = 5; return x; }`)
	unit := MustLower(prog, g)
	txt := unit.Funcs[0].Forest.String(g)
	if strings.Contains(txt, "ASGN1") || strings.Contains(txt, "INDIR1") {
		t.Errorf("scalar must use full-width access:\n%s", txt)
	}
}

// TestAlphaByteAccessExpensive: pre-BWX Alpha has no byte loads (they are
// ldq_u/extract sequences); the same char-array kernel must cost more on
// alpha than the equivalent int-array kernel does.
func TestAlphaByteAccessExpensive(t *testing.T) {
	d := md.MustLoad("alpha")
	g := d.Grammar
	l, err := dp.New(g, d.Env, nil)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := reduce.New(g, d.Env, nil)
	if err != nil {
		t.Fatal(err)
	}
	cost := func(src string) int {
		unit := MustLower(MustParse(src), g)
		f := unit.Funcs[0].Forest
		c, err := rd.Cover(f, l.Label(f), nil)
		if err != nil {
			t.Fatal(err)
		}
		return int(c)
	}
	byteCost := cost(`char b[32]; int f(int i) { return b[i]; }`)
	wordCost := cost(`int w[32]; int f(int i) { return w[i]; }`)
	if byteCost <= wordCost {
		t.Errorf("alpha byte access (%d) must cost more than 4-byte access (%d)", byteCost, wordCost)
	}
}
