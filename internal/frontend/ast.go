package frontend

// The MinC abstract syntax tree. Nodes are deliberately plain structs with
// a kind discriminator: the tree is small, short-lived, and consumed by one
// lowering pass.

// Program is a parsed compilation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a global scalar or array.
type GlobalDecl struct {
	Name string
	// Elem is the element type: "char", "short", "int" or "long".
	Elem string
	// Size is the element count for arrays, 0 for scalars.
	Size int64
	Line int
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name   string
	Params []string
	Body   []Stmt
	Line   int
}

// Stmt is a statement.
type Stmt interface{ stmt() }

// DeclStmt declares a local scalar or array, optionally initialized.
type DeclStmt struct {
	Name string
	Elem string // element type: "char", "short", "int" or "long"
	Size int64  // element count for arrays, 0 for scalars
	Init Expr   // scalar initializer, may be nil
	Line int
}

// AssignStmt assigns to a variable or array element. Op is "" for plain
// assignment, or the binary operator for compound forms (x += e).
type AssignStmt struct {
	Target *LValue
	Op     string
	Value  Expr
	Line   int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

// ForStmt is a C-style for loop. Init and Post may be nil.
type ForStmt struct {
	Init Stmt
	Cond Expr
	Post Stmt
	Body []Stmt
	Line int
}

// ReturnStmt returns a value (Value may be nil for "return;").
type ReturnStmt struct {
	Value Expr
	Line  int
}

// ExprStmt evaluates an expression for effect (calls).
type ExprStmt struct {
	X    Expr
	Line int
}

func (*DeclStmt) stmt()   {}
func (*AssignStmt) stmt() {}
func (*IfStmt) stmt()     {}
func (*WhileStmt) stmt()  {}
func (*ForStmt) stmt()    {}
func (*ReturnStmt) stmt() {}
func (*ExprStmt) stmt()   {}

// Expr is an expression.
type Expr interface{ expr() }

// NumExpr is an integer literal.
type NumExpr struct{ Val int64 }

// VarExpr reads a scalar variable.
type VarExpr struct{ Name string }

// IndexExpr reads an array element.
type IndexExpr struct {
	Name  string
	Index Expr
}

// UnaryExpr is -x, !x or ~x.
type UnaryExpr struct {
	Op string
	X  Expr
}

// BinExpr is a binary operation.
type BinExpr struct {
	Op   string
	L, R Expr
}

// CallExpr calls a function.
type CallExpr struct {
	Name string
	Args []Expr
}

func (*NumExpr) expr()   {}
func (*VarExpr) expr()   {}
func (*IndexExpr) expr() {}
func (*UnaryExpr) expr() {}
func (*BinExpr) expr()   {}
func (*CallExpr) expr()  {}

// LValue is an assignable location: a scalar variable or array element.
type LValue struct {
	Name  string
	Index Expr // nil for scalars
}

// sameLValue reports whether an expression reads exactly the lvalue l —
// the syntactic identity that lets lowering share the address node between
// the load and the store of a read-modify-write statement.
func sameLValue(l *LValue, e Expr) bool {
	switch e := e.(type) {
	case *VarExpr:
		return l.Index == nil && e.Name == l.Name
	case *IndexExpr:
		return l.Index != nil && e.Name == l.Name && sameExpr(l.Index, e.Index)
	}
	return false
}

// sameExpr is structural equality of pure expressions (no calls).
func sameExpr(a, b Expr) bool {
	switch a := a.(type) {
	case *NumExpr:
		b, ok := b.(*NumExpr)
		return ok && a.Val == b.Val
	case *VarExpr:
		b, ok := b.(*VarExpr)
		return ok && a.Name == b.Name
	case *IndexExpr:
		b, ok := b.(*IndexExpr)
		return ok && a.Name == b.Name && sameExpr(a.Index, b.Index)
	case *UnaryExpr:
		b, ok := b.(*UnaryExpr)
		return ok && a.Op == b.Op && sameExpr(a.X, b.X)
	case *BinExpr:
		b, ok := b.(*BinExpr)
		return ok && a.Op == b.Op && sameExpr(a.L, b.L) && sameExpr(a.R, b.R)
	}
	return false
}
