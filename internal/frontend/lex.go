package frontend

import "fmt"

// Lexer tokenizes MinC source.
type Lexer struct {
	src  string
	pos  int
	line int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src, line: 1} }

// multiCharOps are the multi-byte punctuation tokens, longest first so
// "<<=" wins over "<<".
var multiCharOps = []string{
	"<<=", ">>=",
	"<<", ">>", "<=", ">=", "==", "!=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "&&", "||",
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '\n':
			l.pos++
			l.line++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos+1 >= len(l.src) {
				return Token{}, fmt.Errorf("minc:%d: unterminated block comment", l.line)
			}
			l.pos += 2
		case isLetter(c):
			start := l.pos
			for l.pos < len(l.src) && (isLetter(l.src[l.pos]) || isDigit(l.src[l.pos])) {
				l.pos++
			}
			text := l.src[start:l.pos]
			kind := IDENT
			if keywords[text] {
				kind = KEYWORD
			}
			return Token{Kind: kind, Text: text, Line: l.line}, nil
		case isDigit(c):
			start := l.pos
			var v int64
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				v = v*10 + int64(l.src[l.pos]-'0')
				l.pos++
			}
			return Token{Kind: NUMBER, Text: l.src[start:l.pos], Val: v, Line: l.line}, nil
		default:
			for _, op := range multiCharOps {
				if l.pos+len(op) <= len(l.src) && l.src[l.pos:l.pos+len(op)] == op {
					l.pos += len(op)
					return Token{Kind: PUNCT, Text: op, Line: l.line}, nil
				}
			}
			l.pos++
			return Token{Kind: PUNCT, Text: string(c), Line: l.line}, nil
		}
	}
	return Token{Kind: EOF, Line: l.line}, nil
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
