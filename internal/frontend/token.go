// Package frontend implements MinC, a small C-like language, and its
// lowering to the generic IR: the reproduction's substitute for lcc's C
// front end. The experiments need realistic compilation units — operator
// mixes, addressing patterns, read-modify-write statements — rather than
// random trees, and MinC's lowering produces exactly the patterns the
// machine descriptions care about (scaled array indexing, immediate
// operands, RMW assignments sharing the address node).
//
// The language: integer (64-bit) scalars and arrays, globals and locals,
// functions with parameters, assignment (including op= forms), if/else,
// while, for, return, and calls. No pointers beyond array indexing, no
// floats — the subset lcc's instruction-selection benchmarks exercise
// hardest.
package frontend

import "fmt"

// Kind is a lexical token kind.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER
	PUNCT   // operators and delimiters
	KEYWORD // int, if, else, while, for, return, func
)

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string
	Val  int64 // for NUMBER
	Line int
}

func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "end of file"
	case NUMBER:
		return fmt.Sprintf("number %d", t.Val)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"int": true, "char": true, "short": true, "long": true,
	"if": true, "else": true, "while": true,
	"for": true, "return": true,
}

// typeKeywords are the element types: they choose the width of array
// accesses (char=1, short=2, int=4, long=8 bytes; scalars always occupy a
// full 8-byte slot, like lcc's register-promoted temporaries).
var typeKeywords = map[string]bool{
	"int": true, "char": true, "short": true, "long": true,
}

// note: "else" and "if" are matched by text in the parser; keeping them
// keywords prevents their use as identifiers.
