package frontend

import "fmt"

// Parse parses a MinC compilation unit.
func Parse(src string) (*Program, error) {
	p := &Parser{lex: NewLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseProgram()
}

// MustParse is Parse for statically known sources; it panics on error.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

// Parser is a recursive-descent parser for MinC.
type Parser struct {
	lex *Lexer
	tok Token
}

func (p *Parser) advance() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("minc:%d: %s", p.tok.Line, fmt.Sprintf(format, args...))
}

func (p *Parser) expect(text string) error {
	if p.tok.Text != text {
		return p.errf("expected %q, got %s", text, p.tok)
	}
	return p.advance()
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.tok.Kind != EOF {
		if p.tok.Kind != KEYWORD || !typeKeywords[p.tok.Text] {
			return nil, p.errf("expected a type at top level, got %s", p.tok)
		}
		elem := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind != IDENT {
			return nil, p.errf("expected name after %q, got %s", elem, p.tok)
		}
		name := p.tok.Text
		line := p.tok.Line
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch p.tok.Text {
		case "(":
			fn, err := p.parseFuncRest(name, line)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
		case "[":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.Kind != NUMBER {
				return nil, p.errf("expected array size, got %s", p.tok)
			}
			size := p.tok.Val
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, &GlobalDecl{Name: name, Elem: elem, Size: size, Line: line})
		case ";":
			if err := p.advance(); err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, &GlobalDecl{Name: name, Elem: elem, Line: line})
		default:
			return nil, p.errf("expected '(', '[' or ';' after %q, got %s", name, p.tok)
		}
	}
	return prog, nil
}

func (p *Parser) parseFuncRest(name string, line int) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name, Line: line}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for p.tok.Text != ")" {
		if p.tok.Kind != KEYWORD || !typeKeywords[p.tok.Text] {
			return nil, p.errf("expected a type in parameter list, got %s", p.tok)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind != IDENT {
			return nil, p.errf("expected parameter name, got %s", p.tok)
		}
		fn.Params = append(fn.Params, p.tok.Text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.advance(); err != nil { // ')'
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() ([]Stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.tok.Text != "}" {
		if p.tok.Kind == EOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, p.advance()
}

func (p *Parser) parseStmt() (Stmt, error) {
	line := p.tok.Line
	switch {
	case p.tok.Kind == KEYWORD && typeKeywords[p.tok.Text]:
		s, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		return s, p.expect(";")
	case p.tok.Kind == KEYWORD && p.tok.Text == "if":
		return p.parseIf()
	case p.tok.Kind == KEYWORD && p.tok.Text == "while":
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: line}, nil
	case p.tok.Kind == KEYWORD && p.tok.Text == "for":
		return p.parseFor()
	case p.tok.Kind == KEYWORD && p.tok.Text == "return":
		if err := p.advance(); err != nil {
			return nil, err
		}
		var val Expr
		if p.tok.Text != ";" {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			val = v
		}
		return &ReturnStmt{Value: val, Line: line}, p.expect(";")
	default:
		s, err := p.parseSimple()
		if err != nil {
			return nil, err
		}
		return s, p.expect(";")
	}
}

func (p *Parser) parseDecl() (Stmt, error) {
	line := p.tok.Line
	elem := p.tok.Text
	if err := p.advance(); err != nil { // type keyword
		return nil, err
	}
	if p.tok.Kind != IDENT {
		return nil, p.errf("expected name in declaration, got %s", p.tok)
	}
	d := &DeclStmt{Name: p.tok.Text, Elem: elem, Line: line}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.Text == "[" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind != NUMBER {
			return nil, p.errf("expected array size, got %s", p.tok)
		}
		d.Size = p.tok.Val
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		return d, nil
	}
	if p.tok.Text == "=" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	return d, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	line := p.tok.Line
	if err := p.advance(); err != nil { // 'if'
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then, Line: line}
	if p.tok.Kind == KEYWORD && p.tok.Text == "else" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Text == "if" {
			elif, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			s.Else = []Stmt{elif}
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
	}
	return s, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	line := p.tok.Line
	if err := p.advance(); err != nil { // 'for'
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	s := &ForStmt{Line: line}
	if p.tok.Text != ";" {
		init, err := p.parseSimple()
		if err != nil {
			return nil, err
		}
		s.Init = init
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if p.tok.Text != ";" {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if p.tok.Text != ")" {
		post, err := p.parseSimple()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// assignOps maps compound-assignment tokens to their binary operator.
var assignOps = map[string]string{
	"=": "", "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
	"&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}

// parseSimple parses an assignment or expression statement (no trailing
// ';'; the caller consumes it, so for-headers can reuse this).
func (p *Parser) parseSimple() (Stmt, error) {
	line := p.tok.Line
	// Assignment requires an lvalue prefix; parse an expression and check.
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if op, isAssign := assignOps[p.tok.Text]; isAssign {
		lv, err := toLValue(e)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Target: lv, Op: op, Value: val, Line: line}, nil
	}
	return &ExprStmt{X: e, Line: line}, nil
}

func toLValue(e Expr) (*LValue, error) {
	switch e := e.(type) {
	case *VarExpr:
		return &LValue{Name: e.Name}, nil
	case *IndexExpr:
		return &LValue{Name: e.Name, Index: e.Index}, nil
	}
	return nil, fmt.Errorf("assignment target must be a variable or array element")
}

// Binary operator precedence (C-like); higher binds tighter.
var precedence = map[string]int{
	"|": 1, "^": 2, "&": 3,
	"==": 4, "!=": 4,
	"<": 5, "<=": 5, ">": 5, ">=": 5,
	"<<": 6, ">>": 6,
	"+": 7, "-": 7,
	"*": 8, "/": 8, "%": 8,
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.tok.Text
		if p.tok.Text == "&&" || p.tok.Text == "||" {
			return nil, p.errf("MinC does not support %q; rewrite with nested if", op)
		}
		prec, ok := precedence[op]
		if p.tok.Kind != PUNCT || !ok || prec < minPrec {
			return lhs, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: op, L: lhs, R: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.tok.Text {
	case "-", "!", "~":
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch {
	case p.tok.Kind == NUMBER:
		e := &NumExpr{Val: p.tok.Val}
		return e, p.advance()
	case p.tok.Kind == IDENT:
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch p.tok.Text {
		case "(":
			if err := p.advance(); err != nil {
				return nil, err
			}
			call := &CallExpr{Name: name}
			for p.tok.Text != ")" {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.tok.Text == "," {
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
			}
			return call, p.advance()
		case "[":
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: name, Index: idx}, nil
		}
		return &VarExpr{Name: name}, nil
	case p.tok.Text == "(":
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	}
	return nil, p.errf("expected expression, got %s", p.tok)
}
