package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/reduce"
)

func TestCorpusCompilesOnAllGrammars(t *testing.T) {
	for _, name := range md.Names() {
		if name == "demo" {
			continue // the running example lacks the generic operators
		}
		t.Run(name, func(t *testing.T) {
			d := md.MustLoad(name)
			cs, err := CompileAll(d.Grammar)
			if err != nil {
				t.Fatal(err)
			}
			if len(cs) != len(programs) {
				t.Fatalf("compiled %d of %d programs", len(cs), len(programs))
			}
			total := 0
			for _, c := range cs {
				if c.NumNodes() < 20 {
					t.Errorf("%s: suspiciously small (%d nodes)", c.Program.Name, c.NumNodes())
				}
				total += c.NumNodes()
				for _, f := range c.Forests() {
					if err := ir.CheckTopo(f); err != nil {
						t.Fatalf("%s: %v", c.Program.Name, err)
					}
				}
			}
			t.Logf("%s corpus: %d programs, %d IR nodes", name, len(cs), total)
		})
	}
}

// TestCorpusFullySelectable: every statement of every program must be
// coverable from the start nonterminal on every grammar, by both engines,
// with identical derivations — the corpus-level end-to-end check.
func TestCorpusFullySelectable(t *testing.T) {
	for _, name := range []string{"x86", "mips", "sparc", "alpha", "jit64"} {
		t.Run(name, func(t *testing.T) {
			d := md.MustLoad(name)
			g := d.Grammar
			l, err := dp.New(g, d.Env, nil)
			if err != nil {
				t.Fatal(err)
			}
			e, err := core.New(g, d.Env, core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			rd, err := reduce.New(g, d.Env, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range MustCompileAll(g) {
				for _, f := range c.Forests() {
					want, err := rd.Trace(f, l.Label(f))
					if err != nil {
						t.Fatalf("%s: dp cover: %v", c.Program.Name, err)
					}
					got, err := rd.Trace(f, e.Label(f))
					if err != nil {
						t.Fatalf("%s: od cover: %v", c.Program.Name, err)
					}
					if want.String(g) != got.String(g) {
						t.Fatalf("%s: derivations differ", c.Program.Name)
					}
					if want.Cost <= 0 {
						t.Errorf("%s: non-positive cost %d", c.Program.Name, want.Cost)
					}
				}
			}
		})
	}
}

func TestGetAndNames(t *testing.T) {
	names := Names()
	if len(names) != len(programs) {
		t.Fatal("Names length mismatch")
	}
	p, err := Get("fact")
	if err != nil || p.Name != "fact" {
		t.Errorf("Get(fact) = %v, %v", p.Name, err)
	}
	if _, err := Get("nope"); err == nil {
		t.Error("expected error for unknown program")
	}
	if len(All()) != len(programs) {
		t.Error("All length mismatch")
	}
}

func TestOpMix(t *testing.T) {
	d := md.MustLoad("x86")
	cs := MustCompileAll(d.Grammar)
	mix := OpMix(d.Grammar, cs)
	if len(mix) < 10 {
		t.Errorf("op mix too small: %v", mix)
	}
	t.Logf("x86 corpus op mix: %v", mix)
}
