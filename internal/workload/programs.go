// Package workload provides the benchmark corpus: deterministic MinC
// programs (classic integer kernels of the kind instruction-selection
// papers compile), compiled to IR forests per machine description, plus
// parameterized synthetic forests for scaling experiments.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/frontend"
	"repro/internal/grammar"
	"repro/internal/ir"
)

// Program is one benchmark source.
type Program struct {
	Name string
	Src  string
	// Note describes the kernel, for the workload table.
	Note string
}

// programs is the corpus. The kernels are chosen to exercise the machine
// descriptions' interesting rules: array indexing (scaled addressing),
// constants of varying magnitude (immediate ranges), compound assignments
// (read-modify-write), division and multiplication (cost spreads), and
// call-heavy code.
var programs = []Program{
	{
		Name: "fact",
		Note: "iterative and recursive factorial",
		Src: `
int fact(int n) {
	int r = 1;
	int i = 2;
	while (i <= n) {
		r = r * i;
		i = i + 1;
	}
	return r;
}
int factrec(int n) {
	if (n <= 1) { return 1; }
	return n * factrec(n - 1);
}
int main() {
	return fact(10) - factrec(10);
}
`,
	},
	{
		Name: "sqrtapprox",
		Note: "integer square root by Newton iteration",
		Src: `
int isqrt(int x) {
	int r = x;
	int last = 0;
	if (x <= 0) { return 0; }
	while (r != last) {
		last = r;
		r = (r + x / r) >> 1;
	}
	return r;
}
int main() {
	int s = 0;
	int i;
	for (i = 1; i < 10000; i += 1) {
		s += isqrt(i);
	}
	return s;
}
`,
	},
	{
		Name: "permut",
		Note: "array permutations with swaps and recursion",
		Src: `
int a[8];
int count;
int swap(int i, int j) {
	int t = a[i];
	a[i] = a[j];
	a[j] = t;
	return 0;
}
int permut(int k, int n) {
	int i;
	if (k >= n) {
		count += 1;
		return count;
	}
	for (i = k; i < n; i += 1) {
		swap(k, i);
		permut(k + 1, n);
		swap(k, i);
	}
	return count;
}
int main() {
	int i;
	for (i = 0; i < 8; i += 1) { a[i] = i; }
	count = 0;
	return permut(0, 8);
}
`,
	},
	{
		Name: "pispigot",
		Note: "spigot algorithm for pi digits (div/mod heavy)",
		Src: `
int digits[32];
int r[360];
int spigot(int n) {
	int i; int k; int carry; int d; int num;
	for (i = 0; i < 360; i += 1) { r[i] = 2; }
	carry = 0;
	for (k = 0; k < n; k += 1) {
		d = 0;
		for (i = 359; i >= 1; i -= 1) {
			num = r[i] * 10 + d;
			r[i] = num % (2 * i + 1);
			d = (num / (2 * i + 1)) * i;
		}
		digits[k] = carry + (d / 10);
		carry = d % 10;
	}
	return digits[0];
}
int main() {
	return spigot(8);
}
`,
	},
	{
		Name: "boyermoore",
		Note: "Boyer-Moore-Horspool string search over byte arrays",
		Src: `
int text[256];
int pat[8];
int shift[256];
int search(int n, int m) {
	int i; int j; int k;
	for (k = 0; k < 256; k += 1) { shift[k] = m; }
	for (k = 0; k < m - 1; k += 1) { shift[pat[k]] = m - 1 - k; }
	i = m - 1;
	while (i < n) {
		j = m - 1;
		k = i;
		while (j >= 0) {
			if (text[k] != pat[j]) { j = -2; }
			if (j >= 0) { j -= 1; k -= 1; }
		}
		if (j == -1) { return k + 1; }
		i += shift[text[i] & 255];
	}
	return -1;
}
int main() {
	int i;
	for (i = 0; i < 256; i += 1) { text[i] = (i * 7 + 3) & 255; }
	for (i = 0; i < 8; i += 1) { pat[i] = text[200 + i]; }
	return search(256, 8);
}
`,
	},
	{
		Name: "matadd",
		Note: "matrix addition with 2-d indexing and RMW",
		Src: `
int ma[256];
int mb[256];
int mc[256];
int matadd(int n) {
	int i; int j;
	for (i = 0; i < n; i += 1) {
		for (j = 0; j < n; j += 1) {
			mc[i * 16 + j] = ma[i * 16 + j] + mb[i * 16 + j];
		}
	}
	return mc[0];
}
int main() {
	int i;
	for (i = 0; i < 256; i += 1) { ma[i] = i; mb[i] = 255 - i; }
	return matadd(16);
}
`,
	},
	{
		Name: "matmult",
		Note: "matrix multiplication with accumulation",
		Src: `
int xa[256];
int xb[256];
int xc[256];
int matmult(int n) {
	int i; int j; int k;
	for (i = 0; i < n; i += 1) {
		for (j = 0; j < n; j += 1) {
			xc[i * 16 + j] = 0;
			for (k = 0; k < n; k += 1) {
				xc[i * 16 + j] += xa[i * 16 + k] * xb[k * 16 + j];
			}
		}
	}
	return xc[17];
}
int main() {
	int i;
	for (i = 0; i < 256; i += 1) { xa[i] = i & 15; xb[i] = i >> 4; }
	return matmult(16);
}
`,
	},
	{
		Name: "hashloop",
		Note: "hashing with shifts, xors and large constants",
		Src: `
int tab[128];
int hash(int x) {
	int h = x * 2654435761;
	h ^= h >> 16;
	h *= 40503;
	h ^= h >> 13;
	return h & 127;
}
int main() {
	int i;
	int collisions = 0;
	for (i = 0; i < 128; i += 1) { tab[i] = 0; }
	for (i = 0; i < 4096; i += 1) {
		int h = hash(i * 31 + 77777);
		tab[h] += 1;
		if (tab[h] > 40) { collisions += 1; }
	}
	return collisions;
}
`,
	},
	{
		Name: "sortbench",
		Note: "insertion and shell sort over an array",
		Src: `
int data[512];
int insertion(int n) {
	int i; int j; int v;
	for (i = 1; i < n; i += 1) {
		v = data[i];
		j = i - 1;
		while (j >= 0) {
			if (data[j] > v) {
				data[j + 1] = data[j];
				j -= 1;
			} else {
				data[j + 1] = v;
				j = -1;
			}
		}
		if (j == -1) { data[0] = v; }
	}
	return data[0];
}
int shell(int n) {
	int gap; int i; int j; int t;
	for (gap = n / 2; gap > 0; gap /= 2) {
		for (i = gap; i < n; i += 1) {
			t = data[i];
			j = i;
			while (j >= gap) {
				if (data[j - gap] > t) {
					data[j] = data[j - gap];
					j -= gap;
				} else {
					j = 0 - 1;
					if (j < gap) { j = 0; }
				}
			}
			data[j] = t;
		}
	}
	return data[n - 1];
}
int main() {
	int i;
	for (i = 0; i < 512; i += 1) { data[i] = (i * 193 + 7) & 511; }
	insertion(256);
	return shell(512);
}
`,
	},
	{
		Name: "bitops",
		Note: "bit twiddling: popcount, reverse, parity",
		Src: `
int popcount(int x) {
	int c = 0;
	while (x != 0) {
		x &= x - 1;
		c += 1;
	}
	return c;
}
int reverse(int x) {
	int r = 0;
	int i;
	for (i = 0; i < 32; i += 1) {
		r = (r << 1) | (x & 1);
		x >>= 1;
	}
	return r;
}
int main() {
	int s = 0;
	int i;
	for (i = 0; i < 1024; i += 1) {
		s += popcount(i) ^ (reverse(i) & 31);
	}
	return s;
}
`,
	},
	{
		Name: "statemachine",
		Note: "dispatch-heavy interpreter-style loop",
		Src: `
int mem[64];
int run(int steps) {
	int pc = 0;
	int accv = 0;
	int t;
	while (steps > 0) {
		t = mem[pc & 63];
		if (t == 0) { accv += 1; }
		if (t == 1) { accv -= 1; }
		if (t == 2) { accv <<= 1; }
		if (t == 3) { accv >>= 1; }
		if (t == 4) { accv ^= 21845; }
		if (t > 4) { accv += t * 3; }
		pc += 1;
		steps -= 1;
	}
	return accv;
}
int main() {
	int i;
	for (i = 0; i < 64; i += 1) { mem[i] = (i * 11) % 7; }
	return run(4096);
}
`,
	},
	{
		Name: "strops",
		Note: "byte-array string kernels: length, reverse, compare (1-byte loads/stores)",
		Src: `
char buf[128];
char tmp[128];
int slen() {
	int i = 0;
	while (buf[i] != 0) { i += 1; }
	return i;
}
int srev(int n) {
	int i; int j; int t;
	j = n - 1;
	for (i = 0; i < j; i += 1) {
		t = buf[i];
		buf[i] = buf[j];
		buf[j] = t;
		j -= 1;
	}
	return buf[0];
}
int scmp(int n) {
	int i;
	for (i = 0; i < n; i += 1) {
		if (buf[i] < tmp[i]) { return -1; }
		if (buf[i] > tmp[i]) { return 1; }
	}
	return 0;
}
int main() {
	int i;
	for (i = 0; i < 127; i += 1) { buf[i] = (i % 26) + 97; tmp[i] = buf[i]; }
	buf[127] = 0;
	srev(slen());
	return scmp(127);
}
`,
	},
	{
		Name: "checksum",
		Note: "Fletcher-style checksum: byte input, short accumulators, modulo",
		Src: `
char msg[256];
short acc[2];
int fletcher(int n) {
	int i;
	acc[0] = 0;
	acc[1] = 0;
	for (i = 0; i < n; i += 1) {
		acc[0] = (acc[0] + msg[i]) % 255;
		acc[1] = (acc[1] + acc[0]) % 255;
	}
	return (acc[1] << 8) | acc[0];
}
int main() {
	int i;
	for (i = 0; i < 256; i += 1) { msg[i] = (i * 13 + 5) & 127; }
	return fletcher(256);
}
`,
	},
	{
		Name: "histogram",
		Note: "byte input, int histogram, RMW increments (the incl-to-memory pattern)",
		Src: `
char input[512];
int hist[128];
int build(int n) {
	int i;
	for (i = 0; i < 128; i += 1) { hist[i] = 0; }
	for (i = 0; i < n; i += 1) {
		hist[input[i] & 127] += 1;
	}
	return hist[65];
}
int peak() {
	int i; int best = 0; int arg = 0;
	for (i = 0; i < 128; i += 1) {
		if (hist[i] > best) { best = hist[i]; arg = i; }
	}
	return arg;
}
int main() {
	int i;
	for (i = 0; i < 512; i += 1) { input[i] = (i * 31 + 7) & 127; }
	build(512);
	return peak();
}
`,
	},
	{
		Name: "memfill",
		Note: "zero and pattern fills across all element widths (store-zero rules)",
		Src: `
char cbuf[64];
short sbuf[64];
int ibuf[64];
long lbuf[64];
int fill(int n) {
	int i;
	for (i = 0; i < n; i += 1) {
		cbuf[i] = 0;
		sbuf[i] = 0;
		ibuf[i] = 0;
		lbuf[i] = 0;
	}
	for (i = 0; i < n; i += 1) {
		cbuf[i] = i & 255;
		sbuf[i] = i * 3;
		ibuf[i] = i * i;
		lbuf[i] = i << 20;
	}
	return ibuf[7];
}
int main() {
	return fill(64);
}
`,
	},
	{
		Name: "fibmemo",
		Note: "memoized fibonacci (loads/stores with guard tests)",
		Src: `
int memo[64];
int fib(int n) {
	int v;
	if (n < 2) { return n; }
	if (memo[n] != 0) { return memo[n]; }
	v = fib(n - 1) + fib(n - 2);
	memo[n] = v;
	return v;
}
int main() {
	int i;
	for (i = 0; i < 64; i += 1) { memo[i] = 0; }
	return fib(40);
}
`,
	},
}

// Names lists the corpus programs in order.
func Names() []string {
	names := make([]string, len(programs))
	for i, p := range programs {
		names[i] = p.Name
	}
	return names
}

// Get returns the named program.
func Get(name string) (Program, error) {
	for _, p := range programs {
		if p.Name == name {
			return p, nil
		}
	}
	return Program{}, fmt.Errorf("workload: unknown program %q (have %v)", name, Names())
}

// All returns the corpus in order.
func All() []Program { return append([]Program(nil), programs...) }

// Compiled is a program lowered against one grammar.
type Compiled struct {
	Program Program
	Unit    *frontend.Unit
}

// NumNodes is the total IR node count.
func (c *Compiled) NumNodes() int { return c.Unit.TotalNodes() }

// Forests returns the per-function forests in order.
func (c *Compiled) Forests() []*ir.Forest {
	out := make([]*ir.Forest, len(c.Unit.Funcs))
	for i, f := range c.Unit.Funcs {
		out[i] = f.Forest
	}
	return out
}

// Compile parses and lowers one program against g.
func Compile(p Program, g *grammar.Grammar) (*Compiled, error) {
	prog, err := frontend.Parse(p.Src)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", p.Name, err)
	}
	unit, err := frontend.Lower(prog, g)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", p.Name, err)
	}
	return &Compiled{Program: p, Unit: unit}, nil
}

// CompileAll lowers the whole corpus against g, in corpus order.
func CompileAll(g *grammar.Grammar) ([]*Compiled, error) {
	out := make([]*Compiled, 0, len(programs))
	for _, p := range programs {
		c, err := Compile(p, g)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// MustCompileAll panics on error (corpus and grammars are static).
func MustCompileAll(g *grammar.Grammar) []*Compiled {
	cs, err := CompileAll(g)
	if err != nil {
		panic(err)
	}
	return cs
}

// OpMix tallies operator frequencies over a set of compiled programs; the
// workload table reports it so readers can see what the labelers chew on.
func OpMix(g *grammar.Grammar, cs []*Compiled) []string {
	counts := map[string]int{}
	total := 0
	for _, c := range cs {
		for _, f := range c.Forests() {
			for _, n := range f.Nodes {
				counts[g.OpName(n.Op)]++
				total++
			}
		}
	}
	type kv struct {
		name string
		n    int
	}
	var list []kv
	for k, v := range counts {
		list = append(list, kv{k, v})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].name < list[j].name
	})
	out := make([]string, 0, len(list))
	for _, e := range list {
		out = append(out, fmt.Sprintf("%s:%.1f%%", e.name, 100*float64(e.n)/float64(total)))
	}
	return out
}
