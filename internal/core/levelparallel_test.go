package core

import (
	"testing"

	"repro/internal/dp"
	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/metrics"
	"repro/internal/reduce"
)

// levelForest builds a forest wide enough that its leaf-side levels
// exceed reduce.MinParallelSpan, so LabelStatesParallel actually fans out.
func levelForest(d md.Desc, seed int64) *ir.Forest {
	return ir.RandomForest(d.Grammar, ir.RandomConfig{
		Seed: seed, Trees: 1200, MaxDepth: 8, Share: seed%2 == 0, MaxLeafVal: 3,
	})
}

// TestLevelParallelColdMatchesDP: level-parallel labeling on a cold
// engine — every level races the construct slow path on shared operators —
// must agree with the DP oracle node by node, and a sequentially labeled
// twin engine must converge to the same automaton size. Run under -race.
func TestLevelParallelColdMatchesDP(t *testing.T) {
	d := md.MustLoad("demo")
	oracle, err := dp.New(d.Grammar, d.Env, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := New(d.Grammar, d.Env, Config{})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := New(d.Grammar, d.Env, Config{})
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 4; seed++ {
			f := levelForest(d, seed)
			got := par.LabelStatesParallel(f, workers, nil)
			seq.ReleaseLabeling(seq.LabelStates(f))
			want := oracle.LabelResult(f)
			for _, n := range f.Nodes {
				for nt := range want.Rules[n.Index] {
					if want.Rules[n.Index][nt] != got.StateAt(n).Rule[nt] {
						t.Fatalf("workers=%d seed=%d node %d nt %d: level-parallel label disagrees with DP",
							workers, seed, n.Index, nt)
					}
				}
			}
			par.ReleaseLabeling(got)
		}
		if par.NumStates() != seq.NumStates() {
			t.Errorf("workers=%d: parallel automaton has %d states, sequential %d",
				workers, par.NumStates(), seq.NumStates())
		}
	}
}

// TestLevelParallelWarmAddsNothing: once the automaton is warm, the
// level-parallel path must be pure fast path — identical labels, no new
// states or transitions, and the per-call metrics must count every node
// exactly once across the workers.
func TestLevelParallelWarmAddsNothing(t *testing.T) {
	d := md.MustLoad("demo")
	e, err := New(d.Grammar, d.Env, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f := levelForest(d, 99)
	want := e.LabelStates(f) // warm up; keep as the reference labeling
	states, trans := e.NumStates(), e.NumTransitions()

	m := &metrics.Counters{}
	got := e.LabelStatesParallel(f, 4, m)
	for _, n := range f.Nodes {
		if want.StateAt(n) != got.StateAt(n) {
			t.Fatalf("node %d: warm level-parallel label differs from sequential", n.Index)
		}
	}
	if e.NumStates() != states || e.NumTransitions() != trans {
		t.Errorf("warm level-parallel labeling grew the automaton: %d->%d states, %d->%d transitions",
			states, e.NumStates(), trans, e.NumTransitions())
	}
	if m.NodesLabeled != int64(f.NumNodes()) {
		t.Errorf("metered %d nodes, want %d", m.NodesLabeled, f.NumNodes())
	}
	e.ReleaseLabeling(want)
	e.ReleaseLabeling(got)
}

// TestLevelParallelSmallForestFallsBack: below the fan-out threshold the
// parallel entry point must take the sequential path (same pooled
// labeling machinery, no goroutines) and still label correctly.
func TestLevelParallelSmallForestFallsBack(t *testing.T) {
	d := md.MustLoad("demo")
	e, err := New(d.Grammar, d.Env, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f := ir.RandomForest(d.Grammar, ir.RandomConfig{Seed: 5, Trees: 10, MaxDepth: 5, MaxLeafVal: 3})
	if f.NumNodes() >= reduce.MinParallelSpan {
		t.Fatalf("test forest too big: %d nodes", f.NumNodes())
	}
	want := e.LabelStates(f)
	got := e.LabelStatesParallel(f, 8, nil)
	for _, n := range f.Nodes {
		if want.StateAt(n) != got.StateAt(n) {
			t.Fatalf("node %d: fallback label differs", n.Index)
		}
	}
}

// TestLevelParallelForceHash drives the level fan-out through the
// open-addressing path: dynamic-signature keys under intra-forest
// concurrency, checked against the same engine relabeling sequentially.
func TestLevelParallelForceHash(t *testing.T) {
	d := md.MustLoad("demo")
	e, err := New(d.Grammar, d.Env, Config{ForceHash: true})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(20); seed < 24; seed++ {
		f := levelForest(d, seed)
		got := e.LabelStatesParallel(f, 8, nil)
		want := e.LabelStates(f)
		for _, n := range f.Nodes {
			if want.StateAt(n) != got.StateAt(n) {
				t.Fatalf("seed %d node %d: ForceHash level-parallel label differs", seed, n.Index)
			}
		}
		e.ReleaseLabeling(want)
		e.ReleaseLabeling(got)
	}
}
