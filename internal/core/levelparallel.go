package core

import (
	"sync"

	"repro/internal/automaton"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/reduce"
)

// levelsPool recycles level-partition scratch across LabelStatesParallel
// calls; a warm partition reuses its depth/order buffers.
var levelsPool = sync.Pool{New: func() any { return new(reduce.Levels) }}

// LabelStatesParallel is LabelStatesMetered with intra-forest fan-out:
// nodes are partitioned into topological levels and each wide level is
// labeled across up to workers goroutines against the shared warm tables,
// with a barrier between levels so every node's children are labeled
// first. The engine's fast path is lock-free and its slow path is
// per-operator-locked (see the package documentation), so concurrent
// labelNode calls on independent nodes are exactly the multi-client
// serving scenario it already supports — level parallelism just applies
// it inside one unit. workers <= 1 is the sequential path unchanged.
//
// The parallel path trades the warm zero-allocation guarantee for
// latency: partition scratch is pooled but the per-level goroutines
// allocate. Labelings are pooled as usual — release with ReleaseLabeling.
func (e *Engine) LabelStatesParallel(f *ir.Forest, workers int, m *metrics.Counters) *automaton.Labeling {
	if workers <= 1 || len(f.Nodes) < reduce.MinParallelSpan {
		return e.LabelStatesMetered(f, m)
	}
	if m == nil {
		m = e.m
	}
	lab := e.labels.Get().(*automaton.Labeling)
	ids := lab.Reuse(len(f.Nodes))
	lv := levelsPool.Get().(*reduce.Levels)
	lv.Partition(f)
	lv.Run(workers, func(idx int32) {
		ids[idx] = e.labelNode(f.Nodes[idx], ids, m)
	})
	levelsPool.Put(lv)
	lab.Bind(e.table)
	return lab
}

// LabelParallel implements reduce.ParallelLabeler.
func (e *Engine) LabelParallel(f *ir.Forest, workers int, m *metrics.Counters) reduce.Labeling {
	return e.LabelStatesParallel(f, workers, m)
}
