// Package core implements the paper's contribution: on-demand (lazy)
// tree-parsing automata for instruction selection, after Ertl, Casey and
// Gregg, "Fast and Flexible Instruction Selection with On-Demand
// Tree-Parsing Automata" (PLDI 2006).
//
// The automaton starts empty. When the labeler meets an (operator,
// child-state tuple, dynamic-cost signature) combination for the first
// time, it constructs the resulting state by running the iburg-style
// dynamic-programming step once (automaton.Compute), hash-conses the state
// and memoizes the transition. Every later occurrence takes the fast path:
// evaluate the operator's dynamic costs (none, for most operators) and do
// one table lookup.
//
// Operators without dynamic rules get dense transition arrays indexed by
// child state ids (a direct lookup, like a static automaton); operators
// with dynamic rules go through a hash table whose key includes the
// evaluated dynamic-cost signature — the structure the successor literature
// describes as "computing all the dynamic costs and a hash table lookup per
// node". Because states are constructed at selection time, dynamic costs
// work, which no offline automaton can offer.
package core

import (
	"encoding/binary"

	"repro/internal/automaton"
	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/metrics"
)

// Config tunes the on-demand engine.
type Config struct {
	// DeltaCap bounds relative costs in states (automaton.DefaultDeltaCap
	// if zero).
	DeltaCap grammar.Cost
	// Metrics receives event counts (may be nil).
	Metrics *metrics.Counters
	// ForceHash disables the dense direct-lookup arrays and routes every
	// transition through the hash maps; used by the table-layout ablation.
	ForceHash bool
}

// Engine is an on-demand tree-parsing automaton. It persists across
// Label calls — exactly the JIT scenario the paper targets: the automaton
// warms up as the compiler runs, and per-node labeling cost converges to a
// table lookup. Engines are not safe for concurrent use.
type Engine struct {
	g        *grammar.Grammar
	dynFns   []grammar.DynFunc
	table    *automaton.Table
	deltaCap grammar.Cost
	m        *metrics.Counters
	force    bool

	// Fixed-cost fast paths: dense, grown on demand.
	leaf []*automaton.State   // [op]
	un   [][]*automaton.State // [op][kidState]
	bin  [][][]*automaton.State

	// Dynamic-rule (and ForceHash) path: hash maps, keyed by child state
	// ids plus the dynamic-cost signature.
	hash []map[transKey]*automaton.State // [op]

	transitions int
	dynBuf      []grammar.Cost
	sigBuf      []byte
}

type transKey struct {
	l, r int32
	sig  string
}

// New creates an empty on-demand automaton for g. env binds the grammar's
// dynamic-cost function names (nil is fine for grammars without dynamic
// rules).
func New(g *grammar.Grammar, env grammar.DynEnv, cfg Config) (*Engine, error) {
	dyn, err := env.Bind(g)
	if err != nil {
		return nil, err
	}
	if cfg.DeltaCap == 0 {
		cfg.DeltaCap = automaton.DefaultDeltaCap
	}
	e := &Engine{
		g:        g,
		dynFns:   dyn,
		table:    automaton.NewTable(g),
		deltaCap: cfg.DeltaCap,
		m:        cfg.Metrics,
		force:    cfg.ForceHash,
		leaf:     make([]*automaton.State, g.NumOps()),
		un:       make([][]*automaton.State, g.NumOps()),
		bin:      make([][][]*automaton.State, g.NumOps()),
		hash:     make([]map[transKey]*automaton.State, g.NumOps()),
	}
	return e, nil
}

// Grammar returns the engine's grammar.
func (e *Engine) Grammar() *grammar.Grammar { return e.g }

// SetMetrics swaps the engine's counter sink (nil disables instrumenting).
// The experiment harness uses it to re-instrument a warmed engine without
// rebuilding its tables.
func (e *Engine) SetMetrics(m *metrics.Counters) { e.m = m }

// Table exposes the hash-consed state table (for inspection and tests).
func (e *Engine) Table() *automaton.Table { return e.table }

// NumStates returns the number of states materialized so far.
func (e *Engine) NumStates() int { return e.table.Len() }

// NumTransitions returns the number of transitions memoized so far.
func (e *Engine) NumTransitions() int { return e.transitions }

// Label assigns a state to every node of f (topological order, so DAGs are
// covered), constructing missing states and transitions on demand.
func (e *Engine) Label(f *ir.Forest) *automaton.Labeling {
	states := make([]*automaton.State, len(f.Nodes))
	for i, n := range f.Nodes {
		states[i] = e.LabelNode(n, states)
	}
	return &automaton.Labeling{States: states}
}

// LabelNode labels one node whose children are already labeled in states
// (indexed by node index). Exposed so incremental clients (the JIT
// example) can interleave labeling with other per-node work.
func (e *Engine) LabelNode(n *ir.Node, states []*automaton.State) *automaton.State {
	e.m.CountNode()
	op := n.Op

	// The fast path evaluates the operator's dynamic costs (rarely any)
	// and performs one lookup.
	var sig string
	dynamic := e.g.HasDynRules(op)
	if dynamic {
		sig = e.evalDyn(n, states)
	}

	if dynamic || e.force {
		return e.lookupHash(op, n, states, sig)
	}
	switch len(n.Kids) {
	case 0:
		e.m.CountProbe(e.leaf[op] == nil)
		if s := e.leaf[op]; s != nil {
			return s
		}
		s := e.construct(op, nil, nil)
		e.leaf[op] = s
		e.transitions++
		e.m.CountTransition()
		return s
	case 1:
		k := states[n.Kids[0].Index].ID
		row := e.un[op]
		if int(k) < len(row) && row[k] != nil {
			e.m.CountProbe(false)
			return row[k]
		}
		e.m.CountProbe(true)
		s := e.construct(op, []*automaton.State{states[n.Kids[0].Index]}, nil)
		e.un[op] = growRow(e.un[op], int(k))
		e.un[op][k] = s
		e.transitions++
		e.m.CountTransition()
		return s
	default:
		l := states[n.Kids[0].Index].ID
		r := states[n.Kids[1].Index].ID
		t := e.bin[op]
		if int(l) < len(t) {
			if row := t[l]; row != nil && int(r) < len(row) && row[r] != nil {
				e.m.CountProbe(false)
				return row[r]
			}
		}
		e.m.CountProbe(true)
		s := e.construct(op, []*automaton.State{states[n.Kids[0].Index], states[n.Kids[1].Index]}, nil)
		if int(l) >= len(e.bin[op]) {
			t := make([][]*automaton.State, int(l)+1+8)
			copy(t, e.bin[op])
			e.bin[op] = t
		}
		e.bin[op][l] = growRow(e.bin[op][l], int(r))
		e.bin[op][l][r] = s
		e.transitions++
		e.m.CountTransition()
		return s
	}
}

func growRow(row []*automaton.State, idx int) []*automaton.State {
	if idx < len(row) {
		return row
	}
	t := make([]*automaton.State, idx+1+8)
	copy(t, row)
	return t
}

// lookupHash handles operators with dynamic rules (and the ForceHash
// ablation): one map probe keyed by child states and signature.
func (e *Engine) lookupHash(op grammar.OpID, n *ir.Node, states []*automaton.State, sig string) *automaton.State {
	var key transKey
	key.sig = sig
	var kids []*automaton.State
	switch len(n.Kids) {
	case 0:
	case 1:
		kids = []*automaton.State{states[n.Kids[0].Index]}
		key.l = kids[0].ID
	default:
		kids = []*automaton.State{states[n.Kids[0].Index], states[n.Kids[1].Index]}
		key.l, key.r = kids[0].ID, kids[1].ID
	}
	h := e.hash[op]
	if h == nil {
		h = map[transKey]*automaton.State{}
		e.hash[op] = h
	}
	if s, ok := h[key]; ok {
		e.m.CountProbe(false)
		return s
	}
	e.m.CountProbe(true)
	s := e.construct(op, kids, e.dynBuf)
	h[key] = s
	e.transitions++
	e.m.CountTransition()
	return s
}

// evalDyn evaluates the dynamic rules of n's operator into e.dynBuf and
// returns the signature string that distinguishes transition outcomes.
// A dynamic-cost function only runs when its rule is structurally
// applicable (every kid nonterminal derivable in the kid's state); such
// functions inspect the matched pattern's shape, so calling them on
// non-matching nodes would be wrong — and skipping them also keeps the
// fast path's dynamic-evaluation count low.
func (e *Engine) evalDyn(n *ir.Node, states []*automaton.State) string {
	rules := e.g.DynRules(n.Op)
	e.dynBuf = e.dynBuf[:0]
	e.sigBuf = e.sigBuf[:0]
	for _, ri := range rules {
		r := &e.g.Rules[ri]
		c := grammar.Inf
		applicable := true
		for ki, kid := range n.Kids {
			if !states[kid.Index].Derives(r.Kids[ki]) {
				applicable = false
				break
			}
		}
		if applicable {
			e.m.CountDyn(1)
			c = e.dynFns[ri](n)
			if c >= grammar.Inf {
				c = grammar.Inf
			}
		}
		e.dynBuf = append(e.dynBuf, c)
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], uint32(c))
		e.sigBuf = append(e.sigBuf, tmp[:]...)
	}
	return string(e.sigBuf)
}

// construct is the slow path: run the DP step once and intern the result.
func (e *Engine) construct(op grammar.OpID, kids []*automaton.State, dynVals []grammar.Cost) *automaton.State {
	delta, rule := automaton.Compute(e.g, op, kids, dynVals, e.deltaCap, e.m)
	s, _ := e.table.Intern(delta, rule, e.m)
	return s
}

// MemoryBytes estimates the engine's current table footprint: interned
// states plus all memoized transition storage.
func (e *Engine) MemoryBytes() int {
	b := e.table.MemoryBytes()
	for op := range e.un {
		b += 8 * len(e.un[op])
		for _, row := range e.bin[op] {
			b += 8 * len(row)
		}
		b += 8 * len(e.bin[op])
		for k := range e.hash[op] {
			b += 16 + len(k.sig) + 8
		}
	}
	b += 8 * len(e.leaf)
	return b
}
