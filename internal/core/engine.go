// Package core implements the paper's contribution: on-demand (lazy)
// tree-parsing automata for instruction selection, after Ertl, Casey and
// Gregg, "Fast and Flexible Instruction Selection with On-Demand
// Tree-Parsing Automata" (PLDI 2006).
//
// The automaton starts empty. When the labeler meets an (operator,
// child-state tuple, dynamic-cost signature) combination for the first
// time, it constructs the resulting state by running the iburg-style
// dynamic-programming step once (automaton.Compute), hash-conses the state
// and memoizes the transition. Every later occurrence takes the fast path:
// evaluate the operator's dynamic costs (none, for most operators) and do
// one table lookup.
//
// Operators without dynamic rules get dense transition tables indexed by
// child state ids (a direct lookup, like a static automaton); operators
// with dynamic rules go through a hash table whose key includes the
// evaluated dynamic-cost signature — the structure the successor literature
// describes as "computing all the dynamic costs and a hash table lookup per
// node". Because states are constructed at selection time, dynamic costs
// work, which no offline automaton can offer.
//
// # Table layout
//
// The dense tables are flat int32 state-id arrays, not pointer arrays:
// unary operators get one row indexed by the child state id, binary
// operators one row-major grid indexed by left×stride+right. Entries are 4
// bytes instead of 8, and a binary lookup is one atomic pointer load (the
// operator's current grid) plus one indexed load — the "cost of one table
// lookup" the paper promises, with no per-row indirection. -1 marks a
// transition not yet constructed. State ids index automaton.Table, whose
// state list is append-only, so an id read from any published table cell
// always resolves.
//
// # Concurrency
//
// One warm engine can serve many goroutines — the compilation-server
// scenario the paper's JIT setting generalizes to. The design keeps the
// warm fast path lock-free and pushes all synchronization onto the
// construct slow path:
//
//   - Dense leaf/unary/binary tables are published copy-on-write through
//     one atomic pointer per operator; cells are written and read with
//     atomic int32 operations. Tables grow only under the operator's
//     slow-path mutex, and a grown table is fully populated before its
//     pointer is released.
//   - The construct slow path is sharded per operator: misses on
//     different operators construct concurrently (the dense tables and
//     open-addressing tables they write are per-op; the shared state table
//     synchronizes interning internally). Cold-start contention therefore
//     scales with the operator mix instead of serializing on one
//     engine-global lock.
//   - The hash-consing state table (automaton.Table) serializes interning
//     internally; see its documentation.
//   - The hash transition path (dynamic operators, ForceHash) uses one
//     open-addressing table per operator (see openTab): flat []uint64 key
//     words and []int32 id slots, linear probing, a lock-free hit path
//     with no interface conversions or boxed values, misses serialized on
//     the operator's mutex. Keys — child state ids plus the packed
//     dynamic-cost signature — are built in pooled scratch and copied into
//     the table only when a miss actually inserts them. Growth rehashes
//     into a double-size table published through the operator's atomic
//     pointer once fully populated.
//   - Per-call scratch (dynamic-cost values and signature bytes) comes
//     from a sync.Pool instead of engine fields, so concurrent labelers
//     never share buffers; the return to the pool is deferred, so a
//     panicking user dynamic-cost function cannot leak a buffer (the
//     panic itself propagates to the caller's containment boundary — the
//     compilation server recovers it per job). Labelings are pooled the
//     same way and flow back via ReleaseLabeling, which is what makes the
//     warm path allocation-free end to end.
//
// Label, LabelNode and Save may be called concurrently; SetMetrics and
// Load must be serialized against labeling (Load additionally requires a
// fresh engine). Metrics counters are themselves race-safe (atomic adds),
// so one Counters sink can instrument a parallel session. For per-caller
// accounting — the compilation server attributes work to clients —
// LabelStatesMetered counts one call's events into a caller-supplied
// sink instead of the engine's own.
package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/automaton"
	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/reduce"
)

// Config tunes the on-demand engine.
type Config struct {
	// DeltaCap bounds relative costs in states (automaton.DefaultDeltaCap
	// if zero).
	DeltaCap grammar.Cost
	// Metrics receives event counts (may be nil).
	Metrics *metrics.Counters
	// ForceHash disables the dense direct-lookup arrays and routes every
	// transition through the hash maps; used by the table-layout ablation.
	ForceHash bool
	// MaxStates bounds the number of states the engine may materialize
	// (0 = unlimited). Construction past the budget aborts the labeling
	// call with an error wrapping ErrStateBudget — the cap policy for
	// pathological grammars whose state space would otherwise grow without
	// bound in a long-lived server. Transitions between already-interned
	// states keep working at the cap.
	MaxStates int
}

// ErrStateBudget re-exports the typed state-budget error for callers that
// configure Config.MaxStates; match with errors.Is.
var ErrStateBudget = automaton.ErrStateBudget

// growSlack is the headroom added when a dense table grows, so a run of
// adjacent new states does not trigger a copy per state.
const growSlack = 8

// unRow is the dense transition row of a unary operator, indexed by the
// child state id. Cells hold state ids (-1 until constructed) and are
// accessed with atomic int32 operations because published rows are read
// concurrently.
type unRow []int32

// binGrid is the flat row-major dense table of a binary operator: cell
// [l*stride+r] holds the state id reached from left child state l and
// right child state r (-1 until constructed).
type binGrid struct {
	rows, stride int32
	cells        []int32
}

// Engine is an on-demand tree-parsing automaton. It persists across
// Label calls — exactly the JIT scenario the paper targets: the automaton
// warms up as the compiler runs, and per-node labeling cost converges to a
// table lookup. Engines are safe for concurrent labeling (see the package
// documentation for the contract). Engine implements reduce.Labeler,
// reduce.MeteredLabeler and reduce.LabelingRecycler.
type Engine struct {
	g        *grammar.Grammar
	dynFns   []grammar.DynFunc
	table    *automaton.Table
	deltaCap grammar.Cost
	m        *metrics.Counters
	force    bool

	// mus serializes the construct slow path per operator: state
	// construction, dense table growth and hash insertion. Misses on
	// different operators proceed concurrently; the warm fast path never
	// locks. Save and Load lock every shard (lockAll) for a consistent
	// whole-automaton snapshot.
	mus []sync.Mutex

	// Fixed-cost fast paths: dense flat id tables, grown on demand,
	// published atomically.
	leaf []atomic.Int32            // [op] -> state id, -1 until constructed
	un   []atomic.Pointer[unRow]   // [op][kidState] -> state id
	bin  []atomic.Pointer[binGrid] // [op][left*stride+right] -> state id

	// Dynamic-rule (and ForceHash) path: open-addressing tables keyed by
	// child state ids plus the packed dynamic-cost signature; slot values
	// are state ids. nil until the operator's first miss.
	dyn []atomic.Pointer[openTab] // [op]

	transitions atomic.Int64
	scratch     sync.Pool // *dynScratch
	labels      sync.Pool // *automaton.Labeling
}

// dynScratch holds the per-call buffers of the dynamic-cost evaluation;
// pooled so concurrent labelers never share them. key is the packed
// open-addressing probe key: word 0 is l<<32|r, the remaining words pack
// the signature costs two per word (low half first).
type dynScratch struct {
	dyn []grammar.Cost
	key []uint64
}

// New creates an empty on-demand automaton for g. env binds the grammar's
// dynamic-cost function names (nil is fine for grammars without dynamic
// rules).
func New(g *grammar.Grammar, env grammar.DynEnv, cfg Config) (*Engine, error) {
	dyn, err := env.Bind(g)
	if err != nil {
		return nil, err
	}
	if cfg.DeltaCap == 0 {
		cfg.DeltaCap = automaton.DefaultDeltaCap
	}
	table := automaton.NewTable(g)
	table.SetBudget(cfg.MaxStates)
	e := &Engine{
		g:        g,
		dynFns:   dyn,
		table:    table,
		deltaCap: cfg.DeltaCap,
		m:        cfg.Metrics,
		force:    cfg.ForceHash,
		mus:      make([]sync.Mutex, g.NumOps()),
		leaf:     make([]atomic.Int32, g.NumOps()),
		un:       make([]atomic.Pointer[unRow], g.NumOps()),
		bin:      make([]atomic.Pointer[binGrid], g.NumOps()),
		dyn:      make([]atomic.Pointer[openTab], g.NumOps()),
	}
	for op := range e.leaf {
		e.leaf[op].Store(-1) // 0 is a valid state id; -1 means "no transition yet"
	}
	e.scratch.New = func() any { return &dynScratch{} }
	e.labels.New = func() any { return &automaton.Labeling{} }
	return e, nil
}

// Grammar returns the engine's grammar.
func (e *Engine) Grammar() *grammar.Grammar { return e.g }

// SetMetrics swaps the engine's counter sink (nil disables instrumenting).
// The experiment harness uses it to re-instrument a warmed engine without
// rebuilding its tables. Not safe to call concurrently with labeling.
func (e *Engine) SetMetrics(m *metrics.Counters) { e.m = m }

// Table exposes the hash-consed state table (for inspection and tests).
func (e *Engine) Table() *automaton.Table { return e.table }

// NumStates returns the number of states materialized so far.
func (e *Engine) NumStates() int { return e.table.Len() }

// NumTransitions returns the number of transitions memoized so far.
func (e *Engine) NumTransitions() int { return int(e.transitions.Load()) }

// lockAll acquires every per-operator slow-path mutex (in index order, so
// concurrent lockAll calls cannot deadlock). Save and Load use it to
// freeze the whole automaton.
func (e *Engine) lockAll() {
	for op := range e.mus {
		e.mus[op].Lock()
	}
}

// unlockAll releases every per-operator slow-path mutex.
func (e *Engine) unlockAll() {
	for op := range e.mus {
		e.mus[op].Unlock()
	}
}

// LabelStates assigns a state to every node of f (topological order, so
// DAGs are covered), constructing missing states and transitions on
// demand. The labeling comes from an internal pool: hand it back with
// ReleaseLabeling when done to keep the warm path allocation-free, or
// keep it and let the GC have it eventually.
func (e *Engine) LabelStates(f *ir.Forest) *automaton.Labeling {
	return e.LabelStatesMetered(f, nil)
}

// LabelStatesMetered is LabelStates with per-call counter attribution:
// every event of this one call — fast-path probes, misses, dynamic
// evaluations, state constructions — is counted into m instead of the
// engine's configured sink. A nil m falls back to the engine sink. This is
// the metrics hook the compilation server uses to account one shared warm
// engine's work to individual clients.
func (e *Engine) LabelStatesMetered(f *ir.Forest, m *metrics.Counters) *automaton.Labeling {
	if m == nil {
		m = e.m
	}
	lab := e.labels.Get().(*automaton.Labeling)
	ids := lab.Reuse(len(f.Nodes))
	for i, n := range f.Nodes {
		ids[i] = e.labelNode(n, ids, m)
	}
	lab.Bind(e.table)
	return lab
}

// ReleaseLabeling implements reduce.LabelingRecycler: it returns a
// labeling obtained from LabelStates to the pool so the next call reuses
// its buffers. The labeling must not be used afterwards.
func (e *Engine) ReleaseLabeling(lab reduce.Labeling) {
	if l, ok := lab.(*automaton.Labeling); ok && l != nil {
		e.labels.Put(l)
	}
}

// Label implements reduce.Labeler; see LabelStates for the concrete
// per-node state assignment.
func (e *Engine) Label(f *ir.Forest) reduce.Labeling { return e.LabelStates(f) }

// LabelMetered implements reduce.MeteredLabeler.
func (e *Engine) LabelMetered(f *ir.Forest, m *metrics.Counters) reduce.Labeling {
	return e.LabelStatesMetered(f, m)
}

// LabelNode labels one node whose children are already labeled in ids
// (indexed by node index) and returns the node's state id. Exposed so
// incremental clients (the JIT scenario) can interleave labeling with
// other per-node work; resolve ids through Table().Get.
func (e *Engine) LabelNode(n *ir.Node, ids []int32) int32 {
	return e.labelNode(n, ids, e.m)
}

// labelDyn labels one node of an operator with dynamic-cost rules.
func (e *Engine) labelDyn(op grammar.OpID, n *ir.Node, ids []int32, m *metrics.Counters) int32 {
	sc := e.scratch.Get().(*dynScratch)
	// Deferred so a panicking user cost function cannot leak the pooled
	// buffers; see the package concurrency notes.
	defer e.scratch.Put(sc)
	e.evalDyn(n, ids, sc, m)
	return e.lookupHash(op, n, ids, sc.key, sc.dyn, m)
}

// labelForced labels one node through the hash path regardless of the
// operator's rules — the ForceHash ablation.
func (e *Engine) labelForced(op grammar.OpID, n *ir.Node, ids []int32, m *metrics.Counters) int32 {
	sc := e.scratch.Get().(*dynScratch)
	defer e.scratch.Put(sc)
	sc.key = append(sc.key[:0], packLR(n, ids))
	return e.lookupHash(op, n, ids, sc.key, nil, m)
}

// labelNode labels one node, counting events into m.
func (e *Engine) labelNode(n *ir.Node, ids []int32, m *metrics.Counters) int32 {
	m.CountNode()
	op := n.Op

	// The fast path evaluates the operator's dynamic costs (rarely any)
	// and performs one lookup. Both pooled-scratch paths live in their own
	// single-defer helpers: a second defer here would push labelNode past
	// the compiler's returns×defers open-coding budget and put the slow
	// deferred-call machinery on every warm dynamic probe.
	if e.g.HasDynRules(op) {
		return e.labelDyn(op, n, ids, m)
	}
	if e.force {
		return e.labelForced(op, n, ids, m)
	}
	switch len(n.Kids) {
	case 0:
		if id := e.leaf[op].Load(); id >= 0 {
			m.CountProbe(false)
			return id
		}
		return e.missLeaf(op, m)
	case 1:
		kid := ids[n.Kids[0].Index]
		if rp := e.un[op].Load(); rp != nil {
			if row := *rp; int(kid) < len(row) {
				if id := atomic.LoadInt32(&row[kid]); id >= 0 {
					m.CountProbe(false)
					return id
				}
			}
		}
		return e.missUn(op, kid, m)
	default:
		l := ids[n.Kids[0].Index]
		r := ids[n.Kids[1].Index]
		if t := e.bin[op].Load(); t != nil && l < t.rows && r < t.stride {
			if id := atomic.LoadInt32(&t.cells[l*t.stride+r]); id >= 0 {
				m.CountProbe(false)
				return id
			}
		}
		return e.missBin(op, l, r, m)
	}
}

// missLeaf is the leaf slow path: construct under the operator's mutex,
// re-checking first because another goroutine may have won the race.
func (e *Engine) missLeaf(op grammar.OpID, m *metrics.Counters) int32 {
	e.mus[op].Lock()
	defer e.mus[op].Unlock()
	if id := e.leaf[op].Load(); id >= 0 {
		m.CountProbe(false)
		return id
	}
	m.CountProbe(true)
	s := e.construct(op, nil, nil, m)
	e.leaf[op].Store(s.ID)
	e.addTransition(m)
	return s.ID
}

func (e *Engine) missUn(op grammar.OpID, kid int32, m *metrics.Counters) int32 {
	e.mus[op].Lock()
	defer e.mus[op].Unlock()
	if rp := e.un[op].Load(); rp != nil {
		if row := *rp; int(kid) < len(row) {
			if id := atomic.LoadInt32(&row[kid]); id >= 0 {
				m.CountProbe(false)
				return id
			}
		}
	}
	m.CountProbe(true)
	s := e.construct(op, []*automaton.State{e.table.Get(kid)}, nil, m)
	e.setUnLocked(op, int(kid), s.ID)
	e.addTransition(m)
	return s.ID
}

func (e *Engine) missBin(op grammar.OpID, l, r int32, m *metrics.Counters) int32 {
	e.mus[op].Lock()
	defer e.mus[op].Unlock()
	if t := e.bin[op].Load(); t != nil && l < t.rows && r < t.stride {
		if id := atomic.LoadInt32(&t.cells[l*t.stride+r]); id >= 0 {
			m.CountProbe(false)
			return id
		}
	}
	m.CountProbe(true)
	s := e.construct(op, []*automaton.State{e.table.Get(l), e.table.Get(r)}, nil, m)
	e.setBinLocked(op, int(l), int(r), s.ID)
	e.addTransition(m)
	return s.ID
}

// setUnLocked writes un[op][kid] = id, growing the row copy-on-write when
// kid is out of range. Caller holds e.mus[op].
func (e *Engine) setUnLocked(op grammar.OpID, kid int, id int32) {
	rp := e.un[op].Load()
	if rp != nil && kid < len(*rp) {
		atomic.StoreInt32(&(*rp)[kid], id)
		return
	}
	var old unRow
	if rp != nil {
		old = *rp
	}
	row := make(unRow, kid+1+growSlack)
	copy(row, old)
	for i := len(old); i < len(row); i++ {
		row[i] = -1
	}
	row[kid] = id
	// The new row is fully populated before the pointer is released.
	e.un[op].Store(&row)
}

// setBinLocked writes bin[op][l][r] = id, growing the grid copy-on-write
// (both dimensions at once) when (l, r) is out of range. Caller holds
// e.mus[op].
func (e *Engine) setBinLocked(op grammar.OpID, l, r int, id int32) {
	old := e.bin[op].Load()
	if old != nil && int32(l) < old.rows && int32(r) < old.stride {
		atomic.StoreInt32(&old.cells[int32(l)*old.stride+int32(r)], id)
		return
	}
	rows, stride := int32(l+1+growSlack), int32(r+1+growSlack)
	if old != nil {
		if old.rows > rows {
			rows = old.rows
		}
		if old.stride > stride {
			stride = old.stride
		}
	}
	t := &binGrid{rows: rows, stride: stride, cells: make([]int32, int(rows)*int(stride))}
	for i := range t.cells {
		t.cells[i] = -1
	}
	if old != nil {
		for li := int32(0); li < old.rows; li++ {
			copy(t.cells[li*stride:li*stride+old.stride], old.cells[li*old.stride:(li+1)*old.stride])
		}
	}
	t.cells[int32(l)*stride+int32(r)] = id
	// Fully populated before publication.
	e.bin[op].Store(t)
}

// addTransition accounts one memoized transition. Caller holds the
// operator's slow-path mutex.
func (e *Engine) addTransition(m *metrics.Counters) {
	e.transitions.Add(1)
	m.CountTransition()
}

// packLR packs n's child state ids into the first key word: left id in
// the high 32 bits, right in the low (the same convention the persisted
// binary triples use). Absent children pack as state 0 slots of zero —
// unambiguous because the operator's arity is fixed by the grammar.
func packLR(n *ir.Node, ids []int32) uint64 {
	var l, r int32
	switch len(n.Kids) {
	case 0:
	case 1:
		l = ids[n.Kids[0].Index]
	default:
		l, r = ids[n.Kids[0].Index], ids[n.Kids[1].Index]
	}
	return uint64(uint32(l))<<32 | uint64(uint32(r))
}

// keyWords returns the fixed open-addressing key width of op: one (l, r)
// word plus the packed signature words (two 32-bit costs per word).
func (e *Engine) keyWords(op grammar.OpID) int {
	return 1 + (len(e.g.DynRules(op))+1)/2
}

// lookupHash handles operators with dynamic rules (and the ForceHash
// ablation): one open-addressing probe keyed by the packed key words. key
// aliases pooled scratch — the hit path never copies it; the miss path
// copies it into the table on insertion.
func (e *Engine) lookupHash(op grammar.OpID, n *ir.Node, ids []int32, key []uint64, dynVals []grammar.Cost, m *metrics.Counters) int32 {
	h := hashKey(key)
	if t := e.dyn[op].Load(); t != nil {
		if id, ok := t.get(key, h); ok {
			m.CountProbe(false)
			return id
		}
	}
	e.mus[op].Lock()
	defer e.mus[op].Unlock()
	if t := e.dyn[op].Load(); t != nil {
		if id, ok := t.get(key, h); ok {
			m.CountProbe(false)
			return id
		}
	}
	m.CountProbe(true)
	var kbuf [2]*automaton.State
	kids := kbuf[:0]
	for ki := range n.Kids {
		kids = append(kids, e.table.Get(ids[n.Kids[ki].Index]))
	}
	s := e.construct(op, kids, dynVals, m)
	e.insertDynLocked(op, key, h, s.ID)
	e.addTransition(m)
	return s.ID
}

// insertDynLocked memoizes (key -> id) in op's open table, allocating or
// growing it as needed. Caller holds e.mus[op]. A fresh or grown table is
// fully populated before its pointer is published.
func (e *Engine) insertDynLocked(op grammar.OpID, key []uint64, h uint64, id int32) {
	t := e.dyn[op].Load()
	switch {
	case t == nil:
		t = newOpenTab(len(key), openTabMinCap)
		t.insertLocked(key, h, id)
		e.dyn[op].Store(t)
	case t.full():
		nt := t.grown()
		nt.insertLocked(key, h, id)
		e.dyn[op].Store(nt)
	default:
		t.insertLocked(key, h, id)
	}
}

// evalDyn evaluates the dynamic rules of n's operator into sc.dyn and
// packs the probe key (sc.key) that distinguishes transition outcomes:
// the (l, r) word followed by the signature costs, two 32-bit values per
// word with the earlier rule in the low half — the same byte image the
// persisted signature uses, so saved automata round-trip bit-exactly. A
// dynamic-cost function only runs when its rule is structurally
// applicable (every kid nonterminal derivable in the kid's state); such
// functions inspect the matched pattern's shape, so calling them on
// non-matching nodes would be wrong — and skipping them also keeps the
// fast path's dynamic-evaluation count low.
func (e *Engine) evalDyn(n *ir.Node, ids []int32, sc *dynScratch, m *metrics.Counters) {
	rules := e.g.DynRules(n.Op)
	// One snapshot resolves every kid id: kid states were interned before
	// their ids were published, and the state list is append-only.
	states := e.table.States()
	sc.dyn = sc.dyn[:0]
	sc.key = append(sc.key[:0], packLR(n, ids))
	var w uint64
	for i, ri := range rules {
		r := &e.g.Rules[ri]
		c := grammar.Inf
		applicable := true
		for ki, kid := range n.Kids {
			if !states[ids[kid.Index]].Derives(r.Kids[ki]) {
				applicable = false
				break
			}
		}
		if applicable {
			m.CountDyn(1)
			c = e.dynFns[ri](n)
			if c >= grammar.Inf {
				c = grammar.Inf
			}
		}
		sc.dyn = append(sc.dyn, c)
		if i%2 == 0 {
			w = uint64(uint32(c))
		} else {
			sc.key = append(sc.key, w|uint64(uint32(c))<<32)
		}
	}
	if len(rules)%2 == 1 {
		sc.key = append(sc.key, w)
	}
}

// construct is the slow path: run the DP step once and intern the result.
// Callers hold the operator's slow-path mutex, so concurrent misses of the
// same transition construct once; the state table additionally dedups by
// content (which also keeps states interned from different operators'
// shards consistent).
//
// When Config.MaxStates is set and interning would exceed it, construct
// panics with the ErrStateBudget-wrapping error. A panic is the only way
// out of the Label fast path (the reduce.Labeler interface is error-free
// by design — the warm path cannot fail); every lock and pooled buffer on
// the way up is released by defers, and the API layer (Selector.Compile)
// recovers the typed error and returns it to the caller.
func (e *Engine) construct(op grammar.OpID, kids []*automaton.State, dynVals []grammar.Cost, m *metrics.Counters) *automaton.State {
	delta, rule := automaton.Compute(e.g, op, kids, dynVals, e.deltaCap, m)
	s, _, err := e.table.InternBudget(delta, rule, m)
	if err != nil {
		panic(err)
	}
	return s
}

// MemoryBytes estimates the engine's current table footprint: interned
// states plus all memoized transition storage. Dense entries are 4 bytes
// (flat int32 state ids).
func (e *Engine) MemoryBytes() int {
	b := e.table.MemoryBytes()
	for op := range e.un {
		if rp := e.un[op].Load(); rp != nil {
			b += 4 * len(*rp)
		}
		if t := e.bin[op].Load(); t != nil {
			b += 4*len(t.cells) + 16
		}
		if t := e.dyn[op].Load(); t != nil {
			b += t.memoryBytes()
		}
	}
	b += 4 * len(e.leaf)
	return b
}
