// Package core implements the paper's contribution: on-demand (lazy)
// tree-parsing automata for instruction selection, after Ertl, Casey and
// Gregg, "Fast and Flexible Instruction Selection with On-Demand
// Tree-Parsing Automata" (PLDI 2006).
//
// The automaton starts empty. When the labeler meets an (operator,
// child-state tuple, dynamic-cost signature) combination for the first
// time, it constructs the resulting state by running the iburg-style
// dynamic-programming step once (automaton.Compute), hash-conses the state
// and memoizes the transition. Every later occurrence takes the fast path:
// evaluate the operator's dynamic costs (none, for most operators) and do
// one table lookup.
//
// Operators without dynamic rules get dense transition arrays indexed by
// child state ids (a direct lookup, like a static automaton); operators
// with dynamic rules go through a hash table whose key includes the
// evaluated dynamic-cost signature — the structure the successor literature
// describes as "computing all the dynamic costs and a hash table lookup per
// node". Because states are constructed at selection time, dynamic costs
// work, which no offline automaton can offer.
//
// # Concurrency
//
// One warm engine can serve many goroutines — the compilation-server
// scenario the paper's JIT setting generalizes to. The design keeps the
// warm fast path lock-free and pushes all synchronization onto the
// construct slow path:
//
//   - Dense leaf/unary/binary transition rows are published
//     copy-on-write through atomic pointers; fast-path lookups are plain
//     atomic loads. Rows grow only under the operator's slow-path mutex,
//     and a grown row is fully populated before its pointer is released.
//   - The construct slow path is sharded per operator: misses on
//     different operators construct concurrently (the dense rows and hash
//     maps they write are per-op; the shared state table synchronizes
//     interning internally). Cold-start contention therefore scales with
//     the operator mix instead of serializing on one engine-global lock.
//   - The hash-consing state table (automaton.Table) serializes interning
//     internally; see its documentation.
//   - The hash transition path (dynamic operators, ForceHash) uses one
//     sync.Map per operator: lock-free hit path, misses serialized on the
//     operator's mutex.
//   - Per-call scratch (dynamic-cost values and signature bytes) comes
//     from a sync.Pool instead of engine fields, so concurrent labelers
//     never share buffers. Per-forest state slices are allocated per
//     Label call and handed to the caller.
//
// Label, LabelNode and Save may be called concurrently; SetMetrics and
// Load must be serialized against labeling (Load additionally requires a
// fresh engine). Metrics counters are themselves race-safe (atomic adds),
// so one Counters sink can instrument a parallel session. For per-caller
// accounting — the compilation server attributes work to clients —
// LabelStatesMetered counts one call's events into a caller-supplied
// sink instead of the engine's own.
package core

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"repro/internal/automaton"
	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/reduce"
)

// Config tunes the on-demand engine.
type Config struct {
	// DeltaCap bounds relative costs in states (automaton.DefaultDeltaCap
	// if zero).
	DeltaCap grammar.Cost
	// Metrics receives event counts (may be nil).
	Metrics *metrics.Counters
	// ForceHash disables the dense direct-lookup arrays and routes every
	// transition through the hash maps; used by the table-layout ablation.
	ForceHash bool
}

// stateRow is a dense transition row indexed by a child state id. Elements
// are written atomically because published rows are read concurrently.
type stateRow []atomic.Pointer[automaton.State]

// binTable is the two-level dense table of a binary operator, indexed by
// the left child state id; each row is indexed by the right child id.
type binTable []atomic.Pointer[stateRow]

// Engine is an on-demand tree-parsing automaton. It persists across
// Label calls — exactly the JIT scenario the paper targets: the automaton
// warms up as the compiler runs, and per-node labeling cost converges to a
// table lookup. Engines are safe for concurrent labeling (see the package
// documentation for the contract). Engine implements reduce.Labeler and
// reduce.MeteredLabeler.
type Engine struct {
	g        *grammar.Grammar
	dynFns   []grammar.DynFunc
	table    *automaton.Table
	deltaCap grammar.Cost
	m        *metrics.Counters
	force    bool

	// mus serializes the construct slow path per operator: state
	// construction, dense row growth and hash insertion. Misses on
	// different operators proceed concurrently; the warm fast path never
	// locks. Save and Load lock every shard (lockAll) for a consistent
	// whole-automaton snapshot.
	mus []sync.Mutex

	// Fixed-cost fast paths: dense, grown on demand, published atomically.
	leaf []atomic.Pointer[automaton.State] // [op]
	un   []atomic.Pointer[stateRow]        // [op][kidState]
	bin  []atomic.Pointer[binTable]        // [op][left][right]

	// Dynamic-rule (and ForceHash) path: hash maps, keyed by child state
	// ids plus the dynamic-cost signature.
	hash []sync.Map // [op]: transKey -> *automaton.State

	transitions atomic.Int64
	scratch     sync.Pool // *dynScratch
}

type transKey struct {
	l, r int32
	sig  string
}

// dynScratch holds the per-call buffers of the dynamic-cost evaluation;
// pooled so concurrent labelers never share them.
type dynScratch struct {
	dyn []grammar.Cost
	sig []byte
}

// New creates an empty on-demand automaton for g. env binds the grammar's
// dynamic-cost function names (nil is fine for grammars without dynamic
// rules).
func New(g *grammar.Grammar, env grammar.DynEnv, cfg Config) (*Engine, error) {
	dyn, err := env.Bind(g)
	if err != nil {
		return nil, err
	}
	if cfg.DeltaCap == 0 {
		cfg.DeltaCap = automaton.DefaultDeltaCap
	}
	e := &Engine{
		g:        g,
		dynFns:   dyn,
		table:    automaton.NewTable(g),
		deltaCap: cfg.DeltaCap,
		m:        cfg.Metrics,
		force:    cfg.ForceHash,
		mus:      make([]sync.Mutex, g.NumOps()),
		leaf:     make([]atomic.Pointer[automaton.State], g.NumOps()),
		un:       make([]atomic.Pointer[stateRow], g.NumOps()),
		bin:      make([]atomic.Pointer[binTable], g.NumOps()),
		hash:     make([]sync.Map, g.NumOps()),
	}
	e.scratch.New = func() any { return &dynScratch{} }
	return e, nil
}

// Grammar returns the engine's grammar.
func (e *Engine) Grammar() *grammar.Grammar { return e.g }

// SetMetrics swaps the engine's counter sink (nil disables instrumenting).
// The experiment harness uses it to re-instrument a warmed engine without
// rebuilding its tables. Not safe to call concurrently with labeling.
func (e *Engine) SetMetrics(m *metrics.Counters) { e.m = m }

// Table exposes the hash-consed state table (for inspection and tests).
func (e *Engine) Table() *automaton.Table { return e.table }

// NumStates returns the number of states materialized so far.
func (e *Engine) NumStates() int { return e.table.Len() }

// NumTransitions returns the number of transitions memoized so far.
func (e *Engine) NumTransitions() int { return int(e.transitions.Load()) }

// lockAll acquires every per-operator slow-path mutex (in index order, so
// concurrent lockAll calls cannot deadlock). Save and Load use it to
// freeze the whole automaton.
func (e *Engine) lockAll() {
	for op := range e.mus {
		e.mus[op].Lock()
	}
}

// unlockAll releases every per-operator slow-path mutex.
func (e *Engine) unlockAll() {
	for op := range e.mus {
		e.mus[op].Unlock()
	}
}

// LabelStates assigns a state to every node of f (topological order, so
// DAGs are covered), constructing missing states and transitions on
// demand.
func (e *Engine) LabelStates(f *ir.Forest) *automaton.Labeling {
	return e.LabelStatesMetered(f, nil)
}

// LabelStatesMetered is LabelStates with per-call counter attribution:
// every event of this one call — fast-path probes, misses, dynamic
// evaluations, state constructions — is counted into m instead of the
// engine's configured sink. A nil m falls back to the engine sink. This is
// the metrics hook the compilation server uses to account one shared warm
// engine's work to individual clients.
func (e *Engine) LabelStatesMetered(f *ir.Forest, m *metrics.Counters) *automaton.Labeling {
	if m == nil {
		m = e.m
	}
	states := make([]*automaton.State, len(f.Nodes))
	for i, n := range f.Nodes {
		states[i] = e.labelNode(n, states, m)
	}
	return &automaton.Labeling{States: states}
}

// Label implements reduce.Labeler; see LabelStates for the concrete
// per-node state assignment.
func (e *Engine) Label(f *ir.Forest) reduce.Labeling { return e.LabelStates(f) }

// LabelMetered implements reduce.MeteredLabeler.
func (e *Engine) LabelMetered(f *ir.Forest, m *metrics.Counters) reduce.Labeling {
	return e.LabelStatesMetered(f, m)
}

// LabelNode labels one node whose children are already labeled in states
// (indexed by node index). Exposed so incremental clients (the JIT
// example) can interleave labeling with other per-node work.
func (e *Engine) LabelNode(n *ir.Node, states []*automaton.State) *automaton.State {
	return e.labelNode(n, states, e.m)
}

// labelNode labels one node, counting events into m.
func (e *Engine) labelNode(n *ir.Node, states []*automaton.State, m *metrics.Counters) *automaton.State {
	m.CountNode()
	op := n.Op

	// The fast path evaluates the operator's dynamic costs (rarely any)
	// and performs one lookup.
	if e.g.HasDynRules(op) {
		sc := e.scratch.Get().(*dynScratch)
		sig := e.evalDyn(n, states, sc, m)
		s := e.lookupHash(op, n, states, sig, sc.dyn, m)
		e.scratch.Put(sc)
		return s
	}
	if e.force {
		return e.lookupHash(op, n, states, "", nil, m)
	}
	switch len(n.Kids) {
	case 0:
		if s := e.leaf[op].Load(); s != nil {
			m.CountProbe(false)
			return s
		}
		return e.missLeaf(op, m)
	case 1:
		kid := states[n.Kids[0].Index]
		if rp := e.un[op].Load(); rp != nil {
			if row := *rp; int(kid.ID) < len(row) {
				if s := row[kid.ID].Load(); s != nil {
					m.CountProbe(false)
					return s
				}
			}
		}
		return e.missUn(op, kid, m)
	default:
		l := states[n.Kids[0].Index]
		r := states[n.Kids[1].Index]
		if tp := e.bin[op].Load(); tp != nil {
			if tbl := *tp; int(l.ID) < len(tbl) {
				if rp := tbl[l.ID].Load(); rp != nil {
					if row := *rp; int(r.ID) < len(row) {
						if s := row[r.ID].Load(); s != nil {
							m.CountProbe(false)
							return s
						}
					}
				}
			}
		}
		return e.missBin(op, l, r, m)
	}
}

// missLeaf is the leaf slow path: construct under the operator's mutex,
// re-checking first because another goroutine may have won the race.
func (e *Engine) missLeaf(op grammar.OpID, m *metrics.Counters) *automaton.State {
	e.mus[op].Lock()
	defer e.mus[op].Unlock()
	if s := e.leaf[op].Load(); s != nil {
		m.CountProbe(false)
		return s
	}
	m.CountProbe(true)
	s := e.construct(op, nil, nil, m)
	e.leaf[op].Store(s)
	e.addTransition(m)
	return s
}

func (e *Engine) missUn(op grammar.OpID, kid *automaton.State, m *metrics.Counters) *automaton.State {
	e.mus[op].Lock()
	defer e.mus[op].Unlock()
	k := int(kid.ID)
	if rp := e.un[op].Load(); rp != nil {
		if row := *rp; k < len(row) {
			if s := row[k].Load(); s != nil {
				m.CountProbe(false)
				return s
			}
		}
	}
	m.CountProbe(true)
	s := e.construct(op, []*automaton.State{kid}, nil, m)
	row := growRow(e.un[op].Load(), k)
	row[k].Store(s)
	e.un[op].Store(&row)
	e.addTransition(m)
	return s
}

func (e *Engine) missBin(op grammar.OpID, l, r *automaton.State, m *metrics.Counters) *automaton.State {
	e.mus[op].Lock()
	defer e.mus[op].Unlock()
	li, ri := int(l.ID), int(r.ID)
	if tp := e.bin[op].Load(); tp != nil {
		if tbl := *tp; li < len(tbl) {
			if rp := tbl[li].Load(); rp != nil {
				if row := *rp; ri < len(row) {
					if s := row[ri].Load(); s != nil {
						m.CountProbe(false)
						return s
					}
				}
			}
		}
	}
	m.CountProbe(true)
	s := e.construct(op, []*automaton.State{l, r}, nil, m)
	e.setBinLocked(op, li, ri, s)
	e.addTransition(m)
	return s
}

// setBinLocked writes bin[op][l][r] = s, growing both levels as needed.
// Caller holds e.mus[op].
func (e *Engine) setBinLocked(op grammar.OpID, l, r int, s *automaton.State) {
	var tbl binTable
	if tp := e.bin[op].Load(); tp != nil {
		tbl = *tp
	}
	if l >= len(tbl) {
		nt := make(binTable, l+1+8)
		for i := range tbl {
			nt[i].Store(tbl[i].Load())
		}
		tbl = nt
	}
	var row stateRow
	if rp := tbl[l].Load(); rp != nil {
		row = *rp
	}
	row = growRow(&row, r)
	row[r].Store(s)
	tbl[l].Store(&row)
	e.bin[op].Store(&tbl)
}

// growRow returns a row long enough to index idx, copying the old one if
// it must grow. Copies happen under the operator's mutex, before the new
// row is published.
func growRow(rp *stateRow, idx int) stateRow {
	var row stateRow
	if rp != nil {
		row = *rp
	}
	if idx < len(row) {
		return row
	}
	t := make(stateRow, idx+1+8)
	for i := range row {
		t[i].Store(row[i].Load())
	}
	return t
}

// addTransition accounts one memoized transition. Caller holds the
// operator's slow-path mutex.
func (e *Engine) addTransition(m *metrics.Counters) {
	e.transitions.Add(1)
	m.CountTransition()
}

// lookupHash handles operators with dynamic rules (and the ForceHash
// ablation): one map probe keyed by child states and signature.
func (e *Engine) lookupHash(op grammar.OpID, n *ir.Node, states []*automaton.State, sig string, dynVals []grammar.Cost, m *metrics.Counters) *automaton.State {
	var key transKey
	key.sig = sig
	var kbuf [2]*automaton.State
	kids := kbuf[:0]
	switch len(n.Kids) {
	case 0:
	case 1:
		kids = append(kids, states[n.Kids[0].Index])
		key.l = kids[0].ID
	default:
		kids = append(kids, states[n.Kids[0].Index], states[n.Kids[1].Index])
		key.l, key.r = kids[0].ID, kids[1].ID
	}
	h := &e.hash[op]
	if s, ok := h.Load(key); ok {
		m.CountProbe(false)
		return s.(*automaton.State)
	}
	e.mus[op].Lock()
	defer e.mus[op].Unlock()
	if s, ok := h.Load(key); ok {
		m.CountProbe(false)
		return s.(*automaton.State)
	}
	m.CountProbe(true)
	s := e.construct(op, kids, dynVals, m)
	h.Store(key, s)
	e.addTransition(m)
	return s
}

// evalDyn evaluates the dynamic rules of n's operator into sc.dyn and
// returns the signature string that distinguishes transition outcomes.
// A dynamic-cost function only runs when its rule is structurally
// applicable (every kid nonterminal derivable in the kid's state); such
// functions inspect the matched pattern's shape, so calling them on
// non-matching nodes would be wrong — and skipping them also keeps the
// fast path's dynamic-evaluation count low.
func (e *Engine) evalDyn(n *ir.Node, states []*automaton.State, sc *dynScratch, m *metrics.Counters) string {
	rules := e.g.DynRules(n.Op)
	sc.dyn = sc.dyn[:0]
	sc.sig = sc.sig[:0]
	for _, ri := range rules {
		r := &e.g.Rules[ri]
		c := grammar.Inf
		applicable := true
		for ki, kid := range n.Kids {
			if !states[kid.Index].Derives(r.Kids[ki]) {
				applicable = false
				break
			}
		}
		if applicable {
			m.CountDyn(1)
			c = e.dynFns[ri](n)
			if c >= grammar.Inf {
				c = grammar.Inf
			}
		}
		sc.dyn = append(sc.dyn, c)
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], uint32(c))
		sc.sig = append(sc.sig, tmp[:]...)
	}
	return string(sc.sig)
}

// construct is the slow path: run the DP step once and intern the result.
// Callers hold the operator's slow-path mutex, so concurrent misses of the
// same transition construct once; the state table additionally dedups by
// content (which also keeps states interned from different operators'
// shards consistent).
func (e *Engine) construct(op grammar.OpID, kids []*automaton.State, dynVals []grammar.Cost, m *metrics.Counters) *automaton.State {
	delta, rule := automaton.Compute(e.g, op, kids, dynVals, e.deltaCap, m)
	s, _ := e.table.Intern(delta, rule, m)
	return s
}

// MemoryBytes estimates the engine's current table footprint: interned
// states plus all memoized transition storage.
func (e *Engine) MemoryBytes() int {
	b := e.table.MemoryBytes()
	for op := range e.un {
		if rp := e.un[op].Load(); rp != nil {
			b += 8 * len(*rp)
		}
		if tp := e.bin[op].Load(); tp != nil {
			tbl := *tp
			b += 8 * len(tbl)
			for i := range tbl {
				if rp := tbl[i].Load(); rp != nil {
					b += 8 * len(*rp)
				}
			}
		}
		e.hash[op].Range(func(k, _ any) bool {
			b += 16 + len(k.(transKey).sig) + 8
			return true
		})
	}
	b += 8 * len(e.leaf)
	return b
}
