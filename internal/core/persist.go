package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/automaton"
	"repro/internal/grammar"
)

// Save/Load persist an on-demand automaton: the natural extension of lazy
// construction to a JIT that runs more than once. A saved automaton
// restores every interned state and memoized transition, so a warmed
// compiler starts its next run with a fully hot fast path (zero misses on
// the same workload) instead of re-deriving states it has seen before.
//
// The format is tied to the exact grammar: a fingerprint of the
// normal-form dump is embedded and checked on load, because state vectors
// index nonterminals and rules by position.

const persistMagic = "ODTA1\n"

// Fingerprint identifies a grammar for persistence compatibility.
func Fingerprint(g *grammar.Grammar) uint64 {
	h := fnv.New64a()
	io.WriteString(h, g.Name)
	io.WriteString(h, g.Dump())
	return h.Sum64()
}

// Save writes the engine's automaton (states + transitions) to w. It
// holds every per-operator construct lock for the duration, so the state
// list and the transition tables are written as one consistent snapshot
// even while other goroutines keep labeling (their fast paths are
// unaffected; their misses wait).
func (e *Engine) Save(w io.Writer) error {
	e.lockAll()
	defer e.unlockAll()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return err
	}
	put := func(v uint64) { binary.Write(bw, binary.LittleEndian, v) }
	put(Fingerprint(e.g))
	put(uint64(e.g.NumNonterms()))

	states := e.table.States()
	put(uint64(len(states)))
	for _, s := range states {
		for nt := range s.Delta {
			put(uint64(uint32(s.Delta[nt])))
			put(uint64(uint32(s.Rule[nt])))
		}
	}

	// Dense transitions. Cells are read plainly: every writer holds the
	// operator mutex we already hold via lockAll.
	var leaf, un, bin [][3]int64
	for op := range e.leaf {
		if id := e.leaf[op].Load(); id >= 0 {
			leaf = append(leaf, [3]int64{int64(op), int64(id), 0})
		}
		if rp := e.un[op].Load(); rp != nil {
			for k, id := range *rp {
				if id >= 0 {
					un = append(un, [3]int64{int64(op), int64(k), int64(id)})
				}
			}
		}
		if t := e.bin[op].Load(); t != nil {
			for l := int32(0); l < t.rows; l++ {
				for r := int32(0); r < t.stride; r++ {
					if id := t.cells[l*t.stride+r]; id >= 0 {
						bin = append(bin, [3]int64{int64(op), int64(l)<<32 | int64(r), int64(id)})
					}
				}
			}
		}
	}
	writeTriples := func(ts [][3]int64) {
		put(uint64(len(ts)))
		for _, t := range ts {
			put(uint64(t[0]))
			put(uint64(t[1]))
			put(uint64(t[2]))
		}
	}
	writeTriples(leaf)
	writeTriples(un)
	writeTriples(bin)

	// Hash transitions (dynamic operators and ForceHash), unpacked from the
	// open-addressing tables back into the (op, l, r, sig, id) wire entries
	// the format has always used — the signature byte image equals the
	// little-endian key words truncated to 4 bytes per dynamic rule, so
	// blobs saved before the open tables load unchanged. Count first.
	nHash := 0
	for op := range e.dyn {
		if t := e.dyn[op].Load(); t != nil {
			nHash += t.used
		}
	}
	put(uint64(nHash))
	for op := range e.dyn {
		t := e.dyn[op].Load()
		if t == nil {
			continue
		}
		sigLen := 4 * len(e.g.DynRules(grammar.OpID(op)))
		kw := t.kw
		for slot := 0; slot <= int(t.mask); slot++ {
			id := t.ids[slot]
			if id < 0 {
				continue
			}
			key := t.keys[slot*kw : slot*kw+kw]
			put(uint64(op))
			put(uint64(uint32(key[0] >> 32))) // l
			put(uint64(uint32(key[0])))       // r
			put(uint64(sigLen))
			for j := 0; j < sigLen/4; j++ {
				c := uint32(key[1+j/2] >> (32 * uint(j%2)))
				var tmp [4]byte
				binary.LittleEndian.PutUint32(tmp[:], c)
				bw.Write(tmp[:])
			}
			put(uint64(id))
		}
	}
	return bw.Flush()
}

// Load restores a previously saved automaton into a fresh engine for the
// same grammar. Loading into a non-empty engine is rejected.
func (e *Engine) Load(r io.Reader) error {
	if e.table.Len() != 0 {
		return fmt.Errorf("core: Load requires a fresh engine")
	}
	// Load must be serialized against labeling (fresh engine, single
	// goroutine); the locks keep the *Locked helpers' invariant honest.
	e.lockAll()
	defer e.unlockAll()
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("core: reading automaton header: %w", err)
	}
	if string(magic) != persistMagic {
		return fmt.Errorf("core: not a saved automaton (bad magic %q)", magic)
	}
	get := func() (uint64, error) {
		var v uint64
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	fp, err := get()
	if err != nil {
		return err
	}
	if fp != Fingerprint(e.g) {
		return fmt.Errorf("core: saved automaton was built for a different grammar (fingerprint %x != %x)",
			fp, Fingerprint(e.g))
	}
	numNT, err := get()
	if err != nil {
		return err
	}
	if int(numNT) != e.g.NumNonterms() {
		return fmt.Errorf("core: nonterminal count mismatch")
	}

	nStates, err := get()
	if err != nil {
		return err
	}
	if nStates > 1<<24 {
		return fmt.Errorf("core: implausible state count %d", nStates)
	}
	byID := make([]*automaton.State, nStates)
	for i := range byID {
		delta := make([]grammar.Cost, numNT)
		rule := make([]int32, numNT)
		for nt := 0; nt < int(numNT); nt++ {
			d, err := get()
			if err != nil {
				return err
			}
			rv, err := get()
			if err != nil {
				return err
			}
			delta[nt] = grammar.Cost(int32(uint32(d)))
			rule[nt] = int32(uint32(rv))
			if rule[nt] >= int32(e.g.NumRules()) {
				return fmt.Errorf("core: state %d references rule %d outside the grammar", i, rule[nt])
			}
		}
		s, _ := e.table.Intern(delta, rule, e.m)
		if s.ID != int32(i) {
			return fmt.Errorf("core: duplicate state %d in saved automaton", i)
		}
		byID[i] = s
	}
	state := func(v uint64) (*automaton.State, error) {
		if v >= nStates {
			return nil, fmt.Errorf("core: transition references state %d of %d", v, nStates)
		}
		return byID[v], nil
	}

	readTriples := func(apply func(op, key, sid uint64) error) error {
		n, err := get()
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			op, err := get()
			if err != nil {
				return err
			}
			key, err := get()
			if err != nil {
				return err
			}
			sid, err := get()
			if err != nil {
				return err
			}
			if op >= uint64(e.g.NumOps()) {
				return fmt.Errorf("core: transition references operator %d", op)
			}
			if err := apply(op, key, sid); err != nil {
				return err
			}
		}
		return nil
	}
	// Leaf triples store (op, stateID, 0).
	if err := readTriples(func(op, key, _ uint64) error {
		s, err := state(key)
		if err != nil {
			return err
		}
		e.leaf[op].Store(s.ID)
		e.transitions.Add(1)
		return nil
	}); err != nil {
		return err
	}
	// Unary triples store (op, kidStateID, stateID).
	if err := readTriples(func(op, key, sid uint64) error {
		if _, err := state(key); err != nil {
			return err
		}
		s, err := state(sid)
		if err != nil {
			return err
		}
		e.setUnLocked(grammar.OpID(op), int(key), s.ID)
		e.transitions.Add(1)
		return nil
	}); err != nil {
		return err
	}
	// Binary triples store (op, left<<32|right, stateID).
	if err := readTriples(func(op, key, sid uint64) error {
		if _, err := state(key >> 32); err != nil {
			return err
		}
		if _, err := state(uint64(uint32(key))); err != nil {
			return err
		}
		s, err := state(sid)
		if err != nil {
			return err
		}
		e.setBinLocked(grammar.OpID(op), int(key>>32), int(uint32(key)), s.ID)
		e.transitions.Add(1)
		return nil
	}); err != nil {
		return err
	}
	// Hash transitions.
	nHash, err := get()
	if err != nil {
		return err
	}
	if nHash > 1<<26 {
		return fmt.Errorf("core: implausible hash-transition count %d", nHash)
	}
	for i := uint64(0); i < nHash; i++ {
		op, err := get()
		if err != nil {
			return err
		}
		lv, err := get()
		if err != nil {
			return err
		}
		rv, err := get()
		if err != nil {
			return err
		}
		sigLen, err := get()
		if err != nil {
			return err
		}
		if sigLen > 1<<16 {
			return fmt.Errorf("core: implausible signature length %d", sigLen)
		}
		sig := make([]byte, sigLen)
		if _, err := io.ReadFull(br, sig); err != nil {
			return err
		}
		sid, err := get()
		if err != nil {
			return err
		}
		if op >= uint64(e.g.NumOps()) {
			return fmt.Errorf("core: hash transition references operator %d", op)
		}
		if int(sigLen) != 4*len(e.g.DynRules(grammar.OpID(op))) {
			return fmt.Errorf("core: hash transition of operator %d carries a %d-byte signature, want %d",
				op, sigLen, 4*len(e.g.DynRules(grammar.OpID(op))))
		}
		s, err := state(sid)
		if err != nil {
			return err
		}
		// Repack the wire entry into the open-addressing key layout:
		// word 0 is l<<32|r, signature bytes fill the remaining words
		// little-endian (zero-padded in the last word).
		key := make([]uint64, e.keyWords(grammar.OpID(op)))
		key[0] = uint64(uint32(lv))<<32 | uint64(uint32(rv))
		for j := 0; j < int(sigLen)/4; j++ {
			c := binary.LittleEndian.Uint32(sig[4*j:])
			key[1+j/2] |= uint64(c) << (32 * uint(j%2))
		}
		e.insertDynLocked(grammar.OpID(op), key, hashKey(key), s.ID)
		e.transitions.Add(1)
	}
	return nil
}
