package core

import (
	"testing"
	"testing/quick"

	"repro/internal/automaton"
	"repro/internal/dp"
	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/metrics"
)

// checkAgainstDP is the oracle check: the on-demand automaton must assign
// every node a state whose rules equal the DP labeler's optimal rules and
// whose deltas equal the DP costs rebased to the row minimum.
func checkAgainstDP(t *testing.T, d md.Desc, f *ir.Forest, cfg Config) {
	t.Helper()
	e, err := New(d.Grammar, d.Env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := dp.New(d.Grammar, d.Env, nil)
	if err != nil {
		t.Fatal(err)
	}
	compareLabelings(t, d.Grammar, f, l.LabelResult(f), e.LabelStates(f))
}

func compareLabelings(t *testing.T, g *grammar.Grammar, f *ir.Forest, want *dp.Result, got *automaton.Labeling) {
	t.Helper()
	for _, n := range f.Nodes {
		s := got.StateAt(n)
		row := want.Costs[n.Index]
		min := grammar.Inf
		for _, c := range row {
			if c < min {
				min = c
			}
		}
		for nt := range row {
			if want.Rules[n.Index][nt] != s.Rule[nt] {
				t.Fatalf("node %d (%s) nt %s: on-demand rule %s != DP rule %s",
					n.Index, g.OpName(n.Op), g.NTName(grammar.NT(nt)),
					g.RuleName(int(s.Rule[nt])), g.RuleName(int(want.Rules[n.Index][nt])))
			}
			wantDelta := grammar.Inf
			if !row[nt].IsInf() {
				wantDelta = row[nt] - min
			}
			if s.Delta[nt] != wantDelta {
				t.Fatalf("node %d nt %s: delta %d != DP relative %d",
					n.Index, g.NTName(grammar.NT(nt)), s.Delta[nt], wantDelta)
			}
		}
	}
}

func TestMatchesDPOnTrees(t *testing.T) {
	d := md.MustLoad("demo")
	f := ir.RandomForest(d.Grammar, ir.RandomConfig{Seed: 7, Trees: 300, MaxDepth: 8})
	checkAgainstDP(t, d, f, Config{})
}

func TestMatchesDPOnDAGs(t *testing.T) {
	d := md.MustLoad("demo")
	// DAG sharing makes the read-modify-write dynamic rule actually fire
	// (the store and load addresses become the same node).
	f := ir.RandomForest(d.Grammar, ir.RandomConfig{Seed: 9, Trees: 300, MaxDepth: 7, Share: true, MaxLeafVal: 3})
	checkAgainstDP(t, d, f, Config{})
}

func TestMatchesDPForceHash(t *testing.T) {
	d := md.MustLoad("demo")
	f := ir.RandomForest(d.Grammar, ir.RandomConfig{Seed: 13, Trees: 200, MaxDepth: 7, Share: true, MaxLeafVal: 3})
	checkAgainstDP(t, d, f, Config{ForceHash: true})
}

// TestMatchesDPQuick: adversarial shapes via testing/quick, both tree and
// DAG inputs, against the DP oracle.
func TestMatchesDPQuick(t *testing.T) {
	d := md.MustLoad("demo")
	l, err := dp.New(d.Grammar, d.Env, nil)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64, trees uint8, share bool) bool {
		f := ir.RandomForest(d.Grammar, ir.RandomConfig{
			Seed: seed, Trees: int(trees%20) + 1, MaxDepth: 7, Share: share, MaxLeafVal: 4,
		})
		e, err := New(d.Grammar, d.Env, Config{})
		if err != nil {
			return false
		}
		want := l.LabelResult(f)
		got := e.LabelStates(f)
		for _, n := range f.Nodes {
			s := got.StateAt(n)
			for nt := range want.Costs[n.Index] {
				if want.Rules[n.Index][nt] != s.Rule[nt] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestWarmupConvergence is the paper's central behaviour: after the
// automaton has seen a workload, relabeling similar input constructs no
// new states or transitions, and every probe hits.
func TestWarmupConvergence(t *testing.T) {
	d := md.MustLoad("demo")
	m := &metrics.Counters{}
	e, err := New(d.Grammar, d.Env, Config{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	f := ir.RandomForest(d.Grammar, ir.RandomConfig{Seed: 21, Trees: 500, MaxDepth: 8})
	e.LabelStates(f)
	states, trans := e.NumStates(), e.NumTransitions()
	if states == 0 || trans == 0 {
		t.Fatal("nothing materialized")
	}
	m.Reset()
	e.LabelStates(f)
	if e.NumStates() != states || e.NumTransitions() != trans {
		t.Errorf("relabeling grew the automaton: %d->%d states, %d->%d transitions",
			states, e.NumStates(), trans, e.NumTransitions())
	}
	if m.TableMisses != 0 {
		t.Errorf("warm relabeling had %d misses", m.TableMisses)
	}
	if m.TableProbes != int64(f.NumNodes()) {
		t.Errorf("warm probes = %d, want %d", m.TableProbes, f.NumNodes())
	}
	if m.RulesExamined != 0 {
		t.Errorf("warm labeling must do no DP work, examined %d rules", m.RulesExamined)
	}
}

// TestOnDemandSubsetOfStatic: for a fixed-cost grammar, the lazily built
// automaton must materialize a subset of the full automaton's states
// (pointwise-identical vectors), which is what the "fraction of automaton
// touched" experiment reports.
func TestOnDemandSubsetOfStatic(t *testing.T) {
	d := md.MustLoad("demo")
	g, err := d.Grammar.StripDynamic()
	if err != nil {
		t.Fatal(err)
	}
	full, err := automaton.Generate(g, automaton.StaticConfig{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	f := ir.RandomForest(g, ir.RandomConfig{Seed: 31, Trees: 400, MaxDepth: 8})
	e.LabelStates(f)
	if e.NumStates() > full.NumStates() {
		t.Errorf("on-demand states %d exceed full automaton %d", e.NumStates(), full.NumStates())
	}
	// Every on-demand state must exist in the full automaton.
	fullKeys := map[string]bool{}
	for _, s := range full.Table().States() {
		fullKeys[stateSig(s)] = true
	}
	for _, s := range e.Table().States() {
		if !fullKeys[stateSig(s)] {
			t.Errorf("on-demand state %v not in the full automaton", s)
		}
	}
}

func stateSig(s *automaton.State) string {
	sig := ""
	for i := range s.Delta {
		sig += string(rune(s.Delta[i])) + "/" + string(rune(s.Rule[i])) + ";"
	}
	return sig
}

func TestDynSignaturesCreateDistinctStates(t *testing.T) {
	d := md.MustLoad("demo")
	g := d.Grammar
	e, err := New(g, d.Env, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Same child-state tuple at Store, different dynamic outcome: the DAG
	// version satisfies the RMW constraint, the tree version does not.
	bTree := ir.NewBuilder(g)
	a1 := bTree.Leaf("Reg", 1)
	a2 := bTree.Leaf("Reg", 1)
	v := bTree.Leaf("Reg", 2)
	tre := bTree.Node("Store", a1, bTree.Node("Plus", bTree.Node("Load", a2), v))
	bTree.Root(tre)
	fTree := bTree.Finish()

	bDag := ir.NewBuilder(g)
	a := bDag.Leaf("Reg", 1)
	v2 := bDag.Leaf("Reg", 2)
	dag := bDag.Node("Store", a, bDag.Node("Plus", bDag.Node("Load", a), v2))
	bDag.Root(dag)
	fDag := bDag.Finish()

	lt := e.LabelStates(fTree)
	ld := e.LabelStates(fDag)
	st := lt.StateAt(tre)
	sd := ld.StateAt(dag)
	if st == sd {
		t.Fatal("different dynamic outcomes must give different states")
	}
	stmt := g.MustNT("stmt")
	if name := g.RuleName(int(sd.Rule[stmt])); name != "6c" {
		t.Errorf("DAG store rule = %s, want 6c", name)
	}
	if name := g.RuleName(int(st.Rule[stmt])); name != "5" {
		t.Errorf("tree store rule = %s, want 5", name)
	}
	// Relabeling both again must reuse the two memoized transitions.
	n := e.NumTransitions()
	e.LabelStates(fTree)
	e.LabelStates(fDag)
	if e.NumTransitions() != n {
		t.Error("dynamic transitions were not memoized")
	}
}

func TestEngineAccessors(t *testing.T) {
	d := md.MustLoad("demo")
	m := &metrics.Counters{}
	e, err := New(d.Grammar, d.Env, Config{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if e.Grammar() != d.Grammar {
		t.Error("Grammar accessor")
	}
	f := ir.MustParseTree(d.Grammar, "Store(Reg, Reg)")
	e.LabelStates(f)
	if e.Table().Len() != e.NumStates() {
		t.Error("table accessor inconsistent")
	}
	if e.MemoryBytes() <= 0 {
		t.Error("memory estimate must be positive")
	}
	if m.NodesLabeled != 3 {
		t.Errorf("nodes = %d, want 3", m.NodesLabeled)
	}
}

func TestUnboundEnv(t *testing.T) {
	d := md.MustLoad("demo")
	if _, err := New(d.Grammar, nil, Config{}); err == nil {
		t.Error("expected error for unbound dynamic-cost names")
	}
}

// TestColdVsWarmWork: the first pass over a workload pays construction
// (misses); a warm pass over fresh but similar input must be almost pure
// lookups — the amortization claim at the heart of the paper.
func TestColdVsWarmWork(t *testing.T) {
	d := md.MustLoad("demo")
	m := &metrics.Counters{}
	e, err := New(d.Grammar, d.Env, Config{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	cold := ir.RandomForest(d.Grammar, ir.RandomConfig{Seed: 41, Trees: 400, MaxDepth: 8})
	e.Label(cold)
	coldMisses := m.TableMisses
	if coldMisses == 0 {
		t.Fatal("cold pass must construct transitions")
	}
	m.Reset()
	warm := ir.RandomForest(d.Grammar, ir.RandomConfig{Seed: 42, Trees: 400, MaxDepth: 8})
	e.Label(warm)
	if m.TableMisses*20 > m.TableProbes {
		t.Errorf("warm pass misses %d of %d probes; automaton did not converge",
			m.TableMisses, m.TableProbes)
	}
}
