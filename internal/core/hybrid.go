package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/automaton"
	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/reduce"
)

// Hybrid is the fifth engine kind: an on-demand automaton whose state
// table is pre-seeded with the fixed-operator-subset closure of the
// grammar (automaton.HybridOverlay) and whose fixed-operator transitions
// are answered from the overlay's expanded state-id-indexed arrays with
// plain loads — offline speed — while dynamic-rule operators fall through
// to the engine's open-addressing hash path unchanged. Because the
// overlay's states were interned into the engine's table at construction
// (id-preserving: interning into an empty table assigns ids in call
// order), both halves share one id space and a labeling that mixes
// overlay answers with on-demand answers is a single consistent
// automaton.Labeling.
//
// Correctness of the split rests on two properties. First, the overlay is
// the fixed-subset closure of the FULL grammar (not of a stripped copy),
// so its states are genuine states of the engine's automaton — the same
// (delta, rule) vectors on-demand construction would intern. Second, that
// closure is a fixpoint over the fixed operators: a fixed transition whose
// children both lie in the seeded range always lands back in the seeded
// range, so overlay cells are never "missing". The only fixed-operator
// lookups the overlay cannot answer are those with an out-of-range child
// — a state born on-demand under a dynamic subtree — and those are served
// by the engine's own dense tables, warming under traffic like any
// on-demand transition.
//
// Concurrency is inherited: the overlay is immutable after construction
// (plain loads are safe), and everything that mutates goes through the
// wrapped Engine's documented lock-free/per-op-mutex discipline. Hybrid
// implements reduce.Labeler, reduce.MeteredLabeler, reduce.ParallelLabeler
// and reduce.LabelingRecycler.
//
// Config.MaxStates caveat: overlay seeding is not subject to the state
// budget (the tables were validated offline), but on-demand growth past
// the seeds is. A MaxStates smaller than the overlay's state count
// therefore leaves no headroom at all — the first dynamic-path
// construction fails with ErrStateBudget.
type Hybrid struct {
	eng *Engine

	// Immutable overlay serving state (plain, non-atomic loads).
	n    int32     // number of seeded offline states
	leaf []int32   // [op] -> state id (fixed leaf ops; -1 otherwise)
	dir1 [][]int32 // [op][kid] -> state id; nil row = not expanded
	dir2 [][]int32 // [op][l*n+r] -> state id; nil row = not expanded
	dyn  []bool    // [op] -> operator has dynamic rules (falls through)

	force     bool // ForceHash: bypass the overlay entirely
	ovBytes   int
	ovEntries int
}

// NewHybrid builds a hybrid engine for g from a validated overlay (see
// automaton.NewHybridOverlay). env binds the grammar's dynamic-cost
// function names. The overlay's state vectors are interned into the fresh
// engine's table and belong to it afterwards.
func NewHybrid(g *grammar.Grammar, env grammar.DynEnv, cfg Config, ov *automaton.HybridOverlay) (*Hybrid, error) {
	if ov.Grammar() != g {
		return nil, fmt.Errorf("core: hybrid overlay built for grammar %s, engine for %s", ov.Grammar().Name, g.Name)
	}
	eng, err := New(g, env, cfg)
	if err != nil {
		return nil, err
	}
	// Seed the offline states, preserving blob ids. Plain Intern bypasses
	// the state budget (see the type docs for the MaxStates caveat).
	for i := range ov.Deltas {
		s, created := eng.table.Intern(ov.Deltas[i], ov.Rules[i], nil)
		if !created || s.ID != int32(i) {
			return nil, fmt.Errorf("core: hybrid overlay state %d interned as id %d (created=%v); overlay does not match an empty table", i, s.ID, created)
		}
	}
	numOps := g.NumOps()
	h := &Hybrid{
		eng:       eng,
		n:         int32(ov.NumStates()),
		leaf:      ov.Leaf,
		dir1:      ov.Dir1,
		dir2:      ov.Dir2,
		dyn:       make([]bool, numOps),
		force:     cfg.ForceHash,
		ovBytes:   ov.MemoryBytes(),
		ovEntries: ov.Entries,
	}
	// Seed-only mode (closure past automaton.ExpandMaxStates): no direct
	// arrays. Normalize to per-op nil rows so labelNode can index by
	// operator unconditionally.
	if h.dir1 == nil {
		h.dir1 = make([][]int32, numOps)
	}
	if h.dir2 == nil {
		h.dir2 = make([][]int32, numOps)
	}
	for op := 0; op < numOps; op++ {
		h.dyn[op] = g.HasDynRules(grammar.OpID(op))
	}
	return h, nil
}

// Grammar returns the engine's grammar.
func (h *Hybrid) Grammar() *grammar.Grammar { return h.eng.Grammar() }

// Engine exposes the wrapped on-demand engine (for inspection and tests).
func (h *Hybrid) Engine() *Engine { return h.eng }

// OfflineStates returns the number of states the overlay seeded — the
// offline share of NumStates.
func (h *Hybrid) OfflineStates() int { return int(h.n) }

// SetMetrics swaps the counter sink (not safe concurrently with labeling).
func (h *Hybrid) SetMetrics(m *metrics.Counters) { h.eng.SetMetrics(m) }

// NumStates returns seeded plus on-demand-constructed states.
func (h *Hybrid) NumStates() int { return h.eng.NumStates() }

// NumTransitions returns the overlay's compressed transition entries plus
// the transitions the on-demand half has memoized.
func (h *Hybrid) NumTransitions() int { return h.ovEntries + h.eng.NumTransitions() }

// MemoryBytes is the overlay's expanded arrays plus the wrapped engine's
// table footprint.
func (h *Hybrid) MemoryBytes() int { return h.ovBytes + h.eng.MemoryBytes() }

// labelNode labels one node: overlay direct load for fixed operators,
// engine fallthrough for dynamic operators (and for fixed-operator
// lookups the overlay cannot answer — out-of-range children or seed-only
// mode — which warm the engine's own dense tables).
func (h *Hybrid) labelNode(n *ir.Node, ids []int32, m *metrics.Counters) int32 {
	op := n.Op
	if h.force || h.dyn[op] {
		// The engine counts the node and routes force/dynamic itself.
		return h.eng.labelNode(n, ids, m)
	}
	m.CountNode()
	switch len(n.Kids) {
	case 0:
		// Every fixed leaf operator has a seeded state (overlay validation
		// guarantees it): the answer is one plain load.
		m.CountProbe(false)
		return h.leaf[op]
	case 1:
		kid := ids[n.Kids[0].Index]
		if kid < h.n {
			if row := h.dir1[op]; row != nil {
				m.CountProbe(false)
				return row[kid]
			}
		}
		return h.fallUn(op, kid, m)
	default:
		l := ids[n.Kids[0].Index]
		r := ids[n.Kids[1].Index]
		if l < h.n && r < h.n {
			if grid := h.dir2[op]; grid != nil {
				m.CountProbe(false)
				return grid[l*h.n+r]
			}
		}
		return h.fallBin(op, l, r, m)
	}
}

// fallUn answers a fixed unary lookup the overlay cannot (out-of-range
// child or seed-only mode) from the engine's own dense table, warming it
// on a miss. Kept out of the labeling loop so the loop body stays small
// enough to inline.
func (h *Hybrid) fallUn(op grammar.OpID, kid int32, m *metrics.Counters) int32 {
	e := h.eng
	if rp := e.un[op].Load(); rp != nil {
		if row := *rp; int(kid) < len(row) {
			if id := atomic.LoadInt32(&row[kid]); id >= 0 {
				m.CountProbe(false)
				return id
			}
		}
	}
	return e.missUn(op, kid, m)
}

// fallBin is fallUn for binary operators.
func (h *Hybrid) fallBin(op grammar.OpID, l, r int32, m *metrics.Counters) int32 {
	e := h.eng
	if t := e.bin[op].Load(); t != nil && l < t.rows && r < t.stride {
		if id := atomic.LoadInt32(&t.cells[l*t.stride+r]); id >= 0 {
			m.CountProbe(false)
			return id
		}
	}
	return e.missBin(op, l, r, m)
}

// LabelStates assigns a state to every node of f. Labelings are pooled —
// return them with ReleaseLabeling.
func (h *Hybrid) LabelStates(f *ir.Forest) *automaton.Labeling {
	return h.LabelStatesMetered(f, nil)
}

// LabelStatesMetered is LabelStates with per-call counter attribution
// (see Engine.LabelStatesMetered).
//
// The loop hand-inlines labelNode's overlay fast path: on the warm fixed
// majority the whole label is a bounds check and one plain array load, and
// folding it into the loop body spares a (non-inlinable) call per node —
// the margin by which warm hybrid selection undercuts the warm on-demand
// engine, whose every node pays the labelNode call. Dynamic operators,
// ForceHash, and overlay misses still take the out-of-line paths.
func (h *Hybrid) LabelStatesMetered(f *ir.Forest, m *metrics.Counters) *automaton.Labeling {
	if m == nil {
		m = h.eng.m
	}
	lab := h.eng.labels.Get().(*automaton.Labeling)
	ids := lab.Reuse(len(f.Nodes))
	if h.force {
		for i, n := range f.Nodes {
			ids[i] = h.eng.labelNode(n, ids, m)
		}
		lab.Bind(h.eng.table)
		return lab
	}
	n32, leaf, dir1, dir2, dyn := h.n, h.leaf, h.dir1, h.dir2, h.dyn
	for i, n := range f.Nodes {
		op := n.Op
		if dyn[op] {
			// Straight to the engine's dynamic hash path: labelNode would
			// only re-derive HasDynRules and the force flag.
			m.CountNode()
			ids[i] = h.eng.labelDyn(op, n, ids, m)
			continue
		}
		m.CountNode()
		switch len(n.Kids) {
		case 0:
			m.CountProbe(false)
			ids[i] = leaf[op]
		case 1:
			kid := ids[n.Kids[0].Index]
			if kid < n32 {
				if row := dir1[op]; row != nil {
					m.CountProbe(false)
					ids[i] = row[kid]
					continue
				}
			}
			ids[i] = h.fallUn(op, kid, m)
		default:
			l := ids[n.Kids[0].Index]
			r := ids[n.Kids[1].Index]
			if l < n32 && r < n32 {
				if grid := dir2[op]; grid != nil {
					m.CountProbe(false)
					ids[i] = grid[l*n32+r]
					continue
				}
			}
			ids[i] = h.fallBin(op, l, r, m)
		}
	}
	lab.Bind(h.eng.table)
	return lab
}

// LabelStatesParallel is LabelStatesMetered with intra-forest level
// fan-out, exactly the wrapped engine's scheme: the overlay fast path is
// plain loads on immutable data and the fallthrough inherits the engine's
// concurrency discipline, so parallel labelNode calls are safe across the
// fixed/dynamic boundary.
func (h *Hybrid) LabelStatesParallel(f *ir.Forest, workers int, m *metrics.Counters) *automaton.Labeling {
	if workers <= 1 || len(f.Nodes) < reduce.MinParallelSpan {
		return h.LabelStatesMetered(f, m)
	}
	if m == nil {
		m = h.eng.m
	}
	lab := h.eng.labels.Get().(*automaton.Labeling)
	ids := lab.Reuse(len(f.Nodes))
	lv := levelsPool.Get().(*reduce.Levels)
	lv.Partition(f)
	lv.Run(workers, func(idx int32) {
		ids[idx] = h.labelNode(f.Nodes[idx], ids, m)
	})
	levelsPool.Put(lv)
	lab.Bind(h.eng.table)
	return lab
}

// Label implements reduce.Labeler.
func (h *Hybrid) Label(f *ir.Forest) reduce.Labeling { return h.LabelStates(f) }

// LabelMetered implements reduce.MeteredLabeler.
func (h *Hybrid) LabelMetered(f *ir.Forest, m *metrics.Counters) reduce.Labeling {
	return h.LabelStatesMetered(f, m)
}

// LabelParallel implements reduce.ParallelLabeler.
func (h *Hybrid) LabelParallel(f *ir.Forest, workers int, m *metrics.Counters) reduce.Labeling {
	return h.LabelStatesParallel(f, workers, m)
}

// ReleaseLabeling implements reduce.LabelingRecycler.
func (h *Hybrid) ReleaseLabeling(lab reduce.Labeling) { h.eng.ReleaseLabeling(lab) }
