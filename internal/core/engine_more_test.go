package core

import (
	"testing"

	"repro/internal/automaton"
	"repro/internal/dp"
	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/metrics"
)

// TestFixedGrammarNoDynWork: on a grammar without dynamic rules, the warm
// fast path must never call a dynamic function and must be pure dense
// lookups (no hash maps populated).
func TestFixedGrammarNoDynWork(t *testing.T) {
	d := md.MustLoad("demo")
	g, err := d.Grammar.StripDynamic()
	if err != nil {
		t.Fatal(err)
	}
	m := &metrics.Counters{}
	e, err := New(g, nil, Config{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	f := ir.RandomForest(g, ir.RandomConfig{Seed: 4, Trees: 100, MaxDepth: 7})
	e.Label(f)
	if m.DynEvals != 0 {
		t.Errorf("dyn evals = %d on a fixed grammar", m.DynEvals)
	}
	for op := range e.dyn {
		if tab := e.dyn[op].Load(); tab != nil && tab.entries() != 0 {
			t.Errorf("hash path used for op %s on a fixed grammar", g.OpName(grammar.OpID(op)))
		}
	}
}

// TestForceHashUsesNoDenseTables is the inverse: with ForceHash, dense
// tables stay empty.
func TestForceHashUsesNoDenseTables(t *testing.T) {
	d := md.MustLoad("demo")
	g, err := d.Grammar.StripDynamic()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, nil, Config{ForceHash: true})
	if err != nil {
		t.Fatal(err)
	}
	f := ir.RandomForest(g, ir.RandomConfig{Seed: 4, Trees: 50, MaxDepth: 6})
	e.Label(f)
	for op := range e.un {
		if e.leaf[op].Load() >= 0 || e.un[op].Load() != nil || e.bin[op].Load() != nil {
			t.Fatalf("dense table populated for op %s under ForceHash", g.OpName(grammar.OpID(op)))
		}
	}
	if e.NumStates() == 0 {
		t.Fatal("nothing labeled")
	}
}

// TestDynPanicKeepsPoolHealthy: a panicking user dynamic-cost function
// must not leak the pooled dynScratch — the Put is deferred — and the
// panic propagates to the caller's containment boundary (the compilation
// server recovers it per job). After any number of panics the engine
// labels correctly and the warm dynamic path is still allocation-free,
// which is only possible if the scratch kept flowing back to the pool.
func TestDynPanicKeepsPoolHealthy(t *testing.T) {
	g := grammar.MustParse(`%name boom
%start stmt
%term Asgn(2) Reg(0) Cnst(0)
reg: Reg (0)
reg: Cnst (dyn boom)
stmt: Asgn(reg, reg) (1)
`)
	env := grammar.DynEnv{"boom": func(n grammar.DynNode) grammar.Cost {
		if n.Value() == 13 {
			panic("unlucky immediate")
		}
		return 1
	}}
	e, err := New(g, env, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad := ir.MustParseTree(g, "Asgn(Reg[1], Cnst[13])")
	good := ir.MustParseTree(g, "Asgn(Reg[1], Cnst[7])")
	for i := 0; i < 8; i++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected the dynamic-cost panic to propagate")
				}
			}()
			e.Label(bad)
		}()
	}
	lab := e.LabelStates(good)
	if lab.RuleAt(good.Roots[0], g.Start) < 0 {
		t.Fatal("engine cannot label after contained panics")
	}
	e.ReleaseLabeling(lab)
	e.ReleaseLabeling(e.LabelStates(good)) // fully warm
	allocs := testing.AllocsPerRun(50, func() {
		e.ReleaseLabeling(e.LabelStates(good))
	})
	t.Logf("warm dynamic label after panics: %.2f allocs/op", allocs)
	if !raceEnabled && allocs != 0 {
		t.Errorf("warm dynamic label allocates %.2f/op after panics, want 0 (scratch pool leaked?)", allocs)
	}
}

// TestDeltaCapMatchesDefaultOnRealGrammar: realistic grammars have tiny
// relative costs, so even a small cap must not change labeling results
// (Proebsting's bounded-delta argument).
func TestDeltaCapMatchesDefaultOnRealGrammar(t *testing.T) {
	d := md.MustLoad("demo")
	f := ir.RandomForest(d.Grammar, ir.RandomConfig{Seed: 77, Trees: 200, MaxDepth: 7, Share: true, MaxLeafVal: 3})
	e1, err := New(d.Grammar, d.Env, Config{})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(d.Grammar, d.Env, Config{DeltaCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	l1 := e1.LabelStates(f)
	l2 := e2.LabelStates(f)
	for _, n := range f.Nodes {
		for nt := 0; nt < d.Grammar.NumNonterms(); nt++ {
			if l1.StateAt(n).Rule[nt] != l2.StateAt(n).Rule[nt] {
				t.Fatalf("node %d nt %d: cap changed the selected rule", n.Index, nt)
			}
		}
	}
	if e1.NumStates() != e2.NumStates() {
		t.Errorf("cap changed state count: %d vs %d", e1.NumStates(), e2.NumStates())
	}
}

// TestEnginePersistsAcrossGrammarsOfOps: two engines over the same grammar
// are independent — no shared global state.
func TestEnginesIndependent(t *testing.T) {
	d := md.MustLoad("demo")
	e1, _ := New(d.Grammar, d.Env, Config{})
	e2, _ := New(d.Grammar, d.Env, Config{})
	f := ir.MustParseTree(d.Grammar, "Store(Reg, Reg)")
	e1.Label(f)
	if e2.NumStates() != 0 || e2.NumTransitions() != 0 {
		t.Error("engines share state")
	}
}

// TestUnaryDenseGrowth: unary transitions indexed by a late (high-id)
// child state must grow the dense row correctly.
func TestUnaryDenseGrowth(t *testing.T) {
	g := grammar.MustParse(`
%term A(0) B(0) C(0) U(1)
%start x
x: A (1)
x: B (2)
x: C (3)
x: U(x) (1)
`)
	e, err := New(g, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, _ := dp.New(g, nil, nil)
	// Touch leaves in an order that makes U's first dense index nonzero.
	for _, src := range []string{"U(C)", "U(B)", "U(A)", "U(U(U(C)))"} {
		f := ir.MustParseTree(g, src)
		got := e.LabelStates(f)
		want := l.LabelResult(f)
		for _, n := range f.Nodes {
			for nt := 0; nt < g.NumNonterms(); nt++ {
				if want.Rules[n.Index][nt] != got.StateAt(n).Rule[nt] {
					t.Fatalf("%s: node %d disagrees with DP", src, n.Index)
				}
			}
		}
	}
}

// TestOnDemandEqualsStaticStateCount: driving the on-demand engine over
// inputs that cover the whole tree space of a tiny grammar must
// materialize exactly the full automaton.
func TestOnDemandSaturatesTinyGrammar(t *testing.T) {
	d := md.MustLoad("demo")
	g, err := d.Grammar.StripDynamic()
	if err != nil {
		t.Fatal(err)
	}
	full, err := automaton.Generate(g, automaton.StaticConfig{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Deep random forests over a 4-operator grammar cover everything.
	for seed := int64(0); seed < 30; seed++ {
		e.Label(ir.RandomForest(g, ir.RandomConfig{Seed: seed, Trees: 80, MaxDepth: 9}))
	}
	if e.NumStates() != full.NumStates() {
		t.Errorf("saturated on-demand has %d states, full automaton %d",
			e.NumStates(), full.NumStates())
	}
}

func TestMemoryGrowsMonotonically(t *testing.T) {
	d := md.MustLoad("demo")
	e, _ := New(d.Grammar, d.Env, Config{})
	prev := e.MemoryBytes()
	for seed := int64(0); seed < 5; seed++ {
		e.Label(ir.RandomForest(d.Grammar, ir.RandomConfig{Seed: seed, Trees: 30, MaxDepth: 6}))
		cur := e.MemoryBytes()
		if cur < prev {
			t.Fatalf("memory shrank: %d -> %d", prev, cur)
		}
		prev = cur
	}
}
