package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/dp"
	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/metrics"
	"repro/internal/reduce"
)

// TestParallelLabelColdMatchesSequential: K goroutines label disjoint
// forests on one shared cold engine — the worst case, where every worker
// races through the construct slow path. Each forest's derivation cost
// must match what a sequential engine computes, and the automata must
// converge to the same state count (states are content-addressed, so the
// set of states a workload needs is independent of construction order).
// Run under -race to validate the synchronization, not just the results.
func TestParallelLabelColdMatchesSequential(t *testing.T) {
	d := md.MustLoad("demo")
	const workers = 8
	forests := make([]*ir.Forest, workers)
	for i := range forests {
		forests[i] = ir.RandomForest(d.Grammar, ir.RandomConfig{
			Seed: int64(100 + i), Trees: 200, MaxDepth: 8, Share: i%2 == 0, MaxLeafVal: 3,
		})
	}

	// Sequential reference: fresh engine, same forests in order.
	seq, err := New(d.Grammar, d.Env, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := reduce.New(d.Grammar, d.Env, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantCost := make([]grammarCost, workers)
	for i, f := range forests {
		wantCost[i] = forestCosts(t, rd, f, seq.LabelStates(f))
	}

	m := &metrics.Counters{}
	par, err := New(d.Grammar, d.Env, Config{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	gotCost := make([]grammarCost, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gotCost[i] = forestCosts(t, rd, forests[i], par.LabelStates(forests[i]))
		}(i)
	}
	wg.Wait()

	for i := range forests {
		if gotCost[i] != wantCost[i] {
			t.Errorf("forest %d: parallel cost %v != sequential cost %v", i, gotCost[i], wantCost[i])
		}
	}
	if par.NumStates() != seq.NumStates() {
		t.Errorf("state counts diverged: parallel %d, sequential %d", par.NumStates(), seq.NumStates())
	}
	if n := int64(totalNodes(forests)); m.NodesLabeled != n {
		t.Errorf("nodes labeled = %d, want %d", m.NodesLabeled, n)
	}
}

// grammarCost is a printable cost summary of one forest's reduction.
type grammarCost struct {
	cost int64
	err  string
}

func forestCosts(t *testing.T, rd *reduce.Reducer, f *ir.Forest, lab reduce.Labeling) grammarCost {
	t.Helper()
	c, err := rd.Cover(f, lab, nil)
	if err != nil {
		return grammarCost{err: err.Error()}
	}
	return grammarCost{cost: int64(c)}
}

func totalNodes(fs []*ir.Forest) int {
	n := 0
	for _, f := range fs {
		n += f.NumNodes()
	}
	return n
}

// TestParallelLabelWarmAddsNothing: after a sequential warm-up, parallel
// relabeling of the same workload must be pure fast path — no new states
// or transitions, and labels identical to the DP oracle.
func TestParallelLabelWarmAddsNothing(t *testing.T) {
	d := md.MustLoad("demo")
	e, err := New(d.Grammar, d.Env, Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := dp.New(d.Grammar, d.Env, nil)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 6
	forests := make([]*ir.Forest, workers)
	for i := range forests {
		forests[i] = ir.RandomForest(d.Grammar, ir.RandomConfig{
			Seed: int64(500 + i), Trees: 150, MaxDepth: 7, Share: true, MaxLeafVal: 3,
		})
		e.LabelStates(forests[i]) // warm up
	}
	states, trans := e.NumStates(), e.NumTransitions()

	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := forests[i]
			got := e.LabelStates(f)
			want := l.LabelResult(f)
			for _, n := range f.Nodes {
				for nt := range want.Rules[n.Index] {
					if want.Rules[n.Index][nt] != got.StateAt(n).Rule[nt] {
						errc <- fmt.Errorf("forest %d node %d nt %d: parallel label disagrees with DP", i, n.Index, nt)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if e.NumStates() != states || e.NumTransitions() != trans {
		t.Errorf("warm parallel relabeling grew the automaton: %d->%d states, %d->%d transitions",
			states, e.NumStates(), trans, e.NumTransitions())
	}
}

// TestSaveDuringLabeling: Save holds the construct lock, so a snapshot
// taken while other goroutines are still constructing states must always
// be internally consistent — every transition it persists references a
// persisted state — and therefore loadable.
func TestSaveDuringLabeling(t *testing.T) {
	d := md.MustLoad("demo")
	e, err := New(d.Grammar, d.Env, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for seed := int64(0); seed < 6; seed++ {
				e.LabelStates(ir.RandomForest(d.Grammar, ir.RandomConfig{
					Seed: seed*int64(workers) + int64(i), Trees: 60, MaxDepth: 8, Share: true, MaxLeafVal: 3,
				}))
			}
		}(i)
	}
	var bufs []string
	for i := 0; i < 10; i++ { // interleave snapshots with the labeling above
		var b strings.Builder
		if err := e.Save(&b); err != nil {
			t.Fatal(err)
		}
		bufs = append(bufs, b.String())
	}
	wg.Wait()
	for i, buf := range bufs {
		fresh, err := New(d.Grammar, d.Env, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Load(strings.NewReader(buf)); err != nil {
			t.Errorf("snapshot %d not loadable: %v", i, err)
		}
	}
}

// TestParallelForceHash drives the all-hash ablation layout from many
// goroutines: the open-addressing path must be as safe as the dense one.
func TestParallelForceHash(t *testing.T) {
	d := md.MustLoad("demo")
	e, err := New(d.Grammar, d.Env, Config{ForceHash: true})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := New(d.Grammar, d.Env, Config{ForceHash: true})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	forests := make([]*ir.Forest, workers)
	for i := range forests {
		forests[i] = ir.RandomForest(d.Grammar, ir.RandomConfig{
			Seed: int64(900 + i), Trees: 100, MaxDepth: 7, Share: i%2 == 1, MaxLeafVal: 3,
		})
		seq.LabelStates(forests[i])
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e.LabelStates(forests[i])
		}(i)
	}
	wg.Wait()
	if e.NumStates() != seq.NumStates() {
		t.Errorf("ForceHash parallel states %d != sequential %d", e.NumStates(), seq.NumStates())
	}
}
