//go:build !race

package core

// raceEnabled reports whether the race detector instruments this build;
// see race_on_test.go.
const raceEnabled = false
