package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// TestSaveLoadRoundTrip: a restored automaton must be byte-for-byte as
// warm as the one that was saved — zero misses on the same workload, and
// identical labelings.
func TestSaveLoadRoundTrip(t *testing.T) {
	d := md.MustLoad("x86")
	warm, err := New(d.Grammar, d.Env, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var forests []*ir.Forest
	for _, c := range workload.MustCompileAll(d.Grammar) {
		forests = append(forests, c.Forests()...)
	}
	for _, f := range forests {
		warm.LabelStates(f)
	}

	var buf bytes.Buffer
	if err := warm.Save(&buf); err != nil {
		t.Fatal(err)
	}

	m := &metrics.Counters{}
	restored, err := New(d.Grammar, d.Env, Config{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.NumStates() != warm.NumStates() {
		t.Errorf("states %d != %d", restored.NumStates(), warm.NumStates())
	}
	if restored.NumTransitions() != warm.NumTransitions() {
		t.Errorf("transitions %d != %d", restored.NumTransitions(), warm.NumTransitions())
	}
	for _, f := range forests {
		a := warm.LabelStates(f)
		b := restored.LabelStates(f)
		for _, n := range f.Nodes {
			sa, sb := a.StateAt(n), b.StateAt(n)
			for nt := range sa.Delta {
				if sa.Delta[nt] != sb.Delta[nt] || sa.Rule[nt] != sb.Rule[nt] {
					t.Fatalf("restored labeling differs at node %d", n.Index)
				}
			}
		}
	}
	if m.TableMisses != 0 {
		t.Errorf("restored automaton had %d misses on the saved workload", m.TableMisses)
	}
}

func TestLoadRejectsWrongGrammar(t *testing.T) {
	x86 := md.MustLoad("x86")
	mips := md.MustLoad("mips")
	e, _ := New(x86.Grammar, x86.Env, Config{})
	f := ir.MustParseTree(x86.Grammar, "RET(ADD(REG[1], CNST[2]))")
	e.Label(f)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other, _ := New(mips.Grammar, mips.Env, Config{})
	err := other.Load(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "different grammar") {
		t.Errorf("expected fingerprint mismatch, got %v", err)
	}
}

func TestLoadRejectsGarbageAndTruncation(t *testing.T) {
	d := md.MustLoad("demo")
	fresh := func() *Engine {
		e, _ := New(d.Grammar, d.Env, Config{})
		return e
	}
	if err := fresh().Load(strings.NewReader("not an automaton")); err == nil {
		t.Error("expected bad-magic error")
	}
	// Valid prefix, truncated tail.
	e := fresh()
	f := ir.MustParseTree(d.Grammar, "Store(Reg, Plus(Load(Reg), Reg))")
	e.Label(f)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{7, 20, buf.Len() / 2, buf.Len() - 3} {
		if err := fresh().Load(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("expected error for truncation at %d bytes", cut)
		}
	}
}

func TestLoadRequiresFreshEngine(t *testing.T) {
	d := md.MustLoad("demo")
	e, _ := New(d.Grammar, d.Env, Config{})
	f := ir.MustParseTree(d.Grammar, "Store(Reg, Reg)")
	e.Label(f)
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := e.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("loading into a used engine must fail")
	}
}

func TestFingerprintDistinguishesGrammars(t *testing.T) {
	a := Fingerprint(md.MustLoad("x86").Grammar)
	b := Fingerprint(md.MustLoad("mips").Grammar)
	c := Fingerprint(md.MustLoad("x86").Grammar)
	if a == b {
		t.Error("different grammars share a fingerprint")
	}
	if a != c {
		t.Error("fingerprint is not deterministic")
	}
}
