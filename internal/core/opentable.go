package core

import "sync/atomic"

// openTab is the open-addressing transition table of one dynamic-rule (or
// ForceHash) operator — the replacement for the per-op sync.Map the engine
// used through PR 5. Transition keys are (left state, right state,
// dynamic-cost signature) packed into a fixed number of uint64 words per
// operator, so a warm probe is a hash over a handful of words, a linear
// scan of flat arrays, and word-compares — no interface conversions, no
// boxed int32 values, no per-entry heap objects.
//
// Layout: capacity is a power of two. keys holds capacity*kw words
// (kw = words per key, fixed per operator: one (l, r) word plus the
// operator's packed signature words); ids holds capacity state-id cells
// with -1 marking an empty slot. Collisions probe linearly.
//
// Concurrency follows the engine's dense-table discipline: the warm hit
// path is lock-free, all writes happen under the operator's slow-path
// mutex. A slot becomes readable only through the atomic id publish — the
// writer fills the key words first and stores the id last, and a reader
// touches key words only after an atomic id load observed a valid id, so
// the words are safely visible. Growth allocates a new table, rehashes
// every occupied slot, and publishes the new table through the operator's
// atomic pointer only when fully populated; readers still probing the old
// table miss at worst and retry under the mutex.
//
// The table is never more than 3/4 full (grow keeps the load factor
// bounded), so every probe terminates at an empty slot.
type openTab struct {
	mask uint64 // capacity - 1 (capacity is a power of two)
	kw   int    // uint64 words per key
	keys []uint64
	ids  []int32
	used int // occupied slots; mutated only under the op's slow-path mutex
}

// openTabMinCap is the initial capacity of a freshly allocated table.
const openTabMinCap = 8

func newOpenTab(kw, capacity int) *openTab {
	t := &openTab{
		mask: uint64(capacity - 1),
		kw:   kw,
		keys: make([]uint64, capacity*kw),
		ids:  make([]int32, capacity),
	}
	for i := range t.ids {
		t.ids[i] = -1
	}
	return t
}

// hashKey mixes the key words into a probe hash. The multiply-xorshift
// round per word (the murmur3 finalizer constant) spreads low-entropy keys
// — small state ids, mostly-zero signatures — across the whole word, so
// the low bits the mask keeps are well distributed.
func hashKey(ws []uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range ws {
		h ^= w
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return h
}

// get probes for key and returns its state id. Lock-free: see the type
// documentation for the publication contract.
func (t *openTab) get(key []uint64, h uint64) (int32, bool) {
	kw := t.kw
	slot := h & t.mask
	for {
		id := atomic.LoadInt32(&t.ids[slot])
		if id < 0 {
			return -1, false
		}
		if wordsEqual(t.keys[int(slot)*kw:int(slot)*kw+kw], key) {
			return id, true
		}
		slot = (slot + 1) & t.mask
	}
}

func wordsEqual(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// insertLocked writes (key -> id) into the table. The caller holds the
// operator's slow-path mutex and has verified the key is absent and the
// table has room (used < 3/4 capacity after growIfNeeded).
func (t *openTab) insertLocked(key []uint64, h uint64, id int32) {
	kw := t.kw
	slot := h & t.mask
	for atomic.LoadInt32(&t.ids[slot]) >= 0 {
		slot = (slot + 1) & t.mask
	}
	copy(t.keys[int(slot)*kw:], key)
	// Publish last: the id store is what makes the key words readable.
	atomic.StoreInt32(&t.ids[slot], id)
	t.used++
}

// grown returns a table of twice the capacity holding every entry of t.
// Caller holds the operator's mutex; the result must be published through
// the operator's atomic pointer only after this returns (fully populated
// before the pointer is released).
func (t *openTab) grown() *openTab {
	nt := newOpenTab(t.kw, 2*(int(t.mask)+1))
	kw := t.kw
	for slot := 0; slot <= int(t.mask); slot++ {
		if t.ids[slot] < 0 {
			continue
		}
		key := t.keys[slot*kw : slot*kw+kw]
		nt.insertLocked(key, hashKey(key), t.ids[slot])
	}
	return nt
}

// full reports whether inserting one more entry would push the load factor
// past 3/4.
func (t *openTab) full() bool {
	return 4*(t.used+1) > 3*(int(t.mask)+1)
}

// entries counts occupied slots (diagnostics and persistence; callers
// either hold the operator's mutex or accept a racy snapshot, which the
// monotone insert-only structure keeps consistent per slot).
func (t *openTab) entries() int {
	n := 0
	for i := range t.ids {
		if atomic.LoadInt32(&t.ids[i]) >= 0 {
			n++
		}
	}
	return n
}

// memoryBytes reports the table's footprint.
func (t *openTab) memoryBytes() int {
	return 8*len(t.keys) + 4*len(t.ids) + 48
}
