//go:build race

package core

// raceEnabled reports whether the race detector instruments this build.
// Strict allocation counts are skipped under -race: sync.Pool drops a
// fraction of Put items by design there.
const raceEnabled = true
