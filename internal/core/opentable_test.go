package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dp"
	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/md"
)

// TestOpenTabBasic exercises the table directly: insert distinct keys
// through several growth rounds, then retrieve every one.
func TestOpenTabBasic(t *testing.T) {
	const kw = 3
	var p atomic.Pointer[openTab]
	keys := make([][]uint64, 200)
	for i := range keys {
		k := []uint64{uint64(i), uint64(i * 31), uint64(i ^ 0x5555)}
		keys[i] = k
		h := hashKey(k)
		tab := p.Load()
		switch {
		case tab == nil:
			tab = newOpenTab(kw, openTabMinCap)
			tab.insertLocked(k, h, int32(i))
			p.Store(tab)
		case tab.full():
			nt := tab.grown()
			nt.insertLocked(k, h, int32(i))
			p.Store(nt)
		default:
			tab.insertLocked(k, h, int32(i))
		}
	}
	tab := p.Load()
	if tab.entries() != len(keys) {
		t.Fatalf("entries = %d, want %d", tab.entries(), len(keys))
	}
	if tab.full() {
		t.Fatal("published table past its load factor")
	}
	for i, k := range keys {
		id, ok := tab.get(k, hashKey(k))
		if !ok || id != int32(i) {
			t.Fatalf("key %d: got (%d, %v), want (%d, true)", i, id, ok, i)
		}
	}
	if _, ok := tab.get([]uint64{999999, 0, 0}, hashKey([]uint64{999999, 0, 0})); ok {
		t.Fatal("absent key reported present")
	}
}

// TestOpenTabCollisionPileup engineers keys that all hash into the same
// bucket (identical hash values would need hash inversion; instead we use
// a tiny table so every slot collides constantly) and checks linear
// probing keeps every entry reachable through repeated growth.
func TestOpenTabCollisionPileup(t *testing.T) {
	// Single-word keys chosen so hashKey lands many of them on the same
	// masked slot at small capacities: identical low bits after mixing is
	// hard to arrange, so instead insert enough keys that every bucket of
	// the first few capacities overflows many times over.
	var p atomic.Pointer[openTab]
	const n = 4096
	for i := 0; i < n; i++ {
		k := []uint64{uint64(i) << 7} // sparse keys: worse spread before mixing
		h := hashKey(k)
		tab := p.Load()
		switch {
		case tab == nil:
			tab = newOpenTab(1, openTabMinCap)
			tab.insertLocked(k, h, int32(i))
			p.Store(tab)
		case tab.full():
			nt := tab.grown()
			nt.insertLocked(k, h, int32(i))
			p.Store(nt)
		default:
			tab.insertLocked(k, h, int32(i))
		}
	}
	tab := p.Load()
	for i := 0; i < n; i++ {
		k := []uint64{uint64(i) << 7}
		id, ok := tab.get(k, hashKey(k))
		if !ok || id != int32(i) {
			t.Fatalf("key %d lost after growth: got (%d, %v)", i, id, ok)
		}
	}
}

// TestOpenTabGrowUnderContention mirrors the engine's publication
// protocol: one writer inserts (and grows) under a mutex while reader
// goroutines hammer get through the atomic pointer. Readers must only
// ever see ids the writer published — run under -race to validate the
// memory ordering, not just the results.
func TestOpenTabGrowUnderContention(t *testing.T) {
	const (
		kw      = 2
		total   = 2000
		readers = 4
	)
	var (
		p    atomic.Pointer[openTab]
		mu   sync.Mutex
		done atomic.Bool
		wg   sync.WaitGroup
	)
	keyOf := func(i int) []uint64 { return []uint64{uint64(i), uint64(i) * 0x9e37} }
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for !done.Load() {
				for i := 0; i < total; i += readers {
					k := keyOf(i)
					tab := p.Load()
					if tab == nil {
						continue
					}
					if id, ok := tab.get(k, hashKey(k)); ok && id != int32(i) {
						t.Errorf("reader saw id %d for key %d", id, i)
						return
					}
				}
			}
		}(r)
	}
	for i := 0; i < total; i++ {
		k := keyOf(i)
		h := hashKey(k)
		mu.Lock()
		tab := p.Load()
		switch {
		case tab == nil:
			tab = newOpenTab(kw, openTabMinCap)
			tab.insertLocked(k, h, int32(i))
			p.Store(tab)
		case tab.full():
			nt := tab.grown()
			nt.insertLocked(k, h, int32(i))
			p.Store(nt)
		default:
			tab.insertLocked(k, h, int32(i))
		}
		mu.Unlock()
	}
	done.Store(true)
	wg.Wait()
	tab := p.Load()
	for i := 0; i < total; i++ {
		k := keyOf(i)
		if id, ok := tab.get(k, hashKey(k)); !ok || id != int32(i) {
			t.Fatalf("key %d: got (%d, %v) after writer finished", i, id, ok)
		}
	}
}

// TestEngineDynGrowUnderContention drives the whole engine path: a
// dynamic-cost grammar whose signature varies per immediate value, labeled
// from many goroutines with enough distinct values that every operator's
// open table grows several times mid-flight. The states must match a
// sequential engine (content-addressed convergence) and the labels the DP
// oracle — the same invariants the sync.Map path satisfied.
func TestEngineDynGrowUnderContention(t *testing.T) {
	g := grammar.MustParse(`%name growcontend
%start stmt
%term Asgn(2) Plus(2) Reg(0) Cnst(0)
reg: Reg (0)
reg: Cnst (dyn imm)
reg: Plus(reg, reg) (dyn addr)
stmt: Asgn(reg, reg) (1)
`)
	env := grammar.DynEnv{
		"imm":  func(n grammar.DynNode) grammar.Cost { return grammar.Cost(n.Value() % 13) },
		"addr": func(n grammar.DynNode) grammar.Cost { return grammar.Cost(n.Value() % 7) },
	}
	const workers = 8
	forests := make([]*ir.Forest, workers)
	for i := range forests {
		forests[i] = ir.RandomForest(g, ir.RandomConfig{
			Seed: int64(7000 + i), Trees: 250, MaxDepth: 7, MaxLeafVal: 200,
		})
	}

	seq, err := New(g, env, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range forests {
		seq.LabelStates(f)
	}

	par, err := New(g, env, Config{})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := dp.New(g, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := forests[i]
			got := par.LabelStates(f)
			want := oracle.LabelResult(f)
			for _, n := range f.Nodes {
				for nt := range want.Rules[n.Index] {
					if want.Rules[n.Index][nt] != got.StateAt(n).Rule[nt] {
						t.Errorf("forest %d node %d nt %d: open-table label disagrees with DP oracle", i, n.Index, nt)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if par.NumStates() != seq.NumStates() {
		t.Errorf("contended states %d != sequential %d", par.NumStates(), seq.NumStates())
	}
	if par.NumTransitions() != seq.NumTransitions() {
		t.Errorf("contended transitions %d != sequential %d", par.NumTransitions(), seq.NumTransitions())
	}
	// The workload above must actually have exercised growth, or the test
	// is vacuous: 200 immediate values × 13/7 cost classes forces well past
	// the minimum capacity on the dynamic operators.
	grew := false
	for op := range par.dyn {
		if tab := par.dyn[op].Load(); tab != nil && int(tab.mask)+1 > openTabMinCap {
			grew = true
		}
	}
	if !grew {
		t.Fatal("workload never grew an open table; contention test is vacuous")
	}
}

// TestEngineDynCollisionsMatchOracle is the seeded collision-heavy
// differential check: a signature-rich workload labeled sequentially must
// agree with the DP oracle entry for entry, and survive a save/load round
// trip with identical table contents (every persisted open-table entry
// re-resolves).
func TestEngineDynCollisionsMatchOracle(t *testing.T) {
	d := md.MustLoad("demo")
	e, err := New(d.Grammar, d.Env, Config{})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := dp.New(d.Grammar, d.Env, nil)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(40); seed < 48; seed++ {
		f := ir.RandomForest(d.Grammar, ir.RandomConfig{
			Seed: seed, Trees: 120, MaxDepth: 8, Share: seed%2 == 0, MaxLeafVal: 50,
		})
		got := e.LabelStates(f)
		want := oracle.LabelResult(f)
		for _, n := range f.Nodes {
			for nt := range want.Rules[n.Index] {
				if want.Rules[n.Index][nt] != got.StateAt(n).Rule[nt] {
					t.Fatalf("seed %d node %d nt %d: open-table label disagrees with DP oracle", seed, n.Index, nt)
				}
			}
		}
	}
}
