package reduce_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/metrics"
	"repro/internal/reduce"
)

func setup(t testing.TB) (md.Desc, *dp.Labeler, *reduce.Reducer) {
	t.Helper()
	d := md.MustLoad("demo")
	l, err := dp.New(d.Grammar, d.Env, nil)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := reduce.New(d.Grammar, d.Env, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d, l, rd
}

// TestPaperDerivation reproduces the running example's optimal derivation:
// rules 5, 4, 3 (and chains/leaves) for the tree form, total cost 3.
func TestPaperDerivation(t *testing.T) {
	d, l, rd := setup(t)
	g := d.Grammar
	f := ir.MustParseTree(g, "Store(Reg[1], Plus(Load(Reg[1]), Reg[2]))")
	deriv, err := rd.Trace(f, l.Label(f))
	if err != nil {
		t.Fatal(err)
	}
	if deriv.Cost != 3 {
		t.Errorf("cost = %d, want 3", deriv.Cost)
	}
	names := map[string]bool{}
	for _, s := range deriv.Steps {
		names[g.RuleName(s.RuleIndex)] = true
	}
	for _, want := range []string{"5", "4", "3", "2", "1"} {
		if !names[want] {
			t.Errorf("derivation misses rule %s: %s", want, deriv.String(g))
		}
	}
	if names["6c"] {
		t.Errorf("tree form must not use the RMW rule: %s", deriv.String(g))
	}
}

func TestRMWDerivationOnDAG(t *testing.T) {
	d, l, rd := setup(t)
	g := d.Grammar
	b := ir.NewBuilder(g)
	a := b.Leaf("Reg", 1)
	v := b.Leaf("Reg", 2)
	root := b.Node("Store", a, b.Node("Plus", b.Node("Load", a), v))
	b.Root(root)
	f := b.Finish()
	deriv, err := rd.Trace(f, l.Label(f))
	if err != nil {
		t.Fatal(err)
	}
	if deriv.Cost != 1 {
		t.Errorf("cost = %d, want 1 (RMW)", deriv.Cost)
	}
	used := map[string]bool{}
	for _, s := range deriv.Steps {
		used[g.RuleName(s.RuleIndex)] = true
	}
	if !used["6c"] || !used["6b"] || !used["6a"] {
		t.Errorf("RMW derivation must pass through 6a/6b/6c: %s", deriv.String(g))
	}
}

// TestEnginesSelectIdenticalDerivations: DP and on-demand labelings must
// reduce to byte-identical derivations — the end-to-end equivalence claim.
func TestEnginesSelectIdenticalDerivations(t *testing.T) {
	d, l, rd := setup(t)
	e, err := core.New(d.Grammar, d.Env, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		f := ir.RandomForest(d.Grammar, ir.RandomConfig{
			Seed: seed, Trees: 50, MaxDepth: 7, Share: seed%2 == 0, MaxLeafVal: 4,
			RootOps:  []grammar.OpID{d.Grammar.MustOp("Store")},
			InnerOps: []grammar.OpID{d.Grammar.MustOp("Plus"), d.Grammar.MustOp("Load")},
		})
		want, err := rd.Trace(f, l.Label(f))
		if err != nil {
			t.Fatal(err)
		}
		got, err := rd.Trace(f, e.Label(f))
		if err != nil {
			t.Fatal(err)
		}
		if want.String(d.Grammar) != got.String(d.Grammar) {
			t.Fatalf("seed %d: derivations differ\ndp: %s\nod: %s",
				seed, want.String(d.Grammar), got.String(d.Grammar))
		}
	}
}

// TestReduceCostMatchesLabelCost: the reducer's summed cost equals the DP
// root cost (the derivation the labeler promised is the one delivered).
func TestReduceCostMatchesLabelCost(t *testing.T) {
	d, l, rd := setup(t)
	g := d.Grammar
	for seed := int64(0); seed < 20; seed++ {
		f := ir.RandomForest(g, ir.RandomConfig{
			Seed: seed, Trees: 30, MaxDepth: 7,
			RootOps:  []grammar.OpID{g.MustOp("Store")},
			InnerOps: []grammar.OpID{g.MustOp("Plus"), g.MustOp("Load")},
		})
		res := l.LabelResult(f)
		var want grammar.Cost
		ok := true
		for _, r := range f.Roots {
			c := res.CostAt(r, g.Start)
			if c.IsInf() {
				ok = false
				break
			}
			want = want.Add(c)
		}
		if !ok {
			continue
		}
		got, err := rd.Cover(f, res, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: reduce cost %d != label cost %d", seed, got, want)
		}
	}
}

func TestDAGVisitsOnce(t *testing.T) {
	d, l, rd := setup(t)
	g := d.Grammar
	b := ir.NewDAGBuilder(g)
	// Two statements store the same shared Plus expression.
	shared := b.Node("Plus", b.Leaf("Reg", 1), b.Leaf("Reg", 2))
	b.Root(b.Node("Store", b.Leaf("Reg", 3), shared))
	b.Root(b.Node("Store", b.Leaf("Reg", 4), shared))
	f := b.Finish()
	visits := map[int]int{}
	_, err := rd.Cover(f, l.Label(f), func(n *ir.Node, nt grammar.NT, r *grammar.Rule) {
		if n == shared {
			visits[int(nt)]++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for nt, c := range visits {
		if c > 1 {
			t.Errorf("shared node reduced %d times for nt %s", c, g.NTName(grammar.NT(nt)))
		}
	}
	if len(visits) == 0 {
		t.Error("shared node never visited")
	}
}

func TestUnderivableError(t *testing.T) {
	d, l, rd := setup(t)
	// A bare Reg cannot derive stmt.
	f := ir.MustParseTree(d.Grammar, "Reg[1]")
	_, err := rd.Cover(f, l.Label(f), nil)
	if err == nil || !strings.Contains(err.Error(), "no derivation") {
		t.Errorf("expected no-derivation error, got %v", err)
	}
}

func TestCoverTreeGoal(t *testing.T) {
	d, l, rd := setup(t)
	g := d.Grammar
	f := ir.MustParseTree(g, "Plus(Reg, Load(Reg))")
	cost, err := rd.CoverTree(f.Roots[0], g.MustNT("reg"), l.Label(f), nil)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 2 {
		t.Errorf("reg cost = %d, want 2", cost)
	}
}

// TestDeepTreeReduction: the reducer walks with an explicit work stack, so
// a pathologically deep tree (here a 200000-deep chain of unary Loads)
// must reduce without growing the goroutine stack proportionally. The
// recursive formulation burned one stack frame per level; this is the
// regression guard for the iterative rewrite.
func TestDeepTreeReduction(t *testing.T) {
	d, l, rd := setup(t)
	g := d.Grammar
	const depth = 200000
	b := ir.NewBuilder(g)
	n := b.Leaf("Reg", 1)
	for i := 0; i < depth; i++ {
		n = b.Node("Load", n)
	}
	f := b.SingleTree(n)
	visits := 0
	cost, err := rd.CoverTree(f.Roots[0], g.MustNT("reg"), l.Label(f), func(*ir.Node, grammar.NT, *grammar.Rule) {
		visits++
	})
	if err != nil {
		t.Fatal(err)
	}
	if cost.IsInf() || cost == 0 {
		t.Fatalf("deep chain cost = %d, want finite nonzero", cost)
	}
	if visits < depth {
		t.Fatalf("visits = %d, want at least one per level (%d)", visits, depth)
	}
}

// TestVisitOrderBottomUp: exits must fire bottom-up,
// left-to-right — children before parents, kid 0's subtree before kid
// 1's — because emission depends on operands existing before use.
func TestVisitOrderBottomUp(t *testing.T) {
	d, l, rd := setup(t)
	g := d.Grammar
	f := ir.MustParseTree(g, "Store(Reg[1], Plus(Load(Reg[2]), Reg[3]))")
	seenNode := map[*ir.Node]bool{}
	_, err := rd.Cover(f, l.Label(f), func(n *ir.Node, nt grammar.NT, r *grammar.Rule) {
		for _, k := range n.Kids {
			if !seenNode[k] {
				t.Fatalf("rule %s fired at node %d before its child %d", g.RuleName(r.Index), n.Index, k.Index)
			}
		}
		seenNode[n] = true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceMetrics(t *testing.T) {
	d := md.MustLoad("demo")
	l, _ := dp.New(d.Grammar, d.Env, nil)
	m := &metrics.Counters{}
	rd, err := reduce.New(d.Grammar, d.Env, m)
	if err != nil {
		t.Fatal(err)
	}
	f := ir.MustParseTree(d.Grammar, "Store(Reg, Reg)")
	if _, err := rd.Cover(f, l.Label(f), nil); err != nil {
		t.Fatal(err)
	}
	if m.NodesReduced == 0 {
		t.Error("reduction visits not counted")
	}
}
