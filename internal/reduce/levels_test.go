package reduce_test

import (
	"sync/atomic"
	"testing"

	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/reduce"
)

// TestLevelsPartitionInvariants: every node appears in exactly one level,
// and every node's children sit at strictly smaller levels — the property
// that makes intra-level concurrency sound.
func TestLevelsPartitionInvariants(t *testing.T) {
	d := md.MustLoad("demo")
	var lv reduce.Levels
	for seed := int64(0); seed < 6; seed++ {
		f := ir.RandomForest(d.Grammar, ir.RandomConfig{
			Seed: seed, Trees: 300, MaxDepth: 9, Share: seed%2 == 0, MaxLeafVal: 3,
		})
		lv.Partition(f)
		levelOf := make([]int, len(f.Nodes))
		seen := make([]bool, len(f.Nodes))
		for l := 0; l < lv.NumLevels(); l++ {
			for _, idx := range lv.Level(l) {
				if seen[idx] {
					t.Fatalf("seed %d: node %d appears in two levels", seed, idx)
				}
				seen[idx] = true
				levelOf[idx] = l
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("seed %d: node %d missing from the partition", seed, i)
			}
		}
		for _, n := range f.Nodes {
			for _, k := range n.Kids {
				if levelOf[k.Index] >= levelOf[n.Index] {
					t.Fatalf("seed %d: kid %d at level %d, parent %d at level %d",
						seed, k.Index, levelOf[k.Index], n.Index, levelOf[n.Index])
				}
			}
		}
	}
}

// TestLevelsRunOrdering: under worker fan-out, Run must never hand a node
// to label before all of its children have completed — checked by having
// label assert every child's done flag. Run under -race too.
func TestLevelsRunOrdering(t *testing.T) {
	d := md.MustLoad("demo")
	f := ir.RandomForest(d.Grammar, ir.RandomConfig{
		Seed: 42, Trees: 800, MaxDepth: 9, Share: true, MaxLeafVal: 3,
	})
	var lv reduce.Levels
	lv.Partition(f)
	for _, workers := range []int{1, 2, 4, 8} {
		done := make([]atomic.Bool, len(f.Nodes))
		var total atomic.Int64
		lv.Run(workers, func(idx int32) {
			n := f.Nodes[idx]
			for _, k := range n.Kids {
				if !done[k.Index].Load() {
					t.Errorf("workers=%d: node %d ran before its kid %d", workers, idx, k.Index)
				}
			}
			done[idx].Store(true)
			total.Add(1)
		})
		if int(total.Load()) != len(f.Nodes) {
			t.Errorf("workers=%d: label ran %d times, want %d", workers, total.Load(), len(f.Nodes))
		}
	}
}

// TestLevelsRunPanicPropagates: a panic inside label must surface on the
// calling goroutine (the sequential path's contract), not kill the
// process from a worker.
func TestLevelsRunPanicPropagates(t *testing.T) {
	d := md.MustLoad("demo")
	f := ir.RandomForest(d.Grammar, ir.RandomConfig{
		Seed: 7, Trees: 500, MaxDepth: 6, MaxLeafVal: 3,
	})
	var lv reduce.Levels
	lv.Partition(f)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want the label panic", r)
		}
	}()
	lv.Run(4, func(idx int32) {
		if int(idx) == len(f.Nodes)/2 {
			panic("boom")
		}
	})
	t.Fatal("Run returned instead of panicking")
}
