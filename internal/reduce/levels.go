package reduce

import (
	"sync"

	"repro/internal/ir"
)

// MinParallelSpan is the level width below which Run labels sequentially:
// spawning a goroutine costs on the order of a microsecond while a warm
// table-lookup label costs tens of nanoseconds, so fan-out only pays once
// a level carries at least a few dozen nodes per worker. Half this span
// is the minimum share Run gives one goroutine.
const MinParallelSpan = 128

// Levels partitions a forest's (or DAG's) nodes into topological levels:
// level 0 holds the leaves, and every node sits one past its deepest
// child. All nodes of one level are mutually independent — no node's
// children share its level — so a labeler may process a level's nodes in
// any order, including concurrently across goroutines, as long as levels
// themselves run in order with a barrier between them. This is the
// partition behind level-parallel labeling inside one compilation unit
// (see ParallelLabeler): the paper's warm fast path is already lock-free,
// and levels are what make intra-forest fan-out sound, because a node's
// children are guaranteed labeled before its level starts.
//
// A Levels value is reusable scratch: Partition overwrites all state,
// keeping buffer capacity, so pooled values make repeated partitioning
// allocation-free once warm.
type Levels struct {
	depth []int32
	next  []int32
	// order lists node indexes sorted by level; offs[l]:offs[l+1] bounds
	// level l within it.
	order []int32
	offs  []int32
}

// Partition computes the level decomposition of f. Nodes must be in the
// forest's topological child-before-parent order (the ir.Forest
// invariant), which makes the depth computation a single forward pass.
func (lv *Levels) Partition(f *ir.Forest) {
	n := len(f.Nodes)
	lv.depth = resizeI32(lv.depth, n)
	maxd := int32(-1)
	for i, nd := range f.Nodes {
		d := int32(0)
		for _, k := range nd.Kids {
			if kd := lv.depth[k.Index] + 1; kd > d {
				d = kd
			}
		}
		lv.depth[i] = d
		if d > maxd {
			maxd = d
		}
	}
	levels := int(maxd) + 1

	// Counting sort by depth: offs accumulates the prefix boundaries, next
	// the running insert cursors.
	lv.offs = resizeI32(lv.offs, levels+1)
	clear(lv.offs)
	for _, d := range lv.depth[:n] {
		lv.offs[d+1]++
	}
	for l := 1; l <= levels; l++ {
		lv.offs[l] += lv.offs[l-1]
	}
	lv.next = resizeI32(lv.next, levels)
	copy(lv.next, lv.offs[:levels])
	lv.order = resizeI32(lv.order, n)
	for i, d := range lv.depth[:n] {
		lv.order[lv.next[d]] = int32(i)
		lv.next[d]++
	}
}

// NumLevels reports the number of levels of the last Partition.
func (lv *Levels) NumLevels() int { return len(lv.offs) - 1 }

// Level returns the node indexes of level l (leaves at 0). The slice
// aliases the partition's scratch — valid until the next Partition.
func (lv *Levels) Level(l int) []int32 {
	return lv.order[lv.offs[l]:lv.offs[l+1]]
}

// Run invokes label(idx) for every node index of the last Partition,
// level by level: each level completes — with a barrier — before the next
// starts, so by the time label sees a node, it has already run on all the
// node's children. Within one level, wide levels fan out across up to
// workers goroutines (each given at least MinParallelSpan/2 nodes);
// narrow levels run inline on the calling goroutine. label must therefore
// tolerate concurrent invocation on distinct indexes of one level —
// writes to disjoint elements of a shared ids array are fine, and the
// WaitGroup barrier publishes them to the next level.
//
// A panic inside label (the on-demand engine's state-budget abort
// surfaces as one) is re-raised on the calling goroutine after the
// level's barrier, preserving the sequential path's panic contract.
func (lv *Levels) Run(workers int, label func(idx int32)) {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		pval any
	)
	for l := 0; l < lv.NumLevels(); l++ {
		level := lv.Level(l)
		w := workers
		if most := len(level) / (MinParallelSpan / 2); w > most {
			w = most
		}
		if w <= 1 {
			for _, idx := range level {
				label(idx)
			}
			continue
		}
		chunk := (len(level) + w - 1) / w
		for start := 0; start < len(level); start += chunk {
			end := start + chunk
			if end > len(level) {
				end = len(level)
			}
			part := level[start:end]
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						mu.Lock()
						if pval == nil {
							pval = r
						}
						mu.Unlock()
					}
				}()
				for _, idx := range part {
					label(idx)
				}
			}()
		}
		wg.Wait()
		if pval != nil {
			panic(pval)
		}
	}
}

func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
