// Package reduce implements the reducer pass shared by all labelers: given
// a labeled forest, it walks the optimal derivation from the start
// nonterminal at each root, firing each rule's action bottom-up.
//
// The reducer is deliberately engine-independent — it reads rules through
// the small Labeling interface — which is also how the test suite verifies
// that the dynamic-programming labeler, the offline automaton and the
// on-demand automaton select identical derivations.
//
// DAG inputs are handled per Ertl (POPL '99): each (node, nonterminal)
// combination is reduced at most once; derivations from different parents
// that meet at the same combination share it.
//
// The walk is iterative — an explicit enter/exit work stack instead of
// recursion, so arbitrarily deep trees cannot overflow the goroutine
// stack — and its per-call state (the stack plus a bitset indexed by
// node×nonterminal that replaces the old map[int64]bool) is pooled, so a
// warm Cover performs no allocation.
package reduce

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/metrics"
)

// CancelCheckInterval is the cooperative-cancellation granularity of the
// reducer: Cover polls ctx.Done() once per this many (node, nonterminal)
// visits, so a cancelled cover stops within a bounded amount of work while
// the warm uncancellable path (a background context, whose Done channel is
// nil) pays nothing. The cancellation tests assert the bound.
const CancelCheckInterval = 256

// Labeling is what a labeler must provide: the optimal first rule for
// deriving node n from nonterminal nt, or -1 if no derivation exists.
type Labeling interface {
	RuleAt(n *ir.Node, nt grammar.NT) int32
}

// Labeler is a labeling engine: the common face of the three
// interchangeable implementations the paper compares — dp.Labeler
// (dynamic programming at selection time), automaton.Static (offline
// burg-style automaton) and core.Engine (the paper's on-demand
// automaton). New engine kinds implement this interface and register a
// constructor with the API layer; nothing else in the pipeline needs to
// know about them.
//
// The stats methods describe the engine's automaton, when it has one:
// states materialized, transition entries tabulated or memoized, and the
// estimated table footprint. Engines without tables (dp) report zeros.
//
// Concurrency: every built-in Labeler is safe for concurrent Label calls
// on distinct forests — dp.Labeler keeps all working state per call,
// automaton.Static is immutable after generation, and core.Engine
// synchronizes its construct slow path internally (see package core).
type Labeler interface {
	// Label assigns a labeling to every node of f.
	Label(f *ir.Forest) Labeling
	// NumStates reports automaton states (materialized so far for the
	// on-demand engine, total for the static one, 0 for dp).
	NumStates() int
	// NumTransitions reports tabulated/memoized transition entries (0
	// for dp).
	NumTransitions() int
	// MemoryBytes estimates the engine's table footprint (0 for dp).
	MemoryBytes() int
}

// MeteredLabeler is the optional engine capability behind per-caller work
// accounting: LabelMetered counts the events of one Label call into a
// caller-supplied sink instead of the engine's configured one (nil falls
// back to the engine sink). All built-in engines implement it; the
// compilation server relies on it to attribute one shared warm engine's
// work to individual clients, whose counters then merge back into the
// session totals via metrics.Counters.Add.
type MeteredLabeler interface {
	LabelMetered(f *ir.Forest, m *metrics.Counters) Labeling
}

// ParallelLabeler is the optional engine capability behind level-parallel
// labeling inside one compilation unit: LabelParallel partitions f's nodes
// into topological levels (see Levels) and labels each level's nodes
// across up to workers goroutines against the engine's shared tables,
// with a barrier between levels so every node's children are labeled
// before it. workers <= 1 must behave exactly like LabelMetered(f, m).
//
// The labeling produced must be indistinguishable from the sequential
// one — engines implement this only when their per-node labeling is
// already safe for concurrent callers (all built-in automaton engines
// are; dp's whole-forest recurrence is inherently sequential and does not
// implement it). Small levels should fall back to the sequential loop:
// fan-out only pays above a few hundred independent nodes.
type ParallelLabeler interface {
	LabelParallel(f *ir.Forest, workers int, m *metrics.Counters) Labeling
}

// LabelingRecycler is the optional engine capability behind the
// allocation-free warm path: engines that implement it hand labelings out
// of an internal pool, and ReleaseLabeling returns one so the next Label
// call can reuse its buffers.
//
// Ownership contract: a labeling obtained from Label/LabelMetered belongs
// to the caller. Calling ReleaseLabeling transfers it back — the caller
// must not touch it (or anything read out of it that aliases its buffers)
// afterwards. Releasing is optional; labelings that are kept are simply
// garbage collected. Selector.Compile releases internally, which is what
// makes a warm compile allocation-free per node.
type LabelingRecycler interface {
	ReleaseLabeling(lab Labeling)
}

// Visitor receives each applied rule in bottom-up (post-order) position —
// the point where code generation actions run. nt is the nonterminal the
// rule was applied for at n.
type Visitor func(n *ir.Node, nt grammar.NT, r *grammar.Rule)

// Reducer walks derivations. One Reducer may cover from many goroutines
// concurrently: all per-call state is pooled, never shared.
type Reducer struct {
	g       *grammar.Grammar
	dyn     []grammar.DynFunc
	m       *metrics.Counters
	scratch sync.Pool // *coverScratch
}

// New creates a reducer. env is needed only to account the true cost of
// applied dynamic rules; nil is fine for fixed-cost grammars. m may be nil.
func New(g *grammar.Grammar, env grammar.DynEnv, m *metrics.Counters) (*Reducer, error) {
	dyn, err := env.Bind(g)
	if err != nil {
		return nil, err
	}
	rd := &Reducer{g: g, dyn: dyn, m: m}
	rd.scratch.New = func() any { return &coverScratch{} }
	return rd, nil
}

// coverFrame is one entry of the explicit reduction stack. ri < 0 marks an
// enter frame (the (n, nt) combination still needs its rule resolved and
// its premises pushed); ri >= 0 marks an exit frame (all premises are
// reduced — apply rule ri: account its cost and fire the visitor).
type coverFrame struct {
	n  *ir.Node
	nt grammar.NT
	ri int32
}

// coverScratch is the pooled per-Cover state: the work stack and the
// visited bitset, indexed by node×nonterminal.
type coverScratch struct {
	stack []coverFrame
	seen  []uint64
}

// getScratch returns a scratch whose bitset covers node indices below
// bound, cleared and ready to use.
func (rd *Reducer) getScratch(bound int) *coverScratch {
	sc := rd.scratch.Get().(*coverScratch)
	words := (bound*rd.g.NumNonterms() + 63) / 64
	if cap(sc.seen) < words {
		sc.seen = make([]uint64, words)
	} else {
		sc.seen = sc.seen[:words]
		clear(sc.seen)
	}
	return sc
}

// Cover reduces every root of f from the grammar's start nonterminal and
// returns the total cost of the selected derivation (summing each applied
// rule's cost exactly once, with dynamic costs evaluated at the node).
// visit may be nil. Cover fails if some root has no derivation.
func (rd *Reducer) Cover(f *ir.Forest, lab Labeling, visit Visitor) (grammar.Cost, error) {
	return rd.CoverContext(context.Background(), f, lab, visit, nil)
}

// CoverMetered is Cover with per-call counter attribution: reduction
// visits are counted into m instead of the reducer's configured sink (nil
// falls back to it) — the reducer half of the per-client accounting the
// compilation server does via reduce.MeteredLabeler.
func (rd *Reducer) CoverMetered(f *ir.Forest, lab Labeling, visit Visitor, m *metrics.Counters) (grammar.Cost, error) {
	return rd.CoverContext(context.Background(), f, lab, visit, m)
}

// CoverContext is the full cover entry point: per-call counter attribution
// plus cooperative cancellation. The walk polls ctx.Done() once per
// CancelCheckInterval (node, nonterminal) visits and aborts with ctx.Err()
// — the checkpoint that makes a served compile of a pathological forest
// stop within a bounded number of nodes after its deadline or its client's
// disconnect. A background context costs nothing on the warm path (its
// Done channel is nil, so the poll is skipped entirely).
func (rd *Reducer) CoverContext(ctx context.Context, f *ir.Forest, lab Labeling, visit Visitor, m *metrics.Counters) (grammar.Cost, error) {
	if m == nil {
		m = rd.m
	}
	sc := rd.getScratch(len(f.Nodes))
	defer rd.scratch.Put(sc)
	var total grammar.Cost
	// The poll counter spans roots: a forest of many tiny trees must hit
	// the checkpoint as reliably as one deep tree, or the bound fails for
	// exactly the many-rooted units servers see.
	visits := 0
	for _, root := range f.Roots {
		// The bitset is shared across roots: derivations from different
		// roots that meet at one (node, nonterminal) share it too.
		c, err := rd.reduce(ctx, root, rd.g.Start, lab, visit, sc, m, &visits)
		if err != nil {
			return 0, err
		}
		total = total.Add(c)
	}
	return total, nil
}

// CoverTree reduces a single node from an arbitrary goal nonterminal.
func (rd *Reducer) CoverTree(root *ir.Node, goal grammar.NT, lab Labeling, visit Visitor) (grammar.Cost, error) {
	// Nodes are topologically indexed, so every node reachable from root
	// has an index no larger than root's.
	sc := rd.getScratch(root.Index + 1)
	defer rd.scratch.Put(sc)
	visits := 0
	return rd.reduce(context.Background(), root, goal, lab, visit, sc, rd.m, &visits)
}

// reduce walks the derivation of (root, goal) with an explicit stack:
// enter frames resolve the rule at a (node, nonterminal) combination and
// push its premises (kids for base rules, the RHS combination for chain
// rules) under an exit frame; exit frames fire in exactly the bottom-up
// left-to-right order the recursive formulation produced, so visitor
// (and therefore emission) order is unchanged. Costs accumulate globally:
// every applied rule contributes exactly once, which is the same sum the
// recursive version computed, and saturating Cost addition makes the
// association irrelevant.
// visits is the caller-scoped poll counter (see CoverContext): it
// persists across the roots of one cover so the checkpoint cadence holds
// for many-rooted forests too.
func (rd *Reducer) reduce(ctx context.Context, root *ir.Node, goal grammar.NT, lab Labeling, visit Visitor, sc *coverScratch, m *metrics.Counters, visits *int) (total grammar.Cost, err error) {
	numNT := rd.g.NumNonterms()
	done := ctx.Done() // nil for background contexts: no polling at all
	stack := append(sc.stack[:0], coverFrame{n: root, nt: goal, ri: -1})
	defer func() { sc.stack = stack[:0] }() // keep grown capacity pooled
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if fr.ri >= 0 {
			// Exit: premises reduced — account the applied rule and fire
			// the action.
			r := &rd.g.Rules[fr.ri]
			if fn := rd.dyn[fr.ri]; fn != nil && !r.IsChain {
				total = total.Add(fn(fr.n))
			} else {
				total = total.Add(r.Cost)
			}
			if visit != nil {
				visit(fr.n, fr.nt, r)
			}
			continue
		}
		key := fr.n.Index*numNT + int(fr.nt)
		if sc.seen[key>>6]&(1<<(key&63)) != 0 {
			// DAG sharing: this (node, nonterminal) was already reduced via
			// another parent; its cost and actions are accounted there.
			continue
		}
		sc.seen[key>>6] |= 1 << (key & 63)
		m.CountReduce()
		if done != nil {
			if *visits++; *visits%CancelCheckInterval == 0 {
				select {
				case <-done:
					return 0, ctx.Err()
				default:
				}
			}
		}

		ri := lab.RuleAt(fr.n, fr.nt)
		if ri < 0 {
			return 0, fmt.Errorf("reduce: no derivation of %s for operator %s at node %d",
				rd.g.NTName(fr.nt), rd.g.OpName(fr.n.Op), fr.n.Index)
		}
		r := &rd.g.Rules[ri]
		stack = append(stack, coverFrame{n: fr.n, nt: fr.nt, ri: ri})
		if r.IsChain {
			stack = append(stack, coverFrame{n: fr.n, nt: r.ChainRHS, ri: -1})
			continue
		}
		if r.Op != fr.n.Op {
			return 0, fmt.Errorf("reduce: labeling is corrupt: rule %s (op %s) recorded at node with op %s",
				rd.g.RuleName(int(ri)), rd.g.OpName(r.Op), rd.g.OpName(fr.n.Op))
		}
		for ki := len(fr.n.Kids) - 1; ki >= 0; ki-- {
			stack = append(stack, coverFrame{n: fr.n.Kids[ki], nt: r.Kids[ki], ri: -1})
		}
	}
	return total, nil
}

// Derivation records an applied-rule trace, the flattened form the golden
// tests compare across engines.
type Derivation struct {
	Steps []Step
	Cost  grammar.Cost
}

// Step is one applied rule.
type Step struct {
	NodeIndex int
	NT        grammar.NT
	RuleIndex int
}

// Trace covers f and records every applied rule in visit order.
func (rd *Reducer) Trace(f *ir.Forest, lab Labeling) (*Derivation, error) {
	d := &Derivation{}
	cost, err := rd.Cover(f, lab, func(n *ir.Node, nt grammar.NT, r *grammar.Rule) {
		d.Steps = append(d.Steps, Step{NodeIndex: n.Index, NT: nt, RuleIndex: r.Index})
	})
	if err != nil {
		return nil, err
	}
	d.Cost = cost
	return d, nil
}

// String renders a derivation compactly for diagnostics.
func (d *Derivation) String(g *grammar.Grammar) string {
	s := fmt.Sprintf("cost=%d:", d.Cost)
	for _, st := range d.Steps {
		s += fmt.Sprintf(" n%d/%s:%s", st.NodeIndex, g.NTName(st.NT), g.RuleName(st.RuleIndex))
	}
	return s
}
