// Package reduce implements the reducer pass shared by all labelers: given
// a labeled forest, it walks the optimal derivation from the start
// nonterminal at each root, firing each rule's action bottom-up.
//
// The reducer is deliberately engine-independent — it reads rules through
// the small Labeling interface — which is also how the test suite verifies
// that the dynamic-programming labeler, the offline automaton and the
// on-demand automaton select identical derivations.
//
// DAG inputs are handled per Ertl (POPL '99): each (node, nonterminal)
// combination is reduced at most once; derivations from different parents
// that meet at the same combination share it.
package reduce

import (
	"fmt"

	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/metrics"
)

// Labeling is what a labeler must provide: the optimal first rule for
// deriving node n from nonterminal nt, or -1 if no derivation exists.
type Labeling interface {
	RuleAt(n *ir.Node, nt grammar.NT) int32
}

// Labeler is a labeling engine: the common face of the three
// interchangeable implementations the paper compares — dp.Labeler
// (dynamic programming at selection time), automaton.Static (offline
// burg-style automaton) and core.Engine (the paper's on-demand
// automaton). New engine kinds implement this interface and register a
// constructor with the API layer; nothing else in the pipeline needs to
// know about them.
//
// The stats methods describe the engine's automaton, when it has one:
// states materialized, transition entries tabulated or memoized, and the
// estimated table footprint. Engines without tables (dp) report zeros.
//
// Concurrency: every built-in Labeler is safe for concurrent Label calls
// on distinct forests — dp.Labeler keeps all working state per call,
// automaton.Static is immutable after generation, and core.Engine
// synchronizes its construct slow path internally (see package core).
type Labeler interface {
	// Label assigns a labeling to every node of f.
	Label(f *ir.Forest) Labeling
	// NumStates reports automaton states (materialized so far for the
	// on-demand engine, total for the static one, 0 for dp).
	NumStates() int
	// NumTransitions reports tabulated/memoized transition entries (0
	// for dp).
	NumTransitions() int
	// MemoryBytes estimates the engine's table footprint (0 for dp).
	MemoryBytes() int
}

// MeteredLabeler is the optional engine capability behind per-caller work
// accounting: LabelMetered counts the events of one Label call into a
// caller-supplied sink instead of the engine's configured one (nil falls
// back to the engine sink). All built-in engines implement it; the
// compilation server relies on it to attribute one shared warm engine's
// work to individual clients, whose counters then merge back into the
// session totals via metrics.Counters.Add.
type MeteredLabeler interface {
	LabelMetered(f *ir.Forest, m *metrics.Counters) Labeling
}

// Visitor receives each applied rule in bottom-up (post-order) position —
// the point where code generation actions run. nt is the nonterminal the
// rule was applied for at n.
type Visitor func(n *ir.Node, nt grammar.NT, r *grammar.Rule)

// Reducer walks derivations.
type Reducer struct {
	g   *grammar.Grammar
	dyn []grammar.DynFunc
	m   *metrics.Counters
}

// New creates a reducer. env is needed only to account the true cost of
// applied dynamic rules; nil is fine for fixed-cost grammars. m may be nil.
func New(g *grammar.Grammar, env grammar.DynEnv, m *metrics.Counters) (*Reducer, error) {
	dyn, err := env.Bind(g)
	if err != nil {
		return nil, err
	}
	return &Reducer{g: g, dyn: dyn, m: m}, nil
}

// Cover reduces every root of f from the grammar's start nonterminal and
// returns the total cost of the selected derivation (summing each applied
// rule's cost exactly once, with dynamic costs evaluated at the node).
// visit may be nil. Cover fails if some root has no derivation.
func (rd *Reducer) Cover(f *ir.Forest, lab Labeling, visit Visitor) (grammar.Cost, error) {
	return rd.CoverMetered(f, lab, visit, nil)
}

// CoverMetered is Cover with per-call counter attribution: reduction
// visits are counted into m instead of the reducer's configured sink (nil
// falls back to it) — the reducer half of the per-client accounting the
// compilation server does via reduce.MeteredLabeler.
func (rd *Reducer) CoverMetered(f *ir.Forest, lab Labeling, visit Visitor, m *metrics.Counters) (grammar.Cost, error) {
	if m == nil {
		m = rd.m
	}
	visited := make(map[int64]bool)
	var total grammar.Cost
	for _, root := range f.Roots {
		c, err := rd.reduce(root, rd.g.Start, lab, visit, visited, m)
		if err != nil {
			return 0, err
		}
		total = total.Add(c)
	}
	return total, nil
}

// CoverTree reduces a single node from an arbitrary goal nonterminal.
func (rd *Reducer) CoverTree(root *ir.Node, goal grammar.NT, lab Labeling, visit Visitor) (grammar.Cost, error) {
	return rd.reduce(root, goal, lab, visit, make(map[int64]bool), rd.m)
}

func (rd *Reducer) reduce(n *ir.Node, nt grammar.NT, lab Labeling, visit Visitor, visited map[int64]bool, m *metrics.Counters) (grammar.Cost, error) {
	key := int64(n.Index)<<16 | int64(nt)
	if visited[key] {
		// DAG sharing: this (node, nonterminal) was already reduced via
		// another parent; its cost and actions are accounted there.
		return 0, nil
	}
	visited[key] = true
	m.CountReduce()

	ri := lab.RuleAt(n, nt)
	if ri < 0 {
		return 0, fmt.Errorf("reduce: no derivation of %s for operator %s at node %d",
			rd.g.NTName(nt), rd.g.OpName(n.Op), n.Index)
	}
	r := &rd.g.Rules[ri]
	var total grammar.Cost
	if r.IsChain {
		c, err := rd.reduce(n, r.ChainRHS, lab, visit, visited, m)
		if err != nil {
			return 0, err
		}
		total = c.Add(r.Cost)
	} else {
		if r.Op != n.Op {
			return 0, fmt.Errorf("reduce: labeling is corrupt: rule %s (op %s) recorded at node with op %s",
				rd.g.RuleName(int(ri)), rd.g.OpName(r.Op), rd.g.OpName(n.Op))
		}
		for ki, kid := range n.Kids {
			c, err := rd.reduce(kid, r.Kids[ki], lab, visit, visited, m)
			if err != nil {
				return 0, err
			}
			total = total.Add(c)
		}
		if fn := rd.dyn[ri]; fn != nil {
			total = total.Add(fn(n))
		} else {
			total = total.Add(r.Cost)
		}
	}
	if visit != nil {
		visit(n, nt, r)
	}
	return total, nil
}

// Derivation records an applied-rule trace, the flattened form the golden
// tests compare across engines.
type Derivation struct {
	Steps []Step
	Cost  grammar.Cost
}

// Step is one applied rule.
type Step struct {
	NodeIndex int
	NT        grammar.NT
	RuleIndex int
}

// Trace covers f and records every applied rule in visit order.
func (rd *Reducer) Trace(f *ir.Forest, lab Labeling) (*Derivation, error) {
	d := &Derivation{}
	cost, err := rd.Cover(f, lab, func(n *ir.Node, nt grammar.NT, r *grammar.Rule) {
		d.Steps = append(d.Steps, Step{NodeIndex: n.Index, NT: nt, RuleIndex: r.Index})
	})
	if err != nil {
		return nil, err
	}
	d.Cost = cost
	return d, nil
}

// String renders a derivation compactly for diagnostics.
func (d *Derivation) String(g *grammar.Grammar) string {
	s := fmt.Sprintf("cost=%d:", d.Cost)
	for _, st := range d.Steps {
		s += fmt.Sprintf(" n%d/%s:%s", st.NodeIndex, g.NTName(st.NT), g.RuleName(st.RuleIndex))
	}
	return s
}
