package dp

import (
	"testing"

	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/metrics"
)

func demo(t testing.TB) md.Desc {
	t.Helper()
	return md.MustLoad("demo")
}

// TestPaperExampleTree reproduces the literature's labeling figure: for the
// tree Store(Reg, Plus(Load(Reg), Reg)) with distinct address nodes, the
// read-modify-write rule is inapplicable and the optimal derivation costs 3
// (load + add + store).
func TestPaperExampleTree(t *testing.T) {
	d := demo(t)
	g := d.Grammar
	l, err := New(g, d.Env, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := ir.MustParseTree(g, "Store(Reg[1], Plus(Load(Reg[1]), Reg[2]))")
	res := l.LabelResult(f)
	root := f.Roots[0]
	stmt := g.MustNT("stmt")
	if got := res.CostAt(root, stmt); got != 3 {
		t.Errorf("stmt cost = %d, want 3\n%s", got, res.Explain(root))
	}
	// The chosen rule at the root must be rule 5 (plain store).
	ri := res.RuleAt(root, stmt)
	if name := g.RuleName(int(ri)); name != "5" {
		t.Errorf("root rule = %s, want 5", name)
	}
	// Cost table of the Plus node matches the figure: reg costs 2.
	plus := root.Kids[1]
	if got := res.CostAt(plus, g.MustNT("reg")); got != 2 {
		t.Errorf("reg cost at Plus = %d, want 2", got)
	}
	if got := res.CostAt(plus, g.MustNT("addr")); got != 2 {
		t.Errorf("addr cost at Plus = %d, want 2 (chain from reg)", got)
	}
	if !res.Derivable(root) {
		t.Error("root must be derivable")
	}
}

// TestPaperExampleDAG builds the same shape as a DAG where the load address
// IS the store address node; the read-modify-write rule applies and the
// whole statement costs 1.
func TestPaperExampleDAG(t *testing.T) {
	d := demo(t)
	g := d.Grammar
	l, err := New(g, d.Env, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := ir.NewBuilder(g)
	addr := b.Leaf("Reg", 1)
	val := b.Leaf("Reg", 2)
	load := b.Node("Load", addr) // same addr node as the store's
	plus := b.Node("Plus", load, val)
	store := b.Node("Store", addr, plus)
	b.Root(store)
	f := b.Finish()

	res := l.LabelResult(f)
	stmt := g.MustNT("stmt")
	if got := res.CostAt(store, stmt); got != 1 {
		t.Errorf("stmt cost = %d, want 1 (RMW applies)\n%s", got, res.Explain(store))
	}
	if name := g.RuleName(int(res.RuleAt(store, stmt))); name != "6c" {
		t.Errorf("root rule = %s, want 6c", name)
	}
}

func TestChainClosureTransitive(t *testing.T) {
	g := grammar.MustParse(`
%term A(0)
%start top
base: A (1)
mid:  base (2)
top:  mid (3)
`)
	l, err := New(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := ir.MustParseTree(g, "A")
	res := l.LabelResult(f)
	n := f.Roots[0]
	if got := res.CostAt(n, g.MustNT("top")); got != 6 {
		t.Errorf("top = %d, want 6 (1+2+3 through two chain rules)", got)
	}
	if got := res.CostAt(n, g.MustNT("mid")); got != 3 {
		t.Errorf("mid = %d, want 3", got)
	}
}

func TestChainClosurePicksCheapest(t *testing.T) {
	g := grammar.MustParse(`
%term A(0)
%start x
a: A (0)
x: a (5)
b: a (1)
x: b (1)
`)
	l, _ := New(g, nil, nil)
	f := ir.MustParseTree(g, "A")
	res := l.LabelResult(f)
	n := f.Roots[0]
	if got := res.CostAt(n, g.MustNT("x")); got != 2 {
		t.Errorf("x = %d, want 2 (via b, not the direct cost-5 rule)", got)
	}
}

func TestUnderivable(t *testing.T) {
	g := grammar.MustParse(`
%term A(0) B(1)
%start x
x: B(y) (1)
y: A (0)
`)
	l, _ := New(g, nil, nil)
	f := ir.MustParseTree(g, "A")
	res := l.LabelResult(f)
	if res.Derivable(f.Roots[0]) {
		t.Error("A alone must not derive start x")
	}
	if res.RuleAt(f.Roots[0], g.MustNT("x")) != -1 {
		t.Error("rule for underivable nonterminal must be -1")
	}
}

func TestDynEnvMissing(t *testing.T) {
	d := demo(t)
	if _, err := New(d.Grammar, nil, nil); err == nil {
		t.Error("expected error for unbound dynamic cost")
	}
	if _, err := New(d.Grammar, grammar.DynEnv{"wrong": nil}, nil); err == nil {
		t.Error("expected error for wrong binding name")
	}
}

func TestDynNotCalledWhenStructurallyInapplicable(t *testing.T) {
	d := demo(t)
	g := d.Grammar
	calls := 0
	env := grammar.DynEnv{
		"samemem": func(n grammar.DynNode) grammar.Cost {
			calls++
			// Would panic on Store(Reg, Reg): Kid(1) has kids only if it
			// is the Plus(Load(...)) shape.
			if n.Kid(1).NumKids() == 0 {
				t.Error("dynamic cost called on structurally inapplicable node")
				return grammar.Inf
			}
			return grammar.Inf
		},
	}
	l, err := New(g, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := ir.MustParseTree(g, "Store(Reg, Reg)")
	l.Label(f)
	if calls != 0 {
		t.Errorf("dyn calls = %d, want 0 for non-matching shape", calls)
	}
	f2 := ir.MustParseTree(g, "Store(Reg, Plus(Load(Reg), Reg))")
	l.Label(f2)
	if calls != 1 {
		t.Errorf("dyn calls = %d, want 1 for matching shape", calls)
	}
}

func TestMetricsCounting(t *testing.T) {
	d := demo(t)
	m := &metrics.Counters{}
	l, err := New(d.Grammar, d.Env, m)
	if err != nil {
		t.Fatal(err)
	}
	f := ir.MustParseTree(d.Grammar, "Store(Reg, Plus(Load(Reg), Reg))")
	l.Label(f)
	if m.NodesLabeled != 6 {
		t.Errorf("nodes = %d, want 6", m.NodesLabeled)
	}
	if m.RulesExamined == 0 || m.ChainRelaxations == 0 {
		t.Errorf("expected rule and chain work: %s", m)
	}
	if m.WorkUnits() <= 0 || m.PerNode() <= 0 {
		t.Errorf("work units must be positive: %s", m)
	}
	m.Reset()
	if m.WorkUnits() != 0 {
		t.Error("reset failed")
	}
}

func TestNilMetricsSafe(t *testing.T) {
	var m *metrics.Counters
	m.CountNode()
	m.CountRules(3)
	m.CountChain(1)
	m.CountDyn(1)
	m.CountProbe(true)
	m.CountState()
	m.CountTransition()
	m.CountReduce()
	m.Reset()
	if m.WorkUnits() != 0 || m.PerNode() != 0 {
		t.Error("nil counters must report zero")
	}
	if m.String() == "" {
		t.Error("nil counters should still render")
	}
	_ = m.Clone()
}
