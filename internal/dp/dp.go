// Package dp implements the classical dynamic-programming tree parser used
// by iburg, lburg and BEG: at every IR node, walk all rules applicable at
// the node's operator, compute the minimal derivation cost for every
// nonterminal, and close over the chain rules.
//
// This is Baseline 1 of the reproduction — the flexible-but-slow end of the
// spectrum that the on-demand automaton (internal/core) is measured
// against — and also the reference oracle: the property tests check that
// every automaton engine computes exactly the cost tables this labeler
// computes.
package dp

import (
	"fmt"
	"sync"

	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/metrics"
	"repro/internal/reduce"
)

// Labeler is an iburg/lburg-style dynamic-programming labeler. It
// implements reduce.Labeler (plus reduce.LabelingRecycler); all working
// state lives in the per-call Result, so one Labeler may label from many
// goroutines concurrently.
type Labeler struct {
	g       *grammar.Grammar
	dyn     []grammar.DynFunc // indexed by rule index; nil for fixed-cost rules
	m       *metrics.Counters
	results sync.Pool // *Result, recycled across Label calls
}

// New creates a labeler for g. env supplies the dynamic-cost functions the
// grammar references (may be nil for grammars without dynamic rules).
// m may be nil to run uninstrumented.
func New(g *grammar.Grammar, env grammar.DynEnv, m *metrics.Counters) (*Labeler, error) {
	dyn, err := env.Bind(g)
	if err != nil {
		return nil, err
	}
	l := &Labeler{g: g, dyn: dyn, m: m}
	l.results.New = func() any { return &Result{} }
	return l, nil
}

// Grammar returns the grammar the labeler runs.
func (l *Labeler) Grammar() *grammar.Grammar { return l.g }

// Result holds the labeling of a forest: for every node and nonterminal,
// the minimal derivation cost and the first rule of a minimal derivation.
type Result struct {
	g *grammar.Grammar
	// Costs[node][nt] is the minimal cost of deriving the subtree rooted
	// at node from nt (grammar.Inf if impossible).
	Costs [][]grammar.Cost
	// Rules[node][nt] is the rule index used in the first derivation step
	// (-1 if impossible).
	Rules [][]int32
	// Backing arrays, reused when the Result is recycled through the
	// labeler's pool.
	costBack []grammar.Cost
	ruleBack []int32
}

// reuse resizes the result for nodes×numNT, reusing the backing arrays
// when capacity allows, and re-slices the per-node row headers.
func (r *Result) reuse(nodes, numNT int) {
	need := nodes * numNT
	if cap(r.costBack) < need {
		r.costBack = make([]grammar.Cost, need)
		r.ruleBack = make([]int32, need)
	} else {
		r.costBack = r.costBack[:need]
		r.ruleBack = r.ruleBack[:need]
	}
	if cap(r.Costs) < nodes {
		r.Costs = make([][]grammar.Cost, nodes)
		r.Rules = make([][]int32, nodes)
	} else {
		r.Costs = r.Costs[:nodes]
		r.Rules = r.Rules[:nodes]
	}
	for i := 0; i < nodes; i++ {
		r.Costs[i] = r.costBack[i*numNT : (i+1)*numNT : (i+1)*numNT]
		r.Rules[i] = r.ruleBack[i*numNT : (i+1)*numNT : (i+1)*numNT]
	}
}

// RuleAt implements the labeling interface used by the reducer.
func (r *Result) RuleAt(n *ir.Node, nt grammar.NT) int32 {
	return r.Rules[n.Index][nt]
}

// CostAt returns the minimal cost for deriving node n from nt.
func (r *Result) CostAt(n *ir.Node, nt grammar.NT) grammar.Cost {
	return r.Costs[n.Index][nt]
}

// Label implements reduce.Labeler; see LabelResult for the concrete
// cost/rule tables the oracle tests read.
func (l *Labeler) Label(f *ir.Forest) reduce.Labeling { return l.LabelResult(f) }

// LabelMetered implements reduce.MeteredLabeler: one call's events are
// counted into m instead of the labeler's configured sink (nil falls back
// to it).
func (l *Labeler) LabelMetered(f *ir.Forest, m *metrics.Counters) reduce.Labeling {
	return l.LabelResultMetered(f, m)
}

// NumStates implements reduce.Labeler: dynamic programming tabulates no
// automaton, so all table stats are zero.
func (l *Labeler) NumStates() int { return 0 }

// NumTransitions implements reduce.Labeler (always 0; see NumStates).
func (l *Labeler) NumTransitions() int { return 0 }

// MemoryBytes implements reduce.Labeler (always 0; see NumStates).
func (l *Labeler) MemoryBytes() int { return 0 }

// LabelResult labels all nodes of f bottom-up (topological order, which
// also covers DAG inputs) and returns the per-node cost/rule tables.
func (l *Labeler) LabelResult(f *ir.Forest) *Result {
	return l.LabelResultMetered(f, nil)
}

// LabelResultMetered is LabelResult with per-call counter attribution
// (see LabelMetered).
func (l *Labeler) LabelResultMetered(f *ir.Forest, m *metrics.Counters) *Result {
	if m == nil {
		m = l.m
	}
	numNT := l.g.NumNonterms()
	// Pooled backing arrays keep warm-path allocation count at zero; the
	// Result flows back through ReleaseLabeling (or to the GC).
	res := l.results.Get().(*Result)
	res.g = l.g
	res.reuse(len(f.Nodes), numNT)
	for i, n := range f.Nodes {
		l.labelNode(n, res, res.Costs[i], res.Rules[i], m)
	}
	return res
}

// ReleaseLabeling implements reduce.LabelingRecycler: it returns a Result
// obtained from this labeler to the pool. The Result (including its Costs
// and Rules rows) must not be used afterwards.
func (l *Labeler) ReleaseLabeling(lab reduce.Labeling) {
	if r, ok := lab.(*Result); ok && r != nil {
		l.results.Put(r)
	}
}

// labelNode computes the cost/rule row for one node given the (already
// computed) rows of its children.
func (l *Labeler) labelNode(n *ir.Node, res *Result, costs []grammar.Cost, rules []int32, m *metrics.Counters) {
	m.CountNode()
	for nt := range costs {
		costs[nt] = grammar.Inf
		rules[nt] = -1
	}
	base := l.g.BaseRules(n.Op)
	m.CountRules(len(base))
	for _, ri := range base {
		r := &l.g.Rules[ri]
		// Sum the children's costs first: a dynamic-cost function may only
		// run when the rule is structurally applicable (its kid
		// nonterminals are derivable), because such functions inspect the
		// matched pattern's shape (lcc's memop() does the same).
		var kidSum grammar.Cost
		for ki, kid := range n.Kids {
			kidSum = kidSum.Add(res.Costs[kid.Index][r.Kids[ki]])
			if kidSum.IsInf() {
				break
			}
		}
		if kidSum.IsInf() {
			continue
		}
		var c grammar.Cost
		if fn := l.dyn[ri]; fn != nil {
			m.CountDyn(1)
			c = fn(n)
			if c.IsInf() {
				continue
			}
		} else {
			c = r.Cost
		}
		c = c.Add(kidSum)
		if c < costs[r.LHS] {
			costs[r.LHS] = c
			rules[r.LHS] = int32(ri)
		}
	}
	CloseChains(l.g, costs, rules, m)
}

// CloseChains applies chain rules to a cost row until fixpoint. It is
// shared with the automaton state constructor, which runs the identical
// closure on child-state cost vectors.
func CloseChains(g *grammar.Grammar, costs []grammar.Cost, rules []int32, m *metrics.Counters) {
	chains := g.ChainRules()
	for changed := true; changed; {
		changed = false
		m.CountChain(len(chains))
		for _, ri := range chains {
			r := &g.Rules[ri]
			c := costs[r.ChainRHS].Add(r.Cost)
			if c < costs[r.LHS] {
				costs[r.LHS] = c
				rules[r.LHS] = int32(ri)
				changed = true
			}
		}
	}
}

// Derivable reports whether the root of f's i-th tree can be derived from
// the grammar's start nonterminal.
func (r *Result) Derivable(root *ir.Node) bool {
	return !r.Costs[root.Index][r.g.Start].IsInf()
}

// Explain renders the cost row of a node, for debugging and golden tests.
func (r *Result) Explain(n *ir.Node) string {
	s := ""
	for nt := 0; nt < len(r.Costs[n.Index]); nt++ {
		c := r.Costs[n.Index][nt]
		if c.IsInf() {
			continue
		}
		s += fmt.Sprintf("%s: cost=%d rule=%s\n", r.g.NTName(grammar.NT(nt)), c, r.g.RuleName(int(r.Rules[n.Index][nt])))
	}
	return s
}
