package emit

import (
	"strconv"
	"testing"
)

func TestInternerDedupes(t *testing.T) {
	in := NewInterner(0)
	a := in.Intern([]byte("mov r0, r1"))
	b := in.Intern([]byte("mov r0, r1"))
	if a != b {
		t.Fatal("equal text interned to different strings")
	}
	if in.Len() != 1 {
		t.Fatalf("Len = %d, want 1", in.Len())
	}
	allocs := testing.AllocsPerRun(100, func() {
		if in.Intern([]byte("mov r0, r1")) != a {
			t.Fatal("hit returned different string")
		}
	})
	if allocs != 0 {
		t.Errorf("warm Intern hit allocates %.2f/op, want 0", allocs)
	}
}

func TestInternerCapFallsBackToCopies(t *testing.T) {
	in := NewInterner(64)
	for i := 0; i < 100; i++ {
		s := in.Intern([]byte("line " + strconv.Itoa(i)))
		if s != "line "+strconv.Itoa(i) {
			t.Fatalf("wrong text for %d: %q", i, s)
		}
	}
	if in.Bytes() > 64 {
		t.Errorf("retained %d bytes past the 64-byte cap", in.Bytes())
	}
	// Capped interner still answers correctly for retained entries.
	if got := in.Intern([]byte("line 0")); got != "line 0" {
		t.Fatalf("retained entry answered %q", got)
	}
}
