// Package emit turns selected derivations into assembly-like text.
//
// Rules carry templates (see grammar.Rule.Template). A template starting
// with '=' is a *value* template: it names the operand the rule's
// left-hand-side nonterminal stands for (addressing modes, immediates,
// registers) and emits no instruction. Any other non-empty template is an
// *instruction* template: the emitter allocates a fresh virtual register
// for the result and writes one line of assembly. Empty templates emit
// nothing and pass the operand of the rule's (single) right-hand-side
// nonterminal through, which is the common case for chain and helper
// rules.
//
// Substitutions: %0 and %1 expand to the operands of the rule's kid
// nonterminals, %c to the node's leaf value, %s to its symbol, and %d to
// the freshly allocated destination register. For multi-node source
// patterns, dotted paths descend through the helper rules that normal-form
// conversion introduced: in Store(addr, Plus(Load(addr), reg)) the operand
// of the inner reg is %1.1 (kid 1 of the Store, kid 1 of the Plus).
//
// The emitter exists for two reasons: the examples and CLI produce real
// output, and the experiments need "emitted target instructions" as their
// denominator and "identical code out of every engine" as a correctness
// check.
//
// # Allocation discipline
//
// A warm Emitter (one that has been Reset after emitting forests at least
// as large) allocates nothing per node: operand and rule bookkeeping live
// in flat slices indexed by (node, nonterminal), operand text is built in
// a per-emitter byte arena whose views are handed around as unsafe
// zero-copy strings valid until the next Reset, virtual-register names
// come from a grown-once table, and the assembly accumulates in a reused
// byte buffer. The only storage that leaves the emitter is the Asm()
// string, which is interned through the shared Interner (or plain-copied
// without one) — never a view of recycled memory, so returned assembly
// stays valid forever.
package emit

import (
	"strconv"
	"strings"
	"unsafe"

	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/reduce"
)

// Emitter accumulates assembly for one forest. Use one Emitter per Cover;
// Reset recycles it for the next. Emitters are not safe for concurrent
// use — pool them (see Selector in the root package).
type Emitter struct {
	g     *grammar.Grammar
	numNT int

	// operands[n.Index*numNT+nt] is the operand text the (node,
	// nonterminal) result can be referenced by; applied[...] the rule
	// reduced there (nil = not visited, the presence marker). Flat slices,
	// grown to the largest forest seen and cleared by Reset.
	operands []string
	applied  []*grammar.Rule

	// arena backs within-call operand text (expanded value templates, leaf
	// payload renderings) as zero-copy views; tmp is the template-expansion
	// scratch, separate from arena so nested operand rendering cannot
	// interleave bytes into an expansion in progress. Both are reused
	// across Reset.
	arena []byte
	tmp   []byte

	// asm is the accumulated assembly text; regs the grown-once virtual
	// register name table ("r0", "r1", ...).
	asm  []byte
	regs []string

	// intern, when set, canonicalizes Asm() results (see Interner); visit
	// is the cached Visit method value, so callers passing the visitor
	// per call do not allocate a closure each time.
	intern *Interner
	visit  reduce.Visitor

	nextReg int
	instrs  int
}

// New creates an emitter for g.
func New(g *grammar.Grammar) *Emitter {
	e := &Emitter{g: g, numNT: g.NumNonterms()}
	e.visit = e.Visit
	return e
}

// SetInterner shares in as the canonical store for Asm() results; all
// emitters pooled by one selector share one interner. A nil interner
// reverts to plain per-call copies.
func (e *Emitter) SetInterner(in *Interner) { e.intern = in }

// Visitor returns the emitter's reduce.Visitor without allocating: the
// method value is created once at construction.
func (e *Emitter) Visitor() reduce.Visitor { return e.visit }

// Reset clears all per-forest state so the emitter can be reused for the
// next Cover, keeping every buffer's capacity. Previously returned Asm
// strings stay valid: they were interned or copied out, never views of
// the recycled buffers.
func (e *Emitter) Reset() {
	e.asm = e.asm[:0]
	e.arena = e.arena[:0]
	clear(e.operands)
	clear(e.applied)
	e.nextReg = 0
	e.instrs = 0
}

// key returns the flat (node, nonterminal) slot index. Callers rely on
// ensure having sized the slices: Visit grows them for its node up front,
// which covers every slot the visit can touch — kid indexes are strictly
// smaller in the forest's topological child-before-parent order.
func (e *Emitter) key(n *ir.Node, nt grammar.NT) int {
	return n.Index*e.numNT + int(nt)
}

// ensure grows the bookkeeping slices to cover node index idx. Growth only
// happens when a larger forest than ever before arrives; a warm emitter
// never reallocates here.
func (e *Emitter) ensure(idx int) {
	need := (idx + 1) * e.numNT
	if need <= len(e.operands) {
		return
	}
	grown := make([]string, need+4*e.numNT)
	copy(grown, e.operands)
	e.operands = grown
	grownR := make([]*grammar.Rule, len(grown))
	copy(grownR, e.applied)
	e.applied = grownR
}

// Visit is the reduce.Visitor that drives emission.
func (e *Emitter) Visit(n *ir.Node, nt grammar.NT, r *grammar.Rule) {
	e.ensure(n.Index)
	key := e.key(n, nt)
	e.applied[key] = r
	switch {
	case r.Template == "":
		// Pass-through: chain rules forward the RHS nonterminal's operand;
		// base rules without templates forward their first kid (or render
		// the leaf payload).
		if r.IsChain {
			e.operands[key] = e.operandOf(n, r.ChainRHS)
		} else if len(n.Kids) > 0 {
			e.operands[key] = e.operandOf(n.Kids[0], r.Kids[0])
		} else {
			e.operands[key] = e.leafText(n)
		}
	case strings.HasPrefix(r.Template, "="):
		e.expandTmp(r.Template[1:], n, r, "")
		e.operands[key] = e.internArena(e.tmp)
	default:
		dst := e.regName(e.nextReg)
		e.nextReg++
		e.expandTmp(r.Template, n, r, dst)
		e.asm = append(e.asm, '\t')
		e.asm = append(e.asm, e.tmp...)
		e.asm = append(e.asm, '\n')
		e.instrs++
		e.operands[key] = dst
	}
}

// expandTmp substitutes template escapes into e.tmp.
func (e *Emitter) expandTmp(tmpl string, n *ir.Node, r *grammar.Rule, dst string) {
	e.tmp = e.tmp[:0]
	for i := 0; i < len(tmpl); i++ {
		c := tmpl[i]
		if c != '%' || i+1 >= len(tmpl) {
			e.tmp = append(e.tmp, c)
			continue
		}
		i++
		switch tmpl[i] {
		case '0', '1':
			ki := int(tmpl[i] - '0')
			// Collect a dotted path: %1.1 descends through helper rules.
			var pbuf [4]int
			path := append(pbuf[:0], ki)
			for i+2 < len(tmpl) && tmpl[i+1] == '.' && tmpl[i+2] >= '0' && tmpl[i+2] <= '9' {
				path = append(path, int(tmpl[i+2]-'0'))
				i += 2
			}
			if r.IsChain {
				e.tmp = append(e.tmp, e.operandOf(n, r.ChainRHS)...)
			} else {
				e.tmp = append(e.tmp, e.pathOperand(n, r, path)...)
			}
		case 'c':
			e.tmp = strconv.AppendInt(e.tmp, n.Val, 10)
		case 's':
			e.tmp = append(e.tmp, n.Sym...)
		case 'd':
			e.tmp = append(e.tmp, dst...)
		case '%':
			e.tmp = append(e.tmp, '%')
		default:
			e.tmp = append(e.tmp, '%', tmpl[i])
		}
	}
}

// internArena copies b into the arena and returns a zero-copy view, valid
// until the next Reset — the lifetime of every operand string.
func (e *Emitter) internArena(b []byte) string {
	start := len(e.arena)
	e.arena = append(e.arena, b...)
	v := e.arena[start:]
	if len(v) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(v), len(v))
}

// regName returns the interned name of virtual register i. Names are
// plain heap strings retained across Reset, so a warm emitter never
// re-renders them.
func (e *Emitter) regName(i int) string {
	for len(e.regs) <= i {
		e.regs = append(e.regs, "r"+strconv.Itoa(len(e.regs)))
	}
	return e.regs[i]
}

// pathOperand resolves a dotted kid path starting at base rule r of node n:
// each step moves to kid path[k] of the current node, using the rule
// reduced at the current (node, nonterminal) to find the kid nonterminal.
func (e *Emitter) pathOperand(n *ir.Node, r *grammar.Rule, path []int) string {
	for step, ki := range path {
		if r == nil || r.IsChain || ki >= len(n.Kids) {
			return "?"
		}
		nt := r.Kids[ki]
		n = n.Kids[ki]
		// Follow chain rules applied at the kid down to a base rule so a
		// further path step has kids to descend into.
		kr := e.applied[e.key(n, nt)]
		for kr != nil && kr.IsChain {
			nt = kr.ChainRHS
			kr = e.applied[e.key(n, nt)]
		}
		if step == len(path)-1 {
			return e.operandOf(n, nt)
		}
		r = kr
	}
	return "?"
}

func (e *Emitter) operandOf(n *ir.Node, nt grammar.NT) string {
	key := e.key(n, nt)
	if e.applied[key] != nil {
		return e.operands[key]
	}
	// A kid whose reduction carried no template at all: render the leaf.
	return e.leafText(n)
}

// leafText renders a leaf payload: the symbol if present, else the value
// as an arena-backed decimal.
func (e *Emitter) leafText(n *ir.Node) string {
	if n.Sym != "" {
		return n.Sym
	}
	start := len(e.arena)
	e.arena = strconv.AppendInt(e.arena, n.Val, 10)
	v := e.arena[start:]
	return unsafe.String(unsafe.SliceData(v), len(v))
}

// Asm returns the emitted assembly text: interned through the shared
// Interner when one is set, otherwise a fresh copy. Either way the result
// owns its bytes — it survives Reset and further emission.
func (e *Emitter) Asm() string {
	if len(e.asm) == 0 {
		return ""
	}
	if e.intern != nil {
		return e.intern.Intern(e.asm)
	}
	return string(e.asm)
}

// Instructions returns the number of emitted instruction lines — the
// "emitted target instructions" denominator of the per-instruction
// experiment figures.
func (e *Emitter) Instructions() int { return e.instrs }

// Emit covers f with lab using reducer rd and returns the assembly, the
// emitted instruction count, and the derivation cost.
func Emit(rd *reduce.Reducer, f *ir.Forest, lab reduce.Labeling, g *grammar.Grammar) (asm string, instrs int, cost grammar.Cost, err error) {
	em := New(g)
	cost, err = rd.Cover(f, lab, em.Visit)
	if err != nil {
		return "", 0, 0, err
	}
	return em.Asm(), em.Instructions(), cost, nil
}
