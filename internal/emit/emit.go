// Package emit turns selected derivations into assembly-like text.
//
// Rules carry templates (see grammar.Rule.Template). A template starting
// with '=' is a *value* template: it names the operand the rule's
// left-hand-side nonterminal stands for (addressing modes, immediates,
// registers) and emits no instruction. Any other non-empty template is an
// *instruction* template: the emitter allocates a fresh virtual register
// for the result and writes one line of assembly. Empty templates emit
// nothing and pass the operand of the rule's (single) right-hand-side
// nonterminal through, which is the common case for chain and helper
// rules.
//
// Substitutions: %0 and %1 expand to the operands of the rule's kid
// nonterminals, %c to the node's leaf value, %s to its symbol, and %d to
// the freshly allocated destination register. For multi-node source
// patterns, dotted paths descend through the helper rules that normal-form
// conversion introduced: in Store(addr, Plus(Load(addr), reg)) the operand
// of the inner reg is %1.1 (kid 1 of the Store, kid 1 of the Plus).
//
// The emitter exists for two reasons: the examples and CLI produce real
// output, and the experiments need "emitted target instructions" as their
// denominator and "identical code out of every engine" as a correctness
// check.
package emit

import (
	"fmt"
	"strings"

	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/reduce"
)

// Emitter accumulates assembly for one forest. Use one Emitter per Cover.
type Emitter struct {
	g *grammar.Grammar
	b strings.Builder
	// operands[key(node, nt)] is the operand text the (node, nonterminal)
	// result can be referenced by.
	operands map[int64]string
	// applied[key(node, nt)] is the rule reduced at (node, nt); dotted
	// template paths walk through it.
	applied map[int64]*grammar.Rule
	nextReg int
	instrs  int
}

// New creates an emitter for g.
func New(g *grammar.Grammar) *Emitter {
	return &Emitter{g: g, operands: map[int64]string{}, applied: map[int64]*grammar.Rule{}}
}

// Reset clears all per-forest state so the emitter can be reused for the
// next Cover, keeping its maps' capacity. Previously returned Asm strings
// stay valid: the builder's storage is never rewritten after Reset.
func (e *Emitter) Reset() {
	e.b.Reset()
	clear(e.operands)
	clear(e.applied)
	e.nextReg = 0
	e.instrs = 0
}

// Visit is the reduce.Visitor that drives emission.
func (e *Emitter) Visit(n *ir.Node, nt grammar.NT, r *grammar.Rule) {
	key := opKey(n, nt)
	e.applied[key] = r
	switch {
	case r.Template == "":
		// Pass-through: chain rules forward the RHS nonterminal's operand;
		// base rules without templates forward their first kid (or render
		// the leaf payload).
		if r.IsChain {
			e.operands[key] = e.operandOf(n, r.ChainRHS)
		} else if len(n.Kids) > 0 {
			e.operands[key] = e.operandOf(n.Kids[0], r.Kids[0])
		} else {
			e.operands[key] = leafText(n)
		}
	case strings.HasPrefix(r.Template, "="):
		e.operands[key] = e.expand(r.Template[1:], n, r, "")
	default:
		dst := fmt.Sprintf("r%d", e.nextReg)
		e.nextReg++
		line := e.expand(r.Template, n, r, dst)
		e.b.WriteByte('\t')
		e.b.WriteString(line)
		e.b.WriteByte('\n')
		e.instrs++
		e.operands[key] = dst
	}
}

// expand substitutes template escapes.
func (e *Emitter) expand(tmpl string, n *ir.Node, r *grammar.Rule, dst string) string {
	var out strings.Builder
	for i := 0; i < len(tmpl); i++ {
		c := tmpl[i]
		if c != '%' || i+1 >= len(tmpl) {
			out.WriteByte(c)
			continue
		}
		i++
		switch tmpl[i] {
		case '0', '1':
			ki := int(tmpl[i] - '0')
			// Collect a dotted path: %1.1 descends through helper rules.
			var path []int
			path = append(path, ki)
			for i+2 < len(tmpl) && tmpl[i+1] == '.' && tmpl[i+2] >= '0' && tmpl[i+2] <= '9' {
				path = append(path, int(tmpl[i+2]-'0'))
				i += 2
			}
			if r.IsChain {
				out.WriteString(e.operandOf(n, r.ChainRHS))
			} else {
				out.WriteString(e.pathOperand(n, r, path))
			}
		case 'c':
			fmt.Fprintf(&out, "%d", n.Val)
		case 's':
			out.WriteString(n.Sym)
		case 'd':
			out.WriteString(dst)
		case '%':
			out.WriteByte('%')
		default:
			out.WriteByte('%')
			out.WriteByte(tmpl[i])
		}
	}
	return out.String()
}

// pathOperand resolves a dotted kid path starting at base rule r of node n:
// each step moves to kid path[k] of the current node, using the rule
// reduced at the current (node, nonterminal) to find the kid nonterminal.
func (e *Emitter) pathOperand(n *ir.Node, r *grammar.Rule, path []int) string {
	for step, ki := range path {
		if r == nil || r.IsChain || ki >= len(n.Kids) {
			return "?"
		}
		nt := r.Kids[ki]
		n = n.Kids[ki]
		// Follow chain rules applied at the kid down to a base rule so a
		// further path step has kids to descend into.
		kr := e.applied[opKey(n, nt)]
		for kr != nil && kr.IsChain {
			nt = kr.ChainRHS
			kr = e.applied[opKey(n, nt)]
		}
		if step == len(path)-1 {
			return e.operandOf(n, nt)
		}
		r = kr
	}
	return "?"
}

func (e *Emitter) operandOf(n *ir.Node, nt grammar.NT) string {
	if s, ok := e.operands[opKey(n, nt)]; ok {
		return s
	}
	// A kid whose reduction carried no template at all: render the leaf.
	return leafText(n)
}

func leafText(n *ir.Node) string {
	if n.Sym != "" {
		return n.Sym
	}
	return fmt.Sprintf("%d", n.Val)
}

func opKey(n *ir.Node, nt grammar.NT) int64 {
	return int64(n.Index)<<16 | int64(nt)
}

// Asm returns the emitted assembly text.
func (e *Emitter) Asm() string { return e.b.String() }

// Instructions returns the number of emitted instruction lines — the
// "emitted target instructions" denominator of the per-instruction
// experiment figures.
func (e *Emitter) Instructions() int { return e.instrs }

// Emit covers f with lab using reducer rd and returns the assembly, the
// emitted instruction count, and the derivation cost.
func Emit(rd *reduce.Reducer, f *ir.Forest, lab reduce.Labeling, g *grammar.Grammar) (asm string, instrs int, cost grammar.Cost, err error) {
	em := New(g)
	cost, err = rd.Cover(f, lab, em.Visit)
	if err != nil {
		return "", 0, 0, err
	}
	return em.Asm(), em.Instructions(), cost, nil
}
