package emit

import "sync"

// Interner deduplicates emitted assembly text. One Interner typically
// serves one selector: every Emitter the selector pools shares it, so a
// warm compilation session — the same functions compiled over and over, a
// JIT re-entering hot code, the benchmark harness looping a corpus —
// returns the same Asm string without allocating a fresh copy per call.
// That last copy was the only per-call allocation left in warm emission,
// which is what makes the full-Compile zero-allocs-per-node contract hold
// (see alloc_test.go at the repo root).
//
// Interned strings are retained for the Interner's lifetime. That is also
// what makes returned Output.Asm values durable: an Emitter's internal
// buffers are recycled by Reset, but the string handed out is either
// interned (owned here) or a plain copy — never a view of recycled
// storage. Retention is bounded by the byte cap: once the cap is reached,
// Intern degrades to plain string copies (correct, one allocation per
// call) instead of growing without bound under pathological workloads
// where every unit's text is distinct.
type Interner struct {
	mu    sync.RWMutex
	m     map[string]string
	bytes int
	cap   int
}

// DefaultInternBytes is the retention cap NewInterner applies when given a
// non-positive cap: generous for realistic corpora (the whole benchmark
// workload's emitted text is well under a megabyte) while keeping a
// long-lived server's worst case bounded.
const DefaultInternBytes = 8 << 20

// NewInterner creates an interner retaining at most capBytes of distinct
// text (DefaultInternBytes if capBytes <= 0).
func NewInterner(capBytes int) *Interner {
	if capBytes <= 0 {
		capBytes = DefaultInternBytes
	}
	return &Interner{m: make(map[string]string), cap: capBytes}
}

// Intern returns the canonical string for b. The hit path takes a read
// lock and a map probe only — the m[string(b)] form is recognized by the
// compiler, so no copy of b is made. Misses materialize the string once
// and retain it while the byte cap allows; past the cap the copy is
// returned unretained.
func (in *Interner) Intern(b []byte) string {
	in.mu.RLock()
	s, ok := in.m[string(b)]
	in.mu.RUnlock()
	if ok {
		return s
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	s = string(b)
	if in.bytes+len(s) <= in.cap {
		in.m[s] = s
		in.bytes += len(s)
	}
	return s
}

// Len reports the number of retained strings (diagnostics and tests).
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.m)
}

// Bytes reports the retained text volume (diagnostics and tests).
func (in *Interner) Bytes() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.bytes
}
