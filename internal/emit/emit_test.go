package emit

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/reduce"
)

func TestEmitDemoTree(t *testing.T) {
	d := md.MustLoad("demo")
	g := d.Grammar
	l, _ := dp.New(g, d.Env, nil)
	rd, _ := reduce.New(g, d.Env, nil)
	f := ir.MustParseTree(g, "Store(Reg[1], Plus(Load(Reg[1]), Reg[2]))")
	asm, instrs, cost, err := Emit(rd, f, l.Label(f), g)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 3 || instrs != 3 {
		t.Errorf("cost=%d instrs=%d, want 3/3", cost, instrs)
	}
	for _, want := range []string{"movq (v1)", "addq", "movq r1, (v1)"} {
		if !strings.Contains(asm, want) {
			t.Errorf("asm missing %q:\n%s", want, asm)
		}
	}
}

func TestEmitRMWDag(t *testing.T) {
	d := md.MustLoad("demo")
	g := d.Grammar
	l, _ := dp.New(g, d.Env, nil)
	rd, _ := reduce.New(g, d.Env, nil)
	b := ir.NewBuilder(g)
	a := b.Leaf("Reg", 1)
	root := b.Node("Store", a, b.Node("Plus", b.Node("Load", a), b.Leaf("Reg", 2)))
	b.Root(root)
	f := b.Finish()
	asm, instrs, cost, err := Emit(rd, f, l.Label(f), g)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 1 || instrs != 1 {
		t.Errorf("cost=%d instrs=%d, want 1/1 (single RMW instruction)", cost, instrs)
	}
	if !strings.Contains(asm, "addq v2, (v1)") {
		t.Errorf("unexpected RMW asm:\n%s", asm)
	}
}

// TestEnginesEmitIdenticalCode is the reproduction's equivalent of the
// "both code generators produce identical code" check the paper family
// performs between lburg and their tools.
func TestEnginesEmitIdenticalCode(t *testing.T) {
	d := md.MustLoad("demo")
	g := d.Grammar
	l, _ := dp.New(g, d.Env, nil)
	e, err := core.New(g, d.Env, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := reduce.New(g, d.Env, nil)
	for seed := int64(0); seed < 15; seed++ {
		f := ir.RandomForest(g, ir.RandomConfig{
			Seed: seed, Trees: 40, MaxDepth: 7, Share: seed%3 == 0, MaxLeafVal: 4,
			RootOps:  []grammar.OpID{g.MustOp("Store")},
			InnerOps: []grammar.OpID{g.MustOp("Plus"), g.MustOp("Load")},
		})
		asmDP, nDP, cDP, err := Emit(rd, f, l.Label(f), g)
		if err != nil {
			t.Fatal(err)
		}
		asmOD, nOD, cOD, err := Emit(rd, f, e.Label(f), g)
		if err != nil {
			t.Fatal(err)
		}
		if asmDP != asmOD || nDP != nOD || cDP != cOD {
			t.Fatalf("seed %d: engines emitted different code (dp %d instrs cost %d, od %d instrs cost %d)\n--- dp ---\n%s\n--- od ---\n%s",
				seed, nDP, cDP, nOD, cOD, asmDP, asmOD)
		}
	}
}

func TestTemplateEscapes(t *testing.T) {
	g := grammar.MustParse(`
%term K(0) P(2)
%start r
k: K = 1 (0) "=%c"
r: P(k, k) = 2 (1) "lea %0(%1), %d ; 100%% flat %z"
`)
	l, _ := dp.New(g, nil, nil)
	rd, _ := reduce.New(g, nil, nil)
	f := ir.MustParseTree(g, "P(K[3], K[4])")
	asm, instrs, _, err := Emit(rd, f, l.Label(f), g)
	if err != nil {
		t.Fatal(err)
	}
	if instrs != 1 {
		t.Errorf("instrs = %d, want 1", instrs)
	}
	if !strings.Contains(asm, "lea 3(4), r0") {
		t.Errorf("operand substitution failed: %q", asm)
	}
	if !strings.Contains(asm, "100% flat") {
		t.Errorf("%%%% escape failed: %q", asm)
	}
	if !strings.Contains(asm, "%z") {
		t.Errorf("unknown escapes should pass through: %q", asm)
	}
}

func TestSymbolSubstitution(t *testing.T) {
	g := grammar.MustParse(`
%term G(0) L(1)
%start r
a: G = 1 (0) "=%s"
r: L(a) = 2 (1) "mov %0, %d"
`)
	l, _ := dp.New(g, nil, nil)
	rd, _ := reduce.New(g, nil, nil)
	f := ir.MustParseTree(g, "L(G[counter])")
	asm, _, _, err := Emit(rd, f, l.Label(f), g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(asm, "mov counter, r0") {
		t.Errorf("symbol substitution failed: %q", asm)
	}
}

func TestChainRuleWithInstructionTemplate(t *testing.T) {
	g := grammar.MustParse(`
%term K(0)
%start f
i: K = 1 (0) "=%c"
f: i = 2 (1) "cvtsi2sd %0, %d"
`)
	l, _ := dp.New(g, nil, nil)
	rd, _ := reduce.New(g, nil, nil)
	f := ir.MustParseTree(g, "K[7]")
	asm, instrs, _, err := Emit(rd, f, l.Label(f), g)
	if err != nil {
		t.Fatal(err)
	}
	if instrs != 1 || !strings.Contains(asm, "cvtsi2sd 7, r0") {
		t.Errorf("chain instruction template failed: %q (%d instrs)", asm, instrs)
	}
}

func TestSharedSubtreeEmittedOnce(t *testing.T) {
	d := md.MustLoad("demo")
	g := d.Grammar
	l, _ := dp.New(g, d.Env, nil)
	rd, _ := reduce.New(g, d.Env, nil)
	b := ir.NewDAGBuilder(g)
	shared := b.Node("Plus", b.Leaf("Reg", 1), b.Leaf("Reg", 2))
	b.Root(b.Node("Store", b.Leaf("Reg", 3), shared))
	b.Root(b.Node("Store", b.Leaf("Reg", 4), shared))
	f := b.Finish()
	asm, instrs, _, err := Emit(rd, f, l.Label(f), g)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(asm, "addq"); got != 1 {
		t.Errorf("shared add emitted %d times, want 1:\n%s", got, asm)
	}
	if instrs != 3 { // one add + two stores
		t.Errorf("instrs = %d, want 3", instrs)
	}
}
