package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/md"
)

// EPRow is one sample of the parallel-labeling scaling experiment: N
// workers sharing one warm on-demand engine, the compilation-server
// extension of the paper's JIT scenario.
type EPRow struct {
	Grammar   string
	Workers   int
	Passes    int
	Nodes     int // nodes labeled per pass (whole corpus)
	NsPerNode float64
	Speedup   float64 // vs the 1-worker configuration (first row if absent)

	// Level-parallel columns: the same worker count applied *inside* one
	// wide forest (topological levels fanned across goroutines, barrier
	// between levels — reduce.ParallelLabeler) instead of across forests.
	LevelNodes     int // nodes of the wide forest labeled per pass
	LevelNsPerNode float64
	LevelSpeedup   float64 // vs the 1-worker level configuration
}

// RunParallel measures warm labeling throughput for each worker count.
// One engine is warmed over the corpus, then each configuration labels
// the whole corpus `passes` times with a worker pool pulling forests off
// a shared index. Results are wall-clock and therefore machine-dependent
// (unlike the deterministic work-unit tables); scaling beyond one worker
// requires GOMAXPROCS > 1.
func RunParallel(gname string, workerCounts []int, passes int) ([]EPRow, *Table, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	if passes <= 0 {
		passes = 20
	}
	d, err := md.Load(gname)
	if err != nil {
		return nil, nil, err
	}
	var fs []*ir.Forest
	for _, u := range loadCorpus(d.Grammar) {
		fs = append(fs, u.forests...)
	}
	nodes := 0
	for _, f := range fs {
		nodes += f.NumNodes()
	}
	e, err := core.New(d.Grammar, d.Env, core.Config{})
	if err != nil {
		return nil, nil, err
	}
	for _, f := range fs { // warm up: the measured passes are pure fast path
		e.Label(f)
	}
	// The level-parallel measurement needs one forest wide enough that its
	// topological levels carry hundreds of independent nodes — intra-forest
	// fan-out, the complement of the across-forest worker pool above.
	wide := ir.RandomForest(d.Grammar, ir.RandomConfig{
		Seed: 7, Trees: 4000, MaxDepth: 8, MaxLeafVal: 3,
	})
	e.ReleaseLabeling(e.LabelStates(wide)) // warm the wide forest's transitions too

	t := &Table{
		ID: "EP",
		Title: fmt.Sprintf("parallel labeling scaling on %s (one warm on-demand engine, %d corpus passes, GOMAXPROCS=%d)",
			gname, passes, runtime.GOMAXPROCS(0)),
		Header: []string{"workers", "nodes/pass", "ns/node", "speedup", "level ns/node", "level speedup"},
	}
	nsPer := make([]float64, len(workerCounts))
	lvlPer := make([]float64, len(workerCounts))
	for i, workers := range workerCounts {
		start := time.Now()
		for p := 0; p < passes; p++ {
			labelAll(e, fs, workers)
		}
		nsPer[i] = float64(time.Since(start).Nanoseconds()) / float64(passes*nodes)

		start = time.Now()
		for p := 0; p < passes; p++ {
			e.ReleaseLabeling(e.LabelStatesParallel(wide, workers, nil))
		}
		lvlPer[i] = float64(time.Since(start).Nanoseconds()) / float64(passes*wide.NumNodes())
	}
	// Baseline: the 1-worker configuration wherever it appears in the
	// list; fall back to the first configuration if it is absent.
	base, lvlBase := nsPer[0], lvlPer[0]
	for i, workers := range workerCounts {
		if workers == 1 {
			base, lvlBase = nsPer[i], lvlPer[i]
			break
		}
	}
	var rows []EPRow
	for i, workers := range workerCounts {
		row := EPRow{
			Grammar: gname, Workers: workers, Passes: passes, Nodes: nodes,
			NsPerNode: nsPer[i], Speedup: base / nsPer[i],
			LevelNodes: wide.NumNodes(), LevelNsPerNode: lvlPer[i], LevelSpeedup: lvlBase / lvlPer[i],
		}
		rows = append(rows, row)
		t.AddRow(itoa(workers), itoa(nodes), f1(nsPer[i]), f2(row.Speedup), f1(lvlPer[i]), f2(row.LevelSpeedup))
	}
	t.Note("warm fast path is lock-free (atomic loads); speedup tracks available cores")
	t.Note("level columns: the same workers fanned inside one %d-node forest (topological levels, barrier per level)", wide.NumNodes())
	return rows, t, nil
}

// labelAll labels every forest once, fanned out over `workers` goroutines
// pulling from a shared atomic index — the same worker-pool shape as
// Selector.CompileUnitParallel.
func labelAll(e *core.Engine, fs []*ir.Forest, workers int) {
	if workers <= 1 {
		for _, f := range fs {
			e.ReleaseLabeling(e.LabelStates(f))
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(fs) {
					return
				}
				e.ReleaseLabeling(e.LabelStates(fs[i]))
			}
		}()
	}
	wg.Wait()
}
