package bench

import (
	"time"

	"repro/internal/automaton"
	"repro/internal/core"
	"repro/internal/grammar"
	"repro/internal/md"
	"repro/internal/metrics"
)

// RunAblationDeltaCap measures how the delta-cost cap (the finite-state
// safety valve, DESIGN.md §5) affects offline state counts. For realistic
// grammars the cap should be irrelevant until it gets close to the cost
// spread of the rules.
func RunAblationDeltaCap() (*Table, error) {
	caps := []int{1, 2, 4, 8, 32, 128, int(automaton.DefaultDeltaCap)}
	t := &Table{
		ID:     "A1",
		Title:  "ablation: offline-automaton states by delta-cost cap (stripped grammars)",
		Header: []string{"grammar", "cap=1", "cap=2", "cap=4", "cap=8", "cap=32", "cap=128", "default"},
	}
	for _, name := range AllGrammars {
		d := md.MustLoad(name)
		fixed, err := d.Grammar.StripDynamic()
		if err != nil {
			return nil, err
		}
		cells := []string{name}
		for _, c := range caps {
			a, err := automaton.Generate(fixed, automaton.StaticConfig{DeltaCap: grammar.Cost(c)})
			if err != nil {
				cells = append(cells, "err")
				continue
			}
			cells = append(cells, itoa(a.NumStates()))
		}
		t.AddRow(cells...)
	}
	t.Note("tiny caps merge states (possibly losing optimality); beyond the rule-cost spread the count is stable")
	return t, nil
}

// RunAblationHash compares the dense direct-lookup transition arrays
// against routing everything through the hash table (Config.ForceHash),
// the table-layout trade-off of DESIGN.md §5.
func RunAblationHash(gname string) (*Table, error) {
	d, err := md.Load(gname)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "A2",
		Title:  "ablation: dense direct-lookup arrays vs all-hash transition storage (" + gname + ", warm)",
		Header: []string{"layout", "work/node", "ns/node", "states"},
	}
	units := loadCorpus(d.Grammar)
	for _, force := range []bool{false, true} {
		m := &metrics.Counters{}
		e, err := core.New(d.Grammar, d.Env, core.Config{Metrics: m, ForceHash: force})
		if err != nil {
			return nil, err
		}
		for _, u := range units {
			for _, f := range u.forests {
				e.Label(f)
			}
		}
		m.Reset()
		const passes = 30
		start := time.Now()
		for p := 0; p < passes; p++ {
			for _, u := range units {
				for _, f := range u.forests {
					e.ReleaseLabeling(e.LabelStates(f))
				}
			}
		}
		elapsed := time.Since(start)
		nodes := totalNodes(units)
		name := "dense+hash"
		if force {
			name = "all-hash"
		}
		t.AddRow(name, f1(m.PerNode()),
			f1(float64(elapsed.Nanoseconds())/float64(passes*nodes)), itoa(e.NumStates()))
	}
	t.Note("work units count both layouts as one probe per node; the ns/node column shows the real constant-factor gap")
	return t, nil
}
