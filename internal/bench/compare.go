package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Comparing two BENCH_PR<N>.json trajectory points: the CI regression
// gate. Warm-path numbers are the contract the perf PRs established —
// warm label/select ns/node and allocations per corpus pass — so a new
// trajectory point that regresses either beyond tolerance fails the
// build. Allocation counts are deterministic; ns/node is wall-clock, so
// the committed files must come from comparable runs (the same dev
// container for this repo's trajectory).

// LoadPerfReport reads a BENCH_PR<N>.json file written by
// PerfReport.WriteJSON.
func LoadPerfReport(path string) (*PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r PerfReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Rows) == 0 {
		return nil, fmt.Errorf("%s: no rows", path)
	}
	return &r, nil
}

// ComparePerf checks cur against base and returns one message per
// regression: a warm metric that grew by more than tolPct percent (or,
// for zero-allocation baselines, at all — 10% of zero is zero, and the
// zero-alloc warm path is a hard contract). Grammars present in only one
// report are reported too, so a shrunk corpus cannot hide a regression.
//
// allocsOnly restricts the comparison to the allocation metrics, which
// are deterministic — the mode CI uses to gate a freshly measured report
// against the committed baseline on shared runners whose wall-clock
// numbers are not comparable.
func ComparePerf(base, cur *PerfReport, tolPct float64, allocsOnly bool) []string {
	var regressions []string
	baseRows := map[string]PerfRow{}
	for _, row := range base.Rows {
		baseRows[row.Grammar] = row
	}
	seen := map[string]bool{}
	for _, row := range cur.Rows {
		seen[row.Grammar] = true
		b, ok := baseRows[row.Grammar]
		if !ok {
			continue // new grammar: no baseline to regress against
		}
		check := func(metric string, baseV, curV float64) {
			if exceeded(baseV, curV, tolPct) {
				regressions = append(regressions,
					fmt.Sprintf("%s: %s regressed %.2f -> %.2f (tolerance %.0f%%)",
						row.Grammar, metric, baseV, curV, tolPct))
			}
		}
		if !allocsOnly {
			check("warm-label-ns/node", b.WarmLabelNsPerNode, row.WarmLabelNsPerNode)
			check("warm-select-ns/node", b.WarmSelectNsPerNode, row.WarmSelectNsPerNode)
		}
		check("warm-label-allocs/pass", b.WarmLabelAllocsPerPass, row.WarmLabelAllocsPerPass)
		check("warm-select-allocs/pass", b.WarmSelectAllocsPerPass, row.WarmSelectAllocsPerPass)
		// Offline columns only exist from PR 5 onward; a baseline without
		// them (OfflineStates == 0) has nothing to regress against.
		if b.OfflineStates > 0 {
			if !allocsOnly {
				check("offline-select-ns/node", b.OfflineWarmSelectNsPerNode, row.OfflineWarmSelectNsPerNode)
			}
			check("offline-select-allocs/pass", b.OfflineWarmSelectAllocsPerPass, row.OfflineWarmSelectAllocsPerPass)
		}
		// Full-Compile columns only exist from PR 6 onward
		// (CorpusForests > 0 marks them present). The extra-allocs figure
		// is a zero baseline on purpose: the warm Compile contract is one
		// *Output per forest and nothing else, so any surplus fails
		// regardless of tolerance.
		if b.CorpusForests > 0 {
			if !allocsOnly {
				check("warm-compile-ns/node", b.WarmCompileNsPerNode, row.WarmCompileNsPerNode)
			}
			check("warm-compile-extra-allocs/pass", b.WarmCompileExtraAllocsPerPass, row.WarmCompileExtraAllocsPerPass)
		}
		// Hybrid columns only exist from PR 7 onward (HybridStates > 0
		// marks them present in the baseline).
		if b.HybridStates > 0 {
			if !allocsOnly {
				check("hybrid-select-ns/node", b.HybridWarmSelectNsPerNode, row.HybridWarmSelectNsPerNode)
				check("hybrid-fixed-select-ns/node", b.HybridFixedWarmSelectNsPerNode, row.HybridFixedWarmSelectNsPerNode)
			}
			check("hybrid-select-allocs/pass", b.HybridWarmSelectAllocsPerPass, row.HybridWarmSelectAllocsPerPass)
			check("hybrid-fixed-select-allocs/pass", b.HybridFixedWarmSelectAllocsPerPass, row.HybridFixedWarmSelectAllocsPerPass)
		}
		// Telemetry columns only exist from PR 10 onward
		// (TelemetryWarmCompileNsPerNode > 0 marks them present). The
		// extra-allocs figure is a zero baseline like the compile one: the
		// telemetry plane must be free on the warm path.
		if b.TelemetryWarmCompileNsPerNode > 0 {
			if !allocsOnly {
				check("telemetry-label-ns/node", b.TelemetryWarmLabelNsPerNode, row.TelemetryWarmLabelNsPerNode)
				check("telemetry-compile-ns/node", b.TelemetryWarmCompileNsPerNode, row.TelemetryWarmCompileNsPerNode)
			}
			check("telemetry-extra-allocs/pass", b.TelemetryExtraAllocsPerPass, row.TelemetryExtraAllocsPerPass)
		}
		// Within-report telemetry-overhead contract: the label stage's
		// instrumentation (one boundary stamp per forest) may cost at most
		// 2% over the bare warm label pass, plus the half-ns/node noise
		// floor — a single TSC read across a ~60-node forest is ~0.3
		// ns/node, the quantum of the measurement itself, and a ratio gate
		// below the quantum would gate clock hardware, not code (the same
		// reasoning exceeded() applies to zero-allocation baselines). Both
		// figures come from paired windows in the same run, so the ratio
		// is meaningful where cross-run wall-clock is not; allocsOnly
		// still skips it because CI's shared runners make even same-run
		// ratios jitter — there the telemetry-extra-allocs zero contract
		// is the deterministic gate.
		if !allocsOnly && row.TelemetryWarmLabelNsPerNode > 0 &&
			row.TelemetryWarmLabelNsPerNode > 1.02*row.WarmLabelNsPerNode+0.5 {
			regressions = append(regressions,
				fmt.Sprintf("%s: telemetry-on warm label %.2f ns/node exceeds 1.02x telemetry-off (%.2f) + 0.5",
					row.Grammar, row.TelemetryWarmLabelNsPerNode, row.WarmLabelNsPerNode))
		}
		// Within-report contract, not a baseline diff: on the fixed-only
		// grammar the hybrid engine's warm select must stay within 1.2× of
		// the offline engine's — the fallthrough machinery may not tax the
		// fixed path. Both figures come from the same run on the same
		// corpus, so the ratio is meaningful even where cross-run
		// wall-clock is not; allocsOnly mode still skips it because CI's
		// shared runners make even same-run ratios jitter.
		if !allocsOnly && row.HybridStates > 0 && row.OfflineStates > 0 &&
			row.HybridFixedWarmSelectNsPerNode > 1.2*row.OfflineWarmSelectNsPerNode {
			regressions = append(regressions,
				fmt.Sprintf("%s: hybrid fixed-grammar warm select %.2f ns/node exceeds 1.2x offline (%.2f)",
					row.Grammar, row.HybridFixedWarmSelectNsPerNode, row.OfflineWarmSelectNsPerNode))
		}
	}
	for _, row := range base.Rows {
		if !seen[row.Grammar] {
			regressions = append(regressions,
				fmt.Sprintf("%s: present in baseline but missing from the new report", row.Grammar))
		}
	}
	return regressions
}

// exceeded reports whether cur regresses past base by more than tolPct
// percent. A zero baseline (the allocation contract) tolerates only
// measurement noise below half a unit, never a relative margin.
func exceeded(base, cur, tolPct float64) bool {
	if base == 0 {
		return cur > 0.5
	}
	return cur > base*(1+tolPct/100)
}

// MarkdownDiff renders a per-grammar before/after table of the warm
// metrics in GitHub-flavored markdown — what `benchdiff -markdown` prints
// and the CI perf gate posts into the build log, so a reviewer sees the
// trajectory delta without opening either JSON file. Missing columns
// (a baseline that predates a metric) render as "—"; deltas are
// percentages, negative = faster.
func MarkdownDiff(base, cur *PerfReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Perf trajectory: %s (base) → %s (current)\n\n",
		goLabel(base), goLabel(cur))
	b.WriteString("| grammar | warm label ns/node | warm select ns/node | warm compile ns/node | telemetry compile ns/node | hybrid select ns/node | select allocs/pass | compile extra allocs | table bytes |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	baseRows := map[string]PerfRow{}
	for _, row := range base.Rows {
		baseRows[row.Grammar] = row
	}
	for _, row := range cur.Rows {
		br, ok := baseRows[row.Grammar]
		if !ok {
			br = PerfRow{} // new grammar: every before-cell renders "—"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s | %s | %s |\n",
			row.Grammar,
			cell(br.WarmLabelNsPerNode, row.WarmLabelNsPerNode, true),
			cell(br.WarmSelectNsPerNode, row.WarmSelectNsPerNode, true),
			cell(br.WarmCompileNsPerNode, row.WarmCompileNsPerNode, br.CorpusForests > 0),
			cell(br.TelemetryWarmCompileNsPerNode, row.TelemetryWarmCompileNsPerNode, br.TelemetryWarmCompileNsPerNode > 0),
			cell(br.HybridWarmSelectNsPerNode, row.HybridWarmSelectNsPerNode, br.HybridStates > 0),
			cell(br.WarmSelectAllocsPerPass, row.WarmSelectAllocsPerPass, true),
			cell(br.WarmCompileExtraAllocsPerPass, row.WarmCompileExtraAllocsPerPass, br.CorpusForests > 0),
			intCell(br.TableBytes, row.TableBytes))
	}
	b.WriteString("\nNegative delta = improvement. ns/node columns are wall-clock (compare same-machine runs only); allocation and byte columns are deterministic.\n")
	return b.String()
}

// cell renders one "before → after (delta%)" markdown cell. haveBase
// false (the baseline predates the column) renders the before side and
// delta as "—".
func cell(baseV, curV float64, haveBase bool) string {
	if !haveBase {
		return fmt.Sprintf("— → %s", f1(curV))
	}
	if baseV == curV {
		return fmt.Sprintf("%s (=)", f1(curV))
	}
	if baseV == 0 {
		return fmt.Sprintf("0 → %s", f1(curV))
	}
	return fmt.Sprintf("%s → %s (%+.1f%%)", f1(baseV), f1(curV), (curV-baseV)/baseV*100)
}

// intCell is cell for deterministic integer columns (byte counts).
func intCell(baseV, curV int) string {
	if baseV == curV {
		return fmt.Sprintf("%d (=)", curV)
	}
	if baseV == 0 {
		return fmt.Sprintf("0 → %d", curV)
	}
	return fmt.Sprintf("%d → %d (%+.1f%%)", baseV, curV, float64(curV-baseV)/float64(baseV)*100)
}

// goLabel summarizes one report for the diff header.
func goLabel(r *PerfReport) string {
	return fmt.Sprintf("%s, %d passes", r.GoVersion, r.Passes)
}
