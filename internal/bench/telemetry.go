package bench

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// SVTraceDump, when set before an SV replay (cmd/iselbench -trace-out),
// names a file the serving tier's slowlog is dumped to as JSON after the
// replay: the slowest requests with their per-stage spans — and, for the
// -replicas fleet, the router's hop chains showing which owners each
// failover tried. The in-process replay dumps the last configuration's
// slowlog (the highest client count).
var SVTraceDump string

// slowlogDump is the -trace-out file schema.
type slowlogDump struct {
	Scope   string            `json:"scope"` // "server clients=8" or "router"
	Entries []telemetry.Entry `json:"entries"`
}

func dumpSlowlog(path, scope string, entries []telemetry.Entry) error {
	b, err := json.MarshalIndent(slowlogDump{Scope: scope, Entries: entries}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// CheckFleetTelemetry asserts the telemetry-plane acceptance on a
// quiescent fleet:
//
//   - the router's GET /metrics parses as a well-formed Prometheus text
//     exposition (via the in-repo checker — the same gate CI's curl
//     smoke uses);
//   - the aggregated /stats carries per-stage latency histograms with a
//     nonzero label-stage p99 (the fleet actually recorded its traffic);
//   - with expectFailover, the router's slowlog retains at least one
//     entry whose hop chain names two or more attempted owners — the
//     failover made visible as router spans.
//
// It returns the scrape's sample count and the failover entry (nil when
// not requested).
func CheckFleetTelemetry(routerURL string, fs *cluster.FleetStats, expectFailover bool) (int, *telemetry.Entry, error) {
	resp, err := http.Get(routerURL + "/metrics")
	if err != nil {
		return 0, nil, err
	}
	samples, perr := telemetry.ParseProm(resp.Body)
	resp.Body.Close()
	if perr != nil {
		return 0, nil, fmt.Errorf("router /metrics is not well-formed prometheus text: %w", perr)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, nil, fmt.Errorf("router /metrics answered %d", resp.StatusCode)
	}

	var labelP99 int64
	for _, ss := range fs.Latency {
		if s := ss.Stages[telemetry.StageLabel].Summary(); s.Count > 0 && s.P99Ns > labelP99 {
			labelP99 = s.P99Ns
		}
	}
	if labelP99 == 0 {
		return samples, nil, fmt.Errorf("aggregated fleet /stats has no label-stage latency (p99=0): the replicas' histograms did not merge")
	}

	if !expectFailover {
		return samples, nil, nil
	}
	sresp, err := http.Get(routerURL + "/debug/slowlog")
	if err != nil {
		return samples, nil, err
	}
	defer sresp.Body.Close()
	var sl server.SlowlogResponse
	if err := json.NewDecoder(sresp.Body).Decode(&sl); err != nil {
		return samples, nil, fmt.Errorf("decoding router slowlog: %w", err)
	}
	for i := range sl.Entries {
		e := &sl.Entries[i]
		if len(e.Hops) < 2 {
			continue
		}
		for _, h := range e.Hops[1:] {
			if !h.Failover {
				return samples, nil, fmt.Errorf("slowlog entry id=%d: hop %s after the first is not marked failover", e.ID, h.Peer)
			}
			if h.Peer == "" {
				return samples, nil, fmt.Errorf("slowlog entry id=%d: failover hop does not name its owner", e.ID)
			}
		}
		return samples, e, nil
	}
	return samples, nil, fmt.Errorf("killed a replica mid-traffic but no router slowlog entry has a >= 2-hop chain (%d entries retained)", len(sl.Entries))
}
