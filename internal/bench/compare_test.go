package bench

import "testing"

func perfReport(rows ...PerfRow) *PerfReport {
	return &PerfReport{Schema: 1, Rows: rows}
}

func TestComparePerf(t *testing.T) {
	base := perfReport(
		PerfRow{Grammar: "x86", WarmLabelNsPerNode: 40, WarmSelectNsPerNode: 60,
			WarmLabelAllocsPerPass: 0, WarmSelectAllocsPerPass: 0},
		PerfRow{Grammar: "jit64", WarmLabelNsPerNode: 30, WarmSelectNsPerNode: 50},
	)

	// Identical and mildly improved reports pass.
	if regs := ComparePerf(base, base, 10, false); len(regs) != 0 {
		t.Fatalf("self-compare regressed: %v", regs)
	}
	better := perfReport(
		PerfRow{Grammar: "x86", WarmLabelNsPerNode: 36, WarmSelectNsPerNode: 58},
		PerfRow{Grammar: "jit64", WarmLabelNsPerNode: 32, WarmSelectNsPerNode: 54},
	)
	if regs := ComparePerf(base, better, 10, false); len(regs) != 0 {
		t.Fatalf("within-tolerance compare regressed: %v", regs)
	}

	// A >10% ns regression fails.
	slower := perfReport(
		PerfRow{Grammar: "x86", WarmLabelNsPerNode: 45, WarmSelectNsPerNode: 60},
		PerfRow{Grammar: "jit64", WarmLabelNsPerNode: 30, WarmSelectNsPerNode: 50},
	)
	if regs := ComparePerf(base, slower, 10, false); len(regs) != 1 {
		t.Fatalf("12%% label regression not caught: %v", regs)
	}

	// The zero-alloc contract is absolute: one alloc per pass fails even
	// though 10% of zero is zero.
	leaky := perfReport(
		PerfRow{Grammar: "x86", WarmLabelNsPerNode: 40, WarmSelectNsPerNode: 60,
			WarmSelectAllocsPerPass: 1},
		PerfRow{Grammar: "jit64", WarmLabelNsPerNode: 30, WarmSelectNsPerNode: 50},
	)
	if regs := ComparePerf(base, leaky, 10, false); len(regs) != 1 {
		t.Fatalf("alloc regression not caught: %v", regs)
	}

	// A grammar vanishing from the report is itself a regression.
	shrunk := perfReport(
		PerfRow{Grammar: "x86", WarmLabelNsPerNode: 40, WarmSelectNsPerNode: 60},
	)
	if regs := ComparePerf(base, shrunk, 10, false); len(regs) != 1 {
		t.Fatalf("missing grammar not caught: %v", regs)
	}

	// allocs-only mode ignores wall-clock regressions but still enforces
	// the allocation contract.
	if regs := ComparePerf(base, slower, 10, true); len(regs) != 0 {
		t.Fatalf("allocs-only flagged a ns regression: %v", regs)
	}
	if regs := ComparePerf(base, leaky, 10, true); len(regs) != 1 {
		t.Fatalf("allocs-only missed an alloc regression: %v", regs)
	}
}
