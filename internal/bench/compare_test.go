package bench

import (
	"strings"
	"testing"
)

func perfReport(rows ...PerfRow) *PerfReport {
	return &PerfReport{Schema: 1, Rows: rows}
}

func TestComparePerf(t *testing.T) {
	base := perfReport(
		PerfRow{Grammar: "x86", WarmLabelNsPerNode: 40, WarmSelectNsPerNode: 60,
			WarmLabelAllocsPerPass: 0, WarmSelectAllocsPerPass: 0},
		PerfRow{Grammar: "jit64", WarmLabelNsPerNode: 30, WarmSelectNsPerNode: 50},
	)

	// Identical and mildly improved reports pass.
	if regs := ComparePerf(base, base, 10, false); len(regs) != 0 {
		t.Fatalf("self-compare regressed: %v", regs)
	}
	better := perfReport(
		PerfRow{Grammar: "x86", WarmLabelNsPerNode: 36, WarmSelectNsPerNode: 58},
		PerfRow{Grammar: "jit64", WarmLabelNsPerNode: 32, WarmSelectNsPerNode: 54},
	)
	if regs := ComparePerf(base, better, 10, false); len(regs) != 0 {
		t.Fatalf("within-tolerance compare regressed: %v", regs)
	}

	// A >10% ns regression fails.
	slower := perfReport(
		PerfRow{Grammar: "x86", WarmLabelNsPerNode: 45, WarmSelectNsPerNode: 60},
		PerfRow{Grammar: "jit64", WarmLabelNsPerNode: 30, WarmSelectNsPerNode: 50},
	)
	if regs := ComparePerf(base, slower, 10, false); len(regs) != 1 {
		t.Fatalf("12%% label regression not caught: %v", regs)
	}

	// The zero-alloc contract is absolute: one alloc per pass fails even
	// though 10% of zero is zero.
	leaky := perfReport(
		PerfRow{Grammar: "x86", WarmLabelNsPerNode: 40, WarmSelectNsPerNode: 60,
			WarmSelectAllocsPerPass: 1},
		PerfRow{Grammar: "jit64", WarmLabelNsPerNode: 30, WarmSelectNsPerNode: 50},
	)
	if regs := ComparePerf(base, leaky, 10, false); len(regs) != 1 {
		t.Fatalf("alloc regression not caught: %v", regs)
	}

	// A grammar vanishing from the report is itself a regression.
	shrunk := perfReport(
		PerfRow{Grammar: "x86", WarmLabelNsPerNode: 40, WarmSelectNsPerNode: 60},
	)
	if regs := ComparePerf(base, shrunk, 10, false); len(regs) != 1 {
		t.Fatalf("missing grammar not caught: %v", regs)
	}

	// allocs-only mode ignores wall-clock regressions but still enforces
	// the allocation contract.
	if regs := ComparePerf(base, slower, 10, true); len(regs) != 0 {
		t.Fatalf("allocs-only flagged a ns regression: %v", regs)
	}
	if regs := ComparePerf(base, leaky, 10, true); len(regs) != 1 {
		t.Fatalf("allocs-only missed an alloc regression: %v", regs)
	}
}

func TestComparePerfCompileColumns(t *testing.T) {
	// A baseline without the full-Compile columns (CorpusForests == 0)
	// must not gate them — older trajectory points predate the metric.
	old := perfReport(PerfRow{Grammar: "x86", WarmLabelNsPerNode: 40, WarmSelectNsPerNode: 60})
	cur := perfReport(PerfRow{Grammar: "x86", WarmLabelNsPerNode: 40, WarmSelectNsPerNode: 60,
		CorpusForests: 12, WarmCompileNsPerNode: 100, WarmCompileAllocsPerPass: 12})
	if regs := ComparePerf(old, cur, 10, false); len(regs) != 0 {
		t.Fatalf("pre-compile-column baseline gated the new columns: %v", regs)
	}

	// With the columns present, ns regresses at tolerance and the
	// extra-allocs surplus is a zero baseline: any growth fails.
	base := perfReport(PerfRow{Grammar: "x86", WarmLabelNsPerNode: 40, WarmSelectNsPerNode: 60,
		CorpusForests: 12, WarmCompileNsPerNode: 100})
	slower := perfReport(PerfRow{Grammar: "x86", WarmLabelNsPerNode: 40, WarmSelectNsPerNode: 60,
		CorpusForests: 12, WarmCompileNsPerNode: 115})
	if regs := ComparePerf(base, slower, 10, false); len(regs) != 1 {
		t.Fatalf("15%% compile-ns regression not caught: %v", regs)
	}
	if regs := ComparePerf(base, slower, 10, true); len(regs) != 0 {
		t.Fatalf("allocs-only flagged a compile-ns regression: %v", regs)
	}
	leaky := perfReport(PerfRow{Grammar: "x86", WarmLabelNsPerNode: 40, WarmSelectNsPerNode: 60,
		CorpusForests: 12, WarmCompileNsPerNode: 100, WarmCompileExtraAllocsPerPass: 1})
	if regs := ComparePerf(base, leaky, 10, true); len(regs) != 1 {
		t.Fatalf("compile extra-alloc surplus not caught: %v", regs)
	}
}

func TestMarkdownDiff(t *testing.T) {
	base := perfReport(
		PerfRow{Grammar: "x86", WarmLabelNsPerNode: 40, WarmSelectNsPerNode: 60, TableBytes: 1000},
		PerfRow{Grammar: "jit64", WarmLabelNsPerNode: 30, WarmSelectNsPerNode: 50,
			CorpusForests: 8, WarmCompileNsPerNode: 90, TableBytes: 2000},
	)
	cur := perfReport(
		PerfRow{Grammar: "x86", WarmLabelNsPerNode: 36, WarmSelectNsPerNode: 58,
			CorpusForests: 8, WarmCompileNsPerNode: 80, TableBytes: 1000},
		PerfRow{Grammar: "jit64", WarmLabelNsPerNode: 33, WarmSelectNsPerNode: 50,
			CorpusForests: 8, WarmCompileNsPerNode: 85, TableBytes: 2000},
	)
	md := MarkdownDiff(base, cur)
	for _, want := range []string{
		"| grammar |",          // header row
		"| x86 |", "| jit64 |", // one row per grammar
		"40.0 → 36.0 (-10.0%)",             // improvement, negative delta
		"30.0 → 33.0 (+10.0%)",             // regression, positive delta
		"— → 80.0",                         // column absent in the baseline
		"90.0 → 85.0 (-5.6%)",              // present in both
		"50.0 (=)", "1000 (=)", "2000 (=)", // unchanged values
	} {
		if !strings.Contains(md, want) {
			t.Errorf("MarkdownDiff output missing %q:\n%s", want, md)
		}
	}
	// Every table line must have the same column count — a malformed GFM
	// table renders as prose.
	for _, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(line, "|") && strings.Count(line, "|") != 10 {
			t.Errorf("table line has %d pipes, want 10: %q", strings.Count(line, "|"), line)
		}
	}
}

func TestComparePerfHybridColumns(t *testing.T) {
	// A baseline without the hybrid columns (HybridStates == 0) must not
	// gate them — trajectory points before PR 7 predate the engine.
	old := perfReport(PerfRow{Grammar: "x86", WarmLabelNsPerNode: 40, WarmSelectNsPerNode: 60})
	cur := perfReport(PerfRow{Grammar: "x86", WarmLabelNsPerNode: 40, WarmSelectNsPerNode: 60,
		HybridStates: 70, HybridWarmSelectNsPerNode: 55, HybridFixedWarmSelectNsPerNode: 25})
	if regs := ComparePerf(old, cur, 10, false); len(regs) != 0 {
		t.Fatalf("pre-hybrid baseline gated the new columns: %v", regs)
	}

	base := perfReport(PerfRow{Grammar: "x86", WarmLabelNsPerNode: 40, WarmSelectNsPerNode: 60,
		HybridStates: 70, HybridWarmSelectNsPerNode: 55, HybridFixedWarmSelectNsPerNode: 25})
	slower := perfReport(PerfRow{Grammar: "x86", WarmLabelNsPerNode: 40, WarmSelectNsPerNode: 60,
		HybridStates: 70, HybridWarmSelectNsPerNode: 63, HybridFixedWarmSelectNsPerNode: 25})
	if regs := ComparePerf(base, slower, 10, false); len(regs) != 1 {
		t.Fatalf("14%% hybrid-select regression not caught: %v", regs)
	}
	if regs := ComparePerf(base, slower, 10, true); len(regs) != 0 {
		t.Fatalf("allocs-only flagged a hybrid ns regression: %v", regs)
	}
	leaky := perfReport(PerfRow{Grammar: "x86", WarmLabelNsPerNode: 40, WarmSelectNsPerNode: 60,
		HybridStates: 70, HybridWarmSelectNsPerNode: 55, HybridFixedWarmSelectNsPerNode: 25,
		HybridWarmSelectAllocsPerPass: 1})
	if regs := ComparePerf(base, leaky, 10, true); len(regs) != 1 {
		t.Fatalf("hybrid alloc regression not caught: %v", regs)
	}
}

func TestComparePerfHybridFixedGate(t *testing.T) {
	// The 1.2×-offline contract is a within-report rule on the CURRENT
	// report: a hybrid fixed-grammar select beyond 1.2× the same run's
	// offline select fails regardless of the baseline.
	ok := perfReport(PerfRow{Grammar: "x86", WarmLabelNsPerNode: 40, WarmSelectNsPerNode: 60,
		OfflineStates: 60, OfflineWarmSelectNsPerNode: 20,
		HybridStates: 70, HybridWarmSelectNsPerNode: 55, HybridFixedWarmSelectNsPerNode: 23})
	if regs := ComparePerf(ok, ok, 10, false); len(regs) != 0 {
		t.Fatalf("1.15x hybrid fixed select flagged: %v", regs)
	}
	over := perfReport(PerfRow{Grammar: "x86", WarmLabelNsPerNode: 40, WarmSelectNsPerNode: 60,
		OfflineStates: 60, OfflineWarmSelectNsPerNode: 20,
		HybridStates: 70, HybridWarmSelectNsPerNode: 55, HybridFixedWarmSelectNsPerNode: 25})
	if regs := ComparePerf(ok, over, 50, false); len(regs) != 1 {
		t.Fatalf("1.25x hybrid fixed select not caught: %v", regs)
	}
	// allocs-only mode (shared CI runners) skips the wall-clock ratio too.
	if regs := ComparePerf(ok, over, 50, true); len(regs) != 0 {
		t.Fatalf("allocs-only flagged the 1.2x ratio: %v", regs)
	}
}
