// The PF experiment: the machine-readable performance trajectory. Every
// PR that touches a hot path regenerates BENCH_PR<N>.json with
// `iselbench -experiment PF -perf-out BENCH_PR<N>.json`, so successors
// can diff warm/cold ns/node, allocations and table bytes against history
// instead of guessing. Numbers are wall-clock and machine-dependent;
// allocation counts and table bytes are deterministic.
package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/reduce"
)

// allocsPerRun reports the average number of heap allocations per call of
// fn — the testing.AllocsPerRun measurement, reimplemented on
// runtime.ReadMemStats so a non-test package does not link the testing
// framework into the iselbench binary. Pinning to one OS thread's P keeps
// other goroutines' allocations out of the count.
func allocsPerRun(runs int, fn func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn() // warm up: pools filled, lazy growth done
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// timedRepeats is how many independent timed windows each warm metric
// takes; the minimum wins. External noise (a scheduler preemption, an
// antagonist on a shared box) only ever adds time, so min-of-k is the
// robust estimator for a trajectory whose committed points are compared
// across runs — a single averaged window made BENCH_PR*.json hostage to
// whatever else the machine was doing during its few milliseconds.
const timedRepeats = 3

// minNsPerNode times passes× fn over repeated windows and returns the
// best window's ns/node.
func minNsPerNode(passes, nodes int, fn func()) float64 {
	best := 0.0
	for rep := 0; rep < timedRepeats; rep++ {
		start := time.Now()
		for p := 0; p < passes; p++ {
			fn()
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(passes*nodes)
		if rep == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// PerfRow is one grammar's warm-path measurements over the whole MinC
// corpus.
type PerfRow struct {
	Grammar     string `json:"grammar"`
	CorpusNodes int    `json:"corpus_nodes"`
	// Labeling only (engine fast path), pooled labelings released.
	ColdLabelNsPerNode float64 `json:"cold_label_ns_per_node"`
	WarmLabelNsPerNode float64 `json:"warm_label_ns_per_node"`
	// Label + reduce (no emission): the paper's per-node selection cost.
	WarmSelectNsPerNode float64 `json:"warm_select_ns_per_node"`
	// Allocations per corpus pass on the warm path.
	WarmLabelAllocsPerPass  float64 `json:"warm_label_allocs_per_pass"`
	WarmSelectAllocsPerPass float64 `json:"warm_select_allocs_per_pass"`
	WarmAllocsPerNode       float64 `json:"warm_select_allocs_per_node"`
	States                  int     `json:"states"`
	Transitions             int     `json:"transitions"`
	TableBytes              int     `json:"table_bytes"`

	// The offline comparison point (the paper's other side of the
	// tradeoff): the same corpus selected with tables compiled ahead of
	// time by internal/gen on the stripped grammar, loaded through the
	// `.isel` wire format. GenMs is the one-time closure+encode+decode
	// cost the on-demand engine never pays; OfflineWarmSelectNsPerNode
	// must stay at or below the on-demand figure (pure lookup, no dynamic
	// evaluation) and its allocs at zero.
	OfflineGenMs                   float64 `json:"offline_gen_ms"`
	OfflineStates                  int     `json:"offline_states"`
	OfflineTableBytes              int     `json:"offline_table_bytes"`
	OfflineBlobBytes               int     `json:"offline_blob_bytes"`
	OfflineWarmSelectNsPerNode     float64 `json:"offline_warm_select_ns_per_node"`
	OfflineWarmSelectAllocsPerPass float64 `json:"offline_warm_select_allocs_per_pass"`

	// Full warm Compile (label + reduce + emit) through the public
	// Selector — the end-to-end path a JIT client pays, added to the
	// trajectory when emission went allocation-free. The contract is
	// exactly one *Output allocation per forest and zero per node:
	// WarmCompileExtraAllocsPerPass is the surplus beyond one-per-forest
	// and must stay 0. CorpusForests > 0 marks the columns present
	// (older baselines lack them).
	CorpusForests                 int     `json:"corpus_forests,omitempty"`
	WarmCompileNsPerNode          float64 `json:"warm_compile_ns_per_node,omitempty"`
	WarmCompileAllocsPerPass      float64 `json:"warm_compile_allocs_per_pass,omitempty"`
	WarmCompileExtraAllocsPerPass float64 `json:"warm_compile_extra_allocs_per_pass"`

	// OfflineTableBytes above is the loaded serving footprint — the blob
	// expands into direct arrays at load time, so it already includes
	// them. OfflineCompactTableBytes is the pre-expansion footprint
	// (gen.Stats.TableBytes): the two together make the space-for-time
	// trade of expansion visible in the trajectory. 0 = column predates
	// the stat.
	OfflineCompactTableBytes int `json:"offline_compact_table_bytes,omitempty"`
}

// PerfReport is the BENCH_PR<N>.json payload.
type PerfReport struct {
	Schema     int       `json:"schema"`
	GoVersion  string    `json:"go_version"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Passes     int       `json:"passes"`
	Rows       []PerfRow `json:"rows"`
	Notes      []string  `json:"notes"`
}

// WriteJSON writes the report to path, pretty-printed for diffing.
func (r *PerfReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RunPerf measures the on-demand engine's warm path per corpus grammar:
// cold and warm labeling ns/node, warm label+reduce ns/node, allocation
// counts per corpus pass, and the automaton's size after the corpus.
func RunPerf(passes int) (*PerfReport, *Table, error) {
	if passes <= 0 {
		passes = 30
	}
	t := &Table{
		ID:    "PF",
		Title: fmt.Sprintf("warm-path performance trajectory (%d timed corpus passes per grammar; off-* = ahead-of-time tables on the stripped grammar)", passes),
		Header: []string{"grammar", "nodes", "cold-label-ns", "warm-label-ns", "warm-select-ns",
			"allocs/pass(label)", "allocs/pass(select)", "allocs/node", "compile-ns", "compile-xallocs",
			"states", "trans", "table-bytes",
			"off-select-ns", "off-allocs", "off-states", "off-bytes", "off-gen-ms"},
	}
	rep := &PerfReport{
		Schema:     1,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Passes:     passes,
	}
	for _, name := range CorpusGrammars {
		d := md.MustLoad(name)
		var fs []*ir.Forest
		nodes := 0
		for _, u := range loadCorpus(d.Grammar) {
			fs = append(fs, u.forests...)
			nodes += u.nodes
		}
		e, err := core.New(d.Grammar, d.Env, core.Config{})
		if err != nil {
			return nil, nil, err
		}
		rd, err := reduce.New(d.Grammar, d.Env, nil)
		if err != nil {
			return nil, nil, err
		}
		labelPass := func() {
			for _, f := range fs {
				e.ReleaseLabeling(e.LabelStates(f))
			}
		}
		selectPass := func() {
			for _, f := range fs {
				lab := e.LabelStates(f)
				if _, err := rd.Cover(f, lab, nil); err != nil {
					panic(err) // corpus is known-derivable; see the tests
				}
				e.ReleaseLabeling(lab)
			}
		}

		start := time.Now()
		labelPass() // cold: constructs every state and transition
		coldNs := float64(time.Since(start).Nanoseconds()) / float64(nodes)

		warmNs := minNsPerNode(passes, nodes, labelPass)

		selectPass() // warm the reducer pool too
		selNs := minNsPerNode(passes, nodes, selectPass)

		labelAllocs := allocsPerRun(10, labelPass)
		selAllocs := allocsPerRun(10, selectPass)

		row := PerfRow{
			Grammar: name, CorpusNodes: nodes,
			ColdLabelNsPerNode: coldNs, WarmLabelNsPerNode: warmNs,
			WarmSelectNsPerNode:    selNs,
			WarmLabelAllocsPerPass: labelAllocs, WarmSelectAllocsPerPass: selAllocs,
			WarmAllocsPerNode: selAllocs / float64(nodes),
			States:            e.NumStates(), Transitions: e.NumTransitions(),
			TableBytes: e.MemoryBytes(),
		}
		if err := measureCompile(name, fs, nodes, passes, &row); err != nil {
			return nil, nil, err
		}
		if err := measureOffline(d.Grammar, passes, &row); err != nil {
			return nil, nil, err
		}
		rep.Rows = append(rep.Rows, row)
		t.AddRow(name, itoa(nodes), f1(coldNs), f1(warmNs), f1(selNs),
			f1(labelAllocs), f1(selAllocs), f2(row.WarmAllocsPerNode),
			f1(row.WarmCompileNsPerNode), f1(row.WarmCompileExtraAllocsPerPass),
			itoa(row.States), itoa(row.Transitions), itoa(row.TableBytes),
			f1(row.OfflineWarmSelectNsPerNode), f1(row.OfflineWarmSelectAllocsPerPass),
			itoa(row.OfflineStates), itoa(row.OfflineTableBytes), f2(row.OfflineGenMs))
	}
	rep.Notes = append(rep.Notes,
		"warm label and select must stay at ~0 allocs/pass: labelings, reducer scratch and dyn buffers are pooled",
		"ns figures are wall-clock and machine-dependent; compare trends, not absolutes, across BENCH_PR*.json",
		"warm ns figures are min-of-3 timed windows: external noise only adds time, so the minimum is the comparable statistic on a shared machine",
		"offline columns run the stripped grammar through the .isel encode/decode round trip: the one-time gen cost buys lookup-only selection with zero construction under traffic",
		"compile-ns/compile-xallocs cover the full warm Compile (label+reduce+emit) through the public Selector: the contract is one *Output per forest and zero allocations per node, so compile-xallocs must stay 0",
		"off-bytes is the loaded serving footprint (tables expand into direct arrays at load); offline_compact_table_bytes in the JSON is the pre-expansion figure",
	)
	t.Note("cold includes every state construction of the session; warm is the steady state a JIT/server reaches")
	t.Note("allocs/pass counted over the whole corpus (runtime.MemStats.Mallocs delta); 0 is the contract for label and select — offline included")
	t.Note("off-gen-ms is the ahead-of-time closure+encode+decode cost; the on-demand engine never pays it, the offline engine pays it exactly once")
	return rep, t, nil
}

// measureCompile fills row's full-warm-Compile columns through the public
// Selector — label + reduce + emit end to end. The warm path allocates
// exactly one *Output per forest: operand text lives in per-emitter
// arenas, registers and bookkeeping are reused across Reset, and repeated
// assembly comes interned. The surplus beyond one-per-forest is the gated
// contract and must stay 0.
func measureCompile(name string, fs []*ir.Forest, nodes, passes int, row *PerfRow) error {
	m, err := repro.LoadMachine(name)
	if err != nil {
		return err
	}
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		return err
	}
	ctx := context.Background()
	compilePass := func() {
		for _, f := range fs {
			if _, err := sel.Compile(ctx, f); err != nil {
				panic(err) // corpus is known-derivable; see the tests
			}
		}
	}
	compilePass() // warm: automaton, emitter pool, interner
	row.CorpusForests = len(fs)
	row.WarmCompileNsPerNode = minNsPerNode(passes, nodes, compilePass)
	row.WarmCompileAllocsPerPass = allocsPerRun(10, compilePass)
	row.WarmCompileExtraAllocsPerPass = row.WarmCompileAllocsPerPass - float64(len(fs))
	if row.WarmCompileExtraAllocsPerPass < 0 {
		row.WarmCompileExtraAllocsPerPass = 0
	}
	return nil
}

// measureOffline fills row's offline comparison columns: the same corpus
// selected with ahead-of-time tables (internal/gen) on the stripped
// grammar, loaded through the wire format just as a served blob would be.
func measureOffline(g *grammar.Grammar, passes int, row *PerfRow) error {
	fixed, err := g.StripDynamic()
	if err != nil {
		return err
	}
	var fs []*ir.Forest
	nodes := 0
	for _, u := range loadCorpus(fixed) {
		fs = append(fs, u.forests...)
		nodes += u.nodes
	}
	genStart := time.Now()
	res, err := gen.Compile(fixed, gen.Config{})
	if err != nil {
		return err
	}
	a, err := gen.Load(fixed, bytes.NewReader(res.Blob))
	if err != nil {
		return err
	}
	row.OfflineGenMs = float64(time.Since(genStart).Nanoseconds()) / 1e6
	rd, err := reduce.New(fixed, nil, nil)
	if err != nil {
		return err
	}
	selectPass := func() {
		for _, f := range fs {
			lab := a.LabelStates(f)
			if _, err := rd.Cover(f, lab, nil); err != nil {
				panic(err) // corpus is known-derivable; see the tests
			}
			a.ReleaseLabeling(lab)
		}
	}
	selectPass() // fill the labeling and reducer pools; tables are already complete
	row.OfflineWarmSelectNsPerNode = minNsPerNode(passes, nodes, selectPass)
	row.OfflineWarmSelectAllocsPerPass = allocsPerRun(10, selectPass)
	row.OfflineStates = a.NumStates()
	row.OfflineTableBytes = a.MemoryBytes()
	row.OfflineCompactTableBytes = res.Stats.TableBytes
	row.OfflineBlobBytes = len(res.Blob)
	return nil
}
