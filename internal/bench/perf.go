// The PF experiment: the machine-readable performance trajectory. Every
// PR that touches a hot path regenerates BENCH_PR<N>.json with
// `iselbench -experiment PF -perf-out BENCH_PR<N>.json`, so successors
// can diff warm/cold ns/node, allocations and table bytes against history
// instead of guessing. Numbers are wall-clock and machine-dependent;
// allocation counts and table bytes are deterministic.
package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/reduce"
	"repro/internal/telemetry"
)

// allocsPerRun reports the average number of heap allocations per call of
// fn — the testing.AllocsPerRun measurement, reimplemented on
// runtime.ReadMemStats so a non-test package does not link the testing
// framework into the iselbench binary. Pinning to one OS thread's P keeps
// other goroutines' allocations out of the count.
func allocsPerRun(runs int, fn func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn() // warm up: pools filled, lazy growth done
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// timedRepeats is how many independent timed windows each warm metric
// takes; the minimum wins. External noise (a scheduler preemption, an
// antagonist on a shared box) only ever adds time, so min-of-k is the
// robust estimator for a trajectory whose committed points are compared
// across runs — a single averaged window made BENCH_PR*.json hostage to
// whatever else the machine was doing during its few milliseconds.
const timedRepeats = 5

// minNsPerNode times passes× fn over repeated windows and returns the
// best window's ns/node. Each window starts from a quiesced collector:
// warm passes allocate nothing, so a forced collection up front keeps
// background marking (which steals the only P on a single-core runner)
// from landing inside the window — without it, whichever metric is
// measured after a garbage-heavy setup phase absorbs that phase's GC
// debt and reads tens of percent slow.
func minNsPerNode(passes, nodes int, fn func()) float64 {
	best := 0.0
	for rep := 0; rep < timedRepeats; rep++ {
		runtime.GC()
		start := time.Now()
		for p := 0; p < passes; p++ {
			fn()
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(passes*nodes)
		if rep == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// minNsPerNodePaired measures two workloads over alternating windows
// (A,B,A,B,…) and returns each side's best window ns/node. Metrics
// measured minutes apart in a long run can land in different noise epochs
// on a shared single-core host — sustained steal biases whichever phase
// it overlaps — so a ratio between them says more about the host than the
// code; alternating windows expose both sides to the same epochs. Each
// window runs one untimed pass first: the partner's window just evicted
// this engine's tables, and charging the refill to the window would bias
// the ratio against whichever engine has the larger working set — a
// contention that steady-state serving (one engine, one process) never
// sees. Finer-grained interleaving is wrong for the same reason: pairing
// at pass granularity makes every pass start cache-cold.
func minNsPerNodePaired(passes, nodes int, fnA, fnB func()) (bestA, bestB float64) {
	// Shorter windows, many more of them, than the unpaired metrics: the
	// gated ratios decide pass/fail on gaps of a few percent, so both
	// minima must converge to their true floors. A window only reads clean
	// if no steal burst lands inside it, and a ~1ms window fits the quiet
	// gaps between bursts far more often than a ~3ms one; taking the min
	// over 15× as many windows does the rest.
	wpasses := passes / 3
	if wpasses < 1 {
		wpasses = 1
	}
	window := func(fn func()) float64 {
		fn() // restore the working set the partner's window evicted
		runtime.GC()
		start := time.Now()
		for p := 0; p < wpasses; p++ {
			fn()
		}
		return float64(time.Since(start).Nanoseconds()) / float64(wpasses*nodes)
	}
	const pairedRepeats = 15 * timedRepeats
	for rep := 0; rep < pairedRepeats; rep++ {
		if a := window(fnA); rep == 0 || a < bestA {
			bestA = a
		}
		if b := window(fnB); rep == 0 || b < bestB {
			bestB = b
		}
	}
	return bestA, bestB
}

// PerfRow is one grammar's warm-path measurements over the whole MinC
// corpus.
type PerfRow struct {
	Grammar     string `json:"grammar"`
	CorpusNodes int    `json:"corpus_nodes"`
	// Labeling only (engine fast path), pooled labelings released.
	ColdLabelNsPerNode float64 `json:"cold_label_ns_per_node"`
	WarmLabelNsPerNode float64 `json:"warm_label_ns_per_node"`
	// Label + reduce (no emission): the paper's per-node selection cost.
	WarmSelectNsPerNode float64 `json:"warm_select_ns_per_node"`
	// Allocations per corpus pass on the warm path.
	WarmLabelAllocsPerPass  float64 `json:"warm_label_allocs_per_pass"`
	WarmSelectAllocsPerPass float64 `json:"warm_select_allocs_per_pass"`
	WarmAllocsPerNode       float64 `json:"warm_select_allocs_per_node"`
	States                  int     `json:"states"`
	Transitions             int     `json:"transitions"`
	TableBytes              int     `json:"table_bytes"`

	// The offline comparison point (the paper's other side of the
	// tradeoff): the same corpus selected with tables compiled ahead of
	// time by internal/gen on the stripped grammar, loaded through the
	// `.isel` wire format. GenMs is the one-time closure+encode+decode
	// cost the on-demand engine never pays; OfflineWarmSelectNsPerNode
	// must stay at or below the on-demand figure (pure lookup, no dynamic
	// evaluation) and its allocs at zero.
	OfflineGenMs                   float64 `json:"offline_gen_ms"`
	OfflineStates                  int     `json:"offline_states"`
	OfflineTableBytes              int     `json:"offline_table_bytes"`
	OfflineBlobBytes               int     `json:"offline_blob_bytes"`
	OfflineWarmSelectNsPerNode     float64 `json:"offline_warm_select_ns_per_node"`
	OfflineWarmSelectAllocsPerPass float64 `json:"offline_warm_select_allocs_per_pass"`

	// Full warm Compile (label + reduce + emit) through the public
	// Selector — the end-to-end path a JIT client pays, added to the
	// trajectory when emission went allocation-free. The contract is
	// exactly one *Output allocation per forest and zero per node:
	// WarmCompileExtraAllocsPerPass is the surplus beyond one-per-forest
	// and must stay 0. CorpusForests > 0 marks the columns present
	// (older baselines lack them).
	CorpusForests                 int     `json:"corpus_forests,omitempty"`
	WarmCompileNsPerNode          float64 `json:"warm_compile_ns_per_node,omitempty"`
	WarmCompileAllocsPerPass      float64 `json:"warm_compile_allocs_per_pass,omitempty"`
	WarmCompileExtraAllocsPerPass float64 `json:"warm_compile_extra_allocs_per_pass"`

	// The telemetry-overhead guard (the observability PR's "paid for"
	// contract), two columns, both from windows paired against their
	// bare partner so the gated ratios face the same noise epochs:
	//
	// TelemetryWarmLabelNsPerNode is the warm label pass carrying the
	// label stage's serving instrumentation — one stage-boundary stamp
	// per forest into a pooled trace (spans accumulate batch-style),
	// folded into a histogram set once per pass. The within-report gate
	// is ≤ 2% over WarmLabelNsPerNode plus the half-ns/node noise floor
	// (one TSC read per ~60-node forest is ~0.3 ns/node — the
	// measurement quantum, same reasoning as exceeded()'s half-unit rule
	// on zero baselines).
	//
	// TelemetryWarmCompileNsPerNode is the full warm Compile with the
	// serving tier's whole per-request plane attached — live counters, a
	// pooled trace marked at every stage boundary, the finished trace
	// folded per request. TelemetryExtraAllocsPerPass is its surplus
	// beyond one *Output per forest and must stay 0 (traces are pooled,
	// histograms are atomic cells). TelemetryWarmCompileNsPerNode > 0
	// marks the columns present (older baselines lack them).
	TelemetryWarmLabelNsPerNode       float64 `json:"telemetry_warm_label_ns_per_node,omitempty"`
	TelemetryWarmCompileNsPerNode     float64 `json:"telemetry_warm_compile_ns_per_node,omitempty"`
	TelemetryWarmCompileAllocsPerPass float64 `json:"telemetry_warm_compile_allocs_per_pass,omitempty"`
	TelemetryExtraAllocsPerPass       float64 `json:"telemetry_extra_allocs_per_pass"`

	// OfflineTableBytes above is the loaded serving footprint — the blob
	// expands into direct arrays at load time, so it already includes
	// them. OfflineCompactTableBytes is the pre-expansion footprint
	// (gen.Stats.TableBytes): the two together make the space-for-time
	// trade of expansion visible in the trajectory. 0 = column predates
	// the stat.
	OfflineCompactTableBytes int `json:"offline_compact_table_bytes,omitempty"`

	// The hybrid engine (the fifth kind): fixed-subset offline tables
	// seeding an on-demand engine, dynamic operators falling through to
	// the hash path. HybridWarmSelect* run the FULL grammar (dynamic rules
	// active) over the same corpus as the warm on-demand figures above —
	// the claim is strictly-faster-than-warm-on-demand on dynamic
	// grammars. HybridFixedWarmSelect* run the STRIPPED grammar over the
	// offline corpus: the ≤1.2×-offline contract ComparePerf gates within
	// each report. HybridStates > 0 marks the columns present (older
	// baselines lack them).
	HybridGenMs                        float64 `json:"hybrid_gen_ms,omitempty"`
	HybridStates                       int     `json:"hybrid_states,omitempty"`
	HybridTableBytes                   int     `json:"hybrid_table_bytes,omitempty"`
	HybridBlobBytes                    int     `json:"hybrid_blob_bytes,omitempty"`
	HybridWarmSelectNsPerNode          float64 `json:"hybrid_warm_select_ns_per_node,omitempty"`
	HybridWarmSelectAllocsPerPass      float64 `json:"hybrid_warm_select_allocs_per_pass"`
	HybridFixedWarmSelectNsPerNode     float64 `json:"hybrid_fixed_warm_select_ns_per_node,omitempty"`
	HybridFixedWarmSelectAllocsPerPass float64 `json:"hybrid_fixed_warm_select_allocs_per_pass"`
}

// PerfReport is the BENCH_PR<N>.json payload.
type PerfReport struct {
	Schema     int       `json:"schema"`
	GoVersion  string    `json:"go_version"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Passes     int       `json:"passes"`
	Rows       []PerfRow `json:"rows"`
	Notes      []string  `json:"notes"`
}

// WriteJSON writes the report to path, pretty-printed for diffing.
func (r *PerfReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RunPerf measures the on-demand engine's warm path per corpus grammar:
// cold and warm labeling ns/node, warm label+reduce ns/node, allocation
// counts per corpus pass, and the automaton's size after the corpus.
func RunPerf(passes int) (*PerfReport, *Table, error) {
	if passes <= 0 {
		passes = 30
	}
	t := &Table{
		ID:    "PF",
		Title: fmt.Sprintf("warm-path performance trajectory (%d timed corpus passes per grammar; off-* = ahead-of-time tables on the stripped grammar)", passes),
		Header: []string{"grammar", "nodes", "cold-label-ns", "warm-label-ns", "warm-select-ns",
			"allocs/pass(label)", "allocs/pass(select)", "allocs/node", "compile-ns", "compile-xallocs",
			"tel-label-ns", "tel-compile-ns", "tel-xallocs",
			"states", "trans", "table-bytes",
			"off-select-ns", "off-allocs", "off-states", "off-bytes", "off-gen-ms",
			"hyb-select-ns", "hyb-fixed-ns", "hyb-allocs", "hyb-states"},
	}
	rep := &PerfReport{
		Schema:     1,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Passes:     passes,
	}
	for _, name := range CorpusGrammars {
		d := md.MustLoad(name)
		var fs []*ir.Forest
		nodes := 0
		for _, u := range loadCorpus(d.Grammar) {
			fs = append(fs, u.forests...)
			nodes += u.nodes
		}
		e, err := core.New(d.Grammar, d.Env, core.Config{})
		if err != nil {
			return nil, nil, err
		}
		rd, err := reduce.New(d.Grammar, d.Env, nil)
		if err != nil {
			return nil, nil, err
		}
		labelPass := func() {
			for _, f := range fs {
				e.ReleaseLabeling(e.LabelStates(f))
			}
		}
		selectPass := func() {
			for _, f := range fs {
				lab := e.LabelStates(f)
				if _, err := rd.Cover(f, lab, nil); err != nil {
					panic(err) // corpus is known-derivable; see the tests
				}
				e.ReleaseLabeling(lab)
			}
		}

		start := time.Now()
		labelPass() // cold: constructs every state and transition
		coldNs := float64(time.Since(start).Nanoseconds()) / float64(nodes)

		warmNs := minNsPerNode(passes, nodes, labelPass)

		selectPass() // warm the reducer pool too
		selNs := minNsPerNode(passes, nodes, selectPass)

		labelAllocs := allocsPerRun(10, labelPass)
		selAllocs := allocsPerRun(10, selectPass)

		// Telemetry-on label: the same pass with the label stage's serving
		// instrumentation — one boundary stamp per forest into a pooled
		// trace whose spans accumulate batch-style, folded into a
		// histogram series once per pass. Paired windows against the bare
		// pass: the ≤2% gate ComparePerf applies is a within-report ratio.
		var tlPool telemetry.TracePool
		tlSet := telemetry.NewCollector().Set(name, string(repro.KindOnDemand))
		telLabelPass := func() {
			tr := tlPool.Get(name, string(repro.KindOnDemand), "perf")
			for _, f := range fs {
				e.ReleaseLabeling(e.LabelStates(f))
				tr.Mark(telemetry.StageLabel)
			}
			tr.Finish()
			tlSet.RecordTrace(tr)
			tlPool.Put(tr)
		}
		telLabelPass() // fill the trace pool
		plainLabelNs, telLabelNs := minNsPerNodePaired(passes, nodes, labelPass, telLabelPass)
		if plainLabelNs < warmNs {
			warmNs = plainLabelNs
		}

		row := PerfRow{
			Grammar: name, CorpusNodes: nodes,
			ColdLabelNsPerNode: coldNs, WarmLabelNsPerNode: warmNs,
			TelemetryWarmLabelNsPerNode: telLabelNs,
			WarmSelectNsPerNode:         selNs,
			WarmLabelAllocsPerPass:      labelAllocs, WarmSelectAllocsPerPass: selAllocs,
			WarmAllocsPerNode: selAllocs / float64(nodes),
			States:            e.NumStates(), Transitions: e.NumTransitions(),
			TableBytes: e.MemoryBytes(),
		}
		if err := measureCompile(name, fs, nodes, passes, &row); err != nil {
			return nil, nil, err
		}
		offPass, err := measureOffline(d.Grammar, passes, &row)
		if err != nil {
			return nil, nil, err
		}
		if err := measureHybrid(d.Grammar, d.Env, fs, nodes, passes, selectPass, offPass, &row); err != nil {
			return nil, nil, err
		}
		rep.Rows = append(rep.Rows, row)
		t.AddRow(name, itoa(nodes), f1(coldNs), f1(warmNs), f1(row.WarmSelectNsPerNode),
			f1(labelAllocs), f1(selAllocs), f2(row.WarmAllocsPerNode),
			f1(row.WarmCompileNsPerNode), f1(row.WarmCompileExtraAllocsPerPass),
			f1(row.TelemetryWarmLabelNsPerNode),
			f1(row.TelemetryWarmCompileNsPerNode), f1(row.TelemetryExtraAllocsPerPass),
			itoa(row.States), itoa(row.Transitions), itoa(row.TableBytes),
			f1(row.OfflineWarmSelectNsPerNode), f1(row.OfflineWarmSelectAllocsPerPass),
			itoa(row.OfflineStates), itoa(row.OfflineTableBytes), f2(row.OfflineGenMs),
			f1(row.HybridWarmSelectNsPerNode), f1(row.HybridFixedWarmSelectNsPerNode),
			f1(row.HybridWarmSelectAllocsPerPass), itoa(row.HybridStates))
	}
	rep.Notes = append(rep.Notes,
		"warm label and select must stay at ~0 allocs/pass: labelings, reducer scratch and dyn buffers are pooled",
		"ns figures are wall-clock and machine-dependent; compare trends, not absolutes, across BENCH_PR*.json",
		"warm ns figures are min-of-3 timed windows: external noise only adds time, so the minimum is the comparable statistic on a shared machine",
		"offline columns run the stripped grammar through the .isel encode/decode round trip: the one-time gen cost buys lookup-only selection with zero construction under traffic",
		"compile-ns/compile-xallocs cover the full warm Compile (label+reduce+emit) through the public Selector: the contract is one *Output per forest and zero allocations per node, so compile-xallocs must stay 0",
		"off-bytes is the loaded serving footprint (tables expand into direct arrays at load); offline_compact_table_bytes in the JSON is the pre-expansion figure",
		"hyb-select-ns runs the hybrid engine on the FULL grammar (dynamic fallthrough active) over the same corpus as warm-select-ns; it must beat warm on-demand on dynamic grammars",
		"hyb-fixed-ns runs the hybrid engine on the stripped grammar over the offline corpus; the gate is <= 1.2x off-select-ns (the fallthrough machinery may not tax the fixed path)",
		"tel-label-ns is warm-label-ns with the label stage's serving instrumentation (one boundary stamp per forest into a pooled batch trace); the gate is <= 1.02x warm-label-ns + 0.5 ns/node (paired windows; the additive term is the single-TSC-read measurement quantum)",
		"tel-compile-ns is compile-ns with the full per-request telemetry plane attached (live counters, pooled trace, per-request histogram fold); informational in wall-clock, gated via tel-xallocs = 0 (telemetry must be allocation-free)",
	)
	t.Note("cold includes every state construction of the session; warm is the steady state a JIT/server reaches")
	t.Note("allocs/pass counted over the whole corpus (runtime.MemStats.Mallocs delta); 0 is the contract for label and select — offline included")
	t.Note("off-gen-ms is the ahead-of-time closure+encode+decode cost; the on-demand engine never pays it, the offline engine pays it exactly once")
	return rep, t, nil
}

// measureCompile fills row's full-warm-Compile columns through the public
// Selector — label + reduce + emit end to end. The warm path allocates
// exactly one *Output per forest: operand text lives in per-emitter
// arenas, registers and bookkeeping are reused across Reset, and repeated
// assembly comes interned. The surplus beyond one-per-forest is the gated
// contract and must stay 0.
func measureCompile(name string, fs []*ir.Forest, nodes, passes int, row *PerfRow) error {
	m, err := repro.LoadMachine(name)
	if err != nil {
		return err
	}
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		return err
	}
	ctx := context.Background()
	compilePass := func() {
		for _, f := range fs {
			if _, err := sel.Compile(ctx, f); err != nil {
				panic(err) // corpus is known-derivable; see the tests
			}
		}
	}
	compilePass() // warm: automaton, emitter pool, interner
	row.CorpusForests = len(fs)
	row.WarmCompileNsPerNode = minNsPerNode(passes, nodes, compilePass)
	row.WarmCompileAllocsPerPass = allocsPerRun(10, compilePass)
	row.WarmCompileExtraAllocsPerPass = row.WarmCompileAllocsPerPass - float64(len(fs))
	if row.WarmCompileExtraAllocsPerPass < 0 {
		row.WarmCompileExtraAllocsPerPass = 0
	}

	// Telemetry-on half: the same pass carrying everything the serving
	// tier attaches per job — live counters, a pooled trace stamped at
	// every stage boundary, the finished trace folded into a histogram
	// series. Paired windows against the plain pass, because the ≤2%
	// overhead gate ComparePerf applies is a within-report ratio.
	var jm repro.Counters
	var pool telemetry.TracePool
	set := telemetry.NewCollector().Set(name, string(repro.KindOnDemand))
	telemetryPass := func() {
		for _, f := range fs {
			tr := pool.Get(name, string(repro.KindOnDemand), "perf")
			if _, err := sel.CompileObserved(ctx, f, &jm, tr); err != nil {
				panic(err) // corpus is known-derivable; see the tests
			}
			tr.Finish()
			set.RecordTrace(tr)
			pool.Put(tr)
		}
	}
	telemetryPass() // fill the trace pool
	plainNs, telNs := minNsPerNodePaired(passes, nodes, compilePass, telemetryPass)
	if plainNs < row.WarmCompileNsPerNode {
		row.WarmCompileNsPerNode = plainNs
	}
	row.TelemetryWarmCompileNsPerNode = telNs
	row.TelemetryWarmCompileAllocsPerPass = allocsPerRun(10, telemetryPass)
	row.TelemetryExtraAllocsPerPass = row.TelemetryWarmCompileAllocsPerPass - float64(len(fs))
	if row.TelemetryExtraAllocsPerPass < 0 {
		row.TelemetryExtraAllocsPerPass = 0
	}
	return nil
}

// measureOffline fills row's offline comparison columns: the same corpus
// selected with ahead-of-time tables (internal/gen) on the stripped
// grammar, loaded through the wire format just as a served blob would be.
// It returns its warm select pass so measureHybrid can re-time it in
// windows interleaved with the hybrid fixed pass (the 1.2× gate compares
// the two, so they must face the same noise epochs).
func measureOffline(g *grammar.Grammar, passes int, row *PerfRow) (func(), error) {
	fixed, err := g.StripDynamic()
	if err != nil {
		return nil, err
	}
	var fs []*ir.Forest
	nodes := 0
	for _, u := range loadCorpus(fixed) {
		fs = append(fs, u.forests...)
		nodes += u.nodes
	}
	genStart := time.Now()
	res, err := gen.Compile(fixed, gen.Config{})
	if err != nil {
		return nil, err
	}
	a, err := gen.Load(fixed, bytes.NewReader(res.Blob))
	if err != nil {
		return nil, err
	}
	row.OfflineGenMs = float64(time.Since(genStart).Nanoseconds()) / 1e6
	rd, err := reduce.New(fixed, nil, nil)
	if err != nil {
		return nil, err
	}
	selectPass := func() {
		for _, f := range fs {
			lab := a.LabelStates(f)
			if _, err := rd.Cover(f, lab, nil); err != nil {
				panic(err) // corpus is known-derivable; see the tests
			}
			a.ReleaseLabeling(lab)
		}
	}
	selectPass() // fill the labeling and reducer pools; tables are already complete
	row.OfflineWarmSelectNsPerNode = minNsPerNode(passes, nodes, selectPass)
	row.OfflineWarmSelectAllocsPerPass = allocsPerRun(10, selectPass)
	row.OfflineStates = a.NumStates()
	row.OfflineTableBytes = a.MemoryBytes()
	row.OfflineCompactTableBytes = res.Stats.TableBytes
	row.OfflineBlobBytes = len(res.Blob)
	return selectPass, nil
}

// measureHybrid fills row's hybrid columns twice over: once on the full
// grammar against the on-demand corpus (fs/nodes — the dynamic-grammar
// speedup claim) and once on the stripped grammar against the offline
// corpus (the ≤1.2×-offline fixed-path contract). Both engines load their
// tables through the `.isel` wire round trip, like a served blob.
//
// The two comparisons the report gates on (hybrid vs warm on-demand,
// hybrid-fixed vs offline) are re-timed here in interleaved paired
// windows against odPass/offPass, and the baseline columns keep their
// best observation — a min estimator only improves with more samples, and
// pairing makes the gated ratios robust to host-noise epochs.
func measureHybrid(g *grammar.Grammar, env grammar.DynEnv, fs []*ir.Forest, nodes, passes int, odPass, offPass func(), row *PerfRow) error {
	genStart := time.Now()
	res, err := gen.CompileHybrid(g, gen.Config{})
	if err != nil {
		return err
	}
	ov, err := gen.LoadHybrid(g, bytes.NewReader(res.Blob))
	if err != nil {
		return err
	}
	h, err := core.NewHybrid(g, env, core.Config{}, ov)
	if err != nil {
		return err
	}
	row.HybridGenMs = float64(time.Since(genStart).Nanoseconds()) / 1e6
	rd, err := reduce.New(g, env, nil)
	if err != nil {
		return err
	}
	selectPass := func() {
		for _, f := range fs {
			lab := h.LabelStates(f)
			if _, err := rd.Cover(f, lab, nil); err != nil {
				panic(err) // corpus is known-derivable; see the tests
			}
			h.ReleaseLabeling(lab)
		}
	}
	selectPass() // warm: the dynamic fallthrough constructs its transitions
	odNs, hybNs := minNsPerNodePaired(passes, nodes, odPass, selectPass)
	if odNs < row.WarmSelectNsPerNode {
		row.WarmSelectNsPerNode = odNs
	}
	row.HybridWarmSelectNsPerNode = hybNs
	row.HybridWarmSelectAllocsPerPass = allocsPerRun(10, selectPass)
	row.HybridStates = h.OfflineStates()
	row.HybridTableBytes = h.MemoryBytes()
	row.HybridBlobBytes = len(res.Blob)

	// Fixed-only half: same stripped grammar and corpus as measureOffline,
	// so HybridFixedWarmSelectNsPerNode and OfflineWarmSelectNsPerNode are
	// directly comparable for the 1.2× gate.
	fixed, err := g.StripDynamic()
	if err != nil {
		return err
	}
	var ffs []*ir.Forest
	fnodes := 0
	for _, u := range loadCorpus(fixed) {
		ffs = append(ffs, u.forests...)
		fnodes += u.nodes
	}
	resF, err := gen.CompileHybrid(fixed, gen.Config{})
	if err != nil {
		return err
	}
	ovF, err := gen.LoadHybrid(fixed, bytes.NewReader(resF.Blob))
	if err != nil {
		return err
	}
	hF, err := core.NewHybrid(fixed, nil, core.Config{}, ovF)
	if err != nil {
		return err
	}
	rdF, err := reduce.New(fixed, nil, nil)
	if err != nil {
		return err
	}
	fixedPass := func() {
		for _, f := range ffs {
			lab := hF.LabelStates(f)
			if _, err := rdF.Cover(f, lab, nil); err != nil {
				panic(err) // corpus is known-derivable; see the tests
			}
			hF.ReleaseLabeling(lab)
		}
	}
	fixedPass() // fill pools; every transition is an overlay load already
	offNs, hybFixedNs := minNsPerNodePaired(passes, fnodes, offPass, fixedPass)
	if offNs < row.OfflineWarmSelectNsPerNode {
		row.OfflineWarmSelectNsPerNode = offNs
	}
	row.HybridFixedWarmSelectNsPerNode = hybFixedNs
	row.HybridFixedWarmSelectAllocsPerPass = allocsPerRun(10, fixedPass)
	return nil
}
