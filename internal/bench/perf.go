// The PF experiment: the machine-readable performance trajectory. Every
// PR that touches a hot path regenerates BENCH_PR<N>.json with
// `iselbench -experiment PF -perf-out BENCH_PR<N>.json`, so successors
// can diff warm/cold ns/node, allocations and table bytes against history
// instead of guessing. Numbers are wall-clock and machine-dependent;
// allocation counts and table bytes are deterministic.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/reduce"
)

// allocsPerRun reports the average number of heap allocations per call of
// fn — the testing.AllocsPerRun measurement, reimplemented on
// runtime.ReadMemStats so a non-test package does not link the testing
// framework into the iselbench binary. Pinning to one OS thread's P keeps
// other goroutines' allocations out of the count.
func allocsPerRun(runs int, fn func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn() // warm up: pools filled, lazy growth done
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// PerfRow is one grammar's warm-path measurements over the whole MinC
// corpus.
type PerfRow struct {
	Grammar     string `json:"grammar"`
	CorpusNodes int    `json:"corpus_nodes"`
	// Labeling only (engine fast path), pooled labelings released.
	ColdLabelNsPerNode float64 `json:"cold_label_ns_per_node"`
	WarmLabelNsPerNode float64 `json:"warm_label_ns_per_node"`
	// Label + reduce (no emission): the paper's per-node selection cost.
	WarmSelectNsPerNode float64 `json:"warm_select_ns_per_node"`
	// Allocations per corpus pass on the warm path.
	WarmLabelAllocsPerPass  float64 `json:"warm_label_allocs_per_pass"`
	WarmSelectAllocsPerPass float64 `json:"warm_select_allocs_per_pass"`
	WarmAllocsPerNode       float64 `json:"warm_select_allocs_per_node"`
	States                  int     `json:"states"`
	Transitions             int     `json:"transitions"`
	TableBytes              int     `json:"table_bytes"`
}

// PerfReport is the BENCH_PR<N>.json payload.
type PerfReport struct {
	Schema     int       `json:"schema"`
	GoVersion  string    `json:"go_version"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Passes     int       `json:"passes"`
	Rows       []PerfRow `json:"rows"`
	Notes      []string  `json:"notes"`
}

// WriteJSON writes the report to path, pretty-printed for diffing.
func (r *PerfReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RunPerf measures the on-demand engine's warm path per corpus grammar:
// cold and warm labeling ns/node, warm label+reduce ns/node, allocation
// counts per corpus pass, and the automaton's size after the corpus.
func RunPerf(passes int) (*PerfReport, *Table, error) {
	if passes <= 0 {
		passes = 30
	}
	t := &Table{
		ID:    "PF",
		Title: fmt.Sprintf("warm-path performance trajectory (%d timed corpus passes per grammar)", passes),
		Header: []string{"grammar", "nodes", "cold-label-ns", "warm-label-ns", "warm-select-ns",
			"allocs/pass(label)", "allocs/pass(select)", "allocs/node", "states", "trans", "table-bytes"},
	}
	rep := &PerfReport{
		Schema:     1,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Passes:     passes,
	}
	for _, name := range CorpusGrammars {
		d := md.MustLoad(name)
		var fs []*ir.Forest
		nodes := 0
		for _, u := range loadCorpus(d.Grammar) {
			fs = append(fs, u.forests...)
			nodes += u.nodes
		}
		e, err := core.New(d.Grammar, d.Env, core.Config{})
		if err != nil {
			return nil, nil, err
		}
		rd, err := reduce.New(d.Grammar, d.Env, nil)
		if err != nil {
			return nil, nil, err
		}
		labelPass := func() {
			for _, f := range fs {
				e.ReleaseLabeling(e.LabelStates(f))
			}
		}
		selectPass := func() {
			for _, f := range fs {
				lab := e.LabelStates(f)
				if _, err := rd.Cover(f, lab, nil); err != nil {
					panic(err) // corpus is known-derivable; see the tests
				}
				e.ReleaseLabeling(lab)
			}
		}

		start := time.Now()
		labelPass() // cold: constructs every state and transition
		coldNs := float64(time.Since(start).Nanoseconds()) / float64(nodes)

		start = time.Now()
		for p := 0; p < passes; p++ {
			labelPass()
		}
		warmNs := float64(time.Since(start).Nanoseconds()) / float64(passes*nodes)

		selectPass() // warm the reducer pool too
		start = time.Now()
		for p := 0; p < passes; p++ {
			selectPass()
		}
		selNs := float64(time.Since(start).Nanoseconds()) / float64(passes*nodes)

		labelAllocs := allocsPerRun(10, labelPass)
		selAllocs := allocsPerRun(10, selectPass)

		row := PerfRow{
			Grammar: name, CorpusNodes: nodes,
			ColdLabelNsPerNode: coldNs, WarmLabelNsPerNode: warmNs,
			WarmSelectNsPerNode:    selNs,
			WarmLabelAllocsPerPass: labelAllocs, WarmSelectAllocsPerPass: selAllocs,
			WarmAllocsPerNode: selAllocs / float64(nodes),
			States:            e.NumStates(), Transitions: e.NumTransitions(),
			TableBytes: e.MemoryBytes(),
		}
		rep.Rows = append(rep.Rows, row)
		t.AddRow(name, itoa(nodes), f1(coldNs), f1(warmNs), f1(selNs),
			f1(labelAllocs), f1(selAllocs), f2(row.WarmAllocsPerNode),
			itoa(row.States), itoa(row.Transitions), itoa(row.TableBytes))
	}
	rep.Notes = append(rep.Notes,
		"warm label and select must stay at ~0 allocs/pass: labelings, reducer scratch and dyn buffers are pooled",
		"ns figures are wall-clock and machine-dependent; compare trends, not absolutes, across BENCH_PR*.json",
	)
	t.Note("cold includes every state construction of the session; warm is the steady state a JIT/server reaches")
	t.Note("allocs/pass counted over the whole corpus (runtime.MemStats.Mallocs delta); 0 is the contract for label and select")
	return rep, t, nil
}
