package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/workload"
)

// The SV -replicas mode replays the compilation-server corpus through a
// real fleet: N cluster replicas behind the consistent-hash router, all
// in-process over loopback HTTP. It is the distributed form of RunServer
// and asserts the distributed forms of its invariants:
//
//   - warm before traffic: the router's /readyz is green and every ring
//     owner of every machine serves it constructed before the first
//     client request — and the warmth arrived through the blob exchange
//     (each machine's tables were AOT-compiled exactly once fleet-wide;
//     every other owner preloaded or fetched the published blob);
//   - zero failed client requests, including with a replica killed
//     mid-traffic (the router retries each interrupted or failed job on
//     the machine's next owner with the buffered request body);
//   - exact accounting: the per-client counters the router aggregates
//     across the fleet sum exactly to the aggregated fleet-global
//     counters, machine by machine and counter by counter.

// ClusterFleet is a booted in-process fleet (replicas + router), usable
// by the bench and by tests.
type ClusterFleet struct {
	Peers    []string
	Replicas []*cluster.Replica
	Servers  []*httptest.Server
	Router   *cluster.Router
	RouterS  *httptest.Server
	// Log collects every replica's operational messages, prefixed by the
	// replica index — the ledger the warm-path assertions read.
	mu  sync.Mutex
	Log []string
}

func (f *ClusterFleet) logf(i int) func(string, ...any) {
	return func(format string, args ...any) {
		f.mu.Lock()
		f.Log = append(f.Log, fmt.Sprintf("replica%d: ", i)+fmt.Sprintf(format, args...))
		f.mu.Unlock()
	}
}

// LogLines snapshots the fleet log.
func (f *ClusterFleet) LogLines() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.Log...)
}

// Close tears the fleet down (idempotent per server; killed replicas and
// partial boots are skipped).
func (f *ClusterFleet) Close() {
	if f.RouterS != nil {
		f.RouterS.Close()
		f.Router.Stop()
	}
	for i, s := range f.Servers {
		if s == nil {
			continue
		}
		s.Close()
		if i < len(f.Replicas) {
			f.Replicas[i].Shutdown()
		}
	}
}

// Kill hard-kills replica i: in-flight connections are severed (the way
// a dying process severs them), the listener closes, and the slot is
// marked dead so Close skips it.
func (f *ClusterFleet) Kill(i int) {
	s := f.Servers[i]
	if s == nil {
		return
	}
	f.Servers[i] = nil
	s.CloseClientConnections()
	s.Close()
	f.Replicas[i].Shutdown()
}

// swapHandler lets a listener serve before its replica exists: until the
// real handler is swapped in, every request answers 503 — exactly what a
// still-booting fleet member looks like to its peers.
type swapHandler struct{ v atomic.Value }

type handlerBox struct{ h http.Handler }

func newSwapHandler() *swapHandler {
	s := &swapHandler{}
	s.v.Store(handlerBox{http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "booting", http.StatusServiceUnavailable)
	})})
	return s
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.v.Load().(handlerBox).h.ServeHTTP(w, r)
}

// BootCluster boots replicas+router over machines with the given
// replication factor. Every listener opens first (answering 503 while
// its replica boots), then replicas boot serially — so the first owner
// of a machine pays AOT compilation and every later owner warm-starts
// from a published or fetched blob, which is the deployment story being
// measured. storeRoot gets one blob-store directory per replica.
func BootCluster(gnames []string, replicas, replication int, storeRoot string, workers int) (*ClusterFleet, error) {
	f := &ClusterFleet{}
	handlers := make([]*swapHandler, replicas)
	for i := 0; i < replicas; i++ {
		handlers[i] = newSwapHandler()
		f.Servers = append(f.Servers, httptest.NewServer(handlers[i]))
		f.Peers = append(f.Peers, f.Servers[i].URL)
	}
	for i := 0; i < replicas; i++ {
		rep, err := cluster.NewReplica(cluster.ReplicaConfig{
			Self:        f.Peers[i],
			Peers:       f.Peers,
			Machines:    gnames,
			Replication: replication,
			StoreDir:    fmt.Sprintf("%s/replica%d", storeRoot, i),
			Server:      server.Config{Workers: workers},
			Logf:        f.logf(i),
		})
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Replicas = append(f.Replicas, rep)
		handlers[i].v.Store(handlerBox{rep.Handler()})
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Peers:       f.Peers,
		Machines:    gnames,
		Replication: replication,
		Logf:        func(string, ...any) {},
		// A deep slowlog: the harness asserts failover hop chains are
		// retained, and fast normal requests must not evict them.
		SlowlogSize: 256,
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	f.Router = rt
	f.RouterS = httptest.NewServer(rt.Handler())
	return f, nil
}

// FleetStats fetches and decodes the router's aggregated /stats.
func (f *ClusterFleet) FleetStats() (*cluster.FleetStats, error) {
	resp, err := http.Get(f.RouterS.URL + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var fs cluster.FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		return nil, err
	}
	return &fs, nil
}

// CheckFleetAccounting asserts the distributed accounting invariant on a
// quiescent fleet: the aggregated per-client counters sum exactly to the
// aggregated global counters.
func CheckFleetAccounting(fs *cluster.FleetStats) error {
	var sum metrics.Counters
	for _, c := range fs.Clients {
		c := c
		sum.Add(&c)
	}
	if sum != fs.Global {
		return fmt.Errorf("fleet accounting violated: clients sum to %+v, global is %+v", sum, fs.Global)
	}
	return nil
}

// CheckWarmShards asserts that every machine's every ring owner serves it
// constructed with nonzero tables — the "warm via blob exchange before
// the first client request" acceptance, read through the router's /stats.
func CheckWarmShards(fs *cluster.FleetStats) error {
	byPeer := map[string]*server.StatsResponse{}
	for _, rs := range fs.Replicas {
		byPeer[rs.Peer] = rs.Stats
	}
	for _, sh := range fs.Shards {
		for _, owner := range sh.Owners {
			sr := byPeer[owner]
			if sr == nil {
				return fmt.Errorf("shard %s: owner %s is unreachable", sh.Machine, owner)
			}
			found := false
			for _, ms := range sr.Machines {
				if ms.Machine == sh.Machine {
					found = true
					if !ms.Constructed || ms.Error != "" || ms.States == 0 {
						return fmt.Errorf("shard %s: owner %s not warm (constructed=%v err=%q states=%d)",
							sh.Machine, owner, ms.Constructed, ms.Error, ms.States)
					}
				}
			}
			if !found {
				return fmt.Errorf("shard %s: owner %s does not register the machine", sh.Machine, owner)
			}
		}
	}
	return nil
}

// RunClusterSV runs the multi-replica SV replay: the MinC corpus, every
// machine, `clients` concurrent clients, `passes` passes each, through
// the router. With kill >= 0, the primary ring owner of the kill-th
// served machine is hard-killed once half the requests have resolved —
// the primary, so the kill actually lands in the serving path and the
// router's failover is what keeps clients whole. It fails on any failed
// client request, on a cold shard, on an accounting mismatch, and (in
// the kill scenario) if no failover was actually exercised.
func RunClusterSV(gnames []string, replicas, replication, clients, passes, workers int, kill int) ([]SVRow, *Table, error) {
	if len(gnames) == 0 {
		gnames = []string{"x86", "jit64"}
	}
	if replicas <= 0 {
		replicas = 3
	}
	if replication <= 0 {
		replication = 2
	}
	if clients <= 0 {
		clients = 4
	}
	if passes <= 0 {
		passes = 2
	}
	ms, err := loadSVMachines(gnames)
	if err != nil {
		return nil, nil, err
	}
	nodesPerPass, jobsPerPass := 0, 0
	for _, sm := range ms {
		nodesPerPass += sm.nodes
		jobsPerPass += sm.jobs
	}

	storeRoot, err := os.MkdirTemp("", "isel-cluster-sv")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(storeRoot)
	bootStart := time.Now()
	fleet, err := BootCluster(gnames, replicas, replication, storeRoot, workers)
	if err != nil {
		return nil, nil, err
	}
	defer fleet.Close()
	bootTime := time.Since(bootStart)

	// Warm-before-traffic: the router must vouch for every shard, and the
	// warmth must have moved through the blob exchange — each machine's
	// tables AOT-compiled exactly once fleet-wide.
	if resp, err := http.Get(fleet.RouterS.URL + "/readyz"); err != nil {
		return nil, nil, err
	} else if resp.Body.Close(); resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("router /readyz answered %d before traffic", resp.StatusCode)
	}
	preStats, err := fleet.FleetStats()
	if err != nil {
		return nil, nil, err
	}
	if err := CheckWarmShards(preStats); err != nil {
		return nil, nil, err
	}
	aot, shared := 0, 0
	for _, line := range fleet.LogLines() {
		if strings.Contains(line, "AOT-compiled here") {
			aot++
		}
		if strings.Contains(line, "warm-started from peer") || strings.Contains(line, "preloaded from a peer") {
			shared++
		}
	}
	if aot != len(gnames) {
		return nil, nil, fmt.Errorf("expected each machine AOT-compiled exactly once fleet-wide, saw %d compilations for %d machines", aot, len(gnames))
	}
	wantShared := 0
	for _, sh := range preStats.Shards {
		wantShared += len(sh.Owners) - 1
	}
	if shared < wantShared {
		return nil, nil, fmt.Errorf("expected >= %d owners warm-started over the exchange, saw %d", wantShared, shared)
	}

	// Resolve the kill victim: the primary owner of the kill-th machine,
	// read from the router's own shard view so the test kills exactly what
	// the router routes to first.
	victim := -1
	if kill >= 0 {
		primary := preStats.Shards[kill%len(preStats.Shards)].Owners[0]
		for i, p := range fleet.Peers {
			if p == primary {
				victim = i
			}
		}
		if victim < 0 {
			return nil, nil, fmt.Errorf("primary owner %s not in the peer list", primary)
		}
	}

	// Replay. Each client walks the machines in a rotated order (the
	// RunServer interleave) posting MinC units through the router.
	total := clients * passes * len(ms) * len(workload.All())
	var resolved, failed atomic.Int64
	var killOnce sync.Once
	httpc := &http.Client{Timeout: 60 * time.Second}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := fmt.Sprintf("ci-%d", c)
			for p := 0; p < passes; p++ {
				for mi := range ms {
					sm := ms[(mi+c+p)%len(ms)]
					for _, prog := range workload.All() {
						body, _ := json.Marshal(server.CompileRequest{Client: client, MinC: prog.Src})
						resp, err := httpc.Post(
							fleet.RouterS.URL+"/compile?machine="+sm.name,
							"application/json", bytes.NewReader(body))
						if err != nil {
							failed.Add(1)
							if errs[c] == nil {
								errs[c] = err
							}
							continue
						}
						if resp.StatusCode != http.StatusOK {
							failed.Add(1)
							if errs[c] == nil {
								errs[c] = fmt.Errorf("client %s: %s on %s answered %d", client, prog.Name, sm.name, resp.StatusCode)
							}
						}
						resp.Body.Close()
						if n := resolved.Add(1); victim >= 0 && n == int64(total/2) {
							killOnce.Do(func() { fleet.Kill(victim) })
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("client request failed (%d total failures): %w", failed.Load(), err)
		}
	}

	// Quiescent fleet: aggregate and check the distributed accounting.
	fs, err := fleet.FleetStats()
	if err != nil {
		return nil, nil, err
	}
	if err := CheckFleetAccounting(fs); err != nil {
		return nil, nil, err
	}
	wantJobs := int64(clients * passes * jobsPerPass)
	if kill < 0 && fs.Jobs != wantJobs {
		return nil, nil, fmt.Errorf("fleet served %d jobs, want exactly %d", fs.Jobs, wantJobs)
	}
	if kill >= 0 && fs.Routing.Failovers == 0 {
		return nil, nil, fmt.Errorf("killed the primary owner mid-traffic but the router never failed over")
	}

	// Telemetry-plane acceptance: the fleet is /metrics-scrapable, the
	// aggregated per-stage histograms carry real latencies, and (in the
	// kill scenario) the failover is visible as a router hop chain
	// naming the owners it tried.
	samples, hopEntry, err := CheckFleetTelemetry(fleet.RouterS.URL, fs, kill >= 0)
	if err != nil {
		return nil, nil, err
	}
	if SVTraceDump != "" {
		if err := dumpSlowlog(SVTraceDump, "router", fleet.Router.SlowlogEntries()); err != nil {
			return nil, nil, fmt.Errorf("writing -trace-out: %w", err)
		}
	}

	totalNodes := int64(clients * passes * nodesPerPass)
	ns := float64(elapsed.Nanoseconds()) / float64(totalNodes)
	label := strings.Join(gnames, "+")
	t := &Table{
		ID: "SV.cluster",
		Title: fmt.Sprintf("distributed SV: %d replicas (rf=%d) behind the router on %s, %d clients x %d passes",
			replicas, replication, label, clients, passes),
		Header: []string{"replicas", "rf", "clients", "requests", "failed", "jobs", "ns/node", "retries", "failovers", "boot"},
	}
	t.AddRow(itoa(replicas), itoa(replication), itoa(clients), itoa(total), itoa(int(failed.Load())),
		itoa(int(fs.Jobs)), f1(ns), itoa(int(fs.Routing.Retries)), itoa(int(fs.Routing.Failovers)),
		bootTime.Round(time.Millisecond).String())
	if victim >= 0 {
		t.Note("replica %d (primary owner of %s) hard-killed after %d resolved requests: zero client-visible failures, the router replayed interrupted jobs on the next owner", victim, ms[kill%len(ms)].name, total/2)
	}
	t.Note("every shard warm via the blob exchange before the first request: %d AOT compilations for %d machines, %d peer warm-starts", aot, len(gnames), shared)
	t.Note("aggregated per-client counters verified to sum exactly to the aggregated fleet-global counters")
	t.Note("router /metrics parsed as well-formed prometheus text (%d samples); fleet-merged stage histograms carry nonzero label-stage p99", samples)
	if hopEntry != nil {
		hops := ""
		for i, h := range hopEntry.Hops {
			if i > 0 {
				hops += " -> "
			}
			hops += h.Peer
		}
		t.Note("failover visible in the router slowlog: request id=%d tried %s", hopEntry.ID, hops)
	}
	rows := []SVRow{{
		Grammar: label, Clients: clients, Workers: workers, Passes: passes,
		Jobs: fs.Jobs, Nodes: totalNodes, NsPerNode: ns, KNodesPerS: 1e6 / ns,
	}}
	return rows, t, nil
}
