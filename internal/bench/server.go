package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/workload"
)

// The SV experiment measures the compilation-server scenario end to end:
// synthetic multi-client traffic replayed against one internal/server
// Server (the engine cmd/iselserver fronts), compared with a single
// client calling Selector.CompileUnit directly on the same warm engine.
// It reports throughput per client count plus the automaton-warmth curve
// (states/transitions over time) of the server's cold first pass — the
// amortization story: every client's misses warm the shared tables, so
// per-node cost converges to a lookup no matter which client's unit is
// next.

// SVWarmthPoint is one sample of the server-side warmth curve.
type SVWarmthPoint struct {
	Unit   string
	Nodes  int // cumulative IR nodes served
	States int
	Trans  int
}

// SVRow is one throughput sample: Clients concurrent clients replaying
// the corpus through the server (Clients == 0 is the direct single-client
// CompileUnit baseline, no server in the path).
type SVRow struct {
	Grammar    string
	Clients    int
	Workers    int
	Passes     int
	Jobs       int64
	Nodes      int64
	NsPerNode  float64
	KNodesPerS float64
	Speedup    float64 // vs the direct baseline
	States     int
	Trans      int
}

// RunServer runs the SV experiment on one grammar. Each configuration
// replays the whole MinC corpus `passes` times per client on a freshly
// warmed engine; workers <= 0 sizes the pool by GOMAXPROCS. It fails if
// the per-client counters do not sum exactly to the server's global
// counters — the accounting invariant the server promises.
func RunServer(gname string, clientCounts []int, workers, passes int) ([]SVRow, *Table, *Table, error) {
	if len(clientCounts) == 0 {
		clientCounts = []int{1, 2, 4, 8}
	}
	if passes <= 0 {
		passes = 10
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m, err := repro.LoadMachine(gname)
	if err != nil {
		return nil, nil, nil, err
	}
	var units []*repro.Unit
	var names []string
	for _, p := range workload.All() {
		u, err := m.CompileMinC(p.Src)
		if err != nil {
			return nil, nil, nil, err
		}
		units = append(units, u)
		names = append(names, p.Name)
	}
	nodesPerPass := 0
	jobsPerPass := 0
	for _, u := range units {
		nodesPerPass += u.TotalNodes()
		jobsPerPass += len(u.Funcs)
	}

	// Warmth curve: a cold server engine serves its first pass of traffic;
	// sample the automaton after each unit.
	warmth := &Table{
		ID: "SV.warmth",
		Title: fmt.Sprintf("automaton warmth over server traffic on %s (cold engine, one unit per row)",
			gname),
		Header: []string{"unit", "cum-nodes", "states", "transitions"},
	}
	coldSel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	coldSrv := server.NewSingle(coldSel, server.Config{Workers: workers})
	var points []SVWarmthPoint
	cum := 0
	for i, u := range units {
		if _, err := coldSrv.CompileUnit(context.Background(), "warmup", "", u); err != nil {
			return nil, nil, nil, err
		}
		cum += u.TotalNodes()
		snap := coldSel.Snapshot()
		points = append(points, SVWarmthPoint{Unit: names[i], Nodes: cum, States: snap.States, Trans: snap.Transitions})
		warmth.AddRow(names[i], itoa(cum), itoa(snap.States), itoa(snap.Transitions))
	}
	coldSrv.Shutdown()
	warmth.Note("the curve flattens: late units ride tables earlier units (and other clients) built")

	t := &Table{
		ID: "SV",
		Title: fmt.Sprintf("compilation-server throughput on %s (%d workers, %d corpus passes per client, GOMAXPROCS=%d)",
			gname, workers, passes, runtime.GOMAXPROCS(0)),
		Header: []string{"mode", "clients", "jobs", "ns/node", "knodes/s", "vs-direct", "states", "trans"},
	}

	// Direct baseline: one client, sequential CompileUnit, same warm
	// engine shape, no server in the path.
	baseSel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	for _, u := range units {
		if _, err := baseSel.CompileUnit(context.Background(), u); err != nil {
			return nil, nil, nil, err
		}
	}
	start := time.Now()
	for p := 0; p < passes; p++ {
		for _, u := range units {
			if _, err := baseSel.CompileUnit(context.Background(), u); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	baseElapsed := time.Since(start)
	baseNodes := int64(passes * nodesPerPass)
	baseNs := float64(baseElapsed.Nanoseconds()) / float64(baseNodes)
	baseSnap := baseSel.Snapshot()
	rows := []SVRow{{
		Grammar: gname, Clients: 0, Workers: 0, Passes: passes,
		Jobs: int64(passes * jobsPerPass), Nodes: baseNodes,
		NsPerNode: baseNs, KNodesPerS: 1e6 / baseNs, Speedup: 1.0,
		States: baseSnap.States, Trans: baseSnap.Transitions,
	}}
	t.AddRow("direct", "1", itoa(passes*jobsPerPass), f1(baseNs), f1(1e6/baseNs), f2(1.0),
		itoa(baseSnap.States), itoa(baseSnap.Transitions))

	for _, clients := range clientCounts {
		row, err := runServerConfig(m, gname, units, clients, workers, passes, nodesPerPass, jobsPerPass)
		if err != nil {
			return nil, nil, nil, err
		}
		row.Speedup = baseNs / row.NsPerNode
		rows = append(rows, row)
		t.AddRow("server", itoa(clients), itoa(int(row.Jobs)), f1(row.NsPerNode), f1(row.KNodesPerS),
			f2(row.Speedup), itoa(row.States), itoa(row.Trans))
	}
	t.Note("vs-direct ≥ 1.00 means the server front end costs nothing over direct CompileUnit on one warm engine")
	t.Note("per-client counters verified to sum exactly to the server-global counters in every configuration")
	return rows, t, warmth, nil
}

// runServerConfig measures one (clients, workers) configuration on a
// freshly warmed server and checks the counter-accounting invariant.
func runServerConfig(m *repro.Machine, gname string, units []*repro.Unit, clients, workers, passes, nodesPerPass, jobsPerPass int) (SVRow, error) {
	sel, err := m.NewSelector(repro.KindOnDemand, repro.Options{})
	if err != nil {
		return SVRow{}, err
	}
	srv := server.NewSingle(sel, server.Config{Workers: workers})
	defer srv.Shutdown()
	// Warm up over one pass so the measured passes ride the fast path,
	// like the direct baseline.
	for _, u := range units {
		if _, err := srv.CompileUnit(context.Background(), "warmup", "", u); err != nil {
			return SVRow{}, err
		}
	}

	errs := make([]error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := fmt.Sprintf("client-%d", c)
			for p := 0; p < passes; p++ {
				for _, u := range units {
					if _, err := srv.CompileUnit(context.Background(), name, "", u); err != nil {
						errs[c] = err
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return SVRow{}, err
		}
	}

	// Accounting invariant: per-client counters sum to the global.
	var merged metrics.Counters
	for _, name := range srv.Clients() {
		cc := srv.ClientCounters(name)
		merged.Add(&cc)
	}
	if global := srv.GlobalCounters(); merged != global {
		return SVRow{}, fmt.Errorf("SV %s clients=%d: per-client counters do not sum to global:\n  merged: %v\n  global: %v",
			gname, clients, &merged, &global)
	}

	nodes := int64(clients * passes * nodesPerPass)
	ns := float64(elapsed.Nanoseconds()) / float64(nodes)
	snap := sel.Snapshot()
	return SVRow{
		Grammar: gname, Clients: clients, Workers: workers, Passes: passes,
		Jobs: int64(clients * passes * jobsPerPass), Nodes: nodes,
		NsPerNode: ns, KNodesPerS: 1e6 / ns,
		States: snap.States, Trans: snap.Transitions,
	}, nil
}
