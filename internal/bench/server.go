package bench

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/workload"
)

// The SV experiment measures the compilation-server scenario end to end:
// synthetic multi-client traffic replayed against one internal/server
// Server (the engine cmd/iselserver fronts), compared with a single
// client calling Selector.CompileUnit directly on the same warm engines.
// It reports throughput per client count plus the automaton-warmth curve
// (states/transitions over time) of the server's cold first pass — the
// amortization story: every client's misses warm the shared tables, so
// per-node cost converges to a lookup no matter which client's unit is
// next.
//
// With several machine descriptions (iselbench -experiment SV -machines
// x86,jit64) the replay exercises the multi-machine queue: one registry,
// one worker pool, every machine's engine warmed by exactly its own
// traffic, and each client walking the machines in a rotated order so
// concurrent clients interleave different machines through the shared
// queue at every moment.

// SVWarmthPoint is one sample of the server-side warmth curve.
type SVWarmthPoint struct {
	Machine string
	Unit    string
	Nodes   int // cumulative IR nodes served
	States  int
	Trans   int
}

// SVRow is one throughput sample: Clients concurrent clients replaying
// the corpus through the server (Clients == 0 is the direct single-client
// CompileUnit baseline, no server in the path). For mixed-machine replays
// States/Trans sum over every machine's automaton.
type SVRow struct {
	Grammar    string
	Clients    int
	Workers    int
	Passes     int
	Jobs       int64
	Nodes      int64
	NsPerNode  float64
	KNodesPerS float64
	Speedup    float64 // vs the direct baseline
	States     int
	Trans      int
}

// svMachine is one served machine description with its lowered corpus.
type svMachine struct {
	name  string
	m     *repro.Machine
	units []*repro.Unit
	names []string // unit names, aligned with units
	nodes int
	jobs  int
}

func loadSVMachines(gnames []string) ([]*svMachine, error) {
	var ms []*svMachine
	for _, gname := range gnames {
		m, err := repro.LoadMachine(gname)
		if err != nil {
			return nil, err
		}
		sm := &svMachine{name: gname, m: m}
		for _, p := range workload.All() {
			u, err := m.CompileMinC(p.Src)
			if err != nil {
				return nil, err
			}
			sm.units = append(sm.units, u)
			sm.names = append(sm.names, p.Name)
			sm.nodes += u.TotalNodes()
			sm.jobs += len(u.Funcs)
		}
		ms = append(ms, sm)
	}
	return ms, nil
}

// svRegistry builds a fresh registry holding one on-demand selector per
// machine — the multi-machine serving shape of cmd/iselserver.
func svRegistry(ms []*svMachine) (*repro.Registry, error) {
	reg := repro.NewRegistry()
	for _, sm := range ms {
		if err := reg.AddMachine(sm.m, repro.KindOnDemand, repro.Options{}); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// RunServer runs the SV experiment over one or more machine descriptions.
// Each configuration replays the whole MinC corpus `passes` times per
// client per machine on freshly warmed engines; workers <= 0 sizes the
// pool by GOMAXPROCS. It fails if the per-client counters do not sum
// exactly to the server's global counters — the accounting invariant the
// server promises, which must hold across machines too.
func RunServer(gnames []string, clientCounts []int, workers, passes int) ([]SVRow, *Table, *Table, error) {
	if len(gnames) == 0 {
		gnames = []string{"x86"}
	}
	if len(clientCounts) == 0 {
		clientCounts = []int{1, 2, 4, 8}
	}
	if passes <= 0 {
		passes = 10
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	label := strings.Join(gnames, "+")
	ms, err := loadSVMachines(gnames)
	if err != nil {
		return nil, nil, nil, err
	}
	nodesPerPass, jobsPerPass := 0, 0
	for _, sm := range ms {
		nodesPerPass += sm.nodes
		jobsPerPass += sm.jobs
	}

	// Warmth curve: cold engines serve their first interleaved pass of
	// traffic; sample each machine's automaton after each of its units.
	warmth := &Table{
		ID: "SV.warmth",
		Title: fmt.Sprintf("automaton warmth over server traffic on %s (cold engines, one unit per row)",
			label),
		Header: []string{"machine", "unit", "cum-nodes", "states", "transitions"},
	}
	coldReg, err := svRegistry(ms)
	if err != nil {
		return nil, nil, nil, err
	}
	coldSrv := server.New(coldReg, server.Config{Workers: workers})
	var points []SVWarmthPoint
	cum := 0
	for _, sm := range ms {
		for i, u := range sm.units {
			if _, err := coldSrv.CompileUnit(context.Background(), "warmup", sm.name, u); err != nil {
				return nil, nil, nil, err
			}
			cum += u.TotalNodes()
			snap := coldReg.Snapshots()[sm.name]
			points = append(points, SVWarmthPoint{Machine: sm.name, Unit: sm.names[i], Nodes: cum, States: snap.States, Trans: snap.Transitions})
			warmth.AddRow(sm.name, sm.names[i], itoa(cum), itoa(snap.States), itoa(snap.Transitions))
		}
	}
	coldSrv.Shutdown()
	warmth.Note("each machine's curve flattens independently: late units ride tables earlier units (and other clients) built")

	t := &Table{
		ID: "SV",
		Title: fmt.Sprintf("compilation-server throughput on %s (%d workers, %d corpus passes per client per machine, GOMAXPROCS=%d)",
			label, workers, passes, runtime.GOMAXPROCS(0)),
		Header: []string{"mode", "clients", "jobs", "ns/node", "knodes/s", "vs-direct", "states", "trans"},
	}

	// Direct baseline: one client, sequential CompileUnit per machine on
	// its own warm selector, no server in the path.
	baseSels := make([]*repro.Selector, len(ms))
	for i, sm := range ms {
		sel, err := sm.m.NewSelector(repro.KindOnDemand, repro.Options{})
		if err != nil {
			return nil, nil, nil, err
		}
		baseSels[i] = sel
		for _, u := range sm.units {
			if _, err := sel.CompileUnit(context.Background(), u); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	start := time.Now()
	for p := 0; p < passes; p++ {
		for i, sm := range ms {
			for _, u := range sm.units {
				if _, err := baseSels[i].CompileUnit(context.Background(), u); err != nil {
					return nil, nil, nil, err
				}
			}
		}
	}
	baseElapsed := time.Since(start)
	baseNodes := int64(passes * nodesPerPass)
	baseNs := float64(baseElapsed.Nanoseconds()) / float64(baseNodes)
	baseStates, baseTrans := 0, 0
	for _, sel := range baseSels {
		snap := sel.Snapshot()
		baseStates += snap.States
		baseTrans += snap.Transitions
	}
	rows := []SVRow{{
		Grammar: label, Clients: 0, Workers: 0, Passes: passes,
		Jobs: int64(passes * jobsPerPass), Nodes: baseNodes,
		NsPerNode: baseNs, KNodesPerS: 1e6 / baseNs, Speedup: 1.0,
		States: baseStates, Trans: baseTrans,
	}}
	t.AddRow("direct", "1", itoa(passes*jobsPerPass), f1(baseNs), f1(1e6/baseNs), f2(1.0),
		itoa(baseStates), itoa(baseTrans))

	for _, clients := range clientCounts {
		row, err := runServerConfig(ms, label, clients, workers, passes, nodesPerPass, jobsPerPass)
		if err != nil {
			return nil, nil, nil, err
		}
		row.Speedup = baseNs / row.NsPerNode
		rows = append(rows, row)
		t.AddRow("server", itoa(clients), itoa(int(row.Jobs)), f1(row.NsPerNode), f1(row.KNodesPerS),
			f2(row.Speedup), itoa(row.States), itoa(row.Trans))
	}
	t.Note("vs-direct ≥ 1.00 means the server front end costs nothing over direct CompileUnit on warm engines")
	t.Note("per-client counters verified to sum exactly to the server-global counters in every configuration")
	if len(ms) > 1 {
		t.Note("mixed replay: client c walks the machines starting at offset (c+pass) mod machines, so the shared queue interleaves machines at every moment")
	}
	return rows, t, warmth, nil
}

// runServerConfig measures one (clients, workers) configuration on
// freshly warmed engines behind one server and checks the
// counter-accounting invariant. With several machines each client walks
// them in a rotated order, so concurrent clients hit different machines
// at the same time — the multi-machine queue under load.
func runServerConfig(ms []*svMachine, label string, clients, workers, passes, nodesPerPass, jobsPerPass int) (SVRow, error) {
	reg, err := svRegistry(ms)
	if err != nil {
		return SVRow{}, err
	}
	srv := server.New(reg, server.Config{Workers: workers})
	defer srv.Shutdown()
	// Warm up over one pass so the measured passes ride the fast path,
	// like the direct baseline.
	for _, sm := range ms {
		for _, u := range sm.units {
			if _, err := srv.CompileUnit(context.Background(), "warmup", sm.name, u); err != nil {
				return SVRow{}, err
			}
		}
	}

	errs := make([]error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := fmt.Sprintf("client-%d", c)
			for p := 0; p < passes; p++ {
				for k := range ms {
					sm := ms[(c+p+k)%len(ms)]
					for _, u := range sm.units {
						if _, err := srv.CompileUnit(context.Background(), name, sm.name, u); err != nil {
							errs[c] = err
							return
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return SVRow{}, err
		}
	}

	// Accounting invariant: per-client counters sum to the global,
	// machine mix notwithstanding.
	var merged metrics.Counters
	for _, name := range srv.Clients() {
		cc := srv.ClientCounters(name)
		merged.Add(&cc)
	}
	if global := srv.GlobalCounters(); merged != global {
		return SVRow{}, fmt.Errorf("SV %s clients=%d: per-client counters do not sum to global:\n  merged: %v\n  global: %v",
			label, clients, &merged, &global)
	}

	if SVTraceDump != "" {
		// Each configuration overwrites the dump; the file ends holding
		// the last (highest-clients) configuration's slowlog.
		if err := dumpSlowlog(SVTraceDump, fmt.Sprintf("server clients=%d", clients), srv.SlowlogEntries()); err != nil {
			return SVRow{}, fmt.Errorf("writing -trace-out: %w", err)
		}
	}

	nodes := int64(clients * passes * nodesPerPass)
	ns := float64(elapsed.Nanoseconds()) / float64(nodes)
	states, trans := 0, 0
	for _, snap := range reg.Snapshots() {
		states += snap.States
		trans += snap.Transitions
	}
	return SVRow{
		Grammar: label, Clients: clients, Workers: workers, Passes: passes,
		Jobs: int64(clients * passes * jobsPerPass), Nodes: nodes,
		NsPerNode: ns, KNodesPerS: 1e6 / ns,
		States: states, Trans: trans,
	}, nil
}
