package bench

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/faultinject"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/workload"
)

// The SV mid-traffic-swap scenario (iselbench -experiment SV -swap-at N)
// proves the hot-swap machinery safe the way PAPERS.md's CERTPLC wants
// properties proven: under injected faults, not just on the happy path.
// Each case replays multi-client traffic against a server and fires
// Registry.Swap after N jobs have resolved, mid-drain, then asserts the
// three swap invariants:
//
//  1. Zero failed requests — no job fails because of the cutover. Under
//     an injected fault, only the fault's own targets fail, each with
//     exactly its typed error (a panicking dynamic cost fn fails its one
//     job; a cancelled context fails with context.Canceled; a corrupt
//     blob fails nobody: the swap falls back to cold in-process tables
//     and the old version serves until they are ready).
//  2. Exact counter accounting across the version boundary — per-client
//     counters sum to the global counters even though jobs straddle two
//     table-set versions.
//  3. Warmth continuity — for persistence-capable engines the live
//     automaton transfers into the new version, so a post-swap
//     verification pass over the already-seen corpus misses zero times;
//     cold misses are reserved for genuinely new states.
//
// The budget case additionally pins the byte-budget rule: while two
// versions of the hot machine coexist (new serving + old draining), the
// registry evicts cold machines to stay under SetMaxTableBytes and never
// touches the in-drain old version.

// swapRow is one scenario case's outcome.
type swapRow struct {
	fault    string
	jobs     int64
	injected int64 // failures that match the injected fault exactly
	version  int   // serving version after the swap
	postMiss int64 // table misses of the post-swap verification pass (-1 = n/a)
	resident int   // peak resident bytes observed after cutover
	budget   int   // armed byte budget (0 = unarmed)
	note     string
}

// swapTraffic replays forests through srv from several clients and fires
// a scenario action once swapAt futures have resolved (mid-traffic, with
// jobs still queued and in flight).
type swapTraffic struct {
	srv      *server.Server
	machine  string
	forests  []*repro.Forest
	clients  int
	passes   int
	swapAt   int
	fire     func()           // runs in its own goroutine, exactly once
	classify func(error) bool // true = expected (injected) failure
}

// run drives the replay. It returns the number of resolved futures, the
// count of expected (classified) failures, and every unexpected failure
// message. The fire action is guaranteed to have completed.
func (tr *swapTraffic) run() (jobs, expected int64, unexpected []string) {
	total := tr.clients * tr.passes * len(tr.forests)
	swapAt := tr.swapAt
	if swapAt <= 0 || swapAt >= total {
		swapAt = total / 2
	}
	var resolved, injected atomic.Int64
	var mu sync.Mutex
	var bad []string
	fireDone := make(chan struct{})
	var fireOnce sync.Once
	fire := func() {
		fireOnce.Do(func() {
			go func() {
				defer close(fireDone)
				tr.fire()
			}()
		})
	}
	var wg sync.WaitGroup
	for c := 0; c < tr.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := fmt.Sprintf("client-%d", c)
			for p := 0; p < tr.passes; p++ {
				for _, f := range tr.forests {
					fut, err := tr.srv.Submit(context.Background(), client, tr.machine, f)
					if err == nil {
						_, err = fut.Wait()
					}
					n := resolved.Add(1)
					if err != nil {
						if tr.classify != nil && tr.classify(err) {
							injected.Add(1)
						} else {
							mu.Lock()
							bad = append(bad, err.Error())
							mu.Unlock()
						}
					}
					if int(n) >= swapAt {
						fire()
					}
				}
			}
		}(c)
	}
	wg.Wait()
	fire() // backstop: total traffic smaller than swapAt still swaps
	<-fireDone
	return resolved.Load(), injected.Load(), bad
}

// checkAccounting asserts the per-client counters sum exactly to the
// server-global counters — the invariant that must survive the cutover.
func checkAccounting(srv *server.Server, fault string) error {
	var merged metrics.Counters
	for _, name := range srv.Clients() {
		cc := srv.ClientCounters(name)
		merged.Add(&cc)
	}
	if global := srv.GlobalCounters(); merged != global {
		return fmt.Errorf("SV.swap %s: per-client counters do not sum to global across the version boundary:\n  merged: %v\n  global: %v",
			fault, &merged, &global)
	}
	return nil
}

// machineVersion reads one machine's serving status from the registry.
func machineVersion(reg *repro.Registry, name string) (repro.MachineStatus, error) {
	for _, st := range reg.Status() {
		if st.Machine == name {
			return st, nil
		}
	}
	return repro.MachineStatus{}, fmt.Errorf("machine %q not in registry status", name)
}

// postVerify replays the full corpus once as a dedicated client and
// returns that client's table misses — the warmth-continuity probe.
func postVerify(srv *server.Server, machine string, forests []*repro.Forest) (int64, error) {
	const client = "post-verify"
	for _, f := range forests {
		fut, err := srv.Submit(context.Background(), client, machine, f)
		if err != nil {
			return 0, fmt.Errorf("post-verify submit: %w", err)
		}
		if _, err := fut.Wait(); err != nil {
			return 0, fmt.Errorf("post-verify job: %w", err)
		}
	}
	return srv.ClientCounters(client).TableMisses, nil
}

// corpusForests lowers the whole MinC corpus on m, one forest per
// function — the per-job granularity the server replays at.
func corpusForests(m *repro.Machine) ([]*repro.Forest, error) {
	var fs []*repro.Forest
	for _, p := range workload.All() {
		u, err := m.CompileMinC(p.Src)
		if err != nil {
			return nil, err
		}
		for _, fn := range u.Funcs {
			fs = append(fs, fn.Forest)
		}
	}
	return fs, nil
}

// RunServerSwap runs the mid-traffic-swap scenario: the baseline swap
// under a byte budget, then one case per injected fault. Any violated
// invariant is returned as an error (iselbench exits nonzero — the CI
// smoke gate). swapAt <= 0 swaps at the traffic's halfway point.
func RunServerSwap(gname string, clients, workers, passes, swapAt int) (*Table, error) {
	if gname == "" {
		gname = "x86"
	}
	if clients <= 0 {
		clients = 4
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if passes <= 0 {
		passes = 6
	}
	other := "jit64"
	if gname == other {
		other = "mips"
	}

	t := &Table{
		ID: "SV.swap",
		Title: fmt.Sprintf("zero-downtime hot swap under traffic and injected faults on %s (%d clients, %d workers, %d passes, swap at job %d)",
			gname, clients, workers, passes, swapAt),
		Header: []string{"fault", "jobs", "injected-fails", "version", "post-miss", "resident", "budget", "note"},
	}

	cases := []struct {
		name string
		run  func() (swapRow, error)
	}{
		{"none+budget", func() (swapRow, error) { return swapBudgetCase(gname, other, clients, workers, passes, swapAt) }},
		{"corrupt-blob", func() (swapRow, error) { return swapCorruptBlobCase(gname, clients, workers, passes, swapAt) }},
		{"dyn-panic", func() (swapRow, error) { return swapDynCase(true, clients, workers, passes, swapAt) }},
		{"dyn-slow", func() (swapRow, error) { return swapDynCase(false, clients, workers, passes, swapAt) }},
		{"cancel-race", func() (swapRow, error) { return swapCancelCase(gname, clients, workers, passes, swapAt) }},
		{"queue-sat", func() (swapRow, error) { return swapQueueSatCase(gname, clients, passes, swapAt) }},
	}
	for _, c := range cases {
		row, err := c.run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		postMiss := itoa(int(row.postMiss))
		if row.postMiss < 0 {
			postMiss = "n/a"
		}
		budget := itoa(row.budget)
		if row.budget == 0 {
			budget = "-"
		}
		t.AddRow(row.fault, itoa(int(row.jobs)), itoa(int(row.injected)), itoa(row.version),
			postMiss, itoa(row.resident), budget, row.note)
	}
	t.Note("invariants checked per case: zero unexpected failures, per-client counters sum to global across the cutover, version bumped, draining old version never evicted")
	t.Note("post-miss = table misses of a full post-swap corpus replay: 0 means the live warmth transferred into the new version")
	return t, nil
}

// swapBudgetCase: plain swap under a byte budget sized so that the swap's
// two coexisting versions of the hot machine force the cold machine out.
func swapBudgetCase(gname, other string, clients, workers, passes, swapAt int) (swapRow, error) {
	ms, err := loadSVMachines([]string{gname, other})
	if err != nil {
		return swapRow{}, err
	}
	reg, err := svRegistry(ms)
	if err != nil {
		return swapRow{}, err
	}
	reg.SetLogger(func(string, ...any) {})
	srv := server.New(reg, server.Config{Workers: workers})
	defer srv.Shutdown()
	for _, sm := range ms {
		for _, u := range sm.units {
			if _, err := srv.CompileUnit(context.Background(), "warmup", sm.name, u); err != nil {
				return swapRow{}, err
			}
		}
	}
	snaps := reg.Snapshots()
	mainBytes, otherBytes := snaps[gname].MemoryBytes, snaps[other].MemoryBytes
	// Room for two warm versions of the hot machine, but not for the cold
	// machine beside them: the swap must evict it to fit. Half the cold
	// machine's bytes of slack absorbs allocator jitter in the restored
	// copy (same states, slightly different slab sizes) without letting
	// the cold machine squeak through.
	budget := 2*mainBytes + otherBytes/2
	reg.SetMaxTableBytes(budget)

	forests, err := corpusForests(ms[0].m)
	if err != nil {
		return swapRow{}, err
	}
	var swapErr, drainErr error
	var peak atomic.Int64
	sampleStop := make(chan struct{})
	var samplerWG sync.WaitGroup
	tr := &swapTraffic{
		srv: srv, machine: gname, forests: forests,
		clients: clients, passes: passes, swapAt: swapAt,
		fire: func() {
			// Hold a lease across the cutover — a job in flight on the old
			// version — so the drain window (both versions resident) is
			// observable deterministically, however fast the worker pool
			// drains the queue.
			lease, err := reg.Acquire(gname)
			if err != nil {
				swapErr = err
				return
			}
			oldVersion := lease.Version
			swapErr = srv.Swap(gname)
			if swapErr == nil {
				// Mid-drain: v(old) held by our lease, v(new) serving. The
				// budget must already hold, satisfied by evicting the cold
				// machine — never the draining version our lease pins.
				st, err := machineVersion(reg, gname)
				switch {
				case err != nil:
					drainErr = err
				case st.Version != oldVersion+1:
					drainErr = fmt.Errorf("serving version = %d mid-drain, want %d", st.Version, oldVersion+1)
				case st.Draining == 0:
					drainErr = fmt.Errorf("old version v%d not draining despite a live lease", oldVersion)
				}
				if drainErr == nil {
					if ost, err := machineVersion(reg, other); err != nil {
						drainErr = err
					} else if ost.Constructed {
						drainErr = fmt.Errorf("cold machine %s survived the budget squeeze; the swap must evict cold machines, never the draining version", other)
					}
				}
				if rb := reg.ResidentBytes(); drainErr == nil && rb > budget {
					drainErr = fmt.Errorf("resident bytes = %d mid-drain with two versions live, budget %d", rb, budget)
				}
			}
			lease.Release()
			// Sample resident bytes through the rest of the drain window.
			samplerWG.Add(1)
			go func() {
				defer samplerWG.Done()
				for {
					if rb := int64(reg.ResidentBytes()); rb > peak.Load() {
						peak.Store(rb)
					}
					select {
					case <-sampleStop:
						return
					case <-time.After(200 * time.Microsecond):
					}
				}
			}()
		},
	}
	jobs, _, bad := tr.run()
	close(sampleStop)
	samplerWG.Wait()
	if swapErr != nil {
		return swapRow{}, fmt.Errorf("swap failed: %w", swapErr)
	}
	if drainErr != nil {
		return swapRow{}, drainErr
	}
	if len(bad) > 0 {
		return swapRow{}, fmt.Errorf("%d jobs failed across the cutover, e.g. %s", len(bad), bad[0])
	}
	if err := checkAccounting(srv, "none+budget"); err != nil {
		return swapRow{}, err
	}
	st, err := machineVersion(reg, gname)
	if err != nil {
		return swapRow{}, err
	}
	if st.Version != 2 {
		return swapRow{}, fmt.Errorf("serving version = %d after one swap, want 2", st.Version)
	}
	if p := int(peak.Load()); p > budget {
		return swapRow{}, fmt.Errorf("resident bytes peaked at %d after cutover, budget %d", p, budget)
	}
	miss, err := postVerify(srv, gname, forests)
	if err != nil {
		return swapRow{}, err
	}
	if miss != 0 {
		return swapRow{}, fmt.Errorf("post-swap replay missed %d times; live warmth must transfer into the new version", miss)
	}
	return swapRow{
		fault: "none", jobs: jobs, version: st.Version, postMiss: miss,
		resident: int(peak.Load()), budget: budget,
		note: fmt.Sprintf("cold %s evicted to fit both %s versions", other, gname),
	}, nil
}

// swapCorruptBlobCase: the machine serves from an iselgen blob; the blob
// is truncated on disk before the swap re-reads it. The swap must
// quarantine the corrupt file, fall back to cold in-process tables, and
// fail no request — the corrupt-artifact deployment that must not take
// the machine down.
func swapCorruptBlobCase(gname string, clients, workers, passes, swapAt int) (swapRow, error) {
	m, err := repro.LoadMachine(gname)
	if err != nil {
		return swapRow{}, err
	}
	res, err := gen.CompileHybrid(m.Grammar, gen.Config{})
	if err != nil {
		return swapRow{}, err
	}
	dir, err := os.MkdirTemp("", "svswap")
	if err != nil {
		return swapRow{}, err
	}
	defer os.RemoveAll(dir)
	blobPath := filepath.Join(dir, gname+".isel")
	if err := os.WriteFile(blobPath, res.Blob, 0o644); err != nil {
		return swapRow{}, err
	}

	reg := repro.NewRegistry()
	var logMu sync.Mutex
	var logged []string
	reg.SetLogger(func(format string, args ...any) {
		logMu.Lock()
		logged = append(logged, fmt.Sprintf(format, args...))
		logMu.Unlock()
	})
	if err := reg.AddMachine(m, repro.KindHybrid, repro.Options{PreloadPath: blobPath}); err != nil {
		return swapRow{}, err
	}
	srv := server.New(reg, server.Config{Workers: workers})
	defer srv.Shutdown()
	forests, err := corpusForests(m)
	if err != nil {
		return swapRow{}, err
	}

	var swapErr error
	tr := &swapTraffic{
		srv: srv, machine: gname, forests: forests,
		clients: clients, passes: passes, swapAt: swapAt,
		fire: func() {
			// The deployment artifact goes bad on disk; the swap re-reads it.
			if err := os.WriteFile(blobPath, res.Blob[:len(res.Blob)/3], 0o644); err != nil {
				swapErr = err
				return
			}
			swapErr = srv.Swap(gname)
		},
	}
	jobs, _, bad := tr.run()
	if swapErr != nil {
		return swapRow{}, fmt.Errorf("swap with a corrupt blob must fall back to cold construction, got: %w", swapErr)
	}
	if len(bad) > 0 {
		return swapRow{}, fmt.Errorf("%d jobs failed across the corrupt-blob swap, e.g. %s", len(bad), bad[0])
	}
	if err := checkAccounting(srv, "corrupt-blob"); err != nil {
		return swapRow{}, err
	}
	if _, err := os.Stat(blobPath + ".bad"); err != nil {
		return swapRow{}, fmt.Errorf("corrupt blob must be quarantined to %s.bad: %w", blobPath, err)
	}
	logMu.Lock()
	quarantineLogged := false
	for _, l := range logged {
		if strings.Contains(l, "quarantined") {
			quarantineLogged = true
		}
	}
	logMu.Unlock()
	if !quarantineLogged {
		return swapRow{}, fmt.Errorf("quarantine must be logged")
	}
	st, err := machineVersion(reg, gname)
	if err != nil {
		return swapRow{}, err
	}
	if st.Version != 2 {
		return swapRow{}, fmt.Errorf("serving version = %d, want 2 (swap served from cold fallback tables)", st.Version)
	}
	return swapRow{
		fault: "corrupt-blob", jobs: jobs, version: st.Version, postMiss: -1,
		resident: reg.ResidentBytes(),
		note:     "blob quarantined to .bad; swap fell back to in-process tables",
	}, nil
}

// swapDynCase: a grammar-supplied dynamic cost function misbehaves
// mid-drain — panicking exactly once (panic=true: exactly one job fails,
// with the contained-panic error) or stalling on every call for a while
// (panic=false: jobs slow down, none fail).
func swapDynCase(doPanic bool, clients, workers, passes, swapAt int) (swapRow, error) {
	env := repro.DynEnv{"gate": func(n repro.DynNode) repro.Cost {
		// Harness-side injection seam: inert unless the scenario arms it.
		faultinject.Fire(faultinject.DynCost)
		return 1
	}}
	m, err := repro.NewMachine("swapdyn", `%name swapdyn
%start stmt
%term Asgn(2) Reg(0) Cnst(0)
reg: Reg (0)
reg: Cnst (dyn gate)
stmt: Asgn(reg, reg) (1) "mov %1, (%0)"
`, env)
	if err != nil {
		return swapRow{}, err
	}
	var forests []*repro.Forest
	for i := 0; i < 24; i++ {
		f, err := m.ParseTree(fmt.Sprintf("Asgn(Reg[%d], Cnst[%d])", i%4, i))
		if err != nil {
			return swapRow{}, err
		}
		forests = append(forests, f)
	}
	reg := repro.NewRegistry()
	reg.SetLogger(func(string, ...any) {})
	if err := reg.AddMachine(m, repro.KindOnDemand, repro.Options{}); err != nil {
		return swapRow{}, err
	}
	srv := server.New(reg, server.Config{Workers: workers})
	defer srv.Shutdown()
	for _, f := range forests { // warm before measuring the swap
		fut, err := srv.Submit(context.Background(), "warmup", "swapdyn", f)
		if err != nil {
			return swapRow{}, err
		}
		if _, err := fut.Wait(); err != nil {
			return swapRow{}, err
		}
	}

	fault := faultinject.Fault{Delay: 300 * time.Microsecond, Count: 64}
	faultName := "dyn-slow"
	if doPanic {
		fault = faultinject.Fault{Panic: "injected dyn-cost panic", Count: 1}
		faultName = "dyn-panic"
	}
	classify := func(err error) bool {
		return doPanic && strings.Contains(err.Error(), "compile panicked") &&
			strings.Contains(err.Error(), "injected dyn-cost panic")
	}
	var disarm func()
	var swapErr, probeErr error
	tr := &swapTraffic{
		srv: srv, machine: "swapdyn", forests: forests,
		clients: clients, passes: passes, swapAt: swapAt,
		fire: func() {
			disarm = faultinject.Arm(faultinject.DynCost, fault)
			swapErr = srv.Swap("swapdyn")
			// Probe: these one-node jobs resolve in microseconds, so the
			// remaining traffic can drain before Arm even runs. Submitting
			// one job ourselves after arming guarantees at least one dyn
			// evaluation meets the fault, however the scheduling falls.
			fut, err := srv.Submit(context.Background(), "probe", "swapdyn", forests[0])
			if err == nil {
				_, err = fut.Wait()
			}
			probeErr = err
		},
		classify: classify,
	}
	jobs, injected, bad := tr.run()
	fired := faultinject.Fired(faultinject.DynCost)
	if disarm != nil {
		disarm()
	}
	if swapErr != nil {
		return swapRow{}, fmt.Errorf("swap failed: %w", swapErr)
	}
	if probeErr != nil {
		if !classify(probeErr) {
			return swapRow{}, fmt.Errorf("probe job failed beyond the injected fault: %v", probeErr)
		}
		injected++ // the probe ate the one armed panic
	}
	if len(bad) > 0 {
		return swapRow{}, fmt.Errorf("%d jobs failed beyond the injected fault, e.g. %s", len(bad), bad[0])
	}
	if doPanic {
		if injected != 1 || fired != 1 {
			return swapRow{}, fmt.Errorf("injected panic must fail exactly its one job: %d jobs failed, fault fired %d times", injected, fired)
		}
	} else if injected != 0 {
		return swapRow{}, fmt.Errorf("slow cost fns must not fail jobs, %d did", injected)
	}
	if err := checkAccounting(srv, faultName); err != nil {
		return swapRow{}, err
	}
	st, err := machineVersion(reg, "swapdyn")
	if err != nil {
		return swapRow{}, err
	}
	if st.Version != 2 {
		return swapRow{}, fmt.Errorf("serving version = %d, want 2", st.Version)
	}
	miss, err := postVerify(srv, "swapdyn", forests)
	if err != nil {
		return swapRow{}, err
	}
	if miss != 0 {
		return swapRow{}, fmt.Errorf("post-swap replay missed %d times, want 0 (dyn transitions transfer too)", miss)
	}
	note := "every job slow mid-drain, none failed"
	if doPanic {
		note = "exactly the panicked job failed, with the contained-panic error"
	}
	return swapRow{
		fault: faultName, jobs: jobs, injected: injected, version: st.Version,
		postMiss: miss, resident: reg.ResidentBytes(), note: note,
	}, nil
}

// swapCancelCase: a burst of submissions whose contexts are cancelled
// immediately races the cutover. The cancelled jobs resolve with their
// own ctx.Err(); nobody else fails; accounting stays exact even though
// the cancelled work straddles two versions.
func swapCancelCase(gname string, clients, workers, passes, swapAt int) (swapRow, error) {
	ms, err := loadSVMachines([]string{gname})
	if err != nil {
		return swapRow{}, err
	}
	reg, err := svRegistry(ms)
	if err != nil {
		return swapRow{}, err
	}
	reg.SetLogger(func(string, ...any) {})
	srv := server.New(reg, server.Config{Workers: workers})
	defer srv.Shutdown()
	forests, err := corpusForests(ms[0].m)
	if err != nil {
		return swapRow{}, err
	}
	for _, f := range forests {
		fut, err := srv.Submit(context.Background(), "warmup", gname, f)
		if err != nil {
			return swapRow{}, err
		}
		if _, err := fut.Wait(); err != nil {
			return swapRow{}, err
		}
	}

	var swapErr error
	var cancelBad []string
	var cancelled atomic.Int64
	tr := &swapTraffic{
		srv: srv, machine: gname, forests: forests,
		clients: clients, passes: passes, swapAt: swapAt,
		fire: func() {
			// Cancellation racing cutover: fire the burst and the swap
			// concurrently, then collect both.
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				var futWG sync.WaitGroup
				for i := 0; i < 32; i++ {
					ctx, cancel := context.WithCancel(context.Background())
					fut, err := srv.Submit(ctx, "canceller", gname, forests[i%len(forests)])
					if err != nil {
						cancel()
						if !errors.Is(err, context.Canceled) {
							cancelBad = append(cancelBad, err.Error())
						}
						continue
					}
					cancel()
					futWG.Add(1)
					go func() {
						defer futWG.Done()
						if _, err := fut.Wait(); err != nil {
							if errors.Is(err, context.Canceled) {
								cancelled.Add(1)
							} else {
								cancelBad = append(cancelBad, err.Error())
							}
						}
					}()
				}
				futWG.Wait()
			}()
			swapErr = srv.Swap(gname)
			wg.Wait()
		},
	}
	jobs, _, bad := tr.run()
	if swapErr != nil {
		return swapRow{}, fmt.Errorf("swap failed: %w", swapErr)
	}
	if len(bad) > 0 {
		return swapRow{}, fmt.Errorf("%d steady jobs failed across the cutover, e.g. %s", len(bad), bad[0])
	}
	if len(cancelBad) > 0 {
		return swapRow{}, fmt.Errorf("cancelled submissions must fail with context.Canceled only, got e.g. %s", cancelBad[0])
	}
	if err := checkAccounting(srv, "cancel-race"); err != nil {
		return swapRow{}, err
	}
	st, err := machineVersion(reg, gname)
	if err != nil {
		return swapRow{}, err
	}
	if st.Version != 2 {
		return swapRow{}, fmt.Errorf("serving version = %d, want 2", st.Version)
	}
	miss, err := postVerify(srv, gname, forests)
	if err != nil {
		return swapRow{}, err
	}
	if miss != 0 {
		return swapRow{}, fmt.Errorf("post-swap replay missed %d times, want 0", miss)
	}
	return swapRow{
		fault: "cancel-race", jobs: jobs, injected: cancelled.Load(), version: st.Version,
		postMiss: miss, resident: reg.ResidentBytes(),
		note: fmt.Sprintf("%d racing submissions cancelled cleanly, steady traffic untouched", cancelled.Load()),
	}, nil
}

// swapQueueSatCase: the swap lands while the work queue is saturated
// (depth 1, blocking backpressure). Saturation must cost latency only —
// queued jobs drain on the version they resolved, none fail.
func swapQueueSatCase(gname string, clients, passes, swapAt int) (swapRow, error) {
	ms, err := loadSVMachines([]string{gname})
	if err != nil {
		return swapRow{}, err
	}
	reg, err := svRegistry(ms)
	if err != nil {
		return swapRow{}, err
	}
	reg.SetLogger(func(string, ...any) {})
	srv := server.New(reg, server.Config{Workers: 2, QueueDepth: 1})
	defer srv.Shutdown()
	forests, err := corpusForests(ms[0].m)
	if err != nil {
		return swapRow{}, err
	}
	for _, f := range forests {
		fut, err := srv.Submit(context.Background(), "warmup", gname, f)
		if err != nil {
			return swapRow{}, err
		}
		if _, err := fut.Wait(); err != nil {
			return swapRow{}, err
		}
	}
	if passes > 3 {
		passes = 3 // a depth-1 queue is deliberately slow; bound the case
	}
	var swapErr error
	tr := &swapTraffic{
		srv: srv, machine: gname, forests: forests,
		clients: clients, passes: passes, swapAt: swapAt,
		fire: func() { swapErr = srv.Swap(gname) },
	}
	jobs, _, bad := tr.run()
	if swapErr != nil {
		return swapRow{}, fmt.Errorf("swap failed: %w", swapErr)
	}
	if len(bad) > 0 {
		return swapRow{}, fmt.Errorf("%d jobs failed under queue saturation, e.g. %s", len(bad), bad[0])
	}
	if err := checkAccounting(srv, "queue-sat"); err != nil {
		return swapRow{}, err
	}
	st, err := machineVersion(reg, gname)
	if err != nil {
		return swapRow{}, err
	}
	if st.Version != 2 {
		return swapRow{}, fmt.Errorf("serving version = %d, want 2", st.Version)
	}
	miss, err := postVerify(srv, gname, forests)
	if err != nil {
		return swapRow{}, err
	}
	if miss != 0 {
		return swapRow{}, fmt.Errorf("post-swap replay missed %d times, want 0", miss)
	}
	return swapRow{
		fault: "queue-sat", jobs: jobs, version: st.Version, postMiss: miss,
		resident: reg.ResidentBytes(),
		note:     "depth-1 queue saturated through the cutover; latency only, no failures",
	}, nil
}
