package bench

import (
	"strings"
	"testing"
)

// These tests pin the qualitative claims the experiments must show (see
// DESIGN.md §3): who wins, in which direction, and that the tables render.

func TestE1Shapes(t *testing.T) {
	rows, table, err := RunE1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AllGrammars) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NormRules < r.SrcRules {
			t.Errorf("%s: normalization cannot shrink the rule count (%d < %d)",
				r.Grammar, r.NormRules, r.SrcRules)
		}
		if r.FixedStates <= 0 || r.FixedTrans <= 0 || r.TableBytes <= 0 {
			t.Errorf("%s: empty automaton stats: %+v", r.Grammar, r)
		}
		if r.Grammar != "demo" && r.DynRules == 0 {
			t.Errorf("%s: machine descriptions must carry dynamic rules", r.Grammar)
		}
	}
	if !strings.Contains(table.String(), "x86") {
		t.Error("table missing x86 row")
	}
}

func TestE2Shapes(t *testing.T) {
	rows, _, err := RunE2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The central claim: workloads touch a strict subset of the full
		// automaton.
		if r.ODFixedStates >= r.FullStates {
			t.Errorf("%s: on-demand fixed states %d must be < full %d",
				r.Grammar, r.ODFixedStates, r.FullStates)
		}
		if r.FractionFixed <= 0 || r.FractionFixed >= 1 {
			t.Errorf("%s: fraction %f out of range", r.Grammar, r.FractionFixed)
		}
		if r.ODDynStates < r.ODFixedStates {
			t.Errorf("%s: dynamic signatures cannot reduce the state count (%d < %d)",
				r.Grammar, r.ODDynStates, r.ODFixedStates)
		}
	}
}

func TestE3Converges(t *testing.T) {
	for _, g := range []string{"x86", "jit64"} {
		points, _, err := RunE3(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(points) < 8 {
			t.Fatalf("%s: too few corpus points", g)
		}
		// States must be nondecreasing and the curve must flatten: the
		// second half of the corpus adds less than the first half.
		firstHalf := points[len(points)/2].States
		total := points[len(points)-1].States
		if total < firstHalf {
			t.Fatalf("%s: states decreased", g)
		}
		if total-firstHalf >= firstHalf {
			t.Errorf("%s: no convergence: first half %d states, second half added %d",
				g, firstHalf, total-firstHalf)
		}
		for i := 1; i < len(points); i++ {
			if points[i].States < points[i-1].States || points[i].Nodes <= points[i-1].Nodes {
				t.Errorf("%s: non-monotone curve at %d", g, i)
			}
		}
	}
}

func TestE4Shapes(t *testing.T) {
	rows, _, err := RunE4("x86")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 8 {
		t.Fatal("too few programs")
	}
	for _, r := range rows {
		// DP must be the most expensive labeler per node; warm on-demand
		// must sit near the static lower bound; cold in between.
		if r.DPWork <= r.ODWarmWork {
			t.Errorf("%s: dp work %f must exceed warm od %f", r.Program, r.DPWork, r.ODWarmWork)
		}
		if r.ODColdWork <= r.ODWarmWork {
			t.Errorf("%s: cold %f must exceed warm %f", r.Program, r.ODColdWork, r.ODWarmWork)
		}
		if r.ODColdWork >= r.DPWork {
			t.Errorf("%s: cold on-demand %f must still beat dp %f (it runs the DP only on misses)",
				r.Program, r.ODColdWork, r.DPWork)
		}
		if r.StaticWork != 1.0 {
			t.Errorf("%s: static must be exactly one probe per node, got %f", r.Program, r.StaticWork)
		}
		if r.ODWarmWork > 3.0 {
			t.Errorf("%s: warm on-demand work %f too far from the lookup bound", r.Program, r.ODWarmWork)
		}
		if r.WorkRatio < 2 {
			t.Errorf("%s: speedup %f implausibly small", r.Program, r.WorkRatio)
		}
	}
}

func TestE5Figure(t *testing.T) {
	rows, fig, err := RunE5("jit64")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || !strings.Contains(fig, "#") {
		t.Error("empty figure")
	}
}

func TestE6Shapes(t *testing.T) {
	rows, _, err := RunE6()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.CostsEqual {
			t.Errorf("%s: engines disagreed on %d derivations", r.Grammar, r.DerivsChecked)
		}
		if r.StateGrowth < 1.0 || r.StateGrowth > 3.0 {
			t.Errorf("%s: dynamic state growth %f outside the 'modest' band", r.Grammar, r.StateGrowth)
		}
		if r.ODWarmWork >= r.DPWork {
			t.Errorf("%s: warm on-demand %f must beat dp %f with dynamic rules active",
				r.Grammar, r.ODWarmWork, r.DPWork)
		}
		if r.DynPerNode <= 0 {
			t.Errorf("%s: corpus never hit a dynamic rule", r.Grammar)
		}
	}
}

func TestE7Shapes(t *testing.T) {
	for _, g := range []string{"x86", "mips"} {
		rows, _, err := RunE7(g)
		if err != nil {
			t.Fatal(err)
		}
		better := 0
		for _, r := range rows {
			// Removing rules can never improve optimal cost.
			if r.CostRatio < 1.0 {
				t.Errorf("%s/%s: stripping rules made code cheaper (%f)", g, r.Program, r.CostRatio)
			}
			if r.CostRatio > 1.0 {
				better++
			}
		}
		if better < len(rows)/2 {
			t.Errorf("%s: dynamic rules improved only %d of %d programs", g, better, len(rows))
		}
	}
}

func TestE8Shapes(t *testing.T) {
	rows, _, err := RunE8()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.FullBytes <= 0 || r.ODBytes <= 0 {
			t.Errorf("%s: zero-size tables", r.Grammar)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	tab, err := RunAblationDeltaCap()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(AllGrammars) {
		t.Error("delta-cap ablation incomplete")
	}
	tab2, err := RunAblationHash("jit64")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab2.Rows) != 2 {
		t.Error("hash ablation incomplete")
	}
}

func TestSVShapes(t *testing.T) {
	rows, table, warmth, err := RunServer([]string{"jit64"}, []int{1, 2}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // direct baseline + two client counts
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].Clients != 0 || rows[0].Speedup != 1.0 {
		t.Errorf("first row must be the direct baseline: %+v", rows[0])
	}
	for _, r := range rows[1:] {
		if r.Jobs != int64(r.Clients)*rows[0].Jobs/int64(rows[0].Passes)*int64(r.Passes) {
			t.Errorf("clients=%d: jobs=%d inconsistent with corpus size", r.Clients, r.Jobs)
		}
		// Identical traffic on identically warmed engines: the automaton
		// must end at the same size in every configuration.
		if r.States != rows[0].States || r.Trans != rows[0].Trans {
			t.Errorf("clients=%d: warmth %d/%d differs from direct %d/%d",
				r.Clients, r.States, r.Trans, rows[0].States, rows[0].Trans)
		}
		if r.NsPerNode <= 0 {
			t.Errorf("clients=%d: no throughput measured", r.Clients)
		}
	}
	if len(warmth.Rows) == 0 || len(table.Rows) != 3 {
		t.Error("tables incomplete")
	}
}

// TestSVMixedMachines: the mixed replay drives several machines through
// one server; per-machine warmth must match a single-machine run (each
// engine sees exactly its own traffic) and the accounting invariant holds
// across the machine mix.
func TestSVMixedMachines(t *testing.T) {
	rows, table, warmth, err := RunServer([]string{"jit64", "mips"}, []int{2}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want direct + one client count", len(rows))
	}
	if rows[0].Grammar != "jit64+mips" {
		t.Errorf("label = %q", rows[0].Grammar)
	}
	// Summed warmth must equal the direct baseline's: identical traffic,
	// identically warmed engines, machine by machine.
	if rows[1].States != rows[0].States || rows[1].Trans != rows[0].Trans {
		t.Errorf("mixed warmth %d/%d differs from direct %d/%d",
			rows[1].States, rows[1].Trans, rows[0].States, rows[0].Trans)
	}
	// The warmth curve covers both machines.
	seen := map[string]bool{}
	for _, r := range warmth.Rows {
		seen[r[0]] = true
	}
	if !seen["jit64"] || !seen["mips"] {
		t.Errorf("warmth curve machines = %v, want jit64 and mips", seen)
	}
	if len(table.Rows) != 2 {
		t.Error("throughput table incomplete")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "T", Title: "title", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	tab.Note("a note")
	s := tab.String()
	for _, want := range []string{"T — title", "a", "bb", "333", "note: a note", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
	bars := Bars("fig", []string{"x", "yy"}, []float64{1, 2}, "u")
	if !strings.Contains(bars, "##") {
		t.Errorf("bars missing marks: %s", bars)
	}
}
