package bench

import (
	"fmt"
	"time"

	"repro/internal/automaton"
	"repro/internal/core"
	"repro/internal/dp"
	"repro/internal/emit"
	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/md"
	"repro/internal/metrics"
	"repro/internal/reduce"
	"repro/internal/workload"
)

// CorpusGrammars are the machine descriptions the MinC corpus runs on
// (demo lacks the generic IR operators and only appears in E1).
var CorpusGrammars = []string{"x86", "mips", "sparc", "alpha", "jit64"}

// AllGrammars includes the running example.
var AllGrammars = []string{"demo", "x86", "mips", "sparc", "alpha", "jit64"}

// unit is one workload program's forests on one grammar.
type unit struct {
	name    string
	forests []*ir.Forest
	nodes   int
}

func loadCorpus(g *grammar.Grammar) []unit {
	cs := workload.MustCompileAll(g)
	units := make([]unit, len(cs))
	for i, c := range cs {
		units[i] = unit{name: c.Program.Name, forests: c.Forests(), nodes: c.NumNodes()}
	}
	return units
}

func totalNodes(units []unit) int {
	n := 0
	for _, u := range units {
		n += u.nodes
	}
	return n
}

// ---------------------------------------------------------------------------
// E1 — grammar and full-automaton statistics

// E1Row is one grammar's statistics.
type E1Row struct {
	Grammar     string
	Ops         int
	Nonterms    int
	SrcRules    int
	NormRules   int
	ChainRules  int
	DynRules    int
	FixedStates int // offline automaton states (dynamic rules stripped)
	FixedTrans  int
	TableBytes  int
	GenTime     time.Duration
}

// RunE1 regenerates the grammar-statistics table.
func RunE1() ([]E1Row, *Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "grammar and offline-automaton statistics (offline generation must strip dynamic rules)",
		Header: []string{"grammar", "ops", "nonterms", "rules", "normalized", "chain", "dynamic",
			"fixed-states", "fixed-trans", "table-bytes", "gen-time"},
	}
	var rows []E1Row
	for _, name := range AllGrammars {
		d, err := md.Load(name)
		if err != nil {
			return nil, nil, err
		}
		st := d.Grammar.ComputeStats()
		fixed, err := d.Grammar.StripDynamic()
		if err != nil {
			return nil, nil, err
		}
		start := time.Now()
		a, err := automaton.Generate(fixed, automaton.StaticConfig{})
		if err != nil {
			return nil, nil, err
		}
		gen := time.Since(start)
		row := E1Row{
			Grammar: name, Ops: st.Operators, Nonterms: st.Nonterminals,
			SrcRules: st.SourceRules, NormRules: st.NormalizedRules,
			ChainRules: st.ChainRules, DynRules: st.DynamicRules,
			FixedStates: a.NumStates(), FixedTrans: a.NumTransitions(),
			TableBytes: a.MemoryBytes(), GenTime: gen,
		}
		rows = append(rows, row)
		t.AddRow(name, itoa(row.Ops), itoa(row.Nonterms), itoa(row.SrcRules), itoa(row.NormRules),
			itoa(row.ChainRules), itoa(row.DynRules), itoa(row.FixedStates), itoa(row.FixedTrans),
			itoa(row.TableBytes), row.GenTime.Round(10*time.Microsecond).String())
	}
	t.Note("dynamic rules cannot appear in an offline automaton; fixed-* columns describe the stripped grammar")
	return rows, t, nil
}

// ---------------------------------------------------------------------------
// E2 — on-demand automaton coverage after compiling the corpus

// E2Row reports how much of the automaton a workload actually touches.
type E2Row struct {
	Grammar       string
	CorpusNodes   int
	FullStates    int     // offline automaton of the stripped grammar
	ODFixedStates int     // on-demand states on the same stripped grammar
	FractionFixed float64 // ODFixedStates / FullStates
	ODDynStates   int     // on-demand states with dynamic rules active
	ODTransitions int
}

// RunE2 regenerates the coverage table.
func RunE2() ([]E2Row, *Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "on-demand automaton size after compiling the MinC corpus vs full offline automaton",
		Header: []string{"grammar", "IR-nodes", "full-states", "od-states(fixed)", "fraction",
			"od-states(dyn)", "od-transitions"},
	}
	var rows []E2Row
	for _, name := range CorpusGrammars {
		d := md.MustLoad(name)
		fixed, err := d.Grammar.StripDynamic()
		if err != nil {
			return nil, nil, err
		}
		full, err := automaton.Generate(fixed, automaton.StaticConfig{})
		if err != nil {
			return nil, nil, err
		}
		// On-demand over the stripped grammar: strict subset of full.
		eFixed, err := core.New(fixed, nil, core.Config{})
		if err != nil {
			return nil, nil, err
		}
		for _, u := range loadCorpus(fixed) {
			for _, f := range u.forests {
				eFixed.Label(f)
			}
		}
		// On-demand over the real grammar with dynamic rules.
		eDyn, err := core.New(d.Grammar, d.Env, core.Config{})
		if err != nil {
			return nil, nil, err
		}
		units := loadCorpus(d.Grammar)
		for _, u := range units {
			for _, f := range u.forests {
				eDyn.Label(f)
			}
		}
		row := E2Row{
			Grammar: name, CorpusNodes: totalNodes(units),
			FullStates: full.NumStates(), ODFixedStates: eFixed.NumStates(),
			FractionFixed: float64(eFixed.NumStates()) / float64(full.NumStates()),
			ODDynStates:   eDyn.NumStates(), ODTransitions: eDyn.NumTransitions(),
		}
		rows = append(rows, row)
		t.AddRow(name, itoa(row.CorpusNodes), itoa(row.FullStates), itoa(row.ODFixedStates),
			pct(row.FractionFixed), itoa(row.ODDynStates), itoa(row.ODTransitions))
	}
	t.Note("od-states(dyn) may exceed full-states: dynamic-cost outcomes split states, which offline automata cannot represent at all")
	return rows, t, nil
}

// ---------------------------------------------------------------------------
// E3 — convergence: states materialized vs IR nodes processed

// E3Point is one sample of the convergence curve.
type E3Point struct {
	Program string
	Nodes   int // cumulative IR nodes labeled
	States  int // states materialized so far
	Trans   int
}

// RunE3 regenerates the convergence series for the given grammar.
func RunE3(gname string) ([]E3Point, *Table, error) {
	d, err := md.Load(gname)
	if err != nil {
		return nil, nil, err
	}
	e, err := core.New(d.Grammar, d.Env, core.Config{})
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		ID:     "E3",
		Title:  fmt.Sprintf("on-demand state convergence on %s (one row per corpus program, in order)", gname),
		Header: []string{"program", "cum-nodes", "states", "transitions", "new-states"},
	}
	var points []E3Point
	nodes := 0
	prev := 0
	for _, u := range loadCorpus(d.Grammar) {
		for _, f := range u.forests {
			e.Label(f)
			nodes += f.NumNodes()
		}
		p := E3Point{Program: u.name, Nodes: nodes, States: e.NumStates(), Trans: e.NumTransitions()}
		points = append(points, p)
		t.AddRow(u.name, itoa(p.Nodes), itoa(p.States), itoa(p.Trans), itoa(p.States-prev))
		prev = p.States
	}
	t.Note("the curve must flatten: late programs add few or no new states")
	return points, t, nil
}

// ---------------------------------------------------------------------------
// E4 — labeling cost per node, engine by engine

// E4Row compares engines on one program (or aggregate).
type E4Row struct {
	Grammar     string
	Program     string
	Nodes       int
	DPWork      float64 // work units per node
	ODColdWork  float64
	ODWarmWork  float64
	StaticWork  float64 // on the stripped grammar
	DPNsPerNode float64
	ODNsPerNode float64 // warm
	WorkRatio   float64 // DPWork / ODWarmWork
	TimeRatio   float64 // DPNs / ODNs
}

// RunE4 regenerates the per-program labeling-cost table for one grammar.
func RunE4(gname string) ([]E4Row, *Table, error) {
	d, err := md.Load(gname)
	if err != nil {
		return nil, nil, err
	}
	g := d.Grammar
	fixed, err := g.StripDynamic()
	if err != nil {
		return nil, nil, err
	}
	static, err := automaton.Generate(fixed, automaton.StaticConfig{})
	if err != nil {
		return nil, nil, err
	}
	units := loadCorpus(g)
	fixedUnits := loadCorpus(fixed)

	t := &Table{
		ID:    "E4",
		Title: fmt.Sprintf("labeling work per IR node on %s (work units; ns/node from 50 timed passes)", gname),
		Header: []string{"program", "nodes", "dp", "od-cold", "od-warm", "static*",
			"dp/od-warm", "dp-ns", "od-ns", "ns-ratio"},
	}
	var rows []E4Row

	// Warm one shared engine over the whole corpus first.
	mWarmEngine, err := core.New(g, d.Env, core.Config{})
	if err != nil {
		return nil, nil, err
	}
	for _, u := range units {
		for _, f := range u.forests {
			mWarmEngine.Label(f)
		}
	}

	dpm := &metrics.Counters{}
	dpl, err := dp.New(g, d.Env, dpm)
	if err != nil {
		return nil, nil, err
	}

	for i, u := range units {
		// DP work.
		dpm.Reset()
		for _, f := range u.forests {
			dpl.Label(f)
		}
		dpWork := dpm.PerNode()

		// Cold on-demand: fresh engine per program.
		cm := &metrics.Counters{}
		cold, err := core.New(g, d.Env, core.Config{Metrics: cm})
		if err != nil {
			return nil, nil, err
		}
		for _, f := range u.forests {
			cold.Label(f)
		}
		coldWork := cm.PerNode()

		// Warm on-demand: the shared pre-warmed engine, re-instrumented.
		wm := &metrics.Counters{}
		warm := mWarmEngine
		warm.SetMetrics(wm)
		for _, f := range u.forests {
			warm.Label(f)
		}
		warmWork := wm.PerNode()

		// Static automaton on the stripped grammar.
		sm := &metrics.Counters{}
		static.SetMetrics(sm)
		for _, f := range fixedUnits[i].forests {
			static.LabelStates(f)
		}
		static.SetMetrics(nil)
		staticWork := sm.PerNode()

		// Wall clock: repeated passes over the program. Labelings are
		// released so the timed loops measure the pooled warm path the
		// selectors actually run.
		const passes = 50
		dpStart := time.Now()
		for p := 0; p < passes; p++ {
			for _, f := range u.forests {
				dpl.ReleaseLabeling(dpl.Label(f))
			}
		}
		dpNs := float64(time.Since(dpStart).Nanoseconds()) / float64(passes*u.nodes)
		odStart := time.Now()
		for p := 0; p < passes; p++ {
			for _, f := range u.forests {
				warm.ReleaseLabeling(warm.LabelStates(f))
			}
		}
		odNs := float64(time.Since(odStart).Nanoseconds()) / float64(passes*u.nodes)

		row := E4Row{
			Grammar: gname, Program: u.name, Nodes: u.nodes,
			DPWork: dpWork, ODColdWork: coldWork, ODWarmWork: warmWork,
			StaticWork: staticWork, DPNsPerNode: dpNs, ODNsPerNode: odNs,
			WorkRatio: dpWork / warmWork, TimeRatio: dpNs / odNs,
		}
		rows = append(rows, row)
		t.AddRow(u.name, itoa(u.nodes), f1(row.DPWork), f1(row.ODColdWork), f1(row.ODWarmWork),
			f1(row.StaticWork), f2(row.WorkRatio), f1(row.DPNsPerNode), f1(row.ODNsPerNode),
			f2(row.TimeRatio))
	}
	t.Note("static* runs the stripped grammar (offline automata cannot host dynamic rules); one probe per node")
	t.Note("od-cold pays state construction; od-warm is the steady state a JIT reaches")
	return rows, t, nil
}

// ---------------------------------------------------------------------------
// E5 — per-program speedup figure

// RunE5 renders the speedup bars (dp/od-warm, time) for one grammar.
func RunE5(gname string) ([]E4Row, string, error) {
	rows, _, err := RunE4(gname)
	if err != nil {
		return nil, "", err
	}
	labels := make([]string, len(rows))
	work := make([]float64, len(rows))
	for i, r := range rows {
		labels[i] = r.Program
		work[i] = r.WorkRatio
	}
	fig := Bars(fmt.Sprintf("E5 — labeling speedup of warm on-demand automaton over DP on %s (work units)", gname),
		labels, work, "x")
	return rows, fig, nil
}

// ---------------------------------------------------------------------------
// E6 — dynamic costs on the fast path

// E6Row reports dynamic-rule behaviour per grammar.
type E6Row struct {
	Grammar       string
	DynRules      int
	DPWork        float64
	ODWarmWork    float64
	DynPerNode    float64 // dynamic evaluations per node on the warm path
	StatesFixed   int
	StatesDyn     int
	StateGrowth   float64
	CostsEqual    bool
	DerivsChecked int
}

// RunE6 regenerates the dynamic-cost table.
func RunE6() ([]E6Row, *Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "dynamic costs: warm on-demand fast path vs DP (static automata: impossible)",
		Header: []string{"grammar", "dyn-rules", "dp-work", "od-warm", "dyn/node",
			"states(fixed)", "states(dyn)", "growth", "costs-equal"},
	}
	var rows []E6Row
	for _, name := range CorpusGrammars {
		d := md.MustLoad(name)
		g := d.Grammar
		units := loadCorpus(g)

		dpm := &metrics.Counters{}
		dpl, err := dp.New(g, d.Env, dpm)
		if err != nil {
			return nil, nil, err
		}
		om := &metrics.Counters{}
		e, err := core.New(g, d.Env, core.Config{Metrics: om})
		if err != nil {
			return nil, nil, err
		}
		rd, err := reduce.New(g, d.Env, nil)
		if err != nil {
			return nil, nil, err
		}
		// Warm up, then measure the warm pass; verify per-forest costs.
		for _, u := range units {
			for _, f := range u.forests {
				e.Label(f)
			}
		}
		om.Reset()
		equal := true
		checked := 0
		for _, u := range units {
			for _, f := range u.forests {
				odLab := e.Label(f)
				dpm.Reset()
				dpLab := dpl.Label(f)
				cOD, err := rd.Cover(f, odLab, nil)
				if err != nil {
					return nil, nil, err
				}
				cDP, err := rd.Cover(f, dpLab, nil)
				if err != nil {
					return nil, nil, err
				}
				if cOD != cDP {
					equal = false
				}
				checked++
			}
		}
		odWork := om.PerNode()
		dynPerNode := float64(om.DynEvals) / float64(om.NodesLabeled)

		// DP work over the whole corpus.
		dpm.Reset()
		for _, u := range units {
			for _, f := range u.forests {
				dpl.Label(f)
			}
		}

		fixed, err := g.StripDynamic()
		if err != nil {
			return nil, nil, err
		}
		eFixed, err := core.New(fixed, nil, core.Config{})
		if err != nil {
			return nil, nil, err
		}
		for _, u := range loadCorpus(fixed) {
			for _, f := range u.forests {
				eFixed.Label(f)
			}
		}

		st := g.ComputeStats()
		row := E6Row{
			Grammar: name, DynRules: st.DynamicRules,
			DPWork: dpm.PerNode(), ODWarmWork: odWork, DynPerNode: dynPerNode,
			StatesFixed: eFixed.NumStates(), StatesDyn: e.NumStates(),
			StateGrowth: float64(e.NumStates()) / float64(eFixed.NumStates()),
			CostsEqual:  equal, DerivsChecked: checked,
		}
		rows = append(rows, row)
		t.AddRow(name, itoa(row.DynRules), f1(row.DPWork), f1(row.ODWarmWork), f2(row.DynPerNode),
			itoa(row.StatesFixed), itoa(row.StatesDyn), f2(row.StateGrowth),
			fmt.Sprintf("%v(%d)", row.CostsEqual, row.DerivsChecked))
	}
	t.Note("growth = states(dyn)/states(fixed): the paper's claim is that dynamic signatures grow the automaton modestly")
	return rows, t, nil
}

// ---------------------------------------------------------------------------
// E7 — code quality: dynamic rules on vs stripped

// E7Row compares selected code with and without dynamic rules.
type E7Row struct {
	Grammar     string
	Program     string
	CostDyn     grammar.Cost
	CostFixed   grammar.Cost
	InstrsDyn   int
	InstrsFixed int
	CostRatio   float64 // fixed/dyn >= 1
	InstrRatio  float64
}

// RunE7 regenerates the code-quality table for one grammar.
func RunE7(gname string) ([]E7Row, *Table, error) {
	d, err := md.Load(gname)
	if err != nil {
		return nil, nil, err
	}
	g := d.Grammar
	fixed, err := g.StripDynamic()
	if err != nil {
		return nil, nil, err
	}
	dpl, err := dp.New(g, d.Env, nil)
	if err != nil {
		return nil, nil, err
	}
	dplF, err := dp.New(fixed, nil, nil)
	if err != nil {
		return nil, nil, err
	}
	rd, err := reduce.New(g, d.Env, nil)
	if err != nil {
		return nil, nil, err
	}
	rdF, err := reduce.New(fixed, nil, nil)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		ID:     "E7",
		Title:  fmt.Sprintf("code quality with dynamic rules vs fixed costs only, on %s (selected cost and emitted instructions)", gname),
		Header: []string{"program", "cost(dyn)", "cost(fixed)", "ratio", "instrs(dyn)", "instrs(fixed)", "ratio"},
	}
	var rows []E7Row
	units := loadCorpus(g)
	fixedUnits := loadCorpus(fixed)
	for i, u := range units {
		var costDyn, costFixed grammar.Cost
		instrsDyn, instrsFixed := 0, 0
		for _, f := range u.forests {
			em := emit.New(g)
			c, err := rd.Cover(f, dpl.Label(f), em.Visit)
			if err != nil {
				return nil, nil, err
			}
			costDyn = costDyn.Add(c)
			instrsDyn += em.Instructions()
		}
		for _, f := range fixedUnits[i].forests {
			em := emit.New(fixed)
			c, err := rdF.Cover(f, dplF.Label(f), em.Visit)
			if err != nil {
				return nil, nil, err
			}
			costFixed = costFixed.Add(c)
			instrsFixed += em.Instructions()
		}
		row := E7Row{
			Grammar: gname, Program: u.name,
			CostDyn: costDyn, CostFixed: costFixed,
			InstrsDyn: instrsDyn, InstrsFixed: instrsFixed,
			CostRatio:  float64(costFixed) / float64(costDyn),
			InstrRatio: float64(instrsFixed) / float64(instrsDyn),
		}
		rows = append(rows, row)
		t.AddRow(u.name, itoa(int(costDyn)), itoa(int(costFixed)), f2(row.CostRatio),
			itoa(instrsDyn), itoa(instrsFixed), f2(row.InstrRatio))
	}
	t.Note("ratio > 1.00 means dynamic rules produced cheaper/smaller code; the lcc-era papers report a few percent")
	return rows, t, nil
}

// ---------------------------------------------------------------------------
// E8 — table memory

// E8Row compares table footprints.
type E8Row struct {
	Grammar    string
	FullBytes  int
	FullStates int
	ODBytes    int
	ODStates   int
	Fraction   float64
}

// RunE8 regenerates the memory table.
func RunE8() ([]E8Row, *Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "table memory: full offline automaton vs on-demand automaton after the corpus",
		Header: []string{"grammar", "full-bytes", "full-states", "od-bytes", "od-states", "od/full"},
	}
	var rows []E8Row
	for _, name := range CorpusGrammars {
		d := md.MustLoad(name)
		fixed, err := d.Grammar.StripDynamic()
		if err != nil {
			return nil, nil, err
		}
		full, err := automaton.Generate(fixed, automaton.StaticConfig{})
		if err != nil {
			return nil, nil, err
		}
		e, err := core.New(d.Grammar, d.Env, core.Config{})
		if err != nil {
			return nil, nil, err
		}
		for _, u := range loadCorpus(d.Grammar) {
			for _, f := range u.forests {
				e.Label(f)
			}
		}
		row := E8Row{
			Grammar: name, FullBytes: full.MemoryBytes(), FullStates: full.NumStates(),
			ODBytes: e.MemoryBytes(), ODStates: e.NumStates(),
			Fraction: float64(e.MemoryBytes()) / float64(full.MemoryBytes()),
		}
		rows = append(rows, row)
		t.AddRow(name, itoa(row.FullBytes), itoa(row.FullStates), itoa(row.ODBytes),
			itoa(row.ODStates), f2(row.Fraction))
	}
	t.Note("the on-demand automaton also hosts the dynamic rules the full automaton had to drop")
	return rows, t, nil
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
