package grammar

import "fmt"

// finish converts the parsed raw grammar into a validated, normal-form
// Grammar: it assigns rule numbers, introduces helper nonterminals for
// multi-node patterns, builds lookup indexes, and validates the result.
func (raw *rawGrammar) finish() (*Grammar, error) {
	g := &Grammar{Name: raw.name}
	g.Ops = append(g.Ops, raw.terms...)

	// Collect author-written nonterminals: rule left-hand sides first (in
	// order of appearance), then pattern leaves that are not terms.
	ntID := map[string]NT{}
	addNT := func(name string, helper bool) NT {
		if id, ok := ntID[name]; ok {
			return id
		}
		id := NT(len(g.Nonterms))
		g.Nonterms = append(g.Nonterms, Nonterm{Name: name, ID: id, Helper: helper})
		ntID[name] = id
		return id
	}
	for _, r := range raw.rules {
		if raw.isTerm(r.lhs) {
			return nil, fmt.Errorf("grammar:%d: rule left-hand side %q is an operator", r.line, r.lhs)
		}
		addNT(r.lhs, false)
	}
	var collectLeaves func(p *PatNode) error
	var collectErr error
	collectLeaves = func(p *PatNode) error {
		if !p.IsOp {
			addNT(p.Name, false)
			return nil
		}
		for _, k := range p.Kids {
			if err := collectLeaves(k); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range raw.rules {
		if err := collectLeaves(r.pat); err != nil {
			collectErr = err
		}
	}
	if collectErr != nil {
		return nil, collectErr
	}

	// Assign rule numbers: explicit ones first, then fill unnumbered rules
	// after the maximum explicit number.
	maxID := 0
	seen := map[int]int{} // external id -> line
	for _, r := range raw.rules {
		if r.id >= 0 {
			if prev, dup := seen[r.id]; dup {
				return nil, fmt.Errorf("grammar:%d: rule number %d already used on line %d", r.line, r.id, prev)
			}
			seen[r.id] = r.line
			if r.id > maxID {
				maxID = r.id
			}
		}
	}
	nextID := maxID
	for i := range raw.rules {
		if raw.rules[i].id < 0 {
			nextID++
			raw.rules[i].id = nextID
		}
	}

	// Normalize: split multi-node patterns bottom-up into helper rules.
	for _, r := range raw.rules {
		lhs := ntID[r.lhs]
		if !r.pat.IsOp {
			// Chain rule.
			rhs := ntID[r.pat.Name]
			if rhs == lhs {
				return nil, fmt.Errorf("grammar:%d: chain rule %s derives itself", r.line, r.src)
			}
			if r.dyn != "" {
				return nil, fmt.Errorf("grammar:%d: dynamic costs on chain rules are not supported (rule %s)", r.line, r.src)
			}
			g.Rules = append(g.Rules, Rule{
				ID: r.id, LHS: lhs, IsChain: true, ChainRHS: rhs,
				Cost: r.cost, Template: r.template, Src: r.src,
			})
			continue
		}
		part := 0
		nParts := countOpNodes(r.pat)
		partName := func() string {
			if nParts == 1 {
				return ""
			}
			part++
			return string(rune('a' + part - 1))
		}
		var lower func(p *PatNode) (NT, error)
		lower = func(p *PatNode) (NT, error) {
			if !p.IsOp {
				return ntID[p.Name], nil
			}
			op, _ := findOp(g.Ops, p.Name)
			kids := make([]NT, len(p.Kids))
			for i, k := range p.Kids {
				nt, err := lower(k)
				if err != nil {
					return NoNT, err
				}
				kids[i] = nt
			}
			pn := partName()
			helper := addNT(fmt.Sprintf("%s.%d%s", r.lhs, r.id, pn), true)
			g.Rules = append(g.Rules, Rule{
				ID: r.id, Part: pn, LHS: helper, Op: op, Kids: kids,
				Src: fmt.Sprintf("%s: %s", g.Nonterms[helper].Name, p),
			})
			return helper, nil
		}
		op, ok := findOp(g.Ops, r.pat.Name)
		if !ok {
			return nil, fmt.Errorf("grammar:%d: unknown operator %q", r.line, r.pat.Name)
		}
		kids := make([]NT, len(r.pat.Kids))
		for i, k := range r.pat.Kids {
			nt, err := lower(k)
			if err != nil {
				return nil, err
			}
			kids[i] = nt
		}
		g.Rules = append(g.Rules, Rule{
			ID: r.id, Part: partName(), LHS: lhs, Op: op, Kids: kids,
			Cost: r.cost, DynCost: r.dyn, Template: r.template, Src: r.src,
		})
	}

	// Start nonterminal.
	if raw.start != "" {
		id, ok := ntID[raw.start]
		if !ok {
			return nil, fmt.Errorf("grammar: %%start nonterminal %q has no rules", raw.start)
		}
		g.Start = id
	} else if len(g.Nonterms) > 0 {
		g.Start = 0
	} else {
		return nil, fmt.Errorf("grammar: no rules")
	}

	g.buildIndexes()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// countOpNodes counts operator nodes in a pattern (1 for normal-form base
// rules; >1 for patterns that need splitting).
func countOpNodes(p *PatNode) int {
	if !p.IsOp {
		return 0
	}
	n := 1
	for _, k := range p.Kids {
		n += countOpNodes(k)
	}
	return n
}

func findOp(ops []Op, name string) (OpID, bool) {
	for i := range ops {
		if ops[i].Name == name {
			return OpID(i), true
		}
	}
	return NoOp, false
}

// Validate checks structural invariants of a normal-form grammar:
// every nonterminal has at least one rule deriving it, chain rules form no
// zero-cost cycle that would make closure ambiguous about optimality
// (zero-cost cycles are allowed by the math but flagged because they are
// always author errors), kid arities match, and rule ids are consistent.
func (g *Grammar) Validate() error {
	derivable := make([]bool, len(g.Nonterms))
	used := make([]bool, len(g.Nonterms))
	used[g.Start] = true
	for i := range g.Rules {
		r := &g.Rules[i]
		derivable[r.LHS] = true
		if r.IsChain {
			if r.ChainRHS < 0 || int(r.ChainRHS) >= len(g.Nonterms) {
				return fmt.Errorf("grammar %s: rule %s: bad chain target", g.Name, g.RuleName(i))
			}
			used[r.ChainRHS] = true
			continue
		}
		if r.Op < 0 || int(r.Op) >= len(g.Ops) {
			return fmt.Errorf("grammar %s: rule %s: bad operator", g.Name, g.RuleName(i))
		}
		if len(r.Kids) != g.Ops[r.Op].Arity {
			return fmt.Errorf("grammar %s: rule %s: operator %s wants %d kids, rule has %d",
				g.Name, g.RuleName(i), g.Ops[r.Op].Name, g.Ops[r.Op].Arity, len(r.Kids))
		}
		for _, k := range r.Kids {
			used[k] = true
		}
	}
	for nt := range g.Nonterms {
		if used[nt] && !derivable[nt] {
			return fmt.Errorf("grammar %s: nonterminal %q is used but has no rules",
				g.Name, g.Nonterms[nt].Name)
		}
	}
	// Detect zero-cost chain cycles with DFS over the chain graph.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.Nonterms))
	var visit func(nt NT) error
	visit = func(nt NT) error {
		color[nt] = gray
		for i := range g.Rules {
			r := &g.Rules[i]
			if !r.IsChain || r.LHS != nt || r.Cost != 0 {
				continue
			}
			switch color[r.ChainRHS] {
			case gray:
				return fmt.Errorf("grammar %s: zero-cost chain-rule cycle through %q",
					g.Name, g.Nonterms[nt].Name)
			case white:
				if err := visit(r.ChainRHS); err != nil {
					return err
				}
			}
		}
		color[nt] = black
		return nil
	}
	for nt := range g.Nonterms {
		if color[nt] == white {
			if err := visit(NT(nt)); err != nil {
				return err
			}
		}
	}
	return nil
}
