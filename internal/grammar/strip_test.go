package grammar

import (
	"strings"
	"testing"
)

func TestStripDynamicRemovesHelpers(t *testing.T) {
	g := MustParse(`
%name t
%start stmt
%term Store(2) Load(1) Plus(2) Reg(0)
addr: reg (0)
reg:  Reg (0)
reg:  Load(addr) (1)
reg:  Plus(reg, reg) (1)
stmt: Store(addr, reg) (1)
stmt: Store(addr, Plus(Load(addr), reg)) (dyn memop)
`)
	fixed, err := g.StripDynamic()
	if err != nil {
		t.Fatal(err)
	}
	// The dynamic rule and both of its helper rules must be gone.
	if got, want := fixed.NumRules(), g.NumRules()-3; got != want {
		t.Fatalf("rules after strip = %d, want %d\n%s", got, want, fixed.Dump())
	}
	for i := range fixed.Rules {
		if fixed.Rules[i].IsDynamic() {
			t.Error("dynamic rule survived strip")
		}
		if fixed.Nonterms[fixed.Rules[i].LHS].Helper {
			t.Errorf("orphaned helper rule survived: %s", fixed.Rules[i].String())
		}
	}
	// Nonterminal ids must be preserved so cost tables stay comparable.
	if fixed.NumNonterms() != g.NumNonterms() {
		t.Error("strip must keep the nonterminal id space")
	}
	if fixed.Name != "t.fixed" {
		t.Errorf("name = %q", fixed.Name)
	}
}

func TestStripDynamicKeepsSharedHelpers(t *testing.T) {
	// A helper nonterminal used by both a dynamic and a fixed multi-node
	// rule must survive (only truly orphaned helpers go).
	g := MustParse(`
%name t
%start stmt
%term Store(2) Load(1) Reg(0)
addr: reg (0)
reg:  Reg (0)
reg:  Load(addr) (1)
stmt: Store(addr, Load(addr)) = 9 (2)
stmt: Store(addr, reg) (1)
`)
	fixed, err := g.StripDynamic()
	if err != nil {
		t.Fatal(err)
	}
	if fixed.NumRules() != g.NumRules() {
		t.Error("stripping a grammar without dynamic rules must be a no-op on rules")
	}
	if !strings.Contains(fixed.Dump(), "9a") {
		t.Errorf("fixed multi-node helper lost:\n%s", fixed.Dump())
	}
}

func TestStripDynamicFailsWhenNothingLeft(t *testing.T) {
	g := MustParse(`
%term A(0)
%start x
x: A (dyn f)
`)
	if _, err := g.StripDynamic(); err == nil {
		t.Error("expected error when stripping leaves no rules")
	}
}

func TestPatNodeString(t *testing.T) {
	p := &PatNode{IsOp: true, Name: "Store", Kids: []*PatNode{
		{Name: "addr"},
		{IsOp: true, Name: "Load", Kids: []*PatNode{{Name: "addr"}}},
	}}
	if got := p.String(); got != "Store(addr, Load(addr))" {
		t.Errorf("String = %q", got)
	}
}

func TestStatsString(t *testing.T) {
	g := MustParse("%name tiny\n%term A(0)\nx: A (0)")
	s := g.ComputeStats().String()
	if !strings.Contains(s, "tiny") || !strings.Contains(s, "rules=1/1") {
		t.Errorf("stats string: %q", s)
	}
}

func TestRuleString(t *testing.T) {
	g := MustParse("%term A(0)\nx: A = 4 (0)")
	if got := g.Rules[0].String(); got != "x: A" {
		t.Errorf("Rule.String = %q", got)
	}
	r := Rule{ID: 7, Part: "b"}
	if got := r.String(); got != "rule 7b" {
		t.Errorf("bare Rule.String = %q", got)
	}
}

func TestDynEnvNames(t *testing.T) {
	env := DynEnv{"zebra": nil, "apple": nil}
	names := env.Names()
	if len(names) != 2 || names[0] != "apple" || names[1] != "zebra" {
		t.Errorf("Names = %v, want sorted", names)
	}
}
