package grammar

import (
	"fmt"
	"sort"
)

// DynNode is the view of an IR node that dynamic-cost functions get.
//
// It is an interface (rather than a concrete IR type) so that the grammar
// package does not depend on the IR package; internal/ir.Node implements it.
// Dynamic-cost functions typically inspect leaf payloads (immediate ranges)
// or compare node identities (read-modify-write patterns that need the load
// and store address to be the very same node).
type DynNode interface {
	// OpID returns the node's operator id in the grammar the selector runs.
	OpID() OpID
	// NumKids returns the number of children.
	NumKids() int
	// Kid returns the i-th child; it panics if i is out of range.
	Kid(i int) DynNode
	// Value returns the leaf payload (constant value, register number,
	// frame offset, ...). It is 0 for non-leaf nodes.
	Value() int64
	// Same reports whether two DynNodes are the identical IR node.
	Same(DynNode) bool
}

// DynFunc computes the cost of a rule at a node at instruction-selection
// time. Returning Inf makes the rule inapplicable at the node (the dominant
// use in lburg-style machine descriptions). The node passed is the node the
// rule's operator matches (the root of the rule's pattern).
type DynFunc func(n DynNode) Cost

// DynEnv binds the dynamic-cost function names that appear in a grammar
// (`(dyn name)` cost specifications) to Go implementations.
type DynEnv map[string]DynFunc

// Names returns the bound names in sorted order (for deterministic output).
func (e DynEnv) Names() []string {
	names := make([]string, 0, len(e))
	for n := range e {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Bind checks that every dynamic-cost name used by g is present in env and
// returns the functions in rule order (indexed by rule index; nil for rules
// with fixed costs). Engines call this once at construction time so that
// the per-node fast path never does a map lookup by name.
func (e DynEnv) Bind(g *Grammar) ([]DynFunc, error) {
	fns := make([]DynFunc, len(g.Rules))
	for i := range g.Rules {
		r := &g.Rules[i]
		if r.DynCost == "" {
			continue
		}
		fn, ok := e[r.DynCost]
		if !ok {
			return nil, fmt.Errorf("grammar %s: rule %d uses dynamic cost %q which is not bound in the environment",
				g.Name, r.ID, r.DynCost)
		}
		fns[i] = fn
	}
	return fns, nil
}
