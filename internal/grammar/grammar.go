// Package grammar models tree grammars for bottom-up tree-parsing ("BURS")
// instruction selection, in the style of burg/iburg/lburg machine
// descriptions.
//
// A tree grammar consists of operators (the intermediate-representation
// node kinds, each with a fixed arity), nonterminals, and rules. A rule is
// either a chain rule
//
//	lhs: rhs            (cost)
//
// deriving one nonterminal from another, or a base rule
//
//	lhs: Op(nt1, ..., ntk)   (cost)
//
// matching an operator whose children derive from the given nonterminals.
// Source grammars may contain multi-node patterns such as
// Store(addr, Plus(Load(addr), reg)); Normalize splits those into
// normal-form rules by introducing helper nonterminals, exactly as the
// tree-parsing literature describes.
//
// Rule costs are either fixed or dynamic: a dynamic cost names a function
// (bound via DynEnv) evaluated at instruction-selection time, the mechanism
// lcc's lburg uses for read-modify-write patterns and immediate-range
// tests, and the feature that classical offline tree-parsing automata
// cannot support — which is the problem the on-demand automata of
// Ertl/Casey/Gregg (PLDI 2006) solve.
package grammar

import "fmt"

// OpID identifies an operator within a Grammar.
type OpID int16

// NT identifies a nonterminal within a Grammar.
type NT int16

// NoNT is the invalid nonterminal id.
const NoNT NT = -1

// NoOp is the invalid operator id.
const NoOp OpID = -1

// MaxArity is the largest operator arity the engines support. lcc-style
// intermediate representations are at most binary (ternary constructs are
// expressed with two nodes), and binary arity keeps automaton transition
// tables two-dimensional, as in burg.
const MaxArity = 2

// Op is an operator of the intermediate representation (a "terminal" of the
// tree grammar).
type Op struct {
	Name  string
	Arity int
	ID    OpID
}

// Nonterm is a nonterminal of the tree grammar.
type Nonterm struct {
	Name string
	ID   NT
	// Helper reports that the nonterminal was introduced by normal-form
	// conversion rather than written by the grammar author.
	Helper bool
}

// Rule is a normal-form rule of the grammar.
type Rule struct {
	// Index is the rule's position in Grammar.Rules; engines use it as the
	// dense rule identifier.
	Index int
	// ID is the external rule number from the grammar source (burg-style
	// "= n"). Helper rules produced by normalization share the ID of the
	// source rule with a distinguishing Part suffix.
	ID   int
	Part string // "", or "a", "b", ... for split multi-node rules

	LHS NT

	// IsChain distinguishes chain rules (lhs: rhs-nonterminal) from base
	// rules (lhs: Op(...)).
	IsChain  bool
	ChainRHS NT // valid iff IsChain

	Op   OpID // valid iff !IsChain
	Kids []NT // valid iff !IsChain; len == arity of Op

	// Cost is the fixed cost. For dynamic rules it is the cost the
	// grammar author expects in the common (applicable) case; engines
	// ignore it when DynCost is set and call the bound function instead.
	Cost Cost
	// DynCost names the dynamic-cost function, "" for fixed-cost rules.
	DynCost string

	// Template is the emission template, e.g. "addq %1, %0". %0..%k refer
	// to the results of the kid nonterminals, %c to the node's leaf value,
	// %s to its symbol. Empty templates emit nothing (typical for chain
	// rules and helper rules).
	Template string

	// Src is the original source production text, for diagnostics.
	Src string
}

// IsDynamic reports whether the rule's cost is computed at selection time.
func (r *Rule) IsDynamic() bool { return r.DynCost != "" }

// String renders the rule in burg-like syntax.
func (r *Rule) String() string {
	if r.Src != "" {
		return r.Src
	}
	return fmt.Sprintf("rule %d%s", r.ID, r.Part)
}

// Grammar is a validated, normal-form tree grammar.
type Grammar struct {
	Name  string
	Start NT

	Ops      []Op
	Nonterms []Nonterm
	Rules    []Rule

	opsByName map[string]OpID
	ntsByName map[string]NT

	// baseByOp[op] lists indices into Rules of base rules for op.
	baseByOp [][]int32
	// chains lists indices of all chain rules.
	chains []int32
	// chainsByRHS[nt] lists chain-rule indices whose RHS is nt, used by the
	// chain-closure relaxation.
	chainsByRHS [][]int32
	// dynByOp[op] lists indices of dynamic base rules for op, in rule
	// order; this ordering defines the dynamic-cost signature layout.
	dynByOp [][]int32
	// dynPos[ruleIdx] is the rule's position within dynByOp[rule.Op]
	// (-1 for fixed-cost rules), so engines can index a signature vector
	// directly from a rule.
	dynPos []int32

	maxExternalID int
}

// NumOps returns the number of operators.
func (g *Grammar) NumOps() int { return len(g.Ops) }

// NumNonterms returns the number of nonterminals (including helpers).
func (g *Grammar) NumNonterms() int { return len(g.Nonterms) }

// NumRules returns the number of normal-form rules.
func (g *Grammar) NumRules() int { return len(g.Rules) }

// OpByName returns the operator id for name.
func (g *Grammar) OpByName(name string) (OpID, bool) {
	id, ok := g.opsByName[name]
	return id, ok
}

// MustOp returns the operator id for name and panics if it does not exist.
// It is intended for tests and workload builders where the vocabulary is
// known statically.
func (g *Grammar) MustOp(name string) OpID {
	id, ok := g.opsByName[name]
	if !ok {
		panic(fmt.Sprintf("grammar %s: no operator %q", g.Name, name))
	}
	return id
}

// NTByName returns the nonterminal id for name.
func (g *Grammar) NTByName(name string) (NT, bool) {
	id, ok := g.ntsByName[name]
	return id, ok
}

// MustNT returns the nonterminal id for name and panics if it does not
// exist.
func (g *Grammar) MustNT(name string) NT {
	id, ok := g.ntsByName[name]
	if !ok {
		panic(fmt.Sprintf("grammar %s: no nonterminal %q", g.Name, name))
	}
	return id
}

// OpName returns the name of op ("?" if invalid).
func (g *Grammar) OpName(op OpID) string {
	if op < 0 || int(op) >= len(g.Ops) {
		return "?"
	}
	return g.Ops[op].Name
}

// NTName returns the name of nt ("?" if invalid).
func (g *Grammar) NTName(nt NT) string {
	if nt < 0 || int(nt) >= len(g.Nonterms) {
		return "?"
	}
	return g.Nonterms[nt].Name
}

// Arity returns the arity of op.
func (g *Grammar) Arity(op OpID) int { return g.Ops[op].Arity }

// BaseRules returns the indices (into Rules) of base rules for op.
func (g *Grammar) BaseRules(op OpID) []int32 { return g.baseByOp[op] }

// ChainRules returns the indices of all chain rules.
func (g *Grammar) ChainRules() []int32 { return g.chains }

// ChainRulesFrom returns the chain rules whose right-hand side is nt (the
// rules that become cheaper to apply when nt's cost improves).
func (g *Grammar) ChainRulesFrom(nt NT) []int32 { return g.chainsByRHS[nt] }

// DynRules returns the indices of dynamic base rules for op; the slice
// order defines the layout of dynamic-cost signatures for the op.
func (g *Grammar) DynRules(op OpID) []int32 { return g.dynByOp[op] }

// HasDynRules reports whether op has any dynamic base rules.
func (g *Grammar) HasDynRules(op OpID) bool { return len(g.dynByOp[op]) > 0 }

// DynPos returns the position of rule index i within the dynamic-cost
// signature of its operator, or -1 for fixed-cost rules.
func (g *Grammar) DynPos(i int) int32 { return g.dynPos[i] }

// HasAnyDynRules reports whether the grammar contains any dynamic rule.
func (g *Grammar) HasAnyDynRules() bool {
	for i := range g.Rules {
		if g.Rules[i].IsDynamic() {
			return true
		}
	}
	return false
}

// RuleName renders a compact human-readable identifier for rule index i,
// e.g. "6c" for the third split part of source rule 6.
func (g *Grammar) RuleName(i int) string {
	if i < 0 || i >= len(g.Rules) {
		return "?"
	}
	r := &g.Rules[i]
	return fmt.Sprintf("%d%s", r.ID, r.Part)
}

// buildIndexes (re)computes the derived lookup structures. It must be
// called whenever Rules, Ops, or Nonterms change.
func (g *Grammar) buildIndexes() {
	g.opsByName = make(map[string]OpID, len(g.Ops))
	for i := range g.Ops {
		g.Ops[i].ID = OpID(i)
		g.opsByName[g.Ops[i].Name] = OpID(i)
	}
	g.ntsByName = make(map[string]NT, len(g.Nonterms))
	for i := range g.Nonterms {
		g.Nonterms[i].ID = NT(i)
		g.ntsByName[g.Nonterms[i].Name] = NT(i)
	}
	g.baseByOp = make([][]int32, len(g.Ops))
	g.dynByOp = make([][]int32, len(g.Ops))
	g.dynPos = make([]int32, len(g.Rules))
	g.chains = nil
	g.chainsByRHS = make([][]int32, len(g.Nonterms))
	g.maxExternalID = 0
	for i := range g.Rules {
		r := &g.Rules[i]
		r.Index = i
		g.dynPos[i] = -1
		if r.ID > g.maxExternalID {
			g.maxExternalID = r.ID
		}
		if r.IsChain {
			g.chains = append(g.chains, int32(i))
			g.chainsByRHS[r.ChainRHS] = append(g.chainsByRHS[r.ChainRHS], int32(i))
			continue
		}
		g.baseByOp[r.Op] = append(g.baseByOp[r.Op], int32(i))
		if r.IsDynamic() {
			g.dynPos[i] = int32(len(g.dynByOp[r.Op]))
			g.dynByOp[r.Op] = append(g.dynByOp[r.Op], int32(i))
		}
	}
}
