package grammar

import (
	"strings"
	"testing"
)

const demoSrc = `
%name demo
%start stmt
%term Reg(0) Load(1) Plus(2) Store(2)

addr: reg                  = 1 (0)
reg:  Reg                  = 2 (0)
reg:  Load(addr)           = 3 (1) "movq (%0), %d"
reg:  Plus(reg, reg)       = 4 (1)
stmt: Store(addr, reg)     = 5 (1)
stmt: Store(addr, Plus(Load(addr), reg)) = 6 (dyn samemem)
`

func TestParseDemo(t *testing.T) {
	g, err := Parse(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "demo" {
		t.Errorf("name = %q, want demo", g.Name)
	}
	if got := g.NTName(g.Start); got != "stmt" {
		t.Errorf("start = %q, want stmt", got)
	}
	if got, want := g.NumOps(), 4; got != want {
		t.Errorf("NumOps = %d, want %d", got, want)
	}
	// Rule 6 splits into 6a, 6b, 6c: 5 source rules in normal form + 3.
	if got, want := g.NumRules(), 8; got != want {
		t.Fatalf("NumRules = %d, want %d\n%s", got, want, g.Dump())
	}
	// Two helper nonterminals.
	st := g.ComputeStats()
	if st.HelperNonterms != 2 {
		t.Errorf("helpers = %d, want 2", st.HelperNonterms)
	}
	if st.SourceRules != 6 {
		t.Errorf("source rules = %d, want 6", st.SourceRules)
	}
	if st.ChainRules != 1 {
		t.Errorf("chain rules = %d, want 1", st.ChainRules)
	}
	if st.DynamicRules != 1 {
		t.Errorf("dynamic rules = %d, want 1", st.DynamicRules)
	}
}

func TestNormalFormSplit(t *testing.T) {
	g := MustParse(demoSrc)
	// The split parts must be 6a: Load, 6b: Plus, 6c: Store, with the
	// dynamic cost on the top (Store) rule, as the literature prescribes.
	var a, b, c *Rule
	for i := range g.Rules {
		r := &g.Rules[i]
		if r.ID != 6 {
			continue
		}
		switch r.Part {
		case "a":
			a = r
		case "b":
			b = r
		case "c":
			c = r
		}
	}
	if a == nil || b == nil || c == nil {
		t.Fatalf("missing split parts:\n%s", g.Dump())
	}
	if g.OpName(a.Op) != "Load" || g.OpName(b.Op) != "Plus" || g.OpName(c.Op) != "Store" {
		t.Errorf("split ops = %s/%s/%s, want Load/Plus/Store",
			g.OpName(a.Op), g.OpName(b.Op), g.OpName(c.Op))
	}
	if a.IsDynamic() || b.IsDynamic() || !c.IsDynamic() {
		t.Errorf("dynamic cost must sit on the top rule only: a=%v b=%v c=%v",
			a.IsDynamic(), b.IsDynamic(), c.IsDynamic())
	}
	if a.Cost != 0 || b.Cost != 0 {
		t.Errorf("helper rules must have cost 0, got %d/%d", a.Cost, b.Cost)
	}
	// 6b's first kid must be 6a's helper LHS; 6c's second kid 6b's LHS.
	if b.Kids[0] != a.LHS {
		t.Errorf("6b kid0 = %s, want %s", g.NTName(b.Kids[0]), g.NTName(a.LHS))
	}
	if c.Kids[1] != b.LHS {
		t.Errorf("6c kid1 = %s, want %s", g.NTName(c.Kids[1]), g.NTName(b.LHS))
	}
	if !g.Nonterms[a.LHS].Helper || !g.Nonterms[b.LHS].Helper {
		t.Error("split LHS nonterminals must be marked Helper")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"dup rule number", "%term A(0)\nx: A = 1 (0)\ny: A = 1 (0)", "already used"},
		{"bad arity use", "%term A(2) B(0)\nx: A(x) (0)\nx: B (0)", "arity 2 but pattern gives 1"},
		{"undeclared op with args", "%term A(0)\nx: Foo(x) (0)", "expected cost"},
		{"lhs is operator", "%term A(0)\nA: A (0)", "is an operator"},
		{"self chain", "%term A(0)\nx: x (0)\nx: A (0)", "derives itself"},
		{"dyn on chain", "%term A(0)\nx: y (dyn f)\ny: A (0)", "chain rules are not supported"},
		{"zero chain cycle", "%term A(0)\nx: y (0)\ny: x (0)\nx: A (0)", "cycle"},
		{"underiv nonterm", "%term A(1) B(0)\nx: A(ghost) (1)\nx: B (0)", "no rules"},
		{"dup term", "%term A(0) A(0)\nx: A (0)", "duplicate"},
		{"bad directive", "%foo bar", "unknown directive"},
		{"arity too big", "%term A(7)", "arity must be"},
		{"empty", "", "no rules"},
		{"missing colon", "%term A(0)\nx A (0)", "expected ':'"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestAutoRuleNumbers(t *testing.T) {
	g := MustParse(`
%term A(0) B(1)
x: A = 7 (0)
x: B(x) (1)
y: x (0)
`)
	ids := map[int]bool{}
	for i := range g.Rules {
		ids[g.Rules[i].ID] = true
	}
	if !ids[7] || !ids[8] || !ids[9] {
		t.Errorf("want auto ids 8,9 after explicit 7; got %v", ids)
	}
}

func TestCommentsAndWrapping(t *testing.T) {
	g := MustParse(`
// a comment
# another comment
%term A(0) B(2) // trailing
x: B(x,     // patterns may wrap inside parens
     x) (1)
x: A (0)   # trailing too
`)
	if g.NumRules() != 2 {
		t.Fatalf("NumRules = %d, want 2", g.NumRules())
	}
}

func TestTemplates(t *testing.T) {
	g := MustParse(`
%term A(0)
x: A = 1 (2) "mov %c, %d"
`)
	r := &g.Rules[0]
	if r.Template != "mov %c, %d" {
		t.Errorf("template = %q", r.Template)
	}
	if r.Cost != 2 {
		t.Errorf("cost = %d", r.Cost)
	}
}

func TestDumpRoundTrip(t *testing.T) {
	g := MustParse(demoSrc)
	dump := g.Dump()
	for _, want := range []string{"stmt: Store(addr, stmt.6b)", "(dyn samemem)", "= 6c"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestLookups(t *testing.T) {
	g := MustParse(demoSrc)
	if op, ok := g.OpByName("Plus"); !ok || g.Arity(op) != 2 {
		t.Error("Plus lookup failed")
	}
	if _, ok := g.OpByName("Nope"); ok {
		t.Error("found nonexistent op")
	}
	if nt, ok := g.NTByName("reg"); !ok || g.NTName(nt) != "reg" {
		t.Error("reg lookup failed")
	}
	if g.OpName(-1) != "?" || g.NTName(-1) != "?" {
		t.Error("invalid ids should render as ?")
	}
	store := g.MustOp("Store")
	if !g.HasDynRules(store) {
		t.Error("Store should have dynamic rules")
	}
	if len(g.DynRules(store)) != 1 {
		t.Error("Store should have exactly one dynamic rule")
	}
	if !g.HasAnyDynRules() {
		t.Error("grammar has dynamic rules")
	}
	// DynPos of the dynamic rule must be 0; of fixed rules -1.
	for i := range g.Rules {
		want := int32(-1)
		if g.Rules[i].IsDynamic() {
			want = 0
		}
		if got := g.DynPos(i); got != want {
			t.Errorf("DynPos(%s) = %d, want %d", g.RuleName(i), got, want)
		}
	}
}

func TestMustPanics(t *testing.T) {
	g := MustParse(demoSrc)
	for name, f := range map[string]func(){
		"MustOp": func() { g.MustOp("Nope") },
		"MustNT": func() { g.MustNT("nope") },
		"MustParse": func() {
			MustParse("%term A(0) A(0)")
		},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		})
	}
}

func TestChainRuleIndexes(t *testing.T) {
	g := MustParse(demoSrc)
	reg := g.MustNT("reg")
	from := g.ChainRulesFrom(reg)
	if len(from) != 1 {
		t.Fatalf("chain rules from reg = %d, want 1", len(from))
	}
	if r := &g.Rules[from[0]]; g.NTName(r.LHS) != "addr" {
		t.Errorf("chain rule from reg has LHS %s, want addr", g.NTName(r.LHS))
	}
	if len(g.ChainRules()) != 1 {
		t.Errorf("total chain rules = %d, want 1", len(g.ChainRules()))
	}
}
