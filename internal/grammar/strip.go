package grammar

import "fmt"

// StripDynamic returns a copy of g with all dynamic-cost rules removed.
//
// This is the grammar an offline (burg-style) automaton generator can
// actually handle — classical tree-parsing automata must know all costs at
// table-generation time — and it is also the "fixed costs only" variant
// used to measure the code-quality value of dynamic rules. Helper rules
// produced by splitting a removed dynamic rule are removed along with it
// when nothing else uses their helper nonterminals.
func (g *Grammar) StripDynamic() (*Grammar, error) {
	ng := &Grammar{
		Name:  g.Name + ".fixed",
		Ops:   append([]Op(nil), g.Ops...),
		Start: g.Start,
	}
	// Nonterminals keep their ids so cost tables remain comparable between
	// the stripped and unstripped grammars.
	ng.Nonterms = append([]Nonterm(nil), g.Nonterms...)

	// Drop dynamic rules, then iteratively drop helper rules whose helper
	// LHS nonterminal is no longer referenced by any surviving rule.
	keep := make([]bool, len(g.Rules))
	for i := range g.Rules {
		keep[i] = !g.Rules[i].IsDynamic()
	}
	for changed := true; changed; {
		changed = false
		used := make([]bool, len(g.Nonterms))
		used[g.Start] = true
		for i := range g.Rules {
			if !keep[i] {
				continue
			}
			r := &g.Rules[i]
			if r.IsChain {
				used[r.ChainRHS] = true
			} else {
				for _, k := range r.Kids {
					used[k] = true
				}
			}
		}
		for i := range g.Rules {
			r := &g.Rules[i]
			if keep[i] && g.Nonterms[r.LHS].Helper && !used[r.LHS] {
				keep[i] = false
				changed = true
			}
		}
	}
	for i := range g.Rules {
		if keep[i] {
			ng.Rules = append(ng.Rules, g.Rules[i])
		}
	}
	if len(ng.Rules) == 0 {
		return nil, fmt.Errorf("grammar %s: stripping dynamic rules leaves no rules", g.Name)
	}
	ng.buildIndexes()
	if err := ng.Validate(); err != nil {
		return nil, fmt.Errorf("grammar %s without dynamic rules is not closed: %w", g.Name, err)
	}
	return ng, nil
}
