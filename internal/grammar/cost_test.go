package grammar

import (
	"testing"
	"testing/quick"
)

func TestCostAdd(t *testing.T) {
	cases := []struct {
		a, b, want Cost
	}{
		{0, 0, 0},
		{1, 2, 3},
		{Inf, 0, Inf},
		{0, Inf, Inf},
		{Inf, Inf, Inf},
		{Inf - 1, 1, Inf},
		{Inf - 1, 0, Inf - 1},
	}
	for _, c := range cases {
		if got := c.a.Add(c.b); got != c.want {
			t.Errorf("%d.Add(%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: Add is commutative, monotone, and saturates at Inf.
func TestCostAddProperties(t *testing.T) {
	clamp := func(x int32) Cost {
		c := Cost(x)
		if c < 0 {
			c = -c
		}
		if c > Inf {
			c = Inf
		}
		return c
	}
	commutative := func(x, y int32) bool {
		a, b := clamp(x), clamp(y)
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Error(err)
	}
	bounded := func(x, y int32) bool {
		a, b := clamp(x), clamp(y)
		s := a.Add(b)
		return s <= Inf && s >= a && s >= b || s == Inf
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Error(err)
	}
	infAbsorbs := func(x int32) bool {
		a := clamp(x)
		return Inf.Add(a) == Inf && a.Add(Inf) == Inf
	}
	if err := quick.Check(infAbsorbs, nil); err != nil {
		t.Error(err)
	}
}

func TestIsInf(t *testing.T) {
	if Cost(0).IsInf() || Cost(Inf-1).IsInf() {
		t.Error("finite costs reported infinite")
	}
	if !Inf.IsInf() || !(Inf + 5).IsInf() {
		t.Error("infinite costs reported finite")
	}
}

func TestMinCost(t *testing.T) {
	if MinCost(3, 5) != 3 || MinCost(5, 3) != 3 || MinCost(Inf, 0) != 0 {
		t.Error("MinCost broken")
	}
}
