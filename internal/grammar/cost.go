package grammar

// Cost is the cost of a rule or a (partial) derivation.
//
// Costs are small non-negative integers in practice (they model the cost of
// the instructions a rule emits). Inf is the sentinel for "not derivable" /
// "rule not applicable"; dynamic-cost functions return Inf to make a rule
// inapplicable at a node, which is the dominant use of dynamic costs in
// lcc-style machine descriptions.
type Cost int32

// Inf is the "infinite" cost sentinel. It is chosen so that Add can sum
// several Inf values without overflowing int32 before saturating.
const Inf Cost = 1 << 28

// Add returns a+b, saturating at Inf. Any sum that reaches or exceeds Inf
// is normalized back to exactly Inf so that state hashing sees a canonical
// representation of "not derivable".
func (a Cost) Add(b Cost) Cost {
	s := a + b
	if s >= Inf {
		return Inf
	}
	return s
}

// IsInf reports whether c represents "not derivable".
func (c Cost) IsInf() bool { return c >= Inf }

// MinCost returns the smaller of a and b.
func MinCost(a, b Cost) Cost {
	if a < b {
		return a
	}
	return b
}
