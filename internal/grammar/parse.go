package grammar

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a burg-style grammar description and returns a validated,
// normal-form Grammar.
//
// Syntax (line oriented; '//' and '#' start comments; newlines inside
// parentheses are ignored so patterns may wrap):
//
//	%name  x86
//	%start stmt
//	%term  Plus(2) Load(1) Reg(0) Const(0)
//
//	reg:  Reg                       = 2 (0)
//	reg:  Plus(reg, reg)            = 4 (1)  "addq %1, %0"
//	reg:  Load(addr)                = 3 (1)  "movq (%0), %d"
//	addr: reg                       = 1 (0)
//	con:  Const                         (0)
//	reg:  Const                         (dyn imm16)  "li %d, %c"
//	stmt: Store(addr, Plus(Load(addr), reg)) = 6 (1) "addq %1, (%0)"
//
// Rule numbers ("= n") are optional; unnumbered rules are assigned numbers
// after the largest explicit one. Costs default to 0 when omitted. A cost
// of "(dyn name)" marks a dynamic-cost rule; the name is bound to a Go
// function via DynEnv at engine-construction time. Multi-node patterns are
// split into normal form automatically (see Normalize).
func Parse(src string) (*Grammar, error) {
	p := &parser{lex: newLexer(src)}
	raw, err := p.parse()
	if err != nil {
		return nil, err
	}
	return raw.finish()
}

// MustParse is Parse for statically known grammars; it panics on error.
func MustParse(src string) *Grammar {
	g, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return g
}

// ---------------------------------------------------------------------------
// Raw (pre-normalization) representation

// PatNode is a node of a source-level rule pattern: either an operator with
// sub-patterns or a nonterminal leaf.
type PatNode struct {
	IsOp bool
	Name string // operator or nonterminal name
	Kids []*PatNode
}

func (p *PatNode) String() string {
	if !p.IsOp || len(p.Kids) == 0 {
		return p.Name
	}
	var b strings.Builder
	b.WriteString(p.Name)
	b.WriteByte('(')
	for i, k := range p.Kids {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(k.String())
	}
	b.WriteByte(')')
	return b.String()
}

// rawRule is a parsed but not yet normalized rule.
type rawRule struct {
	line     int
	lhs      string
	pat      *PatNode
	id       int // -1 if unnumbered
	cost     Cost
	dyn      string
	template string
	src      string
}

// rawGrammar collects parse results before normalization and validation.
type rawGrammar struct {
	name  string
	start string
	terms []Op
	rules []rawRule
}

// ---------------------------------------------------------------------------
// Lexer

type tokKind int

const (
	tEOF tokKind = iota
	tNewline
	tIdent
	tNum
	tString
	tPunct // ( ) , : = %
)

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src   string
	pos   int
	line  int
	depth int // parenthesis nesting; newlines inside parens are skipped
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) next() token {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.pos++
			l.line++
			if l.depth > 0 {
				continue
			}
			return token{tNewline, "\n", l.line - 1}
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		case c == '"':
			return l.lexString()
		case isIdentStart(c):
			return l.lexIdent()
		case c >= '0' && c <= '9' || c == '-':
			return l.lexNum()
		case c == '(':
			l.depth++
			l.pos++
			return token{tPunct, "(", l.line}
		case c == ')':
			if l.depth > 0 {
				l.depth--
			}
			l.pos++
			return token{tPunct, ")", l.line}
		case c == ',' || c == ':' || c == '=' || c == '%':
			l.pos++
			return token{tPunct, string(c), l.line}
		default:
			return token{tPunct, string(c), l.line}
		}
	}
	return token{tEOF, "", l.line}
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func (l *lexer) lexString() token {
	start := l.pos + 1
	i := start
	for i < len(l.src) && l.src[i] != '"' && l.src[i] != '\n' {
		i++
	}
	text := l.src[start:i]
	if i < len(l.src) && l.src[i] == '"' {
		i++
	}
	l.pos = i
	return token{tString, text, l.line}
}

func (l *lexer) lexIdent() token {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	return token{tIdent, l.src[start:l.pos], l.line}
}

func (l *lexer) lexNum() token {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	return token{tNum, l.src[start:l.pos], l.line}
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.'
}

// ---------------------------------------------------------------------------
// Parser

type parser struct {
	lex    *lexer
	tok    token
	peeked *token
}

func (p *parser) next() token {
	if p.peeked != nil {
		t := *p.peeked
		p.peeked = nil
		p.tok = t
		return t
	}
	p.tok = p.lex.next()
	return p.tok
}

func (p *parser) peek() token {
	if p.peeked == nil {
		t := p.lex.next()
		p.peeked = &t
	}
	return *p.peeked
}

func (p *parser) errf(line int, format string, args ...any) error {
	return fmt.Errorf("grammar:%d: %s", line, fmt.Sprintf(format, args...))
}

func (p *parser) parse() (*rawGrammar, error) {
	raw := &rawGrammar{name: "grammar"}
	for {
		t := p.next()
		switch {
		case t.kind == tEOF:
			return raw, nil
		case t.kind == tNewline:
			continue
		case t.kind == tPunct && t.text == "%":
			if err := p.parseDirective(raw); err != nil {
				return nil, err
			}
		case t.kind == tIdent:
			if err := p.parseRule(raw, t); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf(t.line, "unexpected token %q", t.text)
		}
	}
}

func (p *parser) parseDirective(raw *rawGrammar) error {
	t := p.next()
	if t.kind != tIdent {
		return p.errf(t.line, "expected directive name after %%")
	}
	switch t.text {
	case "name":
		n := p.next()
		if n.kind != tIdent {
			return p.errf(n.line, "%%name needs an identifier")
		}
		raw.name = n.text
	case "start":
		n := p.next()
		if n.kind != tIdent {
			return p.errf(n.line, "%%start needs a nonterminal name")
		}
		raw.start = n.text
	case "term":
		for {
			n := p.peek()
			if n.kind != tIdent {
				break
			}
			p.next()
			arity := 0
			if q := p.peek(); q.kind == tPunct && q.text == "(" {
				p.next()
				a := p.next()
				if a.kind != tNum {
					return p.errf(a.line, "%%term %s: expected arity number", n.text)
				}
				v, err := strconv.Atoi(a.text)
				if err != nil || v < 0 || v > MaxArity {
					return p.errf(a.line, "%%term %s: arity must be 0..%d", n.text, MaxArity)
				}
				arity = v
				if c := p.next(); !(c.kind == tPunct && c.text == ")") {
					return p.errf(c.line, "%%term %s: expected ')'", n.text)
				}
			}
			for _, op := range raw.terms {
				if op.Name == n.text {
					return p.errf(n.line, "duplicate %%term %s", n.text)
				}
			}
			raw.terms = append(raw.terms, Op{Name: n.text, Arity: arity})
		}
	default:
		return p.errf(t.line, "unknown directive %%%s", t.text)
	}
	return p.endLine()
}

func (p *parser) endLine() error {
	t := p.next()
	if t.kind == tNewline || t.kind == tEOF {
		return nil
	}
	return p.errf(t.line, "unexpected %q at end of line", t.text)
}

func (p *parser) parseRule(raw *rawGrammar, lhs token) error {
	r := rawRule{line: lhs.line, lhs: lhs.text, id: -1}
	if t := p.next(); !(t.kind == tPunct && t.text == ":") {
		return p.errf(t.line, "expected ':' after rule left-hand side %q", lhs.text)
	}
	pat, err := p.parsePattern(raw)
	if err != nil {
		return err
	}
	r.pat = pat
	// Optional "= number".
	if t := p.peek(); t.kind == tPunct && t.text == "=" {
		p.next()
		n := p.next()
		if n.kind != tNum {
			return p.errf(n.line, "expected rule number after '='")
		}
		v, err := strconv.Atoi(n.text)
		if err != nil || v < 0 {
			return p.errf(n.line, "bad rule number %q", n.text)
		}
		r.id = v
	}
	// Optional "(cost)" or "(dyn name)".
	if t := p.peek(); t.kind == tPunct && t.text == "(" {
		p.next()
		c := p.next()
		switch {
		case c.kind == tNum:
			v, err := strconv.Atoi(c.text)
			if err != nil || v < 0 || Cost(v) >= Inf {
				return p.errf(c.line, "bad cost %q", c.text)
			}
			r.cost = Cost(v)
		case c.kind == tIdent && c.text == "dyn":
			n := p.next()
			if n.kind != tIdent {
				return p.errf(n.line, "expected dynamic-cost function name after 'dyn'")
			}
			r.dyn = n.text
		default:
			return p.errf(c.line, "expected cost number or 'dyn name', got %q", c.text)
		}
		if t := p.next(); !(t.kind == tPunct && t.text == ")") {
			return p.errf(t.line, "expected ')' after cost")
		}
	}
	// Optional template string.
	if t := p.peek(); t.kind == tString {
		p.next()
		r.template = t.text
	}
	r.src = fmt.Sprintf("%s: %s", r.lhs, r.pat)
	raw.rules = append(raw.rules, r)
	return p.endLine()
}

func (p *parser) parsePattern(raw *rawGrammar) (*PatNode, error) {
	t := p.next()
	if t.kind != tIdent {
		return nil, p.errf(t.line, "expected pattern, got %q", t.text)
	}
	n := &PatNode{Name: t.text, IsOp: raw.isTerm(t.text)}
	// Only operators of arity > 0 take argument lists; after a nonterminal
	// or leaf-operator pattern a '(' belongs to the cost specification.
	if q := p.peek(); n.IsOp && raw.arity(t.text) > 0 && q.kind == tPunct && q.text == "(" {
		p.next()
		for {
			kid, err := p.parsePattern(raw)
			if err != nil {
				return nil, err
			}
			n.Kids = append(n.Kids, kid)
			q := p.next()
			if q.kind == tPunct && q.text == "," {
				continue
			}
			if q.kind == tPunct && q.text == ")" {
				break
			}
			return nil, p.errf(q.line, "expected ',' or ')' in pattern, got %q", q.text)
		}
	}
	if n.IsOp {
		if a := raw.arity(t.text); a != len(n.Kids) {
			return nil, p.errf(t.line, "operator %s has arity %d but pattern gives %d children",
				t.text, a, len(n.Kids))
		}
	}
	return n, nil
}

func (raw *rawGrammar) isTerm(name string) bool {
	for _, op := range raw.terms {
		if op.Name == name {
			return true
		}
	}
	return false
}

func (raw *rawGrammar) arity(name string) int {
	for _, op := range raw.terms {
		if op.Name == name {
			return op.Arity
		}
	}
	return -1
}
