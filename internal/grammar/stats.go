package grammar

import (
	"fmt"
	"strings"
)

// Stats summarizes a grammar, in the spirit of the grammar-statistics
// tables of the tree-parsing instruction-selection literature.
type Stats struct {
	Name            string
	Operators       int
	Nonterminals    int
	HelperNonterms  int
	SourceRules     int // distinct external rule numbers
	NormalizedRules int // rules after normal-form conversion
	ChainRules      int
	BaseRules       int
	DynamicRules    int
	MaxRulesPerOp   int
	AvgRulesPerOp   float64
}

// ComputeStats derives summary statistics for g.
func (g *Grammar) ComputeStats() Stats {
	s := Stats{
		Name:            g.Name,
		Operators:       len(g.Ops),
		Nonterminals:    len(g.Nonterms),
		NormalizedRules: len(g.Rules),
	}
	srcIDs := map[int]bool{}
	for i := range g.Rules {
		r := &g.Rules[i]
		srcIDs[r.ID] = true
		if r.IsChain {
			s.ChainRules++
		} else {
			s.BaseRules++
		}
		if r.IsDynamic() {
			s.DynamicRules++
		}
	}
	s.SourceRules = len(srcIDs)
	for _, nt := range g.Nonterms {
		if nt.Helper {
			s.HelperNonterms++
		}
	}
	total := 0
	for op := range g.Ops {
		n := len(g.baseByOp[op])
		total += n
		if n > s.MaxRulesPerOp {
			s.MaxRulesPerOp = n
		}
	}
	if len(g.Ops) > 0 {
		s.AvgRulesPerOp = float64(total) / float64(len(g.Ops))
	}
	return s
}

// String renders the statistics as a one-line table row.
func (s Stats) String() string {
	return fmt.Sprintf("%-10s ops=%-3d nts=%-3d(+%d helper) rules=%d/%d chain=%d base=%d dyn=%d maxPerOp=%d",
		s.Name, s.Operators, s.Nonterminals, s.HelperNonterms,
		s.SourceRules, s.NormalizedRules, s.ChainRules, s.BaseRules,
		s.DynamicRules, s.MaxRulesPerOp)
}

// Dump renders the whole normal-form grammar, mostly for debugging and
// golden tests.
func (g *Grammar) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%%name %s\n%%start %s\n", g.Name, g.NTName(g.Start))
	for i := range g.Rules {
		r := &g.Rules[i]
		if r.IsChain {
			fmt.Fprintf(&b, "%s: %s", g.NTName(r.LHS), g.NTName(r.ChainRHS))
		} else {
			fmt.Fprintf(&b, "%s: %s", g.NTName(r.LHS), g.OpName(r.Op))
			if len(r.Kids) > 0 {
				b.WriteByte('(')
				for j, k := range r.Kids {
					if j > 0 {
						b.WriteString(", ")
					}
					b.WriteString(g.NTName(k))
				}
				b.WriteByte(')')
			}
		}
		fmt.Fprintf(&b, " = %s", g.RuleName(i))
		if r.IsDynamic() {
			fmt.Fprintf(&b, " (dyn %s)", r.DynCost)
		} else {
			fmt.Fprintf(&b, " (%d)", r.Cost)
		}
		if r.Template != "" {
			fmt.Fprintf(&b, " %q", r.Template)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
