package grammar

import (
	"strings"
	"testing"
)

// FuzzGrammarParse: the burg-style grammar parser must never panic, and
// any grammar it accepts must be internally consistent — reparsing the
// same source yields an identical normal form (Dump), and the stats,
// strip and closure machinery all run on it without panicking.
func FuzzGrammarParse(f *testing.F) {
	// Seeds: the doc-comment example, a dynamic-cost grammar, multi-node
	// patterns that exercise normalization, and malformed fragments.
	for _, seed := range []string{
		`%name demo
%start stmt
%term Plus(2) Load(1) Store(2) Reg(0) Const(0)
reg:  Reg = 1 (0)
reg:  Plus(reg, reg) = 2 (1) "add %1, %0"
reg:  Load(addr) = 3 (1) "mov (%0), %d"
addr: reg = 4 (0)
stmt: Store(addr, reg) = 5 (1) "mov %1, (%0)"
`,
		`%name dyn
%start stmt
%term Add(2) Cnst(0) Reg(0) Asgn(2)
reg: Reg (0)
con: Cnst (0)
reg: con (dyn imm16) "li %d, %c"
reg: Add(reg, reg) = 7 (1)
stmt: Asgn(reg, reg) (1)
`,
		`%name multi
%start stmt
%term Store(2) Load(1) Plus(2) Reg(0)
reg: Reg (0)
reg: Plus(reg, reg) (1)
stmt: Store(Reg, Plus(Load(Reg), reg)) = 6 (1) "rmw"
`,
		"%term X(9)\nx: X (0)\n",
		"%start a\n",
		"a: b = (",
		"%term A(1)\n// comment only\n",
		"reg: Plus(reg",
		"%name x\n%start s\n%term T(0)\ns: T (dyn ",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			// Rejected input: the error must be a real diagnostic.
			if err.Error() == "" {
				t.Fatalf("empty parse error for %q", src)
			}
			return
		}
		// Accepted input: reparsing must reproduce the identical normal
		// form, and the derived machinery must hold together.
		d1 := g.Dump()
		g2, err := Parse(src)
		if err != nil {
			t.Fatalf("accepted input rejected on reparse: %v\ninput: %q", err, src)
		}
		if d2 := g2.Dump(); d1 != d2 {
			t.Fatalf("reparse changed the normal form:\nfirst:\n%s\nsecond:\n%s\ninput: %q", d1, d2, src)
		}
		st := g.ComputeStats()
		if st.NormalizedRules != g.NumRules() {
			t.Fatalf("stats disagree with the grammar: %d != %d", st.NormalizedRules, g.NumRules())
		}
		for i := range g.Rules {
			r := &g.Rules[i]
			if !r.IsChain && len(r.Kids) != g.Arity(r.Op) {
				t.Fatalf("rule %s: %d kid nonterminals for arity-%d operator",
					g.RuleName(i), len(r.Kids), g.Arity(r.Op))
			}
		}
		if g.HasAnyDynRules() {
			if _, err := g.StripDynamic(); err != nil && !strings.Contains(err.Error(), "strip") {
				// Stripping may legitimately fail (e.g. a start symbol only
				// reachable through dynamic rules) but must diagnose, not
				// panic.
				_ = err
			}
		}
	})
}
