package gen

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
)

// The process-global preload store: `.isel` blobs compiled into the
// binary. Generated Go source (GoSource) registers its embedded blob here
// from an init function; the `offline` engine constructor looks the
// grammar's fingerprint up before falling back to compiling the closure
// in-process. Keyed by fingerprint, so registration is independent of how
// a grammar gets loaded or renamed.

var (
	preMu    sync.RWMutex
	preBlobs = map[uint64][]byte{}
	preNames = map[uint64]string{}
)

// Register adds a blob to the preload store, keyed by the fingerprint in
// its header. Registering two blobs for one fingerprint fails (identical
// grammars compile to identical blobs, so a duplicate is a build mistake,
// not a refresh).
func Register(blob []byte) (*Header, error) {
	h, err := ReadHeader(bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	preMu.Lock()
	defer preMu.Unlock()
	if prev, dup := preNames[h.Fingerprint]; dup {
		return nil, fmt.Errorf("gen: tables for fingerprint %016x registered twice (%q and %q)", h.Fingerprint, prev, h.Grammar)
	}
	preBlobs[h.Fingerprint] = blob
	preNames[h.Fingerprint] = h.Grammar
	return h, nil
}

// MustRegister is Register for generated init functions.
func MustRegister(blob []byte) {
	if _, err := Register(blob); err != nil {
		panic(err)
	}
}

// Lookup returns the registered blob for a grammar fingerprint.
func Lookup(fp uint64) ([]byte, bool) {
	preMu.RLock()
	defer preMu.RUnlock()
	b, ok := preBlobs[fp]
	return b, ok
}

// Registered lists the preloaded grammar names, sorted — diagnostics for
// front ends reporting what the binary ships.
func Registered() []string {
	preMu.RLock()
	defer preMu.RUnlock()
	names := make([]string, 0, len(preNames))
	for _, n := range preNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
