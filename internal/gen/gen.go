// Package gen is the ahead-of-time automaton compiler: the offline half
// of the paper's comparison that the repo had been missing. Where the
// on-demand engine (internal/core) constructs states lazily under
// traffic, gen computes the grammar's entire tree-parsing automaton —
// the exhaustive fixpoint over leaf/unary/binary transitions, closed
// over Chase representer classes and interned through the shared
// automaton.Table — before any tree is ever labeled, and serializes the
// result two ways:
//
//   - a compact versioned binary blob (the `.isel` format; Encode/Decode)
//     that a serving process loads at Registry construction, so a machine
//     is fully warm before its first request, and
//   - generated Go source (GoSource) embedding the same blob and
//     registering it in the process-global preload store at init time,
//     for tables compiled into the binary itself.
//
// cmd/iselgen is the front end; the `offline` engine kind (the fourth
// registered repro engine) consumes the output. The tradeoff measured
// against the on-demand engine is the paper's: offline tables cost full
// generation up front and cannot host dynamic-cost rules, but serve every
// request at pure table-lookup speed with zero construction under
// traffic.
package gen

import (
	"fmt"
	"time"

	"repro/internal/automaton"
	"repro/internal/core"
	"repro/internal/grammar"
)

// Config tunes ahead-of-time compilation.
type Config struct {
	// DeltaCap bounds relative costs in states (automaton.DefaultDeltaCap
	// if zero).
	DeltaCap grammar.Cost
	// MaxStates bounds the closure (a generator-side safety valve, 1<<20 if
	// zero). A closure pruned by the bound fails with a
	// *automaton.TruncatedError carrying the truncation diagnostics.
	MaxStates int
}

// Stats is the closure report of one compilation — what
// `iselgen -stats` prints.
type Stats struct {
	Grammar     string
	Fingerprint uint64
	Ops         int
	Nonterms    int
	Rules       int
	// States and Representers describe the computed closure;
	// TransitionEntries counts the tabulated (compressed) transition
	// cells.
	States            int
	Representers      int
	TransitionEntries int
	// TableBytes is the in-memory footprint of the compact (compressed)
	// automaton; BlobBytes the size of the serialized `.isel` form
	// (version 2: varint/delta-encoded state vectors — the wire form the
	// cluster's blob exchange ships). BlobBytesFixed is the same table set
	// in the fixed-width v1 encoding, so the encoded-vs-expanded ratio the
	// v2 format buys on the wire is visible in `iselgen -stats`.
	// ExpandedTableBytes is the footprint a serving process actually pays:
	// the preloaded offline engine expands the compressed tables into
	// direct state-indexed arrays at load time (automaton.Static.Expand),
	// and those arrays — 4·states² per binary operator — dominate the
	// served memory, so accounting only TableBytes understates it.
	TableBytes         int
	ExpandedTableBytes int
	BlobBytes          int
	BlobBytesFixed     int
	GenTime            time.Duration
}

// Result is a completed ahead-of-time compilation.
type Result struct {
	Grammar *grammar.Grammar
	// Auto is the generated automaton, ready to label in-process.
	Auto *automaton.Static
	// Tables is its exported flat form; Blob its serialized `.isel`
	// bytes — encoded once here so callers never pay a second pass.
	Tables *automaton.TableSet
	Blob   []byte
	Stats  Stats
}

// Fingerprint identifies a grammar for table compatibility: the same
// identity the on-demand persistence format uses, so one fingerprint
// notion covers every serialized automaton in the repo.
func Fingerprint(g *grammar.Grammar) uint64 { return core.Fingerprint(g) }

// Compile computes the full (or MaxStates-bounded) closure of g's
// tree-parsing automaton. It fails for grammars with dynamic-cost rules —
// the classical offline limitation the paper's on-demand construction
// lifts; strip them first (grammar.StripDynamic) to tabulate the
// fixed-cost subset — and with a *automaton.TruncatedError when the
// closure is pruned by Config.MaxStates.
func Compile(g *grammar.Grammar, cfg Config) (*Result, error) {
	if g.HasAnyDynRules() {
		return nil, fmt.Errorf("gen: grammar %s has dynamic-cost rules; ahead-of-time tables are impossible (strip them first, or use the on-demand engine)", g.Name)
	}
	start := time.Now()
	a, err := automaton.Generate(g, automaton.StaticConfig{
		DeltaCap:  cfg.DeltaCap,
		MaxStates: cfg.MaxStates,
	})
	if err != nil {
		return nil, err
	}
	ts := a.Export()
	blob, err := EncodeBytes(g, ts)
	if err != nil {
		return nil, err
	}
	fixed, err := EncodeBytesV1(g, ts)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	st := g.ComputeStats()
	res := &Result{
		Grammar: g,
		Auto:    a,
		Tables:  ts,
		Blob:    blob,
		Stats: Stats{
			Grammar:            g.Name,
			Fingerprint:        Fingerprint(g),
			Ops:                st.Operators,
			Nonterms:           st.Nonterminals,
			Rules:              st.NormalizedRules,
			States:             a.NumStates(),
			Representers:       a.Gen.Representers,
			TransitionEntries:  a.NumTransitions(),
			TableBytes:         a.MemoryBytes(),
			ExpandedTableBytes: a.MemoryBytes() + a.ExpandBytes(),
			BlobBytes:          len(blob),
			BlobBytesFixed:     len(fixed),
			GenTime:            elapsed,
		},
	}
	return res, nil
}
