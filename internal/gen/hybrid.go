package gen

import (
	"fmt"
	"io"
	"time"

	"repro/internal/automaton"
	"repro/internal/grammar"
)

// ErrNoFixedClosure re-exports the typed "every leaf operator is dynamic"
// failure of hybrid compilation and loading; match with errors.Is. A
// grammar in this situation has no offline half at all — callers should
// use the plain on-demand engine.
var ErrNoFixedClosure = automaton.ErrNoFixedClosure

// CompileHybrid computes the fixed-operator-subset closure of g — the
// offline half of the hybrid engine. Unlike Compile it accepts grammars
// with dynamic-cost rules: dynamic operators are simply excluded from the
// closure (they fall through to the on-demand path at serving time), and
// the resulting blob uses the FULL grammar's fingerprint, because its
// states are genuine full-grammar states (contrast StripDynamic, which
// renumbers rules and so produces tables of a different grammar).
//
// For a grammar without dynamic rules the output blob is byte-identical
// to Compile's — the fixed subset is the whole grammar — which is why the
// preload store needs no hybrid-specific keying: one fingerprint, one
// blob, loadable by whichever engine kind the grammar calls for.
//
// Result.Auto is nil for hybrid compilations: the closure is not a
// complete static automaton (dynamic operators are missing), so there is
// nothing that could label in-process on its own. Use LoadHybrid +
// core.NewHybrid to serve it.
//
// Fails with ErrNoFixedClosure when every leaf operator carries dynamic
// rules, and with *automaton.TruncatedError when Config.MaxStates prunes
// the closure.
func CompileHybrid(g *grammar.Grammar, cfg Config) (*Result, error) {
	start := time.Now()
	ts, gst, err := automaton.GenerateHybridTables(g, automaton.StaticConfig{
		DeltaCap:  cfg.DeltaCap,
		MaxStates: cfg.MaxStates,
	})
	if err != nil {
		return nil, err
	}
	blob, err := EncodeBytes(g, ts)
	if err != nil {
		return nil, err
	}
	fixed, err := EncodeBytesV1(g, ts)
	if err != nil {
		return nil, err
	}
	// Build the serving overlay once here as a self-check (the same
	// validation a preloading server will run) and to account the expanded
	// serving footprint.
	ov, err := automaton.NewHybridOverlay(g, ts)
	if err != nil {
		return nil, fmt.Errorf("gen: hybrid tables for %s failed their own validation: %w", g.Name, err)
	}
	elapsed := time.Since(start)
	st := g.ComputeStats()
	return &Result{
		Grammar: g,
		Tables:  ts,
		Blob:    blob,
		Stats: Stats{
			Grammar:            g.Name,
			Fingerprint:        Fingerprint(g),
			Ops:                st.Operators,
			Nonterms:           st.Nonterminals,
			Rules:              st.NormalizedRules,
			States:             gst.States,
			Representers:       gst.Representers,
			TransitionEntries:  ts.TransitionEntries(),
			TableBytes:         gst.TableBytes,
			ExpandedTableBytes: gst.TableBytes + ov.MemoryBytes(),
			BlobBytes:          len(blob),
			BlobBytesFixed:     len(fixed),
			GenTime:            elapsed,
		},
	}, nil
}

// LoadHybrid decodes a fixed-subset blob for g (full-grammar fingerprint)
// and validates it into the hybrid engine's serving overlay — the hybrid
// counterpart of Load. A full-table blob for a fixed-only grammar also
// loads (its fixed subset is the whole grammar); a stripped-grammar blob
// does not (fingerprint mismatch — its states are not states of g).
func LoadHybrid(g *grammar.Grammar, rd io.Reader) (*automaton.HybridOverlay, error) {
	ts, err := Decode(g, rd)
	if err != nil {
		return nil, err
	}
	return automaton.NewHybridOverlay(g, ts)
}
