package gen

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/automaton"
	"repro/internal/grammar"
	"repro/internal/ir"
	"repro/internal/md"
)

// fixedGrammar loads a machine description with its dynamic rules
// stripped — the grammars the offline generator can tabulate.
func fixedGrammar(t *testing.T, name string) *grammar.Grammar {
	t.Helper()
	d, err := md.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.Grammar.StripDynamic()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRoundTrip: encode/decode must reconstitute an automaton that is
// indistinguishable from the in-process generation — same table shape,
// same label for every node of a few hundred random forests.
func TestRoundTrip(t *testing.T) {
	for _, name := range md.Names() {
		g := fixedGrammar(t, name)
		res, err := Compile(g, Config{})
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		blob := res.Blob
		if res.Stats.BlobBytes != len(blob) || len(blob) == 0 {
			t.Errorf("%s: Stats.BlobBytes = %d, blob %d", g.Name, res.Stats.BlobBytes, len(blob))
		}
		loaded, err := Load(g, bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if loaded.NumStates() != res.Auto.NumStates() || loaded.NumTransitions() != res.Auto.NumTransitions() {
			t.Fatalf("%s: loaded %d states / %d transitions, generated %d / %d",
				g.Name, loaded.NumStates(), loaded.NumTransitions(), res.Auto.NumStates(), res.Auto.NumTransitions())
		}
		for seed := 0; seed < 60; seed++ {
			f := ir.RandomForest(g, ir.RandomConfig{Seed: int64(seed), Trees: 3, MaxDepth: 5, MaxLeafVal: 64})
			want := res.Auto.LabelStates(f)
			got := loaded.LabelStates(f)
			for _, n := range f.Nodes {
				for nt := 0; nt < g.NumNonterms(); nt++ {
					if want.RuleAt(n, grammar.NT(nt)) != got.RuleAt(n, grammar.NT(nt)) {
						t.Fatalf("%s seed %d node %d nt %d: loaded automaton disagrees with generated one",
							g.Name, seed, n.Index, nt)
					}
				}
			}
			res.Auto.ReleaseLabeling(want)
			loaded.ReleaseLabeling(got)
		}
	}
}

// TestEncodeDeterministic: the same grammar must serialize to the same
// bytes every time — the property the committed golden files rely on.
// TestExpandedTableBytesAccounting: the generation-time stat must predict
// exactly what a serving process pays — a loaded blob, expanded into
// direct tables the way preloaded serving does, must report precisely
// Stats.ExpandedTableBytes, and the expansion increment must match
// ExpandBytes. This closes the accounting gap where offline table memory
// was reported pre-expansion only.
func TestExpandedTableBytesAccounting(t *testing.T) {
	for _, name := range md.Names() {
		g := fixedGrammar(t, name)
		res, err := Compile(g, Config{})
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		// Generate-time automaton stays compact: its footprint is the
		// TableBytes stat, and the expansion increment is its ExpandBytes.
		if got := res.Auto.MemoryBytes(); got != res.Stats.TableBytes {
			t.Errorf("%s: compact footprint %d != Stats.TableBytes %d", g.Name, got, res.Stats.TableBytes)
		}
		predicted := res.Auto.ExpandBytes()
		if res.Stats.ExpandedTableBytes != res.Stats.TableBytes+predicted {
			t.Errorf("%s: Stats.ExpandedTableBytes %d != TableBytes %d + ExpandBytes %d",
				g.Name, res.Stats.ExpandedTableBytes, res.Stats.TableBytes, predicted)
		}
		// A loaded blob is the serving form — NewStaticFromTables expands
		// at load time — so its real footprint must be exactly what the
		// stat predicted at generation time.
		loaded, err := Load(g, bytes.NewReader(res.Blob))
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if got := loaded.MemoryBytes(); got != res.Stats.ExpandedTableBytes {
			t.Errorf("%s: loaded serving footprint %d != Stats.ExpandedTableBytes %d",
				g.Name, got, res.Stats.ExpandedTableBytes)
		}
		if predicted > 0 && res.Stats.ExpandedTableBytes <= res.Stats.TableBytes {
			t.Errorf("%s: ExpandedTableBytes %d not above compact %d despite expandable tables",
				g.Name, res.Stats.ExpandedTableBytes, res.Stats.TableBytes)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	g := fixedGrammar(t, "x86")
	var blobs [][]byte
	for i := 0; i < 2; i++ {
		res, err := Compile(g, Config{})
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, res.Blob)
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Fatal("two compilations of one grammar produced different blobs")
	}
	src1, err := GoSource("p", "v", mustResult(t, g))
	if err != nil {
		t.Fatal(err)
	}
	src2, err := GoSource("p", "v", mustResult(t, g))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src1, src2) {
		t.Fatal("GoSource output is not deterministic")
	}
}

func mustResult(t *testing.T, g *grammar.Grammar) *Result {
	t.Helper()
	res, err := Compile(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFormatVersions: both live wire versions must round-trip — the v2
// varint/delta form Encode writes and the v1 fixed-width form older
// fleets still ship — decoding to identical table sets, with v2 strictly
// smaller (it is the cluster's wire form; size is the point).
func TestFormatVersions(t *testing.T) {
	check := func(t *testing.T, g *grammar.Grammar, res *Result) {
		v1, err := EncodeBytesV1(g, res.Tables)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := ReadHeader(bytes.NewReader(res.Blob))
		if err != nil {
			t.Fatal(err)
		}
		h1, err := ReadHeader(bytes.NewReader(v1))
		if err != nil {
			t.Fatal(err)
		}
		if h2.Version != 2 || h1.Version != 1 {
			t.Fatalf("versions: blob %d (want 2), fixed-width %d (want 1)", h2.Version, h1.Version)
		}
		if h1.Fingerprint != h2.Fingerprint || h1.States != h2.States {
			t.Fatalf("headers disagree across versions: %+v vs %+v", h1, h2)
		}
		ts2, err := Decode(g, bytes.NewReader(res.Blob))
		if err != nil {
			t.Fatalf("decoding v2: %v", err)
		}
		ts1, err := Decode(g, bytes.NewReader(v1))
		if err != nil {
			t.Fatalf("decoding v1: %v", err)
		}
		if !reflect.DeepEqual(ts1, ts2) {
			t.Fatal("v1 and v2 decode to different table sets")
		}
		if len(res.Blob) >= len(v1) {
			t.Errorf("v2 blob (%d bytes) not smaller than fixed-width v1 (%d bytes)", len(res.Blob), len(v1))
		}
		if res.Stats.BlobBytesFixed != len(v1) {
			t.Errorf("Stats.BlobBytesFixed = %d, v1 encoding is %d bytes", res.Stats.BlobBytesFixed, len(v1))
		}
		// Corruption must be rejected in the v1 path too (the shared
		// content checksum, not the v2 decoder, is the guard).
		bad := append([]byte(nil), v1...)
		bad[len(Magic)+20] ^= 0x40
		if _, err := Decode(g, bytes.NewReader(bad)); err == nil {
			t.Error("Decode accepted a corrupted v1 blob")
		}
	}
	for _, name := range md.Names() {
		t.Run(name+".fixed", func(t *testing.T) {
			g := fixedGrammar(t, name)
			check(t, g, mustResult(t, g))
		})
	}
	// The hybrid fixed-subset closure ships over the same wire: both
	// versions must round-trip it too.
	t.Run("x86.hybrid", func(t *testing.T) {
		g := md.MustLoad("x86").Grammar
		res, err := CompileHybrid(g, Config{})
		if err != nil {
			t.Fatal(err)
		}
		check(t, g, res)
	})
}

// TestCompileRejectsDynamic: grammars with dynamic rules cannot be
// tabulated offline.
func TestCompileRejectsDynamic(t *testing.T) {
	d := md.MustLoad("x86")
	if _, err := Compile(d.Grammar, Config{}); err == nil {
		t.Fatal("Compile accepted a grammar with dynamic-cost rules")
	}
}

// TestTruncation: a closure pruned by MaxStates must fail with the typed
// diagnostics, never return partial tables.
func TestTruncation(t *testing.T) {
	g := fixedGrammar(t, "x86")
	_, err := Compile(g, Config{MaxStates: 10})
	var trunc *automaton.TruncatedError
	if !errors.As(err, &trunc) {
		t.Fatalf("err = %v, want *automaton.TruncatedError", err)
	}
	if trunc.MaxStates != 10 || trunc.States <= 10 || trunc.PendingWork == 0 {
		t.Errorf("implausible truncation diagnostics: %+v", trunc)
	}
}

// TestDecodeRejects: wrong grammar, corrupt magic, and truncated payloads
// must all be rejected with errors, not garbage tables.
func TestDecodeRejects(t *testing.T) {
	g := fixedGrammar(t, "demo")
	other := fixedGrammar(t, "jit64")
	blob := mustResult(t, g).Blob
	if _, err := Decode(other, bytes.NewReader(blob)); err == nil {
		t.Error("Decode accepted tables generated for a different grammar")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if _, err := Decode(g, bytes.NewReader(bad)); err == nil {
		t.Error("Decode accepted a corrupted magic")
	}
	if _, err := Decode(g, bytes.NewReader(blob[:len(blob)-6])); err == nil {
		t.Error("Decode accepted a truncated blob")
	}
	short := append([]byte(nil), blob[:len(blob)-4]...)
	short = append(short, 0xde, 0xad, 0xbe, 0xef)
	if _, err := Decode(g, bytes.NewReader(short)); err == nil {
		t.Error("Decode accepted a blob with a corrupt trailer")
	}
}

// TestLoadRejectsBodyCorruption: bit flips inside the state-vector region
// leave the framing (magic, fingerprint, trailer) intact, so only the
// cost-normalization validation in NewStaticFromTables can catch them —
// a corrupt blob must fail at load, never panic or mislabel at serve
// time.
func TestLoadRejectsBodyCorruption(t *testing.T) {
	g := fixedGrammar(t, "jit64")
	blob := mustResult(t, g).Blob
	// The state vectors start right after the header; flip high bits
	// through that region so deltas go negative or rules leave range.
	start := len(Magic) + 8 + 4 + len(g.Name) + 3*4 + g.NumOps()
	rejected := 0
	const probes = 40
	for i := 0; i < probes; i++ {
		bad := append([]byte(nil), blob...)
		bad[start+i*5] ^= 0x80
		if _, err := Load(g, bytes.NewReader(bad)); err != nil {
			rejected++
		}
	}
	if rejected != probes {
		t.Errorf("only %d/%d corrupt-body probes rejected at load (the content checksum must catch every flip)", rejected, probes)
	}
	// A huge state count with a valid prefix must be rejected before any
	// large allocation (the States*NumNT volume bound).
	bad := append([]byte(nil), blob...)
	pos := len(Magic) + 8 + 4 + len(g.Name) + 8 // the states u32
	bad[pos], bad[pos+1], bad[pos+2] = 0xff, 0xff, 0xfe
	if _, err := Load(g, bytes.NewReader(bad)); err == nil {
		t.Error("Load accepted an implausibly huge state count")
	}
}

// TestHeaderAndRegister: ReadHeader routes blobs without decoding, and
// the preload store rejects duplicate fingerprints.
func TestHeaderAndRegister(t *testing.T) {
	g := fixedGrammar(t, "demo")
	blob := mustResult(t, g).Blob
	h, err := ReadHeader(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if h.Grammar != g.Name || h.Fingerprint != Fingerprint(g) || h.States == 0 {
		t.Fatalf("bad header %+v", h)
	}
	if _, err := Register(blob); err != nil {
		t.Fatal(err)
	}
	if got, ok := Lookup(h.Fingerprint); !ok || !bytes.Equal(got, blob) {
		t.Fatal("registered blob not found by fingerprint")
	}
	if _, err := Register(blob); err == nil {
		t.Fatal("Register accepted a duplicate fingerprint")
	}
}
