package gen

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/automaton"
	"repro/internal/faultinject"
	"repro/internal/grammar"
)

// The `.isel` wire format. Everything after the magic is little-endian
// and fully deterministic, so the same grammar always serializes to the
// same bytes (the golden-file guarantee cmd/iselgen's committed outputs
// rely on). Two versions are live:
//
// Version 1 ("ISEL1\n") writes every table entry as a fixed-width u32.
// Version 2 ("ISEL2\n") keeps the identical header but varint/delta-
// encodes the table sections: state vectors, representer maps and
// transition tables are runs of small, strongly correlated integers, so
// each run is written as zigzag varints of the difference from the
// previous entry. That is what makes `.isel` blobs cheap enough to be the
// cluster's warm-state distribution plane — typically 2-4x smaller on the
// wire than the fixed-width form (iselgen -stats reports both sizes).
//
//	magic   "ISEL1\n" or "ISEL2\n"
//	u64     grammar fingerprint (Fingerprint; name + normal-form dump)
//	u32     grammar-name length, then the name bytes (diagnostics only)
//	u32×3   numOps, numNT, numStates
//	u8×ops  operator arities (structure check against the loading grammar)
//
// Version 1 body:
//
//	states  numStates × numNT × (u32 delta, u32 rule)
//	leaf    numOps × u32 state ids (^0 for non-leaf operators)
//	projs   per operator, per child position < arity:
//	            u32 nreps, then numStates × u32 representer ids
//	trans   per unary operator:  u32 len, len × u32 state ids (t1)
//	        per binary operator: u32 len, len × u32 state ids (t2)
//
// Version 2 body (svar = zigzag varint of the difference from the
// previous entry of the same run, starting from 0; uvar = plain varint):
//
//	deltas  numStates × numNT svar (one run)
//	rules   numStates × numNT svar (one run)
//	leaf    numOps svar
//	projs   per operator, per child position < arity:
//	            uvar nreps, then numStates svar representer ids
//	trans   per unary operator:  uvar len, len svar state ids (t1)
//	        per binary operator: uvar len, len svar state ids (t2)
//
// Both versions end with:
//
//	u32     trailer 0x4c455349 ("ISEL" reversed) — truncation check
//	u64     FNV-64a checksum of everything before it — content check
//
// The trailing checksum is what rejects body corruption the structural
// validation cannot see (a flipped cost bit still yields a well-formed
// state vector); Decode verifies it before parsing a single table.
//
// Loaders read both versions (a fleet mid-upgrade must keep exchanging
// blobs); encoders write version 2. Unknown magics are rejected outright
// instead of guessed at, and a fingerprint mismatch rejects tables
// generated for any other grammar (or another revision of the same
// grammar — the fingerprint covers the normal-form dump).
const (
	// Magic identifies version 1 (fixed-width table entries).
	Magic = "ISEL1\n"
	// MagicV2 identifies version 2 (varint/delta table entries) — what
	// Encode writes.
	MagicV2 = "ISEL2\n"
	// trailer terminates a well-formed blob.
	trailer uint32 = 0x4c455349
)

// Header is the cheap-to-read prefix of a blob: enough to route it to the
// right grammar (fingerprint matching) without decoding any table.
type Header struct {
	// Version is the format version (1 or 2).
	Version     int
	Fingerprint uint64
	// Grammar is the name the tables were generated for (diagnostics; the
	// fingerprint is the authority).
	Grammar string
	NumOps  int
	NumNT   int
	States  int
}

// Encode writes the `.isel` form of ts (generated for g) to w.
func Encode(w io.Writer, g *grammar.Grammar, ts *automaton.TableSet) error {
	blob, err := EncodeBytes(g, ts)
	if err != nil {
		return err
	}
	_, err = w.Write(blob)
	return err
}

// EncodeBytes is the canonical encoder: a version-2 (varint/delta)
// payload plus the trailing FNV-64a content checksum.
func EncodeBytes(g *grammar.Grammar, ts *automaton.TableSet) ([]byte, error) {
	return encodeBytes(g, ts, 2)
}

// EncodeBytesV1 writes the fixed-width version-1 form. Kept for the
// old-version half of the round-trip suite (loaders must read both) and
// for the encoded-vs-expanded size report of `iselgen -stats`.
func EncodeBytesV1(g *grammar.Grammar, ts *automaton.TableSet) ([]byte, error) {
	return encodeBytes(g, ts, 1)
}

func encodeBytes(g *grammar.Grammar, ts *automaton.TableSet, version int) ([]byte, error) {
	var buf bytes.Buffer
	if err := encodePayload(&buf, g, ts, version); err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	buf.Write(sum[:])
	return buf.Bytes(), nil
}

func encodePayload(w io.Writer, g *grammar.Grammar, ts *automaton.TableSet, version int) error {
	bw := bufio.NewWriter(w)
	magic := Magic
	if version == 2 {
		magic = MagicV2
	}
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	put64 := func(v uint64) { binary.Write(bw, binary.LittleEndian, v) }
	put := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	put64(Fingerprint(g))
	put(uint32(len(g.Name)))
	bw.WriteString(g.Name)
	numOps, numNT, numStates := g.NumOps(), ts.NumNT, ts.NumStates()
	put(uint32(numOps))
	put(uint32(numNT))
	put(uint32(numStates))
	for op := 0; op < numOps; op++ {
		bw.WriteByte(byte(g.Ops[op].Arity))
	}
	if version == 2 {
		encodeBodyV2(bw, g, ts)
	} else {
		encodeBodyV1(bw, g, ts)
	}
	put(trailer)
	return bw.Flush()
}

func encodeBodyV1(bw *bufio.Writer, g *grammar.Grammar, ts *automaton.TableSet) {
	put := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	putIDs := func(ids []int32) {
		for _, id := range ids {
			put(uint32(id))
		}
	}
	numOps, numNT, numStates := g.NumOps(), ts.NumNT, ts.NumStates()
	for i := 0; i < numStates*numNT; i++ {
		put(uint32(ts.Deltas[i]))
		put(uint32(ts.Rules[i]))
	}
	putIDs(ts.Leaf)
	for op := 0; op < numOps; op++ {
		for p := 0; p < g.Ops[op].Arity; p++ {
			put(uint32(ts.NReps[op][p]))
			putIDs(ts.Mu[op][p])
		}
	}
	for op := 0; op < numOps; op++ {
		switch g.Ops[op].Arity {
		case 1:
			put(uint32(len(ts.T1[op])))
			putIDs(ts.T1[op])
		case 2:
			put(uint32(len(ts.T2[op])))
			putIDs(ts.T2[op])
		}
	}
}

// vwriter emits the version-2 varint sections.
type vwriter struct {
	bw  *bufio.Writer
	tmp [binary.MaxVarintLen64]byte
}

func (v *vwriter) uvar(x uint64) {
	n := binary.PutUvarint(v.tmp[:], x)
	v.bw.Write(v.tmp[:n])
}

func (v *vwriter) svar(x int64) {
	n := binary.PutVarint(v.tmp[:], x)
	v.bw.Write(v.tmp[:n])
}

// run writes one delta-encoded run: each entry as the zigzag varint of
// its difference from the previous entry (the first from 0).
func (v *vwriter) run(ids []int32) {
	prev := int64(0)
	for _, id := range ids {
		v.svar(int64(id) - prev)
		prev = int64(id)
	}
}

func encodeBodyV2(bw *bufio.Writer, g *grammar.Grammar, ts *automaton.TableSet) {
	v := &vwriter{bw: bw}
	// Deltas and Rules as two separate runs (not interleaved as in v1):
	// each is self-correlated — normalized deltas repeat across states,
	// rules repeat per nonterminal — so separating them is what makes the
	// difference stream small.
	prev := int64(0)
	for _, d := range ts.Deltas {
		v.svar(int64(d) - prev)
		prev = int64(d)
	}
	v.run(ts.Rules)
	v.run(ts.Leaf)
	numOps := g.NumOps()
	for op := 0; op < numOps; op++ {
		for p := 0; p < g.Ops[op].Arity; p++ {
			v.uvar(uint64(ts.NReps[op][p]))
			v.run(ts.Mu[op][p])
		}
	}
	for op := 0; op < numOps; op++ {
		switch g.Ops[op].Arity {
		case 1:
			v.uvar(uint64(len(ts.T1[op])))
			v.run(ts.T1[op])
		case 2:
			v.uvar(uint64(len(ts.T2[op])))
			v.run(ts.T2[op])
		}
	}
}

// maxPlausible bounds counts read from a blob before any allocation, so a
// corrupt header cannot demand gigabytes.
const maxPlausible = 1 << 24

// maxBlobBytes bounds how much of a blob Decode will read: far above any
// real table set, far below what a corrupt length field could waste.
const maxBlobBytes = 1 << 28

type reader struct {
	br  *bufio.Reader
	err error
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	var v uint32
	r.err = binary.Read(r.br, binary.LittleEndian, &v)
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	var v uint64
	r.err = binary.Read(r.br, binary.LittleEndian, &v)
	return v
}

func (r *reader) ids(n int) []int32 {
	if r.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.u32())
	}
	return out
}

func (r *reader) uvar() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.br)
	r.err = err
	return v
}

func (r *reader) svar() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.br)
	r.err = err
	return v
}

// run reads one delta-encoded run of n entries (the inverse of
// vwriter.run).
func (r *reader) run(n int) []int32 {
	if r.err != nil {
		return nil
	}
	out := make([]int32, n)
	prev := int64(0)
	for i := range out {
		prev += r.svar()
		out[i] = int32(prev)
	}
	return out
}

// readHeader consumes the blob prefix through the arity table.
func readHeader(br *bufio.Reader) (*Header, []int, error) {
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, nil, fmt.Errorf("gen: reading blob header: %w", err)
	}
	version := 0
	switch string(magic) {
	case Magic:
		version = 1
	case MagicV2:
		version = 2
	default:
		return nil, nil, fmt.Errorf("gen: not a .isel blob (or an unsupported version): magic %q, want %q or %q", magic, Magic, MagicV2)
	}
	r := &reader{br: br}
	h := &Header{Version: version, Fingerprint: r.u64()}
	nameLen := r.u32()
	if r.err == nil && nameLen > maxPlausible {
		return nil, nil, fmt.Errorf("gen: implausible grammar-name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if r.err == nil {
		_, r.err = io.ReadFull(br, name)
	}
	h.Grammar = string(name)
	h.NumOps = int(r.u32())
	h.NumNT = int(r.u32())
	h.States = int(r.u32())
	if r.err != nil {
		return nil, nil, fmt.Errorf("gen: reading blob header: %w", r.err)
	}
	if h.NumOps > maxPlausible || h.NumNT > maxPlausible || h.States > maxPlausible {
		return nil, nil, fmt.Errorf("gen: implausible blob header (%d ops, %d nonterminals, %d states)", h.NumOps, h.NumNT, h.States)
	}
	arities := make([]int, h.NumOps)
	ab := make([]byte, h.NumOps)
	if _, err := io.ReadFull(br, ab); err != nil {
		return nil, nil, fmt.Errorf("gen: reading arity table: %w", err)
	}
	for i, b := range ab {
		arities[i] = int(b)
	}
	return h, arities, nil
}

// ReadHeader reads just the routing prefix of a blob: the front ends use
// it to match a blob file against a machine's grammar (full vs stripped
// fingerprint) before paying for a decode, and the blob-exchange surface
// uses its fingerprint as the content-negotiation ETag.
func ReadHeader(r io.Reader) (*Header, error) {
	h, _, err := readHeader(bufio.NewReader(r))
	return h, err
}

// Decode reads a blob generated for exactly g and returns its table set.
// Both format versions are accepted. The content checksum is verified
// first (any corruption — header, body or truncation — fails here), then
// a fingerprint mismatch — tables for another grammar, or for another
// revision of this one — is rejected before any table is decoded.
func Decode(g *grammar.Grammar, rd io.Reader) (*automaton.TableSet, error) {
	// Fault-injection seam: inert (one atomic load) unless a robustness
	// test armed it to simulate a corrupt or truncated blob at load time.
	// Decode is the one gate every blob load passes — preload, hot-swap
	// re-read, hybrid overlay, in-process round trip, cluster transfer.
	if err := faultinject.Fire(faultinject.GenLoad); err != nil {
		return nil, fmt.Errorf("gen: reading blob: %w", err)
	}
	data, err := io.ReadAll(io.LimitReader(rd, maxBlobBytes+1))
	if err != nil {
		return nil, fmt.Errorf("gen: reading blob: %w", err)
	}
	if len(data) > maxBlobBytes {
		return nil, fmt.Errorf("gen: blob exceeds %d bytes", maxBlobBytes)
	}
	if len(data) < len(Magic)+8 {
		return nil, fmt.Errorf("gen: blob too short (%d bytes)", len(data))
	}
	payload, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	ck := fnv.New64a()
	ck.Write(payload)
	if got := ck.Sum64(); got != sum {
		return nil, fmt.Errorf("gen: blob checksum mismatch (%016x != %016x): corrupt or truncated", got, sum)
	}
	br := bufio.NewReader(bytes.NewReader(payload))
	h, arities, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if want := Fingerprint(g); h.Fingerprint != want {
		return nil, fmt.Errorf("gen: blob was generated for grammar %q (fingerprint %016x), not %q (%016x)",
			h.Grammar, h.Fingerprint, g.Name, want)
	}
	if h.NumOps != g.NumOps() || h.NumNT != g.NumNonterms() {
		return nil, fmt.Errorf("gen: blob shape (%d ops, %d nonterminals) does not match grammar %s (%d, %d)",
			h.NumOps, h.NumNT, g.Name, g.NumOps(), g.NumNonterms())
	}
	// Bound the state-vector product too: the per-field checks alone would
	// let a corrupt header (with a copied magic+fingerprint prefix) demand
	// States*NumNT entries of allocation before the payload read fails.
	if h.States*h.NumNT > maxPlausible {
		return nil, fmt.Errorf("gen: implausible state-vector volume (%d states × %d nonterminals)", h.States, h.NumNT)
	}
	for op, ar := range arities {
		if ar != g.Ops[op].Arity {
			return nil, fmt.Errorf("gen: operator %s has arity %d in the blob, %d in grammar %s",
				g.OpName(grammar.OpID(op)), ar, g.Ops[op].Arity, g.Name)
		}
	}

	r := &reader{br: br}
	var ts *automaton.TableSet
	if h.Version == 2 {
		ts, err = decodeBodyV2(r, h, arities)
	} else {
		ts, err = decodeBodyV1(r, h, arities)
	}
	if err != nil {
		return nil, err
	}
	if tr := r.u32(); r.err == nil && tr != trailer {
		return nil, fmt.Errorf("gen: blob trailer mismatch (%08x): truncated or corrupt", tr)
	}
	if r.err != nil {
		return nil, fmt.Errorf("gen: decoding blob for %s: %w", g.Name, r.err)
	}
	return ts, nil
}

func decodeBodyV1(r *reader, h *Header, arities []int) (*automaton.TableSet, error) {
	ts := newTableSet(h)
	for i := range ts.Deltas {
		if r.err != nil {
			break // a short payload fails once below, not per entry
		}
		ts.Deltas[i] = grammar.Cost(int32(r.u32()))
		ts.Rules[i] = int32(r.u32())
	}
	ts.Leaf = r.ids(h.NumOps)
	for op := 0; op < h.NumOps; op++ {
		for p := 0; p < arities[op]; p++ {
			nreps := r.u32()
			if r.err == nil && nreps > maxPlausible {
				return nil, fmt.Errorf("gen: implausible representer count %d", nreps)
			}
			ts.NReps[op][p] = int32(nreps)
			ts.Mu[op][p] = r.ids(h.States)
		}
	}
	for op := 0; op < h.NumOps; op++ {
		if arities[op] == 0 {
			continue
		}
		n := r.u32()
		if r.err == nil && n > maxPlausible {
			return nil, fmt.Errorf("gen: implausible transition count %d", n)
		}
		if arities[op] == 1 {
			ts.T1[op] = r.ids(int(n))
		} else {
			ts.T2[op] = r.ids(int(n))
		}
	}
	return ts, nil
}

func decodeBodyV2(r *reader, h *Header, arities []int) (*automaton.TableSet, error) {
	ts := newTableSet(h)
	prev := int64(0)
	for i := range ts.Deltas {
		if r.err != nil {
			break
		}
		prev += r.svar()
		ts.Deltas[i] = grammar.Cost(int32(prev))
	}
	ts.Rules = r.run(h.States * h.NumNT)
	ts.Leaf = r.run(h.NumOps)
	for op := 0; op < h.NumOps; op++ {
		for p := 0; p < arities[op]; p++ {
			nreps := r.uvar()
			if r.err == nil && nreps > maxPlausible {
				return nil, fmt.Errorf("gen: implausible representer count %d", nreps)
			}
			ts.NReps[op][p] = int32(nreps)
			ts.Mu[op][p] = r.run(h.States)
		}
	}
	for op := 0; op < h.NumOps; op++ {
		if arities[op] == 0 {
			continue
		}
		n := r.uvar()
		if r.err == nil && n > maxPlausible {
			return nil, fmt.Errorf("gen: implausible transition count %d", n)
		}
		if arities[op] == 1 {
			ts.T1[op] = r.run(int(n))
		} else {
			ts.T2[op] = r.run(int(n))
		}
	}
	return ts, nil
}

func newTableSet(h *Header) *automaton.TableSet {
	return &automaton.TableSet{
		NumNT:  h.NumNT,
		Deltas: make([]grammar.Cost, h.States*h.NumNT),
		Rules:  make([]int32, h.States*h.NumNT),
		NReps:  make([][2]int32, h.NumOps),
		Mu:     make([][2][]int32, h.NumOps),
		T1:     make([][]int32, h.NumOps),
		T2:     make([][]int32, h.NumOps),
	}
}

// Load decodes a blob for g and reconstitutes the labeling automaton in
// one step — the serving-side entry point behind Options.PreloadPath and
// the preload store.
func Load(g *grammar.Grammar, rd io.Reader) (*automaton.Static, error) {
	ts, err := Decode(g, rd)
	if err != nil {
		return nil, err
	}
	return automaton.NewStaticFromTables(g, ts)
}
