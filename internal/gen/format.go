package gen

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/automaton"
	"repro/internal/faultinject"
	"repro/internal/grammar"
)

// The `.isel` wire format, version 1. Everything after the magic is
// little-endian fixed-width integers, in a fully deterministic order, so
// the same grammar always serializes to the same bytes (the golden-file
// guarantee cmd/iselgen's committed outputs rely on).
//
//	magic   "ISEL1\n"
//	u64     grammar fingerprint (Fingerprint; name + normal-form dump)
//	u32     grammar-name length, then the name bytes (diagnostics only)
//	u32×3   numOps, numNT, numStates
//	u8×ops  operator arities (structure check against the loading grammar)
//	states  numStates × numNT × (u32 delta, u32 rule)
//	leaf    numOps × u32 state ids (^0 for non-leaf operators)
//	projs   per operator, per child position < arity:
//	            u32 nreps, then numStates × u32 representer ids
//	trans   per unary operator:  u32 len, len × u32 state ids (t1)
//	        per binary operator: u32 len, len × u32 state ids (t2)
//	u32     trailer 0x4c455349 ("ISEL" reversed) — truncation check
//	u64     FNV-64a checksum of everything before it — content check
//
// The trailing checksum is what rejects body corruption the structural
// validation cannot see (a flipped cost bit still yields a well-formed
// state vector); Decode verifies it before parsing a single table.
//
// Version bumps change the magic ("ISEL2\n", ...): loaders reject
// unknown magics outright instead of guessing, and a fingerprint mismatch
// rejects tables generated for any other grammar (or another revision of
// the same grammar — the fingerprint covers the normal-form dump).
const (
	// Magic identifies (and versions) the blob format.
	Magic = "ISEL1\n"
	// trailer terminates a well-formed blob.
	trailer uint32 = 0x4c455349
)

// Header is the cheap-to-read prefix of a blob: enough to route it to the
// right grammar (fingerprint matching) without decoding any table.
type Header struct {
	Fingerprint uint64
	// Grammar is the name the tables were generated for (diagnostics; the
	// fingerprint is the authority).
	Grammar string
	NumOps  int
	NumNT   int
	States  int
}

// Encode writes the `.isel` form of ts (generated for g) to w.
func Encode(w io.Writer, g *grammar.Grammar, ts *automaton.TableSet) error {
	blob, err := EncodeBytes(g, ts)
	if err != nil {
		return err
	}
	_, err = w.Write(blob)
	return err
}

// EncodeBytes is the canonical encoder: payload plus the trailing
// FNV-64a content checksum.
func EncodeBytes(g *grammar.Grammar, ts *automaton.TableSet) ([]byte, error) {
	var buf bytes.Buffer
	if err := encodePayload(&buf, g, ts); err != nil {
		return nil, err
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	buf.Write(sum[:])
	return buf.Bytes(), nil
}

func encodePayload(w io.Writer, g *grammar.Grammar, ts *automaton.TableSet) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	put64 := func(v uint64) { binary.Write(bw, binary.LittleEndian, v) }
	put := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	putIDs := func(ids []int32) {
		for _, id := range ids {
			put(uint32(id))
		}
	}
	put64(Fingerprint(g))
	put(uint32(len(g.Name)))
	bw.WriteString(g.Name)
	numOps, numNT, numStates := g.NumOps(), ts.NumNT, ts.NumStates()
	put(uint32(numOps))
	put(uint32(numNT))
	put(uint32(numStates))
	for op := 0; op < numOps; op++ {
		bw.WriteByte(byte(g.Ops[op].Arity))
	}
	for i := 0; i < numStates*numNT; i++ {
		put(uint32(ts.Deltas[i]))
		put(uint32(ts.Rules[i]))
	}
	putIDs(ts.Leaf)
	for op := 0; op < numOps; op++ {
		for p := 0; p < g.Ops[op].Arity; p++ {
			put(uint32(ts.NReps[op][p]))
			putIDs(ts.Mu[op][p])
		}
	}
	for op := 0; op < numOps; op++ {
		switch g.Ops[op].Arity {
		case 1:
			put(uint32(len(ts.T1[op])))
			putIDs(ts.T1[op])
		case 2:
			put(uint32(len(ts.T2[op])))
			putIDs(ts.T2[op])
		}
	}
	put(trailer)
	return bw.Flush()
}

// maxPlausible bounds counts read from a blob before any allocation, so a
// corrupt header cannot demand gigabytes.
const maxPlausible = 1 << 24

// maxBlobBytes bounds how much of a blob Decode will read: far above any
// real table set, far below what a corrupt length field could waste.
const maxBlobBytes = 1 << 28

type reader struct {
	br  *bufio.Reader
	err error
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	var v uint32
	r.err = binary.Read(r.br, binary.LittleEndian, &v)
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	var v uint64
	r.err = binary.Read(r.br, binary.LittleEndian, &v)
	return v
}

func (r *reader) ids(n int) []int32 {
	if r.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.u32())
	}
	return out
}

// readHeader consumes the blob prefix through the arity table.
func readHeader(br *bufio.Reader) (*Header, []int, error) {
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, nil, fmt.Errorf("gen: reading blob header: %w", err)
	}
	if string(magic) != Magic {
		return nil, nil, fmt.Errorf("gen: not a .isel blob (or an unsupported version): magic %q, want %q", magic, Magic)
	}
	r := &reader{br: br}
	h := &Header{Fingerprint: r.u64()}
	nameLen := r.u32()
	if r.err == nil && nameLen > maxPlausible {
		return nil, nil, fmt.Errorf("gen: implausible grammar-name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if r.err == nil {
		_, r.err = io.ReadFull(br, name)
	}
	h.Grammar = string(name)
	h.NumOps = int(r.u32())
	h.NumNT = int(r.u32())
	h.States = int(r.u32())
	if r.err != nil {
		return nil, nil, fmt.Errorf("gen: reading blob header: %w", r.err)
	}
	if h.NumOps > maxPlausible || h.NumNT > maxPlausible || h.States > maxPlausible {
		return nil, nil, fmt.Errorf("gen: implausible blob header (%d ops, %d nonterminals, %d states)", h.NumOps, h.NumNT, h.States)
	}
	arities := make([]int, h.NumOps)
	ab := make([]byte, h.NumOps)
	if _, err := io.ReadFull(br, ab); err != nil {
		return nil, nil, fmt.Errorf("gen: reading arity table: %w", err)
	}
	for i, b := range ab {
		arities[i] = int(b)
	}
	return h, arities, nil
}

// ReadHeader reads just the routing prefix of a blob: the front ends use
// it to match a blob file against a machine's grammar (full vs stripped
// fingerprint) before paying for a decode.
func ReadHeader(r io.Reader) (*Header, error) {
	h, _, err := readHeader(bufio.NewReader(r))
	return h, err
}

// Decode reads a blob generated for exactly g and returns its table set.
// The content checksum is verified first (any corruption — header, body
// or truncation — fails here), then a fingerprint mismatch — tables for
// another grammar, or for another revision of this one — is rejected
// before any table is decoded.
func Decode(g *grammar.Grammar, rd io.Reader) (*automaton.TableSet, error) {
	// Fault-injection seam: inert (one atomic load) unless a robustness
	// test armed it to simulate a corrupt or truncated blob at load time.
	// Decode is the one gate every blob load passes — preload, hot-swap
	// re-read, hybrid overlay, in-process round trip.
	if err := faultinject.Fire(faultinject.GenLoad); err != nil {
		return nil, fmt.Errorf("gen: reading blob: %w", err)
	}
	data, err := io.ReadAll(io.LimitReader(rd, maxBlobBytes+1))
	if err != nil {
		return nil, fmt.Errorf("gen: reading blob: %w", err)
	}
	if len(data) > maxBlobBytes {
		return nil, fmt.Errorf("gen: blob exceeds %d bytes", maxBlobBytes)
	}
	if len(data) < len(Magic)+8 {
		return nil, fmt.Errorf("gen: blob too short (%d bytes)", len(data))
	}
	payload, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	ck := fnv.New64a()
	ck.Write(payload)
	if got := ck.Sum64(); got != sum {
		return nil, fmt.Errorf("gen: blob checksum mismatch (%016x != %016x): corrupt or truncated", got, sum)
	}
	br := bufio.NewReader(bytes.NewReader(payload))
	h, arities, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if want := Fingerprint(g); h.Fingerprint != want {
		return nil, fmt.Errorf("gen: blob was generated for grammar %q (fingerprint %016x), not %q (%016x)",
			h.Grammar, h.Fingerprint, g.Name, want)
	}
	if h.NumOps != g.NumOps() || h.NumNT != g.NumNonterms() {
		return nil, fmt.Errorf("gen: blob shape (%d ops, %d nonterminals) does not match grammar %s (%d, %d)",
			h.NumOps, h.NumNT, g.Name, g.NumOps(), g.NumNonterms())
	}
	// Bound the state-vector product too: the per-field checks alone would
	// let a corrupt header (with a copied magic+fingerprint prefix) demand
	// States*NumNT entries of allocation before the payload read fails.
	if h.States*h.NumNT > maxPlausible {
		return nil, fmt.Errorf("gen: implausible state-vector volume (%d states × %d nonterminals)", h.States, h.NumNT)
	}
	for op, ar := range arities {
		if ar != g.Ops[op].Arity {
			return nil, fmt.Errorf("gen: operator %s has arity %d in the blob, %d in grammar %s",
				g.OpName(grammar.OpID(op)), ar, g.Ops[op].Arity, g.Name)
		}
	}

	r := &reader{br: br}
	ts := &automaton.TableSet{
		NumNT:  h.NumNT,
		Deltas: make([]grammar.Cost, h.States*h.NumNT),
		Rules:  make([]int32, h.States*h.NumNT),
		NReps:  make([][2]int32, h.NumOps),
		Mu:     make([][2][]int32, h.NumOps),
		T1:     make([][]int32, h.NumOps),
		T2:     make([][]int32, h.NumOps),
	}
	for i := range ts.Deltas {
		if r.err != nil {
			break // a short payload fails once below, not per entry
		}
		ts.Deltas[i] = grammar.Cost(int32(r.u32()))
		ts.Rules[i] = int32(r.u32())
	}
	ts.Leaf = r.ids(h.NumOps)
	for op := 0; op < h.NumOps; op++ {
		for p := 0; p < arities[op]; p++ {
			nreps := r.u32()
			if r.err == nil && nreps > maxPlausible {
				return nil, fmt.Errorf("gen: implausible representer count %d", nreps)
			}
			ts.NReps[op][p] = int32(nreps)
			ts.Mu[op][p] = r.ids(h.States)
		}
	}
	for op := 0; op < h.NumOps; op++ {
		if arities[op] == 0 {
			continue
		}
		n := r.u32()
		if r.err == nil && n > maxPlausible {
			return nil, fmt.Errorf("gen: implausible transition count %d", n)
		}
		if arities[op] == 1 {
			ts.T1[op] = r.ids(int(n))
		} else {
			ts.T2[op] = r.ids(int(n))
		}
	}
	if tr := r.u32(); r.err == nil && tr != trailer {
		return nil, fmt.Errorf("gen: blob trailer mismatch (%08x): truncated or corrupt", tr)
	}
	if r.err != nil {
		return nil, fmt.Errorf("gen: decoding blob for %s: %w", g.Name, r.err)
	}
	return ts, nil
}

// Load decodes a blob for g and reconstitutes the labeling automaton in
// one step — the serving-side entry point behind Options.PreloadPath and
// the preload store.
func Load(g *grammar.Grammar, rd io.Reader) (*automaton.Static, error) {
	ts, err := Decode(g, rd)
	if err != nil {
		return nil, err
	}
	return automaton.NewStaticFromTables(g, ts)
}
