// Package precompiled holds the committed iselgen output for the repo's
// example grammars: `.isel` blobs embedded as generated Go source, each
// registering itself in the internal/gen preload store at init time.
// Importing this package (for side effects) makes the `offline` engine
// kind construct these grammars from compiled-in tables with zero closure
// work — the fully-ahead-of-time end of the paper's tradeoff.
//
// Regenerate after any grammar change:
//
//	go run ./cmd/iselgen -machine demo  -fixed -go -pkg precompiled -out internal/gen/precompiled/demo_fixed_gen.go
//	go run ./cmd/iselgen -machine jit64 -fixed -go -pkg precompiled -out internal/gen/precompiled/jit64_fixed_gen.go
//
// The golden test in this package regenerates both in memory and fails
// when a committed file is stale (iselgen output is deterministic), so CI
// catches grammar/table drift.
package precompiled
