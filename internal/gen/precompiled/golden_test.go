package precompiled

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/gen"
	"repro/internal/md"
)

// The golden check: iselgen output is deterministic, so regenerating a
// committed file in memory and comparing bytes catches any drift between
// the grammars and the committed tables (and any accidental hand edit).
// Failing here means: rerun the iselgen commands in the package comment
// and commit the result.
func TestCommittedTablesUpToDate(t *testing.T) {
	cases := []struct {
		machine string
		file    string
		varName string
	}{
		{"demo", "demo_fixed_gen.go", "demoFixedTables"},
		{"jit64", "jit64_fixed_gen.go", "jit64FixedTables"},
	}
	for _, c := range cases {
		t.Run(c.machine, func(t *testing.T) {
			d, err := md.Load(c.machine)
			if err != nil {
				t.Fatal(err)
			}
			g, err := d.Grammar.StripDynamic()
			if err != nil {
				t.Fatal(err)
			}
			res, err := gen.Compile(g, gen.Config{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := gen.GoSource("precompiled", c.varName, res)
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(c.file)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s is stale: regenerate with\n  go run ./cmd/iselgen -machine %s -fixed -go -pkg precompiled -out internal/gen/precompiled/%s",
					c.file, c.machine, c.file)
			}
		})
	}
}

// TestRegisteredAtInit: importing this package must have preloaded both
// grammars' tables into the store the offline engine consults.
func TestRegisteredAtInit(t *testing.T) {
	for _, machine := range []string{"demo", "jit64"} {
		d, err := md.Load(machine)
		if err != nil {
			t.Fatal(err)
		}
		g, err := d.Grammar.StripDynamic()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := gen.Lookup(gen.Fingerprint(g)); !ok {
			t.Errorf("%s: no preloaded tables registered for fingerprint %016x", g.Name, gen.Fingerprint(g))
		}
	}
}
