package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty member set accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty member name accepted")
	}
}

// The fleet's agreement on ownership is exactly the agreement on the
// member set: order, duplicates, and which participant computes the
// owners must not matter.
func TestRingDeterministicAcrossOrderings(t *testing.T) {
	a, err := NewRing([]string{"r1", "r2", "r3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"r3", "r1", "r2", "r1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("machine-%d", i)
		for n := 1; n <= 3; n++ {
			oa, ob := a.Owners(key, n), b.Owners(key, n)
			if !reflect.DeepEqual(oa, ob) {
				t.Fatalf("key %s n=%d: %v vs %v", key, n, oa, ob)
			}
		}
	}
}

func TestRingOwnersDistinctAndClamped(t *testing.T) {
	r, err := NewRing([]string{"r1", "r2", "r3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("m%d", i)
		owners := r.Owners(key, 2)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("key %s: owners %v", key, owners)
		}
		// n beyond the member count clamps to every member, still distinct.
		all := r.Owners(key, 99)
		if len(all) != 3 {
			t.Fatalf("key %s: clamped owners %v", key, all)
		}
		seen := map[string]bool{}
		for _, o := range all {
			if seen[o] {
				t.Fatalf("key %s: duplicate owner in %v", key, all)
			}
			seen[o] = true
		}
		// n <= 0 means one owner.
		if one := r.Owners(key, 0); len(one) != 1 || one[0] != owners[0] {
			t.Fatalf("key %s: n=0 owners %v, want primary %s", key, one, owners[0])
		}
	}
}

func TestRingOwnsMatchesOwners(t *testing.T) {
	r, err := NewRing([]string{"r1", "r2", "r3", "r4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("m%d", i)
		owners := map[string]bool{}
		for _, o := range r.Owners(key, 2) {
			owners[o] = true
		}
		for _, m := range r.Members() {
			if got := r.Owns(m, key, 2); got != owners[m] {
				t.Fatalf("key %s member %s: Owns=%v, Owners say %v", key, m, got, owners[m])
			}
		}
	}
}

// With 64 vnodes per member the key space must split across a small
// fleet: over a few hundred keys every member should be primary for a
// healthy share (this is deterministic — FNV over fixed strings).
func TestRingSpread(t *testing.T) {
	members := []string{"r1", "r2", "r3"}
	r, err := NewRing(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 300
	for i := 0; i < keys; i++ {
		counts[r.Owners(fmt.Sprintf("machine-%d", i), 1)[0]]++
	}
	for _, m := range members {
		if counts[m] < keys/10 {
			t.Fatalf("member %s is primary for only %d/%d keys: %v", m, counts[m], keys, counts)
		}
	}
}
