package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro"
	"repro/internal/faultinject"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/server"
)

// bootingHandler lets a listener serve before its replica exists: until
// the real handler is swapped in, every request answers 503 — what a
// still-booting fleet member looks like to its peers. (Unstarted
// httptest listeners are worse than a 503: they accept connections into
// the backlog and hang the caller for its full client timeout.)
type bootingHandler struct{ v atomic.Value }

type boxedHandler struct{ h http.Handler }

func newBootingHandler() *bootingHandler {
	b := &bootingHandler{}
	b.v.Store(boxedHandler{http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "booting", http.StatusServiceUnavailable)
	})})
	return b
}

func (b *bootingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	b.v.Load().(boxedHandler).h.ServeHTTP(w, r)
}

func (b *bootingHandler) swapIn(h http.Handler) { b.v.Store(boxedHandler{h}) }

// testFleet is a booted in-process fleet for the integration tests: n
// listeners opened first (answering 503), replicas booted serially into
// them (so warmth flows through the exchange exactly as in deployment),
// then the router in front.
type testFleet struct {
	peers    []string
	servers  []*httptest.Server
	handlers []*bootingHandler
	replicas []*Replica
	router   *Router
	routerS  *httptest.Server

	mu  sync.Mutex
	log []string
}

func (f *testFleet) logf(i int) func(string, ...any) {
	return func(format string, args ...any) {
		f.mu.Lock()
		f.log = append(f.log, fmt.Sprintf("replica%d: ", i)+fmt.Sprintf(format, args...))
		f.mu.Unlock()
	}
}

func (f *testFleet) logLines() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.log...)
}

func (f *testFleet) countLog(substr string) int {
	n := 0
	for _, line := range f.logLines() {
		if strings.Contains(line, substr) {
			n++
		}
	}
	return n
}

// bootFleet opens n listeners, boots n replicas over machines with the
// given replication factor, and fronts them with the router.
func bootFleet(t *testing.T, machines []string, n, replication int) *testFleet {
	t.Helper()
	f := &testFleet{}
	t.Cleanup(func() {
		if f.routerS != nil {
			f.routerS.Close()
			f.router.Stop()
		}
		for i, s := range f.servers {
			if s == nil {
				continue
			}
			s.Close()
			if i < len(f.replicas) {
				f.replicas[i].Shutdown()
			}
		}
	})
	for i := 0; i < n; i++ {
		h := newBootingHandler()
		f.handlers = append(f.handlers, h)
		f.servers = append(f.servers, httptest.NewServer(h))
		f.peers = append(f.peers, f.servers[i].URL)
	}
	for i := 0; i < n; i++ {
		rep, err := NewReplica(ReplicaConfig{
			Self:        f.peers[i],
			Peers:       f.peers,
			Machines:    machines,
			Replication: replication,
			StoreDir:    filepath.Join(t.TempDir(), fmt.Sprintf("replica%d", i)),
			Server:      server.Config{Workers: 2},
			Logf:        f.logf(i),
		})
		if err != nil {
			t.Fatalf("booting replica %d: %v", i, err)
		}
		f.replicas = append(f.replicas, rep)
		f.handlers[i].swapIn(rep.Handler())
	}
	rt, err := NewRouter(RouterConfig{
		Peers:       f.peers,
		Machines:    machines,
		Replication: replication,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	f.routerS = httptest.NewServer(rt.Handler())
	return f
}

// compileVia posts one jit64 tree through the router for client, returning
// the response status (and failing the test on transport errors).
func (f *testFleet) compileVia(t *testing.T, machine, client string) int {
	t.Helper()
	body, _ := json.Marshal(server.CompileRequest{Client: client, Trees: "RET(ADD(REG[1], CNST[2]))"})
	resp, err := http.Post(f.routerS.URL+"/compile?machine="+machine, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("compile via router: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var out server.CompileResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding compile response: %v", err)
		}
		if len(out.Outputs) == 0 || out.Outputs[0].Instructions == 0 {
			t.Fatalf("empty derivation: %+v", out)
		}
	}
	return resp.StatusCode
}

func (f *testFleet) fleetStats(t *testing.T) *FleetStats {
	t.Helper()
	resp, err := http.Get(f.routerS.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fs FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	return &fs
}

// The warm-state distribution plane end to end: with two replicas both
// owning both machines, serial boot must AOT-compile each machine exactly
// once fleet-wide — the second owner warm-starts from the first over the
// blob exchange — and both stores must converge on the same
// fingerprint-named artifact.
func TestReplicaBootWarmViaExchange(t *testing.T) {
	machines := []string{"demo", "jit64"}
	f := bootFleet(t, machines, 2, 2)

	if got := f.countLog("AOT-compiled here"); got != len(machines) {
		t.Fatalf("fleet paid %d AOT compilations for %d machines:\n%s",
			got, len(machines), strings.Join(f.logLines(), "\n"))
	}
	warm := f.countLog("warm-started from peer") + f.countLog("preloaded from a peer")
	if warm < len(machines) {
		t.Fatalf("second owner warm-started %d machines over the exchange, want %d:\n%s",
			warm, len(machines), strings.Join(f.logLines(), "\n"))
	}
	for _, m := range machines {
		var fps []string
		for i, rep := range f.replicas {
			path, hdr, ok := rep.Store().Lookup(m)
			if !ok {
				t.Fatalf("replica %d store has no artifact for %s", i, m)
			}
			fps = append(fps, fmt.Sprintf("%016x", hdr.Fingerprint))
			if base := filepath.Base(path); !strings.Contains(base, fps[len(fps)-1]) {
				t.Fatalf("replica %d stores %s under %q, not its fingerprint", i, m, base)
			}
		}
		if fps[0] != fps[1] {
			t.Fatalf("stores diverge for %s: fingerprints %v", m, fps)
		}
	}
	// Both owners serve warm: the router's shard view must agree.
	for _, sh := range f.fleetStats(t).Shards {
		if len(sh.WarmOwners) != 2 {
			t.Fatalf("shard %s warm on %v, want both owners", sh.Machine, sh.WarmOwners)
		}
	}
}

// Rung 2 of the warm-state ladder: a <machine>.isel dropped by iselgen in
// PreloadDir is adopted into the store, and the replica never compiles.
func TestReplicaPreloadDirSeed(t *testing.T) {
	m, err := repro.LoadMachine("jit64")
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.CompileHybrid(m.Grammar, gen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	preload := t.TempDir()
	if err := os.WriteFile(filepath.Join(preload, "jit64.isel"), res.Blob, 0o644); err != nil {
		t.Fatal(err)
	}

	var log []string
	self := "http://127.0.0.1:1" // never dialed: single owner, nothing to fetch
	rep, err := NewReplica(ReplicaConfig{
		Self:        self,
		Peers:       []string{self},
		Machines:    []string{"jit64"},
		Replication: 1,
		StoreDir:    filepath.Join(t.TempDir(), "store"),
		PreloadDir:  preload,
		Server:      server.Config{Workers: 1},
		Logf:        func(format string, args ...any) { log = append(log, fmt.Sprintf(format, args...)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Shutdown()
	if _, hdr, ok := rep.Store().Lookup("jit64"); !ok || hdr.Fingerprint == 0 {
		t.Fatal("preload-dir artifact not adopted into the store")
	}
	for _, line := range log {
		if strings.Contains(line, "AOT-compiled here") {
			t.Fatalf("replica recompiled despite a valid preload artifact:\n%s", strings.Join(log, "\n"))
		}
	}
}

// The satellite-4 faultinject scenario: a replica starts failing compile
// intake the way a dying process does (ReplicaDeath → 503). The router
// must retry each failure on the machine's next owner so no client ever
// sees an error, the injected fault must have actually fired, and the
// quiescent fleet's per-client counters must still sum exactly to its
// global counters.
func TestRouterFailoverOnReplicaDeath(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	f := bootFleet(t, []string{"jit64"}, 3, 2)

	// rf=2 over 3 replicas: two owners plus one spillover candidate. Two
	// injected intake failures burn the owners on the first request; the
	// spillover still answers, so the client is whole.
	disarm := faultinject.Arm(faultinject.ReplicaDeath, faultinject.Fault{
		Err:   errors.New("injected: replica dying"),
		Count: 2,
	})
	defer disarm()

	const reqs = 5
	for i := 0; i < reqs; i++ {
		if code := f.compileVia(t, "jit64", fmt.Sprintf("client-%d", i%2)); code != http.StatusOK {
			t.Fatalf("request %d answered %d through the router; want every request whole", i, code)
		}
	}
	if got := faultinject.Fired(faultinject.ReplicaDeath); got != 2 {
		t.Fatalf("ReplicaDeath fired %d times, want 2", got)
	}

	fs := f.fleetStats(t)
	if fs.Routing.Proxied != reqs {
		t.Fatalf("router proxied %d requests, want %d", fs.Routing.Proxied, reqs)
	}
	if fs.Routing.Retries != 2 || fs.Routing.Failovers == 0 {
		t.Fatalf("routing stats %+v: want exactly 2 retries (one per injected death) and >= 1 failover", fs.Routing)
	}
	if fs.Jobs != reqs {
		t.Fatalf("fleet served %d jobs for %d whole requests", fs.Jobs, reqs)
	}
	var sum metrics.Counters
	for _, c := range fs.Clients {
		c := c
		sum.Add(&c)
	}
	if sum != fs.Global {
		t.Fatalf("fleet accounting violated after failover: clients sum to %+v, global %+v", sum, fs.Global)
	}
}

// PeerSlow's Err form is a partitioned peer: the router's outbound call
// fails at the transport, the peer is passively marked down, and the next
// candidate serves. The client never sees the partition.
func TestRouterFailoverOnPeerPartition(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	f := bootFleet(t, []string{"jit64"}, 3, 2)

	disarm := faultinject.Arm(faultinject.PeerSlow, faultinject.Fault{
		Err:   errors.New("injected: peer partitioned"),
		Count: 1,
	})
	defer disarm()

	if code := f.compileVia(t, "jit64", "part-client"); code != http.StatusOK {
		t.Fatalf("request through a partitioned primary answered %d", code)
	}
	if got := faultinject.Fired(faultinject.PeerSlow); got != 1 {
		t.Fatalf("PeerSlow fired %d times, want 1", got)
	}
	fs := f.fleetStats(t)
	if fs.Routing.Failovers != 1 {
		t.Fatalf("routing stats %+v: want exactly 1 failover past the partitioned primary", fs.Routing)
	}
	// The partitioned primary was passively marked down; a later request
	// must still succeed (candidates reorder around the belief).
	if code := f.compileVia(t, "jit64", "part-client"); code != http.StatusOK {
		t.Fatalf("request after the partition answered %d", code)
	}
}

// Satellite 3: the router's /readyz vouches for shards, not processes —
// 503 naming the cold shard while any served machine lacks a warm-ready
// owner, 200 only once every shard has one. Booting peers (alive but
// answering 503) must not count as warm.
func TestRouterReadyzUntilFleetWarm(t *testing.T) {
	machines := []string{"jit64"}
	// Two listeners up, both still "booting": processes are alive
	// (healthz-style liveness would pass) but no shard is warm.
	var handlers []*bootingHandler
	var servers []*httptest.Server
	var peers []string
	for i := 0; i < 2; i++ {
		h := newBootingHandler()
		s := httptest.NewServer(h)
		t.Cleanup(s.Close)
		handlers = append(handlers, h)
		servers = append(servers, s)
		peers = append(peers, s.URL)
	}
	rt, err := NewRouter(RouterConfig{Peers: peers, Machines: machines, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	resp, err := http.Get(rts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAllLimited(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz over a booting fleet = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "jit64") {
		t.Fatalf("readyz should name the cold shard, said: %s", body)
	}

	// Boot the replicas into the waiting listeners; readyz flips to 200.
	for i := 0; i < 2; i++ {
		rep, err := NewReplica(ReplicaConfig{
			Self:        peers[i],
			Peers:       peers,
			Machines:    machines,
			Replication: 2,
			StoreDir:    filepath.Join(t.TempDir(), fmt.Sprintf("replica%d", i)),
			Server:      server.Config{Workers: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rep.Shutdown)
		handlers[i].swapIn(rep.Handler())
	}
	resp, err = http.Get(rts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz over a warm fleet = %d, want 200", resp.StatusCode)
	}
}

// A request for a machine the fleet does not serve is the client's
// mistake: the owners' 404 is relayed, never retried into a 502.
func TestRouterRelaysClientErrors(t *testing.T) {
	f := bootFleet(t, []string{"jit64"}, 2, 2)
	if code := f.compileVia(t, "nosuch", "c"); code != http.StatusNotFound {
		t.Fatalf("unknown machine through the router = %d, want 404 relayed", code)
	}
	fs := f.fleetStats(t)
	if fs.Routing.Retries != 0 {
		t.Fatalf("client error was retried %d times; 404 is not failover material", fs.Routing.Retries)
	}
}
