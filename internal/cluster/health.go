package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// Membership is the fleet view of one participant: a static peer list
// (there is no coordination service — the `-peers` flag is the
// membership) with liveness layered on top two ways. Passively, callers
// report outcomes of their own peer calls (ReportUp/ReportDown), so a
// router that just watched a connection die routes around the peer
// immediately. Actively, a background prober GETs each peer's /healthz so
// a recovered peer comes back without waiting for traffic to re-try it.
//
// Liveness never changes ownership (the Ring is immutable); it only
// changes which owner the router tries first and whether a sync bothers
// asking a peer for blobs.
type Membership struct {
	peers  []string
	client *http.Client

	mu   sync.RWMutex
	down map[string]string // peer -> last failure (empty/absent = alive)

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewMembership builds the view. client nil uses a dedicated client with
// a short per-call timeout for probes (peer *data* calls bring their own
// contexts).
func NewMembership(peers []string, client *http.Client) *Membership {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return &Membership{
		peers:  append([]string(nil), peers...),
		client: client,
		down:   map[string]string{},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Peers returns the static peer list.
func (m *Membership) Peers() []string { return append([]string(nil), m.peers...) }

// Alive reports the current liveness belief for peer. Unknown peers
// (never probed, never reported) count as alive: optimism costs one
// failed attempt, pessimism would strand a healthy peer.
func (m *Membership) Alive(peer string) bool {
	m.mu.RLock()
	_, isDown := m.down[peer]
	m.mu.RUnlock()
	return !isDown
}

// ReportDown records a failed peer call (passive detection).
func (m *Membership) ReportDown(peer string, cause error) {
	m.mu.Lock()
	m.down[peer] = fmt.Sprint(cause)
	m.mu.Unlock()
}

// ReportUp records a successful peer call.
func (m *Membership) ReportUp(peer string) {
	m.mu.Lock()
	delete(m.down, peer)
	m.mu.Unlock()
}

// PeerHealth is one peer's liveness belief.
type PeerHealth struct {
	Peer  string `json:"peer"`
	Alive bool   `json:"alive"`
	Error string `json:"error,omitempty"`
}

// Health snapshots every peer's liveness, in peer-list order.
func (m *Membership) Health() []PeerHealth {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]PeerHealth, 0, len(m.peers))
	for _, p := range m.peers {
		cause, isDown := m.down[p]
		out = append(out, PeerHealth{Peer: p, Alive: !isDown, Error: cause})
	}
	return out
}

// StartProbing launches the active prober: every interval, each peer's
// /healthz is probed and the liveness belief updated. Stop with Stop.
func (m *Membership) StartProbing(interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	go func() {
		defer close(m.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.ProbeAll()
			}
		}
	}()
}

// ProbeAll probes every peer once, synchronously (the prober's body;
// exported so boots and tests can force a refresh).
func (m *Membership) ProbeAll() {
	var wg sync.WaitGroup
	for _, p := range m.peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
			if err != nil {
				m.ReportDown(peer, err)
				return
			}
			resp, err := m.Do(req)
			if err != nil {
				m.ReportDown(peer, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				m.ReportDown(peer, fmt.Errorf("healthz %d", resp.StatusCode))
				return
			}
			m.ReportUp(peer)
		}(p)
	}
	wg.Wait()
}

// Stop halts the prober (idempotent; a Membership that never probed can
// still be stopped).
func (m *Membership) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
}

// Do performs one outbound peer call through the shared client. Every
// peer call in the tier funnels here so the slow-peer fault point covers
// them all: a Delay fault stalls the call, an Err fault fails it the way
// a partition would.
func (m *Membership) Do(req *http.Request) (*http.Response, error) {
	if err := faultinject.Fire(faultinject.PeerSlow); err != nil {
		return nil, fmt.Errorf("cluster: peer call: %w", err)
	}
	return m.client.Do(req)
}

// readAllLimited reads a bounded body (blob transfers and scraped stats
// are both far below the cap; a corrupt length cannot balloon memory).
func readAllLimited(r io.Reader) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxTransferBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxTransferBytes {
		return nil, fmt.Errorf("cluster: transfer exceeds %d bytes", maxTransferBytes)
	}
	return data, nil
}

// readFileLimited is readAllLimited over a file.
func readFileLimited(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readAllLimited(f)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
