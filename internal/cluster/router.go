package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// RouterConfig assembles the fleet front end.
type RouterConfig struct {
	// Peers is the replica list — the same list, in any order, that every
	// replica was given (the ring is the shared routing table).
	Peers []string
	// Machines is the fleet machine set ([0] is the default machine for
	// requests without ?machine=).
	Machines []string
	// Replication is the owners-per-machine factor, matching the replicas'.
	Replication int
	// VNodes configures the ring (DefaultVNodes if <= 0).
	VNodes int
	// PerTryTimeout bounds one proxy attempt to one replica (default 30s);
	// the client's own deadline still bounds the whole request.
	PerTryTimeout time.Duration
	// Client is the outbound peer client (nil = a default).
	Client *http.Client
	// Logf receives operational messages (nil = silent).
	Logf func(format string, args ...any)
	// SlowlogSize bounds the router's own slowlog of slowest proxied
	// requests — the one place failover hop chains are retained (32 if
	// <= 0).
	SlowlogSize int
}

// Router is the fleet front end: it owns no tables and compiles nothing.
// POST /compile is proxied to the target machine's ring owners with
// retry-on-next-replica failover (the request body is buffered so a retry
// replays it bit-identically); GET /stats scrapes and aggregates every
// replica; GET /readyz vouches for the fleet's shards, not for a process.
type Router struct {
	cfg     RouterConfig
	ring    *Ring
	members *Membership
	mux     *http.ServeMux
	logf    func(string, ...any)

	proxied   atomic.Int64 // client requests accepted for proxying
	retries   atomic.Int64 // extra attempts beyond each request's first
	failovers atomic.Int64 // requests answered by a non-first candidate

	// The router's telemetry: request ids minted here follow each proxied
	// request across replicas (X-Isel-Request-Id), and the slowlog keeps
	// hop chains — which owners a failover tried, in order — that no
	// single replica can see.
	reqIDs  atomic.Uint64
	slow    *telemetry.Slowlog
	started time.Time
}

// NewRouter builds the router over the shared peer list.
func NewRouter(cfg RouterConfig) (*Router, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if len(cfg.Machines) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one machine")
	}
	if cfg.PerTryTimeout <= 0 {
		cfg.PerTryTimeout = 30 * time.Second
	}
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:     cfg,
		ring:    ring,
		members: NewMembership(cfg.Peers, cfg.Client),
		logf:    logf,
		slow:    telemetry.NewSlowlog(cfg.SlowlogSize),
		started: time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /compile", rt.compile)
	mux.HandleFunc("GET /stats", rt.stats)
	mux.HandleFunc("GET /readyz", rt.readyz)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /cluster", rt.clusterInfo)
	mux.HandleFunc("GET /metrics", rt.metrics)
	mux.HandleFunc("GET /version", rt.version)
	mux.HandleFunc("GET /debug/slowlog", rt.slowlog)
	rt.mux = mux
	return rt, nil
}

// Handler is the router's HTTP surface.
func (rt *Router) Handler() http.Handler { return rt.mux }

// StartProbing launches active peer health probing.
func (rt *Router) StartProbing(every time.Duration) { rt.members.StartProbing(every) }

// Stop halts probing.
func (rt *Router) Stop() { rt.members.Stop() }

// Members exposes the router's liveness view (tests arm it).
func (rt *Router) Members() *Membership { return rt.members }

// candidates orders the replicas to try for machine: its ring owners
// first (believed-alive before marked-down — a marked-down owner is still
// tried last-resort rather than never, in case the belief is stale), then
// every remaining live member as spillover. Spillover replicas serve the
// machine cold via their fallback engine, which beats failing the client
// when every owner is down.
func (rt *Router) candidates(machine string) []string {
	owners := rt.ring.Owners(machine, rt.cfg.Replication)
	isOwner := map[string]bool{}
	var alive, down []string
	for _, o := range owners {
		isOwner[o] = true
		if rt.members.Alive(o) {
			alive = append(alive, o)
		} else {
			down = append(down, o)
		}
	}
	var spill []string
	for _, p := range rt.ring.Members() {
		if !isOwner[p] && rt.members.Alive(p) {
			spill = append(spill, p)
		}
	}
	return append(append(alive, spill...), down...)
}

// retryable reports whether a replica's HTTP answer means "try the next
// replica" rather than "relay to the client": server faults and
// backpressure (5xx, 429) fail over; client errors (bad IR, unknown
// machine) are the client's to see — no other replica would answer
// differently.
func retryable(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

func (rt *Router) compile(w http.ResponseWriter, r *http.Request) {
	machine := r.URL.Query().Get("machine")
	if machine == "" {
		machine = rt.cfg.Machines[0]
	}
	body, err := readLimited(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	// One request id for the request's whole fleet journey: adopted from
	// the client when present, minted here otherwise, and stamped on
	// every replica attempt — so a failover's replica-side traces and
	// the router's hop chain correlate under one id.
	reqID, _ := strconv.ParseUint(r.Header.Get(server.RequestIDHeader), 10, 64)
	if reqID == 0 {
		reqID = rt.reqIDs.Add(1)
	}
	wantTrace := r.URL.Query().Get("trace") == "1"
	start := time.Now()
	rt.proxied.Add(1)
	cands := rt.candidates(machine)
	var hops []telemetry.Hop
	var lastErr error
	for i, peer := range cands {
		if i > 0 {
			rt.retries.Add(1)
		}
		attempt := time.Now()
		resp, err := rt.tryCompile(r.Context(), peer, machine, body, reqID, wantTrace)
		if err != nil {
			hops = append(hops, telemetry.Hop{
				Peer: peer, Err: err.Error(),
				Ns: time.Since(attempt).Nanoseconds(), Failover: i > 0,
			})
			rt.members.ReportDown(peer, err)
			rt.logf("cluster: router: %s via %s: %v (trying next)", machine, peer, err)
			lastErr = err
			continue
		}
		rt.members.ReportUp(peer)
		if retryable(resp.StatusCode) && i < len(cands)-1 {
			// Drain and drop: the next candidate may well succeed. The
			// last candidate's answer is relayed even when retryable —
			// a fleet-wide 429 is real backpressure the client should see.
			b, _ := readAllLimited(resp.Body)
			resp.Body.Close()
			hops = append(hops, telemetry.Hop{
				Peer: peer, Status: resp.StatusCode,
				Ns: time.Since(attempt).Nanoseconds(), Failover: i > 0,
			})
			rt.logf("cluster: router: %s via %s answered %d (trying next)", machine, peer, resp.StatusCode)
			lastErr = fmt.Errorf("%s answered %d: %s", peer, resp.StatusCode, bytes.TrimSpace(b))
			continue
		}
		if i > 0 {
			rt.failovers.Add(1)
		}
		hops = append(hops, telemetry.Hop{
			Peer: peer, Status: resp.StatusCode,
			Ns: time.Since(attempt).Nanoseconds(), Failover: i > 0,
		})
		if len(hops) > 1 || wantTrace {
			w.Header().Set(TraceHopsHeader, renderHops(hops))
		}
		relay(w, resp)
		rt.recordProxied(reqID, machine, r, start, hops, "")
		return
	}
	httpError(w, http.StatusBadGateway, "no replica could serve machine %s: %v", machine, lastErr)
	errStr := ""
	if lastErr != nil {
		errStr = lastErr.Error()
	}
	rt.recordProxied(reqID, machine, r, start, hops, errStr)
}

// recordProxied files one proxied request into the router slowlog: a
// trace whose spans live in Hops (which owners were tried, in order)
// rather than pipeline stages.
func (rt *Router) recordProxied(reqID uint64, machine string, r *http.Request, start time.Time, hops []telemetry.Hop, errStr string) {
	client := r.RemoteAddr
	if host, _, err := net.SplitHostPort(client); err == nil {
		client = host
	}
	rt.slow.Record(telemetry.Entry{
		ID: reqID, Machine: machine, Client: client, Start: start,
		TotalNs: time.Since(start).Nanoseconds(), Err: errStr, Hops: hops,
	})
}

// TraceHopsHeader is the router's response header naming every replica
// attempt of a proxied request — present whenever a failover happened,
// or always under ?trace=1.
const TraceHopsHeader = "X-Isel-Trace-Hops"

// renderHops renders a hop chain compactly:
//
//	http://a:1 status=503 12ms failover=false; http://b:1 status=200 3ms failover=true
func renderHops(hops []telemetry.Hop) string {
	var b bytes.Buffer
	for i, h := range hops {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s ", h.Peer)
		if h.Err != "" {
			fmt.Fprintf(&b, "err=%q ", h.Err)
		} else {
			fmt.Fprintf(&b, "status=%d ", h.Status)
		}
		fmt.Fprintf(&b, "%s failover=%v", time.Duration(h.Ns), h.Failover)
	}
	return b.String()
}

// tryCompile replays the buffered request against one replica, carrying
// the fleet request id (and the client's trace ask) across the hop.
func (rt *Router) tryCompile(ctx context.Context, peer, machine string, body []byte, reqID uint64, wantTrace bool) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.PerTryTimeout)
	url := peer + "/compile?machine=" + machine
	if wantTrace {
		url += "&trace=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.RequestIDHeader, strconv.FormatUint(reqID, 10))
	resp, err := rt.members.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	// The cancel must outlive the body read; tie it to the body's Close.
	resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

type cancelOnClose struct {
	ReadCloser interface {
		Read([]byte) (int, error)
		Close() error
	}
	cancel context.CancelFunc
}

func (c *cancelOnClose) Read(p []byte) (int, error) { return c.ReadCloser.Read(p) }
func (c *cancelOnClose) Close() error {
	defer c.cancel()
	return c.ReadCloser.Close()
}

// relay copies one replica answer to the client verbatim.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	body, err := readAllLimited(resp.Body)
	if err == nil {
		w.Write(body)
	}
}

// ReplicaStats is one replica's scrape in the router's fleet view.
type ReplicaStats struct {
	Peer  string `json:"peer"`
	Alive bool   `json:"alive"`
	Error string `json:"error,omitempty"`
	// Stats is the replica's own GET /stats body (absent when the scrape
	// failed).
	Stats *server.StatsResponse `json:"stats,omitempty"`
}

// ShardStatus is one machine's serving state across its owners.
type ShardStatus struct {
	Machine string   `json:"machine"`
	Owners  []string `json:"owners"`
	// WarmOwners are the owners currently serving the machine warm-ready
	// (alive, replica ready, machine constructed without error).
	WarmOwners []string `json:"warmOwners"`
	Ready      bool     `json:"ready"`
}

// RoutingStats counts the router's own proxy work.
type RoutingStats struct {
	Proxied   int64 `json:"proxied"`
	Retries   int64 `json:"retries"`
	Failovers int64 `json:"failovers"`
}

// FleetStats is the body of the router's GET /stats: the per-replica
// scrapes plus fleet-level aggregation — summed job counts, merged global
// engine counters, and per-client counters merged across every replica a
// client's requests landed on. After traffic quiesces, each client's
// merged counters and the merged global counters obey the same exact
// accounting invariant one replica's do: clients sum to global.
type FleetStats struct {
	Machines []string       `json:"machines"`
	Replicas []ReplicaStats `json:"replicas"`
	Shards   []ShardStatus  `json:"shards"`
	Routing  RoutingStats   `json:"routing"`

	Jobs      int64 `json:"jobs"`
	Nodes     int64 `json:"nodes"`
	Cancelled int64 `json:"cancelled"`
	// ResidentBytes sums every replica's resident table bytes — the
	// fleet's total warm-state footprint.
	ResidentBytes int                         `json:"residentBytes"`
	Global        metrics.Counters            `json:"global"`
	Clients       map[string]metrics.Counters `json:"clients"`
	// Latency is every replica's stage-latency series folded together
	// with telemetry.MergeSeries — the histogram analogue of the counter
	// merge above: snapshot-merge is associative, so the fleet p99s here
	// are what one process observing all traffic would have recorded.
	Latency          []telemetry.SeriesSnapshot                     `json:"latency,omitempty"`
	LatencySummaries map[string]map[string]telemetry.LatencySummary `json:"latencySummaries,omitempty"`
}

// scrape fetches one GET path from every peer concurrently, returning the
// bodies (nil where the peer failed) alongside per-peer errors.
func (rt *Router) scrape(path string) (bodies [][]byte, errs []error) {
	peers := rt.members.Peers()
	bodies = make([][]byte, len(peers))
	errs = make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.PerTryTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+path, nil)
			if err != nil {
				errs[i] = err
				return
			}
			resp, err := rt.members.Do(req)
			if err != nil {
				rt.members.ReportDown(peer, err)
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			rt.members.ReportUp(peer)
			body, err := readAllLimited(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("%s%s answered %d: %s", peer, path, resp.StatusCode, bytes.TrimSpace(body))
				return
			}
			bodies[i] = body
		}(i, p)
	}
	wg.Wait()
	return bodies, errs
}

// fleet scrapes every replica's /stats and /readyz and assembles the
// aggregated view (shared by the stats and readyz handlers).
func (rt *Router) fleet() FleetStats {
	peers := rt.members.Peers()
	statBodies, statErrs := rt.scrape("/stats")
	readyBodies, _ := rt.scrape("/readyz")

	fs := FleetStats{
		Machines: append([]string(nil), rt.cfg.Machines...),
		Clients:  map[string]metrics.Counters{},
		Routing: RoutingStats{
			Proxied:   rt.proxied.Load(),
			Retries:   rt.retries.Load(),
			Failovers: rt.failovers.Load(),
		},
	}
	// Per-replica decode + fleet aggregation. A replica that cannot be
	// scraped contributes nothing to the totals (its numbers are
	// unreachable, not zero) and is reported with its error.
	ready := map[string]bool{}
	decoded := map[string]*server.StatsResponse{}
	for i, p := range peers {
		rs := ReplicaStats{Peer: p, Alive: rt.members.Alive(p)}
		if statErrs[i] != nil {
			rs.Error = statErrs[i].Error()
		} else {
			var sr server.StatsResponse
			if err := json.Unmarshal(statBodies[i], &sr); err != nil {
				rs.Error = fmt.Sprintf("decoding stats: %v", err)
			} else {
				rs.Stats = &sr
				decoded[p] = &sr
				fs.Jobs += sr.Jobs
				fs.Nodes += sr.Nodes
				fs.Cancelled += sr.Cancelled
				fs.ResidentBytes += sr.ResidentBytes
				g := sr.Global
				fs.Global.Add(&g)
				for client, c := range sr.Clients {
					merged := fs.Clients[client]
					merged.Add(&c)
					fs.Clients[client] = merged
				}
				fs.Latency = telemetry.MergeSeries(fs.Latency, sr.Latency)
			}
		}
		ready[p] = readyBodies[i] != nil
		fs.Replicas = append(fs.Replicas, rs)
	}
	for _, m := range fs.Machines {
		sh := ShardStatus{Machine: m, Owners: rt.ring.Owners(m, rt.cfg.Replication)}
		for _, o := range sh.Owners {
			sr := decoded[o]
			if sr == nil || !ready[o] {
				continue
			}
			for _, ms := range sr.Machines {
				if ms.Machine == m && ms.Constructed && ms.Error == "" {
					sh.WarmOwners = append(sh.WarmOwners, o)
					break
				}
			}
		}
		sh.Ready = len(sh.WarmOwners) > 0
		fs.Shards = append(fs.Shards, sh)
	}
	fs.LatencySummaries = server.SummarizeLatency(fs.Latency)
	return fs
}

// metrics is the router's GET /metrics: its own routing counters and
// per-peer liveness, plus the merged fleet view — same metric names the
// replicas expose, aggregated, so one scrape of the router sees the
// fleet.
func (rt *Router) metrics(w http.ResponseWriter, r *http.Request) {
	fs := rt.fleet()
	w.Header().Set("Content-Type", server.PromContentType)
	p := telemetry.NewPromWriter(w)
	p.Counter("isel_router_proxied_total", "Client requests accepted for proxying.", nil, float64(fs.Routing.Proxied))
	p.Counter("isel_router_retries_total", "Extra replica attempts beyond each request's first.", nil, float64(fs.Routing.Retries))
	p.Counter("isel_router_failovers_total", "Requests answered by a non-first candidate.", nil, float64(fs.Routing.Failovers))
	for _, rs := range fs.Replicas {
		var alive float64
		if rs.Alive {
			alive = 1
		}
		p.Gauge("isel_peer_alive", "1 while the peer is believed alive.", []telemetry.Label{{Name: "peer", Value: rs.Peer}}, alive)
	}
	for _, sh := range fs.Shards {
		var ready float64
		if sh.Ready {
			ready = 1
		}
		p.Gauge("isel_shard_warm_owners", "Owners currently serving the shard warm.",
			[]telemetry.Label{{Name: "machine", Value: sh.Machine}}, float64(len(sh.WarmOwners)))
		p.Gauge("isel_shard_ready", "1 while at least one owner serves the shard warm.",
			[]telemetry.Label{{Name: "machine", Value: sh.Machine}}, ready)
	}
	p.Counter("isel_jobs_total", "Fleet jobs run to completion.", nil, float64(fs.Jobs))
	p.Counter("isel_nodes_total", "Fleet IR nodes compiled.", nil, float64(fs.Nodes))
	p.Counter("isel_jobs_cancelled_total", "Fleet jobs cancelled.", nil, float64(fs.Cancelled))
	p.Gauge("isel_resident_table_bytes", "Fleet resident table memory.", nil, float64(fs.ResidentBytes))
	server.WritePromCounters(p, fs.Global)
	server.WritePromLatency(p, fs.Latency)
	p.Flush()
}

// version is the router's GET /version: build identity plus the fleet
// shape it fronts (the per-machine grammar fingerprints live on the
// replicas' own /version).
func (rt *Router) version(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"build":         telemetry.Build(),
		"started":       rt.started,
		"uptimeSeconds": time.Since(rt.started).Seconds(),
		"role":          "router",
		"peers":         rt.ring.Members(),
		"machines":      rt.cfg.Machines,
		"replication":   rt.cfg.Replication,
	})
}

// slowlog is the router's GET /debug/slowlog: the slowest proxied
// requests with their full hop chains — the only view that shows which
// owners a failover tried before one answered.
func (rt *Router) slowlog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, server.SlowlogResponse{Entries: rt.slow.Entries()})
}

// SlowlogEntries exposes the router slowlog to harnesses.
func (rt *Router) SlowlogEntries() []telemetry.Entry { return rt.slow.Entries() }

func (rt *Router) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, rt.fleet())
}

// readyz answers 200 only when every shard is ready: each served machine
// has at least one ring owner alive, itself ready, and serving the
// machine warm. Mirrors the replica-level readyz-vs-healthz split at
// fleet scope — /healthz says "the router process is up", /readyz says
// "routed traffic will land on warm tables".
func (rt *Router) readyz(w http.ResponseWriter, r *http.Request) {
	fs := rt.fleet()
	for _, sh := range fs.Shards {
		if !sh.Ready {
			httpError(w, http.StatusServiceUnavailable,
				"shard %s has no warm-ready owner (owners %v)", sh.Machine, sh.Owners)
			return
		}
	}
	fmt.Fprintln(w, "ready")
}

func (rt *Router) clusterInfo(w http.ResponseWriter, r *http.Request) {
	info := ClusterInfo{
		Peers:       rt.ring.Members(),
		Replication: rt.cfg.Replication,
		Owners:      map[string][]string{},
		Health:      rt.members.Health(),
	}
	for _, m := range rt.cfg.Machines {
		info.Owners[m] = rt.ring.Owners(m, rt.cfg.Replication)
	}
	writeJSON(w, info)
}
