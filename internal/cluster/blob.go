package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro"
	"repro/internal/gen"
)

// BlobStore is a replica's directory of content-addressed `.isel`
// artifacts: one blob per machine, stored as <machine>@<fingerprint>.isel
// so the file name itself carries the content identity the exchange
// negotiates on. Put replaces a machine's previous artifact atomically
// (temp file + rename), so a reader never sees a torn blob.
type BlobStore struct {
	dir string
	mu  sync.Mutex
}

// NewBlobStore opens (creating if needed) the store directory.
func NewBlobStore(dir string) (*BlobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: blob store: %w", err)
	}
	return &BlobStore{dir: dir}, nil
}

// Dir returns the store directory.
func (s *BlobStore) Dir() string { return s.dir }

// blobFile names machine's artifact for fingerprint fp.
func (s *BlobStore) blobFile(machine string, fp uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s@%016x.isel", machine, fp))
}

// Lookup returns the stored artifact for machine, if any, with its
// header. A stored file that no longer parses is quarantined to `.bad`
// and reported as absent — the same corrupt-artifact policy the registry
// applies to preload blobs.
func (s *BlobStore) Lookup(machine string) (path string, hdr *gen.Header, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lookupLocked(machine)
}

func (s *BlobStore) lookupLocked(machine string) (string, *gen.Header, bool) {
	matches, _ := filepath.Glob(filepath.Join(s.dir, machine+"@*.isel"))
	for _, p := range matches {
		f, err := os.Open(p)
		if err != nil {
			continue
		}
		hdr, err := gen.ReadHeader(f)
		f.Close()
		if err != nil {
			quarantine(p, err)
			continue
		}
		return p, hdr, true
	}
	return "", nil, false
}

// Put stores blob as machine's artifact, replacing any previous
// fingerprint for the machine, and returns the stored path. The blob's
// header must parse (callers validate content before putting; Put only
// guards the file-name contract).
func (s *BlobStore) Put(machine string, blob []byte) (string, error) {
	hdr, err := gen.ReadHeader(bytes.NewReader(blob))
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.blobFile(machine, hdr.Fingerprint)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	// Drop superseded fingerprints: one machine, one current artifact.
	matches, _ := filepath.Glob(filepath.Join(s.dir, machine+"@*.isel"))
	for _, p := range matches {
		if p != path {
			os.Remove(p)
		}
	}
	return path, nil
}

// quarantine renames a corrupt artifact to <path>.bad (best effort) so
// the bytes survive for diagnosis without ever being served again.
func quarantine(path string, cause error) {
	os.Rename(path, path+".bad")
	_ = cause
}

// ValidateBlob checks a transferred blob end to end against machine m:
// the header must parse, the fingerprint must match m's full grammar or
// its fixed-cost subset, and the body must decode cleanly (checksum,
// structure) against the matched grammar. It returns the header and the
// grammar the blob is for. This runs on every wire transfer — a corrupt
// or mismatched blob is rejected before it can reach a store or a
// registry.
func ValidateBlob(m *repro.Machine, blob []byte) (*gen.Header, error) {
	hdr, err := gen.ReadHeader(bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	g := m.Grammar
	if gen.Fingerprint(g) != hdr.Fingerprint {
		fixed, err := m.FixedMachine()
		if err != nil {
			return nil, err
		}
		if gen.Fingerprint(fixed.Grammar) != hdr.Fingerprint {
			return nil, fmt.Errorf("cluster: blob was generated for grammar %q, which matches neither machine %s nor its fixed subset",
				hdr.Grammar, m.Name)
		}
		g = fixed.Grammar
	}
	if _, err := gen.Decode(g, bytes.NewReader(blob)); err != nil {
		return nil, err
	}
	return hdr, nil
}

// etag formats a fingerprint the way the exchange quotes it on the wire.
func etag(fp uint64) string { return fmt.Sprintf("%q", fmt.Sprintf("%016x", fp)) }

// Exchange is the replica-side blob-exchange surface:
//
//	GET  /blobs/{machine}  the machine's current artifact
//	                       (ETag = grammar fingerprint; an If-None-Match
//	                       that names the stored fingerprint gets 304 and
//	                       no bytes — an up-to-date peer re-ships nothing)
//	POST /preload?machine=x  accept one artifact: validated end to end,
//	                       stored, and the machine hot-swapped onto it
//	                       (zero downtime, PR 8 swap semantics); corrupt
//	                       transfers are quarantined and answered 422
//
// Apply is invoked after a successful preload store; replicas wire it to
// the registry swap. A nil Apply stores without swapping (a pure cache
// node).
type Exchange struct {
	Store *BlobStore
	// Apply hot-swaps machine onto the stored artifact at path. It
	// returns the now-serving table-set version (0 if unknown).
	Apply func(machine, path string) (version int, err error)
}

// Mount registers the exchange routes on mux.
func (e *Exchange) Mount(mux *http.ServeMux) {
	mux.HandleFunc("GET /blobs/{machine}", e.getBlob)
	mux.HandleFunc("POST /preload", e.preload)
}

func (e *Exchange) getBlob(w http.ResponseWriter, r *http.Request) {
	machine := r.PathValue("machine")
	path, hdr, ok := e.Store.Lookup(machine)
	if !ok {
		httpError(w, http.StatusNotFound, "no artifact for machine %q", machine)
		return
	}
	tag := etag(hdr.Fingerprint)
	w.Header().Set("ETag", tag)
	w.Header().Set("X-Isel-Fingerprint", fmt.Sprintf("%016x", hdr.Fingerprint))
	// Content negotiation on the fingerprint: a peer that already holds
	// this exact table set sends it back and gets 304 — nothing re-ships.
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		for _, cand := range strings.Split(inm, ",") {
			if strings.TrimSpace(cand) == tag {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, r, path)
}

func (e *Exchange) preload(w http.ResponseWriter, r *http.Request) {
	machine := r.URL.Query().Get("machine")
	if machine == "" {
		httpError(w, http.StatusBadRequest, "preload needs ?machine=")
		return
	}
	m, err := repro.LoadMachine(machine)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	blob, err := readLimited(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading artifact: %v", err)
		return
	}
	hdr, err := ValidateBlob(m, blob)
	if err != nil {
		// A corrupt transfer is quarantined like any corrupt artifact:
		// the bytes land beside the store as .bad for diagnosis, the
		// machine keeps serving whatever it served.
		bad := filepath.Join(e.Store.Dir(), machine+".posted.isel")
		if werr := os.WriteFile(bad, blob, 0o644); werr == nil {
			quarantine(bad, err)
		}
		httpError(w, http.StatusUnprocessableEntity, "rejected artifact for %s: %v", machine, err)
		return
	}
	path, err := e.Store.Put(machine, blob)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "storing artifact: %v", err)
		return
	}
	version := 0
	if e.Apply != nil {
		if version, err = e.Apply(machine, path); err != nil {
			httpError(w, http.StatusInternalServerError, "stored %s but swap failed (old tables keep serving): %v", machine, err)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"machine":     machine,
		"fingerprint": fmt.Sprintf("%016x", hdr.Fingerprint),
		"version":     version,
	})
}

// maxTransferBytes bounds one blob transfer, mirroring gen's decode
// bound.
const maxTransferBytes = 1 << 28

func readLimited(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	return readAllLimited(r.Body)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
