package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"time"

	"repro"
	"repro/internal/gen"
	"repro/internal/server"
)

// ReplicaConfig assembles one fleet member.
type ReplicaConfig struct {
	// Self is this replica's base URL exactly as it appears in Peers —
	// ownership is computed by name, so the spelling must match.
	Self string
	// Peers is the full static replica list (including Self), identical on
	// every participant.
	Peers []string
	// Machines is the fleet's served machine set. The replica registers
	// all of them (any request can land anywhere mid-failover) but only
	// warms and publishes the ones the ring assigns it.
	Machines []string
	// Replication is the owners-per-machine factor (clamped to the fleet
	// size; <= 0 means 1).
	Replication int
	// VNodes configures the ring (DefaultVNodes if <= 0).
	VNodes int
	// StoreDir is the blob store directory.
	StoreDir string
	// PreloadDir, when set, seeds owned machines from <machine>.isel blobs
	// (an iselgen output directory) before the peer-fetch/AOT ladder runs.
	PreloadDir string
	// FallbackKind serves machines with no blob (and all non-owned
	// machines); KindOnDemand if empty.
	FallbackKind repro.Kind
	// MaxStates bounds fallback on-demand automata (0 = unlimited).
	MaxStates int
	// Server tunes the compile server (workers, queue, timeout, shed).
	Server server.Config
	// Client is the outbound peer client (nil = a default).
	Client *http.Client
	// Logf receives operational messages (nil = silent).
	Logf func(format string, args ...any)
}

// Replica is one fleet member: the PR 8 serving stack (registry + compile
// server + HTTP front end) plus the cluster surfaces — the blob exchange
// and the shared ring/membership view. Boot (NewReplica) leaves every
// owned machine warm-ready before the listener could accept a request:
// local blob, else a fetch from a peer owner, else ahead-of-time
// compilation whose result is published for the peers to fetch — the
// fleet pays table generation once, wherever it lands first.
type Replica struct {
	cfg     ReplicaConfig
	ring    *Ring
	members *Membership
	store   *BlobStore
	reg     *repro.Registry
	srv     *server.Server
	mux     *http.ServeMux
	owned   []string
	logf    func(string, ...any)
}

// NewReplica builds and boots the replica: ring, stores, registry with
// every fleet machine registered, owned machines warmed (see Replica),
// compile server, and the mounted HTTP surface.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.FallbackKind == "" {
		cfg.FallbackKind = repro.KindOnDemand
	}
	selfInPeers := false
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			selfInPeers = true
		}
	}
	if !selfInPeers {
		return nil, fmt.Errorf("cluster: replica self %q is not in the peer list %v", cfg.Self, cfg.Peers)
	}
	if len(cfg.Machines) == 0 {
		return nil, fmt.Errorf("cluster: replica needs at least one machine")
	}
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	store, err := NewBlobStore(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	r := &Replica{
		cfg:     cfg,
		ring:    ring,
		members: NewMembership(cfg.Peers, cfg.Client),
		store:   store,
		reg:     repro.NewRegistry(),
		logf:    logf,
	}
	r.reg.SetLogger(logf)
	for _, m := range cfg.Machines {
		if ring.Owns(cfg.Self, m, cfg.Replication) {
			r.owned = append(r.owned, m)
		}
	}

	// Register the full fleet machine set. Owned machines get their warm
	// recipe below; the rest register lazily with the fallback kind so a
	// spillover request (every owner down) still compiles, just cold.
	for _, name := range cfg.Machines {
		rc, err := r.resolveOwned(name)
		if err != nil {
			return nil, err
		}
		if err := r.reg.AddMachine(rc.M, rc.Kind, rc.Opt); err != nil {
			return nil, err
		}
	}
	// Warm every owned machine now and promise it stays warm: /readyz
	// vouches for exactly the set the ring routes here.
	for _, name := range r.owned {
		if err := r.reg.Warm(name); err != nil {
			return nil, fmt.Errorf("cluster: warming owned machine %s: %w", name, err)
		}
		if err := r.reg.ExpectWarm(name); err != nil {
			return nil, err
		}
	}

	r.srv = server.New(r.reg, cfg.Server)
	r.mux = http.NewServeMux()
	ex := &Exchange{Store: store, Apply: r.applyBlob}
	ex.Mount(r.mux)
	r.mux.HandleFunc("GET /cluster", r.clusterInfo)
	r.mux.Handle("/", server.NewHandler(r.srv))
	return r, nil
}

// resolveOwned produces the serving recipe for name: owned machines walk
// the warm-state ladder (local blob → peer fetch → AOT compile +
// publish), everything else serves the fallback kind cold.
func (r *Replica) resolveOwned(name string) (Recipe, error) {
	owned := false
	for _, o := range r.owned {
		if o == name {
			owned = true
		}
	}
	if !owned {
		m, err := repro.LoadMachine(name)
		if err != nil {
			return Recipe{}, err
		}
		return Recipe{M: m, Kind: r.cfg.FallbackKind, Opt: repro.Options{MaxStates: r.cfg.MaxStates}}, nil
	}
	path, err := r.ensureBlob(name)
	if err != nil {
		if errors.Is(err, gen.ErrNoFixedClosure) {
			// No tabulable subset exists: there is nothing to exchange, the
			// on-demand engine is the machine's only shape. Still warm-owned.
			r.logf("cluster: %s has no fixed closure; owned but serving %s without a blob", name, r.cfg.FallbackKind)
			m, lerr := repro.LoadMachine(name)
			if lerr != nil {
				return Recipe{}, lerr
			}
			return Recipe{M: m, Kind: r.cfg.FallbackKind, Opt: repro.Options{MaxStates: r.cfg.MaxStates}, Detail: "on-demand: no fixed closure to tabulate"}, nil
		}
		return Recipe{}, err
	}
	return ResolveBlobRecipe(name, path)
}

// ensureBlob makes sure the local store holds name's artifact and returns
// its path — the warm-state ladder:
//
//  1. an artifact already in the store (a previous run's, or seeded);
//  2. a <name>.isel in PreloadDir (an iselgen deployment), validated and
//     adopted into the store;
//  3. a fetch from a peer owner (cheapest-first: whoever already paid
//     generation), validated end to end, corrupt replies skipped;
//  4. ahead-of-time compilation here — and the result is published to the
//     peer owners, so the fleet pays this step once.
func (r *Replica) ensureBlob(name string) (string, error) {
	if path, _, ok := r.store.Lookup(name); ok {
		return path, nil
	}
	m, err := repro.LoadMachine(name)
	if err != nil {
		return "", err
	}
	if r.cfg.PreloadDir != "" {
		if blob, err := readFileLimited(filepath.Join(r.cfg.PreloadDir, name+".isel")); err == nil {
			if _, verr := ValidateBlob(m, blob); verr == nil {
				return r.store.Put(name, blob)
			} else {
				r.logf("cluster: preload %s.isel rejected (%v); trying peers", name, verr)
			}
		}
	}
	for _, peer := range r.ring.Owners(name, r.cfg.Replication) {
		if peer == r.cfg.Self || !r.members.Alive(peer) {
			continue
		}
		blob, err := r.fetchBlob(peer, name)
		if err != nil {
			r.logf("cluster: fetching %s from %s: %v", name, peer, err)
			continue
		}
		if _, err := ValidateBlob(m, blob); err != nil {
			r.logf("cluster: peer %s sent a bad artifact for %s (%v); trying next", peer, name, err)
			continue
		}
		r.logf("cluster: %s warm-started from peer %s", name, peer)
		return r.store.Put(name, blob)
	}
	// Nobody has it: pay generation here, once, for the whole fleet.
	// CompileHybrid tabulates the fixed closure whether or not the grammar
	// has dynamic rules (fixed-only grammars yield the same blob Compile
	// would), so one AOT path covers every machine shape.
	res, err := gen.CompileHybrid(m.Grammar, gen.Config{})
	if err != nil {
		return "", err
	}
	path, err := r.store.Put(name, res.Blob)
	if err != nil {
		return "", err
	}
	r.logf("cluster: %s AOT-compiled here (%d states, %d blob bytes); publishing to peers", name, res.Stats.States, len(res.Blob))
	r.Publish(name)
	return path, nil
}

// fetchBlob GETs name's artifact from peer through the membership client.
func (r *Replica) fetchBlob(peer, name string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/blobs/"+name, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.members.Do(req)
	if err != nil {
		r.members.ReportDown(peer, err)
		return nil, err
	}
	defer resp.Body.Close()
	r.members.ReportUp(peer)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer answered %d", resp.StatusCode)
	}
	return readAllLimited(resp.Body)
}

// Publish pushes name's stored artifact to every other peer owner via
// POST /preload, best effort: a peer that is down simply fetches it later
// through its own boot ladder. The receiving side validates, stores, and
// hot-swaps, so a published table set starts serving fleet-wide with zero
// downtime.
func (r *Replica) Publish(name string) {
	path, hdr, ok := r.store.Lookup(name)
	if !ok {
		return
	}
	blob, err := readFileLimited(path)
	if err != nil {
		return
	}
	for _, peer := range r.ring.Owners(name, r.cfg.Replication) {
		if peer == r.cfg.Self || !r.members.Alive(peer) {
			continue
		}
		if err := r.pushBlob(peer, name, blob); err != nil {
			r.logf("cluster: publishing %s (fp %016x) to %s: %v", name, hdr.Fingerprint, peer, err)
		}
	}
}

func (r *Replica) pushBlob(peer, name string, blob []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		peer+"/preload?machine="+name, bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.members.Do(req)
	if err != nil {
		r.members.ReportDown(peer, err)
		return err
	}
	defer resp.Body.Close()
	r.members.ReportUp(peer)
	if resp.StatusCode != http.StatusOK {
		body, _ := readAllLimited(resp.Body)
		return fmt.Errorf("peer answered %d: %s", resp.StatusCode, body)
	}
	return nil
}

// applyBlob is the Exchange.Apply hook: a freshly stored artifact is
// resolved to its recipe and the machine hot-swapped onto it (PR 8 swap
// semantics — the old version drains, a failed build keeps it serving).
func (r *Replica) applyBlob(machine, path string) (int, error) {
	rc, err := ResolveBlobRecipe(machine, path)
	if err != nil {
		return 0, err
	}
	if err := r.reg.SwapMachine(rc.M, rc.Kind, rc.Opt); err != nil {
		return 0, err
	}
	for _, st := range r.reg.Status() {
		if st.Machine == machine {
			r.logf("cluster: %s preloaded from a peer, now v%d (%s)", machine, st.Version, rc.Detail)
			return st.Version, nil
		}
	}
	return 0, nil
}

// ClusterInfo is the body of a replica's GET /cluster: its ring view, for
// operators checking that the fleet agrees on ownership.
type ClusterInfo struct {
	Self        string              `json:"self"`
	Peers       []string            `json:"peers"`
	Replication int                 `json:"replication"`
	Owned       []string            `json:"owned"`
	Owners      map[string][]string `json:"owners"`
	Health      []PeerHealth        `json:"health"`
}

func (r *Replica) clusterInfo(w http.ResponseWriter, req *http.Request) {
	info := ClusterInfo{
		Self:        r.cfg.Self,
		Peers:       r.ring.Members(),
		Replication: r.replication(),
		Owned:       append([]string(nil), r.owned...),
		Owners:      map[string][]string{},
		Health:      r.members.Health(),
	}
	for _, m := range r.cfg.Machines {
		info.Owners[m] = r.ring.Owners(m, r.cfg.Replication)
	}
	writeJSON(w, info)
}

func (r *Replica) replication() int {
	n := r.cfg.Replication
	if n <= 0 {
		n = 1
	}
	if n > len(r.cfg.Peers) {
		n = len(r.cfg.Peers)
	}
	return n
}

// Handler is the replica's full HTTP surface: the compile server routes
// plus the blob exchange and GET /cluster.
func (r *Replica) Handler() http.Handler { return r.mux }

// Server exposes the compile server (stats, shutdown).
func (r *Replica) Server() *server.Server { return r.srv }

// Registry exposes the serving registry.
func (r *Replica) Registry() *repro.Registry { return r.reg }

// Store exposes the blob store.
func (r *Replica) Store() *BlobStore { return r.store }

// Owned lists the machines the ring assigns this replica.
func (r *Replica) Owned() []string { return append([]string(nil), r.owned...) }

// StartProbing launches active peer health probing (optional; passive
// marking works without it).
func (r *Replica) StartProbing(every time.Duration) { r.members.StartProbing(every) }

// Shutdown drains the compile server and stops probing.
func (r *Replica) Shutdown() {
	r.members.Stop()
	r.srv.Shutdown()
}
