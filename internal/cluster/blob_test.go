package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/gen"
)

// demoBlob compiles the demo machine's tables once per test that needs a
// real artifact.
func demoBlob(t *testing.T) (*repro.Machine, []byte) {
	t.Helper()
	m, err := repro.LoadMachine("demo")
	if err != nil {
		t.Fatal(err)
	}
	res, err := gen.CompileHybrid(m.Grammar, gen.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m, res.Blob
}

func TestBlobStorePutLookup(t *testing.T) {
	store, err := NewBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := store.Lookup("demo"); ok {
		t.Fatal("empty store claims an artifact")
	}
	_, blob := demoBlob(t)
	path, err := store.Put("demo", blob)
	if err != nil {
		t.Fatal(err)
	}
	got, hdr, ok := store.Lookup("demo")
	if !ok || got != path {
		t.Fatalf("Lookup = %q, %v; want %q", got, ok, path)
	}
	if hdr.Grammar == "" || hdr.Fingerprint == 0 {
		t.Fatalf("header not parsed: %+v", hdr)
	}
	if !strings.Contains(filepath.Base(path), "@") || !strings.HasSuffix(path, ".isel") {
		t.Fatalf("store file %q is not fingerprint-named", path)
	}
	// A second Put of the same content replaces, never duplicates.
	if _, err := store.Put("demo", blob); err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(store.Dir(), "demo@*.isel"))
	if len(matches) != 1 {
		t.Fatalf("store holds %d artifacts for demo, want 1: %v", len(matches), matches)
	}
}

func TestBlobStoreQuarantinesCorrupt(t *testing.T) {
	store, err := NewBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(store.Dir(), "demo@0000000000000bad.isel")
	if err := os.WriteFile(bad, []byte("not a blob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := store.Lookup("demo"); ok {
		t.Fatal("corrupt artifact served")
	}
	if _, err := os.Stat(bad + ".bad"); err != nil {
		t.Fatalf("corrupt artifact not quarantined: %v", err)
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatal("corrupt artifact still in place")
	}
}

func TestValidateBlob(t *testing.T) {
	m, blob := demoBlob(t)
	if _, err := ValidateBlob(m, blob); err != nil {
		t.Fatalf("good blob rejected: %v", err)
	}
	if _, err := ValidateBlob(m, blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)/2] ^= 0xff
	if _, err := ValidateBlob(m, flipped); err == nil {
		t.Fatal("bit-flipped blob accepted")
	}
	other, err := repro.LoadMachine("jit64")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateBlob(other, blob); err == nil {
		t.Fatal("blob for another machine accepted")
	}
}

// exchangeServer mounts an Exchange (store seeded with demo's blob) on a
// test server, recording Apply calls.
func exchangeServer(t *testing.T) (*httptest.Server, *BlobStore, *[]string) {
	t.Helper()
	store, err := NewBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var applied []string
	ex := &Exchange{
		Store: store,
		Apply: func(machine, path string) (int, error) {
			applied = append(applied, machine+":"+filepath.Base(path))
			return 7, nil
		},
	}
	mux := http.NewServeMux()
	ex.Mount(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, store, &applied
}

func TestExchangeGetBlobAndContentNegotiation(t *testing.T) {
	ts, store, _ := exchangeServer(t)
	_, blob := demoBlob(t)
	if _, err := store.Put("demo", blob); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/blobs/demo")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAllLimited(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /blobs/demo = %d", resp.StatusCode)
	}
	if !bytes.Equal(body, blob) {
		t.Fatalf("served %d bytes, want the %d-byte artifact", len(body), len(blob))
	}
	tag := resp.Header.Get("ETag")
	if tag == "" || resp.Header.Get("X-Isel-Fingerprint") == "" {
		t.Fatalf("missing fingerprint headers: %v", resp.Header)
	}

	// The fingerprint content negotiation: an up-to-date peer re-ships
	// nothing.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/blobs/demo", nil)
	req.Header.Set("If-None-Match", `"feedface", `+tag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match with matching fingerprint = %d, want 304", resp.StatusCode)
	}

	// A stale fingerprint still gets the bytes.
	req.Header.Set("If-None-Match", `"feedface"`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("If-None-Match with stale fingerprint = %d, want 200", resp.StatusCode)
	}

	// Unknown machine: 404.
	resp, err = http.Get(ts.URL + "/blobs/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /blobs/nosuch = %d, want 404", resp.StatusCode)
	}
}

func TestExchangePreload(t *testing.T) {
	ts, store, applied := exchangeServer(t)
	_, blob := demoBlob(t)

	resp, err := http.Post(ts.URL+"/preload?machine=demo", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("preload = %d (%v)", resp.StatusCode, out)
	}
	if out["machine"] != "demo" || out["version"] != float64(7) {
		t.Fatalf("preload response %v", out)
	}
	if _, _, ok := store.Lookup("demo"); !ok {
		t.Fatal("preloaded artifact not stored")
	}
	if len(*applied) != 1 || !strings.HasPrefix((*applied)[0], "demo:") {
		t.Fatalf("Apply calls %v", *applied)
	}

	// Missing ?machine=.
	resp, err = http.Post(ts.URL+"/preload", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("preload without machine = %d, want 400", resp.StatusCode)
	}

	// Unknown machine name: 404.
	resp, err = http.Post(ts.URL+"/preload?machine=nosuch", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("preload of unknown machine = %d, want 404", resp.StatusCode)
	}
}

func TestExchangePreloadQuarantinesCorrupt(t *testing.T) {
	ts, store, applied := exchangeServer(t)
	_, blob := demoBlob(t)
	corrupt := append([]byte(nil), blob...)
	corrupt[len(corrupt)/2] ^= 0xff

	resp, err := http.Post(ts.URL+"/preload?machine=demo", "application/octet-stream", bytes.NewReader(corrupt))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt preload = %d, want 422", resp.StatusCode)
	}
	if len(*applied) != 0 {
		t.Fatalf("corrupt preload reached Apply: %v", *applied)
	}
	if _, _, ok := store.Lookup("demo"); ok {
		t.Fatal("corrupt preload reached the store")
	}
	bads, _ := filepath.Glob(filepath.Join(store.Dir(), "*.bad"))
	if len(bads) != 1 {
		t.Fatalf("corrupt transfer not quarantined beside the store: %v", bads)
	}
}
