package cluster

import (
	"fmt"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/gen"
)

// Recipe is how one machine should be served as of the last look at its
// artifacts: the loaded machine, its engine kind and options, and a
// human-readable note on what was resolved. cmd/iselserver resolves one
// at boot and again on SIGHUP; a replica resolves one per owned machine
// at boot and again on every blob-exchange preload — all through the
// same election below, so a blob always picks the same engine no matter
// which surface delivered it.
type Recipe struct {
	M      *repro.Machine
	Kind   repro.Kind
	Opt    repro.Options
	Detail string
}

// ResolveRecipe decides how name should be served right now. With a
// <name>.isel blob in preloadDir, the blob's grammar fingerprint picks
// the engine: full grammar + dynamic-cost rules → hybrid (fixed
// operators from the blob, dynamic on-demand); full fixed-only grammar →
// offline; fixed-subset fingerprint → the stripped machine offline under
// the requested name. Without a blob the machine serves with the
// fallback kind.
func ResolveRecipe(name, preloadDir, fallback string, maxStates int) (Recipe, error) {
	if preloadDir != "" {
		path := filepath.Join(preloadDir, name+".isel")
		if _, err := os.Stat(path); err == nil {
			return ResolveBlobRecipe(name, path)
		} else if !os.IsNotExist(err) {
			return Recipe{}, err
		}
	}
	m, err := repro.LoadMachine(name)
	if err != nil {
		return Recipe{}, err
	}
	return Recipe{M: m, Kind: repro.Kind(fallback), Opt: repro.Options{MaxStates: maxStates}}, nil
}

// ResolveBlobRecipe elects the engine for name from the `.isel` artifact
// at path (which must exist): the blob's fingerprint is matched against
// the machine's full grammar and its fixed-cost subset exactly as
// ResolveRecipe describes.
func ResolveBlobRecipe(name, path string) (Recipe, error) {
	m, err := repro.LoadMachine(name)
	if err != nil {
		return Recipe{}, err
	}
	f, err := os.Open(path)
	if err != nil {
		return Recipe{}, err
	}
	hdr, err := gen.ReadHeader(f)
	f.Close()
	if err != nil {
		return Recipe{}, fmt.Errorf("%s: %w", path, err)
	}
	kind := repro.KindOffline
	detail := "offline engine: full grammar, fully warm"
	if gen.Fingerprint(m.Grammar) != hdr.Fingerprint {
		fixed, err := m.FixedMachine()
		if err != nil {
			return Recipe{}, err
		}
		if gen.Fingerprint(fixed.Grammar) != hdr.Fingerprint {
			return Recipe{}, fmt.Errorf("%s: tables were generated for grammar %q, which matches neither machine %s nor its fixed subset (regenerate with iselgen)",
				path, hdr.Grammar, name)
		}
		m = fixed
		detail = "offline engine: fixed-cost subset, fully warm"
	} else if m.Grammar.HasAnyDynRules() {
		kind = repro.KindHybrid
		detail = "hybrid engine: fixed operators warm, dynamic on-demand"
	}
	m.Name = name // serve under the requested name
	return Recipe{M: m, Kind: kind, Opt: repro.Options{PreloadPath: path}, Detail: detail}, nil
}
