// Package cluster is the distributed serving tier: a consistent-hash
// router fronting N iselserver replicas, with `.isel` blobs as the
// warm-state distribution plane.
//
// The paper's amortization argument is per process: every state an
// on-demand automaton constructs makes the next unit cheaper, so tables
// pay off inside one long-lived engine. The cluster extends the same
// economics across a fleet — a table set computed once (ahead of time by
// iselgen, or published by whichever replica built it first) is shipped
// as a content-addressed `.isel` blob to every peer that serves the
// machine, so the fleet pays generation once, not once per process.
//
// The pieces:
//
//   - Ring (this file): a consistent-hash ring mapping machine names onto
//     replicas, with a configurable replication factor for hot machines.
//     Router and replicas build the ring from the same static peer list,
//     so both sides agree on ownership without any coordination service.
//   - BlobStore + Exchange (blob.go): the replica-side blob surface —
//     GET /blobs/{machine} serves the fingerprint-named artifact with
//     If-None-Match content negotiation, POST /preload accepts one,
//     validates it end to end and hot-swaps the machine onto it; corrupt
//     transfers quarantine to `.bad` exactly like PR 8's artifact loads.
//   - Membership (health.go): static peer list plus active health probing
//     and passive failure marking, shared by router and replicas.
//   - Replica (replica.go): assembles registry + server + exchange for
//     one fleet member; at boot every owned machine is made warm — local
//     blob, else fetched from a peer, else AOT-compiled and published —
//     before the first client request can arrive.
//   - Router (router.go): proxies /compile to the machine's owners with
//     retry-on-next-replica failover, and aggregates /stats and /readyz
//     across the fleet.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member: enough that the
// key space splits evenly across a handful of replicas, small enough
// that ring construction stays trivially cheap.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over a static member set. It is
// immutable after construction and safe for concurrent use; health is
// layered on top (Membership), not baked in, so every participant
// computes identical ownership regardless of what it currently thinks of
// its peers' liveness.
type Ring struct {
	members []string // sorted, unique
	hashes  []uint64 // sorted vnode positions
	owner   []int    // member index per vnode, aligned with hashes
}

// NewRing builds the ring. Member order does not matter (the set is
// sorted internally), but every participant must be given the same set —
// the fleet's agreement on ownership is exactly the agreement on this
// list. vnodes <= 0 uses DefaultVNodes.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := map[string]bool{}
	var ms []string
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty ring member")
		}
		if !seen[m] {
			seen[m] = true
			ms = append(ms, m)
		}
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sort.Strings(ms)
	type vn struct {
		h   uint64
		idx int
	}
	vns := make([]vn, 0, len(ms)*vnodes)
	for i, m := range ms {
		for v := 0; v < vnodes; v++ {
			vns = append(vns, vn{h: ringHash(m + "#" + strconv.Itoa(v)), idx: i})
		}
	}
	sort.Slice(vns, func(a, b int) bool {
		if vns[a].h != vns[b].h {
			return vns[a].h < vns[b].h
		}
		return vns[a].idx < vns[b].idx // deterministic on (vanishingly rare) collisions
	})
	r := &Ring{members: ms, hashes: make([]uint64, len(vns)), owner: make([]int, len(vns))}
	for i, v := range vns {
		r.hashes[i] = v.h
		r.owner[i] = v.idx
	}
	return r, nil
}

// Members returns the sorted member set.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Owners returns the n distinct members that own key, in failover order:
// the primary is the first member clockwise of the key's hash, and each
// further replica is the next distinct member around the ring. n is
// clamped to the member count. The same (members, key, n) always yields
// the same owners — this is the routing table.
func (r *Ring) Owners(key string, n int) []string {
	if n <= 0 {
		n = 1
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := ringHash(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	owners := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; len(owners) < n && i < len(r.hashes); i++ {
		idx := r.owner[(start+i)%len(r.hashes)]
		if !taken[idx] {
			taken[idx] = true
			owners = append(owners, r.members[idx])
		}
	}
	return owners
}

// Owns reports whether member is one of key's n owners.
func (r *Ring) Owns(member, key string, n int) bool {
	for _, o := range r.Owners(key, n) {
		if o == member {
			return true
		}
	}
	return false
}

// ringHash is FNV-64a followed by a 64-bit finalizer mix. Raw FNV of
// near-identical short strings ("r1#0", "r1#1", ...) is almost linear in
// the suffix, so each member's vnodes would land on one contiguous arc
// and the ring would degenerate into a handful of giant ranges; the
// multiply-xorshift finalizer (MurmurHash3's fmix64) scatters them.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
