package md

import "repro/internal/grammar"

// demoSrc is the running example of the tree-parsing instruction-selection
// literature: registers, loads, adds, stores, and a read-modify-write rule
// whose pattern over-matches the instruction — the add-to-memory
// instruction requires the load and the store to use the *same* address,
// which no tree pattern can express and which lburg-style descriptions
// therefore guard with a dynamic cost.
//
// Rule numbering matches the literature's figure: rules 1–6, with rule 6
// split into 6a/6b/6c by normal-form conversion.
const demoSrc = `
%name demo
%start stmt
%term Reg(0) Load(1) Plus(2) Store(2)

addr: reg                  = 1 (0)
reg:  Reg                  = 2 (0) "=v%c"
reg:  Load(addr)           = 3 (1) "movq (%0), %d"
reg:  Plus(reg, reg)       = 4 (1) "addq %0, %1, %d"
stmt: Store(addr, reg)     = 5 (1) "movq %1, (%0)"
stmt: Store(addr, Plus(Load(addr), reg)) = 6 (dyn samemem) "addq %1.1, (%0)"
`

// demoEnv implements the read-modify-write applicability test: the rule's
// cost is 1 when the store address node and the load address node are the
// identical IR node (a DAG edge), and infinite otherwise. This mirrors
// lcc's memop() dynamic cost.
func demoEnv() grammar.DynEnv {
	return grammar.DynEnv{
		"samemem": func(n grammar.DynNode) grammar.Cost {
			// n is the Store node of the matched pattern
			// Store(saddr, Plus(Load(laddr), reg)).
			saddr := n.Kid(0)
			plus := n.Kid(1)
			load := plus.Kid(0)
			laddr := load.Kid(0)
			if saddr.Same(laddr) {
				return 1
			}
			return grammar.Inf
		},
	}
}

func init() {
	register("demo", func() Desc {
		return Desc{Grammar: grammar.MustParse(demoSrc), Env: demoEnv()}
	})
}
